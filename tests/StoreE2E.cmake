# End-to-end check of the persistent optimization service over the real
# binaries (invoked by ctest as the `store_e2e` test):
#
#   1. fleet_scale --fast --store SA (jobs 1) and --store SB (jobs 8):
#      the cold night's store.json must be byte-identical — store bytes
#      are part of the §9 determinism contract
#   2. ropt-report store SA -> loads, validates the canonical fixed
#      point, renders the class roster and per-app boards (exit 0)
#   3. a second run against SA (the warm night): its report carries the
#      schema-7 warm_start section with entries actually loaded, the
#      night counter advances, and the warm store stays canonical
#   4. the warm night is itself jobs-invariant (SA jobs 1 == SC jobs 8,
#      fed the same cold store)
#   5. --store (and --report) under a missing parent directory exit 2
#      with the usage line — a typo'd path fails fast, not after a run
#   6. ropt-report store on a missing directory exits 2
#
# Inputs: -DFLEET_SCALE=..., -DROPT_REPORT=..., -DWORK_DIR=...

foreach(Var FLEET_SCALE ROPT_REPORT WORK_DIR)
  if(NOT DEFINED ${Var})
    message(FATAL_ERROR "missing -D${Var}=...")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")
set(StoreA "${WORK_DIR}/storeA")
set(StoreB "${WORK_DIR}/storeB")
set(StoreC "${WORK_DIR}/storeC")

# --- 1. Cold night, two --jobs values, byte-identical stores ----------------

execute_process(
  COMMAND ${FLEET_SCALE} --fast --seed 1 --devices 6 --store ${StoreA}
  RESULT_VARIABLE Rc OUTPUT_VARIABLE ColdOut ERROR_QUIET)
if(NOT Rc EQUAL 0)
  message(FATAL_ERROR "fleet_scale --store ${StoreA} failed (${Rc})")
endif()
if(NOT ColdOut MATCHES "store: .*cold start")
  message(FATAL_ERROR "cold night did not announce a cold start:\n${ColdOut}")
endif()
if(NOT EXISTS "${StoreA}/store.json")
  message(FATAL_ERROR "cold night left no ${StoreA}/store.json")
endif()

execute_process(
  COMMAND ${FLEET_SCALE} --fast --seed 1 --devices 6 --jobs 8
          --store ${StoreB}
  RESULT_VARIABLE Rc OUTPUT_QUIET)
if(NOT Rc EQUAL 0)
  message(FATAL_ERROR "fleet_scale --jobs 8 --store ${StoreB} failed (${Rc})")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          "${StoreA}/store.json" "${StoreB}/store.json"
  RESULT_VARIABLE Rc)
if(NOT Rc EQUAL 0)
  message(FATAL_ERROR "store.json differs between --jobs 1 and --jobs 8")
endif()

# --- 2. The store inspector validates the cold night ------------------------

execute_process(
  COMMAND ${ROPT_REPORT} store ${StoreA}
  RESULT_VARIABLE Rc OUTPUT_VARIABLE Out ERROR_VARIABLE Err)
if(NOT Rc EQUAL 0)
  message(FATAL_ERROR "ropt-report store failed (${Rc}):\n${Out}${Err}")
endif()
if(NOT Out MATCHES "night 1")
  message(FATAL_ERROR "store view lacks the night counter:\n${Out}")
endif()
if(NOT Out MATCHES "classes: k=")
  message(FATAL_ERROR "store view lacks the class roster:\n${Out}")
endif()
if(NOT Out MATCHES "store ok: canonical")
  message(FATAL_ERROR "store is not canonical:\n${Out}")
endif()

# --- 3. Warm night against the cold store -----------------------------------

# Keep a copy of the cold store so the jobs-invariance rerun (step 4)
# starts from the same bytes after the warm night overwrites StoreA.
file(COPY "${StoreA}/store.json" DESTINATION "${StoreC}")

set(WarmRun "${WORK_DIR}/warm_run")
execute_process(
  COMMAND ${FLEET_SCALE} --fast --seed 1 --devices 6 --store ${StoreA}
          --report ${WarmRun}
  RESULT_VARIABLE Rc OUTPUT_VARIABLE WarmOut ERROR_QUIET)
if(NOT Rc EQUAL 0)
  message(FATAL_ERROR "warm fleet_scale failed (${Rc})")
endif()
if(NOT WarmOut MATCHES "store: .* \\(night 1, [0-9]+ entries")
  message(FATAL_ERROR "warm night did not load the cold store:\n${WarmOut}")
endif()
if(NOT WarmOut MATCHES "saved .* \\(night 2,")
  message(FATAL_ERROR "warm night did not advance the night counter:\n"
                      "${WarmOut}")
endif()

file(READ "${WarmRun}/manifest.json" Manifest)
if(NOT Manifest MATCHES "\"warm_start\"")
  message(FATAL_ERROR "warm manifest lacks the warm_start section")
endif()
if(NOT Manifest MATCHES "\"entries_loaded\":[1-9]")
  message(FATAL_ERROR "warm_start reports no loaded entries:\n${Manifest}")
endif()
if(NOT Manifest MATCHES "\"class_leaderboards\"")
  message(FATAL_ERROR "warm manifest lacks class_leaderboards")
endif()
execute_process(
  COMMAND ${ROPT_REPORT} validate ${WarmRun}
  RESULT_VARIABLE Rc OUTPUT_VARIABLE Out ERROR_VARIABLE Err)
if(NOT Rc EQUAL 0)
  message(FATAL_ERROR "validate failed on the warm run (${Rc}):\n${Out}${Err}")
endif()

execute_process(
  COMMAND ${ROPT_REPORT} store ${StoreA}
  RESULT_VARIABLE Rc OUTPUT_VARIABLE Out ERROR_VARIABLE Err)
if(NOT Rc EQUAL 0)
  message(FATAL_ERROR "warm store failed validation (${Rc}):\n${Out}${Err}")
endif()
if(NOT Out MATCHES "night 2")
  message(FATAL_ERROR "warm store kept the old night counter:\n${Out}")
endif()

# --- 4. The warm night is jobs-invariant ------------------------------------

execute_process(
  COMMAND ${FLEET_SCALE} --fast --seed 1 --devices 6 --jobs 8
          --store ${StoreC}
  RESULT_VARIABLE Rc OUTPUT_QUIET)
if(NOT Rc EQUAL 0)
  message(FATAL_ERROR "warm fleet_scale --jobs 8 failed (${Rc})")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          "${StoreA}/store.json" "${StoreC}/store.json"
  RESULT_VARIABLE Rc)
if(NOT Rc EQUAL 0)
  message(FATAL_ERROR "warm store.json differs between --jobs 1 and 8")
endif()

# --- 5. Missing parent directories fail fast with exit 2 --------------------

execute_process(
  COMMAND ${FLEET_SCALE} --fast --store ${WORK_DIR}/no/such/parent
  RESULT_VARIABLE Rc OUTPUT_QUIET ERROR_VARIABLE Err)
if(NOT Rc EQUAL 2)
  message(FATAL_ERROR "--store under a missing parent exited ${Rc}, not 2")
endif()
if(NOT Err MATCHES "usage:")
  message(FATAL_ERROR "--store error did not print the usage line:\n${Err}")
endif()
execute_process(
  COMMAND ${FLEET_SCALE} --fast --report ${WORK_DIR}/no/such/parent
  RESULT_VARIABLE Rc OUTPUT_QUIET ERROR_QUIET)
if(NOT Rc EQUAL 2)
  message(FATAL_ERROR "--report under a missing parent exited ${Rc}, not 2")
endif()

# --- 6. Inspecting a missing store exits 2 ----------------------------------

execute_process(
  COMMAND ${ROPT_REPORT} store ${WORK_DIR}/never_created
  RESULT_VARIABLE Rc OUTPUT_QUIET ERROR_QUIET)
if(NOT Rc EQUAL 2)
  message(FATAL_ERROR "ropt-report store on a missing dir exited ${Rc}, "
                      "not 2")
endif()

message(STATUS "store_e2e: cold store jobs-invariant and canonical, warm "
               "night loads it (warm_start + class_leaderboards in the "
               "manifest), warm store jobs-invariant, typo'd paths exit 2")
