//===- tests/ReportTests.cpp - The run-report flight recorder ---------------===//
//
// support/Json building + parsing, RunReport round trips through a real
// run directory, the jobs-invariance guarantee for provenance records
// (the acceptance criterion: a seeded pipeline writes a byte-identical
// evaluations.jsonl at --jobs 1 and --jobs 4), ropt-report's diff gate on
// synthesized regressions, and the bench parseArgs contract.
//
//===----------------------------------------------------------------------===//

#include "report/RunDiff.h"
#include "report/RunReport.h"
#include "support/Json.h"

#include "bench/BenchUtil.h"
#include "core/IterativeCompiler.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

using namespace ropt;

namespace {

/// Fresh directory under the test temp dir, removed on destruction.
class TempRunDir {
public:
  explicit TempRunDir(const std::string &Name)
      : Path(std::filesystem::path(::testing::TempDir()) / Name) {
    std::filesystem::remove_all(Path);
  }
  ~TempRunDir() {
    std::error_code Ec;
    std::filesystem::remove_all(Path, Ec);
  }
  std::string str() const { return Path.string(); }

private:
  std::filesystem::path Path;
};

std::string slurpFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::string Out((std::istreambuf_iterator<char>(In)),
                  std::istreambuf_iterator<char>());
  return Out;
}

} // namespace

// --- support/Json -----------------------------------------------------------

TEST(Json, BuilderRendersObjectsAndArrays) {
  json::Builder B;
  B.field("s", "a\"b\\c\n");
  B.field("i", int64_t(-42));
  B.field("u", uint64_t(18446744073709551615ull));
  B.field("b", true);
  B.fieldNull("n");
  {
    json::Builder A(/*Array=*/true);
    A.element(1.5);
    A.element(std::string("x"));
    B.fieldRaw("a", std::move(A).str());
  }
  std::string S = std::move(B).str();
  EXPECT_EQ(S, "{\"s\":\"a\\\"b\\\\c\\n\",\"i\":-42,"
               "\"u\":18446744073709551615,\"b\":true,\"n\":null,"
               "\"a\":[1.5,\"x\"]}");
}

TEST(Json, ParseRoundTripsBuilderOutput) {
  json::Builder B;
  B.field("name", "trailing \\ slash");
  B.field("pi", 3.141592653589793);
  B.field("neg", int64_t(-7));
  std::string S = std::move(B).str();

  support::Result<json::Value> V = json::parse(S);
  ASSERT_TRUE(V.ok()) << V.error().Message;
  EXPECT_EQ(V.value().string("name"), "trailing \\ slash");
  // %.17g formatting makes the double round trip exact.
  EXPECT_EQ(V.value().number("pi"), 3.141592653589793);
  EXPECT_EQ(V.value().number("neg"), -7.0);
}

TEST(Json, ParseHandlesEscapesAndNesting) {
  support::Result<json::Value> V = json::parse(
      "{\"u\":\"\\u0041\\u00e9\",\"arr\":[1,[2,3],{\"k\":null}],"
      "\"t\":true,\"f\":false}");
  ASSERT_TRUE(V.ok()) << V.error().Message;
  EXPECT_EQ(V.value().string("u"), "A\xc3\xa9"); // UTF-8 for "Aé"
  const json::Value *Arr = V.value().find("arr");
  ASSERT_NE(Arr, nullptr);
  ASSERT_EQ(Arr->elements().size(), 3u);
  EXPECT_EQ(Arr->elements()[1].elements()[1].asNumber(), 3.0);
  EXPECT_TRUE(Arr->elements()[2].find("k")->isNull());
}

TEST(Json, ParseRejectsGarbage) {
  EXPECT_FALSE(json::parse("{\"a\":1} trailing").ok());
  EXPECT_FALSE(json::parse("{\"a\":}").ok());
  EXPECT_FALSE(json::parse("[1,]").ok());
  EXPECT_FALSE(json::parse("").ok());
  EXPECT_FALSE(json::parse("\"unterminated").ok());
}

// --- RunReport round trip ---------------------------------------------------

TEST(RunReport, RoundTripsThroughRunDirectory) {
  TempRunDir Dir("ropt_report_roundtrip");
  report::RunInfo Info;
  Info.Tool = "report_tests";
  Info.Seed = 7;
  Info.Jobs = 2;
  Info.Generations = 3;
  Info.PopulationSize = 5;

  Rng R(42);
  search::Genome G1 = search::randomGenome(R, search::GenomeConfig{});
  search::Genome G2 = search::randomGenome(R, search::GenomeConfig{});

  {
    support::Result<std::unique_ptr<report::RunReport>> Opened =
        report::RunReport::open(Dir.str(), Info);
    ASSERT_TRUE(Opened.ok()) << Opened.error().Message;
    report::RunReport &RR = *Opened.value();
    RR.beginApp("TestApp");

    search::Evaluation Ok;
    Ok.Kind = search::EvalKind::Ok;
    Ok.Samples = {10.0, 11.0, 12.0};
    Ok.MedianCycles = 11.0;
    Ok.CodeSize = 123;
    Ok.BinaryHash = 0xdeadbeefcafef00dull;
    uint64_t Id1 = RR.onEvaluation(G1, Ok, 0, {});
    EXPECT_EQ(Id1, 1u);

    search::Evaluation Bad;
    Bad.Kind = search::EvalKind::RuntimeCrash;
    Bad.Error = support::ErrorCode::ReplayCrash;
    uint64_t Id2 = RR.onEvaluation(G2, Bad, 1, {Id1});
    EXPECT_EQ(Id2, 2u);

    search::GenerationStats S;
    S.Generation = 0;
    S.Evaluations = 2;
    S.Invalid = 1;
    S.BestCycles = 11.0;
    S.WorstCycles = 11.0;
    S.MeanCycles = 11.0;
    RR.onGenerationDone(S);

    report::AppOutcome Out;
    Out.Succeeded = true;
    Out.Counters.Ok = 1;
    Out.Counters.RuntimeCrash = 1;
    Out.Cache.Misses = 2;
    RR.endApp(Out);
    EXPECT_TRUE(RR.finish());
  }

  support::Result<report::LoadedRun> Loaded = report::loadRun(Dir.str());
  ASSERT_TRUE(Loaded.ok()) << Loaded.error().Message;
  const report::LoadedRun &Run = Loaded.value();

  EXPECT_EQ(Run.Manifest.string("tool"), "report_tests");
  EXPECT_EQ(Run.Manifest.number("seed"), 7.0);
  ASSERT_EQ(Run.Evaluations.size(), 2u);
  EXPECT_EQ(Run.Evaluations[0].App, "TestApp");
  EXPECT_EQ(Run.Evaluations[0].Genome, G1.name());
  EXPECT_EQ(Run.Evaluations[0].Verdict, "ok");
  EXPECT_EQ(Run.Evaluations[0].BinaryHash, "0xdeadbeefcafef00d");
  EXPECT_EQ(Run.Evaluations[0].MedianCycles, 11.0);
  EXPECT_LT(Run.Evaluations[0].CiLow, Run.Evaluations[0].CiHigh);
  EXPECT_EQ(Run.Evaluations[1].Verdict, "runtime-crash");
  EXPECT_EQ(Run.Evaluations[1].Error, "replay-crash");
  ASSERT_EQ(Run.Evaluations[1].Parents.size(), 1u);
  EXPECT_EQ(Run.Evaluations[1].Parents[0], 1u);
  ASSERT_EQ(Run.Generations.size(), 1u);
  EXPECT_EQ(Run.Generations[0].Evaluations, 2);

  report::ValidationResult V = report::validateRun(Run);
  EXPECT_TRUE(V.ok());
  EXPECT_TRUE(V.Warnings.empty());

  std::string Summary = report::summarize(Run);
  EXPECT_NE(Summary.find("TestApp"), std::string::npos);
  EXPECT_NE(Summary.find("report_tests"), std::string::npos);
}

TEST(RunReport, LoadRunFailsOnMissingDirectory) {
  support::Result<report::LoadedRun> R =
      report::loadRun("/nonexistent/run/dir");
  EXPECT_FALSE(R.ok());
}

// --- The acceptance criterion: provenance is jobs-invariant -----------------

namespace {

core::PipelineConfig smallConfig(uint64_t Seed, int Jobs) {
  core::PipelineConfig Config;
  Config.Seed = Seed;
  Config.Search.GA.Generations = 2;
  Config.Search.GA.PopulationSize = 8;
  Config.Search.GA.HillClimbRounds = 1;
  Config.Search.MaxReplaysPerEvaluation = 5;
  Config.Search.Jobs = Jobs;
  Config.Capture.ProfileSessions = 4;
  Config.Measure.FinalMeasurementRuns = 4;
  return Config;
}

std::string runWithReport(const std::string &Dir, uint64_t Seed,
                          int Jobs) {
  core::PipelineConfig Config = smallConfig(Seed, Jobs);
  report::RunInfo Info;
  Info.Tool = "report_tests";
  Info.Seed = Seed;
  Info.Jobs = Jobs;
  support::Result<std::unique_ptr<report::RunReport>> Opened =
      report::RunReport::open(Dir, Info);
  EXPECT_TRUE(Opened.ok());
  report::RunReport &RR = *Opened.value();
  Config.Provenance = &RR;

  RR.beginApp("Sieve");
  core::IterativeCompiler Pipeline(Config);
  core::OptimizationReport R =
      Pipeline.optimize(workloads::buildByName("Sieve"));
  EXPECT_TRUE(R.Succeeded) << R.FailureReason;
  report::AppOutcome Out;
  Out.Succeeded = R.Succeeded;
  Out.Counters = R.Counters;
  Out.Cache = R.CacheStats;
  Out.RegionAndroid = R.RegionAndroid;
  Out.RegionO3 = R.RegionO3;
  Out.RegionBest = R.RegionBest;
  RR.endApp(Out);
  RR.finish();
  return Dir;
}

} // namespace

TEST(RunReport, RecordsAreIdenticalAtAnyJobsCount) {
  TempRunDir DirA("ropt_report_jobs1");
  TempRunDir DirB("ropt_report_jobs4");
  runWithReport(DirA.str(), /*Seed=*/1, /*Jobs=*/1);
  runWithReport(DirB.str(), /*Seed=*/1, /*Jobs=*/4);

  // Byte-identical record streams — not merely equivalent.
  std::string EvalsA = slurpFile(DirA.str() + "/evaluations.jsonl");
  std::string EvalsB = slurpFile(DirB.str() + "/evaluations.jsonl");
  ASSERT_FALSE(EvalsA.empty());
  EXPECT_EQ(EvalsA, EvalsB);
  EXPECT_EQ(slurpFile(DirA.str() + "/generations.jsonl"),
            slurpFile(DirB.str() + "/generations.jsonl"));

  // And the diff gate agrees: zero regressions between the two runs.
  support::Result<report::LoadedRun> A = report::loadRun(DirA.str());
  support::Result<report::LoadedRun> B = report::loadRun(DirB.str());
  ASSERT_TRUE(A.ok());
  ASSERT_TRUE(B.ok());
  EXPECT_TRUE(report::validateRun(A.value()).ok());
  report::DiffResult D = report::diffRuns(A.value(), B.value());
  EXPECT_EQ(D.FitnessRegressions, 0);
  EXPECT_EQ(D.VerdictShifts, 0);
  EXPECT_FALSE(D.regressed());
}

// --- The diff gate on synthesized regressions -------------------------------

namespace {

/// Builds a run directory whose single app has the given ok-evaluation
/// medians and one crash record per \p Crashes.
void synthesizeRun(const std::string &Dir,
                   const std::vector<double> &OkMedians, int Crashes) {
  report::RunInfo Info;
  Info.Tool = "synth";
  support::Result<std::unique_ptr<report::RunReport>> Opened =
      report::RunReport::open(Dir, Info);
  ASSERT_TRUE(Opened.ok());
  report::RunReport &RR = *Opened.value();
  RR.beginApp("Synth");
  Rng R(1);
  for (double Median : OkMedians) {
    search::Evaluation E;
    E.Kind = search::EvalKind::Ok;
    E.MedianCycles = Median;
    E.Samples = {Median};
    E.BinaryHash = static_cast<uint64_t>(Median);
    RR.onEvaluation(search::randomGenome(R, search::GenomeConfig{}), E, 0,
                    {});
  }
  for (int I = 0; I != Crashes; ++I) {
    search::Evaluation E;
    E.Kind = search::EvalKind::RuntimeCrash;
    E.Error = support::ErrorCode::ReplayCrash;
    RR.onEvaluation(search::randomGenome(R, search::GenomeConfig{}), E, 0,
                    {});
  }
  report::AppOutcome Out;
  Out.Succeeded = true;
  RR.endApp(Out);
  RR.finish();
}

} // namespace

TEST(RunDiff, FlagsFitnessRegressionsBeyondThreshold) {
  TempRunDir DirA("ropt_diff_base");
  TempRunDir DirB("ropt_diff_slow");
  synthesizeRun(DirA.str(), {100.0, 150.0}, 0); // best 100
  synthesizeRun(DirB.str(), {110.0, 150.0}, 0); // best 110: +10%

  report::LoadedRun A = report::loadRun(DirA.str()).value();
  report::LoadedRun B = report::loadRun(DirB.str()).value();

  report::DiffOptions Opt;
  Opt.FitnessThreshold = 0.02;
  report::DiffResult D = report::diffRuns(A, B, Opt);
  EXPECT_EQ(D.FitnessRegressions, 1);
  EXPECT_TRUE(D.regressed());
  EXPECT_NE(D.Text.find("FITNESS REGRESSION"), std::string::npos);

  // A generous threshold swallows the same delta.
  Opt.FitnessThreshold = 0.5;
  EXPECT_FALSE(report::diffRuns(A, B, Opt).regressed());

  // The reverse direction is an improvement, not a regression.
  EXPECT_FALSE(report::diffRuns(B, A).regressed());
}

TEST(RunDiff, FlagsVerdictMixShifts) {
  TempRunDir DirA("ropt_diff_mix_a");
  TempRunDir DirB("ropt_diff_mix_b");
  synthesizeRun(DirA.str(), {100.0, 100.0, 100.0, 100.0}, 0);
  synthesizeRun(DirB.str(), {100.0, 100.0}, 2); // 50% now crash

  report::LoadedRun A = report::loadRun(DirA.str()).value();
  report::LoadedRun B = report::loadRun(DirB.str()).value();
  report::DiffResult D = report::diffRuns(A, B);
  EXPECT_GT(D.VerdictShifts, 0);
  // Mix shifts warn but do not fail the gate on their own.
  EXPECT_FALSE(D.regressed());
}

// --- Older-schema run directories -------------------------------------------
//
// Run directories written before measurement racing and the fleet layer
// (manifest schema 1, no racing block, no fleet section, no fleet.jsonl)
// must still load, validate without problems, summarize and diff.

namespace {

void writeRawFile(const std::string &Path, const std::string &Content) {
  std::ofstream Out(Path, std::ios::binary);
  Out << Content;
  ASSERT_TRUE(Out.good()) << "cannot write " << Path;
}

/// A minimal schema-1 run directory, as the pre-racing pre-fleet tool
/// wrote them: evaluation records without racing provenance fields, app
/// manifest entries without "racing", no fleet artifacts at all.
void synthesizeSchema1Run(const std::string &Dir) {
  std::filesystem::create_directories(Dir);
  writeRawFile(
      Dir + "/manifest.json",
      "{\"schema\":1,\"tool\":\"synth_v1\",\"git\":\"deadbee\","
      "\"seed\":1,\"jobs\":1,\"fast\":false,"
      "\"config\":{\"generations\":2,\"population\":4},"
      "\"wall_seconds\":0.5,\"evaluations\":2,"
      "\"apps\":[{\"name\":\"Synth\",\"succeeded\":true,\"failure\":null,"
      "\"verdicts\":{\"ok\":1,\"compile_error\":0,\"runtime_crash\":1,"
      "\"runtime_timeout\":0,\"wrong_output\":0,\"total\":2},"
      "\"cache\":{\"genome_hits\":0,\"binary_hits\":0,\"misses\":2,"
      "\"hit_rate\":0},"
      "\"region_android_cycles\":200,\"region_o3_cycles\":150,"
      "\"region_best_cycles\":100,"
      "\"speedup_ga_over_android\":2,\"speedup_ga_over_o3\":1.5}],"
      "\"totals\":{\"verdicts\":{\"ok\":1,\"total\":2},"
      "\"cache\":{\"misses\":2}}}");
  writeRawFile(
      Dir + "/evaluations.jsonl",
      "{\"id\":1,\"app\":\"Synth\",\"gen\":0,\"genome\":\"g1\","
      "\"parents\":[],\"verdict\":\"ok\",\"error\":null,"
      "\"cache\":\"miss\",\"median_cycles\":100,\"ci_low\":99,"
      "\"ci_high\":101,\"samples\":[100],\"code_size\":10,"
      "\"binary_hash\":\"0x0000000000000001\"}\n"
      "{\"id\":2,\"app\":\"Synth\",\"gen\":0,\"genome\":\"g2\","
      "\"parents\":[1],\"verdict\":\"runtime-crash\","
      "\"error\":\"replay-crash\",\"cache\":\"miss\","
      "\"median_cycles\":0,\"ci_low\":0,\"ci_high\":0,\"samples\":[],"
      "\"code_size\":0,\"binary_hash\":\"0x0000000000000000\"}\n");
  writeRawFile(Dir + "/generations.jsonl",
               "{\"app\":\"Synth\",\"gen\":0,\"evaluations\":2,"
               "\"invalid\":1,\"best_cycles\":100,\"worst_cycles\":100,"
               "\"mean_cycles\":100}\n");
}

} // namespace

TEST(RunDiff, ToleratesPreFleetSchema1RunDirectories) {
  TempRunDir Dir("ropt_schema1");
  synthesizeSchema1Run(Dir.str());

  support::Result<report::LoadedRun> Loaded = report::loadRun(Dir.str());
  ASSERT_TRUE(Loaded.ok()) << Loaded.error().Message;
  const report::LoadedRun &Run = Loaded.value();
  EXPECT_FALSE(Run.HasFleetLog);
  EXPECT_TRUE(Run.Fleet.empty());

  // Missing racing/fleet sections are at most warnings, never problems.
  report::ValidationResult V = report::validateRun(Run);
  EXPECT_TRUE(V.ok()) << (V.Problems.empty() ? "" : V.Problems.front());
  EXPECT_TRUE(V.Warnings.empty());

  // Summarize must not crash on the missing racing block or fleet data.
  std::string Summary = report::summarize(Run);
  EXPECT_NE(Summary.find("Synth"), std::string::npos);
  EXPECT_EQ(Summary.find("replay budget"), std::string::npos);
  EXPECT_EQ(Summary.find("fleet"), std::string::npos);

  // Diffing a schema-1 baseline against a current-schema run works: the
  // gate only needs the evaluation stream both schemas share.
  TempRunDir NewDir("ropt_schema2_vs_1");
  synthesizeRun(NewDir.str(), {100.0}, 1);
  report::LoadedRun NewRun = report::loadRun(NewDir.str()).value();
  report::DiffResult D = report::diffRuns(Run, NewRun);
  EXPECT_FALSE(D.regressed());
  EXPECT_FALSE(report::diffRuns(Run, Run).regressed());
}

TEST(RunDiff, WarnsButDoesNotFailOnFleetArtifactMismatch) {
  TempRunDir Dir("ropt_fleet_mismatch");
  synthesizeSchema1Run(Dir.str());
  // A stray fleet.jsonl next to a manifest with no fleet section: the
  // validator flags it as a warning, not a gate failure.
  writeRawFile(Dir.str() + "/fleet.jsonl",
               "{\"app\":\"Synth\",\"devices\":2,\"round\":0,"
               "\"device\":0,\"best_speedup\":1.5,\"best_genome\":\"g1\","
               "\"best_source\":\"seeded\",\"best_from_hint\":true,"
               "\"hints_received\":2,\"hints_adopted\":1,"
               "\"hints_rejected\":1,\"evaluations\":8,"
               "\"transport_attempts\":2,\"transport_drops\":0,"
               "\"transport_ticks\":4,\"delivered\":true}\n");

  report::LoadedRun Run = report::loadRun(Dir.str()).value();
  ASSERT_TRUE(Run.HasFleetLog);
  ASSERT_EQ(Run.Fleet.size(), 1u);
  EXPECT_EQ(Run.Fleet[0].BestSource, "seeded");
  EXPECT_TRUE(Run.Fleet[0].BestFromHint);

  report::ValidationResult V = report::validateRun(Run);
  EXPECT_TRUE(V.ok());
  ASSERT_FALSE(V.Warnings.empty());
  EXPECT_NE(V.Warnings.front().find("fleet"), std::string::npos);
}

TEST(RunDiff, FlagsInternallyInconsistentFleetRecords) {
  TempRunDir Dir("ropt_fleet_bad");
  synthesizeSchema1Run(Dir.str());
  // adopted + rejected exceeds received, and the source spelling is
  // unknown: both are validation problems.
  writeRawFile(Dir.str() + "/fleet.jsonl",
               "{\"app\":\"Synth\",\"devices\":2,\"round\":0,"
               "\"device\":0,\"best_speedup\":1.5,\"best_genome\":\"g1\","
               "\"best_source\":\"psychic\",\"hints_received\":1,"
               "\"hints_adopted\":1,\"hints_rejected\":1,"
               "\"evaluations\":8,\"transport_attempts\":2,"
               "\"transport_drops\":0,\"transport_ticks\":4,"
               "\"delivered\":true}\n");

  report::LoadedRun Run = report::loadRun(Dir.str()).value();
  report::ValidationResult V = report::validateRun(Run);
  EXPECT_FALSE(V.ok());
  EXPECT_GE(V.Problems.size(), 2u);
}

TEST(RunDiff, FleetGateFlagsBestSpeedupRegressions) {
  // Two in-memory runs with one fleet cell each (Synth x4) whose final
  // best speedup drops 2.0x -> 1.5x: the fleet gate in both diffRuns and
  // fleetReport must flag the regressed direction and only that one.
  auto MakeRun = [](double Best) {
    report::LoadedRun Run;
    Run.Dir = "synth";
    Run.HasFleetLog = true;
    report::FleetRecord R;
    R.App = "Synth";
    R.FleetDevices = 4;
    R.BestSpeedup = Best;
    R.BestGenome = "g1";
    R.Delivered = true;
    Run.Fleet.push_back(R);
    return Run;
  };
  report::LoadedRun A = MakeRun(2.0);
  report::LoadedRun B = MakeRun(1.5);

  report::DiffResult D = report::diffRuns(A, B);
  EXPECT_EQ(D.FleetRegressions, 1);
  EXPECT_TRUE(D.regressed());
  EXPECT_NE(D.Text.find("FLEET REGRESSION"), std::string::npos);

  // Identity and the improved direction stay clean.
  EXPECT_FALSE(report::diffRuns(A, A).regressed());
  EXPECT_FALSE(report::diffRuns(B, A).regressed());

  // The standalone fleet view applies the same gate...
  EXPECT_EQ(report::fleetReport(B, &A, 0.05).Regressions, 1);
  EXPECT_EQ(report::fleetReport(A, &B, 0.05).Regressions, 0);

  // ...and a generous threshold swallows the 25% drop.
  report::DiffOptions Opt;
  Opt.FleetThreshold = 0.5;
  EXPECT_FALSE(report::diffRuns(A, B, Opt).regressed());
}

// --- bench/BenchUtil.h::parseArgs -------------------------------------------

TEST(BenchParseArgs, UnknownFlagExitsNonZeroWithUsage) {
  const char *Argv[] = {"report_tests", "--no-such-flag"};
  EXPECT_EXIT(bench::parseArgs(2, const_cast<char **>(Argv)),
              ::testing::ExitedWithCode(2), "usage:");
}

TEST(BenchParseArgs, FlagMissingValueExitsNonZero) {
  const char *Argv[] = {"report_tests", "--seed"};
  EXPECT_EXIT(bench::parseArgs(2, const_cast<char **>(Argv)),
              ::testing::ExitedWithCode(2), "usage:");
}

TEST(BenchParseArgs, ParsesReportFlag) {
  const char *Argv[] = {"report_tests", "--report", "/tmp/some-run",
                        "--jobs", "3"};
  bench::Options Opt = bench::parseArgs(5, const_cast<char **>(Argv));
  EXPECT_EQ(Opt.ReportDir, "/tmp/some-run");
  EXPECT_EQ(Opt.Jobs, 3);
}

/// True when some validation warning mentions the loader-stats check.
/// (Match by substring, not position or count: observability-off builds
/// add an unrelated warning about the absent trace/metrics files.)
static bool hasLoaderWarning(const report::ValidationResult &V) {
  for (const std::string &W : V.Warnings)
    if (W.find("pages_restored") != std::string::npos)
      return true;
  return false;
}

TEST(RunDiff, WarnsWhenFreshBackendsLostLoaderStats) {
  // A schema-6 run claiming fresh (session_backends=false) backends must
  // show loader work in metrics.json: replays without pages_restored mean
  // the LoaderStats plumbing regressed (the pre-session-fix bug).
  auto MakeRun = [](TempRunDir &Dir, double PagesRestored) {
    report::RunInfo Info;
    Info.Tool = "report_tests";
    Info.SessionBackends = false;
    auto Opened = report::RunReport::open(Dir.str(), Info);
    ASSERT_TRUE(Opened.ok()) << Opened.error().Message;
    report::RunReport &RR = *Opened.value();
    RR.beginApp("App");
    report::AppOutcome Out;
    Out.Succeeded = true;
    RR.endApp(Out);
    EXPECT_TRUE(RR.finish());
    std::ofstream M(Dir.str() + "/metrics.json", std::ios::binary);
    M << "{\"counters\":{\"replay.replays\":12,\"replay.pages_restored\":"
      << PagesRestored << "},\"gauges\":{},\"histograms\":{}}\n";
  };

  TempRunDir Bad("ropt_report_fresh_noloader");
  MakeRun(Bad, 0);
  auto BadRun = report::loadRun(Bad.str());
  ASSERT_TRUE(BadRun.ok()) << BadRun.error().Message;
  EXPECT_TRUE(hasLoaderWarning(report::validateRun(BadRun.value())));

  // Control: the same run with loader work recorded draws no warning.
  TempRunDir Good("ropt_report_fresh_withloader");
  MakeRun(Good, 480);
  auto GoodRun = report::loadRun(Good.str());
  ASSERT_TRUE(GoodRun.ok()) << GoodRun.error().Message;
  EXPECT_FALSE(hasLoaderWarning(report::validateRun(GoodRun.value())));
}

TEST(RunDiff, SessionBackendRunDoesNotWarnOnZeroRestores) {
  // Sessions legitimately restore pages only once per session build, so
  // a session_backends=true run is exempt from the loader-stats check.
  TempRunDir Dir("ropt_report_session_backends");
  report::RunInfo Info;
  Info.Tool = "report_tests"; // SessionBackends defaults to true
  auto Opened = report::RunReport::open(Dir.str(), Info);
  ASSERT_TRUE(Opened.ok()) << Opened.error().Message;
  report::RunReport &RR = *Opened.value();
  RR.beginApp("App");
  report::AppOutcome Out;
  Out.Succeeded = true;
  RR.endApp(Out);
  EXPECT_TRUE(RR.finish());
  std::ofstream M(Dir.str() + "/metrics.json", std::ios::binary);
  M << "{\"counters\":{\"replay.replays\":12,\"replay.pages_restored\":0},"
       "\"gauges\":{},\"histograms\":{}}\n";
  M.close();

  auto Run = report::loadRun(Dir.str());
  ASSERT_TRUE(Run.ok()) << Run.error().Message;
  EXPECT_FALSE(hasLoaderWarning(report::validateRun(Run.value())));
}

TEST(RunReport, ReplayBackendSectionRoundTrips) {
  TempRunDir Dir("ropt_report_replay_backend");
  report::RunInfo Info;
  Info.Tool = "report_tests";
  auto Opened = report::RunReport::open(Dir.str(), Info);
  ASSERT_TRUE(Opened.ok()) << Opened.error().Message;
  report::RunReport &RR = *Opened.value();
  RR.beginApp("App");
  {
    Rng R(3);
    search::Evaluation Ok;
    Ok.Kind = search::EvalKind::Ok;
    Ok.Samples = {10.0};
    Ok.MedianCycles = 10.0;
    RR.onEvaluation(search::randomGenome(R, search::GenomeConfig{}), Ok, 0,
                    {});
  }
  report::AppOutcome Out;
  Out.Succeeded = true;
  Out.ReplayBackend.SessionsCreated = 2;
  Out.ReplayBackend.SessionReplays = 40;
  Out.ReplayBackend.DeltaResets = 40;
  Out.ReplayBackend.PagesReverted = 120;
  RR.endApp(Out);
  EXPECT_TRUE(RR.finish());

  auto Run = report::loadRun(Dir.str());
  ASSERT_TRUE(Run.ok()) << Run.error().Message;
  EXPECT_EQ(Run.value().Manifest.number("schema"), 7.0);
  const json::Value *Config = Run.value().Manifest.find("config");
  ASSERT_NE(Config, nullptr);
  EXPECT_TRUE(Config->find("session_backends") != nullptr);

  // The per-app replay_backend section survives the round trip and the
  // summarize rendering shows the replay-backend line.
  std::string Manifest = slurpFile(Dir.str() + "/manifest.json");
  EXPECT_NE(Manifest.find("\"replay_backend\""), std::string::npos);
  EXPECT_NE(Manifest.find("\"session_replays\":40"), std::string::npos);
  std::string Summary = report::summarize(Run.value());
  EXPECT_NE(Summary.find("replay backend"), std::string::npos);
  EXPECT_NE(Summary.find("40 session replays"), std::string::npos);
}
