//===- tests/SearchTests.cpp - search/ unit tests (synthetic fitness) -------===//

#include "search/GeneticSearch.h"

#include "search/EvaluationEngine.h"
#include "support/Statistics.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>

using namespace ropt;
using namespace ropt::search;

namespace {

GenomeConfig config() { return GenomeConfig(); }

/// A synthetic landscape: fitness improves with the number of distinct
/// "good" passes present, mimicking a compiler where each useful pass
/// shaves time. Aggressive genes are "broken" with some pass-dependent
/// pattern (unsound flags).
Evaluation syntheticEval(const Genome &G, Rng &NoiseRng) {
  Evaluation E;
  double Cycles = 10000.0;
  bool Broken = false;
  std::set<lir::PassId> Seen;
  for (const lir::PassInstance &P : G.Passes) {
    if (P.Aggressive &&
        (P.Id == lir::PassId::BoundsCheckElim ||
         P.Id == lir::PassId::JumpThreading))
      Broken = true;
    if (Seen.insert(P.Id).second)
      Cycles -= 400.0; // each distinct pass helps once
    if (P.Id == lir::PassId::LoopUnroll)
      Cycles -= 50.0 * std::min(P.IntParam, 8); // parameter matters
  }
  if (Broken) {
    E.Kind = EvalKind::WrongOutput;
    return E;
  }
  Cycles = std::max(Cycles, 500.0); // floor: timings stay positive
  E.Kind = EvalKind::Ok;
  for (int I = 0; I != 10; ++I)
    E.Samples.push_back(Cycles * NoiseRng.logNormal(0.0, 0.01));
  E.MedianCycles = ropt::median(E.Samples);
  E.CodeSize = 100 + 4 * G.Passes.size();
  // Hash: structural.
  uint64_t H = 14695981039346656037ULL;
  for (const lir::PassInstance &P : G.Passes) {
    H ^= static_cast<uint64_t>(P.Id) * 131 + P.IntParam;
    H *= 1099511628211ULL;
  }
  E.BinaryHash = H;
  return E;
}

/// The same landscape behind the EvalBackend interface, so the
/// EvaluationEngine (and its racing mode) can drive it. Fitness is
/// decided at compile time and stashed in the artifact; measurement
/// draws per-index noise around it, the contract racing relies on.
class LandscapeBackend : public EvalBackend {
public:
  CompiledBinary compileGenome(const Genome &G) override {
    CompiledBinary B;
    double Cycles = 10000.0;
    std::set<lir::PassId> Seen;
    uint64_t H = 14695981039346656037ULL;
    for (const lir::PassInstance &P : G.Passes) {
      if (P.Aggressive &&
          (P.Id == lir::PassId::BoundsCheckElim ||
           P.Id == lir::PassId::JumpThreading))
        return B; // unsound flag: rejected
      if (Seen.insert(P.Id).second)
        Cycles -= 400.0;
      if (P.Id == lir::PassId::LoopUnroll)
        Cycles -= 50.0 * std::min(P.IntParam, 8);
      H ^= static_cast<uint64_t>(P.Id) * 131 + P.IntParam;
      H *= 1099511628211ULL;
    }
    B.Ok = true;
    B.BinaryHash = H;
    B.CodeSize = 100 + 4 * G.Passes.size();
    B.Artifact =
        std::make_shared<const double>(std::max(Cycles, 500.0));
    return B;
  }

  Evaluation measureBinary(const CompiledBinary &B, uint64_t NoiseSeed,
                           size_t SampleCount) override {
    Evaluation E;
    E.Kind = EvalKind::Ok;
    E.CodeSize = B.CodeSize;
    E.BinaryHash = B.BinaryHash;
    E.BaseCycles = *static_cast<const double *>(B.Artifact.get());
    for (size_t I = 0; I != SampleCount; ++I)
      E.Samples.push_back(sampleAt(NoiseSeed, I, E.BaseCycles));
    E.SamplesSpent = static_cast<int>(SampleCount);
    E.MedianCycles = ropt::median(E.Samples);
    return E;
  }

  std::vector<double> extendSamples(const Evaluation &E,
                                    uint64_t NoiseSeed, size_t Begin,
                                    size_t Count) override {
    std::vector<double> Out;
    for (size_t I = 0; I != Count; ++I)
      Out.push_back(sampleAt(NoiseSeed, Begin + I, E.BaseCycles));
    return Out;
  }

private:
  static double sampleAt(uint64_t NoiseSeed, size_t Index, double Base) {
    Rng Noise(NoiseSeed +
              0x9e3779b97f4a7c15ull * (static_cast<uint64_t>(Index) + 1));
    return Base * Noise.logNormal(0.0, 0.005);
  }
};

} // namespace

// --- Genome operators --------------------------------------------------------

TEST(Genome, RandomGenomesRespectBounds) {
  Rng R(1);
  GenomeConfig C = config();
  for (int I = 0; I != 200; ++I) {
    Genome G = randomGenome(R, C);
    EXPECT_GE(G.Passes.size(), C.MinLength);
    EXPECT_LE(G.Passes.size(), C.MaxInitialLength);
    for (const lir::PassInstance &P : G.Passes) {
      const lir::PassDescriptor &D = lir::passDescriptor(P.Id);
      if (D.HasIntParam) {
        EXPECT_GE(P.IntParam, D.MinInt);
        EXPECT_LE(P.IntParam, D.MaxInt);
      }
      if (!D.HasAggressive) {
        EXPECT_FALSE(P.Aggressive);
      }
    }
  }
}

TEST(Genome, MutationKeepsLengthBounds) {
  Rng R(2);
  GenomeConfig C = config();
  C.GeneMutationProb = 0.8; // exaggerate
  Genome G = randomGenome(R, C);
  for (int I = 0; I != 300; ++I) {
    mutate(G, R, C);
    EXPECT_GE(G.Passes.size(), C.MinLength);
    EXPECT_LE(G.Passes.size(), C.MaxLength);
  }
}

TEST(Genome, MutationChangesSomething) {
  Rng R(3);
  GenomeConfig C = config();
  C.GeneMutationProb = 1.0;
  Genome G = randomGenome(R, C);
  Genome Before = G;
  mutate(G, R, C);
  EXPECT_FALSE(G == Before);
}

TEST(Genome, CrossoverMixesParents) {
  Rng R(4);
  GenomeConfig C = config();
  Genome A = randomGenome(R, C), B = randomGenome(R, C);
  for (int I = 0; I != 100; ++I) {
    Genome Child = crossover(A, B, R, C);
    EXPECT_GE(Child.Passes.size(), C.MinLength);
    EXPECT_LE(Child.Passes.size(), C.MaxLength);
  }
}

TEST(Genome, RedundantPassRemoval) {
  Genome G;
  lir::PassInstance P;
  P.Id = lir::PassId::Gvn;
  G.Passes = {P, P, P};
  lir::PassInstance Q;
  Q.Id = lir::PassId::Dce;
  G.Passes.push_back(Q);
  G.Passes.push_back(P);
  removeRedundantPasses(G);
  ASSERT_EQ(G.Passes.size(), 3u);
  EXPECT_EQ(G.Passes[0].Id, lir::PassId::Gvn);
  EXPECT_EQ(G.Passes[1].Id, lir::PassId::Dce);
  EXPECT_EQ(G.Passes[2].Id, lir::PassId::Gvn);
}

TEST(Genome, NameRoundTripsThroughParser) {
  Rng R(5);
  Genome G = randomGenome(R, config());
  std::string Name = G.name();
  // Each comma-separated component parses back.
  size_t Pos = 0;
  std::string Plain = Name.substr(0, Name.find('|'));
  while (Pos < Plain.size()) {
    size_t Comma = Plain.find(',', Pos);
    std::string Part = Plain.substr(
        Pos, Comma == std::string::npos ? std::string::npos : Comma - Pos);
    lir::PassInstance P;
    EXPECT_TRUE(lir::parsePassInstance(Part, P)) << Part;
    Pos = Comma == std::string::npos ? Plain.size() : Comma + 1;
  }
}

// --- GeneticSearch over the synthetic landscape ----------------------------------

TEST(GeneticSearch, ImprovesOverRandom) {
  Rng NoiseRng(99);
  GaConfig C;
  C.Generations = 8;
  C.PopulationSize = 24;
  FunctionEvaluator Eval([&NoiseRng](const Genome &G) {
    return syntheticEval(G, NoiseRng);
  });
  GeneticSearch GA(C, 42, Eval);
  GaTrace Trace;
  auto Best = GA.run(9000.0, 8500.0, &Trace);
  ASSERT_TRUE(Best.has_value());

  // The best genome beats the typical random genome by a solid margin.
  EXPECT_LT(Best->E.MedianCycles, 6500.0);
  EXPECT_GT(Trace.Evaluations.size(), 100u);

  // The trace contains invalid evaluations (the GA tried broken genomes).
  bool SawInvalid = false;
  for (const TraceEntry &T : Trace.Evaluations)
    SawInvalid |= !T.Valid;
  EXPECT_TRUE(SawInvalid);
}

TEST(GeneticSearch, BestImprovesMonotonicallyInTrace) {
  Rng NoiseRng(7);
  GaConfig C;
  C.Generations = 6;
  C.PopulationSize = 16;
  FunctionEvaluator Eval([&NoiseRng](const Genome &G) {
    return syntheticEval(G, NoiseRng);
  });
  GeneticSearch GA(C, 17, Eval);
  GaTrace Trace;
  auto Best = GA.run(9000.0, 9000.0, &Trace);
  ASSERT_TRUE(Best.has_value());

  double BestSoFar = 1e18;
  for (const TraceEntry &T : Trace.Evaluations)
    if (T.Valid)
      BestSoFar = std::min(BestSoFar, T.MedianCycles);
  // The returned best is at least as good as anything the trace saw
  // (within the noise of re-sampling).
  EXPECT_LE(Best->E.MedianCycles, BestSoFar * 1.05);
}

TEST(GeneticSearch, DeterministicForFixedSeed) {
  auto RunOnce = [](uint64_t Seed) {
    Rng NoiseRng(1234);
    GaConfig C;
    C.Generations = 4;
    C.PopulationSize = 10;
    FunctionEvaluator Eval([&NoiseRng](const Genome &G) {
      return syntheticEval(G, NoiseRng);
    });
    GeneticSearch GA(C, Seed, Eval);
    auto Best = GA.run(9000.0, 9000.0);
    return Best ? Best->G.name() : std::string("none");
  };
  EXPECT_EQ(RunOnce(5), RunOnce(5));
  EXPECT_NE(RunOnce(5), RunOnce(6)); // different seeds explore differently
}

TEST(GeneticSearch, HaltsOnIdenticalBinaries) {
  // An evaluator that always returns the same binary hash.
  GaConfig C;
  C.Generations = 11;
  C.PopulationSize = 50;
  C.MaxIdenticalBinaries = 30;
  int Evaluations = 0;
  FunctionEvaluator Eval([&Evaluations](const Genome &) {
    ++Evaluations;
    Evaluation E;
    E.Kind = EvalKind::Ok;
    E.Samples = {100.0, 100.1, 99.9};
    E.MedianCycles = 100.0;
    E.CodeSize = 10;
    E.BinaryHash = 0xdead;
    return E;
  });
  GeneticSearch GA(C, 3, Eval);
  GaTrace Trace;
  auto Best = GA.run(200.0, 200.0, &Trace);
  ASSERT_TRUE(Best.has_value());
  EXPECT_TRUE(Trace.HaltedOnIdentical);
  // Halts long before 11 generations x 50 evaluations (plus gen-0
  // replacement retries and the hill climb).
  EXPECT_LT(Evaluations, 350);
}

TEST(GeneticSearch, AllFailuresYieldNullopt) {
  GaConfig C;
  C.Generations = 2;
  C.PopulationSize = 6;
  FunctionEvaluator Eval([](const Genome &) {
    Evaluation E;
    E.Kind = EvalKind::CompileError;
    return E;
  });
  GeneticSearch GA(C, 3, Eval);
  EXPECT_FALSE(GA.run(100.0, 100.0).has_value());
}

TEST(GeneticSearch, SizeBreaksTiesWhenTimingIsIndistinguishable) {
  // All genomes run at identical speed; shorter genomes are smaller.
  GaConfig C;
  C.Generations = 5;
  C.PopulationSize = 16;
  Rng NoiseRng(11);
  FunctionEvaluator Eval([&NoiseRng](const Genome &G) {
    Evaluation E;
    E.Kind = EvalKind::Ok;
    for (int I = 0; I != 10; ++I)
      E.Samples.push_back(500.0 * NoiseRng.logNormal(0.0, 0.02));
    E.MedianCycles = ropt::median(E.Samples);
    E.CodeSize = 100 + 16 * G.Passes.size();
    E.BinaryHash = NoiseRng.next(); // all distinct
    return E;
  });
  GeneticSearch GA(C, 21, Eval);
  auto Best = GA.run(1000.0, 1000.0);
  ASSERT_TRUE(Best.has_value());
  // The search gravitated toward the minimum length.
  EXPECT_LE(Best->G.Passes.size(), 4u);
}

// --- Adaptive measurement racing (DESIGN.md §11) -----------------------------

TEST(GeneticSearch, RacingCrownsTheSameWinnerWithFewerReplays) {
  // The tentpole claim: replacing the fixed replay budget with the
  // incumbent-relative race keeps the seeded search's winner while
  // early-stopping statistically-clear losers, cutting total replays
  // well past the 30% bar.
  auto RunOnce = [](bool Racing) {
    EngineOptions Opts;
    Opts.Jobs = 1;
    Opts.Racing = Racing;
    EvaluationEngine Engine(
        []() { return std::make_unique<LandscapeBackend>(); }, Opts,
        /*Seed=*/9);
    GaConfig C;
    C.Generations = 6;
    C.PopulationSize = 16;
    GeneticSearch GA(C, 42, Engine);
    std::optional<Scored> Best = GA.run(9000.0, 8500.0);
    const EngineRacingStats &S = Engine.racingStats();
    return std::tuple{Best ? Best->G.name() : std::string("none"),
                      Best ? Best->E.MedianCycles : 0.0, S.ReplaysSpent,
                      S.EarlyStops, S.TopUps};
  };
  auto [FixedName, FixedCycles, FixedSpent, FixedStops, FixedTopUps] =
      RunOnce(false);
  auto [RacedName, RacedCycles, RacedSpent, RacedStops, RacedTopUps] =
      RunOnce(true);

  // Same winner genome, indistinguishable final fitness.
  EXPECT_EQ(FixedName, RacedName);
  EXPECT_NE(FixedName, "none");
  EXPECT_NEAR(RacedCycles, FixedCycles, 0.05 * FixedCycles);

  // The fixed budget never stops early; the race did, and saved >= 30%.
  EXPECT_EQ(FixedStops, 0u);
  EXPECT_EQ(FixedTopUps, 0u);
  EXPECT_GT(RacedStops, 0u);
  EXPECT_LT(RacedSpent, FixedSpent * 7 / 10)
      << "racing saved less than 30% of the replay budget";
}
