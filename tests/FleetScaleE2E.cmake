# End-to-end check of the fleet layer over the real binaries (invoked by
# ctest as the `fleet_scale_e2e` test):
#
#   1. fleet_scale --fast --seed 1 --report A                 (jobs 1)
#   2. fleet_scale --fast --seed 1 --jobs 8 --report B
#   3. the run directory grew fleet.jsonl (with schema-4 virtual times,
#      schema-5 provenance fields), telemetry.json and fleet.trace.json,
#      and a manifest fleet section
#   4. ropt-report validate A     -> fleet artifacts cross-check clean
#      (including the schema-5 sketch merge law and chain causality)
#   5. ropt-report summarize A    -> renders the fleet section
#      ropt-report fleet A        -> renders chains and class curves
#   6. fleet.jsonl, telemetry.json and fleet.trace.json A == B
#                                 -> all fleet artifacts are jobs-invariant
#   7. the same invariance under 30% churn (C jobs 1 == D jobs 8)
#
# Inputs: -DFLEET_SCALE=..., -DROPT_REPORT=..., -DWORK_DIR=...

foreach(Var FLEET_SCALE ROPT_REPORT WORK_DIR)
  if(NOT DEFINED ${Var})
    message(FATAL_ERROR "missing -D${Var}=...")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")
set(RunA "${WORK_DIR}/runA")
set(RunB "${WORK_DIR}/runB")

execute_process(
  COMMAND ${FLEET_SCALE} --fast --seed 1 --report ${RunA}
  RESULT_VARIABLE Rc OUTPUT_QUIET)
if(NOT Rc EQUAL 0)
  message(FATAL_ERROR "fleet_scale --report ${RunA} failed (${Rc})")
endif()

execute_process(
  COMMAND ${FLEET_SCALE} --fast --seed 1 --jobs 8 --report ${RunB}
  RESULT_VARIABLE Rc OUTPUT_QUIET)
if(NOT Rc EQUAL 0)
  message(FATAL_ERROR "fleet_scale --jobs 8 --report ${RunB} failed (${Rc})")
endif()

# An ROPT_OBSERVABILITY=0 build intentionally ships no trace/metrics
# snapshots (the manifest records observability:false); everything else
# is required in every config.
file(READ "${RunA}/manifest.json" Manifest)
set(Artifacts manifest.json evaluations.jsonl generations.jsonl
    fleet.jsonl telemetry.json fleet.trace.json)
if(NOT Manifest MATCHES "\"observability\"[ \t]*:[ \t]*false")
  list(APPEND Artifacts metrics.json trace.json)
endif()
foreach(Artifact IN LISTS Artifacts)
  if(NOT EXISTS "${RunA}/${Artifact}")
    message(FATAL_ERROR "missing artifact ${RunA}/${Artifact}")
  endif()
endforeach()
if(NOT Manifest MATCHES "\"fleet\"")
  message(FATAL_ERROR "manifest.json lacks the fleet section")
endif()

# Schema 4: every fleet.jsonl record carries the step's virtual
# completion time on the event loop.
file(READ "${RunA}/fleet.jsonl" FleetLog)
if(NOT FleetLog MATCHES "\"virtual_time\"")
  message(FATAL_ERROR "fleet.jsonl lacks virtual_time (schema 4)")
endif()
# Schema 5: records carry the best genome's provenance chain, and the
# telemetry artifact carries the chains + mergeable sketches.
if(NOT FleetLog MATCHES "\"best_provenance\"")
  message(FATAL_ERROR "fleet.jsonl lacks best_provenance (schema 5)")
endif()
file(READ "${RunA}/telemetry.json" Telemetry)
if(NOT Telemetry MATCHES "\"chains\"")
  message(FATAL_ERROR "telemetry.json lacks provenance chains")
endif()

execute_process(
  COMMAND ${ROPT_REPORT} validate ${RunA}
  RESULT_VARIABLE Rc OUTPUT_VARIABLE Out ERROR_VARIABLE Err)
if(NOT Rc EQUAL 0)
  message(FATAL_ERROR "ropt-report validate failed (${Rc}):\n${Out}${Err}")
endif()
if(Err MATCHES "warning:" AND NOT Err MATCHES "ROPT_OBSERVABILITY=0")
  message(FATAL_ERROR "validate warned on a complete fleet run:\n${Err}")
endif()

execute_process(
  COMMAND ${ROPT_REPORT} summarize ${RunA}
  RESULT_VARIABLE Rc OUTPUT_VARIABLE Out ERROR_VARIABLE Err)
if(NOT Rc EQUAL 0)
  message(FATAL_ERROR "ropt-report summarize failed (${Rc}):\n${Out}${Err}")
endif()
if(NOT Out MATCHES "fleet")
  message(FATAL_ERROR "summary lacks the fleet section:\n${Out}")
endif()

# The fleet view: per-device-class round curves and at least one
# complete provenance chain (discovery -> merge -> arrivals).
execute_process(
  COMMAND ${ROPT_REPORT} fleet ${RunA}
  RESULT_VARIABLE Rc OUTPUT_VARIABLE Out ERROR_VARIABLE Err)
if(NOT Rc EQUAL 0)
  message(FATAL_ERROR "ropt-report fleet failed (${Rc}):\n${Out}${Err}")
endif()
if(NOT Out MATCHES "class 0:")
  message(FATAL_ERROR "fleet view lacks per-class round curves:\n${Out}")
endif()
if(NOT Out MATCHES "discovered d[0-9]+@vt[0-9]+, merged@vt[0-9]+")
  message(FATAL_ERROR "fleet view lacks a complete provenance chain:\n${Out}")
endif()

# The fleet-scale determinism bar: the whole step log — virtual times,
# device bests, hint adoption, even the seeded transport's retry
# counters — is byte-identical at any --jobs value. Since schema 5 the
# same holds for the merged telemetry sketches and the virtual-clock
# trace.
foreach(Artifact fleet.jsonl telemetry.json fleet.trace.json)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            "${RunA}/${Artifact}" "${RunB}/${Artifact}"
    RESULT_VARIABLE Rc)
  if(NOT Rc EQUAL 0)
    message(FATAL_ERROR "${Artifact} differs between --jobs 1 and --jobs 8")
  endif()
endforeach()

# And the same bar under churn: 30% of devices leave mid-run and 30%
# join late on a seeded schedule; the step log must stay jobs-invariant.
set(RunC "${WORK_DIR}/runC")
set(RunD "${WORK_DIR}/runD")
execute_process(
  COMMAND ${FLEET_SCALE} --fast --seed 1 --churn 30 --report ${RunC}
  RESULT_VARIABLE Rc OUTPUT_QUIET)
if(NOT Rc EQUAL 0)
  message(FATAL_ERROR "fleet_scale --churn 30 --report ${RunC} failed (${Rc})")
endif()
execute_process(
  COMMAND ${FLEET_SCALE} --fast --seed 1 --churn 30 --jobs 8
          --report ${RunD}
  RESULT_VARIABLE Rc OUTPUT_QUIET)
if(NOT Rc EQUAL 0)
  message(FATAL_ERROR "fleet_scale --churn 30 --jobs 8 failed (${Rc})")
endif()
foreach(Artifact fleet.jsonl telemetry.json fleet.trace.json)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            "${RunC}/${Artifact}" "${RunD}/${Artifact}"
    RESULT_VARIABLE Rc)
  if(NOT Rc EQUAL 0)
    message(FATAL_ERROR "churned ${Artifact} differs between --jobs 1 and 8")
  endif()
endforeach()
execute_process(
  COMMAND ${ROPT_REPORT} validate ${RunC}
  RESULT_VARIABLE Rc OUTPUT_VARIABLE Out ERROR_VARIABLE Err)
if(NOT Rc EQUAL 0)
  message(FATAL_ERROR "validate failed on the churned run (${Rc}):\n"
                      "${Out}${Err}")
endif()

message(STATUS "fleet_scale_e2e: fleet artifacts valid, step log + "
               "telemetry + trace jobs-invariant (with and without "
               "churn), summary and fleet views render")
