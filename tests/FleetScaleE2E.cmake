# End-to-end check of the fleet layer over the real binaries (invoked by
# ctest as the `fleet_scale_e2e` test):
#
#   1. fleet_scale --fast --seed 1 --report A                 (jobs 1)
#   2. fleet_scale --fast --seed 1 --jobs 4 --report B
#   3. the run directory grew fleet.jsonl and a manifest fleet section
#   4. ropt-report validate A     -> fleet artifacts cross-check clean
#   5. ropt-report summarize A    -> renders the fleet section
#   6. fleet.jsonl A == B         -> the round log is jobs-invariant
#
# Inputs: -DFLEET_SCALE=..., -DROPT_REPORT=..., -DWORK_DIR=...

foreach(Var FLEET_SCALE ROPT_REPORT WORK_DIR)
  if(NOT DEFINED ${Var})
    message(FATAL_ERROR "missing -D${Var}=...")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")
set(RunA "${WORK_DIR}/runA")
set(RunB "${WORK_DIR}/runB")

execute_process(
  COMMAND ${FLEET_SCALE} --fast --seed 1 --report ${RunA}
  RESULT_VARIABLE Rc OUTPUT_QUIET)
if(NOT Rc EQUAL 0)
  message(FATAL_ERROR "fleet_scale --report ${RunA} failed (${Rc})")
endif()

execute_process(
  COMMAND ${FLEET_SCALE} --fast --seed 1 --jobs 4 --report ${RunB}
  RESULT_VARIABLE Rc OUTPUT_QUIET)
if(NOT Rc EQUAL 0)
  message(FATAL_ERROR "fleet_scale --jobs 4 --report ${RunB} failed (${Rc})")
endif()

foreach(Artifact manifest.json evaluations.jsonl generations.jsonl
        metrics.json trace.json fleet.jsonl)
  if(NOT EXISTS "${RunA}/${Artifact}")
    message(FATAL_ERROR "missing artifact ${RunA}/${Artifact}")
  endif()
endforeach()

file(READ "${RunA}/manifest.json" Manifest)
if(NOT Manifest MATCHES "\"fleet\"")
  message(FATAL_ERROR "manifest.json lacks the fleet section")
endif()

execute_process(
  COMMAND ${ROPT_REPORT} validate ${RunA}
  RESULT_VARIABLE Rc OUTPUT_VARIABLE Out ERROR_VARIABLE Err)
if(NOT Rc EQUAL 0)
  message(FATAL_ERROR "ropt-report validate failed (${Rc}):\n${Out}${Err}")
endif()
if(Err MATCHES "warning:")
  message(FATAL_ERROR "validate warned on a complete fleet run:\n${Err}")
endif()

execute_process(
  COMMAND ${ROPT_REPORT} summarize ${RunA}
  RESULT_VARIABLE Rc OUTPUT_VARIABLE Out ERROR_VARIABLE Err)
if(NOT Rc EQUAL 0)
  message(FATAL_ERROR "ropt-report summarize failed (${Rc}):\n${Out}${Err}")
endif()
if(NOT Out MATCHES "fleet")
  message(FATAL_ERROR "summary lacks the fleet section:\n${Out}")
endif()

# The fleet-scale determinism bar: the whole round log — device bests,
# hint adoption, even the seeded transport's retry counters — is
# byte-identical at any --jobs value.
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          "${RunA}/fleet.jsonl" "${RunB}/fleet.jsonl"
  RESULT_VARIABLE Rc)
if(NOT Rc EQUAL 0)
  message(FATAL_ERROR "fleet.jsonl differs between --jobs 1 and --jobs 4")
endif()

message(STATUS "fleet_scale_e2e: fleet artifacts valid, round log "
               "jobs-invariant, summary renders the fleet section")
