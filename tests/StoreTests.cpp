//===- tests/StoreTests.cpp - Persistent optimization service -------------===//
//
// The durable cross-run store's acceptance criteria (DESIGN.md §17):
//
//   (a) serialize() is canonical and deserialize() is its exact inverse
//       for current-schema documents — load -> save is a byte fixed
//       point, so store bytes are comparable across --jobs and reruns;
//   (b) load() never fails the caller: missing file -> silent cold
//       start; corrupt/truncated/newer-schema -> cold start + warning;
//       an older or sparse document decodes absent fields to defaults;
//   (c) the k-means device classing is a pure function of (points, K,
//       seed) with stable lexicographic class ids and no empty classes;
//   (d) Server::exportState/importState round-trip every board byte-for-
//       byte — including the quarantine set, which must keep blocking
//       injectHint() after a reload;
//   (e) parseGenome() inverts Genome::name() for arbitrary genomes.
//
//===----------------------------------------------------------------------===//

#include "store/KMeans.h"
#include "store/Store.h"

#include "fleet/Server.h"
#include "search/Genome.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <set>

using namespace ropt;

namespace {

store::StoredEntry makeEntry(const std::string &Genome, double Speedup,
                             bool Quarantined = false) {
  store::StoredEntry E;
  E.Genome = Genome;
  E.BinaryHash = 0xdeadbeef12345678ull;
  E.CodeSize = 4096;
  E.Samples = {Speedup - 0.1, Speedup, Speedup + 0.1};
  E.Speedup = Speedup;
  E.Devices = {-1, 0, 3};
  E.Classes = {0, 2};
  E.Reports = 3;
  E.Quarantined = Quarantined;
  if (Quarantined)
    E.RejectVerdict = "wrong-output";
  E.LastReportTick = 1234;
  E.Prov.Id = 0x0123456789abcdefull;
  E.Prov.Device = 3;
  E.Prov.Step = 1;
  E.Prov.Time = 987;
  return E;
}

store::StoreState sampleState() {
  store::StoreState S;
  S.Nights = 2;
  S.FleetSeed = 42;
  S.Classes.K = 2;
  S.Classes.Dims = 3;
  S.Classes.Centroids = {{0.5, 1.0, 1.5}, {2.0, 2.5, 3.0}};
  S.Classes.Assignments = {0, 1, 0, 1};
  // Deliberately unsorted app order: serialize() owns the canonical
  // by-name ordering.
  store::StoredApp B;
  B.Name = "Zed";
  B.Entries.push_back(makeEntry("gvn,dce", 1.5));
  store::StoredApp A;
  A.Name = "App";
  A.Entries.push_back(makeEntry("licm!,loop-unroll=4|ra=freq", 2.25));
  A.Entries.push_back(makeEntry("sink,dce", 1.125, /*Quarantined=*/true));
  S.Apps.push_back(B);
  S.Apps.push_back(A);
  return S;
}

std::string tempStoreDir(const char *Name) {
  std::filesystem::path P =
      std::filesystem::temp_directory_path() / "ropt_store_tests" / Name;
  std::filesystem::remove_all(P);
  return P.string();
}

} // namespace

// --- Canonical serialization ------------------------------------------------

TEST(StoreFormat, SerializeDeserializeIsByteFixedPoint) {
  store::StoreState S = sampleState();
  std::string Doc = store::serialize(S);
  // Canonical shape: apps by name, hex identities, trailing newline.
  EXPECT_NE(Doc.find("\"schema\":1"), std::string::npos);
  EXPECT_NE(Doc.find("\"hash\":\"0xdeadbeef12345678\""), std::string::npos);
  EXPECT_LT(Doc.find("\"name\":\"App\""), Doc.find("\"name\":\"Zed\""));
  EXPECT_EQ(Doc.back(), '\n');

  store::DecodeResult D = store::deserialize(Doc);
  EXPECT_TRUE(D.Warning.empty()) << D.Warning;
  // The fixed point: decode -> re-encode reproduces the exact bytes.
  EXPECT_EQ(store::serialize(D.State), Doc);

  // And the decoded state is faithful, not just re-printable.
  ASSERT_EQ(D.State.Apps.size(), 2u);
  EXPECT_EQ(D.State.Apps[0].Name, "App");
  ASSERT_EQ(D.State.Apps[0].Entries.size(), 2u);
  EXPECT_EQ(D.State.Apps[0].Entries[0].Genome,
            "licm!,loop-unroll=4|ra=freq");
  EXPECT_TRUE(D.State.Apps[0].Entries[1].Quarantined);
  EXPECT_EQ(D.State.Apps[0].Entries[1].RejectVerdict, "wrong-output");
  EXPECT_EQ(D.State.Apps[0].Entries[0].Prov.Id, 0x0123456789abcdefull);
  EXPECT_EQ(D.State.Apps[0].Entries[0].Devices,
            (std::vector<int>{-1, 0, 3}));
  EXPECT_EQ(D.State.Classes.K, 2);
  EXPECT_EQ(D.State.Classes.Centroids[1][2], 3.0);
  EXPECT_EQ(D.State.Nights, 2u);
}

TEST(StoreFormat, CorruptAndTruncatedDocumentsColdStartWithWarning) {
  store::DecodeResult Garbage = store::deserialize("not json at all");
  EXPECT_FALSE(Garbage.Warning.empty());
  EXPECT_TRUE(Garbage.State.Apps.empty());

  std::string Doc = store::serialize(sampleState());
  store::DecodeResult Truncated =
      store::deserialize(Doc.substr(0, Doc.size() / 2));
  EXPECT_FALSE(Truncated.Warning.empty());
  EXPECT_TRUE(Truncated.State.Apps.empty());

  store::DecodeResult NotObject = store::deserialize("[1,2,3]");
  EXPECT_FALSE(NotObject.Warning.empty());
  EXPECT_TRUE(NotObject.State.Apps.empty());
}

TEST(StoreFormat, NewerSchemaColdStartsWithWarning) {
  store::DecodeResult D = store::deserialize(
      "{\"schema\":99,\"apps\":[{\"name\":\"App\",\"entries\":[]}]}");
  EXPECT_FALSE(D.Warning.empty());
  EXPECT_NE(D.Warning.find("newer"), std::string::npos);
  EXPECT_TRUE(D.State.Apps.empty());
}

TEST(StoreFormat, SparseDocumentDecodesMissingFieldsToDefaults) {
  // A document from an older writer that predates most fields: every
  // absent field decodes to its default (forward-tolerant reads), and
  // entries without a genome key are skipped rather than trusted.
  store::DecodeResult D = store::deserialize(
      "{\"schema\":1,\"apps\":[{\"name\":\"App\",\"entries\":["
      "{\"genome\":\"gvn,dce\",\"speedup\":1.5},"
      "{\"speedup\":9.9}]}]}");
  EXPECT_TRUE(D.Warning.empty()) << D.Warning;
  EXPECT_EQ(D.State.Nights, 0u);
  EXPECT_EQ(D.State.Classes.K, 0);
  ASSERT_EQ(D.State.Apps.size(), 1u);
  ASSERT_EQ(D.State.Apps[0].Entries.size(), 1u);
  const store::StoredEntry &E = D.State.Apps[0].Entries[0];
  EXPECT_EQ(E.Genome, "gvn,dce");
  EXPECT_EQ(E.Speedup, 1.5);
  EXPECT_EQ(E.Reports, 0);
  EXPECT_FALSE(E.Quarantined);
  EXPECT_EQ(E.Prov.Id, 0u);
  EXPECT_EQ(E.Prov.Device, -1);
}

// --- Disk round trip --------------------------------------------------------

TEST(StoreIO, SaveLoadRoundTripsAtomically) {
  std::string Dir = tempStoreDir("roundtrip");
  store::Store St(Dir);

  // Missing store: a silent cold start, no warning.
  store::Store::LoadResult Missing = St.load();
  EXPECT_FALSE(Missing.Found);
  EXPECT_TRUE(Missing.Warning.empty());

  store::StoreState S = sampleState();
  std::string Err;
  ASSERT_TRUE(St.save(S, &Err)) << Err;
  // Atomic publish: no tmp file left behind.
  EXPECT_FALSE(std::filesystem::exists(St.path() + ".tmp"));

  store::Store::LoadResult L = St.load();
  ASSERT_TRUE(L.Found);
  EXPECT_TRUE(L.Warning.empty()) << L.Warning;
  EXPECT_EQ(L.RawBytes, store::serialize(S));

  // load -> save is a byte fixed point on disk too.
  ASSERT_TRUE(St.save(L.State, &Err)) << Err;
  store::Store::LoadResult L2 = St.load();
  EXPECT_EQ(L2.RawBytes, L.RawBytes);

  // A corrupt store on disk cold-starts with a warning naming the path.
  std::FILE *F = std::fopen(St.path().c_str(), "wb");
  ASSERT_NE(F, nullptr);
  std::fputs("{\"schema\":1,", F);
  std::fclose(F);
  store::Store::LoadResult Corrupt = St.load();
  EXPECT_TRUE(Corrupt.Found);
  EXPECT_FALSE(Corrupt.Warning.empty());
  EXPECT_NE(Corrupt.Warning.find(St.path()), std::string::npos);
  EXPECT_TRUE(Corrupt.State.Apps.empty());

  std::filesystem::remove_all(Dir);
}

// --- K-means device classing ------------------------------------------------

TEST(StoreKMeans, DeterministicWithStableLexicographicIds) {
  // Three well-separated blobs in 2D, deliberately interleaved.
  std::vector<std::vector<double>> Points = {
      {10.0, 10.0}, {0.1, 0.0}, {5.0, 5.1}, {0.0, 0.2},  {10.1, 9.9},
      {5.1, 4.9},   {0.2, 0.1}, {9.9, 10.2}, {5.0, 5.0},
  };
  store::KMeansResult A = store::kmeans(Points, 3, /*Seed=*/1);
  store::KMeansResult B = store::kmeans(Points, 3, /*Seed=*/1);
  EXPECT_EQ(A.Centroids, B.Centroids);
  EXPECT_EQ(A.Assignment, B.Assignment);

  // Lexicographic centroid order: class 0 is the blob at the origin,
  // class 1 the middle one, class 2 the far one — independent of which
  // random point seeded which cluster.
  ASSERT_EQ(A.Centroids.size(), 3u);
  EXPECT_LT(A.Centroids[0][0], A.Centroids[1][0]);
  EXPECT_LT(A.Centroids[1][0], A.Centroids[2][0]);
  EXPECT_EQ(A.Assignment,
            (std::vector<int>{2, 0, 1, 0, 2, 1, 0, 2, 1}));

  // Perfect separation converges well under the iteration cap.
  EXPECT_LE(A.Iterations, 24);
}

TEST(StoreKMeans, ClampsKAndNeverEmitsEmptyClasses) {
  // K greater than the population: clamped to one class per point.
  std::vector<std::vector<double>> Two = {{1.0}, {2.0}};
  store::KMeansResult R = store::kmeans(Two, 8, /*Seed=*/7);
  EXPECT_EQ(R.Centroids.size(), 2u);

  // Duplicated points invite empty clusters; every class id must still
  // have at least one member (an empty class would cost a full pipeline
  // setup for nobody).
  std::vector<std::vector<double>> Dups = {
      {1.0, 1.0}, {1.0, 1.0}, {1.0, 1.0}, {1.0, 1.0},
      {9.0, 9.0}, {9.0, 9.0}, {3.0, 3.0}, {3.0, 3.0},
  };
  for (uint64_t Seed = 1; Seed <= 5; ++Seed) {
    store::KMeansResult D = store::kmeans(Dups, 3, Seed);
    ASSERT_EQ(D.Centroids.size(), 3u);
    std::set<int> Used(D.Assignment.begin(), D.Assignment.end());
    EXPECT_EQ(Used.size(), 3u) << "seed " << Seed;
    for (int C : D.Assignment) {
      EXPECT_GE(C, 0);
      EXPECT_LT(C, 3);
    }
  }

  // Empty input and K=0 degenerate cleanly.
  EXPECT_TRUE(store::kmeans({}, 3, 1).Centroids.empty());
  EXPECT_TRUE(store::kmeans(Two, 0, 1).Centroids.empty());
}

// --- Genome string round trip -----------------------------------------------

TEST(StoreGenome, ParseGenomeInvertsName) {
  // Random genomes: name -> parse -> name is exact, including integer
  // parameters, aggressive flags and the register-allocator suffix.
  search::GenomeConfig Config;
  Rng R(1234);
  for (int I = 0; I != 64; ++I) {
    search::Genome G = search::randomGenome(R, Config);
    if (I % 3 == 0)
      G.RegAlloc = hgraph::RegAllocKind::Frequency;
    else if (I % 3 == 1)
      G.RegAlloc = hgraph::RegAllocKind::None;
    search::Genome Parsed;
    ASSERT_TRUE(search::parseGenome(G.name(), Parsed)) << G.name();
    EXPECT_EQ(Parsed.name(), G.name());
    EXPECT_TRUE(Parsed == G);
  }

  // The empty string is the empty genome.
  search::Genome Empty;
  ASSERT_TRUE(search::parseGenome("", Empty));
  EXPECT_TRUE(Empty.Passes.empty());

  // Unknown spellings fail without touching the output.
  search::Genome Out;
  Out.Passes.push_back(lir::PassInstance{lir::PassId::Dce, 0, false});
  EXPECT_FALSE(search::parseGenome("gvn,no-such-pass", Out));
  EXPECT_FALSE(search::parseGenome("gvn|ra=bogus", Out));
  ASSERT_EQ(Out.Passes.size(), 1u);
}

// --- Server export/import ---------------------------------------------------

namespace {

fleet::GenomeReport storeGenomeReport(const search::Genome &G,
                                      uint64_t Hash,
                                      std::vector<double> Speedups) {
  fleet::GenomeReport R;
  R.G = G;
  R.Key = G.name();
  R.BinaryHash = Hash;
  R.SpeedupSamples = std::move(Speedups);
  R.SpeedupMedian = R.SpeedupSamples[R.SpeedupSamples.size() / 2];
  R.Prov.Id = Hash * 0x9e3779b97f4a7c15ull;
  R.Prov.Device = 0;
  R.Prov.Time = 17;
  return R;
}

/// A server with two apps, classed reports, one quarantined entry.
void populate(fleet::Server &Srv) {
  search::Genome G1, G2, G3;
  G1.Passes.push_back(lir::PassInstance{lir::PassId::Gvn, 0, false});
  G1.Passes.push_back(lir::PassInstance{lir::PassId::Dce, 0, false});
  G2.Passes.push_back(lir::PassInstance{lir::PassId::Licm, 0, true});
  G2.Passes.push_back(
      lir::PassInstance{lir::PassId::LoopUnroll, 4, false});
  G2.RegAlloc = hgraph::RegAllocKind::Frequency;
  G3.Passes.push_back(lir::PassInstance{lir::PassId::Sink, 0, false});
  G3.Passes.push_back(lir::PassInstance{lir::PassId::Dce, 0, false});

  fleet::RoundReport R0;
  R0.Device = 0;
  R0.DeviceClass = 0;
  R0.Best.push_back(storeGenomeReport(G1, 0xaaa, {1.2, 1.3, 1.4}));
  R0.Best.push_back(storeGenomeReport(G2, 0xbbb, {2.0, 2.1, 2.2}));
  Srv.merge("App", R0, /*Now=*/100);

  fleet::RoundReport R1;
  R1.Device = 3;
  R1.DeviceClass = 1;
  R1.Best.push_back(storeGenomeReport(G1, 0xaaa, {1.5, 1.6, 1.7}));
  R1.Best.push_back(storeGenomeReport(G3, 0xccc, {1.05, 1.06, 1.07}));
  Srv.merge("App", R1, /*Now=*/140);
  Srv.merge("Other", R1, /*Now=*/150);

  // Quarantine G3: the reload must keep blocking it.
  fleet::RoundReport Rej;
  Rej.Device = 1;
  Rej.Rejections.push_back(
      fleet::HintRejection{G3.name(), "wrong-output", 0});
  Srv.merge("App", Rej, /*Now=*/160);
}

} // namespace

TEST(StoreServer, ExportImportExportIsIdentity) {
  fleet::Server Srv;
  populate(Srv);

  store::StoreState S1;
  Srv.exportState(S1);
  ASSERT_EQ(S1.Apps.size(), 2u);

  fleet::Server Restored;
  std::vector<std::string> Warnings;
  size_t N = Restored.importState(S1, &Warnings);
  EXPECT_TRUE(Warnings.empty());
  EXPECT_EQ(N, 5u);
  EXPECT_EQ(Restored.stats().EntriesRestored, 5u);

  // The round trip is exact at the byte level — the property that makes
  // a warm night's load -> save a fixed point.
  store::StoreState S2;
  Restored.exportState(S2);
  EXPECT_EQ(store::serialize(S2), store::serialize(S1));

  // Boards behave identically: same hint sets, same apps.
  EXPECT_EQ(Restored.apps(), Srv.apps());
  std::vector<fleet::Hint> A = Srv.hints("App");
  std::vector<fleet::Hint> B = Restored.hints("App");
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I != A.size(); ++I) {
    EXPECT_EQ(A[I].Key, B[I].Key);
    EXPECT_EQ(A[I].Speedup, B[I].Speedup);
    EXPECT_EQ(A[I].Prov.Id, B[I].Prov.Id);
  }
}

TEST(StoreServer, QuarantineSurvivesReloadAndKeepsBlockingInjection) {
  fleet::Server Srv;
  populate(Srv);
  store::StoreState S;
  Srv.exportState(S);

  fleet::Server Restored;
  Restored.importState(S);

  // The quarantined genome stays quarantined after the reload...
  search::Genome G3;
  G3.Passes.push_back(lir::PassInstance{lir::PassId::Sink, 0, false});
  G3.Passes.push_back(lir::PassInstance{lir::PassId::Dce, 0, false});
  for (const fleet::Hint &H : Restored.hints("App"))
    EXPECT_NE(H.Key, G3.name());

  // ...and injectHint cannot resurrect it.
  Restored.injectHint("App", G3, 99.0);
  EXPECT_EQ(Restored.stats().InjectionsDropped, 1u);
  for (const fleet::Hint &H : Restored.hints("App"))
    EXPECT_NE(H.Key, G3.name());
}

TEST(StoreServer, ImportSkipsUnparseableEntriesButKeepsQuarantineKeys) {
  store::StoreState S;
  store::StoredApp A;
  A.Name = "App";
  A.Entries.push_back(makeEntry("gvn,dce", 1.5));
  // An unparseable non-quarantined entry is dropped with a warning...
  A.Entries.push_back(makeEntry("no-such-pass,dce", 2.0));
  // ...but an unparseable *quarantined* entry keeps its key: the key
  // alone must keep blocking injection.
  A.Entries.push_back(
      makeEntry("other-unknown-pass", 3.0, /*Quarantined=*/true));
  S.Apps.push_back(A);

  fleet::Server Srv;
  std::vector<std::string> Warnings;
  size_t N = Srv.importState(S, &Warnings);
  EXPECT_EQ(N, 2u);
  ASSERT_EQ(Warnings.size(), 1u);
  EXPECT_NE(Warnings[0].find("no-such-pass"), std::string::npos);

  std::vector<fleet::Hint> H = Srv.hints("App");
  ASSERT_EQ(H.size(), 1u);
  EXPECT_EQ(H[0].Key, "gvn,dce");
}
