# End-to-end check of the run-report flight recorder over the real
# binaries (invoked by ctest as the `run_report_e2e` test):
#
#   1. fig09_ga_evolution --fast --seed 1 --report A          (jobs 1)
#   2. fig09_ga_evolution --fast --seed 1 --jobs 4 --report B
#   3. ropt-report validate A        -> artifacts parse, manifest fields ok
#   4. ropt-report summarize A       -> renders without error
#   5. evaluations.jsonl A == B      -> provenance is jobs-invariant
#   6. ropt-report diff A B          -> zero fitness regressions
#   7. the same pair with --racing on -> racing provenance (early stops,
#      escalations, per-eval samples_spent) is byte-identical too
#   8. fig09 --sessions off -> evaluations.jsonl is byte-identical to the
#      default (sessions-on) run: fork-server replay sessions are a pure
#      backend optimization with no observable effect on provenance
#
# Inputs: -DFIG09=..., -DROPT_REPORT=..., -DWORK_DIR=...

foreach(Var FIG09 ROPT_REPORT WORK_DIR)
  if(NOT DEFINED ${Var})
    message(FATAL_ERROR "missing -D${Var}=...")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")
set(RunA "${WORK_DIR}/runA")
set(RunB "${WORK_DIR}/runB")
set(RunC "${WORK_DIR}/runC")
set(RunD "${WORK_DIR}/runD")
set(RunE "${WORK_DIR}/runE")

execute_process(
  COMMAND ${FIG09} --fast --seed 1 --apps Sieve --report ${RunA}
  RESULT_VARIABLE Rc OUTPUT_QUIET)
if(NOT Rc EQUAL 0)
  message(FATAL_ERROR "fig09 --report ${RunA} failed (${Rc})")
endif()

execute_process(
  COMMAND ${FIG09} --fast --seed 1 --apps Sieve --jobs 4 --report ${RunB}
  RESULT_VARIABLE Rc OUTPUT_QUIET)
if(NOT Rc EQUAL 0)
  message(FATAL_ERROR "fig09 --jobs 4 --report ${RunB} failed (${Rc})")
endif()

foreach(Artifact manifest.json evaluations.jsonl generations.jsonl
        metrics.json trace.json)
  if(NOT EXISTS "${RunA}/${Artifact}")
    message(FATAL_ERROR "missing artifact ${RunA}/${Artifact}")
  endif()
endforeach()

execute_process(
  COMMAND ${ROPT_REPORT} validate ${RunA}
  RESULT_VARIABLE Rc OUTPUT_VARIABLE Out ERROR_VARIABLE Err)
if(NOT Rc EQUAL 0)
  message(FATAL_ERROR "ropt-report validate failed (${Rc}):\n${Out}${Err}")
endif()

execute_process(
  COMMAND ${ROPT_REPORT} summarize ${RunA}
  RESULT_VARIABLE Rc OUTPUT_VARIABLE Out ERROR_VARIABLE Err)
if(NOT Rc EQUAL 0)
  message(FATAL_ERROR "ropt-report summarize failed (${Rc}):\n${Out}${Err}")
endif()
if(NOT Out MATCHES "Sieve")
  message(FATAL_ERROR "summary does not mention the app:\n${Out}")
endif()

# The tentpole guarantee: byte-identical provenance at any --jobs.
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          "${RunA}/evaluations.jsonl" "${RunB}/evaluations.jsonl"
  RESULT_VARIABLE Rc)
if(NOT Rc EQUAL 0)
  message(FATAL_ERROR
          "evaluations.jsonl differs between --jobs 1 and --jobs 4")
endif()

execute_process(
  COMMAND ${ROPT_REPORT} diff ${RunA} ${RunB}
  RESULT_VARIABLE Rc OUTPUT_VARIABLE Out ERROR_VARIABLE Err)
if(NOT Rc EQUAL 0)
  message(FATAL_ERROR "ropt-report diff found regressions (${Rc}):\n"
                      "${Out}${Err}")
endif()
if(NOT Out MATCHES "fitness regressions: 0")
  message(FATAL_ERROR "unexpected diff output:\n${Out}")
endif()

# The session acceptance bar: turning the fork-server replay sessions off
# must not change a byte of provenance. Sessions only change how a replay's
# address space is prepared (delta reset vs full rebuild); every replay
# still runs on a fresh vm::Runtime over bit-identical memory.
execute_process(
  COMMAND ${FIG09} --fast --seed 1 --apps Sieve --sessions off
          --report ${RunE}
  RESULT_VARIABLE Rc OUTPUT_QUIET)
if(NOT Rc EQUAL 0)
  message(FATAL_ERROR "fig09 --sessions off --report ${RunE} failed (${Rc})")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          "${RunA}/evaluations.jsonl" "${RunE}/evaluations.jsonl"
  RESULT_VARIABLE Rc)
if(NOT Rc EQUAL 0)
  message(FATAL_ERROR "evaluations.jsonl differs between --sessions on "
                      "(default) and --sessions off")
endif()

# The racing acceptance bar: the adaptive budget's decisions (who was
# early-stopped, who escalated, every samples_spent count) are part of
# the provenance and must also be jobs-invariant.
execute_process(
  COMMAND ${FIG09} --fast --seed 1 --apps Sieve --racing on
          --report ${RunC}
  RESULT_VARIABLE Rc OUTPUT_QUIET)
if(NOT Rc EQUAL 0)
  message(FATAL_ERROR "fig09 --racing on --report ${RunC} failed (${Rc})")
endif()

execute_process(
  COMMAND ${FIG09} --fast --seed 1 --apps Sieve --racing on --jobs 4
          --report ${RunD}
  RESULT_VARIABLE Rc OUTPUT_QUIET)
if(NOT Rc EQUAL 0)
  message(FATAL_ERROR
          "fig09 --racing on --jobs 4 --report ${RunD} failed (${Rc})")
endif()

execute_process(
  COMMAND ${ROPT_REPORT} validate ${RunC}
  RESULT_VARIABLE Rc OUTPUT_VARIABLE Out ERROR_VARIABLE Err)
if(NOT Rc EQUAL 0)
  message(FATAL_ERROR
          "ropt-report validate (racing) failed (${Rc}):\n${Out}${Err}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          "${RunC}/evaluations.jsonl" "${RunD}/evaluations.jsonl"
  RESULT_VARIABLE Rc)
if(NOT Rc EQUAL 0)
  message(FATAL_ERROR "racing evaluations.jsonl differs between "
                      "--jobs 1 and --jobs 4")
endif()

# summarize must render the replay-budget line for a racing run.
execute_process(
  COMMAND ${ROPT_REPORT} summarize ${RunC}
  RESULT_VARIABLE Rc OUTPUT_VARIABLE Out ERROR_VARIABLE Err)
if(NOT Rc EQUAL 0)
  message(FATAL_ERROR
          "ropt-report summarize (racing) failed (${Rc}):\n${Out}${Err}")
endif()
if(NOT Out MATCHES "replay budget")
  message(FATAL_ERROR
          "racing summary lacks the replay-budget line:\n${Out}")
endif()

message(STATUS "run_report_e2e: all artifacts valid, provenance "
               "jobs-invariant (fixed and racing), session-invariant, "
               "diff clean")
