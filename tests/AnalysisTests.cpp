//===- tests/AnalysisTests.cpp - The observability-loop analysis layer ------===//
//
// src/analysis/: span-DAG reconstruction (nesting, self time, critical
// path, top-spans rollup), the bottleneck-classifier rule cascade, the
// per-app region analysis (weight invariants, determinism across
// reruns), the criticality-scaled GA configuration, and the pruned-arm
// genome sampling.
//
//===----------------------------------------------------------------------===//

#include "analysis/RegionAnalysis.h"
#include "analysis/SpanDag.h"

#include "core/IterativeCompiler.h"
#include "lir/Passes.h"
#include "search/Genome.h"
#include "support/Random.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

using namespace ropt;

namespace {

TraceEvent span(const char *Name, uint64_t StartUs, uint64_t DurUs,
                uint32_t Tid) {
  TraceEvent E;
  E.Ph = TraceEvent::Phase::Complete;
  E.Name = Name;
  E.StartUs = StartUs;
  E.DurUs = DurUs;
  E.ThreadId = Tid;
  return E;
}

} // namespace

// --- SpanDag ----------------------------------------------------------------

TEST(SpanDag, NestsByContainmentAndComputesSelfTime) {
  // Thread 1: outer [0,100) containing early [10,30) and late [50,20);
  // thread 2: an unrelated root. Events arrive in RAII close order
  // (inner spans first).
  std::vector<TraceEvent> Events = {
      span("early", 10, 30, 1),
      span("late", 50, 20, 1),
      span("outer", 0, 100, 1),
      span("other", 0, 40, 2),
  };
  analysis::SpanDag Dag = analysis::SpanDag::fromEvents(Events);
  ASSERT_EQ(Dag.nodes().size(), 4u);
  ASSERT_EQ(Dag.roots().size(), 2u);

  const analysis::SpanNode *Outer = nullptr, *Early = nullptr,
                           *Late = nullptr, *Other = nullptr;
  for (const analysis::SpanNode &N : Dag.nodes()) {
    if (N.Name == "outer")
      Outer = &N;
    else if (N.Name == "early")
      Early = &N;
    else if (N.Name == "late")
      Late = &N;
    else if (N.Name == "other")
      Other = &N;
  }
  ASSERT_TRUE(Outer && Early && Late && Other);
  EXPECT_EQ(Outer->Parent, -1);
  EXPECT_EQ(Other->Parent, -1);
  EXPECT_EQ(Outer->Children.size(), 2u);
  EXPECT_EQ(&Dag.nodes()[static_cast<size_t>(Early->Parent)], Outer);
  EXPECT_EQ(&Dag.nodes()[static_cast<size_t>(Late->Parent)], Outer);
  // Self time: 100 - (30 + 20).
  EXPECT_EQ(Outer->SelfUs, 50u);
  EXPECT_EQ(Early->SelfUs, 30u);
  EXPECT_EQ(Other->SelfUs, 40u);
}

TEST(SpanDag, CriticalPathFollowsLongestChildren) {
  std::vector<TraceEvent> Events = {
      span("leaf", 12, 10, 1),   span("mid.a", 10, 30, 1),
      span("mid.b", 50, 20, 1),  span("root.big", 0, 100, 1),
      span("root.small", 0, 40, 2),
  };
  analysis::SpanDag Dag = analysis::SpanDag::fromEvents(Events);
  std::vector<int> Path = Dag.criticalPath();
  ASSERT_EQ(Path.size(), 3u);
  EXPECT_EQ(Dag.nodes()[static_cast<size_t>(Path[0])].Name, "root.big");
  EXPECT_EQ(Dag.nodes()[static_cast<size_t>(Path[1])].Name, "mid.a");
  EXPECT_EQ(Dag.nodes()[static_cast<size_t>(Path[2])].Name, "leaf");
}

TEST(SpanDag, TopSpansAggregateByName) {
  std::vector<TraceEvent> Events = {
      span("work", 0, 10, 1),
      span("work", 20, 30, 1),
      span("idle", 60, 5, 1),
  };
  analysis::SpanDag Dag = analysis::SpanDag::fromEvents(Events);
  std::vector<analysis::SpanStats> Top = Dag.topSpans(10);
  ASSERT_EQ(Top.size(), 2u);
  EXPECT_EQ(Top[0].Name, "work");
  EXPECT_EQ(Top[0].Count, 2u);
  EXPECT_EQ(Top[0].TotalUs, 40u);
  EXPECT_EQ(Top[1].Name, "idle");
}

// --- The classifier cascade -------------------------------------------------

namespace {

analysis::RegionFeatures featuresWith(uint64_t Cycles) {
  analysis::RegionFeatures F;
  F.Cycles = Cycles;
  F.Insns = Cycles / 4;
  return F;
}

} // namespace

TEST(Classifier, NativeHeavyWinsTheCascade) {
  analysis::RegionFeatures F = featuresWith(10000);
  F.NativeCycles = 5000;          // nativeShare 1/3 >= 0.25.
  F.MemReads = 4000;              // Memory traffic too: native must win.
  F.CacheMisses = 200;
  EXPECT_EQ(analysis::classify(F), analysis::Bottleneck::NativeHeavy);
  EXPECT_STREQ(analysis::bottleneckName(analysis::Bottleneck::NativeHeavy),
               "native_heavy");
}

TEST(Classifier, MemoryBoundBeforeBranchy) {
  analysis::RegionFeatures F = featuresWith(10000);
  F.MemReads = 1000;
  F.CacheMisses = 120; // 1000*3 + 120*28 = 6360 cycles -> share 0.64.
  F.Mispredicts = 100; // 40/kiloinsn, also above the branchy bar.
  EXPECT_EQ(analysis::classify(F), analysis::Bottleneck::MemoryBound);
}

TEST(Classifier, BranchyComputeAndBalanced) {
  analysis::RegionFeatures Branchy = featuresWith(10000);
  Branchy.Branches = 1000;
  Branchy.Mispredicts = 50; // 20/kiloinsn.
  EXPECT_EQ(analysis::classify(Branchy), analysis::Bottleneck::Branchy);

  analysis::RegionFeatures Compute = featuresWith(10000);
  Compute.Mispredicts = 2; // 0.8/kiloinsn, no memory traffic.
  EXPECT_EQ(analysis::classify(Compute), analysis::Bottleneck::Compute);

  analysis::RegionFeatures Balanced = featuresWith(10000);
  Balanced.MemReads = 700; // share ~0.21: between compute and memory.
  Balanced.Mispredicts = 20; // 8/kiloinsn: between compute and branchy.
  EXPECT_EQ(analysis::classify(Balanced), analysis::Bottleneck::Balanced);
}

TEST(Classifier, NamesRoundTrip) {
  using analysis::Bottleneck;
  for (Bottleneck B :
       {Bottleneck::NativeHeavy, Bottleneck::MemoryBound,
        Bottleneck::Branchy, Bottleneck::Compute, Bottleneck::Balanced})
    EXPECT_EQ(analysis::bottleneckFromName(analysis::bottleneckName(B)), B);
  EXPECT_EQ(analysis::bottleneckFromName("gibberish"),
            Bottleneck::Balanced);
}

TEST(Classifier, PrunedMasksNeverCoverTheRegistry) {
  uint32_t Full = 0;
  for (const lir::PassDescriptor &D : lir::passRegistry())
    Full |= 1u << static_cast<uint32_t>(D.Id);
  using analysis::Bottleneck;
  for (Bottleneck B :
       {Bottleneck::NativeHeavy, Bottleneck::MemoryBound,
        Bottleneck::Branchy, Bottleneck::Compute, Bottleneck::Balanced}) {
    uint32_t Mask = analysis::prunedPassMask(B);
    EXPECT_NE(Mask & Full, Full) << analysis::bottleneckName(B);
  }
  EXPECT_EQ(analysis::prunedPassMask(Bottleneck::Balanced), 0u);
}

// --- Region analysis over a real profile ------------------------------------

namespace {

analysis::AppAnalysis analyzeOf(const std::string &Name) {
  workloads::Application App = workloads::buildByName(Name);
  core::IterativeCompiler Pipeline(core::PipelineConfig::paperDefaults());
  core::IterativeCompiler::ProfiledApp Profiled = Pipeline.profileApp(App);
  return analysis::analyzeApp(*App.File, Profiled.Profile, Profiled.RA);
}

bool sameAnalysis(const analysis::AppAnalysis &A,
                  const analysis::AppAnalysis &B) {
  if (A.Regions.size() != B.Regions.size())
    return false;
  for (size_t I = 0; I != A.Regions.size(); ++I) {
    const analysis::RegionReport &X = A.Regions[I];
    const analysis::RegionReport &Y = B.Regions[I];
    if (X.Root != Y.Root || X.RootName != Y.RootName ||
        X.Methods != Y.Methods || X.Label != Y.Label ||
        X.CriticalPathCycles != Y.CriticalPathCycles ||
        X.CriticalChain != Y.CriticalChain || X.Slack != Y.Slack ||
        X.BudgetWeight != Y.BudgetWeight ||
        X.BudgetScale != Y.BudgetScale ||
        X.Features.Cycles != Y.Features.Cycles ||
        X.Features.Insns != Y.Features.Insns ||
        X.Features.Mispredicts != Y.Features.Mispredicts ||
        X.Features.CacheMisses != Y.Features.CacheMisses ||
        X.Features.NativeCycles != Y.Features.NativeCycles)
      return false;
  }
  return true;
}

} // namespace

TEST(RegionAnalysis, WeightInvariantsHoldOnRealProfiles) {
  for (const char *Name : {"FFT", "Sieve", "Reversi Android"}) {
    analysis::AppAnalysis A = analyzeOf(Name);
    ASSERT_FALSE(A.empty()) << Name;

    // Hottest-first: index 0 is the slack-0 critical region and keeps
    // the full budget.
    EXPECT_EQ(A.Regions.front().Slack, 0u) << Name;
    EXPECT_DOUBLE_EQ(A.Regions.front().BudgetScale, 1.0) << Name;
    EXPECT_EQ(A.critical(), &A.Regions.front()) << Name;

    double WeightSum = 0.0;
    uint64_t PrevCycles = ~0ull;
    int SlackZero = 0;
    for (const analysis::RegionReport &R : A.Regions) {
      EXPECT_LE(R.Features.Cycles, PrevCycles) << Name;
      PrevCycles = R.Features.Cycles;
      WeightSum += R.BudgetWeight;
      SlackZero += R.Slack == 0 ? 1 : 0;
      EXPECT_GT(R.BudgetWeight, 0.0) << Name;
      EXPECT_LE(R.BudgetScale, 1.0) << Name;
      // The critical chain starts at the region root and its cycles are
      // bounded by the closure's.
      ASSERT_FALSE(R.CriticalChain.empty()) << Name;
      EXPECT_EQ(R.CriticalChain.front(), R.Root) << Name;
      EXPECT_LE(R.CriticalPathCycles, R.Features.Cycles) << Name;
      EXPECT_EQ(A.byRoot(R.Root), &R) << Name;
    }
    EXPECT_NEAR(WeightSum, 1.0, 1e-12) << Name;
    EXPECT_EQ(SlackZero, 1) << Name;

    // The critical region dominates: its weight is the maximum.
    for (const analysis::RegionReport &R : A.Regions)
      EXPECT_LE(R.BudgetWeight, A.Regions.front().BudgetWeight) << Name;
  }
  EXPECT_EQ(analyzeOf("FFT").byRoot(dex::InvalidId), nullptr);
}

TEST(RegionAnalysis, DeterministicAcrossReruns) {
  // The analysis is a pure function of the deterministic profile, so two
  // independent profile-and-analyze passes agree exactly — the property
  // `ropt-report analyze` byte-identity rests on.
  for (const char *Name : {"FFT", "Dhrystone"}) {
    analysis::AppAnalysis A = analyzeOf(Name);
    analysis::AppAnalysis B = analyzeOf(Name);
    EXPECT_TRUE(sameAnalysis(A, B)) << Name;
  }
}

// --- Criticality-scaled GA configuration ------------------------------------

TEST(ScaledGaConfig, ScaleOneAndAboveReturnBaseUntouched) {
  search::GaConfig Base; // 11 x 50 paper defaults.
  search::GaConfig Same = core::scaledGaConfig(Base, 1.0);
  EXPECT_EQ(Same.Generations, Base.Generations);
  EXPECT_EQ(Same.PopulationSize, Base.PopulationSize);
  EXPECT_EQ(Same.TournamentSize, Base.TournamentSize);
  EXPECT_EQ(Same.EliteCount, Base.EliteCount);
  EXPECT_EQ(Same.HillClimbRounds, Base.HillClimbRounds);
  search::GaConfig Bigger = core::scaledGaConfig(Base, 7.5);
  EXPECT_EQ(Bigger.Generations, Base.Generations);
  EXPECT_EQ(Bigger.PopulationSize, Base.PopulationSize);
}

TEST(ScaledGaConfig, EvaluationsScaleRoughlyLinearly) {
  search::GaConfig Base;
  search::GaConfig Quarter = core::scaledGaConfig(Base, 0.25);
  double Ratio =
      static_cast<double>(Quarter.Generations * Quarter.PopulationSize) /
      static_cast<double>(Base.Generations * Base.PopulationSize);
  EXPECT_GT(Ratio, 0.15);
  EXPECT_LT(Ratio, 0.40);
  EXPECT_LE(Quarter.TournamentSize, Quarter.PopulationSize);
  EXPECT_LT(Quarter.EliteCount, Quarter.PopulationSize);
  EXPECT_LE(Quarter.HillClimbRounds, Quarter.Generations);
}

TEST(ScaledGaConfig, FloorsKeepTinyScalesSearchable) {
  search::GaConfig Base;
  search::GaConfig Tiny = core::scaledGaConfig(Base, 1e-6);
  EXPECT_GE(Tiny.Generations, 2);
  EXPECT_GE(Tiny.PopulationSize, 8);
  EXPECT_GE(Tiny.TournamentSize, 1);
  EXPECT_LE(Tiny.EliteCount, Tiny.PopulationSize - 1);
}

// --- Pruned-arm genome sampling ---------------------------------------------

TEST(Genome, RandomGeneRespectsDisabledPassMask) {
  const auto &Registry = lir::passRegistry();
  ASSERT_GE(Registry.size(), 4u);
  search::GenomeConfig Config;
  Config.DisabledPassMask =
      (1u << static_cast<uint32_t>(Registry[0].Id)) |
      (1u << static_cast<uint32_t>(Registry[2].Id));
  Rng R(42);
  for (int I = 0; I != 2000; ++I) {
    lir::PassInstance P = search::randomGene(R, Config);
    EXPECT_EQ(Config.DisabledPassMask &
                  (1u << static_cast<uint32_t>(P.Id)),
              0u);
  }
  // An unmasked configuration still reaches every arm.
  search::GenomeConfig Open;
  std::set<lir::PassId> Seen;
  Rng R2(7);
  for (int I = 0; I != 4000; ++I)
    Seen.insert(search::randomGene(R2, Open).Id);
  EXPECT_EQ(Seen.size(), Registry.size());
}
