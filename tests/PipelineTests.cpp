//===- tests/PipelineTests.cpp - core/ end-to-end tests ----------------------===//
//
// The full Figure-6 loop on real applications, with a scaled-down GA so
// the suite stays fast. The full-scale paper configuration runs in the
// bench harnesses.
//
//===----------------------------------------------------------------------===//

#include "core/IterativeCompiler.h"
#include "core/OnlineEvaluator.h"
#include "support/Statistics.h"

#include <gtest/gtest.h>

using namespace ropt;
using namespace ropt::core;
using namespace ropt::workloads;

namespace {

PipelineConfig fastConfig(uint64_t Seed = 1) {
  PipelineConfig C;
  C.Seed = Seed;
  C.Search.GA.Generations = 4;
  C.Search.GA.PopulationSize = 12;
  C.Search.GA.HillClimbRounds = 1;
  C.Search.MaxReplaysPerEvaluation = 5;
  C.Capture.ProfileSessions = 4;
  C.Measure.FinalMeasurementRuns = 6;
  return C;
}

} // namespace

TEST(Pipeline, EndToEndOnFFT) {
  IterativeCompiler Pipeline(fastConfig());
  OptimizationReport Report = Pipeline.optimize(buildByName("FFT"));
  ASSERT_TRUE(Report.Succeeded) << Report.FailureReason;

  // The region is the FFT kernel and dominates the runtime.
  EXPECT_GT(Report.Breakdown.Compiled, 0.4);
  // Captured pages: a handful (two 4KB coefficient arrays + bookkeeping).
  EXPECT_GT(Report.Cap.Pages.size(), 2u);
  EXPECT_LT(Report.Cap.Pages.size(), 200u);
  // Capture overhead lands in the paper's millisecond band.
  EXPECT_GT(Report.Cap.Overheads.totalMs(), 1.0);
  EXPECT_LT(Report.Cap.Overheads.totalMs(), 60.0);

  // The GA's winner beats the Android baseline at region level...
  EXPECT_LT(Report.RegionBest, Report.RegionAndroid);
  // ...and the whole program speeds up outside the replay environment.
  EXPECT_GT(Report.speedupGaOverAndroid(), 1.02);

  // The search tried-and-rejected unsafe binaries without ever exposing
  // them: the counters record discarded failures.
  EXPECT_GT(Report.Counters.Ok, 0);
  EXPECT_GT(Report.Counters.total(), 40);
}

TEST(Pipeline, EndToEndOnInteractiveApp) {
  IterativeCompiler Pipeline(fastConfig(3));
  OptimizationReport Report =
      Pipeline.optimize(buildByName("Reversi Android"));
  ASSERT_TRUE(Report.Succeeded) << Report.FailureReason;
  EXPECT_GT(Report.speedupGaOverAndroid(), 1.0);
  // Interactive: meaningful JNI share in the breakdown.
  EXPECT_GT(Report.Breakdown.Jni, 0.05);
}

TEST(Pipeline, ReportsAreSeedDeterministic) {
  auto Digest = [](uint64_t Seed) {
    IterativeCompiler Pipeline(fastConfig(Seed));
    OptimizationReport R = Pipeline.optimize(buildByName("Sieve"));
    EXPECT_TRUE(R.Succeeded) << R.FailureReason;
    return R.Best.G.name() + "/" + std::to_string(R.RegionBest);
  };
  EXPECT_EQ(Digest(11), Digest(11));
}

TEST(Pipeline, ProfilePhaseFindsKernelsEverywhere) {
  IterativeCompiler Pipeline(fastConfig());
  for (const char *Name : {"SOR", "MonteCarlo", "Brainstonz"}) {
    IterativeCompiler::ProfiledApp P = Pipeline.profileApp(buildByName(Name));
    ASSERT_TRUE(P.Region.has_value()) << Name;
    EXPECT_GT(P.Breakdown.Compiled, 0.2) << Name;
  }
}

// --- OnlineEvaluator (motivation experiments, scaled down) ---------------------

TEST(OnlineEvaluatorTest, RandomSequencesProduceAllOutcomeClasses) {
  OnlineEvaluator Eval(buildByName("FFT"), fastConfig(5));
  ASSERT_TRUE(Eval.ready());
  OutcomeHistogram H = Eval.classifyRandomSequences(80);
  EXPECT_EQ(H.total(), 80);
  // The Figure-1 shape: a majority correct, a visible share of
  // runtime-visible breakage, some compiler-level failures.
  EXPECT_GT(H.Correct, 30);
  EXPECT_GT(H.RuntimeCrash + H.WrongOutput + H.RuntimeTimeout, 3);
}

TEST(OnlineEvaluatorTest, RandomCorrectBinariesAreSlowerThanAndroid) {
  OnlineEvaluator Eval(buildByName("FFT"), fastConfig(6));
  ASSERT_TRUE(Eval.ready());
  std::vector<double> Speedups = Eval.randomCorrectSpeedups(20);
  ASSERT_GE(Speedups.size(), 15u);
  // Figure 2: virtually all random correct binaries lose to Android.
  int Slower = 0;
  for (double S : Speedups)
    Slower += (S < 1.0);
  EXPECT_GT(Slower, static_cast<int>(Speedups.size() * 3) / 4);
}

TEST(OnlineEvaluatorTest, OfflineConvergesFasterThanOnline) {
  OnlineEvaluator Eval(buildByName("FFT"), fastConfig(7));
  ASSERT_TRUE(Eval.ready());
  OnlineEvaluator::Convergence C = Eval.convergence(160);
  ASSERT_FALSE(C.Online.empty());
  ASSERT_FALSE(C.Offline.empty());
  EXPECT_GT(C.TrueSpeedup, 1.1); // -O1 really beats -O0 here

  // Offline nails the estimate almost immediately; online is still wide at
  // the same evaluation count. Compare CI width at a small prefix.
  const ConvergencePoint &OffEarly = C.Offline[2];
  const ConvergencePoint &OnEarly = C.Online[2];
  double OffWidth = OffEarly.Ci95High - OffEarly.Ci95Low;
  double OnWidth = OnEarly.Ci95High - OnEarly.Ci95Low;
  EXPECT_LT(OffWidth, OnWidth / 4);

  // And the offline estimate is close to the truth from the start.
  EXPECT_NEAR(OffEarly.Estimate, C.TrueSpeedup, 0.05 * C.TrueSpeedup);
}

// --- Multi-capture evaluation (paper §5.4's "realistic system") -----------------

TEST(MultiCapture, EvaluatesAcrossSeveralInputs) {
  workloads::Application App = buildByName("FFT");
  PipelineConfig Config = fastConfig(21);
  IterativeCompiler Pipeline(Config);
  auto Profiled = Pipeline.profileApp(App);
  ASSERT_TRUE(Profiled.Region.has_value());

  std::vector<CapturedRegion> Captures =
      Pipeline.captureRegionMulti(*Profiled.Instance, *Profiled.Region, 3);
  ASSERT_EQ(Captures.size(), 3u);
  // Each capture snapshots a different session (different args/state).
  EXPECT_NE(Captures[0].Cap.Args[0].Raw, Captures[1].Cap.Args[0].Raw);

  RegionEvaluator Multi(App, *Profiled.Region, Captures, Config);
  search::Evaluation Android = Multi.evaluateAndroid();
  ASSERT_TRUE(Android.ok());

  // The multi-capture fitness is the total across captures: roughly the
  // sum of the single-capture fitnesses.
  double SingleSum = 0;
  for (const CapturedRegion &C : Captures) {
    RegionEvaluator Single(App, *Profiled.Region, C.Cap, C.Map, C.Profile,
                           Config);
    search::Evaluation E = Single.evaluateAndroid();
    ASSERT_TRUE(E.ok());
    SingleSum += E.MedianCycles;
  }
  EXPECT_NEAR(Android.MedianCycles, SingleSum, 0.05 * SingleSum);

  // A good pipeline still verifies against all three captures.
  search::Evaluation O2 = Multi.evaluatePipeline(lir::o2Pipeline());
  EXPECT_TRUE(O2.ok());
  EXPECT_LT(O2.MedianCycles, Android.MedianCycles);
}

TEST(MultiCapture, FullPipelineWithThreeCaptures) {
  PipelineConfig Config = fastConfig(22);
  Config.Capture.CapturesPerRegion = 3;
  IterativeCompiler Pipeline(Config);
  OptimizationReport Report = Pipeline.optimize(buildByName("SOR"));
  ASSERT_TRUE(Report.Succeeded) << Report.FailureReason;
  EXPECT_GT(Report.speedupGaOverAndroid(), 1.0);
}

// --- Long-run soak after installing the GA winner --------------------------------
//
// The paper's end state: the winning binary is installed on the user's
// device and lives through weeks of real sessions. Fifty sessions with
// evolving app state must stay correct (identical results to a stock
// instance run in lockstep) and stay fast.

TEST(Soak, InstalledWinnerSurvivesFiftySessions) {
  workloads::Application App = buildByName("Sieve");
  PipelineConfig Config = fastConfig(31);
  IterativeCompiler Pipeline(Config);
  OptimizationReport Report = Pipeline.optimize(buildByName("Sieve"));
  ASSERT_TRUE(Report.Succeeded) << Report.FailureReason;

  // Re-create the winner's code cache.
  auto Profiled = Pipeline.profileApp(App);
  ASSERT_TRUE(Profiled.Region.has_value());
  auto Cap = Pipeline.captureRegion(*Profiled.Instance, *Profiled.Region);
  ASSERT_TRUE(Cap.has_value());
  RegionEvaluator Eval(App, *Profiled.Region, Cap->Cap, Cap->Map,
                       Cap->Profile, Config);
  std::optional<vm::CodeCache> Winner = Eval.compileRegion(Report.Best.G);
  ASSERT_TRUE(Winner.has_value());

  AppInstance Stock(App, /*Seed=*/909);
  AppInstance Tuned(App, /*Seed=*/909);
  Tuned.overrideRegionCode(Report.Region.Methods, *Winner);

  uint64_t StockCycles = 0, TunedCycles = 0;
  for (int I = 0; I != 50; ++I) {
    vm::CallResult S = Stock.runSession(App.DefaultParam + (I % 9));
    vm::CallResult T = Tuned.runSession(App.DefaultParam + (I % 9));
    ASSERT_TRUE(S.ok()) << "stock session " << I;
    ASSERT_TRUE(T.ok()) << "tuned session " << I;
    // Lockstep: identical observable results on every single session.
    ASSERT_EQ(S.Ret.Raw, T.Ret.Raw) << "diverged at session " << I;
    StockCycles += S.Cycles;
    TunedCycles += T.Cycles;
  }
  // And the win persists across the whole soak.
  EXPECT_LT(TunedCycles, StockCycles);
}
