//===- tests/TestPrograms.h - Shared bytecode fixtures -----------*- C++ -*-===//
//
// Part of ReplayOpt (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small bytecode programs reused by the hgraph/lir/replay test suites,
/// plus a VM harness for differential interpreter-vs-compiled testing.
///
//===----------------------------------------------------------------------===//

#ifndef ROPT_TESTS_TEST_PROGRAMS_H
#define ROPT_TESTS_TEST_PROGRAMS_H

#include "dex/Builder.h"
#include "vm/Runtime.h"

#include <memory>
#include <string>
#include <vector>

namespace ropt {
namespace testprogs {

/// sumTo(n) = 0 + 1 + ... + (n-1).
inline dex::MethodId defineSumTo(dex::DexBuilder &B) {
  using namespace dex;
  MethodId M = B.declareFunction(InvalidId, "sumTo", 1, true);
  FunctionBuilder F = B.beginBody(M);
  RegIdx Sum = F.newReg(), I = F.newReg(), One = F.immI(1);
  F.constI(Sum, 0);
  F.constI(I, 0);
  auto Head = F.newLabel(), Exit = F.newLabel();
  F.bind(Head);
  F.ifGe(I, F.param(0), Exit);
  F.addI(Sum, Sum, I);
  F.addI(I, I, One);
  F.jump(Head);
  F.bind(Exit);
  F.ret(Sum);
  B.endBody(F);
  return M;
}

/// dotProduct(n): builds two n-element double arrays and dots them.
inline dex::MethodId defineDotProduct(dex::DexBuilder &B) {
  using namespace dex;
  MethodId M = B.declareFunction(InvalidId, "dot", 1, true);
  FunctionBuilder F = B.beginBody(M);
  RegIdx N = F.param(0);
  RegIdx A = F.newReg(), C = F.newReg(), I = F.newReg(), One = F.immI(1);
  F.newArray(A, N, Type::F64);
  F.newArray(C, N, Type::F64);
  F.constI(I, 0);
  auto FillHead = F.newLabel(), FillDone = F.newLabel();
  F.bind(FillHead);
  F.ifGe(I, N, FillDone);
  RegIdx X = F.newReg();
  F.i2f(X, I);
  F.astore(A, I, X, Type::F64);
  RegIdx Y = F.newReg(), Two = F.immF(2.0);
  F.mulF(Y, X, Two);
  F.astore(C, I, Y, Type::F64);
  F.addI(I, I, One);
  F.jump(FillHead);
  F.bind(FillDone);
  RegIdx Acc = F.newReg();
  F.constF(Acc, 0.0);
  F.constI(I, 0);
  auto DotHead = F.newLabel(), DotDone = F.newLabel();
  F.bind(DotHead);
  F.ifGe(I, N, DotDone);
  RegIdx Va = F.newReg(), Vc = F.newReg(), P = F.newReg();
  F.aload(Va, A, I, Type::F64);
  F.aload(Vc, C, I, Type::F64);
  F.mulF(P, Va, Vc);
  F.addF(Acc, Acc, P);
  F.addI(I, I, One);
  F.jump(DotHead);
  F.bind(DotDone);
  F.ret(Acc);
  B.endBody(F);
  return M;
}

/// Polymorphic shapes: makes a Square or Circle by parity and calls the
/// virtual area(), looping `n` times and summing.
inline dex::MethodId definePolyShapes(dex::DexBuilder &B) {
  using namespace dex;
  ClassId Shape = B.addClass("Shape");
  ClassId Square = B.addClass("Square", Shape);
  ClassId Circle = B.addClass("Circle", Shape);
  FieldId Size = B.addField(Shape, "size", Type::I64);
  MethodId Area = B.declareVirtual(Shape, "area", 1, true);
  MethodId SquareArea = B.declareVirtual(Square, "area", 1, true);
  MethodId CircleArea = B.declareVirtual(Circle, "area", 1, true);
  {
    FunctionBuilder F = B.beginBody(Area);
    RegIdx Z = F.immI(0);
    F.ret(Z);
    B.endBody(F);
  }
  {
    FunctionBuilder F = B.beginBody(SquareArea);
    RegIdx S = F.newReg();
    F.getField(S, F.param(0), Size);
    F.mulI(S, S, S);
    F.ret(S);
    B.endBody(F);
  }
  {
    FunctionBuilder F = B.beginBody(CircleArea);
    RegIdx S = F.newReg(), Three = F.immI(3);
    F.getField(S, F.param(0), Size);
    F.mulI(S, S, S);
    F.mulI(S, S, Three);
    F.ret(S);
    B.endBody(F);
  }
  MethodId M = B.declareFunction(InvalidId, "polyLoop", 1, true);
  FunctionBuilder F = B.beginBody(M);
  RegIdx N = F.param(0);
  RegIdx I = F.newReg(), Sum = F.newReg(), One = F.immI(1),
         Two = F.immI(2);
  F.constI(I, 0);
  F.constI(Sum, 0);
  auto Head = F.newLabel(), Done = F.newLabel(), MakeCircle = F.newLabel(),
       Call = F.newLabel();
  F.bind(Head);
  F.ifGe(I, N, Done);
  RegIdx Par = F.newReg(), Obj = F.newReg();
  F.remI(Par, I, Two);
  F.ifNez(Par, MakeCircle);
  F.newInstance(Obj, Square);
  F.jump(Call);
  F.bind(MakeCircle);
  F.newInstance(Obj, Circle);
  F.bind(Call);
  F.putField(Obj, Size, I);
  RegIdx Ar = F.newReg();
  F.invokeVirtual(Ar, Area, {Obj});
  F.addI(Sum, Sum, Ar);
  F.addI(I, I, One);
  F.jump(Head);
  F.bind(Done);
  F.ret(Sum);
  B.endBody(F);
  return M;
}

/// mathMix(x): exercises math natives sin/cos/pow.
inline dex::MethodId defineMathMix(dex::DexBuilder &B) {
  using namespace dex;
  NativeId Sin = B.addNative("sin", 1, true, false, false, "sin");
  NativeId Cos = B.addNative("cos", 1, true, false, false, "cos");
  NativeId Pow = B.addNative("pow", 2, true, false, false, "pow");
  MethodId M = B.declareFunction(InvalidId, "mathMix", 1, true);
  FunctionBuilder F = B.beginBody(M);
  RegIdx S = F.newReg(), C = F.newReg(), P = F.newReg(), R = F.newReg();
  F.invokeNative(S, Sin, {F.param(0)});
  F.invokeNative(C, Cos, {F.param(0)});
  F.invokeNative(P, Pow, {S, C});
  F.addF(R, S, C);
  F.addF(R, R, P);
  F.ret(R);
  B.endBody(F);
  return M;
}

/// Nested loops over an i64 matrix (flattened) — bounds checks and
/// loop-invariant address math to optimize.
inline dex::MethodId defineMatrixSum(dex::DexBuilder &B) {
  using namespace dex;
  MethodId M = B.declareFunction(InvalidId, "matSum", 1, true);
  FunctionBuilder F = B.beginBody(M);
  RegIdx N = F.param(0);
  RegIdx Size = F.newReg(), Arr = F.newReg(), I = F.newReg(),
         J = F.newReg(), One = F.immI(1);
  F.mulI(Size, N, N);
  F.newArray(Arr, Size, Type::I64);
  F.constI(I, 0);
  auto IHead = F.newLabel(), IDone = F.newLabel();
  F.bind(IHead);
  F.ifGe(I, N, IDone);
  F.constI(J, 0);
  auto JHead = F.newLabel(), JDone = F.newLabel();
  F.bind(JHead);
  F.ifGe(J, N, JDone);
  RegIdx Idx = F.newReg(), V = F.newReg();
  F.mulI(Idx, I, N);
  F.addI(Idx, Idx, J);
  F.addI(V, I, J);
  F.astore(Arr, Idx, V, Type::I64);
  F.addI(J, J, One);
  F.jump(JHead);
  F.bind(JDone);
  F.addI(I, I, One);
  F.jump(IHead);
  F.bind(IDone);
  // Sum it back.
  RegIdx Sum = F.newReg(), K = F.newReg();
  F.constI(Sum, 0);
  F.constI(K, 0);
  auto KHead = F.newLabel(), KDone = F.newLabel();
  F.bind(KHead);
  F.ifGe(K, Size, KDone);
  RegIdx E = F.newReg();
  F.aload(E, Arr, K, Type::I64);
  F.addI(Sum, Sum, E);
  F.addI(K, K, One);
  F.jump(KHead);
  F.bind(KDone);
  F.ret(Sum);
  B.endBody(F);
  return M;
}

/// A harness holding the file and a booted runtime.
struct Harness {
  dex::DexFile File;
  os::AddressSpace Space;
  vm::NativeRegistry Natives;
  std::unique_ptr<vm::Runtime> RT;

  explicit Harness(dex::DexFile F,
                   vm::RuntimeConfig Config = vm::RuntimeConfig())
      : File(std::move(F)),
        Natives(vm::NativeRegistry::standardLibrary()) {
    vm::Runtime::mapStandardLayout(Space, File, Config);
    RT = std::make_unique<vm::Runtime>(Space, File, Natives, Config);
  }

  vm::CallResult run(const std::string &Name,
                     std::vector<vm::Value> Args = {}) {
    return RT->call(File.findMethod(Name), Args);
  }
};

} // namespace testprogs
} // namespace ropt

#endif // ROPT_TESTS_TEST_PROGRAMS_H
