//===- tests/LirTests.cpp - lir/ unit and differential tests -----------------===//

#include "hgraph/Build.h"
#include "lir/Analysis.h"
#include "lir/Backend.h"
#include "lir/Codegen.h"
#include "lir/FromHGraph.h"
#include "lir/Passes.h"
#include "tests/TestPrograms.h"

#include <gtest/gtest.h>

using namespace ropt;
using namespace ropt::dex;
using namespace ropt::lir;
using namespace ropt::testprogs;
using vm::MOpcode;

namespace {

LFunction buildLir(const DexFile &File, const std::string &Name) {
  MethodId Id = File.findMethod(Name);
  EXPECT_NE(Id, InvalidId);
  return fromHGraph(hgraph::buildHGraph(File, Id));
}

size_t countLOps(const LFunction &Fn, MOpcode Op) {
  size_t Count = 0;
  for (const LBlock &B : Fn.Blocks)
    for (const LInsn &I : B.Insns)
      Count += (I.Op == Op);
  return Count;
}

size_t countPhis(const LFunction &Fn) {
  size_t Count = 0;
  for (const LBlock &B : Fn.Blocks)
    Count += B.Phis.size();
  return Count;
}

/// Runs `Name` interpreted and through the given pipeline; expects equal
/// results, valid IR, and no traps.
void expectPipelineParity(const DexFile &File, const std::string &Name,
                          std::vector<vm::Value> Args,
                          std::vector<PassInstance> Pipeline,
                          uint64_t *CompiledCycles = nullptr) {
  MethodId Id = File.findMethod(Name);
  ASSERT_NE(Id, InvalidId);

  Harness Interp(File);
  Interp.RT->setMode(vm::ExecMode::InterpretOnly);
  vm::CallResult RI = Interp.RT->call(Id, Args);
  ASSERT_EQ(RI.Trap, vm::TrapKind::None);

  CompileOptions Options;
  Options.Pipeline = std::move(Pipeline);
  Harness Compiled(File);
  std::vector<MethodId> All;
  for (const auto &M : File.methods())
    if (!M.IsNative)
      All.push_back(M.Id);
  CompileStatus Status =
      compileAllLlvm(File, All, Options, Compiled.RT->codeCache());
  ASSERT_EQ(Status, CompileStatus::Ok);
  vm::CallResult RC = Compiled.RT->call(Id, Args);
  ASSERT_EQ(RC.Trap, vm::TrapKind::None) << Name;
  EXPECT_EQ(RI.Ret.Raw, RC.Ret.Raw) << Name;
  if (CompiledCycles)
    *CompiledCycles = RC.Cycles;
}

PassInstance mk(PassId Id, int IntParam = 0, bool Aggressive = false) {
  PassInstance P;
  P.Id = Id;
  P.IntParam = IntParam;
  P.Aggressive = Aggressive;
  return P;
}

} // namespace

// --- Analysis ------------------------------------------------------------------

TEST(Analysis, DomTreeOfLoop) {
  DexBuilder B;
  defineSumTo(B);
  DexFile File = B.build();
  LFunction Fn = buildLir(File, "sumTo");
  DomTree DT = DomTree::compute(Fn);

  // Entry dominates everything reachable.
  for (uint32_t Id : Fn.reversePostOrder())
    EXPECT_TRUE(DT.dominates(0, Id));
  EXPECT_EQ(DT.idom(0), 0u);
}

TEST(Analysis, LoopDetection) {
  DexBuilder B;
  defineSumTo(B);
  DexFile File = B.build();
  LFunction Fn = buildLir(File, "sumTo");
  DomTree DT = DomTree::compute(Fn);
  LoopInfo LI = LoopInfo::compute(Fn, DT);

  ASSERT_EQ(LI.loops().size(), 1u);
  const Loop &L = LI.loops()[0];
  EXPECT_GE(L.Blocks.size(), 2u);
  EXPECT_EQ(L.Latches.size(), 1u);
  EXPECT_FALSE(L.Exits.empty());
}

TEST(Analysis, NestedLoops) {
  DexBuilder B;
  defineMatrixSum(B);
  DexFile File = B.build();
  LFunction Fn = buildLir(File, "matSum");
  DomTree DT = DomTree::compute(Fn);
  LoopInfo LI = LoopInfo::compute(Fn, DT);
  // i-loop, j-loop, k-loop.
  EXPECT_EQ(LI.loops().size(), 3u);
}

// --- SSA construction --------------------------------------------------------------

TEST(FromHGraph, ProducesValidSsa) {
  DexBuilder B;
  defineSumTo(B);
  defineDotProduct(B);
  defineMatrixSum(B);
  definePolyShapes(B);
  DexFile File = B.build();

  for (const char *Name : {"sumTo", "dot", "matSum", "polyLoop"}) {
    LFunction Fn = buildLir(File, Name);
    std::string Error;
    EXPECT_TRUE(Fn.verify(Error)) << Name << ": " << Error;
    EXPECT_GT(countPhis(Fn), 0u) << Name; // loops need phis
  }
}

TEST(FromHGraph, LoopVariablesBecomePhis) {
  DexBuilder B;
  defineSumTo(B);
  DexFile File = B.build();
  LFunction Fn = buildLir(File, "sumTo");
  // sum and i merge at the loop header: at least 2 phis somewhere.
  EXPECT_GE(countPhis(Fn), 2u);
}

TEST(FromHGraph, ConservativeBoundariesDuplicateSafepoints) {
  DexBuilder B;
  defineSumTo(B);
  DexFile File = B.build();
  MethodId Id = File.findMethod("sumTo");
  hgraph::HGraph G = hgraph::buildHGraph(File, Id);

  TranslateOptions Loose;
  Loose.ConservativeBoundaries = false;
  LFunction Tight = fromHGraph(G, Loose);
  LFunction Fat = fromHGraph(G);
  EXPECT_EQ(countLOps(Fat, MOpcode::MSafepoint),
            2 * countLOps(Tight, MOpcode::MSafepoint));
}

TEST(FromHGraph, RoundTripSemantics) {
  DexBuilder B;
  defineSumTo(B);
  DexFile File = B.build();
  // No passes at all (-O0): translate + codegen must still be correct.
  expectPipelineParity(File, "sumTo", {vm::Value::fromI64(137)}, {});
}

// --- Scalar pass unit tests --------------------------------------------------------

TEST(LirPasses, ConstPropFoldsBranches) {
  DexBuilder B;
  MethodId M = B.declareFunction(InvalidId, "cp", 0, true);
  FunctionBuilder F = B.beginBody(M);
  RegIdx A = F.immI(10), Bv = F.immI(3), C = F.newReg();
  auto Big = F.newLabel();
  F.ifGt(A, Bv, Big);
  F.constI(C, 111);
  F.ret(C);
  F.bind(Big);
  F.constI(C, 222);
  F.ret(C);
  B.endBody(F);
  DexFile File = B.build();
  LFunction Fn = buildLir(File, "cp");

  EXPECT_TRUE(constProp(Fn));
  // The comparison is decided at compile time: one side is unreachable.
  size_t CondCount = 0;
  for (const LBlock &Blk : Fn.Blocks)
    CondCount += Blk.Term.K == LTerminator::Kind::Cond;
  EXPECT_EQ(CondCount, 0u);

  std::string Error;
  EXPECT_TRUE(Fn.verify(Error)) << Error;
  Harness H(File);
  H.RT->codeCache().install(lir::emitMachine(Fn));
  EXPECT_EQ(H.run("cp").Ret.asI64(), 222);
}

TEST(LirPasses, InstCombineStrengthReduction) {
  DexBuilder B;
  MethodId M = B.declareFunction(InvalidId, "sr", 1, true);
  FunctionBuilder F = B.beginBody(M);
  RegIdx Eight = F.immI(8), R = F.newReg();
  F.mulI(R, F.param(0), Eight);
  F.ret(R);
  B.endBody(F);
  DexFile File = B.build();
  LFunction Fn = buildLir(File, "sr");

  EXPECT_TRUE(instCombine(Fn));
  EXPECT_EQ(countLOps(Fn, MOpcode::MMulI), 0u);
  EXPECT_EQ(countLOps(Fn, MOpcode::MShlI), 1u);

  std::string Error;
  ASSERT_TRUE(Fn.verify(Error)) << Error;
  Harness H(File);
  H.RT->codeCache().install(lir::emitMachine(Fn));
  EXPECT_EQ(H.run("sr", {vm::Value::fromI64(5)}).Ret.asI64(), 40);
}

TEST(LirPasses, GvnAcrossBlocks) {
  DexBuilder B;
  MethodId M = B.declareFunction(InvalidId, "g", 2, true);
  FunctionBuilder F = B.beginBody(M);
  RegIdx T1 = F.newReg(), T2 = F.newReg(), R = F.newReg();
  F.addI(T1, F.param(0), F.param(1));
  auto L = F.newLabel();
  F.ifGtz(T1, L);
  F.ret(T1);
  F.bind(L);
  F.addI(T2, F.param(0), F.param(1)); // redundant with T1 (dominating)
  F.addI(R, T2, T1);
  F.ret(R);
  B.endBody(F);
  DexFile File = B.build();
  LFunction Fn = buildLir(File, "g");

  EXPECT_TRUE(gvn(Fn));
  EXPECT_EQ(countLOps(Fn, MOpcode::MAddI), 2u); // T2 collapsed into T1

  std::string Error;
  ASSERT_TRUE(Fn.verify(Error)) << Error;
  Harness H(File);
  H.RT->codeCache().install(lir::emitMachine(Fn));
  EXPECT_EQ(
      H.run("g", {vm::Value::fromI64(2), vm::Value::fromI64(3)}).Ret.asI64(),
      10);
}

TEST(LirPasses, DceRemovesUndefSeeds) {
  DexBuilder B;
  defineSumTo(B);
  DexFile File = B.build();
  LFunction Fn = buildLir(File, "sumTo");
  size_t Before = Fn.instructionCount();
  dce(Fn, /*Aggressive=*/false);
  // The entry undef seeds for unused paths die, among others.
  EXPECT_LT(Fn.instructionCount(), Before);
  std::string Error;
  EXPECT_TRUE(Fn.verify(Error)) << Error;
}

TEST(LirPasses, SimplifyCfgMergesChains) {
  DexBuilder B;
  defineSumTo(B);
  DexFile File = B.build();
  LFunction Fn = buildLir(File, "sumTo");
  simplifyCfg(Fn);
  std::string Error;
  EXPECT_TRUE(Fn.verify(Error)) << Error;
  expectPipelineParity(File, "sumTo", {vm::Value::fromI64(55)},
                       {mk(PassId::SimplifyCfg)});
}

TEST(LirPasses, JniIntrinsicsRewritesMathCalls) {
  DexBuilder B;
  defineMathMix(B);
  DexFile File = B.build();
  LFunction Fn = buildLir(File, "mathMix");
  PassContext Ctx;
  Ctx.File = &File;
  EXPECT_TRUE(applyPass(Fn, mk(PassId::JniIntrinsics), Ctx));
  EXPECT_EQ(countLOps(Fn, MOpcode::MCallNative), 0u);
  EXPECT_EQ(countLOps(Fn, MOpcode::MIntrinsic), 3u);
}

TEST(LirPasses, JniIntrinsicsIsFasterAndEquivalent) {
  DexBuilder B;
  defineMathMix(B);
  DexFile File = B.build();
  uint64_t Plain = 0, Intrinsified = 0;
  expectPipelineParity(File, "mathMix", {vm::Value::fromF64(0.6)}, {},
                       &Plain);
  expectPipelineParity(File, "mathMix", {vm::Value::fromF64(0.6)},
                       {mk(PassId::JniIntrinsics)}, &Intrinsified);
  EXPECT_LT(Intrinsified, Plain);
}

TEST(LirPasses, GcElideRemovesDuplicatePolls) {
  DexBuilder B;
  defineSumTo(B);
  DexFile File = B.build();
  LFunction Fn = buildLir(File, "sumTo");
  size_t Before = countLOps(Fn, MOpcode::MSafepoint);
  EXPECT_TRUE(gcElide(Fn, /*StripLoops=*/false));
  EXPECT_LT(countLOps(Fn, MOpcode::MSafepoint), Before);
  std::string Error;
  EXPECT_TRUE(Fn.verify(Error)) << Error;
  expectPipelineParity(File, "sumTo", {vm::Value::fromI64(99)},
                       {mk(PassId::GcElide)});
}

TEST(LirPasses, BoundsCheckElimSafeModeKeepsSemantics) {
  DexBuilder B;
  defineDotProduct(B);
  DexFile File = B.build();
  expectPipelineParity(File, "dot", {vm::Value::fromI64(60)},
                       {mk(PassId::BoundsCheckElim)});
}

TEST(LirPasses, SinkMovesCodeOffTheHotPath) {
  DexBuilder B;
  MethodId M = B.declareFunction(InvalidId, "sk", 2, true);
  FunctionBuilder F = B.beginBody(M);
  RegIdx T = F.newReg();
  F.mulI(T, F.param(0), F.param(0)); // only used on the taken side
  auto L = F.newLabel();
  F.ifGtz(F.param(1), L);
  F.ret(F.param(1));
  F.bind(L);
  F.ret(T);
  B.endBody(F);
  DexFile File = B.build();
  LFunction Fn = buildLir(File, "sk");
  simplifyCfg(Fn);
  dce(Fn, false);
  EXPECT_TRUE(sinkCode(Fn));
  std::string Error;
  EXPECT_TRUE(Fn.verify(Error)) << Error;
  expectPipelineParity(File, "sk",
                       {vm::Value::fromI64(7), vm::Value::fromI64(1)},
                       {mk(PassId::SimplifyCfg), mk(PassId::Dce),
                        mk(PassId::Sink)});
}

// --- Loop passes -------------------------------------------------------------------

TEST(LoopPasses, LicmHoistsInvariants) {
  DexBuilder B;
  // loop computing sum += (a * b) each iteration: a*b is invariant.
  MethodId M = B.declareFunction(InvalidId, "li", 3, true);
  FunctionBuilder F = B.beginBody(M);
  RegIdx Sum = F.newReg(), I = F.newReg(), One = F.immI(1);
  F.constI(Sum, 0);
  F.constI(I, 0);
  auto Head = F.newLabel(), Done = F.newLabel();
  F.bind(Head);
  F.ifGe(I, F.param(0), Done);
  RegIdx T = F.newReg();
  F.mulI(T, F.param(1), F.param(2));
  F.addI(Sum, Sum, T);
  F.addI(I, I, One);
  F.jump(Head);
  F.bind(Done);
  F.ret(Sum);
  B.endBody(F);
  DexFile File = B.build();
  LFunction Fn = buildLir(File, "li");

  DomTree DT = DomTree::compute(Fn);
  LoopInfo LI = LoopInfo::compute(Fn, DT);
  ASSERT_EQ(LI.loops().size(), 1u);
  const Loop &L = LI.loops()[0];

  EXPECT_TRUE(licm(Fn, /*SpeculateDiv=*/false));
  // The multiply no longer lives in the loop.
  for (uint32_t Id : L.Blocks)
    for (const LInsn &I2 : Fn.Blocks[Id].Insns)
      EXPECT_NE(I2.Op, MOpcode::MMulI);

  std::string Error;
  ASSERT_TRUE(Fn.verify(Error)) << Error;
  expectPipelineParity(File, "li",
                       {vm::Value::fromI64(10), vm::Value::fromI64(6),
                        vm::Value::fromI64(7)},
                       {mk(PassId::Licm)});
}

TEST(LoopPasses, RotateProducesBottomTest) {
  DexBuilder B;
  defineSumTo(B);
  DexFile File = B.build();
  LFunction Fn = buildLir(File, "sumTo");
  simplifyCfg(Fn);
  EXPECT_TRUE(loopRotate(Fn));
  std::string Error;
  ASSERT_TRUE(Fn.verify(Error)) << Error;

  // After rotation some block conditionally branches to itself.
  bool HasSelfLoop = false;
  for (uint32_t Id = 0; Id != Fn.Blocks.size(); ++Id) {
    const LTerminator &T = Fn.Blocks[Id].Term;
    if (T.K == LTerminator::Kind::Cond &&
        (T.Taken == Id || T.Fall == Id))
      HasSelfLoop = true;
  }
  EXPECT_TRUE(HasSelfLoop);
}

TEST(LoopPasses, RotateKeepsSemanticsIncludingZeroTrip) {
  DexBuilder B;
  defineSumTo(B);
  DexFile File = B.build();
  for (int64_t N : {0, 1, 2, 7, 100}) {
    expectPipelineParity(File, "sumTo", {vm::Value::fromI64(N)},
                         {mk(PassId::SimplifyCfg),
                          mk(PassId::LoopRotate)});
  }
}

TEST(LoopPasses, UnrollKeepsSemantics) {
  DexBuilder B;
  defineSumTo(B);
  DexFile File = B.build();
  for (int Factor : {2, 3, 4, 8}) {
    for (int64_t N : {0, 1, 2, 3, 5, 16, 17, 100}) {
      expectPipelineParity(File, "sumTo", {vm::Value::fromI64(N)},
                           {mk(PassId::SimplifyCfg), mk(PassId::LoopRotate),
                            mk(PassId::LoopUnroll, Factor)});
    }
  }
}

TEST(LoopPasses, UnrollPlusGcElideIsFaster) {
  DexBuilder B;
  defineSumTo(B);
  DexFile File = B.build();
  uint64_t Plain = 0, Optimized = 0;
  std::vector<vm::Value> Args = {vm::Value::fromI64(3000)};
  expectPipelineParity(File, "sumTo", Args, o1Pipeline(), &Plain);
  std::vector<PassInstance> Tuned = o1Pipeline();
  Tuned.push_back(mk(PassId::LoopRotate));
  Tuned.push_back(mk(PassId::LoopUnroll, 4));
  Tuned.push_back(mk(PassId::GcElide));
  Tuned.push_back(mk(PassId::Dce));
  expectPipelineParity(File, "sumTo", Args, Tuned, &Optimized);
  EXPECT_LT(Optimized, Plain);
}

TEST(LoopPasses, PeelKeepsSemantics) {
  DexBuilder B;
  defineSumTo(B);
  DexFile File = B.build();
  for (int Count : {1, 2, 3}) {
    for (int64_t N : {0, 1, 2, 3, 10}) {
      expectPipelineParity(File, "sumTo", {vm::Value::fromI64(N)},
                           {mk(PassId::SimplifyCfg), mk(PassId::LoopRotate),
                            mk(PassId::LoopPeel, Count)});
    }
  }
}

TEST(LoopPasses, UnrollWorksOnRealKernels) {
  DexBuilder B;
  defineDotProduct(B);
  defineMatrixSum(B);
  DexFile File = B.build();
  std::vector<PassInstance> Pipe = {
      mk(PassId::SimplifyCfg), mk(PassId::LoopRotate),
      mk(PassId::LoopUnroll, 4), mk(PassId::GcElide), mk(PassId::Dce)};
  expectPipelineParity(File, "dot", {vm::Value::fromI64(37)}, Pipe);
  expectPipelineParity(File, "matSum", {vm::Value::fromI64(9)}, Pipe);
}

// --- Inline and devirtualize ----------------------------------------------------------

TEST(InlinePass, InlinesSmallCallee) {
  DexBuilder B;
  MethodId Callee = B.declareFunction(InvalidId, "addOne", 1, true);
  {
    FunctionBuilder F = B.beginBody(Callee);
    RegIdx One = F.immI(1), R = F.newReg();
    F.addI(R, F.param(0), One);
    F.ret(R);
    B.endBody(F);
  }
  MethodId Caller = B.declareFunction(InvalidId, "callerFn", 1, true);
  {
    FunctionBuilder F = B.beginBody(Caller);
    RegIdx R = F.newReg();
    F.invokeStatic(R, Callee, {F.param(0)});
    RegIdx R2 = F.newReg();
    F.invokeStatic(R2, Callee, {R});
    F.ret(R2);
    B.endBody(F);
  }
  DexFile File = B.build();
  LFunction Fn = buildLir(File, "callerFn");

  EXPECT_TRUE(inlineCalls(Fn, File, /*Threshold=*/50));
  EXPECT_EQ(countLOps(Fn, MOpcode::MCallStatic), 0u);
  std::string Error;
  ASSERT_TRUE(Fn.verify(Error)) << Error;

  Harness H(File);
  H.RT->codeCache().install(lir::emitMachine(Fn));
  EXPECT_EQ(H.run("callerFn", {vm::Value::fromI64(5)}).Ret.asI64(), 7);
}

TEST(InlinePass, InlineBranchyCallee) {
  DexBuilder B;
  MethodId Callee = B.declareFunction(InvalidId, "absFn", 1, true);
  {
    FunctionBuilder F = B.beginBody(Callee);
    auto Pos = F.newLabel();
    F.ifGez(F.param(0), Pos);
    RegIdx N = F.newReg();
    F.negI(N, F.param(0));
    F.ret(N);
    F.bind(Pos);
    F.ret(F.param(0));
    B.endBody(F);
  }
  MethodId Caller = B.declareFunction(InvalidId, "sumAbs", 2, true);
  {
    FunctionBuilder F = B.beginBody(Caller);
    RegIdx A = F.newReg(), Bv = F.newReg(), R = F.newReg();
    F.invokeStatic(A, Callee, {F.param(0)});
    F.invokeStatic(Bv, Callee, {F.param(1)});
    F.addI(R, A, Bv);
    F.ret(R);
    B.endBody(F);
  }
  DexFile File = B.build();
  LFunction Fn = buildLir(File, "sumAbs");

  EXPECT_TRUE(inlineCalls(Fn, File, 50));
  std::string Error;
  ASSERT_TRUE(Fn.verify(Error)) << Error;

  Harness H(File);
  H.RT->codeCache().install(lir::emitMachine(Fn));
  EXPECT_EQ(H.run("sumAbs",
                  {vm::Value::fromI64(-4), vm::Value::fromI64(9)})
                .Ret.asI64(),
            13);
}

TEST(DevirtPass, GuardsAndDirectCalls) {
  DexBuilder B;
  definePolyShapes(B);
  DexFile File = B.build();

  // Collect a genuine interpreter type profile first.
  TypeProfile Profile;
  struct Collector : vm::ExecObserver {
    TypeProfile &P;
    explicit Collector(TypeProfile &P) : P(P) {}
    void onVirtualDispatch(MethodId M, uint32_t Pc, ClassId C) override {
      P.record(M, Pc, C);
    }
  } Collector{Profile};

  Harness H(File);
  H.RT->setMode(vm::ExecMode::InterpretOnly);
  H.RT->setObserver(&Collector);
  // Even iterations make squares, odd circles: bimodal profile.
  ASSERT_TRUE(H.run("polyLoop", {vm::Value::fromI64(20)}).ok());
  H.RT->setObserver(nullptr);
  EXPECT_GE(Profile.siteCount(), 1u);

  LFunction Fn = buildLir(File, "polyLoop");
  // 50-50 profile: a 90% threshold refuses to speculate...
  EXPECT_FALSE(devirtualize(Fn, File, Profile, 90));
  // ...a 50% threshold accepts the dominant (or tied-first) class.
  EXPECT_TRUE(devirtualize(Fn, File, Profile, 50));
  std::string Error;
  ASSERT_TRUE(Fn.verify(Error)) << Error;

  Harness H2(File);
  H2.RT->codeCache().install(lir::emitMachine(Fn));
  vm::CallResult R = H2.run("polyLoop", {vm::Value::fromI64(20)});
  ASSERT_TRUE(R.ok());

  Harness H3(File);
  H3.RT->setMode(vm::ExecMode::InterpretOnly);
  EXPECT_EQ(R.Ret.asI64(),
            H3.run("polyLoop", {vm::Value::fromI64(20)}).Ret.asI64());
}

// --- Unsound modes really break things --------------------------------------------------

TEST(UnsoundModes, FastMathChangesFpResults) {
  DexBuilder B;
  // Catastrophic-cancellation-prone sum: (big + tiny) - big != tiny.
  MethodId M = B.declareFunction(InvalidId, "fp", 0, true);
  FunctionBuilder F = B.beginBody(M);
  RegIdx Big = F.immF(1e16), Tiny = F.immF(1.0), NegBig = F.immF(-1e16);
  RegIdx T = F.newReg(), R = F.newReg();
  // (tiny + big) + (-big): rounds to 0. Reassociated tiny + (big - big)
  // evaluates to exactly 1.0 — visibly different output.
  F.addF(T, Tiny, Big);
  F.addF(R, T, NegBig);
  F.ret(R);
  B.endBody(F);
  DexFile File = B.build();

  LFunction Fn = buildLir(File, "fp");
  // Safe mode refuses to touch FP.
  LFunction SafeCopy = Fn;
  EXPECT_FALSE(reassociate(SafeCopy, /*FastMath=*/false));

  EXPECT_TRUE(reassociate(Fn, /*FastMath=*/true));
  std::string Error;
  ASSERT_TRUE(Fn.verify(Error)) << Error;
  constProp(Fn); // fold the re-associated chain

  Harness H(File);
  H.RT->codeCache().install(lir::emitMachine(Fn));
  double FastMathResult = H.run("fp").Ret.asF64();
  Harness H2(File);
  H2.RT->setMode(vm::ExecMode::InterpretOnly);
  double Reference = H2.run("fp").Ret.asF64();
  // (1e16 + 1) - 1e16 == 0 under doubles; 1e16 + (1 - 1e16) == ... also?
  // Re-association here flips which rounding happens: expect a difference.
  EXPECT_NE(FastMathResult, Reference);
}

TEST(UnsoundModes, AggressiveBceCorruptsMultiplicativeIndexing) {
  DexBuilder B;
  // j starts at n-1 and doubles each iteration with wraparound *intended*
  // to stay in range only via the bounds check failing... here we build a
  // loop whose index genuinely exceeds the array when checks vanish:
  // for (j = 1; j < 64; j = j * 3) arr[j] = 7;   with arr.length = 40.
  // Valid run traps OutOfBounds at j = 81? No: 1,3,9,27,81 -> stops by
  // condition j < 64 at j=81? j=81 fails j<64, loop ends; last store j=27.
  // Use: for (j = 1; j < 40; j = j * 3) arr[j + 24] = 7; -> j+24 hits 51
  // while length is 40: the checked program traps; we compare the
  // *unchecked* one which silently corrupts neighbouring memory instead.
  MethodId M = B.declareFunction(InvalidId, "bce", 1, true);
  FunctionBuilder F = B.beginBody(M);
  RegIdx Len = F.immI(40), Arr = F.newReg(), Arr2 = F.newReg();
  F.newArray(Arr, Len, Type::I64);
  F.newArray(Arr2, Len, Type::I64); // the corruption victim
  RegIdx J = F.newReg(), Three = F.immI(3), Seven = F.immI(7),
         Off = F.immI(24), Idx = F.newReg(), Limit = F.immI(40);
  F.constI(J, 1);
  auto Head = F.newLabel(), Done = F.newLabel();
  F.bind(Head);
  F.ifGe(J, Limit, Done);
  F.addI(Idx, J, Off);
  F.astore(Arr, Idx, Seven, Type::I64);
  F.mulI(J, J, Three);
  F.jump(Head);
  F.bind(Done);
  // Return a value from the victim array: corruption becomes visible.
  // The escaped store (j=27 -> idx 51) lands 424 bytes past Arr's base,
  // which is element 9 of Arr2 under the bump allocator's layout.
  RegIdx Z = F.immI(9), V = F.newReg();
  F.aload(V, Arr2, Z, Type::I64);
  F.ret(V);
  B.endBody(F);
  DexFile File = B.build();
  MethodId Id = File.findMethod("bce");

  // Reference: the checked program traps OutOfBounds (idx 51 >= 40).
  Harness HRef(File);
  HRef.RT->setMode(vm::ExecMode::InterpretOnly);
  EXPECT_EQ(HRef.run("bce", {vm::Value::fromI64(0)}).Trap,
            vm::TrapKind::OutOfBounds);

  // Aggressive BCE removes the check: the store lands in the second
  // array (silent corruption) or beyond.
  CompileOptions Options;
  Options.Pipeline = {mk(PassId::BoundsCheckElim, 0, true)};
  CompileResult Result = compileMethodLlvm(File, Id, Options);
  ASSERT_TRUE(Result.ok());
  Harness H(File);
  H.RT->codeCache().install(Result.Fn);
  vm::CallResult R = H.RT->call(Id, {vm::Value::fromI64(0)});
  // No trap where there should have been one — and the neighbouring
  // array got dirtied (its slot no longer reads 0 — wrong output).
  EXPECT_EQ(R.Trap, vm::TrapKind::None);
  EXPECT_NE(R.Ret.asI64(), 0);
}

TEST(UnsoundModes, SpeculativeDivTrapsOnGuardedDivisor) {
  DexBuilder B;
  // if (d != 0) { loop: sum += n / d } else return -1. With a zero-trip
  // guard the division is safe; speculating it above a loop whose trip
  // count is zero when d == 0 introduces a fresh trap... build directly:
  // for (i = 0; i < k; ++i) sum += n / d   called with k == 0, d == 0.
  MethodId M = B.declareFunction(InvalidId, "sd", 3, true);
  FunctionBuilder F = B.beginBody(M);
  RegIdx Sum = F.newReg(), I = F.newReg(), One = F.immI(1);
  F.constI(Sum, 0);
  F.constI(I, 0);
  auto Head = F.newLabel(), Done = F.newLabel();
  F.bind(Head);
  F.ifGe(I, F.param(0), Done);
  RegIdx Q = F.newReg();
  F.divI(Q, F.param(1), F.param(2));
  F.addI(Sum, Sum, Q);
  F.addI(I, I, One);
  F.jump(Head);
  F.bind(Done);
  F.ret(Sum);
  B.endBody(F);
  DexFile File = B.build();
  MethodId Id = File.findMethod("sd");

  std::vector<vm::Value> ZeroTrip = {vm::Value::fromI64(0),
                                     vm::Value::fromI64(10),
                                     vm::Value::fromI64(0)};

  // Reference: zero-trip loop, no division, returns 0.
  Harness HRef(File);
  HRef.RT->setMode(vm::ExecMode::InterpretOnly);
  vm::CallResult RRef = HRef.RT->call(Id, ZeroTrip);
  ASSERT_TRUE(RRef.ok());
  EXPECT_EQ(RRef.Ret.asI64(), 0);

  // licm! hoists the division above the loop: traps on d == 0.
  CompileOptions Options;
  Options.Pipeline = {mk(PassId::Licm, 0, true)};
  CompileResult Result = compileMethodLlvm(File, Id, Options);
  ASSERT_TRUE(Result.ok());
  Harness H(File);
  H.RT->codeCache().install(Result.Fn);
  EXPECT_EQ(H.RT->call(Id, ZeroTrip).Trap, vm::TrapKind::DivByZero);
}

TEST(UnsoundModes, SafeLicmDoesNotSpeculate) {
  // Same program, safe licm: still correct on the zero-trip input.
  DexBuilder B;
  MethodId M = B.declareFunction(InvalidId, "sd", 3, true);
  FunctionBuilder F = B.beginBody(M);
  RegIdx Sum = F.newReg(), I = F.newReg(), One = F.immI(1);
  F.constI(Sum, 0);
  F.constI(I, 0);
  auto Head = F.newLabel(), Done = F.newLabel();
  F.bind(Head);
  F.ifGe(I, F.param(0), Done);
  RegIdx Q = F.newReg();
  F.divI(Q, F.param(1), F.param(2));
  F.addI(Sum, Sum, Q);
  F.addI(I, I, One);
  F.jump(Head);
  F.bind(Done);
  F.ret(Sum);
  B.endBody(F);
  DexFile File = B.build();
  expectPipelineParity(File, "sd",
                       {vm::Value::fromI64(0), vm::Value::fromI64(10),
                        vm::Value::fromI64(1)},
                       {mk(PassId::Licm)});
}

// --- Presets --------------------------------------------------------------------------

TEST(Presets, AllLevelsPreserveSemantics) {
  DexBuilder B;
  defineSumTo(B);
  defineDotProduct(B);
  defineMatrixSum(B);
  DexFile File = B.build();
  for (auto &Pipe :
       {o0Pipeline(), o1Pipeline(), o2Pipeline(), o3Pipeline()}) {
    expectPipelineParity(File, "sumTo", {vm::Value::fromI64(64)}, Pipe);
    expectPipelineParity(File, "dot", {vm::Value::fromI64(33)}, Pipe);
    expectPipelineParity(File, "matSum", {vm::Value::fromI64(8)}, Pipe);
  }
}

TEST(Presets, HigherLevelsAreFasterHere) {
  DexBuilder B;
  defineMatrixSum(B);
  DexFile File = B.build();
  uint64_t C0 = 0, C2 = 0;
  expectPipelineParity(File, "matSum", {vm::Value::fromI64(16)},
                       o0Pipeline(), &C0);
  expectPipelineParity(File, "matSum", {vm::Value::fromI64(16)},
                       o2Pipeline(), &C2);
  EXPECT_LT(C2, C0);
}

TEST(Presets, SizeBudgetStopsExplosion) {
  DexBuilder B;
  defineMatrixSum(B);
  DexFile File = B.build();
  MethodId Id = File.findMethod("matSum");
  CompileOptions Options;
  Options.Pipeline = {mk(PassId::SimplifyCfg), mk(PassId::LoopRotate)};
  for (int I = 0; I != 6; ++I) {
    Options.Pipeline.push_back(mk(PassId::LoopUnroll, 64));
    Options.Pipeline.push_back(mk(PassId::LoopRotate));
  }
  // Sanity: the same pipeline with a generous budget really does explode
  // the code (so the tight budget below is a genuine stop, not a trivial
  // base-size trip).
  Options.SizeBudget = 1u << 20;
  CompileResult Grown = compileMethodLlvm(File, Id, Options);
  ASSERT_TRUE(Grown.ok());
  CompileOptions Plain;
  CompileResult Base = compileMethodLlvm(File, Id, Plain);
  ASSERT_TRUE(Base.ok());
  EXPECT_GT(Grown.Fn->Code.size(), 3 * Base.Fn->Code.size());

  Options.SizeBudget = Base.Fn->Code.size() * 2;
  CompileResult Result = compileMethodLlvm(File, Id, Options);
  EXPECT_EQ(Result.Status, CompileStatus::SizeBudget);
}

// --- Induction-range bounds-check elimination (paper §7 future work) -----------

TEST(RangeBce, RemovesChecksInCountedLoops) {
  DexBuilder B;
  defineDotProduct(B);
  DexFile File = B.build();
  LFunction Fn = buildLir(File, "dot");
  simplifyCfg(Fn);
  constProp(Fn);
  gvn(Fn);
  dce(Fn, false);
  size_t Before = countLOps(Fn, MOpcode::MCheckBounds);
  ASSERT_GT(Before, 0u);
  EXPECT_TRUE(boundsCheckElim(Fn, /*Aggressive=*/false));
  EXPECT_EQ(countLOps(Fn, MOpcode::MCheckBounds), 0u);
  std::string Error;
  ASSERT_TRUE(Fn.verify(Error)) << Error;

  // Differential, including the empty-loop boundary.
  for (int64_t N : {0, 1, 2, 17, 60}) {
    expectPipelineParity(File, "dot", {vm::Value::fromI64(N)},
                         {mk(PassId::SimplifyCfg), mk(PassId::ConstProp),
                          mk(PassId::Gvn), mk(PassId::Dce),
                          mk(PassId::BoundsCheckElim)});
  }
}

TEST(RangeBce, KeepsChecksWhenBoundExceedsLength) {
  // for (i = 0; i < n + 3; ++i) arr[i]  with arr.length == n: the range
  // analysis must NOT remove the check — the program genuinely traps.
  DexBuilder B;
  MethodId M = B.declareFunction(InvalidId, "over", 1, true);
  FunctionBuilder F = B.beginBody(M);
  RegIdx Arr = F.newReg(), I = F.newReg(), One = F.immI(1),
         Three = F.immI(3), Bound = F.newReg(), Sum = F.newReg();
  F.newArray(Arr, F.param(0), Type::I64);
  F.addI(Bound, F.param(0), Three);
  F.constI(I, 0);
  F.constI(Sum, 0);
  auto Head = F.newLabel(), Done = F.newLabel();
  F.bind(Head);
  F.ifGe(I, Bound, Done);
  RegIdx V = F.newReg();
  F.aload(V, Arr, I, Type::I64);
  F.addI(Sum, Sum, V);
  F.addI(I, I, One);
  F.jump(Head);
  F.bind(Done);
  F.ret(Sum);
  B.endBody(F);
  DexFile File = B.build();

  LFunction Fn = buildLir(File, "over");
  simplifyCfg(Fn);
  boundsCheckElim(Fn, /*Aggressive=*/false);
  EXPECT_GT(countLOps(Fn, MOpcode::MCheckBounds), 0u);

  // And the compiled program still traps where the interpreter does.
  CompileOptions Options;
  Options.Pipeline = {mk(PassId::SimplifyCfg),
                      mk(PassId::BoundsCheckElim)};
  CompileResult Result =
      compileMethodLlvm(File, File.findMethod("over"), Options);
  ASSERT_TRUE(Result.ok());
  Harness H(File);
  H.RT->codeCache().install(Result.Fn);
  EXPECT_EQ(H.run("over", {vm::Value::fromI64(8)}).Trap,
            vm::TrapKind::OutOfBounds);
}

TEST(RangeBce, DownwardLoopsAreLeftAlone) {
  // for (i = n - 1; i >= 0; --i): negative step — not handled, must keep.
  DexBuilder B;
  MethodId M = B.declareFunction(InvalidId, "down", 1, true);
  FunctionBuilder F = B.beginBody(M);
  RegIdx Arr = F.newReg(), I = F.newReg(), One = F.immI(1),
         Sum = F.newReg();
  F.newArray(Arr, F.param(0), Type::I64);
  F.subI(I, F.param(0), One);
  F.constI(Sum, 0);
  auto Head = F.newLabel(), Done = F.newLabel();
  F.bind(Head);
  F.ifLtz(I, Done);
  RegIdx V = F.newReg();
  F.aload(V, Arr, I, Type::I64);
  F.addI(Sum, Sum, V);
  F.subI(I, I, One);
  F.jump(Head);
  F.bind(Done);
  F.ret(Sum);
  B.endBody(F);
  DexFile File = B.build();

  LFunction Fn = buildLir(File, "down");
  simplifyCfg(Fn);
  size_t Before = countLOps(Fn, MOpcode::MCheckBounds);
  boundsCheckElim(Fn, /*Aggressive=*/false);
  EXPECT_EQ(countLOps(Fn, MOpcode::MCheckBounds), Before);
  expectPipelineParity(File, "down", {vm::Value::fromI64(9)},
                       {mk(PassId::SimplifyCfg),
                        mk(PassId::BoundsCheckElim)});
}
