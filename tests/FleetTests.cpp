//===- tests/FleetTests.cpp - Crowd-sourced fleet search --------------------===//
//
// The fleet layer's acceptance criteria (DESIGN.md §12, §14):
//
//   (a) a seeded fleet run is bit-identical across --jobs values and
//       across re-runs at the same seed — including under a lossy,
//       reordering transport and under device churn;
//   (b) a 4-device fleet's final best fitness is at least the 1-device
//       best at the same per-device budget;
//   (c) a deliberately-unsound injected hint is rejected by every
//       device's own verification map, counted, and quarantined;
//   (d) loss and reordering are *real* since the virtual-time redesign:
//       they shift delivery times and can change which hints seed which
//       search — what stays fixed is determinism at a given seed.
//
// Plus unit coverage of the event loop's (time, seq) commit order, the
// transport's pure-function verdicts and delivery planning, the server's
// statistical merging/dedup/quarantine/TTL, device-profile derivation
// (per-device and classed), and the core warm-start hook.
//
//===----------------------------------------------------------------------===//

#include "fleet/Coordinator.h"
#include "fleet/EventLoop.h"
#include "fleet/Server.h"
#include "fleet/Transport.h"

#include "core/IterativeCompiler.h"
#include "lir/Passes.h"
#include "support/Metrics.h"
#include "support/ThreadPool.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace ropt;

namespace {

/// Small-but-real per-device pipeline budget: every fleet test runs the
/// full profile/capture/replay/search stack per device.
core::PipelineConfig fleetBase(uint64_t Seed) {
  core::PipelineConfig Config;
  Config.Seed = Seed;
  Config.Search.GA.Generations = 3;
  Config.Search.GA.PopulationSize = 8;
  Config.Search.GA.HillClimbRounds = 1;
  Config.Search.MaxReplaysPerEvaluation = 4;
  Config.Capture.ProfileSessions = 4;
  Config.Measure.FinalMeasurementRuns = 4;
  return Config;
}

fleet::FleetOptions fleetOptions(int Devices, int Rounds, int Jobs,
                                 uint64_t Seed) {
  fleet::FleetOptions FO;
  FO.Devices = Devices;
  FO.Rounds = Rounds;
  FO.Jobs = Jobs;
  FO.Seed = Seed;
  return FO;
}

fleet::FleetResult runFleet(const fleet::FleetOptions &FO,
                            fleet::Transport &Net,
                            const std::string &App = "Sieve") {
  fleet::Server Srv;
  fleet::Coordinator Co(FO, fleetBase(FO.Seed));
  return Co.run(App, Srv, Net);
}

/// A genome whose aggressive modes are mechanistically unsound (LICM
/// division speculation, divisibility-assuming unroll, naive bounds-check
/// elimination) — the fleet-scale stand-in for a device-specific
/// miscompile that some other device's inputs never caught.
search::Genome unsoundGenome() {
  search::Genome G;
  G.Passes.push_back(lir::PassInstance{lir::PassId::Licm, 0, true});
  G.Passes.push_back(
      lir::PassInstance{lir::PassId::LoopUnroll, 3, true});
  G.Passes.push_back(
      lir::PassInstance{lir::PassId::BoundsCheckElim, 0, true});
  return G;
}

} // namespace

// --- Event loop -------------------------------------------------------------

TEST(FleetEventLoop, CommitsRunInTimeSeqOrder) {
  ThreadPool Pool(4);
  fleet::EventLoop Loop(Pool);

  std::vector<int> Order;
  auto Committer = [&Order](int Tag) {
    return [&Order, Tag](fleet::EventLoop &) { Order.push_back(Tag); };
  };
  // Scheduled out of order; same-time events tie-break on schedule seq.
  Loop.schedule(5, /*Lane=*/0, nullptr, Committer(50));
  Loop.schedule(3, /*Lane=*/1, nullptr, Committer(30));
  Loop.schedule(3, /*Lane=*/2, nullptr, Committer(31));
  Loop.schedule(7, /*Lane=*/-1, nullptr,
                [&](fleet::EventLoop &L) {
                  Order.push_back(70);
                  // Scheduling from a commit lands in a later wave, never
                  // the current one.
                  L.schedule(7, -1, nullptr, Committer(71));
                });
  Loop.run();

  EXPECT_EQ(Order, (std::vector<int>{30, 31, 50, 70, 71}));
  EXPECT_EQ(Loop.eventsProcessed(), 5u);
  EXPECT_GE(Loop.now(), 7u);
}

TEST(FleetEventLoop, ParallelComputesCommitDeterministically) {
  // Many same-window events across lanes: computes may run on any
  // worker, but commits must land in (time, seq) order at any pool size.
  auto Run = [](size_t Workers) {
    ThreadPool Pool(Workers);
    fleet::EventLoop Loop(Pool);
    std::vector<int> Order;
    for (int I = 0; I != 32; ++I) {
      int Lane = I % 5;
      Loop.schedule(static_cast<fleet::VirtualTime>(1 + (I % 3)), Lane,
                    []() { /* lane-parallel compute */ },
                    [&Order, I](fleet::EventLoop &) { Order.push_back(I); });
    }
    Loop.run();
    return Order;
  };
  EXPECT_EQ(Run(1), Run(8));
}

// --- Transport --------------------------------------------------------------

TEST(FleetTransport, VerdictIsPureFunctionOfAttemptIdentity) {
  fleet::TransportOptions Opt;
  Opt.DropProb = 0.5;
  Opt.ReorderProb = 0.5;
  fleet::SimTransport Net(Opt, /*Seed=*/7);

  fleet::MessageKey Key{fleet::appKey("Sieve"), fleet::Channel::Report, 2,
                        1, 0};
  fleet::Delivery First = Net.attempt(Key);
  // Same identity, any later call: same fate. No hidden call-order state.
  for (int I = 0; I != 5; ++I) {
    fleet::Delivery Again = Net.attempt(Key);
    EXPECT_EQ(Again.Delivered, First.Delivered);
    EXPECT_EQ(Again.LatencyTicks, First.LatencyTicks);
    EXPECT_EQ(Again.Reordered, First.Reordered);
    EXPECT_EQ(Again.ReorderTicks, First.ReorderTicks);
  }

  // Distinct attempt numbers draw independent fates; over many keys both
  // outcomes must occur at DropProb = 0.5.
  int Delivered = 0, Dropped = 0;
  for (int A = 0; A != 64; ++A) {
    fleet::MessageKey K = Key;
    K.Attempt = A;
    (Net.attempt(K).Delivered ? Delivered : Dropped) += 1;
  }
  EXPECT_GT(Delivered, 0);
  EXPECT_GT(Dropped, 0);
}

TEST(FleetTransport, PlanDeliveryAccumulatesRetriesAndLatency) {
  fleet::TransportOptions Opt;
  Opt.DropProb = 0.6;
  fleet::SimTransport Net(Opt, /*Seed=*/3);
  fleet::RetryPolicy Policy;

  int TotalAttempts = 0;
  for (int D = 0; D != 32; ++D) {
    fleet::MessageKey Key{fleet::appKey("FFT"), fleet::Channel::Hints, 0, D,
                          0};
    fleet::SendOutcome S = fleet::planDelivery(Net, Key, Policy);
    EXPECT_TRUE(S.Delivered); // P(fail) = 0.6^64 — effectively never.
    EXPECT_GE(S.Attempts, 1);
    EXPECT_EQ(S.Drops, static_cast<uint64_t>(S.Attempts - 1));
    // Every attempt costs at least its latency tick; retries add backoff
    // on top — loss is paid in virtual time, not hidden by the retry.
    EXPECT_GE(S.DelayTicks, static_cast<uint64_t>(S.Attempts));
    if (S.Attempts > 1)
      EXPECT_GT(S.DelayTicks, static_cast<uint64_t>(S.Attempts));
    TotalAttempts += S.Attempts;
  }
  EXPECT_GT(TotalAttempts, 32); // The loss was real: retries happened.

  fleet::PerfectTransport Ideal;
  fleet::SendOutcome S = fleet::planDelivery(
      Ideal, fleet::MessageKey{1, fleet::Channel::Hints, 0, 0, 0}, Policy);
  EXPECT_TRUE(S.Delivered);
  EXPECT_EQ(S.Attempts, 1);
  EXPECT_EQ(S.Drops, 0u);
  EXPECT_EQ(S.DelayTicks, 1u); // PerfectTransport: one tick in flight.
}

TEST(FleetTransport, PlanDeliveryCanGenuinelyFail) {
  fleet::TransportOptions Opt;
  Opt.DropProb = 1.0; // A dead link: every attempt is lost.
  fleet::SimTransport Net(Opt, /*Seed=*/9);
  fleet::RetryPolicy Policy;
  Policy.MaxAttempts = 8;

  fleet::SendOutcome S = fleet::planDelivery(
      Net, fleet::MessageKey{2, fleet::Channel::Report, 0, 0, 0}, Policy);
  EXPECT_FALSE(S.Delivered);
  EXPECT_EQ(S.Attempts, 8);
  EXPECT_EQ(S.Drops, 8u);
  // The failure still cost time: latency per attempt plus capped backoff.
  EXPECT_GT(S.DelayTicks, 8u);

  fleet::TransportStats Stats;
  Stats.count(S);
  EXPECT_EQ(Stats.Failed, 1u);
  EXPECT_EQ(Stats.Attempts, 8u);
}

// --- Server -----------------------------------------------------------------

namespace {

fleet::GenomeReport genomeReport(const search::Genome &G, uint64_t Hash,
                                 std::vector<double> Speedups) {
  fleet::GenomeReport R;
  R.G = G;
  R.Key = G.name();
  R.BinaryHash = Hash;
  R.SpeedupSamples = std::move(Speedups);
  R.SpeedupMedian = R.SpeedupSamples[R.SpeedupSamples.size() / 2];
  return R;
}

} // namespace

TEST(FleetServer, MergesDeduplicatesAndRanks) {
  fleet::Server Srv;
  search::Genome G1, G2;
  G1.Passes.push_back(lir::PassInstance{lir::PassId::Gvn, 0, false});
  G1.Passes.push_back(lir::PassInstance{lir::PassId::Dce, 0, false});
  G2.Passes.push_back(lir::PassInstance{lir::PassId::Sink, 0, false});
  G2.Passes.push_back(lir::PassInstance{lir::PassId::Dce, 0, false});

  fleet::RoundReport R0;
  R0.Device = 0;
  R0.Best.push_back(genomeReport(G1, 0xaaa, {1.2, 1.3, 1.4}));
  Srv.merge("App", R0);

  // A second device reports the same binary hash: the entry is folded,
  // not duplicated, and the pooled samples re-rank the median.
  fleet::RoundReport R1;
  R1.Device = 1;
  R1.Best.push_back(genomeReport(G1, 0xaaa, {1.6, 1.7, 1.8}));
  R1.Best.push_back(genomeReport(G2, 0xbbb, {2.0, 2.1, 2.2}));
  Srv.merge("App", R1);

  const std::vector<fleet::Server::LeaderEntry> *Board =
      Srv.leaderboard("App");
  ASSERT_NE(Board, nullptr);
  ASSERT_EQ(Board->size(), 2u);
  EXPECT_EQ(Srv.stats().Duplicates, 1u);
  EXPECT_EQ(Srv.stats().ReportsMerged, 2u);

  // Hints come back best-first: G2's 2.1 median beats G1's pooled median.
  std::vector<fleet::Hint> Hints = Srv.hints("App");
  ASSERT_EQ(Hints.size(), 2u);
  EXPECT_EQ(Hints[0].Key, G2.name());
  EXPECT_GT(Hints[0].Speedup, Hints[1].Speedup);
  EXPECT_EQ(Hints[1].Reports, 2);

  // A rejection report quarantines the genome: it leaves the hint set
  // for good, but stays on the leaderboard for the post-mortem.
  fleet::RoundReport R2;
  R2.Device = 2;
  R2.Rejections.push_back(fleet::HintRejection{G2.name(), "wrong-output"});
  Srv.merge("App", R2);
  Hints = Srv.hints("App");
  ASSERT_EQ(Hints.size(), 1u);
  EXPECT_EQ(Hints[0].Key, G1.name());
  EXPECT_EQ(Srv.stats().Quarantined, 1u);
}

TEST(FleetServer, UnknownAppHasNoBoardOrHints) {
  fleet::Server Srv;
  EXPECT_EQ(Srv.leaderboard("Nope"), nullptr);
  EXPECT_TRUE(Srv.hints("Nope").empty());
}

TEST(FleetServer, LeaderboardTtlExpiresStaleEntries) {
  fleet::ServerOptions Opt;
  Opt.TtlTicks = 100;
  fleet::Server Srv(Opt);

  search::Genome G;
  G.Passes.push_back(lir::PassInstance{lir::PassId::Gvn, 0, false});
  fleet::RoundReport R;
  R.Device = 0;
  R.Best.push_back(genomeReport(G, 0xaaa, {1.5, 1.6, 1.7}));
  Srv.merge("App", R, /*Now=*/10);

  // Fresh within the TTL window: served.
  EXPECT_EQ(Srv.hints("App", /*Now=*/60).size(), 1u);
  EXPECT_EQ(Srv.stats().Expired, 0u);

  // Past LastReportTick + TtlTicks: aged out of the hint set, counted,
  // but kept on the leaderboard for the post-mortem.
  EXPECT_TRUE(Srv.hints("App", /*Now=*/111).empty());
  EXPECT_EQ(Srv.stats().Expired, 1u);
  const std::vector<fleet::Server::LeaderEntry> *Board =
      Srv.leaderboard("App");
  ASSERT_NE(Board, nullptr);
  ASSERT_EQ(Board->size(), 1u);
  EXPECT_TRUE(Board->front().Expired);

  // A fresh report revives the entry: live confirmation beats staleness.
  Srv.merge("App", R, /*Now=*/120);
  EXPECT_EQ(Srv.hints("App", /*Now=*/150).size(), 1u);
  EXPECT_FALSE(Board->front().Expired);
}

TEST(FleetServer, InjectHintRespectsQuarantine) {
  fleet::Server Srv;
  search::Genome G = unsoundGenome();

  // First injection lands (nothing known against the genome yet)...
  Srv.injectHint("App", G, 2.0);
  EXPECT_EQ(Srv.stats().HintsInjected, 1u);
  ASSERT_EQ(Srv.hints("App").size(), 1u);

  // ...then a device's verification map rejects it and it's quarantined.
  fleet::RoundReport R;
  R.Device = 0;
  R.Rejections.push_back(fleet::HintRejection{G.name(), "wrong-output"});
  Srv.merge("App", R);
  EXPECT_EQ(Srv.stats().Quarantined, 1u);

  // Re-injecting the proven miscompile (the restart-from-store path)
  // must be dropped, not merged: quarantine survives injection.
  Srv.injectHint("App", G, 2.5);
  EXPECT_EQ(Srv.stats().InjectionsDropped, 1u);
  EXPECT_EQ(Srv.stats().HintsInjected, 1u);
  EXPECT_TRUE(Srv.hints("App").empty());

  // A different, clean genome still injects fine.
  search::Genome Clean;
  Clean.Passes.push_back(lir::PassInstance{lir::PassId::Gvn, 0, false});
  Clean.Passes.push_back(lir::PassInstance{lir::PassId::Dce, 0, false});
  Srv.injectHint("App", Clean, 1.5);
  EXPECT_EQ(Srv.stats().HintsInjected, 2u);
  ASSERT_EQ(Srv.hints("App").size(), 1u);
  EXPECT_EQ(Srv.hints("App")[0].Key, Clean.name());
}

TEST(FleetServer, ClassLocalHintsServeClassTopKPlusExplorationTail) {
  fleet::ServerOptions Opt;
  Opt.TopK = 2;
  Opt.ExplorationTail = 1;
  fleet::Server Srv(Opt);

  auto MakeGenome = [](lir::PassId Id) {
    search::Genome G;
    G.Passes.push_back(lir::PassInstance{Id, 0, false});
    G.Passes.push_back(lir::PassInstance{lir::PassId::Dce, 0, false});
    return G;
  };
  auto Report = [&](const search::Genome &G, uint64_t Hash, double Speedup,
                    int Device, int Class) {
    fleet::RoundReport R;
    R.Device = Device;
    R.DeviceClass = Class;
    R.Best.push_back(
        genomeReport(G, Hash, {Speedup, Speedup, Speedup}));
    Srv.merge("App", R);
  };

  // Class 0 confirmed three entries; class 1 confirmed two faster ones
  // (different silicon, different winners).
  search::Genome A = MakeGenome(lir::PassId::Gvn);
  search::Genome B = MakeGenome(lir::PassId::Sink);
  search::Genome C = MakeGenome(lir::PassId::Licm);
  search::Genome D = MakeGenome(lir::PassId::InstCombine);
  search::Genome E = MakeGenome(lir::PassId::SimplifyCfg);
  Report(A, 0xa, 1.4, /*Device=*/0, /*Class=*/0);
  Report(B, 0xb, 1.3, /*Device=*/1, /*Class=*/0);
  Report(C, 0xc, 1.2, /*Device=*/2, /*Class=*/0);
  Report(D, 0xd, 2.0, /*Device=*/3, /*Class=*/1);
  Report(E, 0xe, 1.9, /*Device=*/4, /*Class=*/1);

  // Class 0 gets its own top-2 first — not class 1's globally-better
  // entries — then the single best foreign entry as the exploration
  // tail.
  std::vector<fleet::Hint> H0 = Srv.hints("App", /*Now=*/0, /*Class=*/0);
  ASSERT_EQ(H0.size(), 3u);
  EXPECT_EQ(H0[0].Key, A.name());
  EXPECT_EQ(H0[1].Key, B.name());
  EXPECT_EQ(H0[2].Key, D.name());

  // Class 1 symmetric: own two winners, then class 0's best.
  std::vector<fleet::Hint> H1 = Srv.hints("App", /*Now=*/0, /*Class=*/1);
  ASSERT_EQ(H1.size(), 3u);
  EXPECT_EQ(H1[0].Key, D.name());
  EXPECT_EQ(H1[1].Key, E.name());
  EXPECT_EQ(H1[2].Key, A.name());

  // A class nobody reported from is all exploration tail.
  std::vector<fleet::Hint> H9 = Srv.hints("App", /*Now=*/0, /*Class=*/9);
  ASSERT_EQ(H9.size(), 1u);
  EXPECT_EQ(H9[0].Key, D.name());

  // Class -1 keeps the global ranking (best first, no tail).
  std::vector<fleet::Hint> HG = Srv.hints("App");
  ASSERT_EQ(HG.size(), 2u);
  EXPECT_EQ(HG[0].Key, D.name());
  EXPECT_EQ(HG[1].Key, E.name());
}

// --- Device profiles --------------------------------------------------------

TEST(FleetDevice, ProfileDerivationIsDeterministicAndBounded) {
  fleet::DeviceProfile A =
      fleet::DeviceProfile::derive(42, 3, 0.25, 0.5, 2);
  fleet::DeviceProfile B =
      fleet::DeviceProfile::derive(42, 3, 0.25, 0.5, 2);
  EXPECT_EQ(A.Seed, B.Seed);
  EXPECT_EQ(A.CostScale, B.CostScale);
  EXPECT_EQ(A.NoiseScale, B.NoiseScale);
  EXPECT_EQ(A.SessionShift, B.SessionShift);
  EXPECT_GE(A.CostScale, 0.75);
  EXPECT_LE(A.CostScale, 1.25);
  EXPECT_GE(A.NoiseScale, 0.5);
  EXPECT_LE(A.NoiseScale, 1.5);
  EXPECT_GE(A.SessionShift, -2);
  EXPECT_LE(A.SessionShift, 2);

  // Different members of the same population get different seeds.
  fleet::DeviceProfile C =
      fleet::DeviceProfile::derive(42, 4, 0.25, 0.5, 2);
  EXPECT_NE(A.Seed, C.Seed);

  // Zero jitter: a homogeneous fleet.
  fleet::DeviceProfile H = fleet::DeviceProfile::derive(42, 3, 0, 0, 0);
  EXPECT_EQ(H.CostScale, 1.0);
  EXPECT_EQ(H.NoiseScale, 1.0);
  EXPECT_EQ(H.SessionShift, 0);
}

TEST(FleetDevice, ClassedProfilesShareHardwareNotSeeds) {
  // Device 7 of a 4-class fleet lands in class 3 and inherits class 3's
  // hardware axes (that is what lets class members share one pipeline
  // state)...
  fleet::DeviceProfile D7 =
      fleet::DeviceProfile::deriveClassed(42, 7, 4, 0.25, 0.5, 2);
  fleet::DeviceProfile C3 = fleet::DeviceProfile::derive(42, 3, 0.25, 0.5, 2);
  EXPECT_EQ(D7.Id, 7);
  EXPECT_EQ(D7.ClassId, 3);
  EXPECT_EQ(D7.CostScale, C3.CostScale);
  EXPECT_EQ(D7.NoiseScale, C3.NoiseScale);
  EXPECT_EQ(D7.SessionShift, C3.SessionShift);

  // ...but searches from its own seed: class siblings explore distinct
  // trajectories.
  fleet::DeviceProfile D3 =
      fleet::DeviceProfile::deriveClassed(42, 3, 4, 0.25, 0.5, 2);
  EXPECT_EQ(D3.ClassId, D7.ClassId);
  EXPECT_NE(D3.Seed, D7.Seed);

  // Classes = 0 degenerates to the historical per-device derivation.
  fleet::DeviceProfile Solo =
      fleet::DeviceProfile::deriveClassed(42, 3, 0, 0.25, 0.5, 2);
  EXPECT_EQ(Solo.Seed, C3.Seed);
  EXPECT_EQ(Solo.ClassId, 3);
}

// --- (a) Determinism: bit-identical at any --jobs and across re-runs --------

TEST(FleetCoordinator, ResultsAreIdenticalAcrossJobsAndReruns) {
  fleet::PerfectTransport Net;
  fleet::FleetResult Serial =
      runFleet(fleetOptions(3, 2, /*Jobs=*/1, /*Seed=*/1), Net);
  fleet::FleetResult Parallel =
      runFleet(fleetOptions(3, 2, /*Jobs=*/4, /*Seed=*/1), Net);
  fleet::FleetResult Rerun =
      runFleet(fleetOptions(3, 2, /*Jobs=*/4, /*Seed=*/1), Net);

  ASSERT_TRUE(Serial.Succeeded) << Serial.FailureReason;
  EXPECT_FALSE(Serial.digest().empty());
  EXPECT_EQ(Serial.digest(), Parallel.digest());
  EXPECT_EQ(Parallel.digest(), Rerun.digest());
  EXPECT_EQ(Serial.BestSpeedup, Parallel.BestSpeedup);
  EXPECT_EQ(Serial.BestGenome, Parallel.BestGenome);
  EXPECT_GT(Serial.VirtualDuration, 0u);
}

// --- (b) Crowd-sourcing pays: more devices, no worse a best -----------------

TEST(FleetCoordinator, FourDevicesFindAtLeastTheSingleDeviceBest) {
  // Homogeneous fleet: identical hardware, so best-speedup comparisons
  // across population sizes are apples to apples. Each device still
  // searches from its own seed — the population explores more of the
  // space, and the leaderboard shares what it finds. Three steps so the
  // asynchronous hint loop closes: a device needs a delivered report
  // (step n), the piggybacked hint push, and a later step (n+1 or n+2)
  // to adopt.
  fleet::FleetOptions One = fleetOptions(1, 3, 1, /*Seed=*/1);
  One.CostJitter = 0.0;
  One.NoiseJitter = 0.0;
  One.SessionSpread = 0;
  fleet::FleetOptions Four = One;
  Four.Devices = 4;
  Four.Jobs = 4;

  fleet::PerfectTransport Net;
  fleet::FleetResult R1 = runFleet(One, Net);
  fleet::FleetResult R4 = runFleet(Four, Net);

  ASSERT_TRUE(R1.Succeeded) << R1.FailureReason;
  ASSERT_TRUE(R4.Succeeded) << R4.FailureReason;
  EXPECT_GT(R1.BestSpeedup, 0.0);
  EXPECT_GE(R4.BestSpeedup, R1.BestSpeedup);
  // The crowd actually talked: hints flowed and some were adopted.
  EXPECT_GT(R4.HintsPublished, 0u);
  EXPECT_GT(R4.HintsAdopted, 0u);
}

// --- (c) Safety: unsound hints are re-verified, rejected, quarantined -------

TEST(FleetCoordinator, UnsoundHintIsRejectedByVerificationAndQuarantined) {
#if ROPT_OBSERVABILITY
  uint64_t RejectedBefore =
      Metrics::instance().snapshot().counter("fleet.hints_rejected");
#endif

  fleet::Server Srv;
  search::Genome Evil = unsoundGenome();
  // The poisoned leaderboard: an unsound genome claiming a 9.9x speedup,
  // as if reported by a device whose inputs never tripped the bug. Every
  // device must re-verify it against its own map before adoption.
  Srv.injectHint("Sieve", Evil, /*Speedup=*/9.9);

  fleet::PerfectTransport Net;
  fleet::Coordinator Co(fleetOptions(2, 2, 1, /*Seed=*/1), fleetBase(1));
  fleet::FleetResult R = Co.run("Sieve", Srv, Net);

  ASSERT_TRUE(R.Succeeded) << R.FailureReason;
  // Both devices saw the hint, neither adopted it, and the rejection was
  // counted and reported back.
  EXPECT_GT(R.HintsRejected, 0u);
  EXPECT_NE(R.BestGenome, Evil.name());
#if ROPT_OBSERVABILITY
  uint64_t RejectedAfter =
      Metrics::instance().snapshot().counter("fleet.hints_rejected");
  EXPECT_GT(RejectedAfter, RejectedBefore);
#endif

  // The server quarantined the genome on the first rejection report: it
  // is out of the hint set for good.
  const std::vector<fleet::Server::LeaderEntry> *Board =
      Srv.leaderboard("Sieve");
  ASSERT_NE(Board, nullptr);
  bool FoundQuarantined = false;
  for (const fleet::Server::LeaderEntry &E : *Board)
    if (E.Key == Evil.name()) {
      EXPECT_TRUE(E.Quarantined);
      EXPECT_FALSE(E.RejectVerdict.empty());
      FoundQuarantined = true;
    }
  EXPECT_TRUE(FoundQuarantined);
  for (const fleet::Hint &H : Srv.hints("Sieve"))
    EXPECT_NE(H.Key, Evil.name());
}

// --- (d) Loss is real, determinism survives it ------------------------------

TEST(FleetCoordinator, LossyTransportIsDeterministicAndCounted) {
  fleet::PerfectTransport Ideal;
  fleet::FleetResult Clean =
      runFleet(fleetOptions(2, 2, 1, /*Seed=*/1), Ideal);

  fleet::TransportOptions Opt;
  Opt.DropProb = 0.3;
  Opt.ReorderProb = 0.3;
  auto RunLossy = [&](int Jobs) {
    fleet::SimTransport Lossy(Opt, /*Seed=*/1);
    return runFleet(fleetOptions(2, 2, Jobs, /*Seed=*/1), Lossy);
  };
  fleet::FleetResult Noisy = RunLossy(1);
  fleet::FleetResult NoisyParallel = RunLossy(8);
  fleet::FleetResult NoisyRerun = RunLossy(1);

  ASSERT_TRUE(Clean.Succeeded) << Clean.FailureReason;
  ASSERT_TRUE(Noisy.Succeeded) << Noisy.FailureReason;
  // The loss was real: retries happened and cost virtual time. Since the
  // redesign loss may legitimately change *results* too (late hints miss
  // steps) — what must hold is determinism at the seed.
  EXPECT_GT(Noisy.Transport.Drops, 0u);
  EXPECT_GT(Noisy.Transport.Attempts, Clean.Transport.Attempts);
  EXPECT_EQ(Clean.Transport.Drops, 0u);
  EXPECT_EQ(Noisy.digest(), NoisyParallel.digest());
  EXPECT_EQ(Noisy.digest(), NoisyRerun.digest());
}

// --- Churn: seeded join/leave, TTL, determinism -----------------------------

TEST(FleetCoordinator, ChurnedFleetIsDeterministicAcrossJobsAndReruns) {
  // 30% of the initial population disconnects mid-run (their in-flight
  // results die with them) and 30% joins late, on a seeded schedule.
  auto ChurnOptions = [](int Jobs) {
    fleet::FleetOptions FO = fleetOptions(10, 2, Jobs, /*Seed=*/5);
    FO.ProfileClasses = 2; // Class sharing keeps ten devices cheap.
    FO.Population.LeaveFraction = 0.3;
    FO.Population.JoinFraction = 0.3;
    FO.Population.HorizonTicks = 900;
    return FO;
  };

  auto RunChurn = [&](int Jobs) {
    fleet::ServerOptions SrvOpt;
    SrvOpt.TtlTicks = 900; // Stale entries age out within a lifetime.
    fleet::Server Srv(SrvOpt);
    fleet::SimTransport Net(fleet::TransportOptions{}, /*Seed=*/5);
    fleet::Coordinator Co(ChurnOptions(Jobs), fleetBase(5));
    return Co.run("Sieve", Srv, Net);
  };

  fleet::FleetResult Serial = RunChurn(1);
  fleet::FleetResult Parallel = RunChurn(8);
  fleet::FleetResult Rerun = RunChurn(1);

  ASSERT_TRUE(Serial.Succeeded) << Serial.FailureReason;
  // The churn schedule actually fired at this seed.
  EXPECT_GT(Serial.DevicesLeft, 0);
  EXPECT_EQ(Serial.DevicesJoined, 3);
  EXPECT_EQ(Serial.Devices, 13);
  // And the simulation stayed bit-identical across --jobs and reruns.
  EXPECT_EQ(Serial.digest(), Parallel.digest());
  EXPECT_EQ(Serial.digest(), Rerun.digest());
}

// --- The core warm-start hook the fleet seeds through -----------------------

TEST(FleetWarmStart, WarmStartedSearchIsNoWorseThanColdAtSameBudget) {
  workloads::Application App = workloads::buildByName("Sieve");

  core::PipelineConfig Cold = fleetBase(/*Seed=*/1);
  core::IterativeCompiler ColdPipeline(Cold);
  core::OptimizationReport ColdRun = ColdPipeline.optimize(App);
  ASSERT_TRUE(ColdRun.Succeeded) << ColdRun.FailureReason;

  // Same budget, same seed, but gen-0 starts from the cold run's winner
  // — exactly how a fleet device re-enters each step. The warm run can
  // only match or beat the seed it started from.
  core::PipelineConfig Warm = fleetBase(/*Seed=*/1);
  Warm.Search.WarmStart.push_back(
      search::SeedGenome{ColdRun.Best.G, /*Provenance=*/0});
  core::IterativeCompiler WarmPipeline(Warm);
  core::OptimizationReport WarmRun = WarmPipeline.optimize(App);
  ASSERT_TRUE(WarmRun.Succeeded) << WarmRun.FailureReason;

  EXPECT_LE(WarmRun.RegionBest, ColdRun.RegionBest);
}

// --- Telemetry: sketches, provenance chains, bounded buffers ----------------

TEST(FleetTelemetry, SketchMergeIsAssociativeAndCommutative) {
  using fleet::TelemetrySketch;
  TelemetrySketch A(TelemetrySketch::Kind::Speedup);
  TelemetrySketch B(TelemetrySketch::Kind::Speedup);
  TelemetrySketch C(TelemetrySketch::Kind::Speedup);
  for (double V : {0.4, 1.1, 2.2})
    A.observe(V);
  B.observe(1.6);
  for (double V : {3.5, 9.0})
    C.observe(V);

  // (A + B) + C == A + (B + C) == C + B + A on the counts — fixed bounds
  // make the merge a plain bucket-wise sum, which is what lets device
  // sketches roll up to class, cell and fleet totals in any grouping.
  TelemetrySketch L = A;
  L += B;
  L += C;
  TelemetrySketch BC = B;
  BC += C;
  TelemetrySketch R = A;
  R += BC;
  TelemetrySketch Rev = C;
  Rev += B;
  Rev += A;
  EXPECT_EQ(L.counts(), R.counts());
  EXPECT_EQ(L.counts(), Rev.counts());
  EXPECT_EQ(L.count(), 6u);
  EXPECT_EQ(L.min(), 0.4);
  EXPECT_EQ(L.max(), 9.0);
  EXPECT_DOUBLE_EQ(L.sum(), R.sum());
  // The snapshot view powers the report layer's quantile tables.
  EXPECT_GT(L.snapshot().quantile(0.5), 0.0);
  EXPECT_LE(L.snapshot().quantile(0.5), L.snapshot().quantile(0.95));
}

TEST(FleetTelemetry, TelemetryAndTraceAreIdenticalAcrossJobsAndReruns) {
  fleet::PerfectTransport Net;
  fleet::FleetResult Serial =
      runFleet(fleetOptions(3, 2, /*Jobs=*/1, /*Seed=*/1), Net);
  fleet::FleetResult Parallel =
      runFleet(fleetOptions(3, 2, /*Jobs=*/8, /*Seed=*/1), Net);
  fleet::FleetResult Rerun =
      runFleet(fleetOptions(3, 2, /*Jobs=*/1, /*Seed=*/1), Net);
  ASSERT_TRUE(Serial.Succeeded) << Serial.FailureReason;

  // The rendered telemetry (sketches + chains) is a pure function of the
  // simulation: byte-identical at any --jobs and across reruns.
  EXPECT_FALSE(Serial.Telemetry.Chains.empty());
  EXPECT_GT(Serial.Telemetry.Total.StepTicks.count(), 0u);
  EXPECT_EQ(Serial.Telemetry.json(), Parallel.Telemetry.json());
  EXPECT_EQ(Serial.Telemetry.json(), Rerun.Telemetry.json());

  // Same bar for the virtual-clock Chrome trace.
  auto Render = [](const fleet::FleetResult &R) {
    analysis::FleetTrace T;
    T.beginCell(R.AppName, R.Devices, /*NumTracks=*/R.Devices);
    for (const analysis::FleetTraceEvent &E : R.TraceEvents)
      T.add(E);
    return T.toChromeJson();
  };
  EXPECT_FALSE(Serial.TraceEvents.empty());
  EXPECT_EQ(Render(Serial), Render(Parallel));
  EXPECT_EQ(Render(Serial), Render(Rerun));
}

TEST(FleetTelemetry, ProvenanceChainFollowsTheWinningGenome) {
  // The homogeneous 4-device fleet from the crowd-sourcing test: hints
  // flow and get adopted, so chains record complete fleet journeys.
  fleet::FleetOptions FO = fleetOptions(4, 3, /*Jobs=*/4, /*Seed=*/1);
  FO.CostJitter = 0.0;
  FO.NoiseJitter = 0.0;
  FO.SessionSpread = 0;
  fleet::PerfectTransport Net;
  fleet::FleetResult R = runFleet(FO, Net);
  ASSERT_TRUE(R.Succeeded) << R.FailureReason;

  // The winning genome's chain: flagged, keyed by the winning genome,
  // and causally ordered (discovered before it reached the server).
  ASSERT_NE(R.BestProv.Id, 0u);
  const fleet::ProvenanceChain *Winner = nullptr;
  for (const fleet::ProvenanceChain &C : R.Telemetry.Chains)
    if (C.Id == R.BestProv.Id)
      Winner = &C;
  ASSERT_NE(Winner, nullptr);
  EXPECT_TRUE(Winner->Won);
  EXPECT_EQ(Winner->Key, R.BestGenome);
  EXPECT_EQ(Winner->Device, R.BestProv.Device);
  EXPECT_EQ(Winner->DiscoveryTime, R.BestProv.Time);
  if (Winner->FirstMergeTime != 0) {
    EXPECT_GE(Winner->FirstMergeTime, Winner->DiscoveryTime);
  }

  // The crowd adopted at least one chain, after its discovery, and the
  // adoption latency landed in the hint-latency sketch.
  ASSERT_GT(R.HintsAdopted, 0u);
  bool AnyAdopted = false;
  for (const fleet::ProvenanceChain &C : R.Telemetry.Chains) {
    if (C.Adoptions == 0)
      continue;
    AnyAdopted = true;
    EXPECT_GE(C.Arrivals, 1u);
    EXPECT_GE(C.FirstAdoptTime, C.DiscoveryTime);
    EXPECT_GE(C.FirstAdoptDevice, 0);
  }
  EXPECT_TRUE(AnyAdopted);
  EXPECT_GT(R.Telemetry.Total.HintLatency.count(), 0u);
}

TEST(FleetTelemetry, BoundedBuffersDropOldestWithoutChangingResults) {
  auto Run = [](size_t EventsPerDevice) {
    fleet::PerfectTransport Net;
    fleet::FleetOptions FO = fleetOptions(3, 3, /*Jobs=*/1, /*Seed=*/1);
    FO.TelemetryEventsPerDevice = EventsPerDevice;
    fleet::Server Srv;
    fleet::Coordinator Co(FO, fleetBase(FO.Seed));
    return Co.run("Sieve", Srv, Net);
  };
  fleet::FleetResult Wide = Run(2048);
  fleet::FleetResult Tight = Run(1); // Clamped to the 8-event floor.
  ASSERT_TRUE(Wide.Succeeded) << Wide.FailureReason;
  ASSERT_TRUE(Tight.Succeeded) << Tight.FailureReason;

  // The cap bit: oldest events dropped and counted, fewer survivors.
  EXPECT_EQ(Wide.Telemetry.DroppedEvents, 0u);
  EXPECT_GT(Tight.Telemetry.DroppedEvents, 0u);
  EXPECT_LT(Tight.TraceEvents.size(), Wide.TraceEvents.size());

  // Telemetry is observability, not policy: bounding the buffers must
  // not change a single search outcome, and the aggregate sketches and
  // chains (leaderboard-like state, not buffered events) stay complete.
  EXPECT_EQ(Wide.digest(), Tight.digest());
  EXPECT_EQ(Wide.Telemetry.Total.Speedup.count(),
            Tight.Telemetry.Total.Speedup.count());
  EXPECT_EQ(Wide.Telemetry.Chains.size(), Tight.Telemetry.Chains.size());
}

TEST(FleetTelemetry, InjectedUnsoundHintChainRecordsRejections) {
  fleet::Server Srv;
  search::Genome Evil = unsoundGenome();
  Srv.injectHint("Sieve", Evil, /*Speedup=*/9.9);

  fleet::PerfectTransport Net;
  fleet::Coordinator Co(fleetOptions(2, 2, 1, /*Seed=*/1), fleetBase(1));
  fleet::FleetResult R = Co.run("Sieve", Srv, Net);
  ASSERT_TRUE(R.Succeeded) << R.FailureReason;

  // The poisoned hint's chain: marked server-injected (device -1), every
  // adoption attempt ended in a re-verification rejection, and it never
  // won anything.
  const fleet::ProvenanceChain *EvilChain = nullptr;
  for (const fleet::ProvenanceChain &C : R.Telemetry.Chains)
    if (C.Key == Evil.name())
      EvilChain = &C;
  ASSERT_NE(EvilChain, nullptr);
  EXPECT_EQ(EvilChain->Device, -1);
  EXPECT_GE(EvilChain->Rejections, 1u);
  EXPECT_EQ(EvilChain->Adoptions, 0u);
  EXPECT_FALSE(EvilChain->Won);

  // And the rejections surfaced as class-level quarantine counts.
  uint64_t Quarantines = 0;
  for (const fleet::ClassTelemetry &C : R.Telemetry.Classes)
    Quarantines += C.Quarantines;
  EXPECT_GE(Quarantines, 1u);
}
