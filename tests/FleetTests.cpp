//===- tests/FleetTests.cpp - Crowd-sourced fleet search --------------------===//
//
// The fleet layer's acceptance criteria (DESIGN.md §12):
//
//   (a) a seeded fleet run is bit-identical across --jobs values and
//       across re-runs at the same seed;
//   (b) a 4-device fleet's final best fitness is at least the 1-device
//       best at the same per-device budget;
//   (c) a deliberately-unsound injected hint is rejected by every
//       device's own verification map, counted, and quarantined;
//   (d) transport drop/reordering changes retry counters only — results
//       are identical to a lossless run.
//
// Plus unit coverage of the transport's pure-function verdicts, the
// server's statistical merging/dedup/quarantine, device-profile
// derivation, and the core warm-start hook the fleet seeds through.
//
//===----------------------------------------------------------------------===//

#include "fleet/Coordinator.h"
#include "fleet/Server.h"
#include "fleet/Transport.h"

#include "core/IterativeCompiler.h"
#include "lir/Passes.h"
#include "support/Metrics.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace ropt;

namespace {

/// Small-but-real per-device pipeline budget: every fleet test runs the
/// full profile/capture/replay/search stack per device.
core::PipelineConfig fleetBase(uint64_t Seed) {
  core::PipelineConfig Config;
  Config.Seed = Seed;
  Config.Search.GA.Generations = 3;
  Config.Search.GA.PopulationSize = 8;
  Config.Search.GA.HillClimbRounds = 1;
  Config.Search.MaxReplaysPerEvaluation = 4;
  Config.Capture.ProfileSessions = 4;
  Config.Measure.FinalMeasurementRuns = 4;
  return Config;
}

fleet::FleetConfig fleetConfig(int Devices, int Rounds, int Jobs,
                               uint64_t Seed) {
  fleet::FleetConfig FC;
  FC.Devices = Devices;
  FC.Rounds = Rounds;
  FC.Jobs = Jobs;
  FC.Seed = Seed;
  return FC;
}

fleet::FleetResult runFleet(const fleet::FleetConfig &FC,
                            fleet::Transport &Net,
                            const std::string &App = "Sieve") {
  fleet::Server Srv;
  fleet::Coordinator Co(FC, fleetBase(FC.Seed));
  return Co.run(App, Srv, Net);
}

/// A genome whose aggressive modes are mechanistically unsound (LICM
/// division speculation, divisibility-assuming unroll, naive bounds-check
/// elimination) — the fleet-scale stand-in for a device-specific
/// miscompile that some other device's inputs never caught.
search::Genome unsoundGenome() {
  search::Genome G;
  G.Passes.push_back(lir::PassInstance{lir::PassId::Licm, 0, true});
  G.Passes.push_back(
      lir::PassInstance{lir::PassId::LoopUnroll, 3, true});
  G.Passes.push_back(
      lir::PassInstance{lir::PassId::BoundsCheckElim, 0, true});
  return G;
}

} // namespace

// --- Transport --------------------------------------------------------------

TEST(FleetTransport, VerdictIsPureFunctionOfAttemptIdentity) {
  fleet::TransportOptions Opt;
  Opt.DropProb = 0.5;
  Opt.ReorderProb = 0.5;
  fleet::SimTransport Net(Opt, /*Seed=*/7);

  fleet::MessageKey Key{fleet::appKey("Sieve"), fleet::Channel::Report, 2,
                        1, 0};
  fleet::Delivery First = Net.attempt(Key);
  // Same identity, any later call: same fate. No hidden call-order state.
  for (int I = 0; I != 5; ++I) {
    fleet::Delivery Again = Net.attempt(Key);
    EXPECT_EQ(Again.Delivered, First.Delivered);
    EXPECT_EQ(Again.LatencyTicks, First.LatencyTicks);
    EXPECT_EQ(Again.Reordered, First.Reordered);
  }

  // Distinct attempt numbers draw independent fates; over many keys both
  // outcomes must occur at DropProb = 0.5.
  int Delivered = 0, Dropped = 0;
  for (int A = 0; A != 64; ++A) {
    fleet::MessageKey K = Key;
    K.Attempt = A;
    (Net.attempt(K).Delivered ? Delivered : Dropped) += 1;
  }
  EXPECT_GT(Delivered, 0);
  EXPECT_GT(Dropped, 0);
}

TEST(FleetTransport, SendWithRetryMasksHeavyLoss) {
  fleet::TransportOptions Opt;
  Opt.DropProb = 0.6;
  fleet::SimTransport Net(Opt, /*Seed=*/3);
  fleet::RetryPolicy Policy;

  int TotalAttempts = 0;
  for (int D = 0; D != 32; ++D) {
    fleet::MessageKey Key{fleet::appKey("FFT"), fleet::Channel::Hints, 0, D,
                          0};
    fleet::SendOutcome S = fleet::sendWithRetry(Net, Key, Policy);
    EXPECT_TRUE(S.Delivered); // P(fail) = 0.6^64 — effectively never.
    EXPECT_GE(S.Attempts, 1);
    EXPECT_EQ(S.Drops, static_cast<uint64_t>(S.Attempts - 1));
    TotalAttempts += S.Attempts;
  }
  EXPECT_GT(TotalAttempts, 32); // The loss was real: retries happened.

  fleet::PerfectTransport Ideal;
  fleet::SendOutcome S = fleet::sendWithRetry(
      Ideal, fleet::MessageKey{1, fleet::Channel::Hints, 0, 0, 0}, Policy);
  EXPECT_TRUE(S.Delivered);
  EXPECT_EQ(S.Attempts, 1);
  EXPECT_EQ(S.Drops, 0u);
}

// --- Server -----------------------------------------------------------------

namespace {

fleet::GenomeReport genomeReport(const search::Genome &G, uint64_t Hash,
                                 std::vector<double> Speedups) {
  fleet::GenomeReport R;
  R.G = G;
  R.Key = G.name();
  R.BinaryHash = Hash;
  R.SpeedupSamples = std::move(Speedups);
  R.SpeedupMedian = R.SpeedupSamples[R.SpeedupSamples.size() / 2];
  return R;
}

} // namespace

TEST(FleetServer, MergesDeduplicatesAndRanks) {
  fleet::Server Srv;
  search::Genome G1, G2;
  G1.Passes.push_back(lir::PassInstance{lir::PassId::Gvn, 0, false});
  G1.Passes.push_back(lir::PassInstance{lir::PassId::Dce, 0, false});
  G2.Passes.push_back(lir::PassInstance{lir::PassId::Sink, 0, false});
  G2.Passes.push_back(lir::PassInstance{lir::PassId::Dce, 0, false});

  fleet::RoundReport R0;
  R0.Device = 0;
  R0.Best.push_back(genomeReport(G1, 0xaaa, {1.2, 1.3, 1.4}));
  Srv.merge("App", R0);

  // A second device reports the same binary hash: the entry is folded,
  // not duplicated, and the pooled samples re-rank the median.
  fleet::RoundReport R1;
  R1.Device = 1;
  R1.Best.push_back(genomeReport(G1, 0xaaa, {1.6, 1.7, 1.8}));
  R1.Best.push_back(genomeReport(G2, 0xbbb, {2.0, 2.1, 2.2}));
  Srv.merge("App", R1);

  const std::vector<fleet::Server::LeaderEntry> *Board =
      Srv.leaderboard("App");
  ASSERT_NE(Board, nullptr);
  ASSERT_EQ(Board->size(), 2u);
  EXPECT_EQ(Srv.stats().Duplicates, 1u);
  EXPECT_EQ(Srv.stats().ReportsMerged, 2u);

  // Hints come back best-first: G2's 2.1 median beats G1's pooled median.
  std::vector<fleet::Hint> Hints = Srv.hints("App");
  ASSERT_EQ(Hints.size(), 2u);
  EXPECT_EQ(Hints[0].Key, G2.name());
  EXPECT_GT(Hints[0].Speedup, Hints[1].Speedup);
  EXPECT_EQ(Hints[1].Reports, 2);

  // A rejection report quarantines the genome: it leaves the hint set
  // for good, but stays on the leaderboard for the post-mortem.
  fleet::RoundReport R2;
  R2.Device = 2;
  R2.Rejections.push_back(fleet::HintRejection{G2.name(), "wrong-output"});
  Srv.merge("App", R2);
  Hints = Srv.hints("App");
  ASSERT_EQ(Hints.size(), 1u);
  EXPECT_EQ(Hints[0].Key, G1.name());
  EXPECT_EQ(Srv.stats().Quarantined, 1u);
}

TEST(FleetServer, UnknownAppHasNoBoardOrHints) {
  fleet::Server Srv;
  EXPECT_EQ(Srv.leaderboard("Nope"), nullptr);
  EXPECT_TRUE(Srv.hints("Nope").empty());
}

// --- Device profiles --------------------------------------------------------

TEST(FleetDevice, ProfileDerivationIsDeterministicAndBounded) {
  fleet::DeviceProfile A =
      fleet::DeviceProfile::derive(42, 3, 0.25, 0.5, 2);
  fleet::DeviceProfile B =
      fleet::DeviceProfile::derive(42, 3, 0.25, 0.5, 2);
  EXPECT_EQ(A.Seed, B.Seed);
  EXPECT_EQ(A.CostScale, B.CostScale);
  EXPECT_EQ(A.NoiseScale, B.NoiseScale);
  EXPECT_EQ(A.SessionShift, B.SessionShift);
  EXPECT_GE(A.CostScale, 0.75);
  EXPECT_LE(A.CostScale, 1.25);
  EXPECT_GE(A.NoiseScale, 0.5);
  EXPECT_LE(A.NoiseScale, 1.5);
  EXPECT_GE(A.SessionShift, -2);
  EXPECT_LE(A.SessionShift, 2);

  // Different members of the same population get different seeds.
  fleet::DeviceProfile C =
      fleet::DeviceProfile::derive(42, 4, 0.25, 0.5, 2);
  EXPECT_NE(A.Seed, C.Seed);

  // Zero jitter: a homogeneous fleet.
  fleet::DeviceProfile H = fleet::DeviceProfile::derive(42, 3, 0, 0, 0);
  EXPECT_EQ(H.CostScale, 1.0);
  EXPECT_EQ(H.NoiseScale, 1.0);
  EXPECT_EQ(H.SessionShift, 0);
}

// --- (a) Determinism: bit-identical at any --jobs and across re-runs --------

TEST(FleetCoordinator, ResultsAreIdenticalAcrossJobsAndReruns) {
  fleet::PerfectTransport Net;
  fleet::FleetResult Serial =
      runFleet(fleetConfig(3, 2, /*Jobs=*/1, /*Seed=*/1), Net);
  fleet::FleetResult Parallel =
      runFleet(fleetConfig(3, 2, /*Jobs=*/4, /*Seed=*/1), Net);
  fleet::FleetResult Rerun =
      runFleet(fleetConfig(3, 2, /*Jobs=*/4, /*Seed=*/1), Net);

  ASSERT_TRUE(Serial.Succeeded) << Serial.FailureReason;
  EXPECT_FALSE(Serial.digest().empty());
  EXPECT_EQ(Serial.digest(), Parallel.digest());
  EXPECT_EQ(Parallel.digest(), Rerun.digest());
  EXPECT_EQ(Serial.BestSpeedup, Parallel.BestSpeedup);
  EXPECT_EQ(Serial.BestGenome, Parallel.BestGenome);
}

// --- (b) Crowd-sourcing pays: more devices, no worse a best -----------------

TEST(FleetCoordinator, FourDevicesFindAtLeastTheSingleDeviceBest) {
  // Homogeneous fleet: identical hardware, so best-speedup comparisons
  // across population sizes are apples to apples. Each device still
  // searches from its own seed — the population explores more of the
  // space, and the leaderboard shares what it finds.
  fleet::FleetConfig One = fleetConfig(1, 2, 1, /*Seed=*/1);
  One.CostJitter = 0.0;
  One.NoiseJitter = 0.0;
  One.SessionSpread = 0;
  fleet::FleetConfig Four = One;
  Four.Devices = 4;
  Four.Jobs = 4;

  fleet::PerfectTransport Net;
  fleet::FleetResult R1 = runFleet(One, Net);
  fleet::FleetResult R4 = runFleet(Four, Net);

  ASSERT_TRUE(R1.Succeeded) << R1.FailureReason;
  ASSERT_TRUE(R4.Succeeded) << R4.FailureReason;
  EXPECT_GT(R1.BestSpeedup, 0.0);
  EXPECT_GE(R4.BestSpeedup, R1.BestSpeedup);
  // The crowd actually talked: hints flowed and some were adopted.
  EXPECT_GT(R4.HintsPublished, 0u);
  EXPECT_GT(R4.HintsAdopted, 0u);
}

// --- (c) Safety: unsound hints are re-verified, rejected, quarantined -------

TEST(FleetCoordinator, UnsoundHintIsRejectedByVerificationAndQuarantined) {
  uint64_t RejectedBefore =
      Metrics::instance().snapshot().counter("fleet.hints_rejected");

  fleet::Server Srv;
  search::Genome Evil = unsoundGenome();
  // The poisoned leaderboard: an unsound genome claiming a 9.9x speedup,
  // as if reported by a device whose inputs never tripped the bug. Every
  // device must re-verify it against its own map before adoption.
  Srv.injectHint("Sieve", Evil, /*Speedup=*/9.9);

  fleet::PerfectTransport Net;
  fleet::Coordinator Co(fleetConfig(2, 2, 1, /*Seed=*/1), fleetBase(1));
  fleet::FleetResult R = Co.run("Sieve", Srv, Net);

  ASSERT_TRUE(R.Succeeded) << R.FailureReason;
  // Both devices saw the hint, neither adopted it, and the rejection was
  // counted and reported back.
  EXPECT_GT(R.HintsRejected, 0u);
  EXPECT_NE(R.BestGenome, Evil.name());
  uint64_t RejectedAfter =
      Metrics::instance().snapshot().counter("fleet.hints_rejected");
  EXPECT_GT(RejectedAfter, RejectedBefore);

  // The server quarantined the genome on the first rejection report: it
  // is out of the hint set for good.
  const std::vector<fleet::Server::LeaderEntry> *Board =
      Srv.leaderboard("Sieve");
  ASSERT_NE(Board, nullptr);
  bool FoundQuarantined = false;
  for (const fleet::Server::LeaderEntry &E : *Board)
    if (E.Key == Evil.name()) {
      EXPECT_TRUE(E.Quarantined);
      EXPECT_FALSE(E.RejectVerdict.empty());
      FoundQuarantined = true;
    }
  EXPECT_TRUE(FoundQuarantined);
  for (const fleet::Hint &H : Srv.hints("Sieve"))
    EXPECT_NE(H.Key, Evil.name());
}

// --- (d) Loss invariance: a lossy network changes counters, not results -----

TEST(FleetCoordinator, LossyTransportLeavesResultsIdentical) {
  fleet::PerfectTransport Ideal;
  fleet::FleetResult Clean =
      runFleet(fleetConfig(2, 2, 1, /*Seed=*/1), Ideal);

  fleet::TransportOptions Opt;
  Opt.DropProb = 0.3;
  Opt.ReorderProb = 0.3;
  fleet::SimTransport Lossy(Opt, /*Seed=*/1);
  fleet::FleetResult Noisy =
      runFleet(fleetConfig(2, 2, 1, /*Seed=*/1), Lossy);

  ASSERT_TRUE(Clean.Succeeded) << Clean.FailureReason;
  ASSERT_TRUE(Noisy.Succeeded) << Noisy.FailureReason;
  // The loss was real...
  EXPECT_GT(Noisy.TransportDrops, 0u);
  EXPECT_GT(Noisy.TransportAttempts, Clean.TransportAttempts);
  EXPECT_EQ(Noisy.DeliveriesFailed, 0u);
  // ...and changed nothing that matters: same genomes, same leaderboard,
  // same round outcomes, to the byte.
  EXPECT_EQ(Clean.digest(), Noisy.digest());
  EXPECT_EQ(Clean.BestSpeedup, Noisy.BestSpeedup);
  EXPECT_EQ(Clean.BestGenome, Noisy.BestGenome);
}

// --- The core warm-start hook the fleet seeds through -----------------------

TEST(FleetWarmStart, WarmStartedSearchIsNoWorseThanColdAtSameBudget) {
  workloads::Application App = workloads::buildByName("Sieve");

  core::PipelineConfig Cold = fleetBase(/*Seed=*/1);
  core::IterativeCompiler ColdPipeline(Cold);
  core::OptimizationReport ColdRun = ColdPipeline.optimize(App);
  ASSERT_TRUE(ColdRun.Succeeded) << ColdRun.FailureReason;

  // Same budget, same seed, but gen-0 starts from the cold run's winner
  // — exactly how a fleet device re-enters each round. The warm run can
  // only match or beat the seed it started from.
  core::PipelineConfig Warm = fleetBase(/*Seed=*/1);
  Warm.Search.WarmStart.push_back(ColdRun.Best.G);
  core::IterativeCompiler WarmPipeline(Warm);
  core::OptimizationReport WarmRun = WarmPipeline.optimize(App);
  ASSERT_TRUE(WarmRun.Succeeded) << WarmRun.FailureReason;

  EXPECT_LE(WarmRun.RegionBest, ColdRun.RegionBest);
}
