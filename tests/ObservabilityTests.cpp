//===- tests/ObservabilityTests.cpp - support/Trace + support/Metrics --------===//
//
// The tracing/metrics layer: span nesting, thread safety, counter and
// histogram correctness, well-formedness of the Chrome trace_event export
// (validated with a real JSON parser below), and an end-to-end smoke test
// asserting the pipeline's key counters are nonzero after one
// IterativeCompiler run.
//
//===----------------------------------------------------------------------===//

#include "support/Metrics.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"

#include "core/IterativeCompiler.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstring>
#include <map>
#include <thread>

using namespace ropt;

namespace {

// --- A strict recursive-descent JSON syntax checker ------------------------

class JsonChecker {
public:
  explicit JsonChecker(const std::string &S) : S(S) {}

  bool valid() {
    skipWs();
    if (!value())
      return false;
    skipWs();
    return Pos == S.size();
  }

private:
  bool value() {
    if (Pos >= S.size())
      return false;
    switch (S[Pos]) {
    case '{': return object();
    case '[': return array();
    case '"': return string();
    case 't': return literal("true");
    case 'f': return literal("false");
    case 'n': return literal("null");
    default: return number();
    }
  }

  bool object() {
    ++Pos; // '{'
    skipWs();
    if (peek() == '}') {
      ++Pos;
      return true;
    }
    for (;;) {
      skipWs();
      if (!string())
        return false;
      skipWs();
      if (peek() != ':')
        return false;
      ++Pos;
      skipWs();
      if (!value())
        return false;
      skipWs();
      if (peek() == ',') {
        ++Pos;
        continue;
      }
      if (peek() == '}') {
        ++Pos;
        return true;
      }
      return false;
    }
  }

  bool array() {
    ++Pos; // '['
    skipWs();
    if (peek() == ']') {
      ++Pos;
      return true;
    }
    for (;;) {
      skipWs();
      if (!value())
        return false;
      skipWs();
      if (peek() == ',') {
        ++Pos;
        continue;
      }
      if (peek() == ']') {
        ++Pos;
        return true;
      }
      return false;
    }
  }

  bool string() {
    if (peek() != '"')
      return false;
    ++Pos;
    while (Pos < S.size() && S[Pos] != '"') {
      if (S[Pos] == '\\') {
        ++Pos;
        if (Pos >= S.size())
          return false;
        if (S[Pos] == 'u') {
          for (int I = 0; I != 4; ++I)
            if (++Pos >= S.size() || !std::isxdigit(
                                         static_cast<unsigned char>(S[Pos])))
              return false;
        }
      }
      ++Pos;
    }
    if (Pos >= S.size())
      return false;
    ++Pos; // closing quote
    return true;
  }

  bool number() {
    size_t Start = Pos;
    if (peek() == '-')
      ++Pos;
    while (Pos < S.size() &&
           (std::isdigit(static_cast<unsigned char>(S[Pos])) ||
            S[Pos] == '.' || S[Pos] == 'e' || S[Pos] == 'E' ||
            S[Pos] == '+' || S[Pos] == '-'))
      ++Pos;
    return Pos > Start;
  }

  bool literal(const char *Lit) {
    size_t Len = std::strlen(Lit);
    if (S.compare(Pos, Len, Lit) != 0)
      return false;
    Pos += Len;
    return true;
  }

  char peek() const { return Pos < S.size() ? S[Pos] : '\0'; }
  void skipWs() {
    while (Pos < S.size() &&
           std::isspace(static_cast<unsigned char>(S[Pos])))
      ++Pos;
  }

  const std::string &S;
  size_t Pos = 0;
};

bool jsonValid(const std::string &S) { return JsonChecker(S).valid(); }

// Only the ROPT_OBSERVABILITY-gated smoke test below queries spans.
[[maybe_unused]] bool hasSpan(const std::vector<TraceEvent> &Events,
                              const char *Name) {
  return std::any_of(Events.begin(), Events.end(),
                     [Name](const TraceEvent &E) {
                       return E.Ph == TraceEvent::Phase::Complete &&
                              std::string(E.Name) == Name;
                     });
}

/// RAII: leaves the process-wide recorder disabled and empty so tests
/// compose in any order.
struct TraceSession {
  TraceSession() {
    TraceRecorder::instance().clear();
    TraceRecorder::instance().enable(true);
  }
  ~TraceSession() {
    TraceRecorder::instance().enable(false);
    TraceRecorder::instance().clear();
  }
};

} // namespace

// --- The JSON checker itself ------------------------------------------------

TEST(JsonChecker, AcceptsAndRejects) {
  EXPECT_TRUE(jsonValid("{}"));
  EXPECT_TRUE(jsonValid("[1,2.5,-3e4,\"a\\\"b\",true,null,{\"k\":[]}]"));
  EXPECT_FALSE(jsonValid("{"));
  EXPECT_FALSE(jsonValid("{\"a\":1,}"));
  EXPECT_FALSE(jsonValid("[1 2]"));
  EXPECT_FALSE(jsonValid("\"unterminated"));
  EXPECT_FALSE(jsonValid("{}extra"));
}

// --- Trace ------------------------------------------------------------------

TEST(Trace, DisabledRecordsNothing) {
  TraceRecorder &T = TraceRecorder::instance();
  T.enable(false);
  T.clear();
  {
    ROPT_TRACE_SPAN("test.disabled");
    ROPT_TRACE_COUNTER("test.counter", 1);
    ROPT_TRACE_INSTANT("test.instant");
  }
  EXPECT_EQ(T.eventCount(), 0u);
}

TEST(Trace, SpanNestingIsContained) {
  TraceSession Session;
  {
    ScopedSpan Outer("test.outer");
    {
      ScopedSpan Inner("test.inner");
      volatile int Sink = 0;
      for (int I = 0; I != 1000; ++I)
        Sink = I;
      (void)Sink;
    }
  }
  std::vector<TraceEvent> Events = TraceRecorder::instance().events();
  ASSERT_EQ(Events.size(), 2u);
  // Spans are recorded at close: inner first.
  EXPECT_STREQ(Events[0].Name, "test.inner");
  EXPECT_STREQ(Events[1].Name, "test.outer");
  const TraceEvent &Inner = Events[0], &Outer = Events[1];
  EXPECT_GE(Inner.StartUs, Outer.StartUs);
  EXPECT_LE(Inner.StartUs + Inner.DurUs, Outer.StartUs + Outer.DurUs);
}

TEST(Trace, SpanArgumentAndCounterValueSurvive) {
  TraceSession Session;
  {
    ScopedSpan Gen("test.gen", 7);
  }
  TraceRecorder::instance().recordCounter("test.val", 1234);
  std::vector<TraceEvent> Events = TraceRecorder::instance().events();
  ASSERT_EQ(Events.size(), 2u);
  EXPECT_TRUE(Events[0].HasValue);
  EXPECT_EQ(Events[0].Value, 7);
  EXPECT_EQ(Events[1].Ph, TraceEvent::Phase::Counter);
  EXPECT_EQ(Events[1].Value, 1234);
}

TEST(Trace, BoundedBufferEvictsOldestFirst) {
  TraceSession Session;
  TraceRecorder &T = TraceRecorder::instance();
  T.setMaxEvents(10);
  EXPECT_EQ(T.maxEvents(), 10u);
  for (int I = 0; I != 25; ++I)
    T.recordCounter("test.bounded", I);
  EXPECT_EQ(T.eventCount(), 10u);
  EXPECT_EQ(T.droppedEvents(), 15u);
  // The survivors are the newest 10, in recording order.
  std::vector<TraceEvent> Events = T.events();
  ASSERT_EQ(Events.size(), 10u);
  for (size_t I = 0; I != Events.size(); ++I)
    EXPECT_EQ(Events[I].Value, static_cast<int64_t>(15 + I));
  // Shrinking the cap below the current size evicts immediately; the
  // dropped counter keeps accumulating until clear().
  T.setMaxEvents(4);
  EXPECT_EQ(T.eventCount(), 4u);
  EXPECT_EQ(T.droppedEvents(), 21u);
  EXPECT_EQ(T.events().back().Value, 24);
  T.clear();
  EXPECT_EQ(T.droppedEvents(), 0u);
  T.setMaxEvents(TraceRecorder::DefaultMaxEvents);
}

TEST(Trace, ThreadSafetyUnderConcurrentRecording) {
  TraceSession Session;
  constexpr int Threads = 8, PerThread = 500;
  std::vector<std::thread> Pool;
  for (int T = 0; T != Threads; ++T)
    Pool.emplace_back([] {
      for (int I = 0; I != PerThread; ++I) {
        ScopedSpan Span("test.mt");
        TraceRecorder::instance().recordCounter("test.mt_counter", I);
      }
    });
  for (std::thread &T : Pool)
    T.join();
  EXPECT_EQ(TraceRecorder::instance().eventCount(),
            static_cast<size_t>(Threads) * PerThread * 2);
  EXPECT_TRUE(jsonValid(TraceRecorder::instance().toChromeJson()));
}

TEST(Trace, ChromeJsonAndJsonlAreWellFormed) {
  TraceSession Session;
  TraceRecorder &T = TraceRecorder::instance();
  {
    ScopedSpan Span("test.span\"with\\quotes");
    T.recordInstant("test.instant");
    T.recordCounter("test.counter", -5);
  }
  std::string Chrome = T.toChromeJson();
  EXPECT_TRUE(jsonValid(Chrome)) << Chrome;
  EXPECT_NE(Chrome.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Chrome.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(Chrome.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(Chrome.find("\"ph\":\"i\""), std::string::npos);

  // JSONL: every line independently parses. Thread-name metadata lines
  // (ph:"M") may precede the events depending on what earlier tests
  // registered; only the event lines are counted.
  std::string Jsonl = T.toJsonl();
  size_t EventLines = 0, At = 0;
  while (At < Jsonl.size()) {
    size_t End = Jsonl.find('\n', At);
    ASSERT_NE(End, std::string::npos);
    std::string Line = Jsonl.substr(At, End - At);
    EXPECT_TRUE(jsonValid(Line));
    if (Line.find("\"thread_name\"") == std::string::npos)
      ++EventLines;
    At = End + 1;
  }
  EXPECT_EQ(EventLines, 3u);
}

TEST(Trace, ThreadNamesExportAsChromeMetadata) {
  TraceSession Session;
  TraceRecorder &T = TraceRecorder::instance();
  T.setCurrentThreadName("test-main");
  { ScopedSpan Span("test.span"); }

  std::map<uint32_t, std::string> Names = T.threadNames();
  bool Found = false;
  for (const auto &KV : Names)
    Found |= KV.second == "test-main";
  EXPECT_TRUE(Found);

  std::string Chrome = T.toChromeJson();
  EXPECT_TRUE(jsonValid(Chrome)) << Chrome;
  EXPECT_NE(Chrome.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(Chrome.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(Chrome.find("test-main"), std::string::npos);
}

TEST(Trace, ThreadPoolWorkersRegisterNames) {
  // Worker naming is metadata: it happens even while recording is off.
  ThreadPool Pool(3);
  Pool.parallelFor(3, [](size_t, size_t) {});
  std::map<uint32_t, std::string> Names =
      TraceRecorder::instance().threadNames();
  int Workers = 0;
  for (const auto &KV : Names)
    if (KV.second.rfind("worker-", 0) == 0)
      ++Workers;
  EXPECT_GE(Workers, 3);
}

// --- Metrics ----------------------------------------------------------------

TEST(MetricsTest, CountersAndGauges) {
  Metrics Reg; // independent registry, no cross-test state
  Reg.counter("a").add(3);
  Reg.counter("a").add(4);
  Reg.counter("b").add(1);
  Reg.gauge("g").set(-17);
  MetricsSnapshot S = Reg.snapshot();
  EXPECT_EQ(S.counter("a"), 7u);
  EXPECT_EQ(S.counter("b"), 1u);
  EXPECT_EQ(S.counter("absent"), 0u);
  EXPECT_EQ(S.gauge("g"), -17);
  ASSERT_EQ(S.Counters.size(), 2u);
  // Snapshot is name-sorted (std::map iteration order).
  EXPECT_EQ(S.Counters[0].first, "a");
  EXPECT_EQ(S.Counters[1].first, "b");

  Reg.reset();
  EXPECT_EQ(Reg.snapshot().counter("a"), 0u);
  // The reference stays valid across reset.
  Reg.counter("a").add(2);
  EXPECT_EQ(Reg.snapshot().counter("a"), 2u);
}

TEST(MetricsTest, HistogramBuckets) {
  Metrics Reg;
  Histogram &H = Reg.histogram("h", {1.0, 10.0, 100.0});
  for (double V : {0.5, 1.0, 5.0, 50.0, 500.0, 5000.0})
    H.observe(V);
  Histogram::Snapshot S = H.snapshot();
  ASSERT_EQ(S.Counts.size(), 4u); // 3 bounds + overflow
  EXPECT_EQ(S.Counts[0], 2u);     // 0.5, 1.0 (bounds are inclusive)
  EXPECT_EQ(S.Counts[1], 1u);     // 5.0
  EXPECT_EQ(S.Counts[2], 1u);     // 50.0
  EXPECT_EQ(S.Counts[3], 2u);     // 500, 5000 overflow
  EXPECT_EQ(S.Count, 6u);
  EXPECT_DOUBLE_EQ(S.Min, 0.5);
  EXPECT_DOUBLE_EQ(S.Max, 5000.0);
  EXPECT_NEAR(S.mean(), 5556.5 / 6.0, 1e-9);
}

TEST(MetricsTest, HistogramBucketBoundaryEdges) {
  Metrics Reg;
  Histogram &H = Reg.histogram("edges", {10.0, 100.0});
  H.observe(10.0);  // exactly on a bound: first bucket (inclusive)
  H.observe(10.000001);
  H.observe(100.0); // exactly on the last finite bound
  H.observe(100.000001); // just past it: overflow
  Histogram::Snapshot S = H.snapshot();
  ASSERT_EQ(S.Counts.size(), 3u);
  EXPECT_EQ(S.Counts[0], 1u);
  EXPECT_EQ(S.Counts[1], 2u);
  EXPECT_EQ(S.Counts[2], 1u);
  EXPECT_EQ(S.Count, 4u);
}

TEST(MetricsTest, HistogramQuantileEstimates) {
  Metrics Reg;
  Histogram &H = Reg.histogram("q", {10.0, 20.0});
  for (double V : {2.0, 4.0, 6.0, 8.0, 10.0})
    H.observe(V); // bucket 0
  for (double V : {12.0, 14.0, 16.0, 18.0, 20.0})
    H.observe(V); // bucket 1
  Histogram::Snapshot S = H.snapshot();
  // Rank interpolation: the first bucket spans [Min, Bounds[0]].
  EXPECT_NEAR(S.quantile(0.0), 2.0, 1e-9);
  EXPECT_NEAR(S.quantile(0.25), 6.0, 1e-9);  // 2 + (2.5/5) * (10 - 2)
  EXPECT_NEAR(S.quantile(0.5), 10.0, 1e-9);
  EXPECT_NEAR(S.quantile(0.75), 15.0, 1e-9); // 10 + (2.5/5) * (20 - 10)
  EXPECT_NEAR(S.quantile(1.0), 20.0, 1e-9);
  // Out-of-range Q is clamped.
  EXPECT_NEAR(S.quantile(-1.0), 2.0, 1e-9);
  EXPECT_NEAR(S.quantile(2.0), 20.0, 1e-9);
}

TEST(MetricsTest, HistogramQuantileOverflowBucket) {
  Metrics Reg;
  Histogram &H = Reg.histogram("ovf", {10.0});
  H.observe(5.0);
  H.observe(50.0);  // overflow
  H.observe(150.0); // overflow
  Histogram::Snapshot S = H.snapshot();
  // The overflow bucket interpolates between the last bound and Max, so
  // estimates stay within [Min, Max] instead of running off to infinity.
  double Q9 = S.quantile(0.9);
  EXPECT_GE(Q9, 10.0);
  EXPECT_LE(Q9, 150.0);
  EXPECT_NEAR(S.quantile(1.0), 150.0, 1e-9);

  Histogram &Empty = Reg.histogram("empty", {1.0});
  EXPECT_DOUBLE_EQ(Empty.snapshot().quantile(0.5), 0.0);
}

TEST(MetricsTest, CountersAreThreadSafe) {
  Metrics Reg;
  Counter &C = Reg.counter("mt");
  std::vector<std::thread> Pool;
  for (int T = 0; T != 8; ++T)
    Pool.emplace_back([&C] {
      for (int I = 0; I != 10000; ++I)
        C.add(1);
    });
  for (std::thread &T : Pool)
    T.join();
  EXPECT_EQ(C.value(), 80000u);
}

TEST(MetricsTest, TextAndJsonDumps) {
  Metrics Reg;
  Reg.counter("capture.pages_spooled").add(12);
  Reg.gauge("search.best_cycles").set(999);
  Reg.histogram("replay.cycles", {10.0, 100.0}).observe(42.0);
  MetricsSnapshot S = Reg.snapshot();
  std::string Text = S.toText();
  EXPECT_NE(Text.find("capture.pages_spooled"), std::string::npos);
  EXPECT_NE(Text.find("12"), std::string::npos);
  std::string Json = S.toJson();
  EXPECT_TRUE(jsonValid(Json)) << Json;
  EXPECT_NE(Json.find("\"counters\""), std::string::npos);
  EXPECT_NE(Json.find("\"histograms\""), std::string::npos);
}

#if ROPT_OBSERVABILITY

// --- The instrumentation macros (compiled out when OFF) ---------------------

TEST(Trace, MacrosRecordWhenEnabled) {
  TraceSession Session;
  {
    ROPT_TRACE_SPAN("test.macro_span");
    ROPT_TRACE_SPAN_V("test.macro_span_v", 3);
    ROPT_TRACE_COUNTER("test.macro_counter", 11);
    ROPT_TRACE_INSTANT("test.macro_instant");
  }
  std::vector<TraceEvent> Events = TraceRecorder::instance().events();
  ASSERT_EQ(Events.size(), 4u);
  EXPECT_TRUE(hasSpan(Events, "test.macro_span"));
  EXPECT_TRUE(hasSpan(Events, "test.macro_span_v"));
}

TEST(MetricsTest, MacrosHitTheProcessRegistry) {
  Metrics::instance().reset();
  ROPT_METRIC_INC("test.inc");
  ROPT_METRIC_ADD("test.add", 41);
  ROPT_METRIC_GAUGE_SET("test.gauge", -3);
  ROPT_METRIC_OBSERVE("test.hist", 7.0, ({1.0, 10.0}));
  MetricsSnapshot S = Metrics::instance().snapshot();
  EXPECT_EQ(S.counter("test.inc"), 1u);
  EXPECT_EQ(S.counter("test.add"), 41u);
  EXPECT_EQ(S.gauge("test.gauge"), -3);
  Metrics::instance().reset();
}

// --- End-to-end: one pipeline run populates the whole layer -----------------

TEST(ObservabilityPipeline, SmokeCountersAndSpans) {
  Metrics::instance().reset();
  TraceSession Session;

  core::PipelineConfig Config;
  Config.Seed = 1;
  Config.Search.GA.Generations = 3;
  Config.Search.GA.PopulationSize = 10;
  Config.Search.GA.HillClimbRounds = 1;
  Config.Search.MaxReplaysPerEvaluation = 5;
  Config.Capture.ProfileSessions = 4;
  Config.Measure.FinalMeasurementRuns = 4;
  core::IterativeCompiler Pipeline(Config);
  core::OptimizationReport Report =
      Pipeline.optimize(workloads::buildByName("Sieve"));
  ASSERT_TRUE(Report.Succeeded) << Report.FailureReason;

  // The acceptance counters: capture spooled pages, replays ran, the GA
  // accepted/rejected genomes.
  MetricsSnapshot S = Metrics::instance().snapshot();
  EXPECT_GT(S.counter("capture.pages_spooled"), 0u);
  EXPECT_GT(S.counter("capture.captures"), 0u);
  EXPECT_GT(S.counter("replay.replays"), 0u);
  EXPECT_GT(S.counter("search.genomes_accepted") +
                S.counter("search.genomes_rejected"),
            0u);
  EXPECT_EQ(S.counter("search.genomes_accepted") +
                S.counter("search.genomes_rejected"),
            S.counter("search.evaluations"));
  EXPECT_GT(S.counter("vm.insns"), 0u);
  EXPECT_GT(S.counter("vm.heap_allocs"), 0u);
  EXPECT_GT(S.counter("pipeline.runs"), 0u);

  // The evaluator's per-run counters and the process-wide registry agree
  // on the number of GA evaluations; the evaluator additionally ran the
  // Android and -O3 baselines before the search started.
  EXPECT_EQ(S.counter("search.evaluations") + 2,
            static_cast<uint64_t>(Report.Counters.total()));

  // One trace shows the whole Figure-6 loop: phases, capture, replay, and
  // at least one GA generation.
  std::vector<TraceEvent> Events = TraceRecorder::instance().events();
  EXPECT_TRUE(hasSpan(Events, "pipeline.optimize"));
  EXPECT_TRUE(hasSpan(Events, "pipeline.profile"));
  EXPECT_TRUE(hasSpan(Events, "pipeline.capture"));
  EXPECT_TRUE(hasSpan(Events, "capture.spool"));
  EXPECT_TRUE(hasSpan(Events, "replay.run"));
  EXPECT_TRUE(hasSpan(Events, "search.generation"));
  EXPECT_TRUE(hasSpan(Events, "search.hillclimb"));

  // And the export of a real pipeline trace is valid JSON.
  EXPECT_TRUE(jsonValid(TraceRecorder::instance().toChromeJson()));

  // The GA's generation log is consistent with the evaluation stream.
  ASSERT_FALSE(Report.Trace.Generations.empty());
  int LoggedEvals = 0;
  for (const search::GenerationStats &G : Report.Trace.Generations) {
    LoggedEvals += G.Evaluations;
    if (G.valid() > 0) {
      EXPECT_LE(G.BestCycles, G.MeanCycles);
      EXPECT_LE(G.MeanCycles, G.WorstCycles);
    }
  }
  EXPECT_EQ(LoggedEvals,
            static_cast<int>(Report.Trace.Evaluations.size()));
  EXPECT_EQ(LoggedEvals + 2, Report.Counters.total());
}

#endif // ROPT_OBSERVABILITY
