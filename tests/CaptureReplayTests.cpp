//===- tests/CaptureReplayTests.cpp - capture/ + replay/ tests --------------===//

#include "capture/CaptureManager.h"
#include "core/IterativeCompiler.h"
#include "workloads/Workloads.h"
#include "hgraph/AndroidCompiler.h"
#include "lir/Backend.h"
#include "profiler/HotRegion.h"
#include "replay/Replayer.h"
#include "support/Random.h"
#include "tests/TestPrograms.h"

#include <gtest/gtest.h>

using namespace ropt;
using namespace ropt::dex;
using namespace ropt::capture;
using namespace ropt::replay;
using vm::Value;

namespace {

/// A stateful app: init() builds an array in the heap referenced from a
/// static; step(x) folds x into the array and returns a digest. The hot
/// region (step) is fully determined by memory — ideal for capture.
struct StatefulApp {
  DexFile File;
  MethodId Init = InvalidId;
  MethodId Step = InvalidId;

  StatefulApp() {
    DexBuilder B;
    ClassId State = B.addClass("State");
    StaticFieldId DataRef = B.addStaticField(State, "data", Type::Ref);
    StaticFieldId Counter = B.addStaticField(State, "count", Type::I64);

    Init = B.declareFunction(InvalidId, "init", 1, false);
    {
      FunctionBuilder F = B.beginBody(Init);
      RegIdx Arr = F.newReg(), I = F.newReg(), One = F.immI(1);
      F.newArray(Arr, F.param(0), Type::I64);
      F.constI(I, 0);
      auto Head = F.newLabel(), Done = F.newLabel();
      F.bind(Head);
      F.ifGe(I, F.param(0), Done);
      RegIdx V = F.newReg();
      F.mulI(V, I, I);
      F.astore(Arr, I, V, Type::I64);
      F.addI(I, I, One);
      F.jump(Head);
      F.bind(Done);
      F.putStatic(DataRef, Arr);
      F.retVoid();
      B.endBody(F);
    }

    Step = B.declareFunction(InvalidId, "step", 1, true);
    {
      FunctionBuilder F = B.beginBody(Step);
      RegIdx Arr = F.newReg(), Len = F.newReg(), I = F.newReg(),
             Sum = F.newReg(), One = F.immI(1);
      F.getStatic(Arr, DataRef);
      F.arrayLen(Len, Arr);
      F.constI(Sum, 0);
      F.constI(I, 0);
      auto Head = F.newLabel(), Done = F.newLabel();
      F.bind(Head);
      F.ifGe(I, Len, Done);
      RegIdx V = F.newReg();
      F.aload(V, Arr, I, Type::I64);
      F.addI(Sum, Sum, V);
      // arr[i] = arr[i] + x (externally visible writes)
      F.addI(V, V, F.param(0));
      F.astore(Arr, I, V, Type::I64);
      F.addI(I, I, One);
      F.jump(Head);
      F.bind(Done);
      RegIdx C = F.newReg();
      F.getStatic(C, Counter);
      F.addI(C, C, One);
      F.putStatic(Counter, C);
      F.addI(Sum, Sum, C);
      F.ret(Sum);
      B.endBody(F);
    }
    File = B.build();
  }
};

/// Booted app process with a kernel, ready for capture.
struct AppEnv {
  os::Kernel Kernel;
  os::Process &Proc;
  vm::NativeRegistry Natives;
  vm::RuntimeConfig Config;
  std::unique_ptr<vm::Runtime> RT;

  explicit AppEnv(const DexFile &File,
                  vm::RuntimeConfig C = vm::RuntimeConfig())
      : Proc(Kernel.spawn()),
        Natives(vm::NativeRegistry::standardLibrary()), Config(C) {
    vm::Runtime::mapStandardLayout(Proc.space(), File, Config);
    RT = std::make_unique<vm::Runtime>(Proc.space(), File, Natives,
                                       Config);
  }
};

/// Captures one execution of step(x) after init(n).
Capture captureStep(const StatefulApp &App, AppEnv &Env, int64_t N,
                    int64_t X, vm::CallResult *LiveResult = nullptr) {
  EXPECT_TRUE(Env.RT->call(App.Init, {Value::fromI64(N)}).ok());
  CaptureManager CM(Env.Kernel, Env.Proc, *Env.RT);
  CM.armCapture(App.Step);
  vm::CallResult R = Env.RT->call(App.Step, {Value::fromI64(X)});
  EXPECT_TRUE(R.ok());
  if (LiveResult)
    *LiveResult = R;
  EXPECT_TRUE(CM.captureReady());
  return CM.takeCapture().value();
}

} // namespace

// --- Capture mechanics ------------------------------------------------------------

TEST(Capture, RecordsAccessedPagesOnly) {
  StatefulApp App;
  AppEnv Env(App.File);
  Capture Cap = captureStep(App, Env, /*N=*/2000, /*X=*/3);

  // ~2000 i64s = ~4 pages of array + control block + statics + a few.
  EXPECT_GE(Cap.Pages.size(), 4u);
  EXPECT_LT(Cap.Pages.size(), 40u);
  // Far fewer than the process' mapped pages.
  EXPECT_LT(Cap.Pages.size(), Env.Proc.space().mappedPageCount() / 50);
  EXPECT_EQ(Cap.Root, App.Step);
  ASSERT_EQ(Cap.Args.size(), 1u);
  EXPECT_EQ(Cap.Args[0].asI64(), 3);
}

TEST(Capture, EventsAndOverheadsPopulated) {
  StatefulApp App;
  AppEnv Env(App.File);
  Capture Cap = captureStep(App, Env, 1000, 1);

  EXPECT_GT(Cap.Events.MappedPagesAtFork, 1000u);
  EXPECT_GT(Cap.Events.MappingsParsed, 3u);
  EXPECT_GT(Cap.Events.PagesProtected, 100u);
  EXPECT_GT(Cap.Events.ReadFaults + Cap.Events.WriteFaults, 2u);
  EXPECT_GT(Cap.Events.CowCopies, 0u); // region writes shared pages

  EXPECT_GT(Cap.Overheads.ForkMs, 0.5);
  EXPECT_GT(Cap.Overheads.PreparationMs, 0.5);
  EXPECT_GT(Cap.Overheads.FaultCowMs, 0.0);
  EXPECT_LT(Cap.Overheads.totalMs(), 60.0);
}

TEST(Capture, CapturedBytesAreThePreRegionState) {
  StatefulApp App;
  AppEnv Env(App.File);
  // init builds squares 0,1,4,9... step(+5) mutates them. The capture must
  // hold the *pre-step* values even though step ran to completion.
  Capture Cap = captureStep(App, Env, 64, 5);

  // Find the captured page holding the array payload: scan pages in the
  // heap range for the sequence 0,1,4,9.
  bool FoundOriginal = false;
  for (const PageRecord &P : Cap.Pages) {
    if (P.Addr < vm::Layout::HeapBase)
      continue;
    for (size_t Off = 0; Off + 32 <= P.Bytes.size(); Off += 8) {
      const uint64_t *Words =
          reinterpret_cast<const uint64_t *>(P.Bytes.data() + Off);
      if (Words[0] == 0 && Words[1] == 1 && Words[2] == 4 && Words[3] == 9)
        FoundOriginal = true;
    }
  }
  EXPECT_TRUE(FoundOriginal);
}

TEST(Capture, PostponedWhenGcImminent) {
  StatefulApp App;
  vm::RuntimeConfig Config;
  Config.GcThresholdBytes = 1 << 20;
  AppEnv Env(App.File, Config);
  ASSERT_TRUE(Env.RT->call(App.Init, {Value::fromI64(100)}).ok());

  // Make a collection imminent at the moment the hot region is entered:
  // the entry hook must postpone the capture (Section 3.2, step 1). The
  // imminence is injected straight into the heap's control block, the
  // state an allocation burst between safepoints would leave behind.
  uint64_t AlmostThreshold = (Config.GcThresholdBytes / 10) * 95 / 10;
  ASSERT_TRUE(Env.Proc.space().poke(
      vm::Layout::HeapBase + vm::Heap::BytesSinceGcSlot, &AlmostThreshold,
      sizeof(AlmostThreshold)));
  ASSERT_TRUE(Env.RT->heap().gcImminent());

  CaptureManager CM(Env.Kernel, Env.Proc, *Env.RT);
  CM.armCapture(App.Step);
  ASSERT_TRUE(Env.RT->call(App.Step, {Value::fromI64(1)}).ok());
  EXPECT_FALSE(CM.captureReady());
  EXPECT_EQ(CM.postponedCount(), 1u);

  // That run's safepoints collected; the next run captures.
  ASSERT_TRUE(Env.RT->call(App.Step, {Value::fromI64(1)}).ok());
  EXPECT_TRUE(CM.captureReady());
}

TEST(Capture, AppKeepsRunningNormallyAfterCapture) {
  StatefulApp App;
  AppEnv Env(App.File);
  vm::CallResult Live;
  captureStep(App, Env, 100, 2, &Live);
  // Protections restored: further calls behave normally.
  vm::CallResult Next = Env.RT->call(App.Step, {Value::fromI64(2)});
  ASSERT_TRUE(Next.ok());
  EXPECT_NE(Next.Ret.asI64(), Live.Ret.asI64()); // state advanced
  EXPECT_EQ(Env.Proc.space().stats().ReadFaults, 0u);
}

TEST(Capture, SerializationRoundTrip) {
  StatefulApp App;
  AppEnv Env(App.File);
  Capture Cap = captureStep(App, Env, 256, 7);

  std::vector<uint8_t> Bytes = Cap.serialize();
  Capture Out;
  ASSERT_TRUE(Capture::deserialize(Bytes, Out));
  EXPECT_EQ(Out.Root, Cap.Root);
  EXPECT_EQ(Out.Args.size(), Cap.Args.size());
  EXPECT_EQ(Out.Pages.size(), Cap.Pages.size());
  EXPECT_EQ(Out.Mappings.size(), Cap.Mappings.size());
  EXPECT_EQ(Out.CommonBytes, Cap.CommonBytes);
  for (size_t I = 0; I != Cap.Pages.size(); ++I) {
    EXPECT_EQ(Out.Pages[I].Addr, Cap.Pages[I].Addr);
    EXPECT_EQ(Out.Pages[I].Bytes, Cap.Pages[I].Bytes);
  }
  EXPECT_FALSE(Capture::deserialize({1, 2, 3}, Out));
}

// Storage blobs are untrusted input to the replay host: truncated or
// bit-flipped bytes must be rejected (or survive as a well-formed other
// capture), never crash or over-allocate.
TEST(Capture, DeserializeRejectsEveryTruncation) {
  StatefulApp App;
  AppEnv Env(App.File);
  Capture Cap = captureStep(App, Env, 256, 7);
  std::vector<uint8_t> Bytes = Cap.serialize();
  ASSERT_GT(Bytes.size(), 64u);

  // Step through prefixes (all short ones, sampled long ones).
  for (size_t Len = 0; Len < Bytes.size();
       Len += (Len < 128 ? 1 : 211)) {
    std::vector<uint8_t> Trunc(Bytes.begin(), Bytes.begin() + Len);
    Capture Out;
    EXPECT_FALSE(Capture::deserialize(Trunc, Out)) << "len=" << Len;
  }
  Capture Out;
  EXPECT_TRUE(Capture::deserialize(Bytes, Out));
}

TEST(Capture, DeserializeSurvivesRandomCorruption) {
  StatefulApp App;
  AppEnv Env(App.File);
  Capture Cap = captureStep(App, Env, 256, 7);
  std::vector<uint8_t> Bytes = Cap.serialize();

  Rng R(0xF00D);
  for (int Trial = 0; Trial != 400; ++Trial) {
    std::vector<uint8_t> Bad = Bytes;
    int Flips = 1 + static_cast<int>(R.below(8));
    for (int F = 0; F != Flips; ++F)
      Bad[R.below(Bad.size())] ^=
          static_cast<uint8_t>(1u << R.below(8));
    Capture Out;
    // Must terminate without crashing; header-intact corruptions may
    // still parse, but never into something absurd.
    if (Capture::deserialize(Bad, Out)) {
      EXPECT_LT(Out.Pages.size(), 1u << 20);
      EXPECT_LT(Out.Args.size(), 1u << 20);
    }
  }
}

TEST(Capture, SpoolsToStorageWithCommonBlobOnce) {
  StatefulApp App;
  AppEnv Env(App.File);
  Capture Cap1 = captureStep(App, Env, 128, 1);

  CaptureManager CM(Env.Kernel, Env.Proc, *Env.RT);
  std::string Path1 = CM.spoolToStorage(Cap1, "app");
  uint64_t AfterFirst = Env.Kernel.storage().totalBytesStored();
  EXPECT_TRUE(Env.Kernel.storage().exists(Path1));
  // Common blob (runtime image) dominates the first spool.
  EXPECT_GT(AfterFirst, Cap1.CommonBytes);

  // Second capture of the same boot: only process-specific bytes grow.
  CM.armCapture(App.Step);
  ASSERT_TRUE(Env.RT->call(App.Step, {Value::fromI64(2)}).ok());
  Capture Cap2 = CM.takeCapture().value();
  CM.spoolToStorage(Cap2, "app2");
  uint64_t AfterSecond = Env.Kernel.storage().totalBytesStored();
  EXPECT_LT(AfterSecond - AfterFirst, Cap2.CommonBytes / 4);
}

// --- Replay fidelity -----------------------------------------------------------------

TEST(Replay, InterpretedReplayReproducesTheLiveResult) {
  StatefulApp App;
  AppEnv Env(App.File);
  vm::CallResult Live;
  Capture Cap = captureStep(App, Env, 300, 9, &Live);

  Replayer R(App.File, Env.Natives, Env.Config);
  ReplayResult Rep = R.replay(Cap, ReplayCode::Interpreter, nullptr);
  ASSERT_TRUE(Rep.Result.ok());
  EXPECT_EQ(Rep.Result.Ret.asI64(), Live.Ret.asI64());
}

TEST(Replay, ReplayIsIdempotent) {
  StatefulApp App;
  AppEnv Env(App.File);
  Capture Cap = captureStep(App, Env, 300, 9);

  Replayer R(App.File, Env.Natives, Env.Config);
  ReplayResult A = R.replay(Cap, ReplayCode::Interpreter, nullptr);
  ReplayResult B = R.replay(Cap, ReplayCode::Interpreter, nullptr);
  ASSERT_TRUE(A.Result.ok());
  EXPECT_EQ(A.Result.Ret.Raw, B.Result.Ret.Raw);
  EXPECT_EQ(A.Result.Cycles, B.Result.Cycles);
  EXPECT_EQ(A.Result.Insns, B.Result.Insns);
}

TEST(Replay, CompiledReplayMatchesInterpreted) {
  StatefulApp App;
  AppEnv Env(App.File);
  vm::CallResult Live;
  Capture Cap = captureStep(App, Env, 300, 4, &Live);

  vm::CodeCache Android;
  hgraph::compileAllAndroid(App.File, {App.Step}, Android);

  Replayer R(App.File, Env.Natives, Env.Config);
  ReplayResult Interp = R.replay(Cap, ReplayCode::Interpreter, nullptr);
  ReplayResult Comp = R.replay(Cap, ReplayCode::Compiled, &Android);
  ASSERT_TRUE(Comp.Result.ok());
  EXPECT_EQ(Comp.Result.Ret.asI64(), Interp.Result.Ret.asI64());
  EXPECT_EQ(Comp.Result.Ret.asI64(), Live.Ret.asI64());
  EXPECT_LT(Comp.Result.Cycles, Interp.Result.Cycles);
}

// The full on-disk path: spool to bytes, parse the bytes back, replay.
// The deserialized capture must replay to the identical result.
TEST(Replay, ReplayFromStorageRoundTripMatchesLive) {
  StatefulApp App;
  AppEnv Env(App.File);
  vm::CallResult Live;
  Capture Cap = captureStep(App, Env, 300, 9, &Live);

  std::vector<uint8_t> Bytes = Cap.serialize();
  Capture FromDisk;
  ASSERT_TRUE(Capture::deserialize(Bytes, FromDisk));

  Replayer R(App.File, Env.Natives, Env.Config);
  ReplayResult Rep = R.replay(FromDisk, ReplayCode::Interpreter, nullptr);
  ASSERT_TRUE(Rep.Result.ok());
  EXPECT_EQ(Rep.Result.Ret.asI64(), Live.Ret.asI64());
}

// Bit-rot inside captured page *contents* (the header still parses): the
// replay host must terminate cleanly every time — a wrong result, a trap,
// or a timeout, never a crash of the host itself.
TEST(Replay, CorruptedPageContentsFailSafely) {
  StatefulApp App;
  AppEnv Env(App.File);
  vm::CallResult Live;
  Capture Cap = captureStep(App, Env, 300, 9, &Live);
  ASSERT_FALSE(Cap.Pages.empty());

  Rng Rand(0xBADC0DE);
  int Diverged = 0;
  for (int Trial = 0; Trial != 24; ++Trial) {
    Capture Bad = Cap;
    // Flip a few bytes in random captured pages.
    for (int F = 0; F != 4; ++F) {
      PageRecord &P = Bad.Pages[Rand.below(Bad.Pages.size())];
      P.Bytes[Rand.below(P.Bytes.size())] ^=
          static_cast<uint8_t>(1u << Rand.below(8));
    }
    Replayer R(App.File, Env.Natives, Env.Config);
    ReplayResult Rep = R.replay(Bad, ReplayCode::Interpreter, nullptr);
    // Terminated (ok, trap, or timeout) — reaching this line is the
    // assertion. Count observable divergence for the sanity check below.
    if (!Rep.Result.ok() || Rep.Result.Ret.Raw != Live.Ret.Raw)
      ++Diverged;
  }
  // Most 4-byte corruptions of a small working set are visible.
  EXPECT_GT(Diverged, 4);
}

TEST(Replay, AslrCollisionsAreHandled) {
  StatefulApp App;
  AppEnv Env(App.File);
  vm::CallResult Live;
  Capture Cap = captureStep(App, Env, 300, 4, &Live);

  // Many replays with different loader bases: results never change, and
  // at least one placement collides with a captured mapping.
  // The loader lands in ~670 MB of address space of which ~30 MB belongs
  // to captured mappings: a few percent collision probability per replay,
  // so a few hundred (seed-deterministic) replays guarantee several.
  Replayer R(App.File, Env.Natives, Env.Config, /*AslrSeed=*/42);
  bool SawCollision = false;
  for (int I = 0; I != 300; ++I) {
    ReplayResult Rep = R.replay(Cap, ReplayCode::Interpreter, nullptr);
    ASSERT_TRUE(Rep.Result.ok());
    EXPECT_EQ(Rep.Result.Ret.asI64(), Live.Ret.asI64());
    SawCollision |= Rep.Loader.CollidingPages > 0;
  }
  EXPECT_TRUE(SawCollision);
}

TEST(Replay, VerificationMapSeesExternalWrites) {
  StatefulApp App;
  AppEnv Env(App.File);
  Capture Cap = captureStep(App, Env, 50, 6);

  Replayer R(App.File, Env.Natives, Env.Config);
  support::Result<InterpretedReplayResult> IRes = R.interpretedReplay(Cap);
  ASSERT_TRUE(IRes.ok());
  InterpretedReplayResult &IR = IRes.value();
  // 50 array writes + counter static + heap control block.
  EXPECT_GE(IR.Map.Cells.size(), 50u);
  EXPECT_TRUE(IR.Map.HasReturn);
}

TEST(Replay, VerifiedReplayAcceptsCorrectBinary) {
  StatefulApp App;
  AppEnv Env(App.File);
  Capture Cap = captureStep(App, Env, 50, 6);

  Replayer R(App.File, Env.Natives, Env.Config);
  InterpretedReplayResult IR = R.interpretedReplay(Cap).value();

  vm::CodeCache Android;
  hgraph::compileAllAndroid(App.File, {App.Step}, Android);
  EXPECT_TRUE(R.verifiedReplay(Cap, Android, IR.Map).ok());
}

TEST(Replay, VerifiedReplayRejectsWrongBinary) {
  StatefulApp App;
  AppEnv Env(App.File);
  Capture Cap = captureStep(App, Env, 50, 6);

  Replayer R(App.File, Env.Natives, Env.Config);
  InterpretedReplayResult IR = R.interpretedReplay(Cap).value();

  // Sabotage the compiled step: flip an add into a sub.
  auto Fn = hgraph::compileMethodAndroid(App.File, App.Step);
  ASSERT_NE(Fn, nullptr);
  bool Flipped = false;
  for (vm::MInsn &I : Fn->Code) {
    if (!Flipped && I.Op == vm::MOpcode::MAddI) {
      I.Op = vm::MOpcode::MSubI;
      Flipped = true;
    }
  }
  ASSERT_TRUE(Flipped);
  vm::CodeCache Bad;
  Bad.install(Fn);

  support::Result<ReplayResult> Bad2 = R.verifiedReplay(Cap, Bad, IR.Map);
  ASSERT_FALSE(Bad2.ok());
  // The typed error pinpoints the divergence class.
  EXPECT_EQ(Bad2.error().Code, support::ErrorCode::OutputMismatch);
}

TEST(Replay, TypeProfileFromInterpretedReplay) {
  DexBuilder B;
  testprogs::definePolyShapes(B);
  DexFile File = B.build();
  MethodId Poly = File.findMethod("polyLoop");

  os::Kernel Kernel;
  os::Process &Proc = Kernel.spawn();
  vm::NativeRegistry Natives = vm::NativeRegistry::standardLibrary();
  vm::RuntimeConfig Config;
  vm::Runtime::mapStandardLayout(Proc.space(), File, Config);
  vm::Runtime RT(Proc.space(), File, Natives, Config);

  CaptureManager CM(Kernel, Proc, RT);
  CM.armCapture(Poly);
  ASSERT_TRUE(RT.call(Poly, {Value::fromI64(30)}).ok());
  Capture Cap = CM.takeCapture().value();

  Replayer R(File, Natives, Config);
  InterpretedReplayResult IR = R.interpretedReplay(Cap).value();
  EXPECT_GE(IR.Profile.siteCount(), 1u);
  // Even/odd split: no class dominates at 90%.
  ClassId Dominant;
  const auto &Site = *IR.Profile.sites().begin();
  EXPECT_FALSE(IR.Profile.dominantType(Site.first.Method, Site.first.Site,
                                       0.9, Dominant));
}

// --- Hot region detection over a real profile ----------------------------------------

TEST(HotRegionDetection, FindsTheComputeKernel) {
  StatefulApp App;
  vm::RuntimeConfig Config;
  Config.AttributeCycles = true;
  AppEnv Env(App.File, Config);
  ASSERT_TRUE(Env.RT->call(App.Init, {Value::fromI64(500)}).ok());
  for (int I = 0; I != 10; ++I)
    ASSERT_TRUE(Env.RT->call(App.Step, {Value::fromI64(I)}).ok());

  auto RA = profiler::ReplayabilityAnalysis::analyze(App.File);
  auto Profile = profiler::MethodProfile::fromRuntime(*Env.RT);
  auto Region = profiler::detectHotRegion(App.File, Profile, RA);
  ASSERT_TRUE(Region.has_value());
  EXPECT_EQ(Region->Root, App.Step);
}

TEST(Replayability, IoAndNondetBlockRegions) {
  DexBuilder B;
  NativeId Print = B.addNative("print", 1, false, /*DoesIO=*/true);
  NativeId Rand =
      B.addNative("randomInt", 1, true, false, /*NonDet=*/true);
  NativeId Sin = B.addNative("sin", 1, true, false, false, "sin");

  MethodId Printer = B.declareNativeMethod(InvalidId, "printN", Print);
  MethodId Roller = B.declareNativeMethod(InvalidId, "rollN", Rand);
  (void)Roller;

  MethodId UsesIo = B.declareFunction(InvalidId, "usesIo", 1, false);
  {
    FunctionBuilder F = B.beginBody(UsesIo);
    F.invokeStatic(NoReg, Printer, {F.param(0)});
    F.retVoid();
    B.endBody(F);
  }
  MethodId CallsIo = B.declareFunction(InvalidId, "callsIo", 1, false);
  {
    FunctionBuilder F = B.beginBody(CallsIo);
    F.invokeStatic(NoReg, UsesIo, {F.param(0)});
    F.retVoid();
    B.endBody(F);
  }
  MethodId UsesRand = B.declareFunction(InvalidId, "usesRand", 1, true);
  {
    FunctionBuilder F = B.beginBody(UsesRand);
    RegIdx R = F.newReg();
    F.invokeNative(R, Rand, {F.param(0)});
    F.ret(R);
    B.endBody(F);
  }
  MethodId PureMath = B.declareFunction(InvalidId, "pureMath", 1, true);
  {
    FunctionBuilder F = B.beginBody(PureMath);
    RegIdx R = F.newReg();
    F.invokeNative(R, Sin, {F.param(0)});
    F.ret(R);
    B.endBody(F);
  }
  MethodId Thrower = B.declareFunction(InvalidId, "thrower", 0, false,
                                       MF_HasTryCatch);
  {
    FunctionBuilder F = B.beginBody(Thrower);
    F.retVoid();
    B.endBody(F);
  }
  DexFile File = B.build();

  auto RA = profiler::ReplayabilityAnalysis::analyze(File);
  EXPECT_FALSE(RA.isReplayable(UsesIo));
  EXPECT_FALSE(RA.isReplayable(CallsIo)); // transitive
  EXPECT_FALSE(RA.isReplayable(UsesRand));
  EXPECT_FALSE(RA.isReplayable(Thrower));
  EXPECT_TRUE(RA.isReplayable(PureMath)); // intrinsic-replaceable JNI
  EXPECT_FALSE(RA.isCompilable(Printer)); // native
}

TEST(Replayability, VirtualDispatchIsConservative) {
  DexBuilder B;
  NativeId Print = B.addNative("print", 1, false, true);
  ClassId Base = B.addClass("Base");
  ClassId Bad = B.addClass("Bad", Base);
  MethodId BaseF = B.declareVirtual(Base, "f", 1, false);
  MethodId BadF = B.declareVirtual(Bad, "f", 1, false);
  {
    FunctionBuilder F = B.beginBody(BaseF);
    F.retVoid();
    B.endBody(F);
  }
  {
    FunctionBuilder F = B.beginBody(BadF);
    RegIdx T = F.immI(1);
    F.invokeNative(NoReg, Print, {T});
    F.retVoid();
    B.endBody(F);
  }
  MethodId Caller = B.declareFunction(InvalidId, "vcaller", 0, false);
  {
    FunctionBuilder F = B.beginBody(Caller);
    RegIdx Obj = F.newReg();
    F.newInstance(Obj, Base); // dynamically always Base...
    F.invokeVirtual(NoReg, BaseF, {Obj});
    F.retVoid();
    B.endBody(F);
  }
  DexFile File = B.build();
  auto RA = profiler::ReplayabilityAnalysis::analyze(File);
  // ...but statically, Bad.f could be the target: conservative block.
  EXPECT_FALSE(RA.isReplayable(Caller));
}

TEST(Breakdown, SharesSumToOne) {
  StatefulApp App;
  vm::RuntimeConfig Config;
  Config.AttributeCycles = true;
  AppEnv Env(App.File, Config);
  ASSERT_TRUE(Env.RT->call(App.Init, {Value::fromI64(200)}).ok());
  for (int I = 0; I != 5; ++I)
    ASSERT_TRUE(Env.RT->call(App.Step, {Value::fromI64(I)}).ok());

  auto RA = profiler::ReplayabilityAnalysis::analyze(App.File);
  auto Profile = profiler::MethodProfile::fromRuntime(*Env.RT);
  auto Region = profiler::detectHotRegion(App.File, Profile, RA);
  ASSERT_TRUE(Region.has_value());
  auto BD =
      profiler::computeBreakdown(App.File, Profile, RA, &*Region);
  double Total =
      BD.Compiled + BD.Cold + BD.Jni + BD.Unreplayable + BD.Uncompilable;
  EXPECT_NEAR(Total, 1.0, 1e-9);
  EXPECT_GT(BD.Compiled, 0.5); // step dominates
}

// --- Fork-server replay sessions (DESIGN.md §16) -----------------------------

TEST(Session, SessionReplayBitIdenticalToFresh) {
  StatefulApp App;
  AppEnv Env(App.File);
  Capture Cap = captureStep(App, Env, 300, 9);

  vm::CodeCache Android;
  hgraph::compileAllAndroid(App.File, {App.Step}, Android);

  Replayer Fresh(App.File, Env.Natives, Env.Config);
  Replayer Session(App.File, Env.Natives, Env.Config);
  Session.setSessionMode(true);

  // Every replay in the session must be bit-identical to its fresh twin:
  // the delta reset restores the exact pre-replay memory, and each replay
  // gets a virgin Runtime (cache sim, predictor, cycle totals).
  for (int I = 0; I != 6; ++I) {
    ReplayResult A = Fresh.replay(Cap, ReplayCode::Compiled, &Android);
    ReplayResult B = Session.replay(Cap, ReplayCode::Compiled, &Android);
    ASSERT_TRUE(A.Result.ok());
    ASSERT_TRUE(B.Result.ok());
    EXPECT_EQ(A.Result.Ret.Raw, B.Result.Ret.Raw);
    EXPECT_EQ(A.Result.Cycles, B.Result.Cycles);
    EXPECT_EQ(A.Result.Insns, B.Result.Insns);
  }
  EXPECT_EQ(Session.sessionStats().SessionsCreated, 1u);
  EXPECT_EQ(Session.sessionStats().SessionReplays, 6u);
  EXPECT_EQ(Session.sessionStats().DeltaResets, 6u);
  EXPECT_GT(Session.sessionStats().PagesReverted, 0u);
  EXPECT_EQ(Session.sessionStats().FullRebuilds, 0u);
  EXPECT_EQ(Fresh.sessionStats().FreshReplays, 6u);
}

TEST(Session, VerificationMapIdenticalToFresh) {
  StatefulApp App;
  AppEnv Env(App.File);
  Capture Cap = captureStep(App, Env, 300, 4);

  Replayer Fresh(App.File, Env.Natives, Env.Config);
  Replayer Session(App.File, Env.Natives, Env.Config);
  Session.setSessionMode(true);

  auto A = Fresh.interpretedReplay(Cap);
  auto B = Session.interpretedReplay(Cap);
  ASSERT_TRUE(A.ok());
  ASSERT_TRUE(B.ok());
  EXPECT_EQ(A.value().Map.Cells, B.value().Map.Cells);
  EXPECT_EQ(A.value().Map.HasReturn, B.value().Map.HasReturn);
  EXPECT_EQ(A.value().Map.ReturnBits, B.value().Map.ReturnBits);
  // And a second session pass sees the identical map again: the reset
  // left no residue from the first interpreted replay's writes.
  auto C = Session.interpretedReplay(Cap);
  ASSERT_TRUE(C.ok());
  EXPECT_EQ(B.value().Map.Cells, C.value().Map.Cells);
}

TEST(Session, LoaderStatsAreCumulativePerSession) {
  StatefulApp App;
  AppEnv Env(App.File);
  Capture Cap = captureStep(App, Env, 300, 9);

  Replayer Session(App.File, Env.Natives, Env.Config);
  Session.setSessionMode(true);

  ReplayResult First = Session.replay(Cap, ReplayCode::Interpreter, nullptr);
  ReplayResult Later = Session.replay(Cap, ReplayCode::Interpreter, nullptr);
  // The session-reuse path must not zero the loader stats (the old bug):
  // every replay reports the cumulative per-session loader work.
  EXPECT_GT(First.Loader.PagesRestored, 0u);
  EXPECT_EQ(Later.Loader.PagesRestored, First.Loader.PagesRestored);
  EXPECT_EQ(Later.Loader.LoaderBase, First.Loader.LoaderBase);
}

TEST(Session, CaptureChangeForcesFullRebuild) {
  StatefulApp App;
  AppEnv Env(App.File);
  Capture Cap = captureStep(App, Env, 300, 9);

  Replayer Session(App.File, Env.Natives, Env.Config);
  Session.setSessionMode(true);

  auto Before = Session.interpretedReplay(Cap);
  ASSERT_TRUE(Before.ok());

  // Mutate the capture in place: different argument, same storage. The
  // fingerprint check must drop the stale session and rebuild — the
  // region's external writes (arr[i] += x) now land different values.
  Cap.Args[0] = Value::fromI64(10);
  auto After = Session.interpretedReplay(Cap);
  ASSERT_TRUE(After.ok());
  EXPECT_NE(After.value().Map.Cells, Before.value().Map.Cells);
  EXPECT_EQ(Session.sessionStats().FullRebuilds, 1u);
  EXPECT_EQ(Session.sessionStats().SessionsCreated, 2u);

  // The rebuilt session replays the mutated capture deterministically.
  auto Again = Session.interpretedReplay(Cap);
  ASSERT_TRUE(Again.ok());
  EXPECT_EQ(Again.value().Map.Cells, After.value().Map.Cells);
  EXPECT_EQ(Again.value().Replay.Result.Cycles,
            After.value().Replay.Result.Cycles);
}

TEST(Session, TurningSessionModeOffDropsSessions) {
  StatefulApp App;
  AppEnv Env(App.File);
  Capture Cap = captureStep(App, Env, 300, 9);

  Replayer R(App.File, Env.Natives, Env.Config);
  R.setSessionMode(true);
  ReplayResult A = R.replay(Cap, ReplayCode::Interpreter, nullptr);
  R.setSessionMode(false);
  ReplayResult B = R.replay(Cap, ReplayCode::Interpreter, nullptr);
  EXPECT_EQ(A.Result.Ret.Raw, B.Result.Ret.Raw);
  EXPECT_EQ(A.Result.Cycles, B.Result.Cycles);
  EXPECT_EQ(R.sessionStats().SessionReplays, 1u);
  EXPECT_EQ(R.sessionStats().FreshReplays, 1u);
}

TEST(Session, BitIdenticalAcrossWorkloads) {
  // The acceptance sweep: across kernel and interactive workloads, a
  // session-reset compiled replay is bit-identical (result, charged
  // cycles, instruction count) to a fresh-rebuild replay of the same
  // capture, replay after replay.
  const char *Names[] = {"FFT", "SOR", "Sieve", "Dhrystone",
                         "Reversi Android"};
  for (const char *Name : Names) {
    SCOPED_TRACE(Name);
    workloads::Application App = workloads::buildByName(Name);
    core::PipelineConfig Config;
    core::IterativeCompiler Pipeline(Config);
    auto P = Pipeline.profileApp(App);
    ASSERT_TRUE(P.Region.has_value());
    auto Captured = Pipeline.captureRegion(*P.Instance, *P.Region);
    ASSERT_TRUE(Captured.has_value());

    vm::NativeRegistry Natives = vm::NativeRegistry::standardLibrary();
    vm::CodeCache Android;
    hgraph::compileAllAndroid(*App.File, P.Region->Methods, Android);

    Replayer Fresh(*App.File, Natives, App.RtConfig, 3);
    Replayer Session(*App.File, Natives, App.RtConfig, 3);
    Session.setSessionMode(true);
    for (int I = 0; I != 3; ++I) {
      ReplayResult A =
          Fresh.replay(Captured->Cap, ReplayCode::Compiled, &Android);
      ReplayResult B =
          Session.replay(Captured->Cap, ReplayCode::Compiled, &Android);
      EXPECT_EQ(A.Result.Ret.Raw, B.Result.Ret.Raw);
      EXPECT_EQ(A.Result.Cycles, B.Result.Cycles);
      EXPECT_EQ(A.Result.Insns, B.Result.Insns);
      EXPECT_EQ(static_cast<int>(A.Result.Trap),
                static_cast<int>(B.Result.Trap));
    }
    EXPECT_EQ(Session.sessionStats().SessionsCreated, 1u);
    EXPECT_EQ(Session.sessionStats().SessionReplays, 3u);
  }
}
