//===- tests/ParallelSearchTests.cpp - Engine/ThreadPool/Result tests --------===//
//
// The parallel evaluation engine's contracts: ThreadPool scheduling and
// exception propagation, jobs-invariant determinism (bit-identical
// results at any worker count), two-level memoization accounting, and
// the Result error plumbing into EvalKind. These tests carry the
// "parallel" ctest label and are the ThreadSanitizer targets
// (-Dropt_tsan=ON).
//
//===----------------------------------------------------------------------===//

#include "core/IterativeCompiler.h"
#include "search/EvaluationEngine.h"
#include "support/Metrics.h"
#include "support/Result.h"
#include "support/Statistics.h"
#include "support/ThreadPool.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>

using namespace ropt;
using namespace ropt::search;

// --- ThreadPool --------------------------------------------------------------

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool Pool(4);
  EXPECT_EQ(Pool.size(), 4u);
  constexpr size_t N = 1000;
  std::vector<std::atomic<int>> Hits(N);
  Pool.parallelFor(N, [&](size_t I, size_t Slot) {
    EXPECT_LT(Slot, 4u);
    Hits[I].fetch_add(1);
  });
  for (size_t I = 0; I != N; ++I)
    EXPECT_EQ(Hits[I].load(), 1) << "index " << I;
}

TEST(ThreadPool, WorkerSlotsAreExclusive) {
  // Two tasks may never run on the same slot at the same time: per-slot
  // state needs no synchronization.
  ThreadPool Pool(3);
  std::vector<std::atomic<int>> InSlot(3);
  std::atomic<bool> Clashed{false};
  Pool.parallelFor(300, [&](size_t, size_t Slot) {
    if (InSlot[Slot].fetch_add(1) != 0)
      Clashed = true;
    InSlot[Slot].fetch_sub(1);
  });
  EXPECT_FALSE(Clashed.load());
}

TEST(ThreadPool, SubmitRunsTasksAndPropagatesExceptions) {
  ThreadPool Pool(2);
  std::future<void> Ok = Pool.submit([] {});
  Ok.get(); // does not throw
  std::future<void> Bad =
      Pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(Bad.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForRethrowsAndStaysUsable) {
  ThreadPool Pool(4);
  EXPECT_THROW(Pool.parallelFor(100,
                                [&](size_t I, size_t) {
                                  if (I == 37)
                                    throw std::runtime_error("item 37");
                                }),
               std::runtime_error);
  // The sweep stopped, the pool survived; later work still runs.
  std::atomic<int> Count{0};
  Pool.parallelFor(50, [&](size_t, size_t) { Count.fetch_add(1); });
  EXPECT_EQ(Count.load(), 50);
}

TEST(ThreadPool, CleanShutdownWithQueuedWork) {
  // Destroying a pool with tasks still queued must not hang or crash;
  // unstarted tasks are abandoned.
  for (int Round = 0; Round != 10; ++Round) {
    ThreadPool Pool(2);
    for (int I = 0; I != 64; ++I)
      Pool.submit([] {});
  } // dtor joins here
  SUCCEED();
}

TEST(ThreadPool, SingleThreadPoolRunsInline) {
  ThreadPool Pool(1);
  std::thread::id Caller = std::this_thread::get_id();
  std::vector<std::thread::id> Seen;
  Pool.parallelFor(5, [&](size_t, size_t Slot) {
    EXPECT_EQ(Slot, 0u);
    Seen.push_back(std::this_thread::get_id());
  });
  ASSERT_EQ(Seen.size(), 5u);
  for (std::thread::id Id : Seen)
    EXPECT_EQ(Id, Caller);
}

// --- A deterministic synthetic backend for engine tests ----------------------

namespace {

/// Compile = FNV over the canonical genome string; empty pipelines fail.
/// Binary identity deliberately collapses pass *parameters* so distinct
/// genomes can produce identical "binaries" (exercising the binary-level
/// cache). Measurement cost is a pure function of (hash, noise seed).
class SyntheticBackend : public EvalBackend {
public:
  SyntheticBackend(std::atomic<int> &Compiles, std::atomic<int> &Measures)
      : Compiles(Compiles), Measures(Measures) {}

  CompiledBinary compileGenome(const Genome &G) override {
    Compiles.fetch_add(1);
    CompiledBinary B;
    if (G.Passes.empty())
      return B; // compile error
    uint64_t H = 1469598103934665603ULL;
    for (const lir::PassInstance &P : G.Passes) {
      H ^= static_cast<uint64_t>(P.Id) + 1;
      H *= 1099511628211ULL;
    }
    B.Ok = true;
    B.BinaryHash = H;
    B.CodeSize = 10 * G.Passes.size();
    B.Artifact = std::make_shared<const uint64_t>(H);
    return B;
  }

  Evaluation measureBinary(const CompiledBinary &B, uint64_t NoiseSeed,
                           size_t SampleCount) override {
    Measures.fetch_add(1);
    Evaluation E;
    E.Kind = EvalKind::Ok;
    E.CodeSize = B.CodeSize;
    E.BinaryHash = B.BinaryHash;
    E.BaseCycles = 1000.0 + static_cast<double>(B.BinaryHash % 977);
    for (size_t I = 0; I != SampleCount; ++I)
      E.Samples.push_back(sampleAt(NoiseSeed, I, E.BaseCycles));
    E.SamplesSpent = static_cast<int>(SampleCount);
    E.MedianCycles = median(E.Samples);
    return E;
  }

  std::vector<double> extendSamples(const Evaluation &E, uint64_t NoiseSeed,
                                    size_t Begin, size_t Count) override {
    std::vector<double> Out;
    for (size_t I = 0; I != Count; ++I)
      Out.push_back(sampleAt(NoiseSeed, Begin + I, E.BaseCycles));
    return Out;
  }

private:
  /// Sample i is a pure function of (NoiseSeed, i): the engine may split
  /// the draw into racing blocks without changing any value.
  static double sampleAt(uint64_t NoiseSeed, size_t Index, double Base) {
    Rng Noise(NoiseSeed +
              0x9e3779b97f4a7c15ull * (static_cast<uint64_t>(Index) + 1));
    return Base * Noise.logNormal(0.0, 0.01);
  }

  std::atomic<int> &Compiles;
  std::atomic<int> &Measures;
};

std::vector<Genome> randomBatch(uint64_t Seed, size_t N) {
  Rng R(Seed);
  GenomeConfig GC;
  std::vector<Genome> Out;
  for (size_t I = 0; I != N; ++I)
    Out.push_back(randomGenome(R, GC));
  return Out;
}

bool sameEvaluation(const Evaluation &A, const Evaluation &B) {
  return A.Kind == B.Kind && A.Samples == B.Samples &&
         A.MedianCycles == B.MedianCycles && A.CodeSize == B.CodeSize &&
         A.BinaryHash == B.BinaryHash && A.SamplesSpent == B.SamplesSpent &&
         A.EscalationRounds == B.EscalationRounds &&
         A.EarlyStop == B.EarlyStop;
}

} // namespace

// --- EvaluationEngine: determinism across worker counts ----------------------

TEST(EvaluationEngine, BatchResultsAreIdenticalAtAnyJobCount) {
  std::vector<Genome> Batch = randomBatch(71, 64);
  std::vector<std::vector<Evaluation>> Runs;
  for (int Jobs : {1, 2, 8}) {
    std::atomic<int> Compiles{0}, Measures{0};
    EngineOptions Opts;
    Opts.Jobs = Jobs;
    EvaluationEngine Engine(
        [&]() {
          return std::make_unique<SyntheticBackend>(Compiles, Measures);
        },
        Opts, /*Seed=*/9);
    EXPECT_EQ(Engine.jobs(), static_cast<size_t>(Jobs));
    Runs.push_back(Engine.evaluateBatch(Batch));
  }
  for (size_t R = 1; R != Runs.size(); ++R) {
    ASSERT_EQ(Runs[R].size(), Runs[0].size());
    for (size_t I = 0; I != Runs[0].size(); ++I)
      EXPECT_TRUE(sameEvaluation(Runs[R][I], Runs[0][I]))
          << "jobs run " << R << ", genome " << I;
  }
}

TEST(EvaluationEngine, GaIsBitIdenticalAcrossJobCounts) {
  // The full search — generations, gen-0 retries, hill climb — produces
  // the same winner and the same evaluation trace at jobs=1 and jobs=8.
  auto RunGa = [](int Jobs) {
    std::atomic<int> Compiles{0}, Measures{0};
    EngineOptions Opts;
    Opts.Jobs = Jobs;
    EvaluationEngine Engine(
        [&]() {
          return std::make_unique<SyntheticBackend>(Compiles, Measures);
        },
        Opts, 5);
    GaConfig C;
    C.Generations = 5;
    C.PopulationSize = 16;
    GeneticSearch GA(C, 123, Engine);
    GaTrace Trace;
    std::optional<Scored> Best = GA.run(5000.0, 4800.0, &Trace);
    std::string Name = Best ? Best->G.name() : "none";
    return std::tuple{Name, Best ? Best->E.MedianCycles : 0.0,
                      Trace.Evaluations.size(), Trace.IdenticalBinaries};
  };
  auto Serial = RunGa(1);
  auto Wide = RunGa(8);
  EXPECT_EQ(Serial, Wide);
}

// --- EvaluationEngine: racing determinism ------------------------------------

TEST(EvaluationEngine, RacingBatchResultsAreIdenticalAtAnyJobCount) {
  // Racing splits the measurement into seed blocks and escalation blocks
  // drawn by whichever worker is free — but every sample is a pure
  // function of (seed, hash, index) and every racing decision is serial
  // in batch order, so the whole batch (sample vectors, early stops,
  // escalation counts) is bit-identical at any --jobs.
  std::vector<Genome> Batch = randomBatch(71, 64);
  std::vector<std::vector<Evaluation>> Runs;
  std::vector<EngineRacingStats> Stats;
  for (int Jobs : {1, 2, 8}) {
    std::atomic<int> Compiles{0}, Measures{0};
    EngineOptions Opts;
    Opts.Jobs = Jobs;
    Opts.Racing = true;
    EvaluationEngine Engine(
        [&]() {
          return std::make_unique<SyntheticBackend>(Compiles, Measures);
        },
        Opts, /*Seed=*/9);
    Runs.push_back(Engine.evaluateBatch(Batch));
    Stats.push_back(Engine.racingStats());
  }
  for (size_t R = 1; R != Runs.size(); ++R) {
    ASSERT_EQ(Runs[R].size(), Runs[0].size());
    for (size_t I = 0; I != Runs[0].size(); ++I)
      EXPECT_TRUE(sameEvaluation(Runs[R][I], Runs[0][I]))
          << "jobs run " << R << ", genome " << I;
    EXPECT_EQ(Stats[R].ReplaysSpent, Stats[0].ReplaysSpent);
    EXPECT_EQ(Stats[R].EarlyStops, Stats[0].EarlyStops);
    EXPECT_EQ(Stats[R].Escalations, Stats[0].Escalations);
  }
  // The synthetic hash landscape spreads base cycles widely, so the
  // batch-local race must have terminated real losers early.
  EXPECT_GT(Stats[0].EarlyStops, 0u);
  EXPECT_LT(Stats[0].ReplaysSpent, Stats[0].FixedBudget);
}

TEST(EvaluationEngine, RacingGaIsBitIdenticalAcrossJobCounts) {
  // The full search with racing on — gen-0 retries, incumbent
  // announcements, top-ups, hill climb — walks the same path at jobs=1
  // and jobs=8.
  auto RunGa = [](int Jobs) {
    std::atomic<int> Compiles{0}, Measures{0};
    EngineOptions Opts;
    Opts.Jobs = Jobs;
    Opts.Racing = true;
    EvaluationEngine Engine(
        [&]() {
          return std::make_unique<SyntheticBackend>(Compiles, Measures);
        },
        Opts, 5);
    GaConfig C;
    C.Generations = 5;
    C.PopulationSize = 16;
    GeneticSearch GA(C, 123, Engine);
    GaTrace Trace;
    std::optional<Scored> Best = GA.run(5000.0, 4800.0, &Trace);
    std::string Name = Best ? Best->G.name() : "none";
    const EngineRacingStats &S = Engine.racingStats();
    return std::tuple{Name,
                      Best ? Best->E.MedianCycles : 0.0,
                      Best ? Best->E.Samples : std::vector<double>{},
                      Trace.Evaluations.size(),
                      S.ReplaysSpent,
                      S.EarlyStops,
                      S.Escalations,
                      S.TopUps};
  };
  auto Serial = RunGa(1);
  auto Wide = RunGa(8);
  EXPECT_EQ(Serial, Wide);
  EXPECT_GT(std::get<5>(Serial), 0u); // the race stopped losers early
}

// --- EvaluationEngine: memoization -------------------------------------------

TEST(EvaluationEngine, DuplicateGenomesHitTheGenomeCache) {
  std::atomic<int> Compiles{0}, Measures{0};
  EngineOptions Opts;
  Opts.Jobs = 2;
  EvaluationEngine Engine(
      [&]() {
        return std::make_unique<SyntheticBackend>(Compiles, Measures);
      },
      Opts, 1);

  std::vector<Genome> Batch = randomBatch(3, 4);
  Batch.push_back(Batch[0]); // duplicate inside the batch
  Batch.push_back(Batch[1]);

  std::vector<Evaluation> R1 = Engine.evaluateBatch(Batch);
  ASSERT_EQ(R1.size(), 6u);
  // Duplicates got the identical evaluation, noise included.
  EXPECT_TRUE(sameEvaluation(R1[0], R1[4]));
  EXPECT_TRUE(sameEvaluation(R1[1], R1[5]));
  EXPECT_EQ(Compiles.load(), 4); // one compile per distinct genome
  EXPECT_EQ(Engine.cacheStats().GenomeHits, 2u);

  // A second batch of the same genomes is answered entirely from cache.
  int CompilesBefore = Compiles.load();
  std::vector<Evaluation> R2 = Engine.evaluateBatch(Batch);
  EXPECT_EQ(Compiles.load(), CompilesBefore);
  EXPECT_EQ(Engine.cacheStats().GenomeHits, 8u);
  for (size_t I = 0; I != R1.size(); ++I)
    EXPECT_TRUE(sameEvaluation(R1[I], R2[I]));

  // Every one of the 12 answers was tallied.
  EXPECT_EQ(Engine.counters().total(), 12);
}

TEST(EvaluationEngine, IdenticalBinariesHitTheBinaryCache) {
  std::atomic<int> Compiles{0}, Measures{0};
  EvaluationEngine Engine(
      [&]() {
        return std::make_unique<SyntheticBackend>(Compiles, Measures);
      },
      EngineOptions{}, 1);

  // Same passes, different parameters: distinct genomes (distinct
  // canonical names), but SyntheticBackend gives them one binary hash.
  Rng R(17);
  GenomeConfig GC;
  Genome A = randomGenome(R, GC);
  while (A.Passes.empty() ||
         !lir::passDescriptor(A.Passes[0].Id).HasIntParam)
    A = randomGenome(R, GC);
  Genome B = A;
  B.Passes[0].IntParam = A.Passes[0].IntParam > 1
                             ? A.Passes[0].IntParam - 1
                             : A.Passes[0].IntParam + 1;
  ASSERT_NE(A.name(), B.name());

  std::vector<Evaluation> Out = Engine.evaluateBatch({A, B});
  EXPECT_TRUE(sameEvaluation(Out[0], Out[1]));
  EXPECT_EQ(Compiles.load(), 2);  // both compiled...
  EXPECT_EQ(Measures.load(), 1);  // ...but only one was measured
  EXPECT_EQ(Engine.cacheStats().BinaryHits, 1u);
  EXPECT_EQ(Engine.cacheStats().Misses, 1u);
}

TEST(EvaluationEngine, MemoizeOffReplaysEveryBatch) {
  std::atomic<int> Compiles{0}, Measures{0};
  EngineOptions Opts;
  Opts.Memoize = false;
  EvaluationEngine Engine(
      [&]() {
        return std::make_unique<SyntheticBackend>(Compiles, Measures);
      },
      Opts, 1);
  std::vector<Genome> Batch = randomBatch(21, 8);
  Engine.evaluateBatch(Batch);
  Engine.evaluateBatch(Batch);
  EXPECT_EQ(Compiles.load(), 16); // recompiled every time
  EXPECT_EQ(Engine.cacheStats().GenomeHits, 0u);
}

#if ROPT_OBSERVABILITY
TEST(EvaluationEngine, CacheMetricsArePublished) {
  Metrics::instance().reset();
  std::atomic<int> Compiles{0}, Measures{0};
  EvaluationEngine Engine(
      [&]() {
        return std::make_unique<SyntheticBackend>(Compiles, Measures);
      },
      EngineOptions{}, 1);
  std::vector<Genome> Batch = randomBatch(5, 6);
  Engine.evaluateBatch(Batch);
  Engine.evaluateBatch(Batch); // all hits
  MetricsSnapshot S = Metrics::instance().snapshot();
  EXPECT_EQ(S.counter("search.cache_hits") + S.counter("search.cache_misses"),
            12u);
  EXPECT_EQ(S.counter("search.cache_hits"),
            Engine.cacheStats().hits());
  Metrics::instance().reset();
}
#endif

// --- Evaluation defaults and error mapping -----------------------------------

TEST(Evaluation, DefaultsToUnevaluatedNotCompileError) {
  // The old default (CompileError) made uninitialized evaluations look
  // like real compiler rejections.
  Evaluation E;
  EXPECT_EQ(E.Kind, EvalKind::Unevaluated);
  EXPECT_FALSE(E.ok());
  EXPECT_STREQ(evalKindName(E.Kind), "unevaluated");
}

TEST(ErrorMapping, EveryReplayErrorLandsOnAnEvalKind) {
  using support::ErrorCode;
  EXPECT_EQ(evalKindForError(ErrorCode::CompileFailed),
            EvalKind::CompileError);
  EXPECT_EQ(evalKindForError(ErrorCode::ReplayCrash),
            EvalKind::RuntimeCrash);
  EXPECT_EQ(evalKindForError(ErrorCode::ReplayTimeout),
            EvalKind::RuntimeTimeout);
  EXPECT_EQ(evalKindForError(ErrorCode::OutputMismatch),
            EvalKind::WrongOutput);
  EXPECT_EQ(evalKindForError(ErrorCode::CaptureNotReady),
            EvalKind::RuntimeCrash);
}

TEST(ResultType, CarriesValueOrTypedError) {
  support::Result<int> Ok = 42;
  ASSERT_TRUE(Ok.ok());
  EXPECT_EQ(Ok.value(), 42);
  EXPECT_EQ(Ok.valueOr(7), 42);

  support::Result<int> Bad =
      support::Error{support::ErrorCode::ReplayTimeout, "too slow"};
  ASSERT_FALSE(Bad.ok());
  EXPECT_EQ(Bad.error().Code, support::ErrorCode::ReplayTimeout);
  EXPECT_EQ(Bad.error().Message, "too slow");
  EXPECT_EQ(Bad.valueOr(7), 7);
  EXPECT_STREQ(support::errorCodeName(Bad.error().Code),
               "replay-timeout");
}

// --- The real pipeline through the engine ------------------------------------

namespace {

core::PipelineConfig fastPipelineConfig(int Jobs) {
  core::PipelineConfig C = core::PipelineConfig::paperDefaults();
  C.Seed = 1;
  C.Search.GA.Generations = 3;
  C.Search.GA.PopulationSize = 10;
  C.Search.GA.HillClimbRounds = 1;
  C.Search.MaxReplaysPerEvaluation = 5;
  C.Search.Jobs = Jobs;
  C.Capture.ProfileSessions = 4;
  C.Measure.FinalMeasurementRuns = 4;
  return C;
}

} // namespace

TEST(ParallelPipeline, OptimizeIsBitIdenticalAcrossJobCounts) {
  auto RunOnce = [](int Jobs) {
    core::IterativeCompiler Pipeline(fastPipelineConfig(Jobs));
    return Pipeline.optimize(workloads::buildByName("Sieve"));
  };
  core::OptimizationReport Serial = RunOnce(1);
  core::OptimizationReport Wide = RunOnce(4);
  ASSERT_TRUE(Serial.Succeeded) << Serial.FailureReason;
  ASSERT_TRUE(Wide.Succeeded) << Wide.FailureReason;

  // The search walked the same path...
  EXPECT_EQ(Serial.Best.G.name(), Wide.Best.G.name());
  EXPECT_EQ(Serial.RegionBest, Wide.RegionBest);
  EXPECT_EQ(Serial.Best.E.Samples, Wide.Best.E.Samples);
  ASSERT_EQ(Serial.Trace.Evaluations.size(), Wide.Trace.Evaluations.size());
  for (size_t I = 0; I != Serial.Trace.Evaluations.size(); ++I) {
    EXPECT_EQ(Serial.Trace.Evaluations[I].MedianCycles,
              Wide.Trace.Evaluations[I].MedianCycles);
    EXPECT_EQ(Serial.Trace.Evaluations[I].Valid,
              Wide.Trace.Evaluations[I].Valid);
  }
  // ...and the installed binary measures identically.
  EXPECT_EQ(Serial.WholeGa, Wide.WholeGa);

  // The GA revisits genomes/binaries, so the memoization layer must have
  // fired on a default seeded run.
  EXPECT_GT(Serial.CacheStats.hits(), 0u);
  EXPECT_GT(Wide.CacheStats.hits(), 0u);
}

TEST(ParallelPipeline, RacingOptimizeIsBitIdenticalAcrossJobCounts) {
  // Same acceptance bar with the racing budget: the real pipeline's
  // early stops, escalations and top-ups land identically at any --jobs.
  auto RunOnce = [](int Jobs) {
    core::PipelineConfig C = fastPipelineConfig(Jobs);
    C.Search.Racing = true;
    core::IterativeCompiler Pipeline(C);
    return Pipeline.optimize(workloads::buildByName("Sieve"));
  };
  core::OptimizationReport Serial = RunOnce(1);
  core::OptimizationReport Wide = RunOnce(4);
  ASSERT_TRUE(Serial.Succeeded) << Serial.FailureReason;
  ASSERT_TRUE(Wide.Succeeded) << Wide.FailureReason;

  EXPECT_EQ(Serial.Best.G.name(), Wide.Best.G.name());
  EXPECT_EQ(Serial.RegionBest, Wide.RegionBest);
  EXPECT_EQ(Serial.Best.E.Samples, Wide.Best.E.Samples);
  ASSERT_EQ(Serial.Trace.Evaluations.size(), Wide.Trace.Evaluations.size());
  for (size_t I = 0; I != Serial.Trace.Evaluations.size(); ++I)
    EXPECT_EQ(Serial.Trace.Evaluations[I].MedianCycles,
              Wide.Trace.Evaluations[I].MedianCycles);

  // Identical budget accounting, and a real saving over the fixed budget.
  EXPECT_EQ(Serial.RacingStats.ReplaysSpent, Wide.RacingStats.ReplaysSpent);
  EXPECT_EQ(Serial.RacingStats.EarlyStops, Wide.RacingStats.EarlyStops);
  EXPECT_EQ(Serial.RacingStats.Escalations, Wide.RacingStats.Escalations);
  EXPECT_EQ(Serial.RacingStats.TopUps, Wide.RacingStats.TopUps);
  EXPECT_GT(Serial.RacingStats.EarlyStops, 0u);
  EXPECT_LT(Serial.RacingStats.ReplaysSpent, Serial.RacingStats.FixedBudget);
}

TEST(ParallelPipeline, SessionBackendsAreSemanticallyInvisible) {
  // Fork-server sessions (DESIGN.md §16) are a pure performance
  // substrate: the same seeded GA must walk the identical evaluation
  // stream with sessions on (the default) and off, at any job count.
  // The E2E twin of this test byte-compares evaluations.jsonl over the
  // real binaries (RunReportE2E.cmake).
  auto RunOnce = [](int Jobs, bool Sessions) {
    core::PipelineConfig C = fastPipelineConfig(Jobs);
    C.Search.SessionBackends = Sessions;
    core::IterativeCompiler Pipeline(C);
    return Pipeline.optimize(workloads::buildByName("Sieve"));
  };
  core::OptimizationReport On = RunOnce(1, true);
  core::OptimizationReport Off = RunOnce(4, false);
  ASSERT_TRUE(On.Succeeded) << On.FailureReason;
  ASSERT_TRUE(Off.Succeeded) << Off.FailureReason;

  EXPECT_EQ(On.Best.G.name(), Off.Best.G.name());
  EXPECT_EQ(On.RegionBest, Off.RegionBest);
  EXPECT_EQ(On.Best.E.Samples, Off.Best.E.Samples);
  EXPECT_EQ(On.WholeGa, Off.WholeGa);
  ASSERT_EQ(On.Trace.Evaluations.size(), Off.Trace.Evaluations.size());
  for (size_t I = 0; I != On.Trace.Evaluations.size(); ++I) {
    EXPECT_EQ(On.Trace.Evaluations[I].MedianCycles,
              Off.Trace.Evaluations[I].MedianCycles);
    EXPECT_EQ(On.Trace.Evaluations[I].Valid, Off.Trace.Evaluations[I].Valid);
  }

  // The substrate itself must have been exercised on the session run —
  // and never on the fresh run.
  EXPECT_GT(On.ReplayBackend.SessionReplays, 0u);
  EXPECT_GT(On.ReplayBackend.DeltaResets, 0u);
  EXPECT_GT(On.ReplayBackend.SessionsCreated, 0u);
  EXPECT_EQ(Off.ReplayBackend.SessionReplays, 0u);
  EXPECT_GT(Off.ReplayBackend.FreshReplays, 0u);
}
