//===- tests/SupportTests.cpp - support/ unit tests ------------------------===//

#include "support/Format.h"
#include "support/Random.h"
#include "support/Serialize.h"
#include "support/Statistics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

using namespace ropt;

// --- Format -----------------------------------------------------------------

TEST(Format, Basic) {
  EXPECT_EQ(format("x=%d y=%s", 42, "abc"), "x=42 y=abc");
  EXPECT_EQ(format("%.2f", 1.005), "1.00");
  EXPECT_EQ(format("empty"), "empty");
}

TEST(Format, LongStrings) {
  std::string Long(5000, 'a');
  EXPECT_EQ(format("%s!", Long.c_str()), Long + "!");
}

TEST(Format, Join) {
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"a"}, ","), "a");
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(Format, Pad) {
  EXPECT_EQ(padLeft("ab", 5), "   ab");
  EXPECT_EQ(padRight("ab", 5), "ab   ");
  EXPECT_EQ(padLeft("abcdef", 3), "abcdef");
}

// --- Random -----------------------------------------------------------------

TEST(Random, Deterministic) {
  Rng A(123), B(123);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Random, DifferentSeedsDiffer) {
  Rng A(1), B(2);
  int Same = 0;
  for (int I = 0; I != 64; ++I)
    Same += (A.next() == B.next());
  EXPECT_LT(Same, 2);
}

TEST(Random, BelowInRange) {
  Rng R(7);
  for (int I = 0; I != 1000; ++I)
    EXPECT_LT(R.below(17), 17u);
}

TEST(Random, BelowCoversAllValues) {
  Rng R(7);
  std::set<uint64_t> Seen;
  for (int I = 0; I != 500; ++I)
    Seen.insert(R.below(5));
  EXPECT_EQ(Seen.size(), 5u);
}

TEST(Random, RangeInclusive) {
  Rng R(9);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I != 2000; ++I) {
    int64_t V = R.range(-3, 3);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 3);
    SawLo |= (V == -3);
    SawHi |= (V == 3);
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(Random, UniformBounds) {
  Rng R(11);
  for (int I = 0; I != 1000; ++I) {
    double U = R.uniform();
    EXPECT_GE(U, 0.0);
    EXPECT_LT(U, 1.0);
  }
}

TEST(Random, UniformMeanRoughlyHalf) {
  Rng R(13);
  double Sum = 0;
  const int N = 20000;
  for (int I = 0; I != N; ++I)
    Sum += R.uniform();
  EXPECT_NEAR(Sum / N, 0.5, 0.02);
}

TEST(Random, GaussianMoments) {
  Rng R(17);
  const int N = 40000;
  std::vector<double> Xs;
  Xs.reserve(N);
  for (int I = 0; I != N; ++I)
    Xs.push_back(R.gaussian());
  EXPECT_NEAR(mean(Xs), 0.0, 0.03);
  EXPECT_NEAR(sampleStdDev(Xs), 1.0, 0.03);
}

TEST(Random, LogNormalPositive) {
  Rng R(19);
  for (int I = 0; I != 100; ++I)
    EXPECT_GT(R.logNormal(0.0, 0.5), 0.0);
}

TEST(Random, WeightedIndexRespectsWeights) {
  Rng R(23);
  std::vector<double> W = {0.0, 1.0, 3.0};
  int Counts[3] = {0, 0, 0};
  for (int I = 0; I != 8000; ++I)
    ++Counts[R.weightedIndex(W)];
  EXPECT_EQ(Counts[0], 0);
  EXPECT_GT(Counts[2], Counts[1] * 2);
  EXPECT_LT(Counts[2], Counts[1] * 4);
}

TEST(Random, SplitStreamsIndependent) {
  Rng A(31);
  Rng B = A.split();
  // The split stream should not mirror the parent stream.
  int Same = 0;
  for (int I = 0; I != 64; ++I)
    Same += (A.next() == B.next());
  EXPECT_LT(Same, 2);
}

TEST(Random, ShufflePreservesElements) {
  Rng R(37);
  std::vector<int> V = {1, 2, 3, 4, 5, 6, 7};
  auto Orig = V;
  R.shuffle(V);
  std::multiset<int> A(V.begin(), V.end()), B(Orig.begin(), Orig.end());
  EXPECT_EQ(A, B);
}

TEST(Random, PickReturnsMember) {
  Rng R(41);
  std::vector<int> V = {10, 20, 30};
  for (int I = 0; I != 50; ++I) {
    int X = R.pick(V);
    EXPECT_TRUE(X == 10 || X == 20 || X == 30);
  }
}

// --- Statistics -------------------------------------------------------------

TEST(Statistics, MeanAndVariance) {
  EXPECT_DOUBLE_EQ(mean({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_NEAR(sampleVariance({2, 4, 4, 4, 5, 5, 7, 9}), 4.571428, 1e-5);
  EXPECT_DOUBLE_EQ(sampleVariance({5}), 0.0);
}

TEST(Statistics, Median) {
  EXPECT_DOUBLE_EQ(median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(median({4, 1, 3, 2}), 2.5);
  EXPECT_DOUBLE_EQ(median({7}), 7.0);
  EXPECT_DOUBLE_EQ(median({}), 0.0);
}

TEST(Statistics, MedianAbsDeviation) {
  // median = 3, deviations {2,1,0,1,2} -> MAD 1.
  EXPECT_DOUBLE_EQ(medianAbsDeviation({1, 2, 3, 4, 5}), 1.0);
  EXPECT_DOUBLE_EQ(medianAbsDeviation({5, 5, 5}), 0.0);
}

TEST(Statistics, OutlierRemovalDropsSpike) {
  std::vector<double> V = {10, 11, 10, 9, 10, 11, 9, 10, 500};
  auto Kept = removeOutliersMAD(V);
  EXPECT_EQ(Kept.size(), V.size() - 1);
  for (double X : Kept)
    EXPECT_LT(X, 100);
}

TEST(Statistics, OutlierRemovalKeepsCleanData) {
  std::vector<double> V = {10, 11, 10, 9, 10, 11, 9, 10};
  EXPECT_EQ(removeOutliersMAD(V).size(), V.size());
}

TEST(Statistics, OutlierRemovalZeroMADKeepsAll) {
  std::vector<double> V = {5, 5, 5, 5, 900};
  // MAD is 0: everything is kept (documented degenerate behaviour).
  EXPECT_EQ(removeOutliersMAD(V).size(), V.size());
}

TEST(Statistics, IncompleteBetaKnownValues) {
  // I_x(1, 1) = x.
  EXPECT_NEAR(regularizedIncompleteBeta(1, 1, 0.3), 0.3, 1e-9);
  // I_x(2, 2) = x^2 (3 - 2x).
  EXPECT_NEAR(regularizedIncompleteBeta(2, 2, 0.5), 0.5, 1e-9);
  EXPECT_NEAR(regularizedIncompleteBeta(2, 2, 0.25), 0.15625, 1e-9);
  EXPECT_DOUBLE_EQ(regularizedIncompleteBeta(3, 4, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(regularizedIncompleteBeta(3, 4, 1.0), 1.0);
}

TEST(Statistics, TTestIdenticalSamples) {
  std::vector<double> A = {1, 2, 3, 4, 5};
  TTestResult R = welchTTest(A, A);
  EXPECT_NEAR(R.PValue, 1.0, 1e-9);
}

TEST(Statistics, TTestClearlyDifferent) {
  std::vector<double> A = {1.0, 1.1, 0.9, 1.05, 0.95};
  std::vector<double> B = {9.0, 9.1, 8.9, 9.05, 8.95};
  TTestResult R = welchTTest(A, B);
  EXPECT_LT(R.PValue, 1e-6);
}

TEST(Statistics, TTestOverlappingNotSignificant) {
  std::vector<double> A = {1.0, 2.0, 3.0, 4.0};
  std::vector<double> B = {1.5, 2.5, 2.0, 3.5};
  TTestResult R = welchTTest(A, B);
  EXPECT_GT(R.PValue, 0.2);
}

TEST(Statistics, TTestDegenerateSamples) {
  EXPECT_DOUBLE_EQ(welchTTest({1.0}, {2.0, 3.0}).PValue, 1.0);
  EXPECT_DOUBLE_EQ(welchTTest({}, {}).PValue, 1.0);
  // Constant, different samples: trivially significant.
  EXPECT_DOUBLE_EQ(welchTTest({2, 2, 2}, {3, 3, 3}).PValue, 0.0);
}

TEST(Statistics, SignificantlyLess) {
  std::vector<double> Fast = {1.0, 1.02, 0.98, 1.01, 0.99};
  std::vector<double> Slow = {2.0, 2.02, 1.98, 2.01, 1.99};
  EXPECT_TRUE(significantlyLess(Fast, Slow));
  EXPECT_FALSE(significantlyLess(Slow, Fast));
  EXPECT_FALSE(significantlyLess(Fast, Fast));
}

TEST(Statistics, CompareSamplesThreeWay) {
  std::vector<double> Fast = {1.0, 1.02, 0.98, 1.01, 0.99};
  std::vector<double> Slow = {2.0, 2.02, 1.98, 2.01, 1.99};
  EXPECT_EQ(compareSamples(Fast, Slow), SampleOrder::Less);
  EXPECT_EQ(compareSamples(Slow, Fast), SampleOrder::Greater);
  EXPECT_EQ(compareSamples(Fast, Fast), SampleOrder::Indistinguishable);
  // Degenerate inputs are never "different".
  EXPECT_EQ(compareSamples({}, Slow), SampleOrder::Indistinguishable);
  EXPECT_EQ(compareSamples(Fast, {}), SampleOrder::Indistinguishable);
  EXPECT_STREQ(sampleOrderName(SampleOrder::Less), "less");
  EXPECT_STREQ(sampleOrderName(SampleOrder::Greater), "greater");
}

TEST(Statistics, CompareSamplesMatchesSignificantlyLessPair) {
  // compareSamples must be exactly the (significantlyLess(A,B),
  // significantlyLess(B,A)) pair — the double rank-test it replaced.
  Rng R(311);
  for (int Trial = 0; Trial != 200; ++Trial) {
    std::vector<double> A, B;
    double Gap = (Trial % 5) * 0.02; // 0 .. 0.08 relative mean gap
    for (int I = 0; I != 6; ++I) {
      A.push_back(R.gaussian(1.0, 0.03));
      B.push_back(R.gaussian(1.0 + Gap, 0.03));
    }
    SampleOrder O = compareSamples(A, B);
    EXPECT_EQ(O == SampleOrder::Less, significantlyLess(A, B));
    EXPECT_EQ(O == SampleOrder::Greater, significantlyLess(B, A));
  }
}

TEST(Statistics, RacingAlphaSpendingSchedule) {
  const double Alpha = 0.05;
  const int Rounds = 4;
  // Spending is 0 before the race, exactly Alpha at the end, and
  // strictly increasing in between.
  EXPECT_DOUBLE_EQ(racingSpentAlpha(Alpha, 0, Rounds), 0.0);
  EXPECT_DOUBLE_EQ(racingSpentAlpha(Alpha, Rounds, Rounds), Alpha);
  double Sum = 0.0, PrevIncrement = 0.0;
  for (int R = 1; R <= Rounds; ++R) {
    double Increment = racingRoundAlpha(Alpha, R, Rounds);
    EXPECT_GT(Increment, 0.0) << "round " << R;
    // Early low-power rounds spend less than later high-power ones.
    EXPECT_GT(Increment, PrevIncrement) << "round " << R;
    PrevIncrement = Increment;
    Sum += Increment;
    EXPECT_NEAR(racingSpentAlpha(Alpha, R, Rounds), Sum, 1e-12);
  }
  EXPECT_NEAR(Sum, Alpha, 1e-12);
  // One-round race: all of alpha in the single test.
  EXPECT_DOUBLE_EQ(racingRoundAlpha(Alpha, 1, 1), Alpha);
}

TEST(Statistics, RacingFalsePositiveRateUnderEqualDistributions) {
  // Simulate the race's sequential test on two *equal* distributions:
  // the fraction of races that ever declare "Greater" (an early stop)
  // must stay near the family-wise alpha.
  const double Alpha = 0.05;
  const int Rounds = 3, Block = 3, Trials = 2000;
  Rng R(631);
  int FalseStops = 0;
  for (int T = 0; T != Trials; ++T) {
    std::vector<double> Ref, Cand;
    for (int I = 0; I != Block * (Rounds + 1); ++I)
      Ref.push_back(R.gaussian(100.0, 1.0));
    for (int I = 0; I != Block; ++I)
      Cand.push_back(R.gaussian(100.0, 1.0));
    for (int Round = 1; Round <= Rounds; ++Round) {
      if (compareSamples(Cand, Ref,
                         racingRoundAlpha(Alpha, Round, Rounds)) ==
          SampleOrder::Greater) {
        ++FalseStops;
        break;
      }
      for (int I = 0; I != Block; ++I)
        Cand.push_back(R.gaussian(100.0, 1.0));
    }
  }
  double Rate = static_cast<double>(FalseStops) / Trials;
  // Bonferroni guarantees <= Alpha in expectation; allow sampling slack.
  EXPECT_LT(Rate, Alpha + 0.02);
}

TEST(Statistics, RacingPowerUnderKnownGap) {
  // A candidate 10 sigma slower than the reference must be early-stopped
  // almost always — that is the whole point of racing.
  const double Alpha = 0.05;
  const int Rounds = 3, Block = 3, Trials = 500;
  Rng R(733);
  int Stopped = 0;
  for (int T = 0; T != Trials; ++T) {
    std::vector<double> Ref, Cand;
    for (int I = 0; I != Block * (Rounds + 1); ++I)
      Ref.push_back(R.gaussian(100.0, 1.0));
    for (int I = 0; I != Block; ++I)
      Cand.push_back(R.gaussian(110.0, 1.0));
    for (int Round = 1; Round <= Rounds; ++Round) {
      if (compareSamples(Cand, Ref,
                         racingRoundAlpha(Alpha, Round, Rounds)) ==
          SampleOrder::Greater) {
        ++Stopped;
        break;
      }
      for (int I = 0; I != Block; ++I)
        Cand.push_back(R.gaussian(110.0, 1.0));
    }
  }
  EXPECT_GT(static_cast<double>(Stopped) / Trials, 0.95);
}

TEST(Statistics, BootstrapMeanCIContainsTruth) {
  Rng R(101);
  std::vector<double> Xs;
  for (int I = 0; I != 200; ++I)
    Xs.push_back(R.gaussian(10.0, 1.0));
  BootstrapInterval CI = bootstrapMeanCI(Xs, 0.95, R);
  EXPECT_LT(CI.Low, 10.0);
  EXPECT_GT(CI.High, 10.0);
  EXPECT_LT(CI.High - CI.Low, 1.0);
}

TEST(Statistics, BootstrapCIWidthShrinksWithN) {
  Rng R(103);
  std::vector<double> Small, Large;
  for (int I = 0; I != 10; ++I)
    Small.push_back(R.gaussian(5.0, 2.0));
  for (int I = 0; I != 1000; ++I)
    Large.push_back(R.gaussian(5.0, 2.0));
  auto CIS = bootstrapMeanCI(Small, 0.95, R);
  auto CIL = bootstrapMeanCI(Large, 0.95, R);
  EXPECT_GT(CIS.High - CIS.Low, CIL.High - CIL.Low);
}

TEST(Statistics, BootstrapRatioCI) {
  Rng R(107);
  std::vector<double> A, B;
  for (int I = 0; I != 300; ++I) {
    A.push_back(R.gaussian(20.0, 1.0));
    B.push_back(R.gaussian(10.0, 1.0));
  }
  BootstrapInterval CI = bootstrapRatioCI(A, B, 0.95, R);
  EXPECT_LT(CI.Low, 2.0);
  EXPECT_GT(CI.High, 2.0);
}

// --- Serialize ----------------------------------------------------------------

TEST(Serialize, RoundTripScalars) {
  ByteWriter W;
  W.writeU8(0xab);
  W.writeU32(0xdeadbeef);
  W.writeU64(0x0123456789abcdefULL);
  W.writeI64(-42);
  W.writeF64(3.14159);
  W.writeString("hello");

  ByteReader R(W.bytes());
  EXPECT_EQ(R.readU8(), 0xab);
  EXPECT_EQ(R.readU32(), 0xdeadbeefu);
  EXPECT_EQ(R.readU64(), 0x0123456789abcdefULL);
  EXPECT_EQ(R.readI64(), -42);
  EXPECT_DOUBLE_EQ(R.readF64(), 3.14159);
  EXPECT_EQ(R.readString(), "hello");
  EXPECT_TRUE(R.atEnd());
}

TEST(Serialize, RoundTripBytes) {
  std::vector<uint8_t> Payload(1000);
  for (size_t I = 0; I != Payload.size(); ++I)
    Payload[I] = static_cast<uint8_t>(I * 7);
  ByteWriter W;
  W.writeBytes(Payload.data(), Payload.size());
  ByteReader R(W.bytes());
  std::vector<uint8_t> Out(Payload.size());
  R.readBytes(Out.data(), Out.size());
  EXPECT_EQ(Out, Payload);
}

TEST(Serialize, EmptyString) {
  ByteWriter W;
  W.writeString("");
  ByteReader R(W.bytes());
  EXPECT_EQ(R.readString(), "");
}

TEST(Serialize, Remaining) {
  ByteWriter W;
  W.writeU32(1);
  W.writeU32(2);
  ByteReader R(W.bytes());
  EXPECT_EQ(R.remaining(), 8u);
  R.readU32();
  EXPECT_EQ(R.remaining(), 4u);
}

TEST(Serialize, NegativeDoubleAndSpecials) {
  ByteWriter W;
  W.writeF64(-0.0);
  W.writeF64(1e308);
  ByteReader R(W.bytes());
  double NegZero = R.readF64();
  EXPECT_EQ(NegZero, 0.0);
  EXPECT_TRUE(std::signbit(NegZero));
  EXPECT_DOUBLE_EQ(R.readF64(), 1e308);
}
