//===- tests/WorkloadTests.cpp - Suite-wide integration tests ---------------===//
//
// Parameterized over all 21 Table-1 applications: every app boots, runs
// sessions deterministically, has a detectable replayable hot region, and
// executes identically under the interpreter, the Android compiler, and
// the LLVM backend presets.
//
//===----------------------------------------------------------------------===//

#include "hgraph/AndroidCompiler.h"
#include "lir/Backend.h"
#include "profiler/HotRegion.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace ropt;
using namespace ropt::workloads;
using vm::Value;

namespace {

std::vector<std::string> allAppNames() {
  std::vector<std::string> Names;
  for (const Application &App : buildSuite())
    Names.push_back(App.Name);
  return Names;
}

/// Boots the app and runs init.
struct BootedApp {
  Application App;
  os::AddressSpace Space;
  vm::NativeRegistry Natives;
  std::unique_ptr<vm::Runtime> RT;

  explicit BootedApp(const std::string &Name,
                     bool AttributeCycles = false)
      : App(buildByName(Name)),
        Natives(vm::NativeRegistry::standardLibrary()) {
    App.RtConfig.AttributeCycles = AttributeCycles;
    vm::Runtime::mapStandardLayout(Space, *App.File, App.RtConfig);
    RT = std::make_unique<vm::Runtime>(Space, *App.File, Natives,
                                       App.RtConfig);
    vm::CallResult R =
        RT->call(App.InitEntry, App.argsFor(App.InitParam));
    EXPECT_TRUE(R.ok()) << Name << " init trapped: "
                        << vm::trapKindName(R.Trap);
  }

  vm::CallResult session(int64_t Param) {
    RT->inputQueue().push_back(Param & 3);
    return RT->call(App.SessionEntry, App.argsFor(Param));
  }
};

class WorkloadSuite : public ::testing::TestWithParam<std::string> {};

} // namespace

INSTANTIATE_TEST_SUITE_P(
    AllApps, WorkloadSuite, ::testing::ValuesIn(allAppNames()),
    [](const ::testing::TestParamInfo<std::string> &Info) {
      std::string Name = Info.param;
      for (char &C : Name)
        if (!std::isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });

TEST_P(WorkloadSuite, SessionsRunAndEvolve) {
  BootedApp App(GetParam());
  vm::CallResult First = App.session(App.App.DefaultParam);
  ASSERT_TRUE(First.ok()) << vm::trapKindName(First.Trap);
  EXPECT_GT(First.Cycles, 1000u);

  // Sessions keep succeeding; most apps evolve their persistent state.
  for (int I = 0; I != 4; ++I) {
    vm::CallResult R = App.session(App.App.DefaultParam + I);
    EXPECT_TRUE(R.ok()) << vm::trapKindName(R.Trap);
  }
}

TEST_P(WorkloadSuite, DeterministicAcrossBoots) {
  auto RunOnce = [&] {
    BootedApp App(GetParam());
    std::vector<uint64_t> Digest;
    for (int I = 0; I != 3; ++I) {
      vm::CallResult R = App.session(App.App.DefaultParam + I);
      EXPECT_TRUE(R.ok());
      Digest.push_back(R.Ret.Raw);
      Digest.push_back(R.Cycles);
    }
    return Digest;
  };
  EXPECT_EQ(RunOnce(), RunOnce());
}

TEST_P(WorkloadSuite, HotRegionDetectableAndSignificant) {
  BootedApp App(GetParam(), /*AttributeCycles=*/true);
  for (int I = 0; I != 6; ++I)
    ASSERT_TRUE(App.session(App.App.DefaultParam + I).ok());

  auto RA = profiler::ReplayabilityAnalysis::analyze(*App.App.File);
  auto Profile = profiler::MethodProfile::fromRuntime(*App.RT);
  auto Region = profiler::detectHotRegion(*App.App.File, Profile, RA);
  ASSERT_TRUE(Region.has_value()) << GetParam();

  // The region must be the app's kernel, not the io-laden session.
  EXPECT_NE(Region->Root, App.App.SessionEntry);
  EXPECT_TRUE(RA.isReplayable(Region->Root));

  // And it should cover a meaningful share of the runtime.
  auto BD = profiler::computeBreakdown(*App.App.File, Profile, RA,
                                       &*Region);
  EXPECT_GT(BD.Compiled, 0.10) << GetParam();
}

TEST_P(WorkloadSuite, AndroidCompiledParityAndSpeedup) {
  // Interpreted digest.
  std::vector<uint64_t> InterpDigest;
  uint64_t InterpCycles = 0;
  {
    BootedApp App(GetParam());
    App.RT->setMode(vm::ExecMode::InterpretOnly);
    for (int I = 0; I != 3; ++I) {
      vm::CallResult R = App.session(App.App.DefaultParam + I);
      ASSERT_TRUE(R.ok());
      InterpDigest.push_back(R.Ret.Raw);
      InterpCycles += R.Cycles;
    }
  }
  // Android-compiled digest.
  std::vector<uint64_t> CompDigest;
  uint64_t CompCycles = 0;
  {
    BootedApp App(GetParam());
    std::vector<dex::MethodId> All;
    for (const auto &M : App.App.File->methods())
      if (!M.IsNative)
        All.push_back(M.Id);
    hgraph::compileAllAndroid(*App.App.File, All, App.RT->codeCache());
    for (int I = 0; I != 3; ++I) {
      vm::CallResult R = App.session(App.App.DefaultParam + I);
      ASSERT_TRUE(R.ok()) << vm::trapKindName(R.Trap);
      CompDigest.push_back(R.Ret.Raw);
      CompCycles += R.Cycles;
    }
  }
  EXPECT_EQ(InterpDigest, CompDigest) << GetParam();
  EXPECT_LT(CompCycles, InterpCycles) << GetParam();
}

namespace {

/// Runs three sessions with either the Android compiler or a given LLVM
/// pipeline installed and returns the per-session result digest.
std::vector<uint64_t>
sessionDigest(const std::string &Name,
              const std::vector<lir::PassInstance> *Pipeline) {
  BootedApp App(Name);
  std::vector<dex::MethodId> All;
  for (const auto &M : App.App.File->methods())
    if (!M.IsNative)
      All.push_back(M.Id);
  if (Pipeline) {
    lir::CompileOptions Options;
    Options.Pipeline = *Pipeline;
    lir::CompileStatus Status = lir::compileAllLlvm(
        *App.App.File, All, Options, App.RT->codeCache());
    EXPECT_EQ(Status, lir::CompileStatus::Ok) << Name;
  } else {
    hgraph::compileAllAndroid(*App.App.File, All, App.RT->codeCache());
  }
  std::vector<uint64_t> Digest;
  for (int I = 0; I != 3; ++I) {
    vm::CallResult R = App.session(App.App.DefaultParam + I);
    EXPECT_TRUE(R.ok()) << vm::trapKindName(R.Trap);
    Digest.push_back(R.Ret.Raw);
  }
  return Digest;
}

} // namespace

TEST_P(WorkloadSuite, LlvmO2ParityWithAndroid) {
  std::vector<lir::PassInstance> O2 = lir::o2Pipeline();
  EXPECT_EQ(sessionDigest(GetParam(), nullptr),
            sessionDigest(GetParam(), &O2))
      << GetParam();
}

// -O3's default flags are all sound (the unsound behaviours live behind
// aggressive flags the presets never set), so the most optimized preset
// must still agree with the safe baseline on every app.
TEST_P(WorkloadSuite, LlvmO3ParityWithAndroid) {
  std::vector<lir::PassInstance> O3 = lir::o3Pipeline();
  EXPECT_EQ(sessionDigest(GetParam(), nullptr),
            sessionDigest(GetParam(), &O3))
      << GetParam();
}

// -O0 (no mid-level passes at all, straight translation + codegen) is the
// other end of the preset ladder and must also be semantics-preserving.
TEST_P(WorkloadSuite, LlvmO0ParityWithAndroid) {
  std::vector<lir::PassInstance> O0 = lir::o0Pipeline();
  EXPECT_EQ(sessionDigest(GetParam(), nullptr),
            sessionDigest(GetParam(), &O0))
      << GetParam();
}

// --- Suite-level shape checks ----------------------------------------------------

TEST(Suite, HasAllTwentyOneApps) {
  auto Suite = buildSuite();
  ASSERT_EQ(Suite.size(), 21u);
  int Scimark = 0, Art = 0, Interactive = 0;
  for (const Application &App : Suite) {
    switch (App.Kind) {
    case Suite::Scimark: ++Scimark; break;
    case Suite::Art: ++Art; break;
    case Suite::Interactive: ++Interactive; break;
    }
  }
  EXPECT_EQ(Scimark, 5);
  EXPECT_EQ(Art, 7);
  EXPECT_EQ(Interactive, 9);
}

TEST(Suite, InteractiveAppsHaveJniShare) {
  // Figure 8: JNI is a large share for interactive apps, small for
  // benchmarks.
  double BenchJni = 0, InteractiveJni = 0;
  int BenchN = 0, InteractiveN = 0;
  for (const std::string &Name :
       {std::string("FFT"), std::string("DroidFish"),
        std::string("Reversi Android")}) {
    BootedApp App(Name, /*AttributeCycles=*/true);
    for (int I = 0; I != 4; ++I)
      ASSERT_TRUE(App.session(App.App.DefaultParam + I).ok());
    auto RA = profiler::ReplayabilityAnalysis::analyze(*App.App.File);
    auto Profile = profiler::MethodProfile::fromRuntime(*App.RT);
    auto Region = profiler::detectHotRegion(*App.App.File, Profile, RA);
    auto BD = profiler::computeBreakdown(*App.App.File, Profile, RA,
                                         Region ? &*Region : nullptr);
    if (App.App.Kind == Suite::Interactive) {
      InteractiveJni += BD.Jni;
      ++InteractiveN;
    } else {
      BenchJni += BD.Jni;
      ++BenchN;
    }
  }
  EXPECT_LT(BenchJni / BenchN, 0.15);
  EXPECT_GT(InteractiveJni / InteractiveN, 0.15);
}

// --- Per-pass soundness sweep ---------------------------------------------------
//
// Every registered pass, run *alone* at its default parameter in
// non-aggressive mode, must preserve semantics on real applications.
// (The aggressive modes are the documented Figure-1 miscompile model and
// are excluded by construction here.)

namespace {

struct PassOnApp {
  lir::PassId Id;
  const char *App;
};

std::vector<PassOnApp> allPassAppPairs() {
  std::vector<PassOnApp> Out;
  for (const lir::PassDescriptor &D : lir::passRegistry())
    for (const char *App : {"FFT", "Dhrystone", "Reversi Android"})
      Out.push_back({D.Id, App});
  return Out;
}

class PassSoundness : public ::testing::TestWithParam<PassOnApp> {};

} // namespace

INSTANTIATE_TEST_SUITE_P(
    AllPasses, PassSoundness, ::testing::ValuesIn(allPassAppPairs()),
    [](const ::testing::TestParamInfo<PassOnApp> &Info) {
      std::string Name = lir::passDescriptor(Info.param.Id).Name;
      Name += "_on_";
      Name += Info.param.App;
      for (char &C : Name)
        if (!std::isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });

TEST_P(PassSoundness, SinglePassDefaultModePreservesSemantics) {
  const lir::PassDescriptor &D = lir::passDescriptor(GetParam().Id);
  lir::PassInstance P;
  P.Id = D.Id;
  P.IntParam = D.DefaultInt;
  P.Aggressive = false;
  std::vector<lir::PassInstance> Pipe{P};
  EXPECT_EQ(sessionDigest(GetParam().App, nullptr),
            sessionDigest(GetParam().App, &Pipe))
      << D.Name << " on " << GetParam().App;
}

// --- Pass-pair phase-ordering soundness ------------------------------------------
//
// Phase ordering is the paper's core search dimension: any *order* of
// sound passes may change performance but never semantics. Sweep all
// ordered pairs on the FFT kernel.

namespace {

std::vector<std::pair<lir::PassId, lir::PassId>> allPassPairs() {
  std::vector<std::pair<lir::PassId, lir::PassId>> Out;
  for (const lir::PassDescriptor &A : lir::passRegistry())
    for (const lir::PassDescriptor &B : lir::passRegistry())
      Out.push_back({A.Id, B.Id});
  return Out;
}

class PassPairSoundness
    : public ::testing::TestWithParam<std::pair<lir::PassId, lir::PassId>> {
};

} // namespace

INSTANTIATE_TEST_SUITE_P(
    AllOrderedPairs, PassPairSoundness,
    ::testing::ValuesIn(allPassPairs()),
    [](const ::testing::TestParamInfo<std::pair<lir::PassId, lir::PassId>>
           &Info) {
      std::string Name = lir::passDescriptor(Info.param.first).Name;
      Name += "_then_";
      Name += lir::passDescriptor(Info.param.second).Name;
      for (char &C : Name)
        if (!std::isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });

TEST_P(PassPairSoundness, OrderedPairPreservesSemanticsOnFFT) {
  auto Mk = [](lir::PassId Id) {
    const lir::PassDescriptor &D = lir::passDescriptor(Id);
    lir::PassInstance P;
    P.Id = Id;
    P.IntParam = D.DefaultInt;
    return P;
  };
  std::vector<lir::PassInstance> Pipe{Mk(GetParam().first),
                                      Mk(GetParam().second)};
  EXPECT_EQ(sessionDigest("FFT", nullptr), sessionDigest("FFT", &Pipe));
}
