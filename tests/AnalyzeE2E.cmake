# End-to-end check of the observability loop over the real binaries
# (invoked by ctest as the `analyze_e2e` test):
#
#   1. abl_critical_path --fast --seed 1 --report A            (jobs 1)
#   2. abl_critical_path --fast --seed 1 --jobs 8 --report B
#   3. abl_critical_path --fast --seed 1 --report C            (rerun)
#   4. analysis.jsonl A == B == C     -> region analysis is jobs- and
#                                        rerun-invariant
#   5. ropt-report validate A         -> schema-3 artifacts check out
#   6. ropt-report analyze A          -> renders labels + budget shares
#   7. analyze A == analyze B == analyze C (modulo the run-dir path in
#      the header) -> the rendered view is byte-identical too
#   8. ropt-report analyze B --baseline A -> zero label changes
#
# Inputs: -DABL_CRITICAL_PATH=..., -DROPT_REPORT=..., -DWORK_DIR=...

foreach(Var ABL_CRITICAL_PATH ROPT_REPORT WORK_DIR)
  if(NOT DEFINED ${Var})
    message(FATAL_ERROR "missing -D${Var}=...")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")
set(RunA "${WORK_DIR}/runA")
set(RunB "${WORK_DIR}/runB")
set(RunC "${WORK_DIR}/runC")

function(run_ablation Dir)
  execute_process(
    COMMAND ${ABL_CRITICAL_PATH} --fast --seed 1 ${ARGN} --report ${Dir}
    RESULT_VARIABLE Rc OUTPUT_QUIET)
  if(NOT Rc EQUAL 0)
    message(FATAL_ERROR "abl_critical_path --report ${Dir} failed (${Rc})")
  endif()
endfunction()

run_ablation(${RunA})
run_ablation(${RunB} --jobs 8)
run_ablation(${RunC})

foreach(Artifact manifest.json evaluations.jsonl analysis.jsonl)
  if(NOT EXISTS "${RunA}/${Artifact}")
    message(FATAL_ERROR "missing artifact ${RunA}/${Artifact}")
  endif()
endforeach()

# The decision stream is a pure function of the deterministic profile:
# byte-identical at any --jobs value and across reruns.
foreach(Other ${RunB} ${RunC})
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            "${RunA}/analysis.jsonl" "${Other}/analysis.jsonl"
    RESULT_VARIABLE Rc)
  if(NOT Rc EQUAL 0)
    message(FATAL_ERROR "analysis.jsonl differs: ${RunA} vs ${Other}")
  endif()
endforeach()

execute_process(
  COMMAND ${ROPT_REPORT} validate ${RunA}
  RESULT_VARIABLE Rc OUTPUT_VARIABLE Out ERROR_VARIABLE Err)
if(NOT Rc EQUAL 0)
  message(FATAL_ERROR "ropt-report validate failed (${Rc}):\n${Out}${Err}")
endif()

# The rendered analysis: labels, critical chain, budget shares.
function(run_analyze Dir OutVar)
  execute_process(
    COMMAND ${ROPT_REPORT} analyze ${Dir}
    RESULT_VARIABLE Rc OUTPUT_VARIABLE Out ERROR_VARIABLE Err)
  if(NOT Rc EQUAL 0)
    message(FATAL_ERROR "ropt-report analyze ${Dir} failed (${Rc}):\n"
                        "${Out}${Err}")
  endif()
  # Normalize the run-directory path the header prints; everything else
  # must be byte-identical.
  string(REPLACE "${Dir}" "RUN_DIR" Out "${Out}")
  set(${OutVar} "${Out}" PARENT_SCOPE)
endfunction()

run_analyze(${RunA} AnalyzeA)
run_analyze(${RunB} AnalyzeB)
run_analyze(${RunC} AnalyzeC)

if(NOT AnalyzeA MATCHES "budget")
  message(FATAL_ERROR "analyze output lacks budget shares:\n${AnalyzeA}")
endif()
if(NOT AnalyzeA MATCHES "critical chain")
  message(FATAL_ERROR "analyze output lacks the critical chain:\n"
                      "${AnalyzeA}")
endif()
if(NOT AnalyzeA MATCHES "(balanced|branchy|memory_bound|native_heavy|compute)")
  message(FATAL_ERROR "analyze output lacks bottleneck labels:\n"
                      "${AnalyzeA}")
endif()

if(NOT AnalyzeA STREQUAL AnalyzeB)
  message(FATAL_ERROR "analyze output differs between --jobs 1 and "
                      "--jobs 8:\n--- A ---\n${AnalyzeA}\n--- B ---\n"
                      "${AnalyzeB}")
endif()
if(NOT AnalyzeA STREQUAL AnalyzeC)
  message(FATAL_ERROR "analyze output differs across reruns:\n"
                      "--- A ---\n${AnalyzeA}\n--- C ---\n${AnalyzeC}")
endif()

execute_process(
  COMMAND ${ROPT_REPORT} analyze ${RunB} --baseline ${RunA}
  RESULT_VARIABLE Rc OUTPUT_VARIABLE Out ERROR_VARIABLE Err)
if(NOT Rc EQUAL 0)
  message(FATAL_ERROR "ropt-report analyze --baseline failed (${Rc}):\n"
                      "${Out}${Err}")
endif()
if(NOT Out MATCHES "label changes vs [^\n]*: 0")
  message(FATAL_ERROR "expected zero label changes vs baseline:\n${Out}")
endif()

message(STATUS "analyze_e2e: region analysis jobs- and rerun-invariant, "
               "analyze/validate clean, zero label drift")
