//===- tests/DexTests.cpp - dex/ unit tests ---------------------------------===//

#include "dex/Builder.h"
#include "dex/Disassembler.h"
#include "dex/Verifier.h"

#include <gtest/gtest.h>

using namespace ropt;
using namespace ropt::dex;

namespace {

/// Builds a minimal one-function file: add(a, b) = a + b.
DexFile buildAddFile() {
  DexBuilder B;
  MethodId Add = B.declareFunction(InvalidId, "add", 2, true);
  FunctionBuilder F = B.beginBody(Add);
  RegIdx Sum = F.newReg();
  F.addI(Sum, F.param(0), F.param(1));
  F.ret(Sum);
  B.endBody(F);
  return B.build();
}

} // namespace

TEST(Bytecode, OpcodeNamesUnique) {
  std::set<std::string> Names;
  for (unsigned Op = 0; Op != unsigned(Opcode::OpcodeCount); ++Op)
    Names.insert(opcodeName(static_cast<Opcode>(Op)));
  EXPECT_EQ(Names.size(), size_t(Opcode::OpcodeCount));
}

TEST(Bytecode, Predicates) {
  EXPECT_TRUE(isBranch(Opcode::Goto));
  EXPECT_TRUE(isBranch(Opcode::IfLt));
  EXPECT_TRUE(isConditionalBranch(Opcode::IfEqz));
  EXPECT_FALSE(isConditionalBranch(Opcode::Goto));
  EXPECT_FALSE(isBranch(Opcode::AddI));
  EXPECT_TRUE(isReturn(Opcode::Ret));
  EXPECT_TRUE(isReturn(Opcode::RetVoid));
  EXPECT_FALSE(isReturn(Opcode::Goto));
  EXPECT_TRUE(isInvoke(Opcode::InvokeVirtual));
  EXPECT_FALSE(isInvoke(Opcode::Ret));
}

TEST(Builder, SimpleFunction) {
  DexFile File = buildAddFile();
  MethodId Add = File.findMethod("add");
  ASSERT_NE(Add, InvalidId);
  const Method &M = File.method(Add);
  EXPECT_EQ(M.ParamCount, 2);
  EXPECT_EQ(M.RegCount, 3);
  EXPECT_TRUE(M.ReturnsValue);
  EXPECT_EQ(M.Code.size(), 2u);
  EXPECT_EQ(M.Code[0].Op, Opcode::AddI);
  EXPECT_EQ(M.Code[1].Op, Opcode::Ret);
}

TEST(Builder, LabelsAndBranches) {
  DexBuilder B;
  // abs(x): if (x >= 0) return x; return -x;
  MethodId Abs = B.declareFunction(InvalidId, "abs", 1, true);
  FunctionBuilder F = B.beginBody(Abs);
  auto Pos = F.newLabel();
  F.ifGez(F.param(0), Pos);
  RegIdx Neg = F.newReg();
  F.negI(Neg, F.param(0));
  F.ret(Neg);
  F.bind(Pos);
  F.ret(F.param(0));
  B.endBody(F);
  DexFile File = B.build();

  const Method &M = File.method(File.findMethod("abs"));
  ASSERT_EQ(M.Code.size(), 4u);
  EXPECT_EQ(M.Code[0].Op, Opcode::IfGez);
  EXPECT_EQ(M.Code[0].Target, 3);
}

TEST(Builder, BackwardBranch) {
  DexBuilder B;
  // loop(n): i = 0; while (i < n) ++i; return i;
  MethodId Loop = B.declareFunction(InvalidId, "loop", 1, true);
  FunctionBuilder F = B.beginBody(Loop);
  RegIdx I = F.newReg();
  RegIdx One = F.immI(1);
  F.constI(I, 0);
  auto Head = F.newLabel();
  auto Exit = F.newLabel();
  F.bind(Head);
  F.ifGe(I, F.param(0), Exit);
  F.addI(I, I, One);
  F.jump(Head);
  F.bind(Exit);
  F.ret(I);
  B.endBody(F);
  DexFile File = B.build();

  const Method &M = File.method(File.findMethod("loop"));
  // The goto must point back at the loop head.
  bool FoundBackEdge = false;
  for (size_t Pc = 0; Pc != M.Code.size(); ++Pc)
    if (M.Code[Pc].Op == Opcode::Goto &&
        M.Code[Pc].Target < static_cast<int32_t>(Pc))
      FoundBackEdge = true;
  EXPECT_TRUE(FoundBackEdge);
}

TEST(Builder, FieldsAndLayout) {
  DexBuilder B;
  ClassId BaseCls = B.addClass("Base");
  ClassId DerivedCls = B.addClass("Derived", BaseCls);
  FieldId BaseF = B.addField(BaseCls, "x", Type::I64);
  FieldId DerF1 = B.addField(DerivedCls, "y", Type::F64);
  FieldId DerF2 = B.addField(DerivedCls, "z", Type::Ref);
  MethodId Main = B.declareFunction(InvalidId, "main", 0, false);
  FunctionBuilder F = B.beginBody(Main);
  F.retVoid();
  B.endBody(F);
  DexFile File = B.build();

  EXPECT_EQ(File.field(BaseF).SlotIndex, 0u);
  EXPECT_EQ(File.classAt(BaseCls).InstanceSlots, 1u);
  // Derived inherits Base's slot then adds two of its own.
  EXPECT_EQ(File.field(DerF1).SlotIndex, 1u);
  EXPECT_EQ(File.field(DerF2).SlotIndex, 2u);
  EXPECT_EQ(File.classAt(DerivedCls).InstanceSlots, 3u);
}

TEST(Builder, DerivedFieldSlotsFollowBase) {
  DexBuilder B;
  ClassId BaseCls = B.addClass("Base");
  ClassId DerivedCls = B.addClass("Derived", BaseCls);
  B.addField(BaseCls, "a", Type::I64);
  B.addField(BaseCls, "b", Type::I64);
  FieldId C = B.addField(DerivedCls, "c", Type::I64);
  MethodId Main = B.declareFunction(InvalidId, "main", 0, false);
  FunctionBuilder F = B.beginBody(Main);
  F.retVoid();
  B.endBody(F);
  DexFile File = B.build();
  EXPECT_EQ(File.field(C).SlotIndex, 2u);
  EXPECT_EQ(File.classAt(DerivedCls).InstanceSlots, 3u);
}

TEST(Builder, VTableOverride) {
  DexBuilder B;
  ClassId Animal = B.addClass("Animal");
  ClassId Dog = B.addClass("Dog", Animal);
  ClassId Cat = B.addClass("Cat", Animal);
  MethodId Speak = B.declareVirtual(Animal, "speak", 1, true);
  MethodId DogSpeak = B.declareVirtual(Dog, "speak", 1, true);
  MethodId CatSpeak = B.declareVirtual(Cat, "speak", 1, true);
  for (MethodId Id : {Speak, DogSpeak, CatSpeak}) {
    FunctionBuilder F = B.beginBody(Id);
    RegIdx R = F.immI(static_cast<int64_t>(Id));
    F.ret(R);
    B.endBody(F);
  }
  DexFile File = B.build();

  EXPECT_EQ(File.resolveVirtual(Animal, Speak), Speak);
  EXPECT_EQ(File.resolveVirtual(Dog, Speak), DogSpeak);
  EXPECT_EQ(File.resolveVirtual(Cat, Speak), CatSpeak);
  EXPECT_TRUE(File.isSubclassOf(Dog, Animal));
  EXPECT_FALSE(File.isSubclassOf(Animal, Dog));
  EXPECT_FALSE(File.isSubclassOf(Dog, Cat));
}

TEST(Builder, InheritedVirtualNotOverridden) {
  DexBuilder B;
  ClassId BaseCls = B.addClass("Base");
  ClassId DerivedCls = B.addClass("Derived", BaseCls);
  MethodId M = B.declareVirtual(BaseCls, "m", 1, false);
  FunctionBuilder F = B.beginBody(M);
  F.retVoid();
  B.endBody(F);
  DexFile File = B.build();
  EXPECT_EQ(File.resolveVirtual(DerivedCls, M), M);
}

TEST(Builder, NativeMethodInheritsFlags) {
  DexBuilder B;
  NativeId Print = B.addNative("print", 1, false, /*DoesIO=*/true);
  NativeId Time =
      B.addNative("time", 0, true, /*DoesIO=*/false, /*NonDet=*/true);
  MethodId PM = B.declareNativeMethod(InvalidId, "print", Print);
  MethodId TM = B.declareNativeMethod(InvalidId, "time", Time);
  MethodId Main = B.declareFunction(InvalidId, "main", 0, false);
  FunctionBuilder F = B.beginBody(Main);
  F.retVoid();
  B.endBody(F);
  DexFile File = B.build();

  EXPECT_TRUE(File.method(PM).doesIO());
  EXPECT_FALSE(File.method(PM).isNonDeterministic());
  EXPECT_TRUE(File.method(TM).isNonDeterministic());
  EXPECT_TRUE(File.method(PM).IsNative);
}

TEST(Builder, MethodFlags) {
  DexBuilder B;
  MethodId M = B.declareFunction(InvalidId, "m", 0, false,
                                 MF_HasTryCatch);
  B.addMethodFlags(M, MF_Uncompilable);
  FunctionBuilder F = B.beginBody(M);
  F.retVoid();
  B.endBody(F);
  DexFile File = B.build();
  EXPECT_TRUE(File.method(M).hasTryCatch());
  EXPECT_TRUE(File.method(M).isUncompilable());
  EXPECT_FALSE(File.method(M).doesIO());
}

TEST(Builder, FindByName) {
  DexFile File = buildAddFile();
  EXPECT_NE(File.findMethod("add"), InvalidId);
  EXPECT_EQ(File.findMethod("missing"), InvalidId);
  EXPECT_EQ(File.findClass("missing"), InvalidId);
}

// --- Verifier ------------------------------------------------------------------

namespace {

/// Builds a file without running build()'s assert so invalid bodies can be
/// inspected by the verifier directly.
std::vector<std::string> verifyRaw(Method M, uint16_t NumStatics = 0) {
  DexBuilder B;
  // Provide a stub file context: one static field slot if needed.
  ClassId C = B.addClass("C");
  for (uint16_t I = 0; I != NumStatics; ++I)
    B.addStaticField(C, "s" + std::to_string(I), Type::I64);
  MethodId Stub = B.declareFunction(InvalidId, "stub", 0, false);
  FunctionBuilder F = B.beginBody(Stub);
  F.retVoid();
  B.endBody(F);
  DexFile File = B.build();
  std::vector<std::string> Problems;
  verifyMethod(File, M, Problems);
  return Problems;
}

Method makeMethod(std::vector<Insn> Code, uint16_t Regs,
                  bool Returns = false) {
  Method M;
  M.Name = "test";
  M.ParamCount = 0;
  M.RegCount = Regs;
  M.ReturnsValue = Returns;
  M.Code = std::move(Code);
  return M;
}

Insn mk(Opcode Op, RegIdx A = NoReg, RegIdx B = NoReg, RegIdx C = NoReg) {
  Insn I;
  I.Op = Op;
  I.A = A;
  I.B = B;
  I.C = C;
  return I;
}

} // namespace

TEST(Verifier, AcceptsValid) {
  std::vector<Insn> Code = {mk(Opcode::ConstI, 0), mk(Opcode::RetVoid)};
  EXPECT_TRUE(verifyRaw(makeMethod(Code, 1)).empty());
}

TEST(Verifier, RejectsRegisterOutOfRange) {
  std::vector<Insn> Code = {mk(Opcode::AddI, 5, 0, 0), mk(Opcode::RetVoid)};
  EXPECT_FALSE(verifyRaw(makeMethod(Code, 2)).empty());
}

TEST(Verifier, RejectsBadBranchTarget) {
  Insn G = mk(Opcode::Goto);
  G.Target = 99;
  std::vector<Insn> Code = {G, mk(Opcode::RetVoid)};
  EXPECT_FALSE(verifyRaw(makeMethod(Code, 1)).empty());
}

TEST(Verifier, RejectsFallOffEnd) {
  std::vector<Insn> Code = {mk(Opcode::ConstI, 0)};
  EXPECT_FALSE(verifyRaw(makeMethod(Code, 1)).empty());
}

TEST(Verifier, RejectsEmptyBody) {
  EXPECT_FALSE(verifyRaw(makeMethod({}, 1)).empty());
}

TEST(Verifier, RejectsRetInVoidMethod) {
  std::vector<Insn> Code = {mk(Opcode::Ret, NoReg, 0)};
  EXPECT_FALSE(verifyRaw(makeMethod(Code, 1, /*Returns=*/false)).empty());
}

TEST(Verifier, RejectsRetVoidInValueMethod) {
  std::vector<Insn> Code = {mk(Opcode::RetVoid)};
  EXPECT_FALSE(verifyRaw(makeMethod(Code, 1, /*Returns=*/true)).empty());
}

TEST(Verifier, RejectsUnknownStaticField) {
  Insn I = mk(Opcode::GetStaticI, 0);
  I.Idx = 42;
  std::vector<Insn> Code = {I, mk(Opcode::RetVoid)};
  EXPECT_FALSE(verifyRaw(makeMethod(Code, 1), /*NumStatics=*/1).empty());
}

TEST(Verifier, AcceptsKnownStaticField) {
  Insn I = mk(Opcode::GetStaticI, 0);
  I.Idx = 0;
  std::vector<Insn> Code = {I, mk(Opcode::RetVoid)};
  EXPECT_TRUE(verifyRaw(makeMethod(Code, 1), /*NumStatics=*/1).empty());
}

TEST(Verifier, WholeFileVerifies) {
  DexFile File = buildAddFile();
  EXPECT_TRUE(verify(File).empty());
}

// --- Disassembler ----------------------------------------------------------------

TEST(Disassembler, RendersListing) {
  DexFile File = buildAddFile();
  const Method &M = File.method(File.findMethod("add"));
  std::string Text = disassemble(File, M);
  EXPECT_NE(Text.find("add-i"), std::string::npos);
  EXPECT_NE(Text.find("ret"), std::string::npos);
  EXPECT_NE(Text.find("r2"), std::string::npos);
}

TEST(Disassembler, RendersCallsWithNames) {
  DexBuilder B;
  NativeId Sin = B.addNative("sin", 1, true);
  MethodId Callee = B.declareFunction(InvalidId, "callee", 0, true);
  MethodId Caller = B.declareFunction(InvalidId, "caller", 0, true);
  {
    FunctionBuilder F = B.beginBody(Callee);
    RegIdx R = F.immI(1);
    F.ret(R);
    B.endBody(F);
  }
  {
    FunctionBuilder F = B.beginBody(Caller);
    RegIdx R = F.newReg();
    F.invokeStatic(R, Callee, {});
    RegIdx D = F.newReg();
    F.constF(D, 0.5);
    F.invokeNative(D, Sin, {D});
    F.ret(R);
    B.endBody(F);
  }
  DexFile File = B.build();
  std::string Text = disassemble(File, File.method(Caller));
  EXPECT_NE(Text.find("callee"), std::string::npos);
  EXPECT_NE(Text.find("native:sin"), std::string::npos);
}
