//===- tests/RobustnessTests.cpp - Allocator, verifier, and fuzz tests --------===//
//
// Deeper invariants: the linear-scan register allocator never merges
// conflicting live ranges; the SSA verifier rejects each class of broken
// IR; randomly generated pass pipelines (including the unsound aggressive
// modes) always classify cleanly — compile-error, crash, timeout, wrong
// output, or verified-correct — and never corrupt the process hosting the
// search.
//
//===----------------------------------------------------------------------===//

#include "core/IterativeCompiler.h"

#include "hgraph/Build.h"
#include "lir/Codegen.h"
#include "lir/FromHGraph.h"
#include "lir/Passes.h"
#include "core/OnlineEvaluator.h"
#include "lir/Analysis.h"
#include "lir/Backend.h"
#include "search/Genome.h"
#include "tests/TestPrograms.h"
#include "vm/MachineUtil.h"
#include "workloads/BuilderUtil.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace ropt;
using vm::MInsn;
using vm::MNoReg;
using vm::MOpcode;
using vm::MRegIdx;

// --- Linear-scan register allocation ------------------------------------------

namespace {

MInsn mi(MOpcode Op, MRegIdx A = MNoReg, MRegIdx B = MNoReg,
         MRegIdx C = MNoReg) {
  MInsn I;
  I.Op = Op;
  I.A = A;
  I.B = B;
  I.C = C;
  return I;
}

} // namespace

TEST(LinearScan, ReusesDeadRegisters) {
  // r2 = 1; r3 = r2+r2; r4 = 5; r5 = r4+r4; ret r5 — r2/r3 die before
  // r4/r5 live: two physical registers suffice beyond the params.
  vm::MachineFunction Fn;
  Fn.ParamCount = 0;
  Fn.NumRegs = 6;
  Fn.Code.push_back(mi(MOpcode::MMovImmI, 2));
  Fn.Code.push_back(mi(MOpcode::MAddI, 3, 2, 2));
  Fn.Code.push_back(mi(MOpcode::MMovImmI, 4));
  Fn.Code.push_back(mi(MOpcode::MAddI, 5, 4, 4));
  Fn.Code.push_back(mi(MOpcode::MRet, MNoReg, 5));
  uint16_t Regs = vm::allocateRegistersLinearScan(Fn);
  EXPECT_LE(Regs, 2);
}

TEST(LinearScan, LoopCarriedValuesKeepTheirRegisters) {
  // A two-register loop: i and acc are live across the back edge; a
  // loop-local temporary must not steal either register.
  vm::MachineFunction Fn;
  Fn.ParamCount = 1; // n in r0
  Fn.NumRegs = 5;
  // r1 = 0 (acc); r2 = 0 (i)
  Fn.Code.push_back(mi(MOpcode::MMovImmI, 1));
  Fn.Code.push_back(mi(MOpcode::MMovImmI, 2));
  // loop: r3 = i*i (temp); acc += r3; i += 1; if i < n goto loop
  MInsn T = mi(MOpcode::MMulI, 3, 2, 2);
  Fn.Code.push_back(T);
  Fn.Code.push_back(mi(MOpcode::MAddI, 1, 1, 3));
  MInsn One = mi(MOpcode::MMovImmI, 4);
  One.ImmI = 1;
  Fn.Code.push_back(One);
  Fn.Code.push_back(mi(MOpcode::MAddI, 2, 2, 4));
  MInsn Br = mi(MOpcode::MIfLt, MNoReg, 2, 0);
  Br.Target = 2;
  Fn.Code.push_back(Br);
  Fn.Code.push_back(mi(MOpcode::MRet, MNoReg, 1));

  vm::allocateRegistersLinearScan(Fn);
  // Execute-equivalent check: run through the executor via a runtime is
  // heavy here; instead assert no two of {acc, i, temp} share a register
  // while simultaneously live: acc (def at 0) and i (def at 1) and n
  // (param) must be pairwise distinct.
  MRegIdx Acc = Fn.Code[0].A, I = Fn.Code[1].A, N = Fn.Code[6].C;
  EXPECT_NE(Acc, I);
  EXPECT_NE(Acc, N);
  EXPECT_NE(I, N);
}

TEST(LinearScan, ParametersKeepTheirSlots) {
  vm::MachineFunction Fn;
  Fn.ParamCount = 3;
  Fn.NumRegs = 5;
  Fn.Code.push_back(mi(MOpcode::MAddI, 3, 0, 1));
  Fn.Code.push_back(mi(MOpcode::MAddI, 4, 3, 2));
  Fn.Code.push_back(mi(MOpcode::MRet, MNoReg, 4));
  vm::allocateRegistersLinearScan(Fn);
  // Uses of params still reference registers 0..2.
  EXPECT_EQ(Fn.Code[0].B, 0);
  EXPECT_EQ(Fn.Code[0].C, 1);
  EXPECT_EQ(Fn.Code[1].C, 2);
}

TEST(LinearScan, SemanticsPreservedOnRealKernels) {
  // Differential: allocate vs no-allocation on a matrix kernel.
  dex::DexBuilder B;
  testprogs::defineMatrixSum(B);
  dex::DexFile File = B.build();
  dex::MethodId Id = File.findMethod("matSum");

  lir::LFunction Fn =
      lir::fromHGraph(hgraph::buildHGraph(File, Id));
  auto None = lir::emitMachine(Fn, hgraph::RegAllocKind::None);
  auto Scan = lir::emitMachine(Fn, hgraph::RegAllocKind::LinearScan);
  EXPECT_LT(Scan->NumRegs, None->NumRegs);

  for (const std::shared_ptr<vm::MachineFunction> &FnPtr :
       std::vector{None, Scan}) {
    testprogs::Harness H(File);
    H.RT->codeCache().install(FnPtr);
    vm::CallResult R = H.run("matSum", {vm::Value::fromI64(10)});
    ASSERT_TRUE(R.ok());
    EXPECT_EQ(R.Ret.asI64(), 900); // sum_{i,j<10} (i+j) = n^2(n-1)
  }
}

// --- SSA verifier negatives ---------------------------------------------------

namespace {

lir::LFunction tinyValid() {
  lir::LFunction Fn;
  Fn.ParamCount = 1;
  Fn.NumValues = 1;
  Fn.Blocks.resize(1);
  lir::LInsn I;
  I.Op = MOpcode::MMovImmI;
  I.Dst = Fn.newValue();
  Fn.Blocks[0].Insns.push_back(I);
  Fn.Blocks[0].Term.K = lir::LTerminator::Kind::Ret;
  Fn.Blocks[0].Term.A = 1;
  return Fn;
}

} // namespace

TEST(LirVerifier, AcceptsValid) {
  lir::LFunction Fn = tinyValid();
  std::string E;
  EXPECT_TRUE(Fn.verify(E)) << E;
}

TEST(LirVerifier, RejectsDoubleDefinition) {
  lir::LFunction Fn = tinyValid();
  Fn.Blocks[0].Insns.push_back(Fn.Blocks[0].Insns[0]); // v1 defined twice
  std::string E;
  EXPECT_FALSE(Fn.verify(E));
  EXPECT_NE(E.find("twice"), std::string::npos);
}

TEST(LirVerifier, RejectsUseBeforeDef) {
  lir::LFunction Fn = tinyValid();
  lir::LInsn Use;
  Use.Op = MOpcode::MNegI;
  Use.Dst = Fn.newValue();
  Use.A = 3; // defined below, never above
  lir::LInsn Def;
  Def.Op = MOpcode::MMovImmI;
  Def.Dst = Fn.newValue();
  Fn.Blocks[0].Insns.insert(Fn.Blocks[0].Insns.begin(), Use);
  Fn.Blocks[0].Insns.push_back(Def);
  std::string E;
  EXPECT_FALSE(Fn.verify(E));
}

TEST(LirVerifier, RejectsPhiArityMismatch) {
  lir::LFunction Fn = tinyValid();
  lir::LPhi P;
  P.Dst = Fn.newValue();
  P.In = {0, 0}; // two inputs, zero preds
  Fn.Blocks[0].Phis.push_back(P);
  std::string E;
  EXPECT_FALSE(Fn.verify(E));
  EXPECT_NE(E.find("phi"), std::string::npos);
}

TEST(LirVerifier, RejectsOutOfRangeSuccessor) {
  lir::LFunction Fn = tinyValid();
  Fn.Blocks[0].Term.K = lir::LTerminator::Kind::Goto;
  Fn.Blocks[0].Term.Taken = 99;
  std::string E;
  EXPECT_FALSE(Fn.verify(E));
}

TEST(LirVerifier, RejectsCrossBlockDominanceViolation) {
  lir::LFunction Fn;
  Fn.ParamCount = 1;
  Fn.NumValues = 1;
  Fn.Blocks.resize(3);
  // bb0: if p0 -> bb1 else bb2
  Fn.Blocks[0].Term.K = lir::LTerminator::Kind::Cond;
  Fn.Blocks[0].Term.CondOp = MOpcode::MIfNez;
  Fn.Blocks[0].Term.A = 0;
  Fn.Blocks[0].Term.Taken = 1;
  Fn.Blocks[0].Term.Fall = 2;
  // bb1 defines v1, returns it.
  lir::LInsn Def;
  Def.Op = MOpcode::MMovImmI;
  Def.Dst = Fn.newValue();
  Fn.Blocks[1].Insns.push_back(Def);
  Fn.Blocks[1].Term.K = lir::LTerminator::Kind::Ret;
  Fn.Blocks[1].Term.A = Def.Dst;
  // bb2 uses v1 — not dominated.
  Fn.Blocks[2].Term.K = lir::LTerminator::Kind::Ret;
  Fn.Blocks[2].Term.A = Def.Dst;
  Fn.computePreds();
  std::string E;
  EXPECT_FALSE(Fn.verify(E));
  EXPECT_NE(E.find("dominated"), std::string::npos);
}

// --- MachineUtil classification -------------------------------------------------

TEST(MachineUtil, StoreValueIsAUseNotADef) {
  MInsn Store = mi(MOpcode::MAStore, 1, 2, 3);
  EXPECT_FALSE(vm::definesA(Store));
  std::vector<MRegIdx> Uses;
  vm::forEachUse(Store, [&](MRegIdx R) { Uses.push_back(R); });
  EXPECT_EQ(Uses.size(), 3u); // value, array, index
}

TEST(MachineUtil, CallDefsAndUses) {
  MInsn Call = mi(MOpcode::MCallStatic, 5);
  Call.ArgCount = 2;
  Call.Args[0] = 7;
  Call.Args[1] = 8;
  EXPECT_TRUE(vm::definesA(Call));
  std::vector<MRegIdx> Uses;
  vm::forEachUse(Call, [&](MRegIdx R) { Uses.push_back(R); });
  EXPECT_EQ(Uses, (std::vector<MRegIdx>{7, 8}));
}

TEST(MachineUtil, EffectClassification) {
  EXPECT_TRUE(vm::isPureOp(MOpcode::MAddI));
  EXPECT_FALSE(vm::isPureOp(MOpcode::MDivI)); // traps
  EXPECT_TRUE(vm::isLoadOp(MOpcode::MALoad));
  EXPECT_TRUE(vm::isStoreOp(MOpcode::MStoreStatic));
  EXPECT_TRUE(vm::isCheckOp(MOpcode::MCheckBounds));
  EXPECT_TRUE(vm::hasSideEffects(mi(MOpcode::MSafepoint)));
  EXPECT_FALSE(vm::hasSideEffects(mi(MOpcode::MALoad, 1, 2, 3)));
}

// --- Loop-pass edge cases ---------------------------------------------------------

TEST(LoopEdgeCases, UnrollZeroAndOneTripCounts) {
  dex::DexBuilder B;
  testprogs::defineSumTo(B);
  dex::DexFile File = B.build();
  for (int64_t N : {0, 1}) {
    dex::MethodId Id = File.findMethod("sumTo");
    lir::LFunction Fn =
        lir::fromHGraph(hgraph::buildHGraph(File, Id));
    lir::simplifyCfg(Fn);
    lir::loopRotate(Fn);
    lir::loopUnroll(Fn, 8);
    std::string E;
    ASSERT_TRUE(Fn.verify(E)) << E;
    testprogs::Harness H(File);
    H.RT->codeCache().install(lir::emitMachine(Fn));
    vm::CallResult R = H.run("sumTo", {vm::Value::fromI64(N)});
    ASSERT_TRUE(R.ok());
    EXPECT_EQ(R.Ret.asI64(), N == 0 ? 0 : 0); // sum of 0..N-1
  }
}

TEST(LoopEdgeCases, PeelMoreThanTripCount) {
  dex::DexBuilder B;
  testprogs::defineSumTo(B);
  dex::DexFile File = B.build();
  lir::LFunction Fn = lir::fromHGraph(
      hgraph::buildHGraph(File, File.findMethod("sumTo")));
  lir::simplifyCfg(Fn);
  lir::loopRotate(Fn);
  lir::loopPeel(Fn, 8); // trip count will be 3
  std::string E;
  ASSERT_TRUE(Fn.verify(E)) << E;
  testprogs::Harness H(File);
  H.RT->codeCache().install(lir::emitMachine(Fn));
  vm::CallResult R = H.run("sumTo", {vm::Value::fromI64(3)});
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Ret.asI64(), 3); // 0+1+2
}

TEST(LoopEdgeCases, LicmDoesNotHoistLoadsPastStores) {
  // sum += arr[0]; arr[0] = i  — the load is NOT invariant.
  dex::DexBuilder B;
  dex::MethodId M = B.declareFunction(dex::InvalidId, "ls", 1, true);
  dex::FunctionBuilder F = B.beginBody(M);
  dex::RegIdx Arr = F.newReg(), Ten = F.immI(10), Zero = F.immI(0),
              One = F.immI(1);
  F.newArray(Arr, Ten, dex::Type::I64);
  dex::RegIdx I = F.newReg(), Sum = F.newReg();
  F.constI(I, 0);
  F.constI(Sum, 0);
  auto Head = F.newLabel(), Done = F.newLabel();
  F.bind(Head);
  F.ifGe(I, F.param(0), Done);
  dex::RegIdx V = F.newReg();
  F.aload(V, Arr, Zero, dex::Type::I64);
  F.addI(Sum, Sum, V);
  F.astore(Arr, Zero, I, dex::Type::I64);
  F.addI(I, I, One);
  F.jump(Head);
  F.bind(Done);
  F.ret(Sum);
  B.endBody(F);
  dex::DexFile File = B.build();

  lir::LFunction Fn =
      lir::fromHGraph(hgraph::buildHGraph(File, M));
  lir::licm(Fn, /*SpeculateDiv=*/false);
  std::string E;
  ASSERT_TRUE(Fn.verify(E)) << E;

  testprogs::Harness Ref(File);
  Ref.RT->setMode(vm::ExecMode::InterpretOnly);
  int64_t Expected = Ref.run("ls", {vm::Value::fromI64(5)}).Ret.asI64();
  testprogs::Harness H(File);
  H.RT->codeCache().install(lir::emitMachine(Fn));
  EXPECT_EQ(H.run("ls", {vm::Value::fromI64(5)}).Ret.asI64(), Expected);
}

// --- Pipeline fuzzing: random genomes always classify cleanly ---------------------

namespace {

/// Shared FFT capture for the fuzz battery (built once).
struct FuzzFixture {
  workloads::Application App = workloads::buildByName("FFT");
  core::PipelineConfig Config;
  profiler::HotRegion Region;
  core::IterativeCompiler::CapturedRegion Captured;
  std::unique_ptr<core::RegionEvaluator> Eval;

  FuzzFixture() {
    core::IterativeCompiler Pipeline(Config);
    auto P = Pipeline.profileApp(App);
    Region = *P.Region;
    Captured = *Pipeline.captureRegion(*P.Instance, Region);
    Eval = std::make_unique<core::RegionEvaluator>(
        App, Region, Captured.Cap, Captured.Map, Captured.Profile,
        Config);
  }

  static FuzzFixture &get() {
    static FuzzFixture F;
    return F;
  }
};

class GenomeFuzz : public ::testing::TestWithParam<int> {};

} // namespace

INSTANTIATE_TEST_SUITE_P(Seeds, GenomeFuzz, ::testing::Range(0, 40));

TEST_P(GenomeFuzz, RandomPipelineClassifiesCleanly) {
  FuzzFixture &F = FuzzFixture::get();
  Rng R(static_cast<uint64_t>(GetParam()) * 7919 + 13);
  search::GenomeConfig GC;
  GC.AggressiveProb = 0.7; // stress the unsound modes hard
  search::Genome G = search::randomGenome(R, GC);
  for (int I = 0; I != 3; ++I)
    search::mutate(G, R, GC);

  search::Evaluation E = F.Eval->evaluate(G);
  // Whatever happened, it happened *inside the sandboxed evaluation*: we
  // got a classification, and the evaluator remains usable.
  switch (E.Kind) {
  case search::EvalKind::Ok:
    EXPECT_GT(E.MedianCycles, 0.0);
    EXPECT_GT(E.CodeSize, 0u);
    break;
  case search::EvalKind::CompileError:
  case search::EvalKind::RuntimeCrash:
  case search::EvalKind::RuntimeTimeout:
  case search::EvalKind::WrongOutput:
    break;
  case search::EvalKind::Unevaluated:
    FAIL() << "evaluate() returned an unevaluated result";
    break;
  }
  // A correct baseline still evaluates correctly afterwards.
  search::Evaluation Android = F.Eval->evaluateAndroid();
  EXPECT_TRUE(Android.ok());
}

TEST_P(GenomeFuzz, ValidGenomesAreDeterministic) {
  FuzzFixture &F = FuzzFixture::get();
  Rng R(static_cast<uint64_t>(GetParam()) * 104729 + 7);
  search::Genome G = search::randomGenome(R, F.Config.Search.GA.Genomes);

  std::optional<vm::CodeCache> C1 = F.Eval->compileRegion(G);
  std::optional<vm::CodeCache> C2 = F.Eval->compileRegion(G);
  ASSERT_EQ(C1.has_value(), C2.has_value());
  if (!C1)
    return;
  ASSERT_EQ(C1->size(), C2->size());
  for (const auto &KV : C1->functions()) {
    const vm::MachineFunction *Other = C2->lookup(KV.first);
    ASSERT_NE(Other, nullptr);
    EXPECT_EQ(KV.second->Code.size(), Other->Code.size());
    EXPECT_EQ(KV.second->NumRegs, Other->NumRegs);
  }
}

// --- Capture with GC inside the region --------------------------------------------

TEST(GcInRegion, AllocatingKernelReplaysExactly) {
  // A kernel that allocates enough to trigger collections mid-region:
  // the GC pauses and page walks are part of the captured determinism.
  dex::DexBuilder B;
  dex::MethodId Init = B.declareFunction(dex::InvalidId, "init", 1, false);
  {
    dex::FunctionBuilder F = B.beginBody(Init);
    F.retVoid();
    B.endBody(F);
  }
  dex::MethodId Kernel =
      B.declareFunction(dex::InvalidId, "allocLoop", 1, true);
  {
    dex::FunctionBuilder F = B.beginBody(Kernel);
    dex::RegIdx I = F.newReg(), Sz = F.immI(512), Arr = F.newReg(),
                Sum = F.newReg(), Zero = F.immI(0);
    F.constI(Sum, 0);
    testprogs::Harness *Unused = nullptr;
    (void)Unused;
    workloads::emitCountedLoop(F, I, F.param(0), [&] {
      F.newArray(Arr, Sz, dex::Type::I64);
      F.astore(Arr, Zero, I, dex::Type::I64);
      dex::RegIdx V = F.newReg();
      F.aload(V, Arr, Zero, dex::Type::I64);
      F.addI(Sum, Sum, V);
    });
    F.ret(Sum);
    B.endBody(F);
  }
  dex::DexFile File = B.build();

  os::Kernel Kern;
  os::Process &Proc = Kern.spawn();
  vm::NativeRegistry Natives = vm::NativeRegistry::standardLibrary();
  vm::RuntimeConfig Config;
  Config.GcThresholdBytes = 512 * 1024; // several GCs inside the region
  vm::Runtime::mapStandardLayout(Proc.space(), File, Config);
  vm::Runtime RT(Proc.space(), File, Natives, Config);
  RT.call(Init, {vm::Value::fromI64(0)});

  capture::CaptureManager CM(Kern, Proc, RT);
  CM.armCapture(Kernel);
  vm::CallResult Live = RT.call(Kernel, {vm::Value::fromI64(400)});
  ASSERT_TRUE(Live.ok());
  ASSERT_TRUE(CM.captureReady());
  capture::Capture Cap = CM.takeCapture().value();
  EXPECT_GE(RT.heap().gcRuns(), 1u);

  replay::Replayer Rep(File, Natives, Config);
  replay::ReplayResult A =
      Rep.replay(Cap, replay::ReplayCode::Interpreter, nullptr);
  replay::ReplayResult Bb =
      Rep.replay(Cap, replay::ReplayCode::Interpreter, nullptr);
  ASSERT_TRUE(A.Result.ok());
  EXPECT_EQ(A.Result.Ret.asI64(), Live.Ret.asI64());
  EXPECT_EQ(A.Result.Cycles, Bb.Result.Cycles); // GC pauses replay exactly
}
