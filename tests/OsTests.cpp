//===- tests/OsTests.cpp - os/ unit tests ----------------------------------===//

#include "os/AddressSpace.h"
#include "os/CostModel.h"
#include "os/Kernel.h"

#include <gtest/gtest.h>

using namespace ropt;
using namespace ropt::os;

namespace {

constexpr uint64_t Base = 0x10000;

AddressSpace makeSpace(uint64_t Pages = 4,
                       uint8_t Prot = ProtRead | ProtWrite) {
  AddressSpace Space;
  Space.mapRegion(Base, Pages * PageSize, Prot, MappingKind::Heap, "heap");
  return Space;
}

} // namespace

// --- Page math ----------------------------------------------------------------

TEST(Memory, PageMath) {
  EXPECT_EQ(pageBase(0x12345), 0x12000u);
  EXPECT_EQ(pageNumber(0x12345), 0x12u);
  EXPECT_EQ(roundUpToPage(1), PageSize);
  EXPECT_EQ(roundUpToPage(PageSize), PageSize);
  EXPECT_EQ(roundUpToPage(PageSize + 1), 2 * PageSize);
  EXPECT_EQ(roundUpToPage(0), 0u);
}

// --- AddressSpace basics -------------------------------------------------------

TEST(AddressSpace, ReadWriteRoundTrip) {
  AddressSpace Space = makeSpace();
  uint64_t Value = 0x1122334455667788ULL;
  EXPECT_EQ(Space.storeU64(Base + 16, Value), AccessResult::Ok);
  uint64_t Out = 0;
  EXPECT_EQ(Space.loadU64(Base + 16, Out), AccessResult::Ok);
  EXPECT_EQ(Out, Value);
}

TEST(AddressSpace, CrossPageAccess) {
  AddressSpace Space = makeSpace();
  uint64_t Addr = Base + PageSize - 4; // straddles two pages
  uint64_t Value = 0xa5a5a5a5f0f0f0f0ULL;
  EXPECT_EQ(Space.storeU64(Addr, Value), AccessResult::Ok);
  uint64_t Out = 0;
  EXPECT_EQ(Space.loadU64(Addr, Out), AccessResult::Ok);
  EXPECT_EQ(Out, Value);
}

TEST(AddressSpace, UnmappedAccessFails) {
  AddressSpace Space = makeSpace();
  uint64_t Out;
  EXPECT_EQ(Space.loadU64(0x999000, Out), AccessResult::Unmapped);
  EXPECT_EQ(Space.storeU64(0x999000, 1), AccessResult::Unmapped);
}

TEST(AddressSpace, FreshPagesZeroed) {
  AddressSpace Space = makeSpace();
  uint64_t Out = 1;
  EXPECT_EQ(Space.loadU64(Base, Out), AccessResult::Ok);
  EXPECT_EQ(Out, 0u);
}

TEST(AddressSpace, UnmapRemovesPages) {
  AddressSpace Space = makeSpace(4);
  Space.unmapRegion(Base, 4 * PageSize);
  EXPECT_FALSE(Space.isMapped(Base));
  EXPECT_EQ(Space.mappedPageCount(), 0u);
  EXPECT_TRUE(Space.procMaps().empty());
}

TEST(AddressSpace, MappingLookup) {
  AddressSpace Space = makeSpace(2);
  const Mapping *M = Space.findMapping(Base + 100);
  ASSERT_NE(M, nullptr);
  EXPECT_EQ(M->Name, "heap");
  EXPECT_EQ(M->pageCount(), 2u);
  EXPECT_EQ(Space.findMapping(0x999000), nullptr);
}

TEST(AddressSpace, ProcMapsSortedAndCounted) {
  AddressSpace Space;
  Space.mapRegion(0x30000, PageSize, ProtRead, MappingKind::Code, "code");
  Space.mapRegion(0x10000, PageSize, ProtRead, MappingKind::Data, "data");
  auto Maps = Space.procMaps();
  ASSERT_EQ(Maps.size(), 2u);
  EXPECT_LT(Maps[0].Start, Maps[1].Start);
  EXPECT_EQ(Space.stats().MapsEnumerations, 1u);
}

// --- Protection and faults ----------------------------------------------------

TEST(AddressSpace, ReadProtectionFaultsWithoutHandler) {
  AddressSpace Space = makeSpace(1, ProtNone);
  uint64_t Out;
  EXPECT_EQ(Space.loadU64(Base, Out), AccessResult::Violation);
  EXPECT_EQ(Space.stats().ReadFaults, 1u);
}

TEST(AddressSpace, WriteProtectionFaults) {
  AddressSpace Space = makeSpace(1, ProtRead);
  EXPECT_EQ(Space.storeU64(Base, 5), AccessResult::Violation);
  EXPECT_EQ(Space.stats().WriteFaults, 1u);
  uint64_t Out;
  EXPECT_EQ(Space.loadU64(Base, Out), AccessResult::Ok);
}

TEST(AddressSpace, FaultHandlerCanFixUp) {
  AddressSpace Space = makeSpace(2, ProtNone);
  std::vector<uint64_t> Faulted;
  Space.setFaultHandler([&](uint64_t Addr, bool IsWrite) {
    Faulted.push_back(pageBase(Addr));
    EXPECT_FALSE(IsWrite);
    Space.protectRange(pageBase(Addr), PageSize, ProtRead | ProtWrite);
    return true;
  });
  uint64_t Out;
  EXPECT_EQ(Space.loadU64(Base + 8, Out), AccessResult::Ok);
  // Second access to the same page: no further fault.
  EXPECT_EQ(Space.loadU64(Base + 64, Out), AccessResult::Ok);
  ASSERT_EQ(Faulted.size(), 1u);
  EXPECT_EQ(Faulted[0], Base);
  EXPECT_EQ(Space.stats().ReadFaults, 1u);
}

TEST(AddressSpace, HandlerThatDoesNotFixYieldsViolation) {
  AddressSpace Space = makeSpace(1, ProtNone);
  Space.setFaultHandler([](uint64_t, bool) { return true; });
  uint64_t Out;
  EXPECT_EQ(Space.loadU64(Base, Out), AccessResult::Violation);
}

TEST(AddressSpace, ProtectRangeCountsPages) {
  AddressSpace Space = makeSpace(8);
  Space.resetStats();
  Space.protectRange(Base, 8 * PageSize, ProtNone);
  EXPECT_EQ(Space.stats().ProtectCalls, 1u);
  EXPECT_EQ(Space.stats().PagesProtected, 8u);
  // Re-protecting with the same protection changes nothing.
  Space.protectRange(Base, 8 * PageSize, ProtNone);
  EXPECT_EQ(Space.stats().ProtectCalls, 2u);
  EXPECT_EQ(Space.stats().PagesProtected, 8u);
}

TEST(AddressSpace, PeekPokeIgnoreProtection) {
  AddressSpace Space = makeSpace(1, ProtNone);
  uint64_t V = 77;
  EXPECT_TRUE(Space.poke(Base, &V, sizeof(V)));
  uint64_t Out = 0;
  EXPECT_TRUE(Space.peek(Base, &Out, sizeof(Out)));
  EXPECT_EQ(Out, 77u);
  EXPECT_EQ(Space.stats().ReadFaults, 0u);
  EXPECT_FALSE(Space.peek(0x999000, &Out, sizeof(Out)));
}

// --- Fork and Copy-on-Write -----------------------------------------------------

TEST(Fork, ChildSeesParentState) {
  Kernel K;
  Process &Parent = K.spawn();
  Parent.space().mapRegion(Base, 2 * PageSize, ProtRead | ProtWrite,
                           MappingKind::Heap, "heap");
  ASSERT_EQ(Parent.space().storeU64(Base, 123), AccessResult::Ok);
  Process &Child = K.fork(Parent);
  uint64_t Out = 0;
  EXPECT_EQ(Child.space().loadU64(Base, Out), AccessResult::Ok);
  EXPECT_EQ(Out, 123u);
  EXPECT_EQ(Child.parentPid(), Parent.pid());
}

TEST(Fork, CowIsolatesParentWrites) {
  Kernel K;
  Process &Parent = K.spawn();
  Parent.space().mapRegion(Base, PageSize, ProtRead | ProtWrite,
                           MappingKind::Heap, "heap");
  ASSERT_EQ(Parent.space().storeU64(Base, 1), AccessResult::Ok);
  Process &Child = K.fork(Parent);

  // Parent overwrites after the fork; the child must keep the original.
  ASSERT_EQ(Parent.space().storeU64(Base, 2), AccessResult::Ok);
  uint64_t ChildSees = 0, ParentSees = 0;
  EXPECT_EQ(Child.space().loadU64(Base, ChildSees), AccessResult::Ok);
  EXPECT_EQ(Parent.space().loadU64(Base, ParentSees), AccessResult::Ok);
  EXPECT_EQ(ChildSees, 1u);
  EXPECT_EQ(ParentSees, 2u);
  EXPECT_EQ(Parent.space().stats().CowCopies, 1u);
}

TEST(Fork, CowCopiesOncePerPage) {
  Kernel K;
  Process &Parent = K.spawn();
  Parent.space().mapRegion(Base, 4 * PageSize, ProtRead | ProtWrite,
                           MappingKind::Heap, "heap");
  // Materialize the page pre-fork so the fork actually shares it (a write
  // to a never-touched page after fork is a zero-fill, not a CoW copy).
  ASSERT_EQ(Parent.space().storeU64(Base, 7), AccessResult::Ok);
  K.fork(Parent);
  Parent.space().resetStats();
  for (int I = 0; I != 100; ++I)
    ASSERT_EQ(Parent.space().storeU64(Base + 8 * I, I), AccessResult::Ok);
  // 100 stores into one shared page: exactly one CoW copy.
  EXPECT_EQ(Parent.space().stats().CowCopies, 1u);
}

TEST(Fork, ChildWritesDoNotDisturbParent) {
  Kernel K;
  Process &Parent = K.spawn();
  Parent.space().mapRegion(Base, PageSize, ProtRead | ProtWrite,
                           MappingKind::Heap, "heap");
  ASSERT_EQ(Parent.space().storeU64(Base, 10), AccessResult::Ok);
  Process &Child = K.fork(Parent);
  ASSERT_EQ(Child.space().storeU64(Base, 99), AccessResult::Ok);
  uint64_t ParentSees = 0;
  EXPECT_EQ(Parent.space().loadU64(Base, ParentSees), AccessResult::Ok);
  EXPECT_EQ(ParentSees, 10u);
}

TEST(Fork, ReapKeepsSharedPagesAlive) {
  Kernel K;
  Process &Parent = K.spawn();
  Parent.space().mapRegion(Base, PageSize, ProtRead | ProtWrite,
                           MappingKind::Heap, "heap");
  ASSERT_EQ(Parent.space().storeU64(Base, 5), AccessResult::Ok);
  Process &Child = K.fork(Parent);
  Pid ParentId = Parent.pid();
  K.reap(ParentId);
  EXPECT_EQ(K.find(ParentId), nullptr);
  uint64_t Out = 0;
  EXPECT_EQ(Child.space().loadU64(Base, Out), AccessResult::Ok);
  EXPECT_EQ(Out, 5u);
}

TEST(Fork, PriorityAndSleep) {
  Kernel K;
  Process &P = K.spawn();
  Process &C = K.fork(P);
  C.setPriority(Priority::Lowest);
  C.sleep();
  EXPECT_EQ(C.priority(), Priority::Lowest);
  EXPECT_TRUE(C.isAsleep());
  C.wake();
  EXPECT_FALSE(C.isAsleep());
  EXPECT_EQ(K.forkCount(), 1u);
}

// --- Storage -----------------------------------------------------------------

TEST(Storage, WriteReadRemove) {
  StorageDevice Disk;
  Disk.writeFile("a", {1, 2, 3});
  ASSERT_NE(Disk.readFile("a"), nullptr);
  EXPECT_EQ(Disk.readFile("a")->size(), 3u);
  EXPECT_EQ(Disk.readFile("missing"), nullptr);
  EXPECT_TRUE(Disk.removeFile("a"));
  EXPECT_FALSE(Disk.removeFile("a"));
}

TEST(Storage, AccountsBytes) {
  StorageDevice Disk;
  Disk.writeFile("a", std::vector<uint8_t>(100));
  Disk.writeFile("b", std::vector<uint8_t>(50));
  EXPECT_EQ(Disk.totalBytesStored(), 150u);
  Disk.writeFile("a", std::vector<uint8_t>(10)); // replace
  EXPECT_EQ(Disk.totalBytesStored(), 60u);
  EXPECT_EQ(Disk.lifetimeBytesWritten(), 160u);
  auto Files = Disk.listFiles();
  ASSERT_EQ(Files.size(), 2u);
  EXPECT_EQ(Files[0], "a");
}

// --- Cost model ---------------------------------------------------------------

TEST(CostModel, MonotoneInEventCounts) {
  KernelCostModel Model;
  EXPECT_GT(Model.forkCostUs(10000), Model.forkCostUs(100));
  EXPECT_GT(Model.preparationCostUs(500, 500, 20000),
            Model.preparationCostUs(50, 50, 2000));
  EXPECT_GT(Model.faultAndCowCostUs(100, 100),
            Model.faultAndCowCostUs(10, 10));
  EXPECT_DOUBLE_EQ(Model.faultAndCowCostUs(0, 0), 0.0);
}

TEST(CostModel, ForkLandsInPaperBand) {
  KernelCostModel Model;
  // A process with a few thousand mapped pages forks in ~1-6 ms.
  double SmallUs = Model.forkCostUs(500);
  double LargeUs = Model.forkCostUs(10000);
  EXPECT_GT(SmallUs, 800.0);
  EXPECT_LT(LargeUs, 7000.0);
}

// --- Snapshots (replay fork-server support) ----------------------------------

TEST(Snapshot, ResetRevertsExactlyTheDirtyPages) {
  AddressSpace Space = makeSpace(8);
  uint64_t A = 0x1111, B = 0x2222;
  ASSERT_EQ(Space.write(Base, &A, 8), AccessResult::Ok);
  ASSERT_EQ(Space.write(Base + PageSize, &B, 8), AccessResult::Ok);

  Space.takeSnapshot();
  EXPECT_TRUE(Space.hasValidSnapshot());
  EXPECT_EQ(Space.dirtyPageCount(), 0u);

  // Dirty two of the eight pages.
  uint64_t X = 0xdead;
  ASSERT_EQ(Space.write(Base, &X, 8), AccessResult::Ok);
  ASSERT_EQ(Space.write(Base + 3 * PageSize, &X, 8), AccessResult::Ok);
  EXPECT_EQ(Space.dirtyPageCount(), 2u);

  int64_t Reverted = Space.resetToSnapshot();
  EXPECT_EQ(Reverted, 2);
  EXPECT_EQ(Space.dirtyPageCount(), 0u);

  // Snapshot content is back; the snapshot survives for the next round.
  uint64_t V = 0;
  ASSERT_EQ(Space.read(Base, &V, 8), AccessResult::Ok);
  EXPECT_EQ(V, 0x1111u);
  ASSERT_EQ(Space.read(Base + PageSize, &V, 8), AccessResult::Ok);
  EXPECT_EQ(V, 0x2222u);
  ASSERT_EQ(Space.read(Base + 3 * PageSize, &V, 8), AccessResult::Ok);
  EXPECT_EQ(V, 0u);
  EXPECT_TRUE(Space.hasValidSnapshot());

  EXPECT_EQ(Space.stats().SnapshotsTaken, 1u);
  EXPECT_EQ(Space.stats().SnapshotResets, 1u);
  EXPECT_EQ(Space.stats().PagesReverted, 2u);
}

TEST(Snapshot, RepeatedResetCyclesAreStable) {
  AddressSpace Space = makeSpace(4);
  uint64_t Init = 7;
  ASSERT_EQ(Space.write(Base, &Init, 8), AccessResult::Ok);
  Space.takeSnapshot();

  for (int Round = 0; Round != 5; ++Round) {
    uint64_t V = 0;
    ASSERT_EQ(Space.read(Base, &V, 8), AccessResult::Ok);
    ASSERT_EQ(V, 7u) << "round " << Round;
    uint64_t X = 100 + Round;
    ASSERT_EQ(Space.write(Base, &X, 8), AccessResult::Ok);
    EXPECT_EQ(Space.resetToSnapshot(), 1);
  }
  EXPECT_EQ(Space.stats().PagesReverted, 5u);
}

TEST(Snapshot, ResetRearmsProtections) {
  AddressSpace Space = makeSpace(2);
  Space.takeSnapshot();
  // A capture-style protect pass after the snapshot is dirtying too:
  // reset must restore the snapshot's protections, not just content.
  Space.protectRange(Base, PageSize, ProtRead);
  EXPECT_EQ(Space.protectionOf(Base), ProtRead);
  EXPECT_GE(Space.resetToSnapshot(), 1);
  EXPECT_EQ(Space.protectionOf(Base), ProtRead | ProtWrite);
}

TEST(Snapshot, StructuralChangeInvalidates) {
  AddressSpace Space = makeSpace(4);
  Space.takeSnapshot();
  Space.mapRegion(Base + 0x100000, PageSize, ProtRead | ProtWrite,
                  MappingKind::Anonymous, "late");
  EXPECT_FALSE(Space.hasValidSnapshot());
  EXPECT_EQ(Space.resetToSnapshot(), -1);
}

TEST(Snapshot, UnmapAlsoInvalidates) {
  AddressSpace Space = makeSpace(4);
  Space.takeSnapshot();
  Space.unmapRegion(Base + 2 * PageSize, PageSize);
  EXPECT_FALSE(Space.hasValidSnapshot());
  EXPECT_EQ(Space.resetToSnapshot(), -1);
}

TEST(Snapshot, NoSnapshotMeansNoReset) {
  AddressSpace Space = makeSpace(2);
  EXPECT_FALSE(Space.hasValidSnapshot());
  EXPECT_EQ(Space.resetToSnapshot(), -1);
}

TEST(Snapshot, DropSnapshotForgetsRestorePoint) {
  AddressSpace Space = makeSpace(2);
  Space.takeSnapshot();
  uint64_t X = 1;
  ASSERT_EQ(Space.write(Base, &X, 8), AccessResult::Ok);
  Space.dropSnapshot();
  EXPECT_FALSE(Space.hasValidSnapshot());
  EXPECT_EQ(Space.dirtyPageCount(), 0u);
  // Content written after the drop is simply kept.
  uint64_t V = 0;
  ASSERT_EQ(Space.read(Base, &V, 8), AccessResult::Ok);
  EXPECT_EQ(V, 1u);
}

TEST(Snapshot, ForkCloneStartsWithoutSnapshot) {
  AddressSpace Space = makeSpace(2);
  Space.takeSnapshot();
  AddressSpace Clone = Space.forkClone();
  EXPECT_FALSE(Clone.hasValidSnapshot());
  EXPECT_TRUE(Space.hasValidSnapshot());
  // Writes in the clone never dirty the parent's snapshot accounting.
  uint64_t X = 9;
  ASSERT_EQ(Clone.write(Base, &X, 8), AccessResult::Ok);
  EXPECT_EQ(Space.dirtyPageCount(), 0u);
  EXPECT_GE(Space.resetToSnapshot(), 0);
}

TEST(Snapshot, PokeIsDirtyTrackedToo) {
  // Kernel-style writes (capture/verification tooling) must participate
  // in dirty tracking, or a reset would leak their effects into the next
  // replay.
  AddressSpace Space = makeSpace(2);
  uint64_t Init = 5;
  ASSERT_EQ(Space.write(Base, &Init, 8), AccessResult::Ok);
  Space.takeSnapshot();
  uint64_t X = 77;
  ASSERT_TRUE(Space.poke(Base, &X, 8));
  EXPECT_EQ(Space.dirtyPageCount(), 1u);
  EXPECT_EQ(Space.resetToSnapshot(), 1);
  uint64_t V = 0;
  ASSERT_EQ(Space.read(Base, &V, 8), AccessResult::Ok);
  EXPECT_EQ(V, 5u);
}

// --- Translation cache --------------------------------------------------------

TEST(TranslationCache, UnmapInvalidatesCachedEntries) {
  AddressSpace Space = makeSpace(4);
  uint64_t X = 1;
  // Populate the cache with hits on two pages.
  ASSERT_EQ(Space.write(Base, &X, 8), AccessResult::Ok);
  ASSERT_EQ(Space.write(Base + PageSize, &X, 8), AccessResult::Ok);
  ASSERT_EQ(Space.read(Base, &X, 8), AccessResult::Ok);

  Space.unmapRegion(Base, PageSize);
  // A stale cache entry would serve the unmapped page from its old
  // physical backing; the correct answer is Unmapped.
  uint64_t V = 0;
  EXPECT_EQ(Space.read(Base, &V, 8), AccessResult::Unmapped);
  EXPECT_EQ(Space.read(Base + PageSize, &V, 8), AccessResult::Ok);
}

TEST(TranslationCache, ProtectionChangeIsHonored) {
  AddressSpace Space = makeSpace(2);
  uint64_t X = 3;
  ASSERT_EQ(Space.write(Base, &X, 8), AccessResult::Ok); // cache the page
  Space.protectRange(Base, PageSize, ProtRead);
  // The cached translation must not bypass the new protection.
  EXPECT_EQ(Space.write(Base, &X, 8), AccessResult::Violation);
  uint64_t V = 0;
  EXPECT_EQ(Space.read(Base, &V, 8), AccessResult::Ok);
  EXPECT_EQ(V, 3u);
}
