//===- tests/VmTests.cpp - vm/ unit tests ------------------------------------===//

#include "dex/Builder.h"
#include "vm/Heap.h"
#include "vm/Runtime.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

using namespace ropt;
using namespace ropt::dex;
using namespace ropt::vm;

namespace {

/// A dex file plus a booted runtime over a fresh simulated process.
struct VmEnv {
  DexFile File;
  os::AddressSpace Space;
  NativeRegistry Natives;
  std::unique_ptr<Runtime> RT;

  explicit VmEnv(DexFile F, RuntimeConfig Config = RuntimeConfig())
      : File(std::move(F)), Natives(NativeRegistry::standardLibrary()) {
    Runtime::mapStandardLayout(Space, File, Config);
    RT = std::make_unique<Runtime>(Space, File, Natives, Config);
  }

  CallResult run(const std::string &Name,
                 std::vector<Value> Args = {}) {
    MethodId Id = File.findMethod(Name);
    EXPECT_NE(Id, InvalidId) << Name;
    return RT->call(Id, Args);
  }
};

/// sumTo(n): straightforward counting loop.
void defineSumTo(DexBuilder &B) {
  MethodId M = B.declareFunction(InvalidId, "sumTo", 1, true);
  FunctionBuilder F = B.beginBody(M);
  RegIdx Sum = F.newReg(), I = F.newReg(), One = F.immI(1);
  F.constI(Sum, 0);
  F.constI(I, 0);
  auto Head = F.newLabel(), Exit = F.newLabel();
  F.bind(Head);
  F.ifGe(I, F.param(0), Exit);
  F.addI(Sum, Sum, I);
  F.addI(I, I, One);
  F.jump(Head);
  F.bind(Exit);
  F.ret(Sum);
  B.endBody(F);
}

} // namespace

// --- Heap --------------------------------------------------------------------

TEST(Heap, AllocateAndHeader) {
  os::AddressSpace Space;
  Space.mapRegion(Layout::HeapBase, 1 << 20, os::ProtRead | os::ProtWrite,
                  os::MappingKind::Heap, "heap");
  Heap H(Space, 1 << 20, 1 << 19);
  H.initialize();

  TrapKind Trap = TrapKind::None;
  uint64_t Obj = H.allocate(ObjKind::Object, 7, 3, Trap);
  ASSERT_NE(Obj, 0u);
  EXPECT_EQ(Trap, TrapKind::None);

  ObjectHeader Header;
  ASSERT_TRUE(H.readHeader(Obj, Header));
  EXPECT_EQ(Header.ClassOrElem, 7u);
  EXPECT_EQ(Header.Kind, uint8_t(ObjKind::Object));
  EXPECT_EQ(Header.Count, 3u);
  EXPECT_GT(H.bytesAllocated(), 0u);
}

TEST(Heap, AllocationsAreDisjointAndAligned) {
  os::AddressSpace Space;
  Space.mapRegion(Layout::HeapBase, 1 << 20, os::ProtRead | os::ProtWrite,
                  os::MappingKind::Heap, "heap");
  Heap H(Space, 1 << 20, 1 << 19);
  H.initialize();

  TrapKind Trap = TrapKind::None;
  uint64_t A = H.allocate(ObjKind::ArrayI, 0, 5, Trap);
  uint64_t B = H.allocate(ObjKind::ArrayI, 0, 5, Trap);
  EXPECT_EQ(A % 16, 0u);
  EXPECT_EQ(B % 16, 0u);
  // 5 elements -> 16 header + 40 payload -> 56, padded to 64.
  EXPECT_GE(B - A, 56u);
}

TEST(Heap, OutOfMemoryTraps) {
  os::AddressSpace Space;
  Space.mapRegion(Layout::HeapBase, 64 * 1024,
                  os::ProtRead | os::ProtWrite, os::MappingKind::Heap,
                  "heap");
  Heap H(Space, 64 * 1024, 32 * 1024);
  H.initialize();

  TrapKind Trap = TrapKind::None;
  EXPECT_EQ(H.allocate(ObjKind::ArrayI, 0, 100000, Trap), 0u);
  EXPECT_EQ(Trap, TrapKind::OutOfMemory);
}

TEST(Heap, SafepointTriggersGcAfterThreshold) {
  os::AddressSpace Space;
  Space.mapRegion(Layout::HeapBase, 1 << 20, os::ProtRead | os::ProtWrite,
                  os::MappingKind::Heap, "heap");
  Heap H(Space, 1 << 20, /*GcThreshold=*/4096);
  H.initialize();

  EXPECT_EQ(H.pollSafepoint(1000), 0u);
  TrapKind Trap = TrapKind::None;
  H.allocate(ObjKind::ArrayI, 0, 1000, Trap); // ~8KB > threshold
  EXPECT_TRUE(H.gcImminent());
  EXPECT_EQ(H.pollSafepoint(1000), 1000u);
  EXPECT_EQ(H.gcRuns(), 1u);
  EXPECT_FALSE(H.gcImminent());
  EXPECT_EQ(H.pollSafepoint(1000), 0u);
}

TEST(Heap, StateLivesInMemory) {
  os::AddressSpace Space;
  Space.mapRegion(Layout::HeapBase, 1 << 20, os::ProtRead | os::ProtWrite,
                  os::MappingKind::Heap, "heap");
  Heap A(Space, 1 << 20, 1 << 19);
  A.initialize();
  TrapKind Trap = TrapKind::None;
  A.allocate(ObjKind::Object, 1, 4, Trap);

  // A second view over the same space sees the same allocator state.
  Heap B(Space, 1 << 20, 1 << 19);
  EXPECT_EQ(B.bytesAllocated(), A.bytesAllocated());
}

// --- Interpreter: arithmetic and control flow ---------------------------------

TEST(Interpreter, ArithmeticBasics) {
  DexBuilder B;
  MethodId M = B.declareFunction(InvalidId, "calc", 2, true);
  FunctionBuilder F = B.beginBody(M);
  // ((a + b) * 3 - a) ^ 5
  RegIdx T = F.newReg(), Three = F.immI(3), Five = F.immI(5);
  F.addI(T, F.param(0), F.param(1));
  F.mulI(T, T, Three);
  F.subI(T, T, F.param(0));
  F.xorI(T, T, Five);
  F.ret(T);
  B.endBody(F);
  VmEnv Env(B.build());

  CallResult R =
      Env.run("calc", {Value::fromI64(10), Value::fromI64(4)});
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Ret.asI64(), ((10 + 4) * 3 - 10) ^ 5);
}

TEST(Interpreter, LoopSum) {
  DexBuilder B;
  defineSumTo(B);
  VmEnv Env(B.build());
  CallResult R = Env.run("sumTo", {Value::fromI64(100)});
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Ret.asI64(), 4950);
  EXPECT_GT(R.Cycles, 0u);
  EXPECT_GT(R.Insns, 300u);
}

TEST(Interpreter, FloatingPoint) {
  DexBuilder B;
  MethodId M = B.declareFunction(InvalidId, "fp", 1, true);
  FunctionBuilder F = B.beginBody(M);
  RegIdx X = F.newReg(), Y = F.newReg();
  F.i2f(X, F.param(0));
  RegIdx Half = F.immF(0.5);
  F.mulF(Y, X, Half);
  F.sqrtF(Y, Y);
  F.ret(Y);
  B.endBody(F);
  VmEnv Env(B.build());

  CallResult R = Env.run("fp", {Value::fromI64(8)});
  ASSERT_TRUE(R.ok());
  EXPECT_DOUBLE_EQ(R.Ret.asF64(), 2.0);
}

TEST(Interpreter, CmpFOrdering) {
  DexBuilder B;
  MethodId M = B.declareFunction(InvalidId, "cmp", 2, true);
  FunctionBuilder F = B.beginBody(M);
  RegIdx R = F.newReg();
  F.cmpF(R, F.param(0), F.param(1));
  F.ret(R);
  B.endBody(F);
  VmEnv Env(B.build());

  EXPECT_EQ(
      Env.run("cmp", {Value::fromF64(1.0), Value::fromF64(2.0)}).Ret.asI64(),
      -1);
  EXPECT_EQ(
      Env.run("cmp", {Value::fromF64(2.0), Value::fromF64(2.0)}).Ret.asI64(),
      0);
  EXPECT_EQ(
      Env.run("cmp", {Value::fromF64(3.0), Value::fromF64(2.0)}).Ret.asI64(),
      1);
  double NaN = std::nan("");
  EXPECT_EQ(
      Env.run("cmp", {Value::fromF64(NaN), Value::fromF64(2.0)}).Ret.asI64(),
      1);
}

TEST(Interpreter, Recursion) {
  DexBuilder B;
  MethodId Fib = B.declareFunction(InvalidId, "fib", 1, true);
  FunctionBuilder F = B.beginBody(Fib);
  auto BaseCase = F.newLabel();
  RegIdx Two = F.immI(2);
  F.ifLt(F.param(0), Two, BaseCase);
  RegIdx A = F.newReg(), Bv = F.newReg(), T = F.newReg(), One = F.immI(1);
  F.subI(T, F.param(0), One);
  F.invokeStatic(A, Fib, {T});
  F.subI(T, T, One);
  F.invokeStatic(Bv, Fib, {T});
  F.addI(A, A, Bv);
  F.ret(A);
  F.bind(BaseCase);
  F.ret(F.param(0));
  B.endBody(F);
  VmEnv Env(B.build());

  CallResult R = Env.run("fib", {Value::fromI64(15)});
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Ret.asI64(), 610);
}

// --- Interpreter: heap objects ---------------------------------------------------

TEST(Interpreter, ArraysSumRoundTrip) {
  DexBuilder B;
  MethodId M = B.declareFunction(InvalidId, "arraySum", 1, true);
  FunctionBuilder F = B.beginBody(M);
  RegIdx Arr = F.newReg(), I = F.newReg(), Sum = F.newReg(),
         One = F.immI(1);
  F.newArray(Arr, F.param(0), Type::I64);
  F.constI(I, 0);
  // fill: arr[i] = i * i
  auto FillHead = F.newLabel(), FillDone = F.newLabel();
  F.bind(FillHead);
  F.ifGe(I, F.param(0), FillDone);
  RegIdx Sq = F.newReg();
  F.mulI(Sq, I, I);
  F.astore(Arr, I, Sq, Type::I64);
  F.addI(I, I, One);
  F.jump(FillHead);
  F.bind(FillDone);
  // sum
  F.constI(Sum, 0);
  F.constI(I, 0);
  auto SumHead = F.newLabel(), SumDone = F.newLabel();
  RegIdx Len = F.newReg();
  F.arrayLen(Len, Arr);
  F.bind(SumHead);
  F.ifGe(I, Len, SumDone);
  RegIdx V = F.newReg();
  F.aload(V, Arr, I, Type::I64);
  F.addI(Sum, Sum, V);
  F.addI(I, I, One);
  F.jump(SumHead);
  F.bind(SumDone);
  F.ret(Sum);
  B.endBody(F);
  VmEnv Env(B.build());

  CallResult R = Env.run("arraySum", {Value::fromI64(10)});
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Ret.asI64(), 285); // sum of squares 0..9
}

TEST(Interpreter, ObjectFieldsAndVirtualDispatch) {
  DexBuilder B;
  ClassId Shape = B.addClass("Shape");
  ClassId Square = B.addClass("Square", Shape);
  ClassId Circle = B.addClass("Circle", Shape);
  FieldId Size = B.addField(Shape, "size", Type::I64);
  MethodId Area = B.declareVirtual(Shape, "area", 1, true);
  MethodId SquareArea = B.declareVirtual(Square, "area", 1, true);
  MethodId CircleArea = B.declareVirtual(Circle, "area", 1, true);
  {
    FunctionBuilder F = B.beginBody(Area);
    RegIdx Z = F.immI(0);
    F.ret(Z);
    B.endBody(F);
  }
  {
    FunctionBuilder F = B.beginBody(SquareArea);
    RegIdx S = F.newReg();
    F.getField(S, F.param(0), Size);
    F.mulI(S, S, S);
    F.ret(S);
    B.endBody(F);
  }
  {
    FunctionBuilder F = B.beginBody(CircleArea);
    RegIdx S = F.newReg(), Three = F.immI(3);
    F.getField(S, F.param(0), Size);
    F.mulI(S, S, S);
    F.mulI(S, S, Three);
    F.ret(S);
    B.endBody(F);
  }
  MethodId Main = B.declareFunction(InvalidId, "main", 1, true);
  {
    FunctionBuilder F = B.beginBody(Main);
    RegIdx Obj = F.newReg(), R = F.newReg();
    auto UseCircle = F.newLabel(), Call = F.newLabel();
    F.ifNez(F.param(0), UseCircle);
    F.newInstance(Obj, Square);
    F.jump(Call);
    F.bind(UseCircle);
    F.newInstance(Obj, Circle);
    F.bind(Call);
    RegIdx Four = F.immI(4);
    F.putField(Obj, Size, Four);
    F.invokeVirtual(R, Area, {Obj});
    F.ret(R);
    B.endBody(F);
  }
  VmEnv Env(B.build());

  EXPECT_EQ(Env.run("main", {Value::fromI64(0)}).Ret.asI64(), 16);
  EXPECT_EQ(Env.run("main", {Value::fromI64(1)}).Ret.asI64(), 48);
}

TEST(Interpreter, StaticFields) {
  DexBuilder B;
  ClassId C = B.addClass("Counter");
  StaticFieldId Count = B.addStaticField(C, "count", Type::I64, 5);
  MethodId Bump = B.declareFunction(InvalidId, "bump", 0, true);
  FunctionBuilder F = B.beginBody(Bump);
  RegIdx V = F.newReg(), One = F.immI(1);
  F.getStatic(V, Count);
  F.addI(V, V, One);
  F.putStatic(Count, V);
  F.ret(V);
  B.endBody(F);
  VmEnv Env(B.build());

  EXPECT_EQ(Env.run("bump").Ret.asI64(), 6);
  EXPECT_EQ(Env.run("bump").Ret.asI64(), 7);
  EXPECT_EQ(Env.RT->readStatic(Count).asI64(), 7);
}

// --- Interpreter: natives -----------------------------------------------------

TEST(Interpreter, MathNative) {
  DexBuilder B;
  NativeId Sin = B.addNative("sin", 1, true);
  MethodId M = B.declareFunction(InvalidId, "sinOf", 1, true);
  FunctionBuilder F = B.beginBody(M);
  RegIdx R = F.newReg();
  F.invokeNative(R, Sin, {F.param(0)});
  F.ret(R);
  B.endBody(F);
  VmEnv Env(B.build());

  CallResult Res = Env.run("sinOf", {Value::fromF64(1.0)});
  ASSERT_TRUE(Res.ok());
  EXPECT_DOUBLE_EQ(Res.Ret.asF64(), std::sin(1.0));
}

TEST(Interpreter, IoNativesLogAndConsume) {
  DexBuilder B;
  NativeId Print = B.addNative("print", 1, false, /*DoesIO=*/true);
  NativeId Read = B.addNative("readInput", 0, true, /*DoesIO=*/true);
  MethodId M = B.declareFunction(InvalidId, "echo", 0, true);
  FunctionBuilder F = B.beginBody(M);
  RegIdx V = F.newReg();
  F.invokeNative(V, Read, {});
  F.invokeNative(NoReg, Print, {V});
  F.ret(V);
  B.endBody(F);
  VmEnv Env(B.build());

  Env.RT->inputQueue().push_back(42);
  CallResult R = Env.run("echo");
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Ret.asI64(), 42);
  ASSERT_EQ(Env.RT->ioLog().size(), 2u); // tag + payload
  EXPECT_EQ(Env.RT->ioLog()[1], 42);
  // Queue exhausted -> -1.
  EXPECT_EQ(Env.run("echo").Ret.asI64(), -1);
}

TEST(Interpreter, NativeCallsAreExpensive) {
  DexBuilder B;
  NativeId Sin = B.addNative("sin", 1, true);
  MethodId WithNative = B.declareFunction(InvalidId, "withNative", 1, true);
  {
    FunctionBuilder F = B.beginBody(WithNative);
    RegIdx R = F.newReg();
    F.invokeNative(R, Sin, {F.param(0)});
    F.ret(R);
    B.endBody(F);
  }
  MethodId Plain = B.declareFunction(InvalidId, "plain", 1, true);
  {
    FunctionBuilder F = B.beginBody(Plain);
    RegIdx R = F.newReg();
    F.addF(R, F.param(0), F.param(0));
    F.ret(R);
    B.endBody(F);
  }
  VmEnv Env(B.build());
  uint64_t NativeCycles =
      Env.run("withNative", {Value::fromF64(0.5)}).Cycles;
  uint64_t PlainCycles = Env.run("plain", {Value::fromF64(0.5)}).Cycles;
  EXPECT_GT(NativeCycles, PlainCycles + 100);
}

// --- Traps ---------------------------------------------------------------------

TEST(Traps, DivByZero) {
  DexBuilder B;
  MethodId M = B.declareFunction(InvalidId, "div", 2, true);
  FunctionBuilder F = B.beginBody(M);
  RegIdx R = F.newReg();
  F.divI(R, F.param(0), F.param(1));
  F.ret(R);
  B.endBody(F);
  VmEnv Env(B.build());

  EXPECT_EQ(Env.run("div", {Value::fromI64(10), Value::fromI64(2)})
                .Ret.asI64(),
            5);
  CallResult Res = Env.run("div", {Value::fromI64(10), Value::fromI64(0)});
  EXPECT_EQ(Res.Trap, TrapKind::DivByZero);
}

TEST(Traps, OutOfBounds) {
  DexBuilder B;
  MethodId M = B.declareFunction(InvalidId, "oob", 1, true);
  FunctionBuilder F = B.beginBody(M);
  RegIdx Arr = F.newReg(), Ten = F.immI(10), V = F.newReg();
  F.newArray(Arr, Ten, Type::I64);
  F.aload(V, Arr, F.param(0), Type::I64);
  F.ret(V);
  B.endBody(F);
  VmEnv Env(B.build());

  EXPECT_TRUE(Env.run("oob", {Value::fromI64(9)}).ok());
  EXPECT_EQ(Env.run("oob", {Value::fromI64(10)}).Trap,
            TrapKind::OutOfBounds);
  EXPECT_EQ(Env.run("oob", {Value::fromI64(-1)}).Trap,
            TrapKind::OutOfBounds);
}

TEST(Traps, NullPointer) {
  DexBuilder B;
  ClassId C = B.addClass("Box");
  FieldId Fd = B.addField(C, "v", Type::I64);
  MethodId M = B.declareFunction(InvalidId, "deref", 0, true);
  FunctionBuilder F = B.beginBody(M);
  RegIdx Obj = F.newReg(), V = F.newReg();
  F.constNull(Obj);
  F.getField(V, Obj, Fd);
  F.ret(V);
  B.endBody(F);
  VmEnv Env(B.build());

  EXPECT_EQ(Env.run("deref").Trap, TrapKind::NullPointer);
}

TEST(Traps, StackOverflow) {
  DexBuilder B;
  MethodId M = B.declareFunction(InvalidId, "inf", 0, true);
  FunctionBuilder F = B.beginBody(M);
  RegIdx R = F.newReg();
  F.invokeStatic(R, M, {});
  F.ret(R);
  B.endBody(F);
  VmEnv Env(B.build());

  EXPECT_EQ(Env.run("inf").Trap, TrapKind::StackOverflow);
}

TEST(Traps, TimeoutOnInfiniteLoop) {
  DexBuilder B;
  MethodId M = B.declareFunction(InvalidId, "spin", 0, false);
  FunctionBuilder F = B.beginBody(M);
  auto L = F.newLabel();
  F.bind(L);
  F.jump(L);
  F.retVoid();
  B.endBody(F);
  RuntimeConfig Config;
  Config.InsnBudget = 10000;
  VmEnv Env(B.build(), Config);

  CallResult R = Env.run("spin");
  EXPECT_EQ(R.Trap, TrapKind::Timeout);
  EXPECT_LE(R.Insns, 10001u);
}

TEST(Traps, OutOfMemory) {
  DexBuilder B;
  MethodId M = B.declareFunction(InvalidId, "hog", 0, false);
  FunctionBuilder F = B.beginBody(M);
  RegIdx Arr = F.newReg(), Big = F.immI(1 << 20);
  auto L = F.newLabel();
  F.bind(L);
  F.newArray(Arr, Big, Type::F64);
  F.jump(L);
  F.retVoid();
  B.endBody(F);
  RuntimeConfig Config;
  Config.HeapLimitBytes = 4 * 1024 * 1024;
  VmEnv Env(B.build(), Config);

  EXPECT_EQ(Env.run("hog").Trap, TrapKind::OutOfMemory);
}

// --- GC model -------------------------------------------------------------------

TEST(GcModel, LoopAllocationTriggersCollections) {
  DexBuilder B;
  MethodId M = B.declareFunction(InvalidId, "churn", 1, false);
  FunctionBuilder F = B.beginBody(M);
  RegIdx I = F.newReg(), One = F.immI(1), Arr = F.newReg(),
         Sz = F.immI(512);
  F.constI(I, 0);
  auto Head = F.newLabel(), Done = F.newLabel();
  F.bind(Head);
  F.ifGe(I, F.param(0), Done);
  F.newArray(Arr, Sz, Type::I64);
  F.addI(I, I, One);
  F.jump(Head);
  F.bind(Done);
  F.retVoid();
  B.endBody(F);

  RuntimeConfig Config;
  Config.HeapLimitBytes = 32 * 1024 * 1024;
  Config.GcThresholdBytes = 256 * 1024;
  VmEnv Env(B.build(), Config);

  // ~700 * 4KB+ allocations cross the 256KB threshold repeatedly.
  CallResult R = Env.run("churn", {Value::fromI64(700)});
  ASSERT_TRUE(R.ok());
  EXPECT_GE(Env.RT->heap().gcRuns(), 5u);
}

// --- Profiling / accounting ------------------------------------------------------

TEST(Profiling, MethodCyclesAccumulate) {
  DexBuilder B;
  defineSumTo(B);
  RuntimeConfig Config;
  Config.AttributeCycles = true;
  VmEnv Env(B.build(), Config);

  Env.run("sumTo", {Value::fromI64(500)});
  MethodId Id = Env.File.findMethod("sumTo");
  EXPECT_GT(Env.RT->methodCycles()[Id], 1000u);
  Env.RT->resetProfile();
  EXPECT_EQ(Env.RT->methodCycles()[Id], 0u);
}

TEST(Accounting, CyclesScaleWithWork) {
  DexBuilder B;
  defineSumTo(B);
  VmEnv Env(B.build());
  uint64_t Small = Env.run("sumTo", {Value::fromI64(10)}).Cycles;
  uint64_t Large = Env.run("sumTo", {Value::fromI64(1000)}).Cycles;
  EXPECT_GT(Large, Small * 20);
  EXPECT_EQ(Env.RT->totalCycles(), Small + Large);
}

TEST(Accounting, DeterministicAcrossRuns) {
  DexBuilder B;
  defineSumTo(B);
  DexFile File = B.build();
  auto RunOnce = [&File]() {
    os::AddressSpace Space;
    NativeRegistry Natives = NativeRegistry::standardLibrary();
    RuntimeConfig Config;
    Runtime::mapStandardLayout(Space, File, Config);
    Runtime RT(Space, File, Natives, Config);
    return RT.call(File.findMethod("sumTo"), {Value::fromI64(333)});
  };
  CallResult A = RunOnce(), B2 = RunOnce();
  EXPECT_EQ(A.Cycles, B2.Cycles);
  EXPECT_EQ(A.Insns, B2.Insns);
  EXPECT_EQ(A.Ret.asI64(), B2.Ret.asI64());
}

// --- Observer hooks -------------------------------------------------------------

namespace {

struct RecordingObserver : ExecObserver {
  std::vector<std::pair<uint32_t, ClassId>> Dispatches;
  std::vector<uint64_t> Writes;
  void onVirtualDispatch(MethodId, uint32_t Pc, ClassId Cls) override {
    Dispatches.emplace_back(Pc, Cls);
  }
  void onCellWrite(uint64_t Addr) override { Writes.push_back(Addr); }
};

} // namespace

TEST(Observer, SeesDispatchesAndWrites) {
  DexBuilder B;
  ClassId Base = B.addClass("Base");
  ClassId Derived = B.addClass("Derived", Base);
  MethodId V = B.declareVirtual(Base, "f", 1, true);
  MethodId DV = B.declareVirtual(Derived, "f", 1, true);
  for (MethodId Id : {V, DV}) {
    FunctionBuilder F = B.beginBody(Id);
    RegIdx R = F.immI(Id == V ? 1 : 2);
    F.ret(R);
    B.endBody(F);
  }
  MethodId Main = B.declareFunction(InvalidId, "main", 0, true);
  {
    FunctionBuilder F = B.beginBody(Main);
    RegIdx Obj = F.newReg(), R = F.newReg(), Arr = F.newReg(),
           Two = F.immI(2);
    F.newInstance(Obj, Derived);
    F.invokeVirtual(R, V, {Obj});
    F.newArray(Arr, Two, Type::I64);
    RegIdx Zero = F.immI(0);
    F.astore(Arr, Zero, R, Type::I64);
    F.ret(R);
    B.endBody(F);
  }
  VmEnv Env(B.build());
  RecordingObserver Obs;
  Env.RT->setObserver(&Obs);

  CallResult R = Env.run("main");
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Ret.asI64(), 2); // dispatched to Derived.f
  ASSERT_EQ(Obs.Dispatches.size(), 1u);
  EXPECT_EQ(Obs.Dispatches[0].second, Derived);
  EXPECT_FALSE(Obs.Writes.empty());
}

// --- mapStandardLayout ------------------------------------------------------------

TEST(Layout, StandardMappingsPresent) {
  DexBuilder B;
  defineSumTo(B);
  DexFile File = B.build();
  os::AddressSpace Space;
  RuntimeConfig Config;
  Runtime::mapStandardLayout(Space, File, Config);

  auto Maps = Space.procMaps();
  EXPECT_EQ(Maps.size(), 5u);
  EXPECT_TRUE(Space.isMapped(Layout::HeapBase));
  EXPECT_TRUE(Space.isMapped(Layout::RuntimeImageBase));
  EXPECT_TRUE(Space.isMapped(Layout::DataBase));
}

TEST(Layout, RuntimeImageDependsOnlyOnBootId) {
  DexBuilder B;
  defineSumTo(B);
  DexFile File = B.build();

  auto ImageBytes = [&File](uint64_t BootId) {
    os::AddressSpace Space;
    RuntimeConfig Config;
    Config.BootId = BootId;
    Runtime::mapStandardLayout(Space, File, Config);
    std::vector<uint8_t> Bytes(256);
    Space.peek(Layout::RuntimeImageBase, Bytes.data(), Bytes.size());
    return Bytes;
  };

  EXPECT_EQ(ImageBytes(1), ImageBytes(1));
  EXPECT_NE(ImageBytes(1), ImageBytes(2));
}
