//===- tests/HGraphTests.cpp - hgraph/ unit tests ---------------------------===//

#include "hgraph/AndroidCompiler.h"
#include "hgraph/Build.h"
#include "hgraph/Codegen.h"
#include "hgraph/Passes.h"
#include "tests/TestPrograms.h"
#include "vm/MachineUtil.h"

#include <gtest/gtest.h>

using namespace ropt;
using namespace ropt::dex;
using namespace ropt::hgraph;
using namespace ropt::testprogs;
using vm::MInsn;
using vm::MOpcode;

namespace {

/// Counts instructions with opcode \p Op across the graph.
size_t countOps(const HGraph &G, MOpcode Op) {
  size_t Count = 0;
  for (const HBlock &B : G.Blocks)
    for (const MInsn &I : B.Insns)
      Count += (I.Op == Op);
  return Count;
}

/// Runs `Name` interpreted and compiled-with-Android and expects identical
/// results plus a compiled-speedup.
void expectParityAndSpeedup(DexFile File, const std::string &Name,
                            std::vector<vm::Value> Args,
                            bool ExpectSpeedup = true) {
  MethodId Id = File.findMethod(Name);
  ASSERT_NE(Id, InvalidId);

  Harness Interp(File);
  Interp.RT->setMode(vm::ExecMode::InterpretOnly);
  vm::CallResult RInterp = Interp.RT->call(Id, Args);

  Harness Compiled(File);
  std::vector<MethodId> All;
  for (const auto &M : File.methods())
    if (!M.IsNative)
      All.push_back(M.Id);
  compileAllAndroid(File, All, Compiled.RT->codeCache());
  vm::CallResult RComp = Compiled.RT->call(Id, Args);

  ASSERT_EQ(RInterp.Trap, vm::TrapKind::None);
  ASSERT_EQ(RComp.Trap, vm::TrapKind::None);
  EXPECT_EQ(RInterp.Ret.Raw, RComp.Ret.Raw) << Name;
  if (ExpectSpeedup) {
    EXPECT_LT(RComp.Cycles, RInterp.Cycles) << Name;
  }
}

} // namespace

// --- Graph construction -------------------------------------------------------

TEST(Build, LoopShape) {
  DexBuilder B;
  defineSumTo(B);
  DexFile File = B.build();
  HGraph G = buildHGraph(File, File.findMethod("sumTo"));

  // Entry, loop header, body, exit — at least 3 blocks with a back edge.
  EXPECT_GE(G.Blocks.size(), 3u);
  bool HasBackEdge = false;
  for (const HBlock &Blk : G.Blocks)
    for (uint32_t Succ : Blk.Term.successors())
      if (G.Blocks[Succ].StartPc <= Blk.StartPc && &G.Blocks[Succ] != &Blk)
        HasBackEdge = true;
  EXPECT_TRUE(HasBackEdge);

  // Entry safepoint + back-edge safepoint.
  EXPECT_GE(countOps(G, MOpcode::MSafepoint), 2u);

  std::string Error;
  EXPECT_TRUE(G.verify(Error)) << Error;
}

TEST(Build, ChecksMaterialized) {
  DexBuilder B;
  defineDotProduct(B);
  DexFile File = B.build();
  HGraph G = buildHGraph(File, File.findMethod("dot"));

  EXPECT_GT(countOps(G, MOpcode::MCheckNull), 0u);
  EXPECT_GT(countOps(G, MOpcode::MCheckBounds), 0u);
  EXPECT_GT(countOps(G, MOpcode::MALoad), 0u);
  EXPECT_GT(countOps(G, MOpcode::MAStore), 0u);
}

TEST(Build, DivCheckMaterialized) {
  DexBuilder B;
  MethodId M = B.declareFunction(InvalidId, "d", 2, true);
  FunctionBuilder F = B.beginBody(M);
  RegIdx R = F.newReg();
  F.divI(R, F.param(0), F.param(1));
  F.ret(R);
  B.endBody(F);
  DexFile File = B.build();
  HGraph G = buildHGraph(File, M);
  EXPECT_EQ(countOps(G, MOpcode::MCheckDiv), 1u);
}

TEST(Build, PredsAndRpo) {
  DexBuilder B;
  defineSumTo(B);
  DexFile File = B.build();
  HGraph G = buildHGraph(File, File.findMethod("sumTo"));

  auto Rpo = G.reversePostOrder();
  EXPECT_EQ(Rpo.front(), 0u);
  // Every reachable block except entry has a predecessor.
  for (uint32_t Id : Rpo) {
    if (Id != 0) {
      EXPECT_FALSE(G.Blocks[Id].Preds.empty()) << "block " << Id;
    }
  }
}

TEST(Build, VirtualCallGetsNullCheck) {
  DexBuilder B;
  definePolyShapes(B);
  DexFile File = B.build();
  HGraph G = buildHGraph(File, File.findMethod("polyLoop"));
  EXPECT_GT(countOps(G, MOpcode::MCheckNull), 0u);
  EXPECT_EQ(countOps(G, MOpcode::MCallVirtual), 1u);
}

// --- Individual passes -----------------------------------------------------------

TEST(Passes, ConstantFoldingFoldsChains) {
  DexBuilder B;
  MethodId M = B.declareFunction(InvalidId, "c", 0, true);
  FunctionBuilder F = B.beginBody(M);
  RegIdx A = F.immI(6), Bv = F.immI(7), C = F.newReg();
  F.mulI(C, A, Bv);
  RegIdx D = F.newReg();
  F.addI(D, C, C);
  F.ret(D);
  B.endBody(F);
  DexFile File = B.build();
  HGraph G = buildHGraph(File, M);

  EXPECT_TRUE(constantFolding(G));
  // Both ALU ops folded to immediates.
  EXPECT_EQ(countOps(G, MOpcode::MMulI), 0u);
  EXPECT_EQ(countOps(G, MOpcode::MAddI), 0u);

  Harness H(File);
  H.RT->codeCache().install(emitMachine(G));
  EXPECT_EQ(H.run("c").Ret.asI64(), 84);
}

TEST(Passes, ConstantFoldingDoesNotFoldDivByZero) {
  DexBuilder B;
  MethodId M = B.declareFunction(InvalidId, "dz", 0, true);
  FunctionBuilder F = B.beginBody(M);
  RegIdx A = F.immI(6), Z = F.immI(0), C = F.newReg();
  F.divI(C, A, Z);
  F.ret(C);
  B.endBody(F);
  DexFile File = B.build();
  HGraph G = buildHGraph(File, M);

  constantFolding(G);
  EXPECT_EQ(countOps(G, MOpcode::MDivI), 1u);
  EXPECT_EQ(countOps(G, MOpcode::MCheckDiv), 1u);
}

TEST(Passes, SimplifierIdentities) {
  DexBuilder B;
  MethodId M = B.declareFunction(InvalidId, "s", 1, true);
  FunctionBuilder F = B.beginBody(M);
  RegIdx Zero = F.immI(0), One = F.immI(1);
  RegIdx T1 = F.newReg(), T2 = F.newReg(), T3 = F.newReg();
  F.addI(T1, F.param(0), Zero); // x + 0 -> x
  F.mulI(T2, T1, One);          // x * 1 -> x
  F.subI(T3, T2, T2);           // x - x -> 0
  F.addI(T3, T3, T2);
  F.ret(T3);
  B.endBody(F);
  DexFile File = B.build();
  HGraph G = buildHGraph(File, M);

  EXPECT_TRUE(instructionSimplifier(G));
  EXPECT_EQ(countOps(G, MOpcode::MMulI), 0u);
  EXPECT_EQ(countOps(G, MOpcode::MSubI), 0u);

  Harness H(File);
  H.RT->codeCache().install(emitMachine(G));
  EXPECT_EQ(H.run("s", {vm::Value::fromI64(9)}).Ret.asI64(), 9);
}

TEST(Passes, NullCheckEliminationDedupes) {
  DexBuilder B;
  MethodId M = B.declareFunction(InvalidId, "n", 1, true);
  FunctionBuilder F = B.beginBody(M);
  RegIdx Arr = F.newReg(), Ten = F.immI(10), V1 = F.newReg(),
         V2 = F.newReg(), Zero = F.immI(0), One = F.immI(1);
  F.newArray(Arr, Ten, Type::I64);
  F.aload(V1, Arr, Zero, Type::I64);
  F.aload(V2, Arr, One, Type::I64);
  F.addI(V1, V1, V2);
  F.ret(V1);
  B.endBody(F);
  DexFile File = B.build();
  HGraph G = buildHGraph(File, M);

  size_t Before = countOps(G, MOpcode::MCheckNull);
  EXPECT_TRUE(nullCheckElimination(G));
  // Array comes straight from an allocation: all null checks go away.
  EXPECT_LT(countOps(G, MOpcode::MCheckNull), Before);
  EXPECT_EQ(countOps(G, MOpcode::MCheckNull), 0u);
}

TEST(Passes, BoundsCheckEliminationDedupes) {
  DexBuilder B;
  MethodId M = B.declareFunction(InvalidId, "bc", 1, true);
  FunctionBuilder F = B.beginBody(M);
  RegIdx Arr = F.newReg(), Ten = F.immI(10), Zero = F.immI(0);
  RegIdx V1 = F.newReg(), V2 = F.newReg();
  F.newArray(Arr, Ten, Type::I64);
  F.aload(V1, Arr, Zero, Type::I64); // check (arr, 0)
  F.aload(V2, Arr, Zero, Type::I64); // duplicate check
  F.addI(V1, V1, V2);
  F.ret(V1);
  B.endBody(F);
  DexFile File = B.build();
  HGraph G = buildHGraph(File, M);

  EXPECT_EQ(countOps(G, MOpcode::MCheckBounds), 2u);
  EXPECT_TRUE(boundsCheckElimination(G));
  EXPECT_EQ(countOps(G, MOpcode::MCheckBounds), 1u);
}

TEST(Passes, LoadStoreForwarding) {
  DexBuilder B;
  ClassId C = B.addClass("Box");
  FieldId Fd = B.addField(C, "v", Type::I64);
  MethodId M = B.declareFunction(InvalidId, "ls", 1, true);
  FunctionBuilder F = B.beginBody(M);
  RegIdx Obj = F.newReg(), V = F.newReg();
  F.newInstance(Obj, C);
  F.putField(Obj, Fd, F.param(0));
  F.getField(V, Obj, Fd); // forwarded from the store
  F.ret(V);
  B.endBody(F);
  DexFile File = B.build();
  HGraph G = buildHGraph(File, M);

  EXPECT_TRUE(loadStoreElimination(G));
  EXPECT_EQ(countOps(G, MOpcode::MLoadSlot), 0u);

  Harness H(File);
  H.RT->codeCache().install(emitMachine(G));
  EXPECT_EQ(H.run("ls", {vm::Value::fromI64(77)}).Ret.asI64(), 77);
}

TEST(Passes, LocalValueNumberingReusesComputation) {
  DexBuilder B;
  MethodId M = B.declareFunction(InvalidId, "vn", 2, true);
  FunctionBuilder F = B.beginBody(M);
  RegIdx T1 = F.newReg(), T2 = F.newReg(), R = F.newReg();
  F.addI(T1, F.param(0), F.param(1));
  F.addI(T2, F.param(0), F.param(1)); // same value
  F.mulI(R, T1, T2);
  F.ret(R);
  B.endBody(F);
  DexFile File = B.build();
  HGraph G = buildHGraph(File, M);

  EXPECT_TRUE(localValueNumbering(G));
  EXPECT_EQ(countOps(G, MOpcode::MAddI), 1u);

  Harness H(File);
  H.RT->codeCache().install(emitMachine(G));
  EXPECT_EQ(
      H.run("vn", {vm::Value::fromI64(3), vm::Value::fromI64(4)}).Ret.asI64(),
      49);
}

TEST(Passes, DeadCodeEliminationRemovesOverwrittenDefs) {
  DexBuilder B;
  MethodId M = B.declareFunction(InvalidId, "dc", 1, true);
  FunctionBuilder F = B.beginBody(M);
  RegIdx T = F.newReg();
  F.constI(T, 1); // dead: overwritten below, never read
  F.constI(T, 2);
  F.addI(T, T, F.param(0));
  F.ret(T);
  B.endBody(F);
  DexFile File = B.build();
  HGraph G = buildHGraph(File, M);

  size_t Before = G.instructionCount();
  EXPECT_TRUE(localDeadCodeElimination(G));
  EXPECT_LT(G.instructionCount(), Before);

  Harness H(File);
  H.RT->codeCache().install(emitMachine(G));
  EXPECT_EQ(H.run("dc", {vm::Value::fromI64(10)}).Ret.asI64(), 12);
}

TEST(Passes, InlinerSplicesTinyCallee) {
  DexBuilder B;
  MethodId Callee = B.declareFunction(InvalidId, "twice", 1, true);
  {
    FunctionBuilder F = B.beginBody(Callee);
    RegIdx R = F.newReg();
    F.addI(R, F.param(0), F.param(0));
    F.ret(R);
    B.endBody(F);
  }
  MethodId Caller = B.declareFunction(InvalidId, "caller", 1, true);
  {
    FunctionBuilder F = B.beginBody(Caller);
    RegIdx R = F.newReg();
    F.invokeStatic(R, Callee, {F.param(0)});
    F.ret(R);
    B.endBody(F);
  }
  DexFile File = B.build();
  HGraph G = buildHGraph(File, Caller);

  EXPECT_TRUE(inlineTrivialCalls(G, File));
  EXPECT_EQ(countOps(G, MOpcode::MCallStatic), 0u);

  Harness H(File);
  H.RT->codeCache().install(emitMachine(G));
  EXPECT_EQ(H.run("caller", {vm::Value::fromI64(21)}).Ret.asI64(), 42);
}

// --- Full pipeline: differential semantics + performance -------------------------

TEST(AndroidCompiler, ParitySumTo) {
  DexBuilder B;
  defineSumTo(B);
  expectParityAndSpeedup(B.build(), "sumTo", {vm::Value::fromI64(500)});
}

TEST(AndroidCompiler, ParityDotProduct) {
  DexBuilder B;
  defineDotProduct(B);
  expectParityAndSpeedup(B.build(), "dot", {vm::Value::fromI64(200)});
}

TEST(AndroidCompiler, ParityPolyShapes) {
  DexBuilder B;
  definePolyShapes(B);
  expectParityAndSpeedup(B.build(), "polyLoop", {vm::Value::fromI64(100)});
}

TEST(AndroidCompiler, ParityMathNatives) {
  DexBuilder B;
  defineMathMix(B);
  expectParityAndSpeedup(B.build(), "mathMix", {vm::Value::fromF64(0.7)},
                         /*ExpectSpeedup=*/false);
}

TEST(AndroidCompiler, ParityMatrixSum) {
  DexBuilder B;
  defineMatrixSum(B);
  expectParityAndSpeedup(B.build(), "matSum", {vm::Value::fromI64(24)});
}

TEST(AndroidCompiler, CompiledIsMuchFasterThanInterpreter) {
  DexBuilder B;
  defineSumTo(B);
  DexFile File = B.build();
  MethodId Id = File.findMethod("sumTo");

  Harness H(File);
  vm::CallResult Interp = H.RT->call(Id, {vm::Value::fromI64(2000)});
  compileAllAndroid(File, {Id}, H.RT->codeCache());
  vm::CallResult Comp = H.RT->call(Id, {vm::Value::fromI64(2000)});
  EXPECT_EQ(Interp.Ret.asI64(), Comp.Ret.asI64());
  // The interpreter pays dispatch per bytecode; expect >= 3x.
  EXPECT_GT(Interp.Cycles, 3 * Comp.Cycles);
}

TEST(AndroidCompiler, RefusesUncompilable) {
  DexBuilder B;
  MethodId M =
      B.declareFunction(InvalidId, "weird", 0, true, MF_Uncompilable);
  FunctionBuilder F = B.beginBody(M);
  RegIdx R = F.immI(5);
  F.ret(R);
  B.endBody(F);
  DexFile File = B.build();
  EXPECT_EQ(compileMethodAndroid(File, M), nullptr);
}

TEST(AndroidCompiler, PipelineShrinksCode) {
  DexBuilder B;
  defineMatrixSum(B);
  DexFile File = B.build();
  HGraph G = buildHGraph(File, File.findMethod("matSum"));
  size_t Before = G.instructionCount();
  runAndroidPipeline(G, File);
  EXPECT_LE(G.instructionCount(), Before);
}

// --- Codegen ----------------------------------------------------------------------

TEST(Codegen, BranchTargetsValid) {
  DexBuilder B;
  defineMatrixSum(B);
  DexFile File = B.build();
  HGraph G = buildHGraph(File, File.findMethod("matSum"));
  auto Fn = emitMachine(G);

  for (const MInsn &I : Fn->Code)
    if (vm::isMBranch(I.Op) || I.Op == MOpcode::MGuardClass) {
      EXPECT_GE(I.Target, 0);
      EXPECT_LT(static_cast<size_t>(I.Target), Fn->Code.size());
    }
}

TEST(Codegen, RegisterCompactionKeepsSemantics) {
  DexBuilder B;
  // Lots of registers: force a spill-prone function.
  MethodId M = B.declareFunction(InvalidId, "fat", 1, true);
  FunctionBuilder F = B.beginBody(M);
  std::vector<RegIdx> Regs;
  for (int I = 0; I != 30; ++I) {
    RegIdx R = F.newReg();
    F.constI(R, I);
    Regs.push_back(R);
  }
  RegIdx Acc = F.newReg();
  F.constI(Acc, 0);
  for (RegIdx R : Regs)
    F.addI(Acc, Acc, R);
  F.ret(Acc);
  B.endBody(F);
  DexFile File = B.build();
  HGraph G = buildHGraph(File, M);

  auto FnFreq = emitMachine(G, RegAllocKind::Frequency);
  auto FnNone = emitMachine(G, RegAllocKind::None);

  Harness H1(File);
  H1.RT->codeCache().install(FnFreq);
  Harness H2(File);
  H2.RT->codeCache().install(FnNone);
  vm::CallResult R1 = H1.run("fat", {vm::Value::fromI64(0)});
  vm::CallResult R2 = H2.run("fat", {vm::Value::fromI64(0)});
  EXPECT_EQ(R1.Ret.asI64(), 435);
  EXPECT_EQ(R2.Ret.asI64(), 435);
  // Compaction reduces spill traffic.
  EXPECT_LE(R1.Cycles, R2.Cycles);
}

TEST(Codegen, UnreachableBlocksDropped) {
  DexBuilder B;
  MethodId M = B.declareFunction(InvalidId, "u", 1, true);
  FunctionBuilder F = B.beginBody(M);
  auto Exit = F.newLabel();
  F.jump(Exit);
  // Unreachable garbage between the jump and the target.
  RegIdx T = F.newReg();
  F.constI(T, 999);
  F.ret(T);
  F.bind(Exit);
  F.ret(F.param(0));
  B.endBody(F);
  DexFile File = B.build();
  HGraph G = buildHGraph(File, M);
  auto Fn = emitMachine(G);

  Harness H(File);
  H.RT->codeCache().install(Fn);
  EXPECT_EQ(H.run("u", {vm::Value::fromI64(3)}).Ret.asI64(), 3);
}
