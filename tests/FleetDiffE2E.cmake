# End-to-end check of the fleet-aware report diff gate (invoked by ctest
# as the `fleet_diff_e2e` test):
#
#   1. BASE: fleet_scale --fast --seed 1 --rounds 2 --report base
#      REG:  fleet_scale --fast --seed 1 --rounds 1 --report reg
#      At seed 1 the extra step improves only the 4-device cell
#      (deterministically, by ~1%); the 1-device cell is byte-identical.
#   2. ropt-report fleet reg --baseline base --threshold 0.005
#        -> exits 1, flags FLEET REGRESSION exactly once (the x4 cell)
#   3. ropt-report fleet base --baseline reg --threshold 0.005
#        -> the improved direction exits 0, no regressions
#   4. ropt-report diff base reg (default thresholds)
#        -> the 1% wobble is below the fleet gate's default, exits 0
#
# Inputs: -DFLEET_SCALE=..., -DROPT_REPORT=..., -DWORK_DIR=...

foreach(Var FLEET_SCALE ROPT_REPORT WORK_DIR)
  if(NOT DEFINED ${Var})
    message(FATAL_ERROR "missing -D${Var}=...")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")
set(Base "${WORK_DIR}/base")
set(Reg "${WORK_DIR}/reg")

execute_process(
  COMMAND ${FLEET_SCALE} --fast --seed 1 --rounds 2 --report ${Base}
  RESULT_VARIABLE Rc OUTPUT_QUIET)
if(NOT Rc EQUAL 0)
  message(FATAL_ERROR "fleet_scale --rounds 2 --report ${Base} failed (${Rc})")
endif()
execute_process(
  COMMAND ${FLEET_SCALE} --fast --seed 1 --rounds 1 --report ${Reg}
  RESULT_VARIABLE Rc OUTPUT_QUIET)
if(NOT Rc EQUAL 0)
  message(FATAL_ERROR "fleet_scale --rounds 1 --report ${Reg} failed (${Rc})")
endif()

# Regressed direction: the gate must fire, exactly once.
execute_process(
  COMMAND ${ROPT_REPORT} fleet ${Reg} --baseline ${Base} --threshold 0.005
  RESULT_VARIABLE Rc OUTPUT_VARIABLE Out ERROR_VARIABLE Err)
if(NOT Rc EQUAL 1)
  message(FATAL_ERROR "fleet diff gate did not fire on a regressed run "
                      "(exit ${Rc}):\n${Out}${Err}")
endif()
if(NOT Out MATCHES "fleet regressions: 1")
  message(FATAL_ERROR "expected exactly one fleet regression:\n${Out}")
endif()
string(REGEX MATCHALL "FLEET REGRESSION" Fires "${Out}")
list(LENGTH Fires FireCount)
if(NOT FireCount EQUAL 1)
  message(FATAL_ERROR "expected exactly one FLEET REGRESSION line, got "
                      "${FireCount}:\n${Out}")
endif()

# Improved direction: clean exit, no regressions.
execute_process(
  COMMAND ${ROPT_REPORT} fleet ${Base} --baseline ${Reg} --threshold 0.005
  RESULT_VARIABLE Rc OUTPUT_VARIABLE Out ERROR_VARIABLE Err)
if(NOT Rc EQUAL 0)
  message(FATAL_ERROR "fleet diff gate fired on an improved run "
                      "(exit ${Rc}):\n${Out}${Err}")
endif()
if(NOT Out MATCHES "fleet regressions: 0")
  message(FATAL_ERROR "improved direction should report zero "
                      "regressions:\n${Out}")
endif()

# The general diff subcommand now carries the fleet gate too; at the
# default (generous) fleet threshold the 1% wobble stays clean.
execute_process(
  COMMAND ${ROPT_REPORT} diff ${Base} ${Reg}
  RESULT_VARIABLE Rc OUTPUT_VARIABLE Out ERROR_VARIABLE Err)
if(NOT Rc EQUAL 0)
  message(FATAL_ERROR "diff regressed at default thresholds "
                      "(exit ${Rc}):\n${Out}${Err}")
endif()
if(NOT Out MATCHES "fleet regressions: 0")
  message(FATAL_ERROR "diff output lacks the fleet regression count:\n${Out}")
endif()

message(STATUS "fleet_diff_e2e: gate fires exactly once on the regressed "
               "cell, stays quiet on the improved direction and at "
               "default thresholds")
