//===- bench/fig08_code_breakdown.cpp - Figure 8 -------------------------------===//
//
// Runtime code breakdown per application, attributed online by the
// profiler. Paper: Compiled avg 57% (14-81%); JNI up to 62% (avg 29% of
// interactive apps); Unreplayable ~4%; the rest Cold/Uncompilable.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "support/Format.h"

using namespace ropt;
using namespace ropt::bench;

int main(int Argc, char **Argv) {
  Options Opt = parseArgs(Argc, Argv);
  core::PipelineConfig Config = pipelineConfig(Opt);

  printHeader("Figure 8: runtime code breakdown (sampling profile)",
              "Compiled avg ~57% (14-81%); interactive JNI avg ~29% (up "
              "to 62%); Unreplayable ~4%; remainder Cold/Uncompilable");

  std::printf("%-22s %-11s %6s %6s %6s %7s %7s\n", "application", "suite",
              "Comp", "Cold", "JNI", "Unrepl", "Uncomp");
  printRule(72);

  CsvSink Csv(Opt, "fig08_code_breakdown.csv",
              "app,suite,compiled,cold,jni,unreplayable,uncompilable");
  double SumCompiled = 0, SumJniInteractive = 0, SumUnrepl = 0;
  int N = 0, NInteractive = 0;
  for (const workloads::Application &App : selectedApps(Opt)) {
    core::IterativeCompiler Pipeline(Config);
    core::IterativeCompiler::ProfiledApp P = Pipeline.profileApp(App);
    const profiler::CodeBreakdown &B = P.Breakdown;
    std::printf("%-22s %-11s %5.0f%% %5.0f%% %5.0f%% %6.0f%% %6.0f%%\n",
                App.Name.c_str(), workloads::suiteName(App.Kind),
                100 * B.Compiled, 100 * B.Cold, 100 * B.Jni,
                100 * B.Unreplayable, 100 * B.Uncompilable);
    Csv.row(format("%s,%s,%.4f,%.4f,%.4f,%.4f,%.4f", App.Name.c_str(),
                   workloads::suiteName(App.Kind), B.Compiled, B.Cold,
                   B.Jni, B.Unreplayable, B.Uncompilable));
    SumCompiled += B.Compiled;
    SumUnrepl += B.Unreplayable;
    ++N;
    if (App.Kind == workloads::Suite::Interactive) {
      SumJniInteractive += B.Jni;
      ++NInteractive;
    }
  }
  printRule(72);
  if (N) {
    std::printf("Compiled average: %.0f%% (paper ~57%%)\n",
                100 * SumCompiled / N);
    std::printf("Unreplayable average: %.1f%% (paper ~4%%)\n",
                100 * SumUnrepl / N);
  }
  if (NInteractive)
    std::printf("Interactive JNI average: %.0f%% (paper ~29%%)\n",
                100 * SumJniInteractive / NInteractive);
  return 0;
}
