//===- bench/fig09_ga_evolution.cpp - Figure 9 ---------------------------------===//
//
// Best/worst genome evolution over the GA's evaluations per application
// (speedup over Android, hot region only, via replay). Paper: all programs
// improve over the search; worst genomes reach ~10x slowdowns; sub-optimal
// genomes keep appearing well past the early generations.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "support/Format.h"

#include <algorithm>

using namespace ropt;
using namespace ropt::bench;

int main(int Argc, char **Argv) {
  Options Opt = parseArgs(Argc, Argv);
  core::PipelineConfig Config = pipelineConfig(Opt);
  beginObservability(Opt);
  ReportScope Report(Opt, "fig09_ga_evolution", Config);

  printHeader("Figure 9: GA evolution of best/worst genomes (region "
              "replays, speedup vs Android)",
              "best improves over generations for nearly all apps; worst "
              "valid genomes reach ~10x slowdowns; invalid genomes keep "
              "being tried late into the search");

  CsvSink Csv(Opt, "fig09_ga_evolution.csv",
              "app,gen,evals,gen_best,gen_worst_valid,gen_mean,invalid");
  for (const workloads::Application &App : selectedApps(Opt)) {
    Report.beginApp(App.Name);
    core::IterativeCompiler Pipeline(Config);
    core::OptimizationReport R = Pipeline.optimize(App);
    Report.endApp(R);
    if (!R.Succeeded) {
      std::printf("%s: FAILED (%s)\n\n", App.Name.c_str(),
                  R.FailureReason.c_str());
      continue;
    }

    std::printf("%s  (android region median: %.0f cycles)\n",
                App.Name.c_str(), R.RegionAndroid);
    std::printf("%6s %6s %10s %10s %9s %8s %8s\n", "gen", "evals", "best",
                "worst-valid", "mean", "invalid", "best-so-far?");
    printRule(66);

    // The search's own generation log (GaTrace::Generations) is the
    // authoritative per-generation accounting; no re-derivation from the
    // raw evaluation stream.
    double BestSoFar = 0.0;
    int TotalEvals = 0;
    for (const search::GenerationStats &S : R.Trace.Generations) {
      TotalEvals += S.Evaluations;
      if (S.Evaluations == 0)
        continue;
      double GenBest = S.valid() ? R.RegionAndroid / S.BestCycles : 0.0;
      double GenWorst = S.valid() ? R.RegionAndroid / S.WorstCycles : 0.0;
      double GenMean = S.valid() ? R.RegionAndroid / S.MeanCycles : 0.0;
      bool ImprovedHere = GenBest > BestSoFar;
      if (ImprovedHere)
        BestSoFar = GenBest;
      std::printf("%6d %6d %9.2fx %9.2fx %8.2fx %8d %8s\n", S.Generation,
                  TotalEvals, GenBest, GenWorst, GenMean, S.Invalid,
                  ImprovedHere ? "improved" : "");
      Csv.row(format("%s,%d,%d,%.4f,%.4f,%.4f,%d", App.Name.c_str(),
                     S.Generation, TotalEvals, GenBest, GenWorst, GenMean,
                     S.Invalid));
    }
    printRule(66);
    std::printf("final best: %.2fx over Android  [%s]\n",
                R.RegionAndroid / R.RegionBest, R.Best.G.name().c_str());
    std::printf("discarded during search: %d compile errors, %d crashes, "
                "%d timeouts, %d wrong outputs (none reached a user)\n\n",
                R.Counters.CompileError, R.Counters.RuntimeCrash,
                R.Counters.RuntimeTimeout, R.Counters.WrongOutput);
    std::fflush(stdout);
  }
  finishObservability(Opt);
  return 0;
}
