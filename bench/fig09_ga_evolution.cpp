//===- bench/fig09_ga_evolution.cpp - Figure 9 ---------------------------------===//
//
// Best/worst genome evolution over the GA's evaluations per application
// (speedup over Android, hot region only, via replay). Paper: all programs
// improve over the search; worst genomes reach ~10x slowdowns; sub-optimal
// genomes keep appearing well past the early generations.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "support/Format.h"

#include <algorithm>

using namespace ropt;
using namespace ropt::bench;

int main(int Argc, char **Argv) {
  Options Opt = parseArgs(Argc, Argv);
  core::PipelineConfig Config = pipelineConfig(Opt);

  printHeader("Figure 9: GA evolution of best/worst genomes (region "
              "replays, speedup vs Android)",
              "best improves over generations for nearly all apps; worst "
              "valid genomes reach ~10x slowdowns; invalid genomes keep "
              "being tried late into the search");

  CsvSink Csv(Opt, "fig09_ga_evolution.csv",
              "app,gen,evals,gen_best,gen_worst_valid,invalid");
  for (const workloads::Application &App : selectedApps(Opt)) {
    core::IterativeCompiler Pipeline(Config);
    core::OptimizationReport R = Pipeline.optimize(App);
    if (!R.Succeeded) {
      std::printf("%s: FAILED (%s)\n\n", App.Name.c_str(),
                  R.FailureReason.c_str());
      continue;
    }

    std::printf("%s  (android region median: %.0f cycles)\n",
                App.Name.c_str(), R.RegionAndroid);
    std::printf("%6s %6s %10s %10s %8s %8s\n", "gen", "evals",
                "best", "worst-valid", "invalid", "best-so-far?");
    printRule(56);

    int LastGen = 0;
    for (const search::TraceEntry &T : R.Trace.Evaluations)
      LastGen = std::max(LastGen, T.Generation);

    double BestSoFar = 0.0;
    int TotalEvals = 0;
    for (int Gen = 0; Gen <= LastGen; ++Gen) {
      double GenBest = 0.0, GenWorst = 1e18;
      int Invalid = 0, Count = 0;
      bool ImprovedHere = false;
      for (const search::TraceEntry &T : R.Trace.Evaluations) {
        if (T.Generation != Gen)
          continue;
        ++Count;
        if (!T.Valid) {
          ++Invalid;
          continue;
        }
        double Speedup = R.RegionAndroid / T.MedianCycles;
        if (Speedup > GenBest)
          GenBest = Speedup;
        if (Speedup < GenWorst)
          GenWorst = Speedup;
        if (Speedup > BestSoFar) {
          BestSoFar = Speedup;
          ImprovedHere = true;
        }
      }
      TotalEvals += Count;
      if (Count == 0)
        continue;
      std::printf("%6d %6d %9.2fx %9.2fx %8d %8s\n", Gen, TotalEvals,
                  GenBest, GenWorst >= 1e17 ? 0.0 : GenWorst, Invalid,
                  ImprovedHere ? "improved" : "");
      Csv.row(format("%s,%d,%d,%.4f,%.4f,%d", App.Name.c_str(), Gen,
                     TotalEvals, GenBest,
                     GenWorst >= 1e17 ? 0.0 : GenWorst, Invalid));
    }
    printRule(56);
    std::printf("final best: %.2fx over Android  [%s]\n",
                R.RegionAndroid / R.RegionBest, R.Best.G.name().c_str());
    std::printf("discarded during search: %d compile errors, %d crashes, "
                "%d timeouts, %d wrong outputs (none reached a user)\n\n",
                R.Counters.CompileError, R.Counters.RuntimeCrash,
                R.Counters.RuntimeTimeout, R.Counters.WrongOutput);
    std::fflush(stdout);
  }
  return 0;
}
