//===- bench/abl_devirt.cpp - Section 3.4's devirtualization ablation -------===//
//
// Speculative devirtualization driven by the interpreted replay's type
// profile: guard + direct call, then inlining of the devirtualized callee.
// Reversi's strategy objects are 90% monomorphic — the pass's home turf.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

using namespace ropt;
using namespace ropt::bench;

int main(int Argc, char **Argv) {
  Options Opt = parseArgs(Argc, Argv);
  core::PipelineConfig Config = pipelineConfig(Opt);

  printHeader("Ablation: profile-guided speculative devirtualization "
              "(Reversi)",
              "replay type profiles enable guarded direct calls and "
              "inlining of virtual call sites");

  workloads::Application App = workloads::buildByName("Reversi Android");
  core::IterativeCompiler Pipeline(Config);
  core::IterativeCompiler::ProfiledApp P = Pipeline.profileApp(App);
  auto Captured = Pipeline.captureRegion(*P.Instance, *P.Region);
  if (!Captured) {
    std::fprintf(stderr, "capture failed\n");
    return 1;
  }
  std::printf("type-profile sites recorded by the interpreted replay: "
              "%zu\n\n",
              Captured->Profile.siteCount());

  core::RegionEvaluator Eval(App, *P.Region, Captured->Cap, Captured->Map,
                             Captured->Profile, Config);
  double Android = Eval.evaluateAndroid().MedianCycles;

  auto Mk = [](lir::PassId Id, int Param = 0) {
    lir::PassInstance X;
    X.Id = Id;
    X.IntParam = Param;
    return X;
  };
  auto Show = [&](const char *Name,
                  const std::vector<lir::PassInstance> &Pipe) {
    search::Evaluation E = Eval.evaluatePipeline(Pipe);
    if (E.ok())
      std::printf("%-34s %12.0f cycles  %6.2fx vs Android\n", Name,
                  E.MedianCycles, Android / E.MedianCycles);
    else
      std::printf("%-34s %s\n", Name, search::evalKindName(E.Kind));
  };

  std::printf("%-34s %12.0f cycles  %6.2fx\n", "Android compiler", Android,
              1.0);
  Show("-O2 (no devirt)", lir::o2Pipeline());
  {
    auto Pipe = lir::o2Pipeline();
    Pipe.push_back(Mk(lir::PassId::Devirtualize, 80));
    Show("-O2 + devirt (80% threshold)", Pipe);
  }
  {
    auto Pipe = lir::o2Pipeline();
    Pipe.push_back(Mk(lir::PassId::Devirtualize, 80));
    Pipe.push_back(Mk(lir::PassId::Inline, 80));
    Pipe.push_back(Mk(lir::PassId::SimplifyCfg));
    Pipe.push_back(Mk(lir::PassId::Gvn));
    Pipe.push_back(Mk(lir::PassId::Dce));
    Show("-O2 + devirt + inline", Pipe);
  }
  {
    auto Pipe = lir::o2Pipeline();
    Pipe.push_back(Mk(lir::PassId::Devirtualize, 99));
    Show("-O2 + devirt (99%: refuses)", Pipe);
  }
  return 0;
}
