//===- bench/abl_critical_path.cpp - Criticality-weighted budget ablation -===//
//
// The observability loop (DESIGN.md §13) ranks an app's candidate hot
// regions by profiled cycles, labels each region's bottleneck, and scales
// the GA budget quadratically by criticality: the slack-0 region keeps
// the paper's full search untouched while cooler regions get shrunken,
// bottleneck-pruned searches. This ablation optimizes *every* candidate
// region of each app twice with the same seed — once with the uniform
// full budget per region, once analysis-guided — and reports the
// evaluations each arm spent and the best speedup each found. Because the
// critical region's search is bit-identical in both arms, the weighted
// arm's best speedup can never be worse; the question the table answers
// is how much of the uniform budget it needed.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

using namespace ropt;
using namespace ropt::bench;

int main(int Argc, char **Argv) {
  Options Opt = parseArgs(Argc, Argv);
  core::PipelineConfig BaseConfig = pipelineConfig(Opt);
  beginObservability(Opt);
  ReportScope Report(Opt, "abl_critical_path", BaseConfig);

  printHeader("Ablation: criticality-weighted search budget (DESIGN.md §13)",
              "equal best speedup (the critical region's search is "
              "bit-identical) at a fraction of the uniform evaluations");

  std::printf("%-18s %7s | %9s %9s %6s | %11s %11s %5s\n", "app", "regions",
              "uniform", "weighted", "ratio", "crit@unif", "crit@wght",
              "ok");

  std::vector<std::string> Apps = {"FFT", "SOR", "Sieve", "Dhrystone",
                                   "Reversi Android"};
  if (Opt.Fast)
    Apps = {"FFT", "Sieve"};

  CsvSink Csv(Opt, "abl_critical_path.csv",
              "app,regions,evals_uniform,evals_weighted,ratio_pct,"
              "best_uniform,best_weighted,equal_or_better");

  uint64_t TotalUniform = 0, TotalWeighted = 0;
  int Rows = 0, EqualOrBetter = 0;
  for (const std::string &Name : Apps) {
    workloads::Application App = workloads::buildByName(Name);

    // Enumerate the candidate regions once, from the same deterministic
    // profile both arms will re-derive.
    core::IterativeCompiler Probe(pipelineConfig(Opt));
    core::IterativeCompiler::ProfiledApp Profiled = Probe.profileApp(App);
    analysis::AppAnalysis Analysis =
        analysis::analyzeApp(*App.File, Profiled.Profile, Profiled.RA);
    if (Analysis.empty()) {
      std::printf("%-18s no candidate regions\n", Name.c_str());
      continue;
    }

    // One pipeline run per (arm, region). The arm's best speedup is the
    // *critical* region's — that is the binary the real pipeline
    // installs (optimize() without a forced root searches exactly that
    // region); cool-region searches are exploratory and their
    // region-local speedups apply to far fewer cycles.
    auto RunArm = [&](bool Guided, uint64_t &Evals, double &BestSpeedup) {
      bool Ok = true;
      for (size_t I = 0; I != Analysis.Regions.size(); ++I) {
        const analysis::RegionReport &Region = Analysis.Regions[I];
        core::PipelineConfig Config = pipelineConfig(Opt);
        Config.Search.AnalysisGuided = Guided;
        Config.ForceRegionRoot = Region.Root;
        Config.Provenance = Report.report();
        Report.beginApp(Name + (Guided ? "@weighted#" : "@uniform#") +
                        std::to_string(I));
        core::IterativeCompiler Pipeline(Config);
        core::OptimizationReport R = Pipeline.optimize(App);
        Report.endApp(R);
        if (!R.Succeeded) {
          Ok = false;
          continue;
        }
        Evals += static_cast<uint64_t>(R.Counters.total());
        if (I == 0 && R.RegionBest > 0.0)
          BestSpeedup = R.RegionAndroid / R.RegionBest;
      }
      return Ok;
    };

    uint64_t EvalsUniform = 0, EvalsWeighted = 0;
    double BestUniform = 0.0, BestWeighted = 0.0;
    bool OkU = RunArm(false, EvalsUniform, BestUniform);
    bool OkW = RunArm(true, EvalsWeighted, BestWeighted);
    if (!OkU || !OkW || EvalsUniform == 0) {
      std::printf("%-18s pipeline failed on a region\n", Name.c_str());
      continue;
    }

    double Ratio = 100.0 * static_cast<double>(EvalsWeighted) /
                   static_cast<double>(EvalsUniform);
    bool Equal = BestWeighted >= BestUniform - 1e-12;

    std::printf("%-18s %7zu | %9llu %9llu %5.1f%% | %11.3f %11.3f %5s\n",
                Name.c_str(), Analysis.Regions.size(),
                static_cast<unsigned long long>(EvalsUniform),
                static_cast<unsigned long long>(EvalsWeighted), Ratio,
                BestUniform, BestWeighted, Equal ? "yes" : "NO");
    Csv.row(Name + "," + std::to_string(Analysis.Regions.size()) + "," +
            std::to_string(EvalsUniform) + "," +
            std::to_string(EvalsWeighted) + "," + std::to_string(Ratio) +
            "," + std::to_string(BestUniform) + "," +
            std::to_string(BestWeighted) + "," + (Equal ? "1" : "0"));

    TotalUniform += EvalsUniform;
    TotalWeighted += EvalsWeighted;
    EqualOrBetter += Equal ? 1 : 0;
    ++Rows;
  }

  if (Rows) {
    double TotalRatio = TotalUniform
                            ? 100.0 * static_cast<double>(TotalWeighted) /
                                  static_cast<double>(TotalUniform)
                            : 0.0;
    std::printf("\ntotal evaluations: uniform %llu, weighted %llu "
                "(%.1f%% of uniform); equal-or-better best speedup on "
                "%d/%d apps\n",
                static_cast<unsigned long long>(TotalUniform),
                static_cast<unsigned long long>(TotalWeighted), TotalRatio,
                EqualOrBetter, Rows);
    std::printf("(the slack-0 region keeps the full budget and the whole "
                "pass space, so the weighted arm's winner there is the "
                "same genome; savings come from quadratically shrunken "
                "cool-region searches)\n");
  }
  finishObservability(Opt);
  return 0;
}
