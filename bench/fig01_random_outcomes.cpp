//===- bench/fig01_random_outcomes.cpp - Figure 1 ---------------------------===//
//
// Compilation outcome of random optimization sequences for the FFT kernel:
// the paper reports ~15% compiler crash/timeout, ~25% runtime-visible
// errors (crash, timeout, wrong output), ~60% correct — the reason online
// search is unacceptable.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "support/Format.h"
#include "core/OnlineEvaluator.h"

using namespace ropt;
using namespace ropt::bench;

int main(int Argc, char **Argv) {
  Options Opt = parseArgs(Argc, Argv);
  int Count = Opt.Evaluations ? Opt.Evaluations : 100;

  printHeader("Figure 1: outcomes of random optimization sequences (FFT)",
              "~15% compiler error/timeout; ~25% runtime crash/timeout/"
              "wrong output; ~60% correct");

  core::OnlineEvaluator Eval(workloads::buildByName("FFT"),
                             pipelineConfig(Opt));
  if (!Eval.ready()) {
    std::fprintf(stderr, "setup failed\n");
    return 1;
  }
  core::OutcomeHistogram H = Eval.classifyRandomSequences(Count);

  auto Pct = [&](int N) {
    return 100.0 * N / static_cast<double>(H.total());
  };
  CsvSink Csv(Opt, "fig01_random_outcomes.csv", "outcome,count,share");
  Csv.row(format("compiler_error,%d,%.4f", H.CompilerError,
                 Pct(H.CompilerError) / 100));
  Csv.row(format("runtime_crash,%d,%.4f", H.RuntimeCrash,
                 Pct(H.RuntimeCrash) / 100));
  Csv.row(format("runtime_timeout,%d,%.4f", H.RuntimeTimeout,
                 Pct(H.RuntimeTimeout) / 100));
  Csv.row(format("wrong_output,%d,%.4f", H.WrongOutput,
                 Pct(H.WrongOutput) / 100));
  Csv.row(format("correct,%d,%.4f", H.Correct, Pct(H.Correct) / 100));
  std::printf("%-28s %6s %7s\n", "outcome", "count", "share");
  printRule(44);
  std::printf("%-28s %6d %6.1f%%\n", "compiler error/timeout",
              H.CompilerError, Pct(H.CompilerError));
  std::printf("%-28s %6d %6.1f%%\n", "runtime crash", H.RuntimeCrash,
              Pct(H.RuntimeCrash));
  std::printf("%-28s %6d %6.1f%%\n", "runtime timeout", H.RuntimeTimeout,
              Pct(H.RuntimeTimeout));
  std::printf("%-28s %6d %6.1f%%\n", "wrong output", H.WrongOutput,
              Pct(H.WrongOutput));
  std::printf("%-28s %6d %6.1f%%\n", "correct output", H.Correct,
              Pct(H.Correct));
  printRule(44);
  int RuntimeVisible = H.RuntimeCrash + H.RuntimeTimeout + H.WrongOutput;
  std::printf("%-28s %6d %6.1f%%  (paper: ~25%%)\n",
              "runtime-visible errors", RuntimeVisible,
              Pct(RuntimeVisible));
  std::printf("\nEvery non-correct row would have reached the user under "
              "online search.\n");
  return 0;
}
