//===- bench/abl_regalloc.cpp - Register-allocation strategy ablation -------===//
//
// The genome's register-allocation gene picks one of four strategies.
// This ablation isolates that axis: the same -O2 mid-level pipeline under
// each allocator, on a register-hungry kernel (FFT) and a branchy game
// (Reversi). Spills cost SpillTouchCycles per touch, so the allocator
// choice shows up directly in region cycles.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

using namespace ropt;
using namespace ropt::bench;

int main(int Argc, char **Argv) {
  Options Opt = parseArgs(Argc, Argv);
  core::PipelineConfig Config = pipelineConfig(Opt);

  printHeader("Ablation: register allocation strategies under -O2",
              "live-interval allocation wins; keeping virtual numbering "
              "drowns the kernel in spill traffic");

  struct Strategy {
    hgraph::RegAllocKind Kind;
    const char *Name;
  };
  const Strategy Strategies[] = {
      {hgraph::RegAllocKind::LinearScan, "linear-scan"},
      {hgraph::RegAllocKind::Frequency, "frequency"},
      {hgraph::RegAllocKind::FirstUse, "first-use"},
      {hgraph::RegAllocKind::None, "none (virtual)"},
  };

  std::vector<std::string> Apps = {"FFT", "Reversi Android"};
  if (Opt.Fast)
    Apps = {"FFT"};

  for (const std::string &Name : Apps) {
    workloads::Application App = workloads::buildByName(Name);
    core::IterativeCompiler Pipeline(Config);
    core::IterativeCompiler::ProfiledApp P = Pipeline.profileApp(App);
    if (!P.Region)
      continue;
    auto Cap = Pipeline.captureRegion(*P.Instance, *P.Region);
    if (!Cap)
      continue;
    core::RegionEvaluator Eval(App, *P.Region, Cap->Cap, Cap->Map,
                               Cap->Profile, Config);
    double Android = Eval.evaluateAndroid().MedianCycles;

    std::printf("%s (android region median %.0f cycles)\n", Name.c_str(),
                Android);
    for (const Strategy &S : Strategies) {
      search::Evaluation E =
          Eval.evaluatePipeline(lir::o2Pipeline(), S.Kind);
      if (E.ok())
        std::printf("  -O2 + %-16s %12.0f cycles  %6.2fx vs Android\n",
                    S.Name, E.MedianCycles, Android / E.MedianCycles);
      else
        std::printf("  -O2 + %-16s failed: %s\n", S.Name,
                    search::evalKindName(E.Kind));
    }
    std::printf("\n");
  }
  return 0;
}
