//===- bench/abl_multicapture.cpp - Section 5.4's multi-capture ablation ----===//
//
// The paper notes (Section 5.4) that a production deployment would
// evaluate candidate binaries against *multiple* captures so the search
// cannot overfit one input. This ablation trains the GA with 1 vs 3
// captures and judges both winners on a held-out capture the search
// never saw, plus on whole-program sessions outside the replay world.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

using namespace ropt;
using namespace ropt::bench;

int main(int Argc, char **Argv) {
  Options Opt = parseArgs(Argc, Argv);
  core::PipelineConfig BaseConfig = pipelineConfig(Opt);
  beginObservability(Opt);
  ReportScope Report(Opt, "abl_multicapture", BaseConfig);

  printHeader("Ablation: multi-capture fitness (paper Section 5.4)",
              "GA winners trained on 1 vs 3 captures, judged on a "
              "held-out capture and on live sessions");

  std::printf("%-18s %10s %10s | %12s %12s | %9s %9s\n", "app",
              "ga@1cap", "ga@3cap", "heldout@1", "heldout@3", "live@1",
              "live@3");

  std::vector<std::string> Apps = {"FFT", "SOR", "Sieve",
                                   "Reversi Android"};
  if (Opt.Fast)
    Apps = {"FFT", "Sieve"};

  double SumHeld1 = 0, SumHeld3 = 0;
  int Rows = 0;
  for (const std::string &Name : Apps) {
    workloads::Application App = workloads::buildByName(Name);

    auto TrainWith = [&](int Captures) {
      core::PipelineConfig Config = pipelineConfig(Opt);
      Config.Capture.CapturesPerRegion = Captures;
      Config.Provenance = Report.report();
      Report.beginApp(Name + "@" + std::to_string(Captures) + "cap");
      core::IterativeCompiler Pipeline(Config);
      core::OptimizationReport R =
          Pipeline.optimize(workloads::buildByName(Name));
      Report.endApp(R);
      return R;
    };
    core::OptimizationReport R1 = TrainWith(1);
    core::OptimizationReport R3 = TrainWith(3);
    if (!R1.Succeeded || !R3.Succeeded) {
      std::printf("%-18s pipeline failed (%s)\n", Name.c_str(),
                  (R1.Succeeded ? R3.FailureReason : R1.FailureReason)
                      .c_str());
      continue;
    }

    // A held-out capture from a session offset far outside anything the
    // training captures used.
    core::PipelineConfig HoldConfig = pipelineConfig(Opt);
    HoldConfig.Seed ^= 0x8e1d007ULL;
    core::IterativeCompiler Holdout(HoldConfig);
    core::IterativeCompiler::ProfiledApp P = Holdout.profileApp(App);
    if (!P.Region) {
      std::printf("%-18s no region on holdout boot\n", Name.c_str());
      continue;
    }
    auto Cap = Holdout.captureRegion(*P.Instance, *P.Region,
                                     /*SessionOffset=*/900);
    if (!Cap) {
      std::printf("%-18s holdout capture failed\n", Name.c_str());
      continue;
    }
    core::RegionEvaluator Eval(App, *P.Region, Cap->Cap, Cap->Map,
                               Cap->Profile, HoldConfig);
    double Android = Eval.evaluateAndroid().MedianCycles;
    auto HeldoutSpeedup = [&](const search::Genome &G) {
      search::Evaluation E = Eval.evaluate(G);
      return E.ok() ? Android / E.MedianCycles : 0.0;
    };
    double Held1 = HeldoutSpeedup(R1.Best.G);
    double Held3 = HeldoutSpeedup(R3.Best.G);

    std::printf("%-18s %9.2fx %9.2fx | %11.2fx %11.2fx | %8.2fx %8.2fx\n",
                Name.c_str(), R1.RegionAndroid / R1.RegionBest,
                R3.RegionAndroid / R3.RegionBest, Held1, Held3,
                R1.speedupGaOverAndroid(), R3.speedupGaOverAndroid());
    SumHeld1 += Held1;
    SumHeld3 += Held3;
    ++Rows;
  }

  if (Rows) {
    std::printf("\nheld-out average: 1-capture winner %.2fx, 3-capture "
                "winner %.2fx\n",
                SumHeld1 / Rows, SumHeld3 / Rows);
    std::printf("(a winner that only memorised its training capture "
                "shows up here as the lower column; 0.00x means it "
                "failed verification on the unseen input)\n");
  }
  finishObservability(Opt);
  return 0;
}
