//===- bench/fig11_storage.cpp - Figure 11 --------------------------------------===//
//
// Capture storage: process-specific pages vs the per-boot common blob
// (runtime image). Paper: total <18MB average of which >2/3 is the common
// image; process-specific averages 5.06MB (0.35MB..41MB); captured heap is
// ~6% of live heap data.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "support/Format.h"

using namespace ropt;
using namespace ropt::bench;

int main(int Argc, char **Argv) {
  Options Opt = parseArgs(Argc, Argv);
  core::PipelineConfig Config = pipelineConfig(Opt);

  printHeader("Figure 11: capture storage overheads",
              "common (runtime image) stored once per boot dominates; "
              "process-specific pages are small (sub-MB..tens of MB), a "
              "few percent of the live heap");

  std::printf("%-22s %10s %10s %10s %9s\n", "application", "pages(MB)",
              "common(MB)", "heap(MB)", "cap/heap");
  printRule(68);

  CsvSink Csv(Opt, "fig11_storage.csv",
              "app,process_specific_mb,common_mb,heap_mb,cap_heap_pct");
  double SumPages = 0, MaxPages = 0, MinPages = 1e18, SumShare = 0;
  int N = 0;
  for (const workloads::Application &App : selectedApps(Opt)) {
    core::IterativeCompiler Pipeline(Config);
    core::IterativeCompiler::ProfiledApp P = Pipeline.profileApp(App);
    if (!P.Region)
      continue;
    uint64_t HeapUsed = P.Instance->runtime().heap().bytesAllocated();
    auto Captured = Pipeline.captureRegion(*P.Instance, *P.Region);
    if (!Captured)
      continue;
    double PagesMb =
        Captured->Cap.processSpecificBytes() / (1024.0 * 1024.0);
    double CommonMb = Captured->Cap.CommonBytes / (1024.0 * 1024.0);
    double HeapMb = HeapUsed / (1024.0 * 1024.0);
    double Share = HeapUsed ? 100.0 * Captured->Cap.processSpecificBytes() /
                                  static_cast<double>(HeapUsed)
                            : 0.0;
    std::printf("%-22s %9.2f  %9.2f  %9.2f  %7.1f%%\n", App.Name.c_str(),
                PagesMb, CommonMb, HeapMb, Share);
    Csv.row(format("%s,%.4f,%.4f,%.4f,%.3f", App.Name.c_str(), PagesMb,
                   CommonMb, HeapMb, Share));
    SumPages += PagesMb;
    MaxPages = std::max(MaxPages, PagesMb);
    MinPages = std::min(MinPages, PagesMb);
    SumShare += Share;
    ++N;
    std::fflush(stdout);
  }
  printRule(68);
  if (N) {
    std::printf("process-specific average %.2fMB (min %.2f, max %.2f)\n",
                SumPages / N, MinPages, MaxPages);
    std::printf("paper: avg 5.06MB, min 0.35MB, max 41MB; capture is a "
                "few %% of heap\n");
    std::printf("average capture/heap share here: %.1f%%\n", SumShare / N);
  }
  return 0;
}
