//===- bench/fig02_random_slowdowns.cpp - Figure 2 ---------------------------===//
//
// Speedup over the Android compiler for random *correct* LLVM sequences on
// FFT. The paper: all 50 are slower than both Android and -O3, down to 8x
// slower — evaluating them online would wreck the user experience.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "support/Format.h"
#include "core/OnlineEvaluator.h"
#include "support/Statistics.h"

#include <algorithm>

using namespace ropt;
using namespace ropt::bench;

int main(int Argc, char **Argv) {
  Options Opt = parseArgs(Argc, Argv);
  int Count = Opt.Evaluations ? Opt.Evaluations : 50;

  printHeader("Figure 2: random correct binaries vs Android (FFT)",
              "all slower than Android (0.12x-0.87x), up to 8x slower");

  core::OnlineEvaluator Eval(workloads::buildByName("FFT"),
                             pipelineConfig(Opt));
  if (!Eval.ready()) {
    std::fprintf(stderr, "setup failed\n");
    return 1;
  }
  std::vector<double> Speedups = Eval.randomCorrectSpeedups(Count);
  std::sort(Speedups.begin(), Speedups.end());

  CsvSink Csv(Opt, "fig02_random_slowdowns.csv", "rank,speedup");
  std::printf("%-8s %9s\n", "binary", "speedup");
  printRule(20);
  for (size_t I = 0; I != Speedups.size(); ++I) {
    std::printf("%-8zu %8.3fx\n", I + 1, Speedups[I]);
    Csv.row(format("%zu,%.4f", I + 1, Speedups[I]));
  }
  printRule(20);

  int Slower = 0;
  for (double S : Speedups)
    Slower += (S < 1.0);
  std::printf("\n%d/%zu random correct binaries are slower than Android "
              "(paper: 50/50)\n",
              Slower, Speedups.size());
  std::printf("worst %.3fx (%.1fx slowdown), median %.3fx, best %.3fx\n",
              Speedups.front(), 1.0 / Speedups.front(),
              median(Speedups), Speedups.back());
  return 0;
}
