//===- bench/fig07_speedups.cpp - Figure 7 (and Table 1) ----------------------===//
//
// Whole-program speedup over the Android compiler for LLVM -O3 and the
// replay-driven GA, measured outside the replay environment for all 21
// Table-1 applications. Paper: -O3 0.89x-1.66x (avg ~1.07x); GA 1.10x-2.56x
// (avg 1.44x over Android, 1.35x over -O3).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "support/Format.h"
#include "support/Statistics.h"

using namespace ropt;
using namespace ropt::bench;

int main(int Argc, char **Argv) {
  Options Opt = parseArgs(Argc, Argv);
  core::PipelineConfig Config = pipelineConfig(Opt);
  beginObservability(Opt);
  ReportScope Report(Opt, "fig07_speedups", Config);

  printHeader("Figure 7: whole-program speedup vs the Android compiler",
              "LLVM -O3 in 0.89x..1.66x (avg ~1.07x); LLVM GA in "
              "1.10x..2.56x (avg ~1.44x); GA wins everywhere");

  std::printf("%-22s %-11s %9s %9s %9s\n", "application", "suite",
              "LLVM -O3", "LLVM GA", "GA/O3");
  printRule(66);

  CsvSink Csv(Opt, "fig07_speedups.csv",
              "app,suite,o3_speedup,ga_speedup,ga_over_o3,genome");
  std::vector<double> O3s, GAs, GaOverO3s;
  for (const workloads::Application &App : selectedApps(Opt)) {
    Report.beginApp(App.Name);
    core::IterativeCompiler Pipeline(Config);
    core::OptimizationReport R = Pipeline.optimize(App);
    Report.endApp(R);
    if (!R.Succeeded) {
      std::printf("%-22s %-11s  FAILED: %s\n", App.Name.c_str(),
                  workloads::suiteName(App.Kind), R.FailureReason.c_str());
      continue;
    }
    double O3 = R.speedupO3OverAndroid();
    double GA = R.speedupGaOverAndroid();
    O3s.push_back(O3);
    GAs.push_back(GA);
    GaOverO3s.push_back(R.speedupGaOverO3());
    std::printf("%-22s %-11s %8.2fx %8.2fx %8.2fx   [%s]\n",
                App.Name.c_str(), workloads::suiteName(App.Kind), O3, GA,
                R.speedupGaOverO3(), R.Best.G.name().c_str());
    Csv.row(format("%s,%s,%.4f,%.4f,%.4f,\"%s\"", App.Name.c_str(),
                   workloads::suiteName(App.Kind), O3, GA,
                   R.speedupGaOverO3(), R.Best.G.name().c_str()));
    std::fflush(stdout);
  }
  printRule(66);
  if (!GAs.empty()) {
    std::printf("%-22s %-11s %8.2fx %8.2fx %8.2fx\n", "AVERAGE", "",
                mean(O3s), mean(GAs), mean(GaOverO3s));
    std::printf("\npaper: O3 avg ~1.07x; GA avg ~1.44x over Android, "
                "~1.35x over -O3\n");
    int GaWins = 0, O3Losses = 0;
    for (size_t I = 0; I != GAs.size(); ++I) {
      GaWins += GAs[I] > 1.0 && GAs[I] > O3s[I];
      O3Losses += O3s[I] < 1.0;
    }
    std::printf("GA beats both baselines on %d/%zu apps; -O3 loses to "
                "Android on %d apps (paper: a few, e.g. FFT)\n",
                GaWins, GAs.size(), O3Losses);
  }
  finishObservability(Opt);
  return 0;
}
