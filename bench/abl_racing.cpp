//===- bench/abl_racing.cpp - Adaptive measurement racing ablation --------===//
//
// Measurement racing replaces the paper's fixed 10-replays-per-evaluation
// budget with an incumbent-relative sequential test (DESIGN.md §11): stop
// replaying statistically-clear losers after a seed block, spend the
// budget on contenders. This ablation runs the full pipeline twice per
// app — racing off (the paper's configuration) and racing on, same seed —
// and reports the replay budget each spent, what was saved, and whether
// both budgets crowned the same winner genome at the same final fitness.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

using namespace ropt;
using namespace ropt::bench;

int main(int Argc, char **Argv) {
  Options Opt = parseArgs(Argc, Argv);
  core::PipelineConfig BaseConfig = pipelineConfig(Opt);
  beginObservability(Opt);
  ReportScope Report(Opt, "abl_racing", BaseConfig);

  printHeader("Ablation: adaptive measurement racing (DESIGN.md §11)",
              "same winner as the fixed budget at a fraction of the "
              "replays; losers early-stopped by the sequential test");

  std::printf("%-18s %9s %9s %7s | %6s %6s %7s | %11s %11s %6s\n", "app",
              "fixed", "racing", "saved", "stops", "escal", "top-ups",
              "best@fixed", "best@racing", "same");

  std::vector<std::string> Apps = {"FFT", "SOR", "Sieve",
                                   "Reversi Android"};
  if (Opt.Fast)
    Apps = {"FFT", "Sieve"};

  CsvSink Csv(Opt, "abl_racing.csv",
              "app,replays_fixed,replays_racing,saved_pct,early_stops,"
              "escalations,top_ups,best_fixed,best_racing,same_winner");

  uint64_t TotalFixed = 0, TotalRacing = 0;
  int Rows = 0, SameWinner = 0;
  for (const std::string &Name : Apps) {
    auto RunWith = [&](bool Racing) {
      core::PipelineConfig Config = pipelineConfig(Opt);
      Config.Search.Racing = Racing;
      Config.Provenance = Report.report();
      Report.beginApp(Name + (Racing ? "@racing" : "@fixed"));
      core::IterativeCompiler Pipeline(Config);
      core::OptimizationReport R =
          Pipeline.optimize(workloads::buildByName(Name));
      Report.endApp(R);
      return R;
    };
    core::OptimizationReport Fixed = RunWith(false);
    core::OptimizationReport Raced = RunWith(true);
    if (!Fixed.Succeeded || !Raced.Succeeded) {
      std::printf("%-18s pipeline failed (%s)\n", Name.c_str(),
                  (Fixed.Succeeded ? Raced.FailureReason
                                   : Fixed.FailureReason)
                      .c_str());
      continue;
    }

    const search::EngineRacingStats &SF = Fixed.RacingStats;
    const search::EngineRacingStats &SR = Raced.RacingStats;
    double SavedPct =
        SF.ReplaysSpent
            ? 100.0 *
                  (static_cast<double>(SF.ReplaysSpent) -
                   static_cast<double>(SR.ReplaysSpent)) /
                  static_cast<double>(SF.ReplaysSpent)
            : 0.0;
    bool Same = Fixed.Best.G.name() == Raced.Best.G.name();

    std::printf("%-18s %9llu %9llu %6.1f%% | %6llu %6llu %7llu | %11.0f "
                "%11.0f %6s\n",
                Name.c_str(),
                static_cast<unsigned long long>(SF.ReplaysSpent),
                static_cast<unsigned long long>(SR.ReplaysSpent), SavedPct,
                static_cast<unsigned long long>(SR.EarlyStops),
                static_cast<unsigned long long>(SR.Escalations),
                static_cast<unsigned long long>(SR.TopUps),
                Fixed.RegionBest, Raced.RegionBest, Same ? "yes" : "NO");
    Csv.row(Name + "," + std::to_string(SF.ReplaysSpent) + "," +
            std::to_string(SR.ReplaysSpent) + "," +
            std::to_string(SavedPct) + "," +
            std::to_string(SR.EarlyStops) + "," +
            std::to_string(SR.Escalations) + "," +
            std::to_string(SR.TopUps) + "," +
            std::to_string(Fixed.RegionBest) + "," +
            std::to_string(Raced.RegionBest) + "," + (Same ? "1" : "0"));

    TotalFixed += SF.ReplaysSpent;
    TotalRacing += SR.ReplaysSpent;
    SameWinner += Same ? 1 : 0;
    ++Rows;
  }

  if (Rows) {
    double TotalSaved =
        TotalFixed ? 100.0 *
                         (static_cast<double>(TotalFixed) -
                          static_cast<double>(TotalRacing)) /
                         static_cast<double>(TotalFixed)
                   : 0.0;
    std::printf("\ntotal replays: fixed %llu, racing %llu (%.1f%% saved); "
                "same winner on %d/%d apps\n",
                static_cast<unsigned long long>(TotalFixed),
                static_cast<unsigned long long>(TotalRacing), TotalSaved,
                SameWinner, Rows);
    std::printf("(the race spends the family-wise alpha across escalation "
                "rounds, so an early stop is a statistically-sound loser "
                "verdict, not a guess)\n");
  }
  finishObservability(Opt);
  return 0;
}
