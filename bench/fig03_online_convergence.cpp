//===- bench/fig03_online_convergence.cpp - Figure 3 --------------------------===//
//
// Estimating the speedup of -O1 over -O0 for FFT: online evaluations draw a
// fresh input size (FFT_SIZE..FFT_SIZE_LARGE) and online noise per run;
// offline replays process the fixed captured input. The paper: online needs
// 100-1000x more evaluations for comparable confidence.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "support/Format.h"
#include "core/OnlineEvaluator.h"

using namespace ropt;
using namespace ropt::bench;

namespace {

void printTrajectory(const char *Name,
                     const std::vector<core::ConvergencePoint> &Points,
                     double Truth, CsvSink &Csv, const char *Mode) {
  std::printf("%s (true speedup %.3fx):\n", Name, Truth);
  std::printf("%8s %9s %19s %19s %s\n", "evals", "estimate", "75% CI",
              "95% CI", "within 10%?");
  printRule(72);
  for (const core::ConvergencePoint &P : Points) {
    bool Tight = P.Ci95High - P.Ci95Low < 0.2 * Truth &&
                 std::abs(P.Estimate - Truth) < 0.1 * Truth;
    std::printf("%8d %8.3fx [%7.3f, %7.3f] [%7.3f, %7.3f]   %s\n",
                P.Evaluations, P.Estimate, P.Ci75Low, P.Ci75High,
                P.Ci95Low, P.Ci95High, Tight ? "yes" : "no");
    Csv.row(format("%s,%d,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f", Mode,
                   P.Evaluations, P.Estimate, P.Ci75Low, P.Ci75High,
                   P.Ci95Low, P.Ci95High, Truth));
  }
  std::printf("\n");
}

int firstTightEval(const std::vector<core::ConvergencePoint> &Points,
                   double Truth) {
  for (const core::ConvergencePoint &P : Points)
    if (P.Ci95High - P.Ci95Low < 0.2 * Truth &&
        std::abs(P.Estimate - Truth) < 0.1 * Truth)
      return P.Evaluations;
  return -1;
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opt = parseArgs(Argc, Argv);
  int MaxEvals = Opt.Evaluations ? Opt.Evaluations : 1500;

  printHeader("Figure 3: online vs offline speedup estimation (FFT, "
              "-O1 over -O0)",
              "offline: stable almost immediately; online: unstable for "
              "tens of evals, 100-1000x more needed for <10% uncertainty");

  core::OnlineEvaluator Eval(workloads::buildByName("FFT"),
                             pipelineConfig(Opt));
  if (!Eval.ready()) {
    std::fprintf(stderr, "setup failed\n");
    return 1;
  }
  core::OnlineEvaluator::Convergence C = Eval.convergence(MaxEvals);

  CsvSink Csv(Opt, "fig03_online_convergence.csv",
              "mode,evals,estimate,ci75_low,ci75_high,ci95_low,ci95_high,"
              "truth");
  printTrajectory("OFFLINE (fixed captured input, replay environment)",
                  C.Offline, C.TrueSpeedup, Csv, "offline");
  printTrajectory("ONLINE (random input size, interactive environment)",
                  C.Online, C.TrueSpeedup, Csv, "online");

  int OfflineTight = firstTightEval(C.Offline, C.TrueSpeedup);
  int OnlineTight = firstTightEval(C.Online, C.TrueSpeedup);
  std::printf("first evaluation count with <10%% error and tight 95%% CI:\n"
              "  offline: %d    online: %d    ratio: %s\n",
              OfflineTight, OnlineTight,
              (OfflineTight > 0 && OnlineTight > 0)
                  ? std::to_string(OnlineTight / OfflineTight).c_str()
                  : "online never converged in this budget");
  return 0;
}
