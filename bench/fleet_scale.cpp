//===- bench/fleet_scale.cpp - Crowd-sourced search population sweep ------===//
//
// The fleet layer's headline experiment (DESIGN.md §12): run the same
// per-device search budget over populations of 1, 4 and 16 simulated
// devices and watch crowd-sourcing pay — a larger fleet explores more of
// the pass-pipeline space per round, the server's leaderboard pools the
// discoveries, and every device warm-starts its next round from the
// fleet's verified best. The sweep runs over a lossy SimTransport on
// purpose: retry masks the loss, so the results column is identical to a
// perfect network and only the transport counters grow.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "fleet/Coordinator.h"

using namespace ropt;
using namespace ropt::bench;

int main(int Argc, char **Argv) {
  Options Opt = parseArgs(Argc, Argv);
  core::PipelineConfig BaseConfig = pipelineConfig(Opt);
  if (!Opt.Fast) {
    // Per-round search depth; the fleet rounds multiply it back up.
    BaseConfig.Search.GA.Generations = 6;
    BaseConfig.Search.GA.PopulationSize = 16;
    BaseConfig.Search.GA.HillClimbRounds = 1;
  }
  beginObservability(Opt);
  ReportScope Report(Opt, "fleet_scale", BaseConfig);

  printHeader("Fleet scale: crowd-sourced search vs population size "
              "(DESIGN.md §12)",
              "best fleet speedup grows (or holds) with device count at "
              "the same per-device budget; unsound hints quarantined");

  std::vector<int> Sweep = Opt.Devices;
  if (Sweep.empty())
    Sweep = Opt.Fast ? std::vector<int>{1, 4} : std::vector<int>{1, 4, 16};
  int Rounds = Opt.Rounds > 0 ? Opt.Rounds : (Opt.Fast ? 2 : 3);

  std::vector<std::string> Apps = {"Sieve", "FFT"};
  if (Opt.Fast)
    Apps = {"Sieve"};
  if (!Opt.AppFilter.empty()) {
    std::vector<std::string> Filtered;
    for (const std::string &A : Apps)
      if (A.find(Opt.AppFilter) != std::string::npos)
        Filtered.push_back(A);
    Apps = Filtered;
  }

  // A deliberately-degraded network; results must not care.
  fleet::TransportOptions NetOpt;
  NetOpt.DropProb = 0.15;
  NetOpt.ReorderProb = 0.10;

  CsvSink Csv(Opt, "fleet_scale.csv",
              "app,devices,rounds,best_speedup,best_device,best_from_hint,"
              "hints_published,hints_adopted,hints_rejected,"
              "transport_attempts,transport_drops,evaluations");

  std::printf("%-10s %7s | %9s %6s %9s | %6s %6s %6s | %8s %6s\n", "app",
              "devices", "speedup", "dev", "from-hint", "pub", "adopt",
              "reject", "attempts", "drops");

  report::FleetSummary Summary;
  {
    std::string SweepStr;
    for (size_t I = 0; I != Sweep.size(); ++I)
      SweepStr += (I ? "," : "") + std::to_string(Sweep[I]);
    Summary.DeviceSweep = SweepStr;
  }
  Summary.Rounds = Rounds;
  Summary.TopK = fleet::ServerOptions{}.TopK;
  Summary.DropProb = NetOpt.DropProb;
  Summary.ReorderProb = NetOpt.ReorderProb;

  bool AnyFailed = false;
  for (const std::string &App : Apps) {
    for (int N : Sweep) {
      fleet::FleetConfig FC;
      FC.Devices = N;
      FC.Rounds = Rounds;
      FC.Jobs = Opt.Jobs;
      FC.Seed = Opt.Seed;

      // Fresh server and transport per cell: every sweep point is an
      // independent population, not a continuation.
      fleet::Server Srv;
      fleet::SimTransport Net(NetOpt, Opt.Seed);
      fleet::Coordinator Co(FC, BaseConfig);
      fleet::FleetResult R = Co.run(App, Srv, Net, Report.report());

      if (!R.Succeeded) {
        std::printf("%-10s %7d | fleet failed (%s)\n", App.c_str(), N,
                    R.FailureReason.c_str());
        AnyFailed = true;
        continue;
      }

      std::printf("%-10s %7d | %8.3fx %6d %9s | %6llu %6llu %6llu | %8llu "
                  "%6llu\n",
                  App.c_str(), N, R.BestSpeedup, R.BestDevice,
                  R.BestFromHint ? "yes" : "no",
                  static_cast<unsigned long long>(R.HintsPublished),
                  static_cast<unsigned long long>(R.HintsAdopted),
                  static_cast<unsigned long long>(R.HintsRejected),
                  static_cast<unsigned long long>(R.TransportAttempts),
                  static_cast<unsigned long long>(R.TransportDrops));
      Csv.row(App + "," + std::to_string(N) + "," + std::to_string(Rounds) +
              "," + std::to_string(R.BestSpeedup) + "," +
              std::to_string(R.BestDevice) + "," +
              (R.BestFromHint ? "1" : "0") + "," +
              std::to_string(R.HintsPublished) + "," +
              std::to_string(R.HintsAdopted) + "," +
              std::to_string(R.HintsRejected) + "," +
              std::to_string(R.TransportAttempts) + "," +
              std::to_string(R.TransportDrops) + "," +
              std::to_string(R.Counters.total()));

      Summary.HintsPublished += R.HintsPublished;
      Summary.HintsAdopted += R.HintsAdopted;
      Summary.HintsRejected += R.HintsRejected;
      Summary.TransportAttempts += R.TransportAttempts;
      Summary.TransportDrops += R.TransportDrops;
      Summary.DeliveriesFailed += R.DeliveriesFailed;
      if (R.BestSpeedup > Summary.BestSpeedup)
        Summary.BestSpeedup = R.BestSpeedup;
    }
    std::printf("\n");
  }

  std::printf("(speedups are vs each device's own Android baseline; the "
              "transport dropped %llu of %llu attempts and changed "
              "nothing but these counters)\n",
              static_cast<unsigned long long>(Summary.TransportDrops),
              static_cast<unsigned long long>(Summary.TransportAttempts));

  if (Report.report())
    Report.report()->setFleetSummary(Summary);
  finishObservability(Opt);
  return AnyFailed ? 1 : 0;
}
