//===- bench/fleet_scale.cpp - Crowd-sourced search population sweep ------===//
//
// The fleet layer's headline experiment (DESIGN.md §12, §14): run the
// same per-device search budget over growing device populations and
// watch crowd-sourcing pay — a larger fleet explores more of the
// pass-pipeline space, the server's leaderboard pools the discoveries,
// and every device warm-starts its next step from the fleet's verified
// best. Since the event-loop redesign the sweep runs on virtual time:
// devices finish steps asynchronously, reports and hints travel with
// real in-flight latency over a lossy SimTransport, and loss genuinely
// costs virtual time (a dropped hint response deterministically misses
// the step it would have seeded). Results are still bit-identical across
// --jobs and reruns at the same seed.
//
// At four-digit populations (--devices 1000,10000) the harness switches
// to install-base budgets — each device contributes a sliver of search
// and shares a device-class pipeline state — so per-device wall-clock
// *falls* as the population grows: the sublinear-scaling acceptance
// check reads the ms/dev column.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "fleet/Coordinator.h"
#include "store/Store.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <set>
#include <utility>

using namespace ropt;
using namespace ropt::bench;

int main(int Argc, char **Argv) {
  Options Opt = parseArgs(Argc, Argv);
  core::PipelineConfig BaseConfig = pipelineConfig(Opt);
  if (!Opt.Fast) {
    // Per-step search depth; the fleet steps multiply it back up.
    BaseConfig.Search.GA.Generations = 6;
    BaseConfig.Search.GA.PopulationSize = 16;
    BaseConfig.Search.GA.HillClimbRounds = 1;
  }
  beginObservability(Opt);
  ReportScope Report(Opt, "fleet_scale", BaseConfig);

  // --store DIR: the persistent optimization service (DESIGN.md §17).
  // The store is loaded once; every sweep cell's fresh server imports the
  // prior night's leaderboards (quarantine included) and pre-seeds device
  // mailboxes, and each completed cell folds its final board back into
  // the next save. Two runs with the same store directory are a
  // two-night deployment.
  std::unique_ptr<store::Store> St;
  store::Store::LoadResult Loaded;
  report::WarmStartInfo Warm;
  // (app name, genome key) pairs that predate this run, for the
  // class-leaderboard "restored" flag.
  std::set<std::pair<std::string, std::string>> LoadedKeys;
  if (!Opt.StoreDir.empty()) {
    St.reset(new store::Store(Opt.StoreDir));
    Loaded = St->load();
    if (!Loaded.Warning.empty())
      std::fprintf(stderr, "warning: %s\n", Loaded.Warning.c_str());
    Warm.Used = Loaded.Found && Loaded.Warning.empty();
    Warm.StoreSchema = Loaded.State.Schema;
    Warm.Nights = Loaded.State.Nights;
    for (const store::StoredApp &A : Loaded.State.Apps)
      for (const store::StoredEntry &E : A.Entries) {
        ++Warm.EntriesLoaded;
        if (E.Quarantined)
          ++Warm.QuarantinedLoaded;
        LoadedKeys.insert({A.Name, E.Genome});
      }
    if (Warm.Used)
      std::printf("store: %s (night %llu, %llu entries, %llu quarantined)\n",
                  St->path().c_str(),
                  static_cast<unsigned long long>(Loaded.State.Nights),
                  static_cast<unsigned long long>(Warm.EntriesLoaded),
                  static_cast<unsigned long long>(Warm.QuarantinedLoaded));
    else
      std::printf("store: %s (cold start)\n", St->path().c_str());
  }

  printHeader("Fleet scale: crowd-sourced search vs population size "
              "(DESIGN.md §12, §14)",
              "best fleet speedup grows (or holds) with device count at "
              "the same per-device budget; per-device wall-clock falls "
              "at install-base scale; unsound hints quarantined");

  std::vector<int> Sweep = Opt.Devices;
  if (Sweep.empty())
    Sweep = Opt.Fast ? std::vector<int>{1, 4} : std::vector<int>{1, 4, 16};
  int Rounds = Opt.Rounds > 0 ? Opt.Rounds : (Opt.Fast ? 2 : 3);

  std::vector<std::string> Apps = {"Sieve", "FFT"};
  if (Opt.Fast)
    Apps = {"Sieve"};
  if (!Opt.AppFilter.empty()) {
    std::vector<std::string> Filtered;
    for (const std::string &A : Apps)
      if (A.find(Opt.AppFilter) != std::string::npos)
        Filtered.push_back(A);
    Apps = Filtered;
  }

  // The paper-default lossy network; loss costs virtual time and can
  // reorder which hints seed which step, but seeded runs stay
  // bit-identical across --jobs and reruns.
  const fleet::FleetOptions Defaults = fleet::FleetOptions::paperDefaults();

  CsvSink Csv(Opt, "fleet_scale.csv",
              "app,devices,rounds,best_speedup,best_device,best_from_hint,"
              "hints_published,hints_adopted,hints_rejected,"
              "transport_attempts,transport_drops,deliveries_failed,"
              "reorders_effective,evaluations,devices_left,devices_joined,"
              "virtual_time,wall_ms,wall_ms_per_device");

  std::printf("%-10s %7s | %8s %5s %4s | %5s %5s %5s | %7s %6s | %4s %4s "
              "| %8s %8s\n",
              "app", "devices", "speedup", "dev", "hint", "pub", "adopt",
              "rej", "attempt", "drop", "left", "join", "vtime", "ms/dev");

  report::FleetSummary Summary;
  {
    std::string SweepStr;
    for (size_t I = 0; I != Sweep.size(); ++I)
      SweepStr += (I ? "," : "") + std::to_string(Sweep[I]);
    Summary.DeviceSweep = SweepStr;
  }
  Summary.Rounds = Rounds;
  Summary.TopK = fleet::ServerOptions{}.TopK;
  Summary.DropProb = Defaults.Net.DropProb;
  Summary.ReorderProb = Defaults.Net.ReorderProb;

  bool AnyFailed = false;
  // The night's accumulating snapshot: the last cell per app (the most
  // crowd-sourced population) supplies that app's board; the class model
  // carries over from last night until a k-means cell replaces it.
  std::map<std::string, store::StoredApp> NextApps;
  store::StoredClassModel NextClasses = Loaded.State.Classes;
  for (const std::string &App : Apps) {
    for (int N : Sweep) {
      fleet::FleetOptions FO = fleet::FleetOptions::paperDefaults();
      FO.Devices = N;
      FO.Rounds = Rounds;
      FO.Jobs = Opt.Jobs;
      FO.Seed = Opt.Seed;
      // Device classes make four-digit populations tractable: class
      // members share one pipeline state and memoized engine, so
      // evaluations dedup across the crowd. Small sweeps keep the
      // historical one-class-per-device behavior.
      FO.ProfileClasses = Opt.Classes >= 0 ? Opt.Classes
                                           : (N >= 100 ? 24 : 0);
      if (St) {
        // Store mode: classes come from seeded k-means over the
        // continuous profile vectors (per-class leaderboards need real
        // hardware classes), and devices warm-start from the restored
        // hint set. Small cells still get a few classes by default so
        // the class boards are populated.
        if (Opt.Classes < 0)
          FO.ProfileClasses = N >= 100 ? 24 : (N >= 4 ? 4 : 0);
        FO.KMeansClasses = true;
        FO.WarmStartHints = Warm.EntriesLoaded > 0;
      }

      core::PipelineConfig Cfg = BaseConfig;
      if (N >= 500) {
        // Install-base budgets: each device runs a sliver of search per
        // step; the population supplies the volume.
        Cfg.Search.GA.Generations = 1;
        Cfg.Search.GA.PopulationSize = 4;
        Cfg.Search.GA.HillClimbRounds = 0;
        Cfg.Search.MaxReplaysPerEvaluation = 3;
      }

      fleet::ServerOptions SrvOpt;
      if (Opt.ChurnPercent > 0) {
        double F = Opt.ChurnPercent / 100.0;
        FO.Population.LeaveFraction = F;
        FO.Population.JoinFraction = F;
        // Size the churn horizon to the run's expected virtual length so
        // leaves actually land mid-run: steps cost roughly Base plus a
        // cache miss per fresh evaluation.
        int EvalsPerStep =
            Cfg.Search.GA.PopulationSize *
                std::max(1, Cfg.Search.GA.Generations) +
            8;
        FO.Population.HorizonTicks =
            static_cast<fleet::VirtualTime>(Rounds) *
            (FO.Costs.BaseTicks +
             FO.Costs.MissTicks * static_cast<uint64_t>(EvalsPerStep) +
             FO.IdleTicks);
        // With members coming and going, leaderboard entries nobody
        // re-confirms within a device lifetime age out.
        SrvOpt.TtlTicks = FO.Population.HorizonTicks;
      }

      // Fresh server and transport per cell: every sweep point is an
      // independent population, not a continuation. Cross-run continuity
      // comes from the store: each cell restores last night's boards.
      fleet::Server Srv(SrvOpt);
      if (St && Warm.EntriesLoaded > 0) {
        std::vector<std::string> ImportWarnings;
        Srv.importState(Loaded.State, &ImportWarnings);
        for (const std::string &W : ImportWarnings)
          std::fprintf(stderr, "warning: %s\n", W.c_str());
      }
      fleet::SimTransport Net(FO.Net, Opt.Seed);
      fleet::Coordinator Co(FO, Cfg);
      std::chrono::steady_clock::time_point T0 =
          std::chrono::steady_clock::now();
      fleet::FleetResult R = Co.run(App, Srv, Net, Report.report());
      double WallMs = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - T0)
                          .count();
      double MsPerDevice = WallMs / static_cast<double>(std::max(1, R.Devices));

      if (!R.Succeeded) {
        std::printf("%-10s %7d | fleet failed (%s)\n", App.c_str(), N,
                    R.FailureReason.c_str());
        AnyFailed = true;
        continue;
      }

      std::printf("%-10s %7d | %7.3fx %5d %4s | %5llu %5llu %5llu | "
                  "%7llu %6llu | %4d %4d | %8llu %8.2f\n",
                  App.c_str(), N, R.BestSpeedup, R.BestDevice,
                  R.BestFromHint ? "yes" : "no",
                  static_cast<unsigned long long>(R.HintsPublished),
                  static_cast<unsigned long long>(R.HintsAdopted),
                  static_cast<unsigned long long>(R.HintsRejected),
                  static_cast<unsigned long long>(R.Transport.Attempts),
                  static_cast<unsigned long long>(R.Transport.Drops),
                  R.DevicesLeft, R.DevicesJoined,
                  static_cast<unsigned long long>(R.VirtualDuration),
                  MsPerDevice);
      Csv.row(App + "," + std::to_string(N) + "," + std::to_string(Rounds) +
              "," + std::to_string(R.BestSpeedup) + "," +
              std::to_string(R.BestDevice) + "," +
              (R.BestFromHint ? "1" : "0") + "," +
              std::to_string(R.HintsPublished) + "," +
              std::to_string(R.HintsAdopted) + "," +
              std::to_string(R.HintsRejected) + "," +
              std::to_string(R.Transport.Attempts) + "," +
              std::to_string(R.Transport.Drops) + "," +
              std::to_string(R.Transport.Failed) + "," +
              std::to_string(R.Transport.ReordersEffective) + "," +
              std::to_string(R.Counters.total()) + "," +
              std::to_string(R.DevicesLeft) + "," +
              std::to_string(R.DevicesJoined) + "," +
              std::to_string(R.VirtualDuration) + "," +
              std::to_string(WallMs) + "," + std::to_string(MsPerDevice));

      // The winning genome's fleet journey: who discovered it, when it
      // reached the server, and how far the hint plane carried it.
      if (R.BestProv.Id != 0) {
        for (const fleet::ProvenanceChain &C : R.Telemetry.Chains) {
          if (C.Id != R.BestProv.Id)
            continue;
          std::printf("           winner %s %s: discovered d%d@vt%llu, "
                      "merged@vt%llu, %llu arrivals, %llu adopted, "
                      "%llu rejected\n",
                      fleet::provenanceHex(C.Id).c_str(), C.Key.c_str(),
                      C.Device,
                      static_cast<unsigned long long>(C.DiscoveryTime),
                      static_cast<unsigned long long>(C.FirstMergeTime),
                      static_cast<unsigned long long>(C.Arrivals),
                      static_cast<unsigned long long>(C.Adoptions),
                      static_cast<unsigned long long>(C.Rejections));
          break;
        }
      }

      // Fork-server session accounting across the cell's class engines.
      if (R.ReplayBackend.any())
        std::printf("           replay backend: %llu session replays / "
                    "%llu sessions, %llu delta resets (%.1f pages/reset), "
                    "%llu fresh, %llu rebuilds\n",
                    static_cast<unsigned long long>(
                        R.ReplayBackend.SessionReplays),
                    static_cast<unsigned long long>(
                        R.ReplayBackend.SessionsCreated),
                    static_cast<unsigned long long>(
                        R.ReplayBackend.DeltaResets),
                    R.ReplayBackend.pagesPerReset(),
                    static_cast<unsigned long long>(
                        R.ReplayBackend.FreshReplays),
                    static_cast<unsigned long long>(
                        R.ReplayBackend.FullRebuilds));

      Summary.HintsPublished += R.HintsPublished;
      Summary.HintsAdopted += R.HintsAdopted;
      Summary.HintsRejected += R.HintsRejected;
      Summary.Transport += R.Transport;
      if (R.BestSpeedup > Summary.BestSpeedup)
        Summary.BestSpeedup = R.BestSpeedup;

      if (St) {
        Warm.HintsInjected += R.WarmStartHintCount;

        // Fold the cell's final board into the night's snapshot and
        // publish it: saving after every completed cell means a crashed
        // sweep still keeps the cells that finished (save is atomic).
        store::StoreState CellState;
        Srv.exportState(CellState);
        for (store::StoredApp &A : CellState.Apps)
          NextApps[A.Name] = std::move(A);
        if (!R.ClassCentroids.empty()) {
          NextClasses = store::StoredClassModel();
          NextClasses.K = static_cast<int>(R.ClassCentroids.size());
          NextClasses.Dims =
              static_cast<int>(R.ClassCentroids.front().size());
          NextClasses.Centroids = R.ClassCentroids;
          NextClasses.Assignments = R.ClassOf;
        }
        store::StoreState Night;
        Night.Nights = Loaded.State.Nights + 1;
        Night.FleetSeed = Opt.Seed;
        Night.Classes = NextClasses;
        for (const auto &KV : NextApps)
          Night.Apps.push_back(KV.second);
        std::string Err;
        if (!St->save(Night, &Err))
          std::fprintf(stderr, "warning: %s\n", Err.c_str());

        // Per-class leaderboard snapshot for the run report: the best
        // class-confirmed entry per device class in this cell.
        if (!R.ClassCentroids.empty()) {
          if (const std::vector<fleet::Server::LeaderEntry> *Board =
                  Srv.leaderboard(App)) {
            int K = static_cast<int>(R.ClassCentroids.size());
            for (int C = 0; C != K; ++C) {
              const fleet::Server::LeaderEntry *BestE = nullptr;
              for (const fleet::Server::LeaderEntry &E : *Board) {
                if (E.Quarantined || E.Expired || !E.Classes.count(C))
                  continue;
                if (!BestE || E.Speedup > BestE->Speedup ||
                    (E.Speedup == BestE->Speedup && E.Key < BestE->Key))
                  BestE = &E;
              }
              if (!BestE)
                continue;
              report::ClassLeaderboardRow Row;
              Row.App = App;
              Row.Devices = N;
              Row.Class = C;
              Row.Genome = BestE->Key;
              Row.Speedup = BestE->Speedup;
              Row.Reports = BestE->Reports;
              Row.Restored = LoadedKeys.count({App, BestE->Key}) != 0;
              Summary.ClassBoards.push_back(Row);
            }
          }
        }
      }
    }
    std::printf("\n");
  }

  std::printf("(speedups are vs each device's own Android baseline; the "
              "transport dropped %llu of %llu attempts — %llu deliveries "
              "never landed and %llu reorders changed which hints seeded "
              "a step, all deterministically at this seed)\n",
              static_cast<unsigned long long>(Summary.Transport.Drops),
              static_cast<unsigned long long>(Summary.Transport.Attempts),
              static_cast<unsigned long long>(Summary.Transport.Failed),
              static_cast<unsigned long long>(
                  Summary.Transport.ReordersEffective));

  if (Report.report()) {
    Report.report()->setFleetSummary(Summary);
    if (St)
      Report.report()->setWarmStart(Warm);
  }
  if (St)
    std::printf("store: saved %s (night %llu, %llu warm-start hints "
                "pre-seeded)\n",
                St->path().c_str(),
                static_cast<unsigned long long>(Loaded.State.Nights + 1),
                static_cast<unsigned long long>(Warm.HintsInjected));
  finishObservability(Opt);
  return AnyFailed ? 1 : 0;
}
