//===- bench/micro_replay.cpp - google-benchmark replay/compiler micros ------===//
//
// Wall-clock microbenchmarks of one replay (the GA's inner loop), the LLVM
// backend compilation, and the two execution tiers — the costs that
// determine how long an offline search session takes.
//
//===----------------------------------------------------------------------===//

#include "core/IterativeCompiler.h"
#include "hgraph/AndroidCompiler.h"
#include "lir/Backend.h"
#include "replay/Replayer.h"
#include "workloads/Workloads.h"

#include <benchmark/benchmark.h>

using namespace ropt;

namespace {

/// Shared setup: FFT captured and ready to replay.
struct ReplayFixture {
  workloads::Application App;
  core::PipelineConfig Config;
  profiler::HotRegion Region;
  core::IterativeCompiler::CapturedRegion Captured;
  vm::NativeRegistry Natives;
  vm::CodeCache Android;

  ReplayFixture()
      : App(workloads::buildByName("FFT")),
        Natives(vm::NativeRegistry::standardLibrary()) {
    core::IterativeCompiler Pipeline(Config);
    auto P = Pipeline.profileApp(App);
    Region = *P.Region;
    Captured = *Pipeline.captureRegion(*P.Instance, Region);
    hgraph::compileAllAndroid(*App.File, Region.Methods, Android);
  }

  static ReplayFixture &get() {
    static ReplayFixture F;
    return F;
  }
};

void BM_CompiledReplay(benchmark::State &State) {
  ReplayFixture &F = ReplayFixture::get();
  replay::Replayer Rep(*F.App.File, F.Natives, F.App.RtConfig, 3);
  for (auto _ : State) {
    auto R = Rep.replay(F.Captured.Cap, replay::ReplayCode::Compiled,
                        &F.Android);
    benchmark::DoNotOptimize(R.Result.Cycles);
  }
}
BENCHMARK(BM_CompiledReplay);

void BM_InterpretedReplay(benchmark::State &State) {
  ReplayFixture &F = ReplayFixture::get();
  replay::Replayer Rep(*F.App.File, F.Natives, F.App.RtConfig, 3);
  for (auto _ : State) {
    auto R =
        Rep.replay(F.Captured.Cap, replay::ReplayCode::Interpreter, nullptr);
    benchmark::DoNotOptimize(R.Result.Cycles);
  }
}
BENCHMARK(BM_InterpretedReplay);

void BM_LlvmBackendCompile(benchmark::State &State) {
  ReplayFixture &F = ReplayFixture::get();
  lir::CompileOptions Options;
  Options.Pipeline = lir::o3Pipeline();
  for (auto _ : State) {
    vm::CodeCache Code;
    lir::CompileStatus Status = lir::compileAllLlvm(
        *F.App.File, F.Region.Methods, Options, Code, &F.Captured.Profile);
    benchmark::DoNotOptimize(Status);
  }
}
BENCHMARK(BM_LlvmBackendCompile);

void BM_AndroidCompile(benchmark::State &State) {
  ReplayFixture &F = ReplayFixture::get();
  for (auto _ : State) {
    vm::CodeCache Code;
    hgraph::compileAllAndroid(*F.App.File, F.Region.Methods, Code);
    benchmark::DoNotOptimize(Code.size());
  }
}
BENCHMARK(BM_AndroidCompile);

void BM_VerifiedReplay(benchmark::State &State) {
  ReplayFixture &F = ReplayFixture::get();
  replay::Replayer Rep(*F.App.File, F.Natives, F.App.RtConfig, 3);
  for (auto _ : State) {
    support::Result<replay::ReplayResult> R =
        Rep.verifiedReplay(F.Captured.Cap, F.Android, F.Captured.Map);
    benchmark::DoNotOptimize(R.ok());
  }
}
BENCHMARK(BM_VerifiedReplay);

} // namespace

BENCHMARK_MAIN();
