//===- bench/micro_replay.cpp - google-benchmark replay/compiler micros ------===//
//
// Wall-clock microbenchmarks of one replay (the GA's inner loop), the LLVM
// backend compilation, and the two execution tiers — the costs that
// determine how long an offline search session takes.
//
//===----------------------------------------------------------------------===//

#include "core/IterativeCompiler.h"
#include "hgraph/AndroidCompiler.h"
#include "lir/Backend.h"
#include "replay/Replayer.h"
#include "workloads/Workloads.h"

#include <benchmark/benchmark.h>

using namespace ropt;

namespace {

/// Shared setup: one app captured and ready to replay.
struct ReplayFixture {
  workloads::Application App;
  core::PipelineConfig Config;
  profiler::HotRegion Region;
  core::IterativeCompiler::CapturedRegion Captured;
  vm::NativeRegistry Natives;
  vm::CodeCache Android;

  explicit ReplayFixture(const char *Name)
      : App(workloads::buildByName(Name)),
        Natives(vm::NativeRegistry::standardLibrary()) {
    core::IterativeCompiler Pipeline(Config);
    auto P = Pipeline.profileApp(App);
    Region = *P.Region;
    Captured = *Pipeline.captureRegion(*P.Instance, Region);
    hgraph::compileAllAndroid(*App.File, Region.Methods, Android);
  }

  /// Kernel shape: long-running numeric region, small capture. Replay
  /// cost is dominated by executing the region, so sessions buy little.
  static ReplayFixture &kernel() {
    static ReplayFixture F("FFT");
    return F;
  }

  /// Interactive shape (the paper's subject): hundreds of captured heap
  /// pages behind a short event-handler region. The fresh path re-restores
  /// every page per replay; a session delta-resets the few dirtied ones.
  static ReplayFixture &interactive() {
    static ReplayFixture F("4inaRow");
    return F;
  }
};

void runFresh(benchmark::State &State, ReplayFixture &F) {
  replay::Replayer Rep(*F.App.File, F.Natives, F.App.RtConfig, 3);
  for (auto _ : State) {
    auto R = Rep.replay(F.Captured.Cap, replay::ReplayCode::Compiled,
                        &F.Android);
    benchmark::DoNotOptimize(R.Result.Cycles);
  }
  State.SetItemsProcessed(State.iterations());
  State.counters["replays_per_sec"] = benchmark::Counter(
      static_cast<double>(State.iterations()), benchmark::Counter::kIsRate);
}

void runSession(benchmark::State &State, ReplayFixture &F) {
  replay::Replayer Rep(*F.App.File, F.Natives, F.App.RtConfig, 3);
  Rep.setSessionMode(true);
  for (auto _ : State) {
    auto R = Rep.replay(F.Captured.Cap, replay::ReplayCode::Compiled,
                        &F.Android);
    benchmark::DoNotOptimize(R.Result.Cycles);
  }
  State.SetItemsProcessed(State.iterations());
  State.counters["replays_per_sec"] = benchmark::Counter(
      static_cast<double>(State.iterations()), benchmark::Counter::kIsRate);
  State.counters["pages_per_reset"] = benchmark::Counter(
      Rep.sessionStats().pagesPerReset());
}

void BM_CompiledReplay(benchmark::State &State) {
  runFresh(State, ReplayFixture::kernel());
}
BENCHMARK(BM_CompiledReplay);

/// Kernel region under a session: execution dominates, so the win is the
/// loader amortization only (~1.3-1.6x). Kept honest next to the
/// interactive pair below.
void BM_KernelSessionReplay(benchmark::State &State) {
  runSession(State, ReplayFixture::kernel());
}
BENCHMARK(BM_KernelSessionReplay);

/// Fresh-rebuild baseline on the interactive fixture: every replay
/// re-forks the boot template and re-restores all captured pages.
void BM_FreshReplay(benchmark::State &State) {
  runFresh(State, ReplayFixture::interactive());
}
BENCHMARK(BM_FreshReplay);

/// The fork-server path: one restored space per capture, dirty-page delta
/// reset between replays. The CI gate compares this against
/// BM_FreshReplay (fresh rebuild per replay, same fixture) — sessions
/// must be at least 2x (5x locally).
void BM_SessionReplay(benchmark::State &State) {
  runSession(State, ReplayFixture::interactive());
}
BENCHMARK(BM_SessionReplay);

/// Same-binary batching as the evaluation engine drives it: a burst of
/// replays of one binary against one live session, amortizing the single
/// loader run across the whole measurement block.
void BM_BatchedSessionReplay(benchmark::State &State) {
  ReplayFixture &F = ReplayFixture::interactive();
  replay::Replayer Rep(*F.App.File, F.Natives, F.App.RtConfig, 3);
  Rep.setSessionMode(true);
  const int Block = 10; // The paper's replays-per-evaluation budget.
  for (auto _ : State) {
    uint64_t Sum = 0;
    for (int I = 0; I != Block; ++I)
      Sum += Rep.replay(F.Captured.Cap, replay::ReplayCode::Compiled,
                        &F.Android)
                 .Result.Cycles;
    benchmark::DoNotOptimize(Sum);
  }
  State.SetItemsProcessed(State.iterations() * Block);
  State.counters["replays_per_sec"] = benchmark::Counter(
      static_cast<double>(State.iterations() * Block),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BatchedSessionReplay);

void BM_InterpretedReplay(benchmark::State &State) {
  ReplayFixture &F = ReplayFixture::kernel();
  replay::Replayer Rep(*F.App.File, F.Natives, F.App.RtConfig, 3);
  for (auto _ : State) {
    auto R =
        Rep.replay(F.Captured.Cap, replay::ReplayCode::Interpreter, nullptr);
    benchmark::DoNotOptimize(R.Result.Cycles);
  }
}
BENCHMARK(BM_InterpretedReplay);

void BM_LlvmBackendCompile(benchmark::State &State) {
  ReplayFixture &F = ReplayFixture::kernel();
  lir::CompileOptions Options;
  Options.Pipeline = lir::o3Pipeline();
  for (auto _ : State) {
    vm::CodeCache Code;
    lir::CompileStatus Status = lir::compileAllLlvm(
        *F.App.File, F.Region.Methods, Options, Code, &F.Captured.Profile);
    benchmark::DoNotOptimize(Status);
  }
}
BENCHMARK(BM_LlvmBackendCompile);

void BM_AndroidCompile(benchmark::State &State) {
  ReplayFixture &F = ReplayFixture::kernel();
  for (auto _ : State) {
    vm::CodeCache Code;
    hgraph::compileAllAndroid(*F.App.File, F.Region.Methods, Code);
    benchmark::DoNotOptimize(Code.size());
  }
}
BENCHMARK(BM_AndroidCompile);

void BM_VerifiedReplay(benchmark::State &State) {
  ReplayFixture &F = ReplayFixture::kernel();
  replay::Replayer Rep(*F.App.File, F.Natives, F.App.RtConfig, 3);
  for (auto _ : State) {
    support::Result<replay::ReplayResult> R =
        Rep.verifiedReplay(F.Captured.Cap, F.Android, F.Captured.Map);
    benchmark::DoNotOptimize(R.ok());
  }
}
BENCHMARK(BM_VerifiedReplay);

} // namespace

BENCHMARK_MAIN();
