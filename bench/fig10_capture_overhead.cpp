//===- bench/fig10_capture_overhead.cpp - Figure 10 -----------------------------===//
//
// Online capture overhead per application, broken into fork, preparation
// (maps parsing + read-protection) and faults+CoW. Paper: 5.7ms minimum,
// 14.5ms average, ~30ms maximum; write-heavy benchmarks (BubbleSort, FFT)
// dominate the fault/CoW component.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"
#include "support/Format.h"

using namespace ropt;
using namespace ropt::bench;

int main(int Argc, char **Argv) {
  Options Opt = parseArgs(Argc, Argv);
  core::PipelineConfig Config = pipelineConfig(Opt);
  beginObservability(Opt);

  printHeader("Figure 10: online capture overhead breakdown (ms)",
              "fork 1-6ms; preparation 4-11ms; faults+CoW usually small "
              "but 10-16ms for write-heavy kernels; total avg ~14.5ms, "
              "max ~30ms");

  std::printf("%-22s %8s %8s %8s %8s   %s\n", "application", "fork",
              "prep", "flt+CoW", "total", "events (faults/CoW)");
  printRule(86);

  CsvSink Csv(Opt, "fig10_capture_overhead.csv",
              "app,fork_ms,prep_ms,fault_cow_ms,total_ms,faults,cow");
  double Sum = 0, Max = 0, Min = 1e18;
  int N = 0;
  for (const workloads::Application &App : selectedApps(Opt)) {
    core::IterativeCompiler Pipeline(Config);
    core::IterativeCompiler::ProfiledApp P = Pipeline.profileApp(App);
    if (!P.Region) {
      std::printf("%-22s  no region\n", App.Name.c_str());
      continue;
    }
    // Event counts come from the metrics registry the capture layer
    // maintains (snapshot delta around the capture), not from a
    // harness-side re-derivation.
    MetricsSnapshot Before = Metrics::instance().snapshot();
    auto Captured = Pipeline.captureRegion(*P.Instance, *P.Region);
    MetricsSnapshot After = Metrics::instance().snapshot();
    if (!Captured) {
      std::printf("%-22s  capture failed\n", App.Name.c_str());
      continue;
    }
    const capture::CaptureOverheads &O = Captured->Cap.Overheads;
    uint64_t Faults = After.counter("capture.read_faults") +
                      After.counter("capture.write_faults") -
                      Before.counter("capture.read_faults") -
                      Before.counter("capture.write_faults");
    uint64_t Cow = After.counter("capture.cow_copies") -
                   Before.counter("capture.cow_copies");
    std::printf("%-22s %7.1f  %7.1f  %7.1f  %7.1f   %llu/%llu\n",
                App.Name.c_str(), O.ForkMs, O.PreparationMs, O.FaultCowMs,
                O.totalMs(), static_cast<unsigned long long>(Faults),
                static_cast<unsigned long long>(Cow));
    Csv.row(format("%s,%.3f,%.3f,%.3f,%.3f,%llu,%llu",
                   App.Name.c_str(), O.ForkMs, O.PreparationMs,
                   O.FaultCowMs, O.totalMs(),
                   static_cast<unsigned long long>(Faults),
                   static_cast<unsigned long long>(Cow)));
    Sum += O.totalMs();
    Max = std::max(Max, O.totalMs());
    Min = std::min(Min, O.totalMs());
    ++N;
    std::fflush(stdout);
  }
  printRule(86);
  if (N)
    std::printf("%-22s %34.1f   (paper avg 14.5ms; min 5.7; max ~30)\n"
                "min %.1fms  max %.1fms\n",
                "AVERAGE", Sum / N, Min, Max);
  finishObservability(Opt);
  return 0;
}
