//===- bench/abl_ga_vs_random.cpp - Does the GA earn its keep? --------------===//
//
// Section 4 motivates the genetic algorithm over simpler strategies. This
// ablation gives random search the *same* evaluation budget the GA spends
// (including its gen-0 replacement retries and hill climb) and compares
// the best region speedup each strategy finds.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

using namespace ropt;
using namespace ropt::bench;

int main(int Argc, char **Argv) {
  Options Opt = parseArgs(Argc, Argv);
  core::PipelineConfig Config = pipelineConfig(Opt);
  beginObservability(Opt);
  ReportScope Report(Opt, "abl_ga_vs_random", Config);

  printHeader("Ablation: GA vs random search at equal evaluation budget",
              "the GA's selection pressure matters; random search wastes "
              "its budget on broken or slow genomes");

  std::printf("%-18s %8s | %9s %9s | %10s %10s\n", "app", "evals", "ga",
              "random", "ga-valid%", "rnd-valid%");

  std::vector<std::string> Apps = {"FFT", "SOR", "Sieve",
                                   "Reversi Android"};
  if (Opt.Fast)
    Apps = {"FFT", "Sieve"};

  double SumGa = 0, SumRnd = 0;
  int Rows = 0;
  for (const std::string &Name : Apps) {
    workloads::Application App = workloads::buildByName(Name);
    core::IterativeCompiler Pipeline(Config);
    core::IterativeCompiler::ProfiledApp P = Pipeline.profileApp(App);
    if (!P.Region)
      continue;
    auto Cap = Pipeline.captureRegion(*P.Instance, *P.Region);
    if (!Cap)
      continue;
    core::RegionEvaluator Eval(App, *P.Region, Cap->Cap, Cap->Map,
                               Cap->Profile, Config);
    double Android = Eval.evaluateAndroid().MedianCycles;
    double O3 = Eval.evaluatePipeline(lir::o3Pipeline()).MedianCycles;

    // --- The GA, tracing so we know its true evaluation count. --------
    Report.beginApp(Name);
    search::GaTrace Trace;
    search::FunctionEvaluator GaEval(
        [&](const search::Genome &G) { return Eval.evaluate(G); });
    search::GeneticSearch GA(Config.Search.GA, Config.Seed ^ 0x6a5e,
                             GaEval, Report.report());
    std::optional<search::Scored> Best = GA.run(Android, O3, &Trace);
    if (report::RunReport *RR = Report.report()) {
      report::AppOutcome O;
      O.Succeeded = Best.has_value();
      O.RegionAndroid = Android;
      O.RegionO3 = O3;
      O.RegionBest = Best ? Best->E.MedianCycles : 0.0;
      RR->endApp(O);
    }
    int Budget = static_cast<int>(Trace.Evaluations.size());
    int GaValid = 0;
    for (const search::TraceEntry &E : Trace.Evaluations)
      GaValid += E.Valid;
    double GaSpeedup =
        Best && Best->E.ok() ? Android / Best->E.MedianCycles : 0.0;

    // --- Random search with exactly the same budget. -------------------
    Rng R(Config.Seed ^ 0x7a9d);
    double RndBestCycles = 0.0;
    int RndValid = 0;
    for (int I = 0; I != Budget; ++I) {
      search::Genome G = search::randomGenome(R, Config.Search.GA.Genomes);
      search::Evaluation E = Eval.evaluate(G);
      if (!E.ok())
        continue;
      ++RndValid;
      if (RndBestCycles == 0.0 || E.MedianCycles < RndBestCycles)
        RndBestCycles = E.MedianCycles;
    }
    double RndSpeedup = RndBestCycles ? Android / RndBestCycles : 0.0;

    std::printf("%-18s %8d | %8.2fx %8.2fx | %9.0f%% %9.0f%%\n",
                Name.c_str(), Budget, GaSpeedup, RndSpeedup,
                100.0 * GaValid / std::max(1, Budget),
                100.0 * RndValid / std::max(1, Budget));
    SumGa += GaSpeedup;
    SumRnd += RndSpeedup;
    ++Rows;
  }

  if (Rows)
    std::printf("\naverage best-found speedup: GA %.2fx, random %.2fx\n",
                SumGa / Rows, SumRnd / Rows);
  finishObservability(Opt);
  return 0;
}
