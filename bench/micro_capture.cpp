//===- bench/micro_capture.cpp - google-benchmark capture micros -------------===//
//
// Wall-clock microbenchmarks of the substrate operations behind Figure 10:
// fork+CoW, read-protection sweeps, and the full capture protocol. These
// measure the *simulator's* real cost (engineering health), not the
// modelled on-device milliseconds.
//
//===----------------------------------------------------------------------===//

#include "capture/CaptureManager.h"
#include "vm/Runtime.h"
#include "workloads/Workloads.h"

#include <benchmark/benchmark.h>

using namespace ropt;

namespace {

/// A booted FFT process the benchmarks operate on.
struct FFTProcess {
  workloads::Application App;
  os::Kernel Kernel;
  os::Process *Proc = nullptr;
  vm::NativeRegistry Natives;
  std::unique_ptr<vm::Runtime> RT;
  dex::MethodId Kern = dex::InvalidId;

  FFTProcess()
      : App(workloads::buildByName("FFT")),
        Natives(vm::NativeRegistry::standardLibrary()) {
    Proc = &Kernel.spawn();
    vm::Runtime::mapStandardLayout(Proc->space(), *App.File, App.RtConfig);
    RT = std::make_unique<vm::Runtime>(Proc->space(), *App.File, Natives,
                                       App.RtConfig);
    RT->call(App.InitEntry, App.argsFor(App.InitParam));
    Kern = App.File->findMethod("fftKernel");
  }
};

void BM_ForkCow(benchmark::State &State) {
  FFTProcess P;
  for (auto _ : State) {
    os::Process &Child = P.Kernel.fork(*P.Proc);
    benchmark::DoNotOptimize(Child.pid());
    P.Kernel.reap(Child.pid());
  }
}
BENCHMARK(BM_ForkCow);

void BM_ProtectSweep(benchmark::State &State) {
  FFTProcess P;
  for (auto _ : State) {
    for (const os::Mapping &M : P.Proc->space().procMaps())
      if (M.Kind == os::MappingKind::Heap)
        P.Proc->space().protectRange(M.Start, M.sizeBytes(), os::ProtNone);
    for (const os::Mapping &M : P.Proc->space().procMaps())
      if (M.Kind == os::MappingKind::Heap)
        P.Proc->space().protectRange(M.Start, M.sizeBytes(),
                                     os::ProtRead | os::ProtWrite);
  }
}
BENCHMARK(BM_ProtectSweep);

void BM_FullCapture(benchmark::State &State) {
  FFTProcess P;
  int64_t Param = 100;
  for (auto _ : State) {
    capture::CaptureManager CM(P.Kernel, *P.Proc, *P.RT);
    CM.armCapture(P.Kern);
    P.RT->call(P.App.SessionEntry, P.App.argsFor(Param++));
    benchmark::DoNotOptimize(CM.captureReady());
  }
}
BENCHMARK(BM_FullCapture);

void BM_CaptureSerialization(benchmark::State &State) {
  FFTProcess P;
  capture::CaptureManager CM(P.Kernel, *P.Proc, *P.RT);
  CM.armCapture(P.Kern);
  P.RT->call(P.App.SessionEntry, P.App.argsFor(7));
  capture::Capture Cap = CM.takeCapture().value();
  for (auto _ : State) {
    std::vector<uint8_t> Bytes = Cap.serialize();
    benchmark::DoNotOptimize(Bytes.size());
  }
}
BENCHMARK(BM_CaptureSerialization);

} // namespace

BENCHMARK_MAIN();
