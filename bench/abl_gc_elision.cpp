//===- bench/abl_gc_elision.cpp - Section 5.1's FFT ablation --------------------===//
//
// The paper's FFT story: heap-related checks make plain -O3 lose ground to
// the Android compiler; the GA learns loop unrolling combined with the
// backend's post-loop GC-check elision. This harness isolates each piece.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

using namespace ropt;
using namespace ropt::bench;

int main(int Argc, char **Argv) {
  Options Opt = parseArgs(Argc, Argv);
  core::PipelineConfig Config = pipelineConfig(Opt);

  printHeader("Ablation: unroll + gc-elide on the FFT kernel (Section 5.1)",
              "stock -O3 pays the duplicated GC polls; gc-elide alone "
              "helps; unroll+gc-elide (the GA's discovery) wins");

  workloads::Application App = workloads::buildByName("FFT");
  core::IterativeCompiler Pipeline(Config);
  core::IterativeCompiler::ProfiledApp P = Pipeline.profileApp(App);
  auto Captured = Pipeline.captureRegion(*P.Instance, *P.Region);
  if (!Captured) {
    std::fprintf(stderr, "capture failed\n");
    return 1;
  }
  core::RegionEvaluator Eval(App, *P.Region, Captured->Cap, Captured->Map,
                             Captured->Profile, Config);

  double Android = Eval.evaluateAndroid().MedianCycles;
  auto Mk = [](lir::PassId Id, int Param = 0) {
    lir::PassInstance X;
    X.Id = Id;
    X.IntParam = Param;
    return X;
  };
  auto Show = [&](const char *Name,
                  const std::vector<lir::PassInstance> &Pipe) {
    search::Evaluation E = Eval.evaluatePipeline(Pipe);
    if (E.ok())
      std::printf("%-26s %12.0f cycles  %6.2fx vs Android\n", Name,
                  E.MedianCycles, Android / E.MedianCycles);
    else
      std::printf("%-26s %s\n", Name, search::evalKindName(E.Kind));
  };

  std::printf("%-26s %12.0f cycles  %6.2fx\n", "Android compiler", Android,
              1.0);
  Show("LLVM -O3 (stock)", lir::o3Pipeline());
  {
    auto Pipe = lir::o3Pipeline();
    Pipe.push_back(Mk(lir::PassId::GcElide));
    Show("-O3 + gc-elide", Pipe);
  }
  for (int Factor : {2, 4, 8, 16}) {
    auto Pipe = lir::o2Pipeline();
    Pipe.push_back(Mk(lir::PassId::LoopRotate));
    Pipe.push_back(Mk(lir::PassId::LoopUnroll, Factor));
    Pipe.push_back(Mk(lir::PassId::GcElide));
    Pipe.push_back(Mk(lir::PassId::Dce));
    Pipe.push_back(Mk(lir::PassId::SimplifyCfg));
    char Name[64];
    std::snprintf(Name, sizeof(Name), "rotate+unroll=%d+gc-elide",
                  Factor);
    Show(Name, Pipe);
  }
  {
    auto Pipe = lir::o2Pipeline();
    Pipe.push_back(Mk(lir::PassId::LoopRotate));
    Pipe.push_back(Mk(lir::PassId::LoopUnroll, 4));
    Pipe.push_back(Mk(lir::PassId::Dce));
    Pipe.push_back(Mk(lir::PassId::SimplifyCfg));
    Show("rotate+unroll=4 (no elide)", Pipe);
  }
  return 0;
}
