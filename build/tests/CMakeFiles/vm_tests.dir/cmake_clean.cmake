file(REMOVE_RECURSE
  "CMakeFiles/vm_tests.dir/VmTests.cpp.o"
  "CMakeFiles/vm_tests.dir/VmTests.cpp.o.d"
  "vm_tests"
  "vm_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
