
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/VmTests.cpp" "tests/CMakeFiles/vm_tests.dir/VmTests.cpp.o" "gcc" "tests/CMakeFiles/vm_tests.dir/VmTests.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ropt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/ropt_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/search/CMakeFiles/ropt_search.dir/DependInfo.cmake"
  "/root/repo/build/src/replay/CMakeFiles/ropt_replay.dir/DependInfo.cmake"
  "/root/repo/build/src/capture/CMakeFiles/ropt_capture.dir/DependInfo.cmake"
  "/root/repo/build/src/profiler/CMakeFiles/ropt_profiler.dir/DependInfo.cmake"
  "/root/repo/build/src/lir/CMakeFiles/ropt_lir.dir/DependInfo.cmake"
  "/root/repo/build/src/hgraph/CMakeFiles/ropt_hgraph.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/ropt_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/dex/CMakeFiles/ropt_dex.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/ropt_os.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ropt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
