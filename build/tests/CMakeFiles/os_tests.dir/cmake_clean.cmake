file(REMOVE_RECURSE
  "CMakeFiles/os_tests.dir/OsTests.cpp.o"
  "CMakeFiles/os_tests.dir/OsTests.cpp.o.d"
  "os_tests"
  "os_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/os_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
