# Empty dependencies file for capture_replay_tests.
# This may be replaced when dependencies are built.
