file(REMOVE_RECURSE
  "CMakeFiles/capture_replay_tests.dir/CaptureReplayTests.cpp.o"
  "CMakeFiles/capture_replay_tests.dir/CaptureReplayTests.cpp.o.d"
  "capture_replay_tests"
  "capture_replay_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capture_replay_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
