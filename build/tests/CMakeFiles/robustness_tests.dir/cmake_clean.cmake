file(REMOVE_RECURSE
  "CMakeFiles/robustness_tests.dir/RobustnessTests.cpp.o"
  "CMakeFiles/robustness_tests.dir/RobustnessTests.cpp.o.d"
  "robustness_tests"
  "robustness_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robustness_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
