# Empty dependencies file for robustness_tests.
# This may be replaced when dependencies are built.
