# Empty compiler generated dependencies file for lir_tests.
# This may be replaced when dependencies are built.
