file(REMOVE_RECURSE
  "CMakeFiles/lir_tests.dir/LirTests.cpp.o"
  "CMakeFiles/lir_tests.dir/LirTests.cpp.o.d"
  "lir_tests"
  "lir_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lir_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
