# Empty compiler generated dependencies file for hgraph_tests.
# This may be replaced when dependencies are built.
