file(REMOVE_RECURSE
  "CMakeFiles/hgraph_tests.dir/HGraphTests.cpp.o"
  "CMakeFiles/hgraph_tests.dir/HGraphTests.cpp.o.d"
  "hgraph_tests"
  "hgraph_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hgraph_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
