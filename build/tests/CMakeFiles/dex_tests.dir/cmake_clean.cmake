file(REMOVE_RECURSE
  "CMakeFiles/dex_tests.dir/DexTests.cpp.o"
  "CMakeFiles/dex_tests.dir/DexTests.cpp.o.d"
  "dex_tests"
  "dex_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dex_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
