# Empty compiler generated dependencies file for dex_tests.
# This may be replaced when dependencies are built.
