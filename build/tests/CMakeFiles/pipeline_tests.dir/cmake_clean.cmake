file(REMOVE_RECURSE
  "CMakeFiles/pipeline_tests.dir/PipelineTests.cpp.o"
  "CMakeFiles/pipeline_tests.dir/PipelineTests.cpp.o.d"
  "pipeline_tests"
  "pipeline_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
