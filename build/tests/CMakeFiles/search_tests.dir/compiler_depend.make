# Empty compiler generated dependencies file for search_tests.
# This may be replaced when dependencies are built.
