file(REMOVE_RECURSE
  "CMakeFiles/search_tests.dir/SearchTests.cpp.o"
  "CMakeFiles/search_tests.dir/SearchTests.cpp.o.d"
  "search_tests"
  "search_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/search_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
