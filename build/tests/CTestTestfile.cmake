# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(support_tests "/root/repo/build/tests/support_tests")
set_tests_properties(support_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;10;ropt_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(os_tests "/root/repo/build/tests/os_tests")
set_tests_properties(os_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;11;ropt_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(dex_tests "/root/repo/build/tests/dex_tests")
set_tests_properties(dex_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;12;ropt_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(vm_tests "/root/repo/build/tests/vm_tests")
set_tests_properties(vm_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;13;ropt_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(hgraph_tests "/root/repo/build/tests/hgraph_tests")
set_tests_properties(hgraph_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;14;ropt_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(lir_tests "/root/repo/build/tests/lir_tests")
set_tests_properties(lir_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;15;ropt_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(capture_replay_tests "/root/repo/build/tests/capture_replay_tests")
set_tests_properties(capture_replay_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;16;ropt_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(workload_tests "/root/repo/build/tests/workload_tests")
set_tests_properties(workload_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;17;ropt_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(search_tests "/root/repo/build/tests/search_tests")
set_tests_properties(search_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;18;ropt_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(pipeline_tests "/root/repo/build/tests/pipeline_tests")
set_tests_properties(pipeline_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;19;ropt_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(robustness_tests "/root/repo/build/tests/robustness_tests")
set_tests_properties(robustness_tests PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;20;ropt_add_test;/root/repo/tests/CMakeLists.txt;0;")
