# Empty dependencies file for ropt_core.
# This may be replaced when dependencies are built.
