file(REMOVE_RECURSE
  "libropt_core.a"
)
