file(REMOVE_RECURSE
  "CMakeFiles/ropt_core.dir/AppInstance.cpp.o"
  "CMakeFiles/ropt_core.dir/AppInstance.cpp.o.d"
  "CMakeFiles/ropt_core.dir/IterativeCompiler.cpp.o"
  "CMakeFiles/ropt_core.dir/IterativeCompiler.cpp.o.d"
  "CMakeFiles/ropt_core.dir/OnlineEvaluator.cpp.o"
  "CMakeFiles/ropt_core.dir/OnlineEvaluator.cpp.o.d"
  "libropt_core.a"
  "libropt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ropt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
