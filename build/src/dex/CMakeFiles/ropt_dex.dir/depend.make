# Empty dependencies file for ropt_dex.
# This may be replaced when dependencies are built.
