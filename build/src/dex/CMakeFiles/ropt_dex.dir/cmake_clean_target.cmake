file(REMOVE_RECURSE
  "libropt_dex.a"
)
