
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dex/Builder.cpp" "src/dex/CMakeFiles/ropt_dex.dir/Builder.cpp.o" "gcc" "src/dex/CMakeFiles/ropt_dex.dir/Builder.cpp.o.d"
  "/root/repo/src/dex/Bytecode.cpp" "src/dex/CMakeFiles/ropt_dex.dir/Bytecode.cpp.o" "gcc" "src/dex/CMakeFiles/ropt_dex.dir/Bytecode.cpp.o.d"
  "/root/repo/src/dex/DexFile.cpp" "src/dex/CMakeFiles/ropt_dex.dir/DexFile.cpp.o" "gcc" "src/dex/CMakeFiles/ropt_dex.dir/DexFile.cpp.o.d"
  "/root/repo/src/dex/Disassembler.cpp" "src/dex/CMakeFiles/ropt_dex.dir/Disassembler.cpp.o" "gcc" "src/dex/CMakeFiles/ropt_dex.dir/Disassembler.cpp.o.d"
  "/root/repo/src/dex/Verifier.cpp" "src/dex/CMakeFiles/ropt_dex.dir/Verifier.cpp.o" "gcc" "src/dex/CMakeFiles/ropt_dex.dir/Verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/ropt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
