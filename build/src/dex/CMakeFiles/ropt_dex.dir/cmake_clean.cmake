file(REMOVE_RECURSE
  "CMakeFiles/ropt_dex.dir/Builder.cpp.o"
  "CMakeFiles/ropt_dex.dir/Builder.cpp.o.d"
  "CMakeFiles/ropt_dex.dir/Bytecode.cpp.o"
  "CMakeFiles/ropt_dex.dir/Bytecode.cpp.o.d"
  "CMakeFiles/ropt_dex.dir/DexFile.cpp.o"
  "CMakeFiles/ropt_dex.dir/DexFile.cpp.o.d"
  "CMakeFiles/ropt_dex.dir/Disassembler.cpp.o"
  "CMakeFiles/ropt_dex.dir/Disassembler.cpp.o.d"
  "CMakeFiles/ropt_dex.dir/Verifier.cpp.o"
  "CMakeFiles/ropt_dex.dir/Verifier.cpp.o.d"
  "libropt_dex.a"
  "libropt_dex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ropt_dex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
