# Empty compiler generated dependencies file for ropt_profiler.
# This may be replaced when dependencies are built.
