file(REMOVE_RECURSE
  "libropt_profiler.a"
)
