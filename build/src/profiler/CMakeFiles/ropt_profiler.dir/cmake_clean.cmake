file(REMOVE_RECURSE
  "CMakeFiles/ropt_profiler.dir/HotRegion.cpp.o"
  "CMakeFiles/ropt_profiler.dir/HotRegion.cpp.o.d"
  "CMakeFiles/ropt_profiler.dir/Replayability.cpp.o"
  "CMakeFiles/ropt_profiler.dir/Replayability.cpp.o.d"
  "libropt_profiler.a"
  "libropt_profiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ropt_profiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
