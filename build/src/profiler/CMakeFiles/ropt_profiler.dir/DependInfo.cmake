
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/profiler/HotRegion.cpp" "src/profiler/CMakeFiles/ropt_profiler.dir/HotRegion.cpp.o" "gcc" "src/profiler/CMakeFiles/ropt_profiler.dir/HotRegion.cpp.o.d"
  "/root/repo/src/profiler/Replayability.cpp" "src/profiler/CMakeFiles/ropt_profiler.dir/Replayability.cpp.o" "gcc" "src/profiler/CMakeFiles/ropt_profiler.dir/Replayability.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vm/CMakeFiles/ropt_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/dex/CMakeFiles/ropt_dex.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ropt_support.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/ropt_os.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
