# Empty compiler generated dependencies file for ropt_support.
# This may be replaced when dependencies are built.
