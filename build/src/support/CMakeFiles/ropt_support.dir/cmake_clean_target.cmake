file(REMOVE_RECURSE
  "libropt_support.a"
)
