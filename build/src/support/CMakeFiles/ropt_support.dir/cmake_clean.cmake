file(REMOVE_RECURSE
  "CMakeFiles/ropt_support.dir/Format.cpp.o"
  "CMakeFiles/ropt_support.dir/Format.cpp.o.d"
  "CMakeFiles/ropt_support.dir/Random.cpp.o"
  "CMakeFiles/ropt_support.dir/Random.cpp.o.d"
  "CMakeFiles/ropt_support.dir/Statistics.cpp.o"
  "CMakeFiles/ropt_support.dir/Statistics.cpp.o.d"
  "libropt_support.a"
  "libropt_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ropt_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
