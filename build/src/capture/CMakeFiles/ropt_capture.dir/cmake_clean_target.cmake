file(REMOVE_RECURSE
  "libropt_capture.a"
)
