# Empty dependencies file for ropt_capture.
# This may be replaced when dependencies are built.
