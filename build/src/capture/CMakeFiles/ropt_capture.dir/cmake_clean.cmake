file(REMOVE_RECURSE
  "CMakeFiles/ropt_capture.dir/Capture.cpp.o"
  "CMakeFiles/ropt_capture.dir/Capture.cpp.o.d"
  "CMakeFiles/ropt_capture.dir/CaptureManager.cpp.o"
  "CMakeFiles/ropt_capture.dir/CaptureManager.cpp.o.d"
  "libropt_capture.a"
  "libropt_capture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ropt_capture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
