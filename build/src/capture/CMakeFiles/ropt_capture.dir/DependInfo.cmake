
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/capture/Capture.cpp" "src/capture/CMakeFiles/ropt_capture.dir/Capture.cpp.o" "gcc" "src/capture/CMakeFiles/ropt_capture.dir/Capture.cpp.o.d"
  "/root/repo/src/capture/CaptureManager.cpp" "src/capture/CMakeFiles/ropt_capture.dir/CaptureManager.cpp.o" "gcc" "src/capture/CMakeFiles/ropt_capture.dir/CaptureManager.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vm/CMakeFiles/ropt_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/ropt_os.dir/DependInfo.cmake"
  "/root/repo/build/src/dex/CMakeFiles/ropt_dex.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ropt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
