file(REMOVE_RECURSE
  "CMakeFiles/ropt_search.dir/GeneticSearch.cpp.o"
  "CMakeFiles/ropt_search.dir/GeneticSearch.cpp.o.d"
  "CMakeFiles/ropt_search.dir/Genome.cpp.o"
  "CMakeFiles/ropt_search.dir/Genome.cpp.o.d"
  "libropt_search.a"
  "libropt_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ropt_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
