file(REMOVE_RECURSE
  "libropt_search.a"
)
