# Empty compiler generated dependencies file for ropt_search.
# This may be replaced when dependencies are built.
