
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/search/GeneticSearch.cpp" "src/search/CMakeFiles/ropt_search.dir/GeneticSearch.cpp.o" "gcc" "src/search/CMakeFiles/ropt_search.dir/GeneticSearch.cpp.o.d"
  "/root/repo/src/search/Genome.cpp" "src/search/CMakeFiles/ropt_search.dir/Genome.cpp.o" "gcc" "src/search/CMakeFiles/ropt_search.dir/Genome.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lir/CMakeFiles/ropt_lir.dir/DependInfo.cmake"
  "/root/repo/build/src/hgraph/CMakeFiles/ropt_hgraph.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ropt_support.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/ropt_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/ropt_os.dir/DependInfo.cmake"
  "/root/repo/build/src/dex/CMakeFiles/ropt_dex.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
