# Empty compiler generated dependencies file for ropt_workloads.
# This may be replaced when dependencies are built.
