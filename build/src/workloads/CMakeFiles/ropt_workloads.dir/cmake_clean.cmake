file(REMOVE_RECURSE
  "CMakeFiles/ropt_workloads.dir/ArtBenchmarks.cpp.o"
  "CMakeFiles/ropt_workloads.dir/ArtBenchmarks.cpp.o.d"
  "CMakeFiles/ropt_workloads.dir/InteractiveApps.cpp.o"
  "CMakeFiles/ropt_workloads.dir/InteractiveApps.cpp.o.d"
  "CMakeFiles/ropt_workloads.dir/Scimark.cpp.o"
  "CMakeFiles/ropt_workloads.dir/Scimark.cpp.o.d"
  "CMakeFiles/ropt_workloads.dir/Workloads.cpp.o"
  "CMakeFiles/ropt_workloads.dir/Workloads.cpp.o.d"
  "libropt_workloads.a"
  "libropt_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ropt_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
