
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/ArtBenchmarks.cpp" "src/workloads/CMakeFiles/ropt_workloads.dir/ArtBenchmarks.cpp.o" "gcc" "src/workloads/CMakeFiles/ropt_workloads.dir/ArtBenchmarks.cpp.o.d"
  "/root/repo/src/workloads/InteractiveApps.cpp" "src/workloads/CMakeFiles/ropt_workloads.dir/InteractiveApps.cpp.o" "gcc" "src/workloads/CMakeFiles/ropt_workloads.dir/InteractiveApps.cpp.o.d"
  "/root/repo/src/workloads/Scimark.cpp" "src/workloads/CMakeFiles/ropt_workloads.dir/Scimark.cpp.o" "gcc" "src/workloads/CMakeFiles/ropt_workloads.dir/Scimark.cpp.o.d"
  "/root/repo/src/workloads/Workloads.cpp" "src/workloads/CMakeFiles/ropt_workloads.dir/Workloads.cpp.o" "gcc" "src/workloads/CMakeFiles/ropt_workloads.dir/Workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vm/CMakeFiles/ropt_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/dex/CMakeFiles/ropt_dex.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ropt_support.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/ropt_os.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
