file(REMOVE_RECURSE
  "libropt_workloads.a"
)
