file(REMOVE_RECURSE
  "libropt_lir.a"
)
