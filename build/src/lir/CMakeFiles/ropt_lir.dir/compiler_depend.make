# Empty compiler generated dependencies file for ropt_lir.
# This may be replaced when dependencies are built.
