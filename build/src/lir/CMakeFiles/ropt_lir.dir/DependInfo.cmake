
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lir/Analysis.cpp" "src/lir/CMakeFiles/ropt_lir.dir/Analysis.cpp.o" "gcc" "src/lir/CMakeFiles/ropt_lir.dir/Analysis.cpp.o.d"
  "/root/repo/src/lir/Backend.cpp" "src/lir/CMakeFiles/ropt_lir.dir/Backend.cpp.o" "gcc" "src/lir/CMakeFiles/ropt_lir.dir/Backend.cpp.o.d"
  "/root/repo/src/lir/Codegen.cpp" "src/lir/CMakeFiles/ropt_lir.dir/Codegen.cpp.o" "gcc" "src/lir/CMakeFiles/ropt_lir.dir/Codegen.cpp.o.d"
  "/root/repo/src/lir/FromHGraph.cpp" "src/lir/CMakeFiles/ropt_lir.dir/FromHGraph.cpp.o" "gcc" "src/lir/CMakeFiles/ropt_lir.dir/FromHGraph.cpp.o.d"
  "/root/repo/src/lir/InlineDevirt.cpp" "src/lir/CMakeFiles/ropt_lir.dir/InlineDevirt.cpp.o" "gcc" "src/lir/CMakeFiles/ropt_lir.dir/InlineDevirt.cpp.o.d"
  "/root/repo/src/lir/Lir.cpp" "src/lir/CMakeFiles/ropt_lir.dir/Lir.cpp.o" "gcc" "src/lir/CMakeFiles/ropt_lir.dir/Lir.cpp.o.d"
  "/root/repo/src/lir/LoopPasses.cpp" "src/lir/CMakeFiles/ropt_lir.dir/LoopPasses.cpp.o" "gcc" "src/lir/CMakeFiles/ropt_lir.dir/LoopPasses.cpp.o.d"
  "/root/repo/src/lir/Passes.cpp" "src/lir/CMakeFiles/ropt_lir.dir/Passes.cpp.o" "gcc" "src/lir/CMakeFiles/ropt_lir.dir/Passes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hgraph/CMakeFiles/ropt_hgraph.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/ropt_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/dex/CMakeFiles/ropt_dex.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ropt_support.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/ropt_os.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
