file(REMOVE_RECURSE
  "CMakeFiles/ropt_lir.dir/Analysis.cpp.o"
  "CMakeFiles/ropt_lir.dir/Analysis.cpp.o.d"
  "CMakeFiles/ropt_lir.dir/Backend.cpp.o"
  "CMakeFiles/ropt_lir.dir/Backend.cpp.o.d"
  "CMakeFiles/ropt_lir.dir/Codegen.cpp.o"
  "CMakeFiles/ropt_lir.dir/Codegen.cpp.o.d"
  "CMakeFiles/ropt_lir.dir/FromHGraph.cpp.o"
  "CMakeFiles/ropt_lir.dir/FromHGraph.cpp.o.d"
  "CMakeFiles/ropt_lir.dir/InlineDevirt.cpp.o"
  "CMakeFiles/ropt_lir.dir/InlineDevirt.cpp.o.d"
  "CMakeFiles/ropt_lir.dir/Lir.cpp.o"
  "CMakeFiles/ropt_lir.dir/Lir.cpp.o.d"
  "CMakeFiles/ropt_lir.dir/LoopPasses.cpp.o"
  "CMakeFiles/ropt_lir.dir/LoopPasses.cpp.o.d"
  "CMakeFiles/ropt_lir.dir/Passes.cpp.o"
  "CMakeFiles/ropt_lir.dir/Passes.cpp.o.d"
  "libropt_lir.a"
  "libropt_lir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ropt_lir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
