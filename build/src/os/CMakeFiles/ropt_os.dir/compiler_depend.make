# Empty compiler generated dependencies file for ropt_os.
# This may be replaced when dependencies are built.
