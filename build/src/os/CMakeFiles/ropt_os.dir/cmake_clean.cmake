file(REMOVE_RECURSE
  "CMakeFiles/ropt_os.dir/AddressSpace.cpp.o"
  "CMakeFiles/ropt_os.dir/AddressSpace.cpp.o.d"
  "CMakeFiles/ropt_os.dir/Kernel.cpp.o"
  "CMakeFiles/ropt_os.dir/Kernel.cpp.o.d"
  "libropt_os.a"
  "libropt_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ropt_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
