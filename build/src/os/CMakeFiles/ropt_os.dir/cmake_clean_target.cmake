file(REMOVE_RECURSE
  "libropt_os.a"
)
