
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/os/AddressSpace.cpp" "src/os/CMakeFiles/ropt_os.dir/AddressSpace.cpp.o" "gcc" "src/os/CMakeFiles/ropt_os.dir/AddressSpace.cpp.o.d"
  "/root/repo/src/os/Kernel.cpp" "src/os/CMakeFiles/ropt_os.dir/Kernel.cpp.o" "gcc" "src/os/CMakeFiles/ropt_os.dir/Kernel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/ropt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
