# Empty dependencies file for ropt_replay.
# This may be replaced when dependencies are built.
