file(REMOVE_RECURSE
  "CMakeFiles/ropt_replay.dir/Replayer.cpp.o"
  "CMakeFiles/ropt_replay.dir/Replayer.cpp.o.d"
  "libropt_replay.a"
  "libropt_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ropt_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
