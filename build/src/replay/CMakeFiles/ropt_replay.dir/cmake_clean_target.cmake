file(REMOVE_RECURSE
  "libropt_replay.a"
)
