
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hgraph/AndroidCompiler.cpp" "src/hgraph/CMakeFiles/ropt_hgraph.dir/AndroidCompiler.cpp.o" "gcc" "src/hgraph/CMakeFiles/ropt_hgraph.dir/AndroidCompiler.cpp.o.d"
  "/root/repo/src/hgraph/Build.cpp" "src/hgraph/CMakeFiles/ropt_hgraph.dir/Build.cpp.o" "gcc" "src/hgraph/CMakeFiles/ropt_hgraph.dir/Build.cpp.o.d"
  "/root/repo/src/hgraph/Codegen.cpp" "src/hgraph/CMakeFiles/ropt_hgraph.dir/Codegen.cpp.o" "gcc" "src/hgraph/CMakeFiles/ropt_hgraph.dir/Codegen.cpp.o.d"
  "/root/repo/src/hgraph/Hir.cpp" "src/hgraph/CMakeFiles/ropt_hgraph.dir/Hir.cpp.o" "gcc" "src/hgraph/CMakeFiles/ropt_hgraph.dir/Hir.cpp.o.d"
  "/root/repo/src/hgraph/Passes.cpp" "src/hgraph/CMakeFiles/ropt_hgraph.dir/Passes.cpp.o" "gcc" "src/hgraph/CMakeFiles/ropt_hgraph.dir/Passes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vm/CMakeFiles/ropt_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/dex/CMakeFiles/ropt_dex.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ropt_support.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/ropt_os.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
