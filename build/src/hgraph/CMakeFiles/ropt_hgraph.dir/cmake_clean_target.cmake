file(REMOVE_RECURSE
  "libropt_hgraph.a"
)
