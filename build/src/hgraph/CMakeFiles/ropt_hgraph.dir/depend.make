# Empty dependencies file for ropt_hgraph.
# This may be replaced when dependencies are built.
