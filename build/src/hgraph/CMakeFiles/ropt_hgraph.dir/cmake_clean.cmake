file(REMOVE_RECURSE
  "CMakeFiles/ropt_hgraph.dir/AndroidCompiler.cpp.o"
  "CMakeFiles/ropt_hgraph.dir/AndroidCompiler.cpp.o.d"
  "CMakeFiles/ropt_hgraph.dir/Build.cpp.o"
  "CMakeFiles/ropt_hgraph.dir/Build.cpp.o.d"
  "CMakeFiles/ropt_hgraph.dir/Codegen.cpp.o"
  "CMakeFiles/ropt_hgraph.dir/Codegen.cpp.o.d"
  "CMakeFiles/ropt_hgraph.dir/Hir.cpp.o"
  "CMakeFiles/ropt_hgraph.dir/Hir.cpp.o.d"
  "CMakeFiles/ropt_hgraph.dir/Passes.cpp.o"
  "CMakeFiles/ropt_hgraph.dir/Passes.cpp.o.d"
  "libropt_hgraph.a"
  "libropt_hgraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ropt_hgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
