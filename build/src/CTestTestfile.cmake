# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("os")
subdirs("dex")
subdirs("vm")
subdirs("hgraph")
subdirs("lir")
subdirs("profiler")
subdirs("capture")
subdirs("replay")
subdirs("search")
subdirs("workloads")
subdirs("core")
