# Empty dependencies file for ropt_vm.
# This may be replaced when dependencies are built.
