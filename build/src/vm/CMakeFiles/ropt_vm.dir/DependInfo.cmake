
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/Executor.cpp" "src/vm/CMakeFiles/ropt_vm.dir/Executor.cpp.o" "gcc" "src/vm/CMakeFiles/ropt_vm.dir/Executor.cpp.o.d"
  "/root/repo/src/vm/Heap.cpp" "src/vm/CMakeFiles/ropt_vm.dir/Heap.cpp.o" "gcc" "src/vm/CMakeFiles/ropt_vm.dir/Heap.cpp.o.d"
  "/root/repo/src/vm/Interpreter.cpp" "src/vm/CMakeFiles/ropt_vm.dir/Interpreter.cpp.o" "gcc" "src/vm/CMakeFiles/ropt_vm.dir/Interpreter.cpp.o.d"
  "/root/repo/src/vm/Machine.cpp" "src/vm/CMakeFiles/ropt_vm.dir/Machine.cpp.o" "gcc" "src/vm/CMakeFiles/ropt_vm.dir/Machine.cpp.o.d"
  "/root/repo/src/vm/MachineUtil.cpp" "src/vm/CMakeFiles/ropt_vm.dir/MachineUtil.cpp.o" "gcc" "src/vm/CMakeFiles/ropt_vm.dir/MachineUtil.cpp.o.d"
  "/root/repo/src/vm/Native.cpp" "src/vm/CMakeFiles/ropt_vm.dir/Native.cpp.o" "gcc" "src/vm/CMakeFiles/ropt_vm.dir/Native.cpp.o.d"
  "/root/repo/src/vm/Runtime.cpp" "src/vm/CMakeFiles/ropt_vm.dir/Runtime.cpp.o" "gcc" "src/vm/CMakeFiles/ropt_vm.dir/Runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dex/CMakeFiles/ropt_dex.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/ropt_os.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ropt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
