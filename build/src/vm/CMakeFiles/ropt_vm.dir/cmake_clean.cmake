file(REMOVE_RECURSE
  "CMakeFiles/ropt_vm.dir/Executor.cpp.o"
  "CMakeFiles/ropt_vm.dir/Executor.cpp.o.d"
  "CMakeFiles/ropt_vm.dir/Heap.cpp.o"
  "CMakeFiles/ropt_vm.dir/Heap.cpp.o.d"
  "CMakeFiles/ropt_vm.dir/Interpreter.cpp.o"
  "CMakeFiles/ropt_vm.dir/Interpreter.cpp.o.d"
  "CMakeFiles/ropt_vm.dir/Machine.cpp.o"
  "CMakeFiles/ropt_vm.dir/Machine.cpp.o.d"
  "CMakeFiles/ropt_vm.dir/MachineUtil.cpp.o"
  "CMakeFiles/ropt_vm.dir/MachineUtil.cpp.o.d"
  "CMakeFiles/ropt_vm.dir/Native.cpp.o"
  "CMakeFiles/ropt_vm.dir/Native.cpp.o.d"
  "CMakeFiles/ropt_vm.dir/Runtime.cpp.o"
  "CMakeFiles/ropt_vm.dir/Runtime.cpp.o.d"
  "libropt_vm.a"
  "libropt_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ropt_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
