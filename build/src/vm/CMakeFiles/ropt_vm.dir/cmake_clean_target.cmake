file(REMOVE_RECURSE
  "libropt_vm.a"
)
