# Empty dependencies file for fig09_ga_evolution.
# This may be replaced when dependencies are built.
