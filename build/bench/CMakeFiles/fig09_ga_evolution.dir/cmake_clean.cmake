file(REMOVE_RECURSE
  "CMakeFiles/fig09_ga_evolution.dir/fig09_ga_evolution.cpp.o"
  "CMakeFiles/fig09_ga_evolution.dir/fig09_ga_evolution.cpp.o.d"
  "fig09_ga_evolution"
  "fig09_ga_evolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_ga_evolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
