# Empty dependencies file for fig03_online_convergence.
# This may be replaced when dependencies are built.
