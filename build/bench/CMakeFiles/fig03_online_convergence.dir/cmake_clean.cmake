file(REMOVE_RECURSE
  "CMakeFiles/fig03_online_convergence.dir/fig03_online_convergence.cpp.o"
  "CMakeFiles/fig03_online_convergence.dir/fig03_online_convergence.cpp.o.d"
  "fig03_online_convergence"
  "fig03_online_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_online_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
