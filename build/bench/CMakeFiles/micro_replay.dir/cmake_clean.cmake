file(REMOVE_RECURSE
  "CMakeFiles/micro_replay.dir/micro_replay.cpp.o"
  "CMakeFiles/micro_replay.dir/micro_replay.cpp.o.d"
  "micro_replay"
  "micro_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
