# Empty dependencies file for fig02_random_slowdowns.
# This may be replaced when dependencies are built.
