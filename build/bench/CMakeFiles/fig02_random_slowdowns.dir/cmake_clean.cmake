file(REMOVE_RECURSE
  "CMakeFiles/fig02_random_slowdowns.dir/fig02_random_slowdowns.cpp.o"
  "CMakeFiles/fig02_random_slowdowns.dir/fig02_random_slowdowns.cpp.o.d"
  "fig02_random_slowdowns"
  "fig02_random_slowdowns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_random_slowdowns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
