file(REMOVE_RECURSE
  "CMakeFiles/fig08_code_breakdown.dir/fig08_code_breakdown.cpp.o"
  "CMakeFiles/fig08_code_breakdown.dir/fig08_code_breakdown.cpp.o.d"
  "fig08_code_breakdown"
  "fig08_code_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_code_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
