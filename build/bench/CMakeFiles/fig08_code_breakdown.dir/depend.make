# Empty dependencies file for fig08_code_breakdown.
# This may be replaced when dependencies are built.
