# Empty dependencies file for abl_multicapture.
# This may be replaced when dependencies are built.
