file(REMOVE_RECURSE
  "CMakeFiles/abl_multicapture.dir/abl_multicapture.cpp.o"
  "CMakeFiles/abl_multicapture.dir/abl_multicapture.cpp.o.d"
  "abl_multicapture"
  "abl_multicapture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_multicapture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
