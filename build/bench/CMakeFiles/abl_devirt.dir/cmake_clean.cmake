file(REMOVE_RECURSE
  "CMakeFiles/abl_devirt.dir/abl_devirt.cpp.o"
  "CMakeFiles/abl_devirt.dir/abl_devirt.cpp.o.d"
  "abl_devirt"
  "abl_devirt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_devirt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
