# Empty compiler generated dependencies file for abl_devirt.
# This may be replaced when dependencies are built.
