file(REMOVE_RECURSE
  "CMakeFiles/fig11_storage.dir/fig11_storage.cpp.o"
  "CMakeFiles/fig11_storage.dir/fig11_storage.cpp.o.d"
  "fig11_storage"
  "fig11_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
