# Empty compiler generated dependencies file for fig01_random_outcomes.
# This may be replaced when dependencies are built.
