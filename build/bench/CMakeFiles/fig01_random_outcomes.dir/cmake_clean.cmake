file(REMOVE_RECURSE
  "CMakeFiles/fig01_random_outcomes.dir/fig01_random_outcomes.cpp.o"
  "CMakeFiles/fig01_random_outcomes.dir/fig01_random_outcomes.cpp.o.d"
  "fig01_random_outcomes"
  "fig01_random_outcomes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_random_outcomes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
