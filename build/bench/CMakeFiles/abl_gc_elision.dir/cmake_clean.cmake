file(REMOVE_RECURSE
  "CMakeFiles/abl_gc_elision.dir/abl_gc_elision.cpp.o"
  "CMakeFiles/abl_gc_elision.dir/abl_gc_elision.cpp.o.d"
  "abl_gc_elision"
  "abl_gc_elision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_gc_elision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
