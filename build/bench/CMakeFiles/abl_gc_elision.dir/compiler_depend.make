# Empty compiler generated dependencies file for abl_gc_elision.
# This may be replaced when dependencies are built.
