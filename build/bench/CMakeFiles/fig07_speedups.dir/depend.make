# Empty dependencies file for fig07_speedups.
# This may be replaced when dependencies are built.
