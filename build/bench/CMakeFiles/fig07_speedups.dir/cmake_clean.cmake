file(REMOVE_RECURSE
  "CMakeFiles/fig07_speedups.dir/fig07_speedups.cpp.o"
  "CMakeFiles/fig07_speedups.dir/fig07_speedups.cpp.o.d"
  "fig07_speedups"
  "fig07_speedups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_speedups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
