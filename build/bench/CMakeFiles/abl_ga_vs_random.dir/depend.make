# Empty dependencies file for abl_ga_vs_random.
# This may be replaced when dependencies are built.
