file(REMOVE_RECURSE
  "CMakeFiles/abl_ga_vs_random.dir/abl_ga_vs_random.cpp.o"
  "CMakeFiles/abl_ga_vs_random.dir/abl_ga_vs_random.cpp.o.d"
  "abl_ga_vs_random"
  "abl_ga_vs_random.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_ga_vs_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
