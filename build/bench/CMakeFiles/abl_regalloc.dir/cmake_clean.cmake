file(REMOVE_RECURSE
  "CMakeFiles/abl_regalloc.dir/abl_regalloc.cpp.o"
  "CMakeFiles/abl_regalloc.dir/abl_regalloc.cpp.o.d"
  "abl_regalloc"
  "abl_regalloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_regalloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
