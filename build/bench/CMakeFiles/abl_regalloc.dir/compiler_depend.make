# Empty compiler generated dependencies file for abl_regalloc.
# This may be replaced when dependencies are built.
