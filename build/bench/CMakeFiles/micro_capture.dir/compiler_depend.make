# Empty compiler generated dependencies file for micro_capture.
# This may be replaced when dependencies are built.
