file(REMOVE_RECURSE
  "CMakeFiles/micro_capture.dir/micro_capture.cpp.o"
  "CMakeFiles/micro_capture.dir/micro_capture.cpp.o.d"
  "micro_capture"
  "micro_capture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_capture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
