file(REMOVE_RECURSE
  "CMakeFiles/capture_replay_tour.dir/capture_replay_tour.cpp.o"
  "CMakeFiles/capture_replay_tour.dir/capture_replay_tour.cpp.o.d"
  "capture_replay_tour"
  "capture_replay_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capture_replay_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
