# Empty dependencies file for capture_replay_tour.
# This may be replaced when dependencies are built.
