file(REMOVE_RECURSE
  "CMakeFiles/search_playground.dir/search_playground.cpp.o"
  "CMakeFiles/search_playground.dir/search_playground.cpp.o.d"
  "search_playground"
  "search_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/search_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
