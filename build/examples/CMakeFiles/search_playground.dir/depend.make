# Empty dependencies file for search_playground.
# This may be replaced when dependencies are built.
