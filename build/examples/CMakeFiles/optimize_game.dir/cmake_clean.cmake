file(REMOVE_RECURSE
  "CMakeFiles/optimize_game.dir/optimize_game.cpp.o"
  "CMakeFiles/optimize_game.dir/optimize_game.cpp.o.d"
  "optimize_game"
  "optimize_game.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimize_game.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
