# Empty compiler generated dependencies file for optimize_game.
# This may be replaced when dependencies are built.
