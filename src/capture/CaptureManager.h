//===- capture/CaptureManager.h - The online capture protocol ---*- C++ -*-===//
//
// Part of ReplayOpt (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 4's capture mechanism, verbatim over the simulated kernel:
///
///   1. Entry-point hook fires on the hot region (postponed if GC is
///      imminent — a collection would touch pages the region never uses).
///   2. fork(): the child shares every physical page; Copy-on-Write keeps
///      the child's view pristine as the parent keeps executing.
///   3. Parse /proc-style mappings; read-protect the app's pages.
///   4. The region runs; the fault handler records each first-touched page
///      and restores its permissions.
///   5. On exit, remaining protections are lifted.
///   6. The low-priority child spools the *original* content of every
///      accessed page to storage.
///
/// Runtime-image pages are captured once per boot; file-backed pages are
/// never captured (paths logged instead).
///
//===----------------------------------------------------------------------===//

#ifndef ROPT_CAPTURE_CAPTURE_MANAGER_H
#define ROPT_CAPTURE_CAPTURE_MANAGER_H

#include "capture/Capture.h"
#include "os/Kernel.h"
#include "support/Result.h"
#include "vm/Runtime.h"

#include <optional>
#include <set>

namespace ropt {
namespace capture {

class CaptureManager {
public:
  /// \p App must be the process whose address space \p RT executes in.
  CaptureManager(os::Kernel &Kernel, os::Process &App, vm::Runtime &RT,
                 os::KernelCostModel CostModel = os::KernelCostModel());
  ~CaptureManager();

  CaptureManager(const CaptureManager &) = delete;
  CaptureManager &operator=(const CaptureManager &) = delete;

  /// Arms a capture of the next outermost execution of \p Root. The caller
  /// keeps driving the app; the capture happens transparently.
  void armCapture(dex::MethodId Root);

  /// True once an armed capture completed.
  bool captureReady() const { return Done.has_value(); }

  /// Retrieves (and clears) the completed capture; CaptureNotReady when
  /// no armed capture has completed.
  support::Result<Capture> takeCapture();

  /// Number of times a capture was postponed because GC was imminent.
  uint64_t postponedCount() const { return Postponed; }

  /// Spools the capture to the storage device as the child would, plus the
  /// per-boot common blob (runtime image) if not already present. Returns
  /// the capture's storage path.
  std::string spoolToStorage(const Capture &Cap,
                             const std::string &AppName);

private:
  void onRegionEnter(const std::vector<vm::Value> &Args);
  void onRegionExit();

  os::Kernel &Kernel;
  os::Process &App;
  vm::Runtime &RT;
  os::KernelCostModel CostModel;

  dex::MethodId Target = dex::InvalidId;
  bool InProgress = false;
  uint64_t Postponed = 0;

  // Live capture state.
  os::Pid ChildPid = 0;
  std::set<uint64_t> AccessedPages;
  std::vector<vm::Value> SavedArgs;
  std::vector<os::Mapping> SavedMappings;
  uint64_t PagesAtFork = 0;

  std::optional<Capture> Done;
};

} // namespace capture
} // namespace ropt

#endif // ROPT_CAPTURE_CAPTURE_MANAGER_H
