//===- capture/CaptureManager.cpp - The online capture protocol -------------===//

#include "capture/CaptureManager.h"

#include "support/Format.h"
#include "support/Metrics.h"
#include "support/Trace.h"

#include <cassert>

using namespace ropt;
using namespace ropt::capture;
using os::AddressSpace;
using os::Mapping;
using os::MappingKind;
using os::PageSize;

CaptureManager::CaptureManager(os::Kernel &Kernel, os::Process &App,
                               vm::Runtime &RT,
                               os::KernelCostModel CostModel)
    : Kernel(Kernel), App(App), RT(RT), CostModel(CostModel) {}

CaptureManager::~CaptureManager() {
  if (Target != dex::InvalidId)
    RT.disarmRegionHook();
}

void CaptureManager::armCapture(dex::MethodId Root) {
  Target = Root;
  Done.reset();
  vm::RegionHooks Hooks;
  Hooks.OnEnter = [this](const std::vector<vm::Value> &Args) {
    onRegionEnter(Args);
  };
  Hooks.OnExit = [this]() { onRegionExit(); };
  RT.armRegionHook(Root, std::move(Hooks));
}

namespace {

/// The mappings whose pages get read-protected: app-private memory. The
/// runtime image and file-backed code must not be protected (touching them
/// from runtime internals would crash the process, Section 3.2), and are
/// handled via the common blob / path log instead.
bool isProtectable(const Mapping &M) {
  return M.Kind == MappingKind::Heap || M.Kind == MappingKind::Data ||
         M.Kind == MappingKind::Stack || M.Kind == MappingKind::Anonymous;
}

} // namespace

void CaptureManager::onRegionEnter(const std::vector<vm::Value> &Args) {
  if (Done || InProgress)
    return;
  // Step 1: postpone when a collection is imminent — the GC walk would
  // fault in (and thus capture) pages the region never touches.
  if (RT.heap().gcImminent()) {
    ++Postponed;
    ROPT_METRIC_INC("capture.postponements");
    ROPT_TRACE_INSTANT("capture.postponed");
    return;
  }

  ROPT_TRACE_INSTANT("capture.region_enter");
  InProgress = true;
  SavedArgs = Args;
  AccessedPages.clear();

  AddressSpace &Space = App.space();

  // Step 2: fork the child that preserves the pristine memory image.
  PagesAtFork = Space.mappedPageCount();
  os::Process &Child = Kernel.fork(App);
  Child.setPriority(os::Priority::Lowest);
  Child.sleep();
  ChildPid = Child.pid();

  // Step 3: parse the memory map and read-protect the app's own pages.
  Space.resetStats();
  SavedMappings = Space.procMaps();
  for (const Mapping &M : SavedMappings)
    if (isProtectable(M))
      Space.protectRange(M.Start, M.sizeBytes(), os::ProtNone);

  Space.setFaultHandler([this, &Space](uint64_t Addr, bool IsWrite) {
    (void)IsWrite;
    AccessedPages.insert(os::pageBase(Addr));
    Space.protectRange(os::pageBase(Addr), PageSize,
                       os::ProtRead | os::ProtWrite);
    return true;
  });
  // Step 4 happens now: the caller executes the hot region as normal.
}

void CaptureManager::onRegionExit() {
  if (!InProgress)
    return;
  InProgress = false;
  ROPT_TRACE_SPAN("capture.collect");

  AddressSpace &Space = App.space();

  // Step 5: restore permissions, uninstall the handler.
  Space.setFaultHandler(nullptr);
  os::MemoryStats Stats = Space.stats(); // events before the unprotect
  for (const Mapping &M : SavedMappings)
    if (isProtectable(M))
      Space.protectRange(M.Start, M.sizeBytes(),
                         os::ProtRead | os::ProtWrite);

  // Step 6: the child spools the original page contents.
  os::Process *Child = Kernel.find(ChildPid);
  assert(Child && "capture child vanished");
  Child->wake();

  Capture Cap;
  Cap.Root = Target;
  Cap.Args = SavedArgs;
  Cap.BootId = RT.config().BootId;
  Cap.Mappings = SavedMappings;
  for (uint64_t Addr : AccessedPages) {
    PageRecord P;
    P.Addr = Addr;
    P.Bytes.resize(PageSize);
    [[maybe_unused]] bool Ok =
        Child->space().peek(Addr, P.Bytes.data(), PageSize);
    assert(Ok && "accessed page missing from the forked snapshot");
    Cap.Pages.push_back(std::move(P));
  }
  for (const Mapping &M : SavedMappings) {
    if (M.Kind == MappingKind::FileMapped) {
      FileMapRecord F;
      F.Addr = M.Start;
      F.Size = M.sizeBytes();
      F.Path = M.Name;
      Cap.FileMaps.push_back(std::move(F));
    } else if (M.Kind == MappingKind::RuntimeImage) {
      Cap.CommonBytes += M.sizeBytes();
    }
  }

  Cap.Events.MappedPagesAtFork = PagesAtFork;
  Cap.Events.MappingsParsed = SavedMappings.size();
  Cap.Events.ProtectCalls = Stats.ProtectCalls;
  Cap.Events.PagesProtected = Stats.PagesProtected;
  Cap.Events.ReadFaults = Stats.ReadFaults;
  Cap.Events.WriteFaults = Stats.WriteFaults;
  Cap.Events.CowCopies = Stats.CowCopies;
  Cap.Overheads = CaptureOverheads::fromEvents(Cap.Events, CostModel);

  ROPT_METRIC_INC("capture.captures");
  ROPT_METRIC_ADD("capture.pages_spooled", Cap.Pages.size());
  ROPT_METRIC_ADD("capture.bytes_spooled", Cap.Pages.size() * PageSize);
  ROPT_METRIC_ADD("capture.pages_protected", Stats.PagesProtected);
  ROPT_METRIC_ADD("capture.read_faults", Stats.ReadFaults);
  ROPT_METRIC_ADD("capture.write_faults", Stats.WriteFaults);
  ROPT_METRIC_ADD("capture.cow_copies", Stats.CowCopies);
  ROPT_METRIC_ADD("capture.fork_pages", PagesAtFork);
  ROPT_METRIC_OBSERVE("capture.pages_per_capture", Cap.Pages.size(),
                      ({4, 16, 64, 256, 1024, 4096}));
  ROPT_METRIC_OBSERVE("capture.fork_ms", Cap.Overheads.ForkMs,
                      ({1, 2, 4, 8, 16, 32}));
  ROPT_METRIC_OBSERVE("capture.overhead_ms", Cap.Overheads.totalMs(),
                      ({2, 5, 10, 15, 20, 30, 50}));
  ROPT_TRACE_COUNTER("capture.pages_spooled", Cap.Pages.size());

  Kernel.reap(ChildPid);
  ChildPid = 0;
  Space.resetStats(); // close the capture's measurement epoch

  Done = std::move(Cap);
  RT.disarmRegionHook();
  Target = dex::InvalidId;
}

support::Result<Capture> CaptureManager::takeCapture() {
  if (!Done)
    return support::Error{support::ErrorCode::CaptureNotReady,
                          "no completed capture to take"};
  Capture Out = std::move(*Done);
  Done.reset();
  return Out;
}

std::string CaptureManager::spoolToStorage(const Capture &Cap,
                                           const std::string &AppName) {
  ROPT_TRACE_SPAN("capture.spool");
  os::StorageDevice &Disk = Kernel.storage();

  // The per-boot common blob: runtime-image content, stored once.
  std::string CommonPath = format("boot/%llu/image.art",
                                  static_cast<unsigned long long>(
                                      Cap.BootId));
  if (!Disk.exists(CommonPath) && Cap.CommonBytes > 0) {
    for (const Mapping &M : Cap.Mappings) {
      if (M.Kind != MappingKind::RuntimeImage)
        continue;
      std::vector<uint8_t> Blob(M.sizeBytes());
      [[maybe_unused]] bool Ok =
          App.space().peek(M.Start, Blob.data(), Blob.size());
      assert(Ok && "runtime image unmapped");
      Disk.writeFile(CommonPath, std::move(Blob));
    }
  }

  std::string Path = format("captures/%s/region-%u.cap", AppName.c_str(),
                            Cap.Root);
  std::vector<uint8_t> Bytes = Cap.serialize();
  ROPT_METRIC_ADD("capture.bytes_written_disk", Bytes.size());
  Disk.writeFile(Path, std::move(Bytes));
  return Path;
}
