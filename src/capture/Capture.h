//===- capture/Capture.h - Captured hot-region state ------------*- C++ -*-===//
//
// Part of ReplayOpt (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The snapshot a capture produces (Section 3.2): the hot-region entry
/// ("architectural state" — root method and arguments), the pre-execution
/// contents of every page the region touched, the memory layout needed to
/// rebuild the address space, plus what is *not* stored inline: runtime
/// image pages identical across a boot (captured once per boot) and
/// file-backed pages (only their paths are logged). Storage overheads of
/// Figure 11 fall straight out of these fields.
///
//===----------------------------------------------------------------------===//

#ifndef ROPT_CAPTURE_CAPTURE_H
#define ROPT_CAPTURE_CAPTURE_H

#include "dex/DexFile.h"
#include "os/CostModel.h"
#include "os/Memory.h"
#include "vm/Value.h"

#include <string>
#include <vector>

namespace ropt {
namespace capture {

/// Raw kernel event counts observed during one capture.
struct CaptureEvents {
  uint64_t MappedPagesAtFork = 0;
  uint64_t MappingsParsed = 0;
  uint64_t ProtectCalls = 0;
  uint64_t PagesProtected = 0;
  uint64_t ReadFaults = 0;
  uint64_t WriteFaults = 0;
  uint64_t CowCopies = 0;
};

/// Figure 10's overhead breakdown, in milliseconds.
struct CaptureOverheads {
  double ForkMs = 0.0;
  double PreparationMs = 0.0;
  double FaultCowMs = 0.0;

  double totalMs() const { return ForkMs + PreparationMs + FaultCowMs; }

  static CaptureOverheads fromEvents(const CaptureEvents &E,
                                     const os::KernelCostModel &Model);
};

/// One captured page (pre-region-execution content).
struct PageRecord {
  uint64_t Addr = 0;
  std::vector<uint8_t> Bytes; ///< os::PageSize bytes.
};

/// A file-backed mapping reference: never captured, only logged.
struct FileMapRecord {
  uint64_t Addr = 0;
  uint64_t Size = 0;
  std::string Path;
  uint64_t Offset = 0;
};

/// The full snapshot.
struct Capture {
  dex::MethodId Root = dex::InvalidId;
  std::vector<vm::Value> Args; ///< Architectural state at region entry.
  uint64_t BootId = 0;

  std::vector<os::Mapping> Mappings;   ///< Full layout for the loader.
  std::vector<PageRecord> Pages;       ///< Process-specific pages.
  std::vector<FileMapRecord> FileMaps; ///< Mapped files (paths only).
  /// Runtime-image mapping size: stored once per boot, shared by every
  /// capture of that boot (the "Common" bar of Figure 11).
  uint64_t CommonBytes = 0;

  CaptureEvents Events;
  CaptureOverheads Overheads;

  /// Process-specific storage cost (the "Pages" bar of Figure 11).
  uint64_t processSpecificBytes() const {
    return Pages.size() * os::PageSize;
  }

  /// Serialization (what the low-priority child spools to disk).
  std::vector<uint8_t> serialize() const;
  static bool deserialize(const std::vector<uint8_t> &Bytes, Capture &Out);
};

} // namespace capture
} // namespace ropt

#endif // ROPT_CAPTURE_CAPTURE_H
