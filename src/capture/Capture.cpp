//===- capture/Capture.cpp - Captured hot-region state ---------------------===//

#include "capture/Capture.h"

#include "support/Serialize.h"

using namespace ropt;
using namespace ropt::capture;

CaptureOverheads
CaptureOverheads::fromEvents(const CaptureEvents &E,
                             const os::KernelCostModel &Model) {
  CaptureOverheads O;
  O.ForkMs = Model.forkCostUs(E.MappedPagesAtFork) / 1000.0;
  O.PreparationMs = Model.preparationCostUs(E.MappingsParsed,
                                            E.ProtectCalls,
                                            E.PagesProtected) /
                    1000.0;
  O.FaultCowMs = Model.faultAndCowCostUs(E.ReadFaults + E.WriteFaults,
                                         E.CowCopies) /
                 1000.0;
  return O;
}

std::vector<uint8_t> Capture::serialize() const {
  ByteWriter W;
  W.writeU32(0xCAB7CAB7); // magic
  W.writeU32(Root);
  W.writeU64(BootId);
  W.writeU32(static_cast<uint32_t>(Args.size()));
  for (const vm::Value &V : Args)
    W.writeU64(V.Raw);
  W.writeU32(static_cast<uint32_t>(Mappings.size()));
  for (const os::Mapping &M : Mappings) {
    W.writeU64(M.Start);
    W.writeU64(M.End);
    W.writeU8(static_cast<uint8_t>(M.Kind));
    W.writeString(M.Name);
  }
  W.writeU32(static_cast<uint32_t>(Pages.size()));
  for (const PageRecord &P : Pages) {
    W.writeU64(P.Addr);
    W.writeBytes(P.Bytes.data(), P.Bytes.size());
  }
  W.writeU32(static_cast<uint32_t>(FileMaps.size()));
  for (const FileMapRecord &F : FileMaps) {
    W.writeU64(F.Addr);
    W.writeU64(F.Size);
    W.writeString(F.Path);
    W.writeU64(F.Offset);
  }
  W.writeU64(CommonBytes);
  return W.takeBytes();
}

bool Capture::deserialize(const std::vector<uint8_t> &Bytes, Capture &Out) {
  Out = Capture();
  if (Bytes.size() < 8)
    return false;
  ByteReader R(Bytes);
  if (R.readU32() != 0xCAB7CAB7)
    return false;
  Out.Root = R.readU32();
  Out.BootId = R.readU64();
  uint32_t NumArgs = R.readU32();
  if (R.remaining() / 8 < NumArgs)
    return false;
  for (uint32_t I = 0; I != NumArgs; ++I) {
    vm::Value V;
    V.Raw = R.readU64();
    Out.Args.push_back(V);
  }
  uint32_t NumMappings = R.readU32();
  if (R.remaining() / 21 < NumMappings) // 8+8+1+4 bytes minimum each
    return false;
  for (uint32_t I = 0; I != NumMappings; ++I) {
    os::Mapping M;
    M.Start = R.readU64();
    M.End = R.readU64();
    M.Kind = static_cast<os::MappingKind>(R.readU8());
    M.Name = R.readString();
    Out.Mappings.push_back(std::move(M));
  }
  uint32_t NumPages = R.readU32();
  if (R.remaining() / (8 + os::PageSize) < NumPages)
    return false;
  for (uint32_t I = 0; I != NumPages; ++I) {
    PageRecord P;
    P.Addr = R.readU64();
    P.Bytes.resize(os::PageSize);
    if (R.remaining() < os::PageSize)
      return false;
    R.readBytes(P.Bytes.data(), P.Bytes.size());
    Out.Pages.push_back(std::move(P));
  }
  uint32_t NumFiles = R.readU32();
  if (R.remaining() / 28 < NumFiles) // 8+8+4+8 bytes minimum each
    return false;
  for (uint32_t I = 0; I != NumFiles; ++I) {
    FileMapRecord F;
    F.Addr = R.readU64();
    F.Size = R.readU64();
    F.Path = R.readString();
    F.Offset = R.readU64();
    Out.FileMaps.push_back(std::move(F));
  }
  Out.CommonBytes = R.readU64();
  return !R.failed();
}
