//===- vm/MachineUtil.cpp - MInsn classification helpers -------------------===//

#include "vm/MachineUtil.h"

#include "support/Format.h"

#include <algorithm>
#include <cassert>
#include <vector>

using namespace ropt;
using namespace ropt::vm;

bool vm::definesA(const MInsn &I) {
  switch (I.Op) {
  case MOpcode::MMovImmI:
  case MOpcode::MMovImmF:
  case MOpcode::MMov:
  case MOpcode::MAddI:
  case MOpcode::MSubI:
  case MOpcode::MMulI:
  case MOpcode::MDivI:
  case MOpcode::MRemI:
  case MOpcode::MAndI:
  case MOpcode::MOrI:
  case MOpcode::MXorI:
  case MOpcode::MShlI:
  case MOpcode::MShrI:
  case MOpcode::MNegI:
  case MOpcode::MAddF:
  case MOpcode::MSubF:
  case MOpcode::MMulF:
  case MOpcode::MDivF:
  case MOpcode::MNegF:
  case MOpcode::MCmpF:
  case MOpcode::MSqrtF:
  case MOpcode::MI2F:
  case MOpcode::MF2I:
  case MOpcode::MLoadSlot:
  case MOpcode::MLoadStatic:
  case MOpcode::MALoad:
  case MOpcode::MArrayLen:
  case MOpcode::MNewInstance:
  case MOpcode::MNewArray:
  case MOpcode::MIntrinsic:
    return I.A != MNoReg;
  case MOpcode::MCallStatic:
  case MOpcode::MCallVirtual:
  case MOpcode::MCallNative:
    return I.A != MNoReg;
  default:
    return false;
  }
}

void vm::forEachUse(const MInsn &I,
                    const std::function<void(MRegIdx)> &Fn) {
  MInsn Copy = I;
  forEachUseMut(Copy, [&Fn](MRegIdx &R) { Fn(R); });
}

void vm::forEachUseMut(MInsn &I,
                       const std::function<void(MRegIdx &)> &Fn) {
  auto Visit = [&Fn](MRegIdx &R) {
    if (R != MNoReg)
      Fn(R);
  };
  switch (I.Op) {
  case MOpcode::MNop:
  case MOpcode::MMovImmI:
  case MOpcode::MMovImmF:
  case MOpcode::MGoto:
  case MOpcode::MSafepoint:
  case MOpcode::MLoadStatic:
  case MOpcode::MNewInstance:
  case MOpcode::MRetVoid:
    break;

  case MOpcode::MMov:
  case MOpcode::MNegI:
  case MOpcode::MNegF:
  case MOpcode::MSqrtF:
  case MOpcode::MI2F:
  case MOpcode::MF2I:
  case MOpcode::MLoadSlot:
  case MOpcode::MArrayLen:
  case MOpcode::MNewArray:
  case MOpcode::MCheckNull:
  case MOpcode::MCheckDiv:
  case MOpcode::MGuardClass:
    Visit(I.B);
    break;

  case MOpcode::MAddI: case MOpcode::MSubI: case MOpcode::MMulI:
  case MOpcode::MDivI: case MOpcode::MRemI: case MOpcode::MAndI:
  case MOpcode::MOrI: case MOpcode::MXorI: case MOpcode::MShlI:
  case MOpcode::MShrI:
  case MOpcode::MAddF: case MOpcode::MSubF: case MOpcode::MMulF:
  case MOpcode::MDivF: case MOpcode::MCmpF:
  case MOpcode::MCheckBounds:
  case MOpcode::MALoad:
    Visit(I.B);
    Visit(I.C);
    break;

  case MOpcode::MIfEq: case MOpcode::MIfNe: case MOpcode::MIfLt:
  case MOpcode::MIfLe: case MOpcode::MIfGt: case MOpcode::MIfGe:
  case MOpcode::MIfEqz: case MOpcode::MIfNez: case MOpcode::MIfLtz:
  case MOpcode::MIfLez: case MOpcode::MIfGtz: case MOpcode::MIfGez:
    Visit(I.B);
    Visit(I.C);
    break;

  case MOpcode::MStoreSlot: // A is the stored value, B the object
    Visit(I.A);
    Visit(I.B);
    break;
  case MOpcode::MStoreStatic:
    Visit(I.A);
    break;
  case MOpcode::MAStore:
    Visit(I.A);
    Visit(I.B);
    Visit(I.C);
    break;

  case MOpcode::MCallStatic:
  case MOpcode::MCallVirtual:
  case MOpcode::MCallNative:
  case MOpcode::MIntrinsic:
    for (unsigned N = 0; N != I.ArgCount; ++N)
      Fn(I.Args[N]);
    break;

  case MOpcode::MRet:
    Visit(I.B);
    break;

  case MOpcode::MOpcodeCount:
    assert(false && "invalid opcode");
    break;
  }
}

bool vm::isPureOp(MOpcode Op) {
  switch (Op) {
  case MOpcode::MMovImmI:
  case MOpcode::MMovImmF:
  case MOpcode::MMov:
  case MOpcode::MAddI:
  case MOpcode::MSubI:
  case MOpcode::MMulI:
  case MOpcode::MAndI:
  case MOpcode::MOrI:
  case MOpcode::MXorI:
  case MOpcode::MShlI:
  case MOpcode::MShrI:
  case MOpcode::MNegI:
  case MOpcode::MAddF:
  case MOpcode::MSubF:
  case MOpcode::MMulF:
  case MOpcode::MDivF:
  case MOpcode::MNegF:
  case MOpcode::MCmpF:
  case MOpcode::MSqrtF:
  case MOpcode::MI2F:
  case MOpcode::MF2I:
    return true;
  default:
    return false;
  }
}

bool vm::isLoadOp(MOpcode Op) {
  return Op == MOpcode::MLoadSlot || Op == MOpcode::MLoadStatic ||
         Op == MOpcode::MALoad || Op == MOpcode::MArrayLen;
}

bool vm::isStoreOp(MOpcode Op) {
  return Op == MOpcode::MStoreSlot || Op == MOpcode::MStoreStatic ||
         Op == MOpcode::MAStore;
}

bool vm::isCallOp(MOpcode Op) {
  return Op == MOpcode::MCallStatic || Op == MOpcode::MCallVirtual ||
         Op == MOpcode::MCallNative;
}

bool vm::isCheckOp(MOpcode Op) {
  return Op == MOpcode::MCheckNull || Op == MOpcode::MCheckBounds ||
         Op == MOpcode::MCheckDiv;
}

bool vm::hasSideEffects(const MInsn &I) {
  if (isPureOp(I.Op) || isLoadOp(I.Op) || I.Op == MOpcode::MNop ||
      I.Op == MOpcode::MIntrinsic)
    return false;
  // Everything else: stores, calls, checks (trap), safepoints (GC),
  // allocations (heap state + OOM), div/rem (trap), control flow.
  return true;
}

namespace {

/// Applies a register renumbering \p Map (old -> new) over the function.
void applyRenumbering(MachineFunction &Fn,
                      const std::vector<MRegIdx> &Map) {
  for (MInsn &I : Fn.Code) {
    if (definesA(I) && I.A != MNoReg)
      I.A = Map[I.A];
    forEachUseMut(I, [&Map](MRegIdx &R) { R = Map[R]; });
    // Stores use A as a value operand; forEachUseMut already rewrote it.
  }
}

uint16_t compactWith(MachineFunction &Fn,
                     const std::vector<MRegIdx> &Order) {
  std::vector<MRegIdx> Map(Fn.NumRegs, MNoReg);
  for (MRegIdx P = 0; P != Fn.ParamCount; ++P)
    Map[P] = P;
  MRegIdx Next = Fn.ParamCount;
  for (MRegIdx Old : Order)
    if (Map[Old] == MNoReg)
      Map[Old] = Next++;
  // Registers never touched map onto themselves compactly at the end (they
  // are dead; position is irrelevant but the map must be total).
  for (MRegIdx Old = 0; Old != Fn.NumRegs; ++Old)
    if (Map[Old] == MNoReg)
      Map[Old] = Next++;
  applyRenumbering(Fn, Map);
  Fn.NumRegs = Next;
  return Next;
}

} // namespace

uint16_t vm::compactRegistersByFrequency(MachineFunction &Fn) {
  std::vector<uint64_t> Counts(Fn.NumRegs, 0);
  for (const MInsn &I : Fn.Code) {
    if (definesA(I) && I.A != MNoReg)
      ++Counts[I.A];
    forEachUse(I, [&Counts](MRegIdx R) { ++Counts[R]; });
  }
  std::vector<MRegIdx> Order;
  for (MRegIdx R = Fn.ParamCount; R < Fn.NumRegs; ++R)
    if (Counts[R] > 0)
      Order.push_back(R);
  std::stable_sort(Order.begin(), Order.end(),
                   [&Counts](MRegIdx A, MRegIdx B) {
                     return Counts[A] > Counts[B];
                   });
  return compactWith(Fn, Order);
}

uint16_t vm::compactRegistersByFirstUse(MachineFunction &Fn) {
  std::vector<bool> Seen(Fn.NumRegs, false);
  std::vector<MRegIdx> Order;
  auto Note = [&](MRegIdx R) {
    if (R >= Fn.ParamCount && !Seen[R]) {
      Seen[R] = true;
      Order.push_back(R);
    }
  };
  for (const MInsn &I : Fn.Code) {
    forEachUse(I, Note);
    if (definesA(I) && I.A != MNoReg)
      Note(I.A);
  }
  return compactWith(Fn, Order);
}

uint16_t vm::allocateRegistersLinearScan(MachineFunction &Fn) {
  size_t N = Fn.Code.size();
  if (Fn.NumRegs == 0)
    return 0;

  // Instruction-level liveness over the linear code (each instruction is a
  // one-node CFG block; branches add their target as a successor). A
  // loop-carried value is genuinely live across the back edge and its
  // live positions span the loop; an iteration-local value is not.
  size_t Words = (static_cast<size_t>(Fn.NumRegs) + 63) / 64;
  std::vector<uint64_t> LiveIn((N + 1) * Words, 0);
  auto Bit = [&](size_t Pc, MRegIdx R) -> uint64_t & {
    return LiveIn[Pc * Words + R / 64];
  };
  auto IsLive = [&](size_t Pc, MRegIdx R) {
    return (Bit(Pc, R) >> (R % 64)) & 1;
  };

  std::vector<uint64_t> Tmp(Words);
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t Pc = N; Pc-- > 0;) {
      const MInsn &I = Fn.Code[Pc];
      // out = union of successors' live-in.
      std::fill(Tmp.begin(), Tmp.end(), 0);
      bool FallsThrough = I.Op != MOpcode::MGoto &&
                          I.Op != MOpcode::MRet &&
                          I.Op != MOpcode::MRetVoid;
      if (FallsThrough)
        for (size_t W = 0; W != Words; ++W)
          Tmp[W] |= LiveIn[(Pc + 1) * Words + W];
      if ((isMBranch(I.Op) || I.Op == MOpcode::MGuardClass) &&
          I.Target >= 0)
        for (size_t W = 0; W != Words; ++W)
          Tmp[W] |= LiveIn[static_cast<size_t>(I.Target) * Words + W];
      // in = (out - def) | use.
      if (definesA(I) && I.A != MNoReg)
        Tmp[I.A / 64] &= ~(1ULL << (I.A % 64));
      forEachUse(I, [&](MRegIdx R) { Tmp[R / 64] |= 1ULL << (R % 64); });
      for (size_t W = 0; W != Words; ++W) {
        if (LiveIn[Pc * Words + W] != Tmp[W]) {
          LiveIn[Pc * Words + W] = Tmp[W];
          Changed = true;
        }
      }
    }
  }

  // Live intervals [Start, End] from liveness plus def positions.
  constexpr int64_t NoPos = -1;
  std::vector<int64_t> Start(Fn.NumRegs, NoPos), End(Fn.NumRegs, NoPos);
  auto Touch = [&](MRegIdx R, int64_t Pos) {
    if (Start[R] == NoPos || Pos < Start[R])
      Start[R] = Pos;
    if (Pos > End[R])
      End[R] = Pos;
  };
  for (MRegIdx P = 0; P != Fn.ParamCount; ++P)
    Touch(P, 0);
  for (size_t Pc = 0; Pc != N; ++Pc) {
    const MInsn &I = Fn.Code[Pc];
    for (MRegIdx R = 0; R != Fn.NumRegs; ++R)
      if (IsLive(Pc, R))
        Touch(R, static_cast<int64_t>(Pc));
    if (definesA(I) && I.A != MNoReg)
      Touch(I.A, static_cast<int64_t>(Pc));
    forEachUse(I, [&](MRegIdx R) { Touch(R, static_cast<int64_t>(Pc)); });
  }

  // Linear scan, lowest-free-register policy. Parameters are pre-colored
  // to their slots (the calling convention) and release them when dead.
  std::vector<MRegIdx> Assign(Fn.NumRegs, MNoReg);
  std::vector<MRegIdx> Order;
  for (MRegIdx R = 0; R != Fn.NumRegs; ++R)
    if (Start[R] != NoPos)
      Order.push_back(R);
  std::stable_sort(Order.begin(), Order.end(),
                   [&](MRegIdx A, MRegIdx B) {
                     return Start[A] < Start[B];
                   });

  std::vector<int64_t> FreeAt; // per physical register: end of last tenant
  FreeAt.assign(Fn.ParamCount, -2); // param slots reserved from pos 0
  MRegIdx MaxUsed = 0;
  for (MRegIdx P = 0; P != Fn.ParamCount; ++P) {
    Assign[P] = P;
    FreeAt[P] = End[P] == NoPos ? -1 : End[P];
  }
  for (MRegIdx V : Order) {
    if (V < Fn.ParamCount) {
      MaxUsed = std::max<MRegIdx>(MaxUsed, V);
      continue; // pre-colored
    }
    MRegIdx Chosen = MNoReg;
    for (MRegIdx Phys = 0; Phys != FreeAt.size(); ++Phys) {
      if (FreeAt[Phys] < Start[V]) {
        Chosen = Phys;
        break;
      }
    }
    if (Chosen == MNoReg) {
      Chosen = static_cast<MRegIdx>(FreeAt.size());
      FreeAt.push_back(-2);
    }
    FreeAt[Chosen] = End[V];
    Assign[V] = Chosen;
    MaxUsed = std::max(MaxUsed, Chosen);
  }

  // Rewrite the code.
  for (MInsn &I : Fn.Code) {
    if (definesA(I) && I.A != MNoReg)
      I.A = Assign[I.A];
    forEachUseMut(I, [&](MRegIdx &R) { R = Assign[R]; });
  }
  Fn.NumRegs = std::max<uint16_t>(
      Fn.ParamCount, static_cast<uint16_t>(MaxUsed + 1));

  // When demand exceeds the physical file, permute register names by touch
  // frequency (a bijection, so interference is untouched) to keep the hot
  // values inside it: lowest-free-by-start would otherwise hand the spill
  // slots to the innermost loop's temporaries.
  if (Fn.NumRegs > PhysRegCount)
    compactRegistersByFrequency(Fn);
  return Fn.NumRegs;
}

std::string vm::formatMInsn(const MInsn &I) {
  std::string Out = mopcodeName(I.Op);
  auto Reg = [](MRegIdx R) {
    return R == MNoReg ? std::string("_") : format("r%u", unsigned(R));
  };
  Out += " " + Reg(I.A) + ", " + Reg(I.B) + ", " + Reg(I.C);
  if (I.Op == MOpcode::MMovImmI)
    Out += format(" #%lld", static_cast<long long>(I.ImmI));
  if (I.Op == MOpcode::MMovImmF)
    Out += format(" #%g", I.ImmF);
  if (I.Target >= 0)
    Out += format(" ->%d", I.Target);
  if (I.ArgCount) {
    Out += " (";
    for (unsigned N = 0; N != I.ArgCount; ++N)
      Out += (N ? ", " : "") + Reg(I.Args[N]);
    Out += ")";
  }
  return Out;
}
