//===- vm/CostModel.h - Cycle cost model for simulated execution -*- C++ -*-=//
//
// Part of ReplayOpt (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-operation cycle costs that make the optimization landscape. The
/// executor charges these per dynamic instruction; the interpreter adds a
/// dispatch overhead per bytecode. The relative weights are what matters:
/// JNI transitions are two orders of magnitude above ALU ops, virtual
/// dispatch costs dependent loads plus an indirect branch, safepoint polls
/// and bounds/null checks are cheap-but-not-free (which is why the paper's
/// post-unroll GC-check elision pays off), and spilled registers tax every
/// touch.
///
//===----------------------------------------------------------------------===//

#ifndef ROPT_VM_COST_MODEL_H
#define ROPT_VM_COST_MODEL_H

#include <cstdint>

namespace ropt {
namespace vm {

/// Cycle costs for the simulated core (roughly a big out-of-order mobile
/// core normalized to 1 cycle per simple ALU op).
struct CycleCostModel {
  uint32_t AluCycles = 1;
  uint32_t MulCycles = 3;
  uint32_t DivCycles = 12;
  uint32_t FAddCycles = 2;
  uint32_t FMulCycles = 3;
  uint32_t FDivCycles = 15;
  uint32_t FSqrtCycles = 18;
  uint32_t ConvCycles = 2;
  uint32_t MoveCycles = 1;

  uint32_t LoadCycles = 3;  ///< L1-hit load-to-use.
  uint32_t StoreCycles = 1; ///< Store-buffer absorbed.
  uint32_t CacheMissPenalty = 28;

  uint32_t BranchCycles = 1;
  uint32_t BranchMispredictPenalty = 13;

  uint32_t CallCycles = 5;          ///< Direct call + frame setup.
  uint32_t ReturnCycles = 2;
  uint32_t VirtualDispatchCycles = 9; ///< vtable load chain + indirect jump.
  uint32_t NativeCallCycles = 180;    ///< JNI transition (in + out).
  uint32_t IntrinsicBaseCycles = 14;  ///< Inlined math-intrinsic body.

  uint32_t CheckCycles = 1;     ///< Null/bounds/div guard (predicted).
  uint32_t SafepointCycles = 3; ///< GC poll: load flag + test + branch.
  uint32_t AllocBaseCycles = 30;
  uint32_t AllocPerSlotCycles = 1;

  uint32_t SpillTouchCycles = 2; ///< Extra cost per spilled-register access.

  /// Interpreter dispatch overhead per bytecode on top of the op cost.
  uint32_t InterpreterDispatchCycles = 14;

  /// Cycles one GC pause costs when the poll triggers collection.
  uint64_t GcPauseCycles = 150000;

  /// Simulated clock, cycles per microsecond (1 GHz).
  double CyclesPerUs = 1000.0;

  double cyclesToUs(uint64_t Cycles) const {
    return static_cast<double>(Cycles) / CyclesPerUs;
  }
  double cyclesToMs(uint64_t Cycles) const {
    return cyclesToUs(Cycles) / 1000.0;
  }
};

/// A tiny direct-mapped L1D model: 512 lines x 64 B = 32 KiB. Determinism
/// matters more than fidelity; it exists so locality-changing
/// transformations (unroll-and-jam, layout) have measurable effect.
class CacheSim {
public:
  static constexpr uint32_t LineBits = 6;
  static constexpr uint32_t NumLines = 512;

  /// Returns true on hit; installs the line otherwise.
  bool access(uint64_t Addr) {
    uint64_t Line = Addr >> LineBits;
    uint32_t Index = static_cast<uint32_t>(Line) & (NumLines - 1);
    if (Tags[Index] == Line)
      return true;
    Tags[Index] = Line;
    return false;
  }

  void reset() {
    for (uint64_t &T : Tags)
      T = ~0ULL;
  }

  CacheSim() { reset(); }

private:
  uint64_t Tags[NumLines];
};

/// Two-bit saturating-counter branch predictor keyed by a site id, used for
/// branches without a static hint.
class BranchPredictor {
public:
  static constexpr uint32_t TableSize = 1024;

  /// Predicts and updates for the branch at \p Site; returns true when the
  /// prediction matched \p Taken.
  bool predictAndUpdate(uint64_t Site, bool Taken) {
    uint8_t &Counter = Table[Site & (TableSize - 1)];
    bool Predicted = Counter >= 2;
    if (Taken && Counter < 3)
      ++Counter;
    else if (!Taken && Counter > 0)
      --Counter;
    return Predicted == Taken;
  }

  void reset() {
    for (uint8_t &C : Table)
      C = 1;
  }

  BranchPredictor() { reset(); }

private:
  uint8_t Table[TableSize];
};

} // namespace vm
} // namespace ropt

#endif // ROPT_VM_COST_MODEL_H
