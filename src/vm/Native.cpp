//===- vm/Native.cpp - JNI-style native method registry --------------------===//

#include "vm/Native.h"

#include <cmath>

using namespace ropt;
using namespace ropt::vm;

void NativeRegistry::add(const std::string &Name, NativeFn Fn,
                         uint32_t WorkCycles) {
  Impls[Name] = NativeImpl{std::move(Fn), WorkCycles};
}

const NativeImpl *NativeRegistry::lookup(const std::string &Name) const {
  auto It = Impls.find(Name);
  return It == Impls.end() ? nullptr : &It->second;
}

NativeRegistry NativeRegistry::standardLibrary() {
  NativeRegistry R;
  auto Unary = [](double (*F)(double)) {
    return [F](NativeContext &, const std::vector<Value> &Args) {
      return Value::fromF64(F(Args[0].asF64()));
    };
  };
  auto Binary = [](double (*F)(double, double)) {
    return [F](NativeContext &, const std::vector<Value> &Args) {
      return Value::fromF64(F(Args[0].asF64(), Args[1].asF64()));
    };
  };

  // Math: deterministic, replaceable with intrinsics by the LLVM backend.
  R.add("sin", Unary(std::sin), 60);
  R.add("cos", Unary(std::cos), 60);
  R.add("tan", Unary(std::tan), 70);
  R.add("exp", Unary(std::exp), 60);
  R.add("log", Unary(std::log), 60);
  R.add("floor", Unary(std::floor), 20);
  R.add("absF", Unary(std::fabs), 10);
  R.add("pow", Binary(std::pow), 90);
  R.add("atan2", Binary(std::atan2), 90);
  R.add("minF", Binary([](double A, double B) { return A < B ? A : B; }),
        10);
  R.add("maxF", Binary([](double A, double B) { return A > B ? A : B; }),
        10);

  // I/O: appends to the io log / consumes the scripted input queue. The
  // replayability analysis blocklists every method that reaches these.
  auto LogOp = [](int64_t Tag) {
    return [Tag](NativeContext &Ctx, const std::vector<Value> &Args) {
      if (Ctx.IoLog) {
        Ctx.IoLog->push_back(Tag);
        for (const Value &V : Args)
          Ctx.IoLog->push_back(V.asI64());
      }
      return Value();
    };
  };
  R.add("print", LogOp(1), 400);
  R.add("drawCell", LogOp(2), 520);
  R.add("vibrate", LogOp(3), 500);
  R.add("writeRecord", LogOp(4), 800);
  R.add("readInput",
        [](NativeContext &Ctx, const std::vector<Value> &) {
          if (Ctx.InputQueue && !Ctx.InputQueue->empty()) {
            int64_t V = Ctx.InputQueue->front();
            Ctx.InputQueue->pop_front();
            return Value::fromI64(V);
          }
          return Value::fromI64(-1);
        },
        200);

  // Heavyweight app natives: an external chess-engine probe and an asset
  // decoder. Both are opaque C/C++ the replay system blocklists (they are
  // declared DoesIO in the dex files that use them).
  R.add("engineProbe",
        [](NativeContext &, const std::vector<Value> &Args) {
          uint64_t H = static_cast<uint64_t>(Args[0].asI64());
          H ^= H >> 33;
          H *= 0xff51afd7ed558ccdULL;
          H ^= H >> 29;
          return Value::fromI64(static_cast<int64_t>(H % 2000) - 1000);
        },
        20000);
  R.add("decodeAsset",
        [](NativeContext &, const std::vector<Value> &Args) {
          return Value::fromI64(Args[0].asI64() * 2654435761LL);
        },
        4000);

  // Non-deterministic services: blocklisted for capture.
  R.add("currentTimeMillis",
        [](NativeContext &Ctx, const std::vector<Value> &) {
          return Value::fromI64(static_cast<int64_t>(Ctx.NowMillis));
        },
        30);
  R.add("randomInt",
        [](NativeContext &Ctx, const std::vector<Value> &Args) {
          int64_t Bound = Args[0].asI64();
          if (Bound <= 0 || !Ctx.EnvRng)
            return Value::fromI64(0);
          return Value::fromI64(static_cast<int64_t>(
              Ctx.EnvRng->below(static_cast<uint64_t>(Bound))));
        },
        40);
  return R;
}
