//===- vm/Trap.h - Abnormal execution outcomes -------------------*- C++ -*-===//
//
// Part of ReplayOpt (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Trap kinds shared by the interpreter and the machine-code executor.
/// These are the runtime-visible failure modes Figure 1 classifies: a
/// miscompiled binary crashes (null/bounds/div/memory), times out, or runs
/// to completion with wrong output (caught by the verification map).
///
//===----------------------------------------------------------------------===//

#ifndef ROPT_VM_TRAP_H
#define ROPT_VM_TRAP_H

namespace ropt {
namespace vm {

enum class TrapKind {
  None,
  NullPointer,
  OutOfBounds,
  DivByZero,
  Timeout,       ///< Instruction budget exhausted.
  OutOfMemory,   ///< Heap exhausted.
  MemoryFault,   ///< Raw access violation / unmapped access.
  StackOverflow, ///< Call depth limit exceeded.
};

/// Short name for \p Kind.
inline const char *trapKindName(TrapKind Kind) {
  switch (Kind) {
  case TrapKind::None: return "none";
  case TrapKind::NullPointer: return "null-pointer";
  case TrapKind::OutOfBounds: return "out-of-bounds";
  case TrapKind::DivByZero: return "div-by-zero";
  case TrapKind::Timeout: return "timeout";
  case TrapKind::OutOfMemory: return "out-of-memory";
  case TrapKind::MemoryFault: return "memory-fault";
  case TrapKind::StackOverflow: return "stack-overflow";
  }
  return "unknown";
}

} // namespace vm
} // namespace ropt

#endif // ROPT_VM_TRAP_H
