//===- vm/Runtime.cpp - Mixed-mode execution engine (shared plumbing) ------===//

#include "vm/Runtime.h"

#include "support/Metrics.h"
#include "support/Random.h"

#include <cassert>
#include <cmath>

using namespace ropt;
using namespace ropt::vm;

Runtime::Runtime(os::AddressSpace &Space, const dex::DexFile &Dex,
                 const NativeRegistry &Natives, RuntimeConfig Config)
    : Space(Space), Dex(Dex), Natives(Natives), Config(Config),
      TheHeap(Space, Config.HeapLimitBytes, Config.GcThresholdBytes) {
  ResolvedNatives.reserve(Dex.natives().size());
  for (const dex::NativeDecl &Decl : Dex.natives()) {
    const NativeImpl *Impl = Natives.lookup(Decl.Name);
    assert(Impl && "native declared in dex file but not registered");
    ResolvedNatives.push_back(Impl);
  }
  MethodCycles.assign(Dex.methods().size() + Dex.natives().size(), 0);
  MethodFeatures.assign(Dex.methods().size() + Dex.natives().size(),
                        MethodFeatureCounters());
}

void Runtime::mapStandardLayout(os::AddressSpace &Space,
                                const dex::DexFile &Dex,
                                const RuntimeConfig &Config) {
  using os::MappingKind;
  using os::ProtExec;
  using os::ProtRead;
  using os::ProtWrite;

  Space.mapRegion(Layout::CodeBase, Layout::CodeSize, ProtRead | ProtExec,
                  MappingKind::FileMapped, "app.oat");
  Space.mapRegion(Layout::DataBase, Layout::DataSize, ProtRead | ProtWrite,
                  MappingKind::Data, "statics");
  Space.mapRegion(Layout::HeapBase, Config.HeapLimitBytes,
                  ProtRead | ProtWrite, MappingKind::Heap, "dalvik-heap");
  Space.mapRegion(Layout::RuntimeImageBase, Layout::RuntimeImageSize,
                  ProtRead, MappingKind::RuntimeImage, "boot.art");
  Space.mapRegion(Layout::StackBase, Layout::StackSize,
                  ProtRead | ProtWrite, MappingKind::Stack, "stack");

  // Static field initial values.
  for (size_t I = 0; I != Dex.staticFields().size(); ++I) {
    uint64_t Bits =
        static_cast<uint64_t>(Dex.staticFields()[I].InitialValue);
    [[maybe_unused]] bool Ok =
        Space.poke(Layout::DataBase + 8 * I, &Bits, sizeof(Bits));
    assert(Ok && "static field outside data segment");
  }

  // Heap control block.
  Heap H(Space, Config.HeapLimitBytes, Config.GcThresholdBytes);
  H.initialize();

  // Runtime image: immutable objects identical for every process created
  // during this boot. Content is a deterministic function of the boot id.
  Rng ImageRng(0xb007ULL * 2654435761ULL + Config.BootId);
  for (uint64_t Offset = 0; Offset < Layout::RuntimeImageSize;
       Offset += 64) {
    uint64_t Words[8];
    for (uint64_t &W : Words)
      W = ImageRng.next();
    [[maybe_unused]] bool Ok = Space.poke(Layout::RuntimeImageBase + Offset,
                                          Words, sizeof(Words));
    assert(Ok && "runtime image mapping too small");
  }
}

void Runtime::noteBranchSlow(uint64_t Site, bool Taken) {
  MethodFeatureCounters &F = MethodFeatures[AttributionStack.back()];
  ++F.Branches;
  if (!FeaturePredictor.predictAndUpdate(Site, Taken))
    ++F.Mispredicts;
}

void Runtime::noteAllocSlow(uint64_t Slots) {
  MethodFeatureCounters &F = MethodFeatures[AttributionStack.back()];
  ++F.Allocs;
  F.AllocSlots += Slots;
}

Value Runtime::callNative(dex::NativeId Id,
                          const std::vector<Value> &Args) {
  const NativeImpl *Impl = ResolvedNatives.at(Id);
  // The JNI transition is the caller's cost; the native body's work is
  // attributed to the native itself (profile slots after the method table)
  // so the code-breakdown's JNI category sees it.
  charge(Costs.NativeCallCycles);
  if (Config.AttributeCycles && !AttributionStack.empty()) {
    // Feature attribution goes to the nearest managed caller beneath the
    // native wrapper (the wrapper itself sits outside every compilable
    // region, so the region's JNI share would otherwise be invisible).
    dex::MethodId Caller = AttributionStack.size() >= 2
                               ? AttributionStack[AttributionStack.size() - 2]
                               : AttributionStack.back();
    MethodFeatures[Caller].NativeCycles +=
        Costs.NativeCallCycles + Impl->WorkCycles;
  }
  if (Config.AttributeCycles)
    AttributionStack.push_back(
        static_cast<dex::MethodId>(Dex.methods().size() + Id));
  charge(Impl->WorkCycles);
  if (Config.AttributeCycles)
    AttributionStack.pop_back();
  Env.IoLog = &IoLog;
  Env.InputQueue = &Inputs;
  // A coarse monotone clock: cycles at 1 GHz, rounded to milliseconds.
  Env.NowMillis = TotalCycles / 1000000;
  return Impl->Fn(Env, Args);
}

Value Runtime::invoke(dex::MethodId MethodId,
                      const std::vector<Value> &Args) {
  if (Trap != TrapKind::None)
    return Value();
  if (Depth >= Config.MaxCallDepth) {
    Trap = TrapKind::StackOverflow;
    return Value();
  }

  const dex::Method &M = Dex.method(MethodId);
  assert(Args.size() == M.ParamCount && "argument count mismatch");

  ++Depth;
  if (Config.AttributeCycles)
    AttributionStack.push_back(MethodId);

  bool FiredHook = false;
  if (MethodId == HookTarget && !RegionActive) {
    RegionActive = true;
    FiredHook = true;
    if (Hook.OnEnter)
      Hook.OnEnter(Args);
  }

  Value Ret;
  const MachineFunction *Fn = nullptr;
  if (!M.IsNative && Mode == ExecMode::Mixed) {
    // The session-shared cache wins: it is the immutable compiled binary
    // under evaluation; the runtime-owned cache serves online installs.
    if (SharedCode)
      Fn = SharedCode->lookup(MethodId);
    if (!Fn)
      Fn = Cache.lookup(MethodId);
  }
  if (M.IsNative)
    Ret = callNative(M.Native, Args);
  else if (Fn)
    Ret = execMachine(*Fn, Args);
  else
    Ret = interpret(M, Args);

  if (FiredHook) {
    if (Hook.OnExit)
      Hook.OnExit();
    RegionActive = false;
  }

  if (Config.AttributeCycles)
    AttributionStack.pop_back();
  --Depth;
  return Ret;
}

CallResult Runtime::call(dex::MethodId Method,
                         const std::vector<Value> &Args) {
  assert(Depth == 0 && "call() is not reentrant");
  Trap = TrapKind::None;
  CallCycles = 0;
  CallInsns = 0;

  Value Ret = invoke(Method, Args);

  CallResult Result;
  Result.Trap = Trap;
  Result.Ret = Ret;
  Result.Cycles = CallCycles;
  Result.Insns = CallInsns;
  Trap = TrapKind::None;

  // Flushed per top-level call, not per instruction, so the interpreter's
  // hot loop stays untouched.
  ROPT_METRIC_INC("vm.calls");
  ROPT_METRIC_ADD("vm.insns", Result.Insns);
  ROPT_METRIC_ADD("vm.cycles", Result.Cycles);
  if (Result.Trap != TrapKind::None)
    ROPT_METRIC_INC("vm.traps");
  return Result;
}

void Runtime::resetProfile() {
  MethodCycles.assign(Dex.methods().size() + Dex.natives().size(), 0);
  MethodFeatures.assign(Dex.methods().size() + Dex.natives().size(),
                        MethodFeatureCounters());
  FeaturePredictor.reset();
}

Value Runtime::readStatic(dex::StaticFieldId Id) {
  uint64_t Bits = 0;
  [[maybe_unused]] bool Ok =
      Space.peek(staticSlotAddr(Id), &Bits, sizeof(Bits));
  assert(Ok && "static slot unmapped");
  Value V;
  V.Raw = Bits;
  return V;
}
