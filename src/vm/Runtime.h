//===- vm/Runtime.h - Mixed-mode execution engine ---------------*- C++ -*-===//
//
// Part of ReplayOpt (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The execution engine: a bytecode interpreter and a machine-code executor
/// sharing one heap, one static area, one native registry, and one cycle
/// accounting stream — the analogue of ART running a mix of interpreted and
/// AOT-compiled methods. Every call picks the best available tier per
/// method (unless forced to interpret, as the verification replay is).
///
//===----------------------------------------------------------------------===//

#ifndef ROPT_VM_RUNTIME_H
#define ROPT_VM_RUNTIME_H

#include "dex/DexFile.h"
#include "os/AddressSpace.h"
#include "vm/CostModel.h"
#include "vm/Heap.h"
#include "vm/Machine.h"
#include "vm/Native.h"
#include "vm/Trap.h"
#include "vm/Value.h"

#include <deque>
#include <memory>
#include <vector>

namespace ropt {
namespace vm {

/// Hooks the interpreted replay uses to build type profiles and the
/// verification map (Section 3.4). Only the interpreter fires them.
class ExecObserver {
public:
  virtual ~ExecObserver() = default;
  /// An invoke-virtual at (Caller, Pc) dispatched on ReceiverClass.
  virtual void onVirtualDispatch(dex::MethodId Caller, uint32_t Pc,
                                 dex::ClassId ReceiverClass) {
    (void)Caller;
    (void)Pc;
    (void)ReceiverClass;
  }
  /// An 8-byte heap or static cell at Addr was written.
  virtual void onCellWrite(uint64_t Addr) { (void)Addr; }
};

/// Per-method microarchitectural event counts, filled alongside the
/// exclusive-cycle profile (only when AttributeCycles is on) and indexed
/// like Runtime::methodCycles(). The analysis layer's bottleneck
/// classifier consumes these; measurement runs never touch them, and the
/// counting-only branch-predictor consult uses a dedicated predictor so
/// profiling cannot perturb the cost model's state.
struct MethodFeatureCounters {
  uint64_t Insns = 0;
  uint64_t Branches = 0;      ///< Conditional branches executed.
  uint64_t Mispredicts = 0;   ///< Counting-only 2-bit-predictor misses.
  uint64_t MemReads = 0;
  uint64_t MemWrites = 0;
  uint64_t CacheMisses = 0;   ///< L1D-model misses on the read side.
  uint64_t Allocs = 0;
  uint64_t AllocSlots = 0;
  uint64_t NativeCycles = 0;  ///< JNI transition + body, charged to the
                              ///< nearest managed caller.
};

/// Runtime configuration.
struct RuntimeConfig {
  uint64_t InsnBudget = 50000000; ///< Per top-level call; Timeout beyond.
  uint32_t MaxCallDepth = 512;
  uint64_t HeapLimitBytes = 24 * 1024 * 1024;
  uint64_t GcThresholdBytes = 8 * 1024 * 1024;
  bool AttributeCycles = false; ///< Per-method exclusive cycle profile.
  uint64_t BootId = 1;          ///< Seeds the runtime-image content.
};

/// Result of one top-level call.
struct CallResult {
  TrapKind Trap = TrapKind::None;
  Value Ret;
  uint64_t Cycles = 0;
  uint64_t Insns = 0;

  bool ok() const { return Trap == TrapKind::None; }
};

/// Callbacks fired around the outermost invocation of a designated hot
/// region root — the capture mechanism's entry-point instrumentation
/// (Section 3.2, step 1).
struct RegionHooks {
  std::function<void(const std::vector<Value> &)> OnEnter;
  std::function<void()> OnExit;
};

/// Execution tier selection.
enum class ExecMode {
  Mixed,         ///< Compiled code when available, interpreter otherwise.
  InterpretOnly, ///< Force the interpreter everywhere.
};

/// The engine. One Runtime per process address space.
class Runtime {
public:
  Runtime(os::AddressSpace &Space, const dex::DexFile &Dex,
          const NativeRegistry &Natives, RuntimeConfig Config);

  /// Maps the standard process layout into \p Space and initializes the
  /// data segment (static fields), heap control block, and the
  /// boot-deterministic runtime image. Call once for a fresh app process;
  /// replay loaders restore captured pages instead.
  static void mapStandardLayout(os::AddressSpace &Space,
                                const dex::DexFile &Dex,
                                const RuntimeConfig &Config);

  /// Invokes \p Method with \p Args. Resets the per-call budget; cycle and
  /// instruction counts accumulate into the lifetime totals too.
  CallResult call(dex::MethodId Method, const std::vector<Value> &Args);

  Heap &heap() { return TheHeap; }
  os::AddressSpace &space() { return Space; }
  const RuntimeConfig &config() const { return Config; }
  const dex::DexFile &dexFile() const { return Dex; }
  CodeCache &codeCache() { return Cache; }
  const CycleCostModel &costModel() const { return Costs; }

  void setMode(ExecMode M) { Mode = M; }
  ExecMode mode() const { return Mode; }

  /// Zero-copy code install for replay sessions: points the Mixed tier at
  /// an immutable, externally-owned code cache. Lookups consult it before
  /// the runtime-owned cache (which still serves online installs), so one
  /// compiled binary serves any number of fresh Runtimes without per-replay
  /// install work. The caller guarantees \p Code outlives this Runtime.
  void setSharedCode(const CodeCache *Code) { SharedCode = Code; }
  const CodeCache *sharedCode() const { return SharedCode; }

  void setObserver(ExecObserver *Obs) { Observer = Obs; }

  /// Arms hooks around the outermost call of \p Target (recursion does not
  /// re-fire). Used by the capture manager.
  void armRegionHook(dex::MethodId Target, RegionHooks Hooks) {
    HookTarget = Target;
    Hook = std::move(Hooks);
  }
  void disarmRegionHook() {
    HookTarget = dex::InvalidId;
    Hook = RegionHooks();
  }

  /// Environment for natives: scripted inputs, io log, nondeterminism.
  NativeContext &env() { return Env; }
  std::vector<int64_t> &ioLog() { return IoLog; }
  std::deque<int64_t> &inputQueue() { return Inputs; }
  /// Installs the nondeterminism source natives draw from.
  void setEnvironmentRng(Rng *R) { Env.EnvRng = R; }

  /// Lifetime accounting.
  uint64_t totalCycles() const { return TotalCycles; }
  uint64_t totalInsns() const { return TotalInsns; }

  /// Exclusive cycles per method id (only filled when AttributeCycles).
  /// Entries past the method table — [methods().size(),
  /// methods().size() + natives().size()) — attribute native (JNI) work.
  const std::vector<uint64_t> &methodCycles() const { return MethodCycles; }
  /// Per-method feature counts, same indexing as methodCycles() (only
  /// filled when AttributeCycles).
  const std::vector<MethodFeatureCounters> &methodFeatures() const {
    return MethodFeatures;
  }
  void resetProfile();

  /// Static field cell address.
  static uint64_t staticSlotAddr(dex::StaticFieldId Id) {
    return Layout::DataBase + 8 * Id;
  }

  /// Reads a static field directly (test/verification convenience).
  Value readStatic(dex::StaticFieldId Id);

private:
  // --- Shared execution plumbing -----------------------------------------
  // The per-instruction helpers are defined inline at the bottom of this
  // header: they sit on the interpreter/executor dispatch hot path and the
  // call through a separate TU cost roughly a third of replay throughput.
  void charge(uint64_t Cycles);
  void chargeMemRead(uint64_t Addr);
  void chargeMemWrite(uint64_t Addr);
  bool memLoad(uint64_t Addr, uint64_t &Out);
  bool memStore(uint64_t Addr, uint64_t ValueBits);
  bool consumeInsn();
  void safepoint();
  // Cold paths stay in Runtime.cpp.
  Value callNative(dex::NativeId Id, const std::vector<Value> &Args);
  Value invoke(dex::MethodId Method, const std::vector<Value> &Args);
  /// Feature counting (profiling only, no cycle charge): a conditional
  /// branch at \p Site that went \p Taken, and an allocation of \p Slots.
  /// The AttributeCycles early-out is inline (one predictable branch per
  /// dynamic branch instruction); the counting body stays in Runtime.cpp.
  void noteBranch(uint64_t Site, bool Taken) {
    if (Config.AttributeCycles && !AttributionStack.empty())
      noteBranchSlow(Site, Taken);
  }
  void noteAlloc(uint64_t Slots) {
    if (Config.AttributeCycles && !AttributionStack.empty())
      noteAllocSlow(Slots);
  }
  void noteBranchSlow(uint64_t Site, bool Taken);
  void noteAllocSlow(uint64_t Slots);

  // --- Interpreter (Interpreter.cpp) ---------------------------------------
  Value interpret(const dex::Method &M, const std::vector<Value> &Args);

  // --- Machine executor (Executor.cpp) -------------------------------------
  Value execMachine(const MachineFunction &Fn,
                    const std::vector<Value> &Args);

  friend class RuntimeTestPeer;

  os::AddressSpace &Space;
  const dex::DexFile &Dex;
  const NativeRegistry &Natives;
  RuntimeConfig Config;
  CycleCostModel Costs;
  Heap TheHeap;
  CodeCache Cache;
  const CodeCache *SharedCode = nullptr; ///< Session-shared, immutable.
  ExecMode Mode = ExecMode::Mixed;
  ExecObserver *Observer = nullptr;

  /// Resolved native implementations, indexed by NativeId.
  std::vector<const NativeImpl *> ResolvedNatives;

  NativeContext Env;
  std::vector<int64_t> IoLog;
  std::deque<int64_t> Inputs;

  CacheSim DCache;
  BranchPredictor Predictor;

  dex::MethodId HookTarget = dex::InvalidId;
  RegionHooks Hook;
  bool RegionActive = false;

  // Per-call execution state.
  TrapKind Trap = TrapKind::None;
  uint64_t CallCycles = 0;
  uint64_t CallInsns = 0;
  uint32_t Depth = 0;

  // Lifetime accounting.
  uint64_t TotalCycles = 0;
  uint64_t TotalInsns = 0;

  // Profiling.
  std::vector<uint64_t> MethodCycles;
  std::vector<MethodFeatureCounters> MethodFeatures;
  std::vector<dex::MethodId> AttributionStack;
  BranchPredictor FeaturePredictor; ///< Counting-only, never charges.
};

// --- Hot-path plumbing, inline ------------------------------------------

inline void Runtime::charge(uint64_t Cycles) {
  CallCycles += Cycles;
  TotalCycles += Cycles;
  if (Config.AttributeCycles && !AttributionStack.empty())
    MethodCycles[AttributionStack.back()] += Cycles;
}

inline void Runtime::chargeMemRead(uint64_t Addr) {
  uint64_t Cost = Costs.LoadCycles;
  bool Hit = DCache.access(Addr);
  if (!Hit)
    Cost += Costs.CacheMissPenalty;
  if (Config.AttributeCycles && !AttributionStack.empty()) {
    MethodFeatureCounters &F = MethodFeatures[AttributionStack.back()];
    ++F.MemReads;
    if (!Hit)
      ++F.CacheMisses;
  }
  charge(Cost);
}

inline void Runtime::chargeMemWrite(uint64_t Addr) {
  DCache.access(Addr); // stores install the line; latency is absorbed
  if (Config.AttributeCycles && !AttributionStack.empty())
    ++MethodFeatures[AttributionStack.back()].MemWrites;
  charge(Costs.StoreCycles);
}

inline bool Runtime::memLoad(uint64_t Addr, uint64_t &Out) {
  chargeMemRead(Addr);
  if (Space.loadU64(Addr, Out) == os::AccessResult::Ok)
    return true;
  Trap = TrapKind::MemoryFault;
  return false;
}

inline bool Runtime::memStore(uint64_t Addr, uint64_t ValueBits) {
  chargeMemWrite(Addr);
  if (Space.storeU64(Addr, ValueBits) == os::AccessResult::Ok) {
    if (Observer)
      Observer->onCellWrite(Addr);
    return true;
  }
  Trap = TrapKind::MemoryFault;
  return false;
}

inline bool Runtime::consumeInsn() {
  ++CallInsns;
  ++TotalInsns;
  if (Config.AttributeCycles && !AttributionStack.empty())
    ++MethodFeatures[AttributionStack.back()].Insns;
  if (CallInsns > Config.InsnBudget) {
    Trap = TrapKind::Timeout;
    return false;
  }
  return true;
}

inline void Runtime::safepoint() {
  charge(Costs.SafepointCycles);
  uint64_t GcCost = TheHeap.pollSafepoint(Costs.GcPauseCycles);
  if (GcCost > 0)
    charge(GcCost);
}

} // namespace vm
} // namespace ropt

#endif // ROPT_VM_RUNTIME_H

