//===- vm/Value.h - Runtime value representation ----------------*- C++ -*-===//
//
// Part of ReplayOpt (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Registers and slots are raw 64-bit cells; Value provides the typed
/// views. References are virtual addresses into the process address space
/// (0 is null), so captured memory snapshots stay self-describing.
///
//===----------------------------------------------------------------------===//

#ifndef ROPT_VM_VALUE_H
#define ROPT_VM_VALUE_H

#include <cstdint>
#include <cstring>

namespace ropt {
namespace vm {

/// One 64-bit register / slot cell.
struct Value {
  uint64_t Raw = 0;

  static Value fromI64(int64_t V) {
    Value Out;
    Out.Raw = static_cast<uint64_t>(V);
    return Out;
  }

  static Value fromF64(double V) {
    Value Out;
    std::memcpy(&Out.Raw, &V, sizeof(V));
    return Out;
  }

  static Value fromRef(uint64_t Addr) {
    Value Out;
    Out.Raw = Addr;
    return Out;
  }

  int64_t asI64() const { return static_cast<int64_t>(Raw); }

  double asF64() const {
    double V;
    std::memcpy(&V, &Raw, sizeof(V));
    return V;
  }

  uint64_t asRef() const { return Raw; }
  bool isNullRef() const { return Raw == 0; }
};

} // namespace vm
} // namespace ropt

#endif // ROPT_VM_VALUE_H
