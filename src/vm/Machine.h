//===- vm/Machine.h - Compiled-code target representation -------*- C++ -*-===//
//
// Part of ReplayOpt (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The machine-level program representation both compiler backends (the
/// conservative Android pipeline and the LLVM-like pipeline) emit, and the
/// executor runs under the cycle cost model. Unlike the bytecode, checks
/// (null/bounds/div), GC safepoints, speculation guards and intrinsics are
/// explicit instructions here — so optimization passes can legally remove,
/// hoist or strengthen them, and unsound passes can genuinely break the
/// program.
///
//===----------------------------------------------------------------------===//

#ifndef ROPT_VM_MACHINE_H
#define ROPT_VM_MACHINE_H

#include "dex/DexFile.h"

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace ropt {
namespace vm {

enum class MOpcode : uint8_t {
  MNop,

  MMovImmI, ///< A = ImmI
  MMovImmF, ///< A = ImmF
  MMov,     ///< A = B

  MAddI, MSubI, MMulI, MDivI, MRemI, ///< MDivI/MRemI are *unchecked*.
  MAndI, MOrI, MXorI, MShlI, MShrI,
  MNegI,

  MAddF, MSubF, MMulF, MDivF,
  MNegF, MCmpF, MSqrtF,
  MI2F, MF2I,

  MGoto,
  MIfEq, MIfNe, MIfLt, MIfLe, MIfGt, MIfGe,       ///< regs B ? C
  MIfEqz, MIfNez, MIfLtz, MIfLez, MIfGtz, MIfGez, ///< reg B ? 0

  MCheckNull,   ///< trap NullPointer if reg B == 0
  MCheckBounds, ///< trap OutOfBounds unless 0 <= reg C < length(reg B)
  MCheckDiv,    ///< trap DivByZero if reg B == 0
  MSafepoint,   ///< GC poll
  MGuardClass,  ///< branch to Target unless class(reg B) == Idx

  MLoadSlot,    ///< A = obj(B).slot(Idx)         (unchecked)
  MStoreSlot,   ///< obj(B).slot(Idx) = A         (unchecked)
  MLoadStatic,  ///< A = statics[Idx]
  MStoreStatic, ///< statics[Idx] = A
  MALoad,       ///< A = arr(B)[C]                (unchecked)
  MAStore,      ///< arr(B)[C] = A                (unchecked)
  MArrayLen,    ///< A = length(arr B)            (requires non-null B)

  MNewInstance, ///< A = new object of class Idx
  MNewArray,    ///< A = new array, kind Idx (ObjKind), length reg B

  MCallStatic,  ///< A = call method Idx(args)
  MCallVirtual, ///< A = dispatch declared method Idx through Args[0]
  MCallNative,  ///< A = native Idx(args)
  MIntrinsic,   ///< A = intrinsic Idx(args); inlined math

  MRet,    ///< return reg B
  MRetVoid,

  MOpcodeCount,
};

/// Math intrinsics the backend can inline in place of JNI natives.
enum class IntrinsicKind : uint8_t {
  Sin, Cos, Tan, Exp, Log, Floor, AbsF, Pow, Atan2, MinF, MaxF,
  IntrinsicCount,
};

/// Maps a native's declared IntrinsicKind string ("sin", ...) to the enum;
/// returns false when there is no intrinsic for it.
bool intrinsicFromName(const std::string &Name, IntrinsicKind &Out);

/// Work-cycle cost of one inlined intrinsic (relative weights follow the
/// native-side costs, minus the transition).
uint32_t intrinsicWorkCycles(IntrinsicKind Kind);

/// Branch-likelihood hint set by the compiler. Unhinted branches go through
/// the dynamic predictor.
enum class BranchHint : int8_t {
  None = -1,
  Unlikely = 0,
  Likely = 1,
};

/// Maximum call arguments, matching the bytecode.
constexpr unsigned MMaxArgs = 8;
using MRegIdx = uint16_t;
constexpr MRegIdx MNoReg = 0xffff;

/// One machine instruction.
struct MInsn {
  MOpcode Op = MOpcode::MNop;
  MRegIdx A = MNoReg;
  MRegIdx B = MNoReg;
  MRegIdx C = MNoReg;
  int32_t Target = -1;
  uint32_t Idx = 0;
  /// Bytecode-pc provenance for profile-keyed passes (devirtualization);
  /// ~0u when the instruction has no bytecode origin.
  uint32_t Site = 0xffffffff;
  int64_t ImmI = 0;
  double ImmF = 0.0;
  BranchHint Hint = BranchHint::None;
  uint8_t ArgCount = 0;
  MRegIdx Args[MMaxArgs] = {};
};

/// Number of architectural registers; virtual registers beyond this are
/// "spilled" and each touch pays a penalty. Register allocation quality is
/// therefore a genuine performance dimension.
constexpr MRegIdx PhysRegCount = 24;

/// One compiled function.
struct MachineFunction {
  dex::MethodId Method = dex::InvalidId;
  std::string Name;
  uint16_t NumRegs = 0;
  uint16_t ParamCount = 0;
  bool ReturnsValue = false;
  std::vector<MInsn> Code;

  /// Binary size estimate used for storage accounting and as the GA's
  /// fitness tiebreak (smaller wins at equal speed).
  uint64_t sizeBytes() const { return Code.size() * 4; }
};

/// The set of compiled methods a runtime executes from. Replays swap whole
/// caches to compare code versions.
class CodeCache {
public:
  void install(std::shared_ptr<MachineFunction> Fn) {
    Functions[Fn->Method] = std::move(Fn);
  }

  const MachineFunction *lookup(dex::MethodId Id) const {
    auto It = Functions.find(Id);
    return It == Functions.end() ? nullptr : It->second.get();
  }

  void remove(dex::MethodId Id) { Functions.erase(Id); }
  void clear() { Functions.clear(); }
  size_t size() const { return Functions.size(); }

  uint64_t totalSizeBytes() const {
    uint64_t Total = 0;
    for (const auto &KV : Functions)
      Total += KV.second->sizeBytes();
    return Total;
  }

  const std::map<dex::MethodId, std::shared_ptr<MachineFunction>> &
  functions() const {
    return Functions;
  }

private:
  std::map<dex::MethodId, std::shared_ptr<MachineFunction>> Functions;
};

/// Mnemonic for \p Op.
const char *mopcodeName(MOpcode Op);

/// True for MGoto / MIf* (not guards).
bool isMBranch(MOpcode Op);

/// True for the MIf* family.
bool isMCondBranch(MOpcode Op);

} // namespace vm
} // namespace ropt

#endif // ROPT_VM_MACHINE_H
