//===- vm/Native.h - JNI-style native method registry -----------*- C++ -*-===//
//
// Part of ReplayOpt (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Native (JNI) methods: C++ implementations the bytecode can call. Each
/// call pays the JNI transition cost plus a per-native work cost — natives
/// are the expensive, opaque boundary the paper's LLVM backend attacks by
/// replacing math natives with intrinsics.
///
//===----------------------------------------------------------------------===//

#ifndef ROPT_VM_NATIVE_H
#define ROPT_VM_NATIVE_H

#include "support/Random.h"
#include "vm/Value.h"

#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace ropt {
namespace vm {

/// Environment a native executes against. Deterministic natives only read
/// their arguments; I/O natives touch the log/queue; non-deterministic
/// natives draw from EnvRng / the tick clock.
struct NativeContext {
  Rng *EnvRng = nullptr;
  std::vector<int64_t> *IoLog = nullptr;
  std::deque<int64_t> *InputQueue = nullptr;
  uint64_t NowMillis = 0;
};

using NativeFn =
    std::function<Value(NativeContext &, const std::vector<Value> &)>;

/// One registered native.
struct NativeImpl {
  NativeFn Fn;
  /// Work cycles of the native body itself (on top of the JNI transition).
  uint32_t WorkCycles = 40;
};

/// Name-keyed registry the runtime resolves DexFile native declarations
/// against.
class NativeRegistry {
public:
  /// Registers (or replaces) \p Name.
  void add(const std::string &Name, NativeFn Fn, uint32_t WorkCycles = 40);

  /// Returns the implementation or nullptr.
  const NativeImpl *lookup(const std::string &Name) const;

  /// The standard library: math (sin/cos/tan/exp/log/pow/atan2/floor/
  /// absF/minF/maxF), I/O (print/drawCell/vibrate/readInput/writeRecord),
  /// and non-deterministic services (currentTimeMillis/randomInt).
  static NativeRegistry standardLibrary();

private:
  std::map<std::string, NativeImpl> Impls;
};

} // namespace vm
} // namespace ropt

#endif // ROPT_VM_NATIVE_H
