//===- vm/MachineUtil.h - MInsn classification helpers ----------*- C++ -*-===//
//
// Part of ReplayOpt (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Operand and effect classification for machine instructions, shared by
/// every optimization pass in both compiler backends, plus register
/// renumbering utilities used at code generation time.
///
//===----------------------------------------------------------------------===//

#ifndef ROPT_VM_MACHINE_UTIL_H
#define ROPT_VM_MACHINE_UTIL_H

#include "vm/Machine.h"

#include <functional>

namespace ropt {
namespace vm {

/// True when \p I defines register I.A.
bool definesA(const MInsn &I);

/// Invokes \p Fn for every register the instruction reads (B/C/Args and,
/// for stores, the stored value in A).
void forEachUse(const MInsn &I, const std::function<void(MRegIdx)> &Fn);

/// Invokes \p Fn for a *mutable reference* to every use operand, allowing
/// passes to rewrite them in place.
void forEachUseMut(MInsn &I, const std::function<void(MRegIdx &)> &Fn);

/// True for instructions with no effect beyond writing I.A and that cannot
/// trap: immediates, moves, non-div ALU, FP arithmetic, compares,
/// conversions. Safe to remove when dead and to value-number.
bool isPureOp(MOpcode Op);

/// True for memory reads (slot/static/array loads, array length).
bool isLoadOp(MOpcode Op);

/// True for memory writes (slot/static/array stores).
bool isStoreOp(MOpcode Op);

/// True for the three call opcodes (not intrinsics).
bool isCallOp(MOpcode Op);

/// True for runtime checks (null/bounds/div).
bool isCheckOp(MOpcode Op);

/// True when the instruction may trap, perform I/O, allocate, or otherwise
/// must not be removed even if its result is unused.
bool hasSideEffects(const MInsn &I);

/// Renumbers virtual registers above the parameter window so the most
/// frequently used ones land in the physical register file (indexes below
/// PhysRegCount). Parameters keep their positions — they are the calling
/// convention. Returns the new register count.
uint16_t compactRegistersByFrequency(MachineFunction &Fn);

/// Same, but in first-use order — a deliberately weaker allocation the
/// search space exposes as an alternative.
uint16_t compactRegistersByFirstUse(MachineFunction &Fn);

/// Linear-scan register allocation over occurrence intervals: computes a
/// conservative live interval per virtual register (extended across
/// backward branches so loop-carried values never share a register with
/// loop-local ones), then assigns the lowest free register to each
/// interval in start order. Parameters keep their calling-convention slots
/// while live. This is the strong allocator; the compact-by-frequency and
/// first-use heuristics remain in the search space as weaker choices.
/// Returns the new register count (the maximum live overlap).
uint16_t allocateRegistersLinearScan(MachineFunction &Fn);

/// Renders a one-line disassembly of \p I (debug aid).
std::string formatMInsn(const MInsn &I);

} // namespace vm
} // namespace ropt

#endif // ROPT_VM_MACHINE_UTIL_H
