//===- vm/Machine.cpp - Compiled-code target representation ----------------===//

#include "vm/Machine.h"

using namespace ropt;
using namespace ropt::vm;

bool vm::intrinsicFromName(const std::string &Name, IntrinsicKind &Out) {
  if (Name == "sin") Out = IntrinsicKind::Sin;
  else if (Name == "cos") Out = IntrinsicKind::Cos;
  else if (Name == "tan") Out = IntrinsicKind::Tan;
  else if (Name == "exp") Out = IntrinsicKind::Exp;
  else if (Name == "log") Out = IntrinsicKind::Log;
  else if (Name == "floor") Out = IntrinsicKind::Floor;
  else if (Name == "absF") Out = IntrinsicKind::AbsF;
  else if (Name == "pow") Out = IntrinsicKind::Pow;
  else if (Name == "atan2") Out = IntrinsicKind::Atan2;
  else if (Name == "minF") Out = IntrinsicKind::MinF;
  else if (Name == "maxF") Out = IntrinsicKind::MaxF;
  else return false;
  return true;
}

uint32_t vm::intrinsicWorkCycles(IntrinsicKind Kind) {
  switch (Kind) {
  case IntrinsicKind::Sin:
  case IntrinsicKind::Cos:
    return 22;
  case IntrinsicKind::Tan:
    return 28;
  case IntrinsicKind::Exp:
  case IntrinsicKind::Log:
    return 22;
  case IntrinsicKind::Floor:
    return 4;
  case IntrinsicKind::AbsF:
  case IntrinsicKind::MinF:
  case IntrinsicKind::MaxF:
    return 2;
  case IntrinsicKind::Pow:
  case IntrinsicKind::Atan2:
    return 36;
  case IntrinsicKind::IntrinsicCount:
    break;
  }
  return 20;
}

const char *vm::mopcodeName(MOpcode Op) {
  switch (Op) {
  case MOpcode::MNop: return "nop";
  case MOpcode::MMovImmI: return "mov-imm-i";
  case MOpcode::MMovImmF: return "mov-imm-f";
  case MOpcode::MMov: return "mov";
  case MOpcode::MAddI: return "add-i";
  case MOpcode::MSubI: return "sub-i";
  case MOpcode::MMulI: return "mul-i";
  case MOpcode::MDivI: return "div-i";
  case MOpcode::MRemI: return "rem-i";
  case MOpcode::MAndI: return "and-i";
  case MOpcode::MOrI: return "or-i";
  case MOpcode::MXorI: return "xor-i";
  case MOpcode::MShlI: return "shl-i";
  case MOpcode::MShrI: return "shr-i";
  case MOpcode::MNegI: return "neg-i";
  case MOpcode::MAddF: return "add-f";
  case MOpcode::MSubF: return "sub-f";
  case MOpcode::MMulF: return "mul-f";
  case MOpcode::MDivF: return "div-f";
  case MOpcode::MNegF: return "neg-f";
  case MOpcode::MCmpF: return "cmp-f";
  case MOpcode::MSqrtF: return "sqrt-f";
  case MOpcode::MI2F: return "i2f";
  case MOpcode::MF2I: return "f2i";
  case MOpcode::MGoto: return "goto";
  case MOpcode::MIfEq: return "if-eq";
  case MOpcode::MIfNe: return "if-ne";
  case MOpcode::MIfLt: return "if-lt";
  case MOpcode::MIfLe: return "if-le";
  case MOpcode::MIfGt: return "if-gt";
  case MOpcode::MIfGe: return "if-ge";
  case MOpcode::MIfEqz: return "if-eqz";
  case MOpcode::MIfNez: return "if-nez";
  case MOpcode::MIfLtz: return "if-ltz";
  case MOpcode::MIfLez: return "if-lez";
  case MOpcode::MIfGtz: return "if-gtz";
  case MOpcode::MIfGez: return "if-gez";
  case MOpcode::MCheckNull: return "check-null";
  case MOpcode::MCheckBounds: return "check-bounds";
  case MOpcode::MCheckDiv: return "check-div";
  case MOpcode::MSafepoint: return "safepoint";
  case MOpcode::MGuardClass: return "guard-class";
  case MOpcode::MLoadSlot: return "load-slot";
  case MOpcode::MStoreSlot: return "store-slot";
  case MOpcode::MLoadStatic: return "load-static";
  case MOpcode::MStoreStatic: return "store-static";
  case MOpcode::MALoad: return "aload";
  case MOpcode::MAStore: return "astore";
  case MOpcode::MArrayLen: return "array-len";
  case MOpcode::MNewInstance: return "new-instance";
  case MOpcode::MNewArray: return "new-array";
  case MOpcode::MCallStatic: return "call-static";
  case MOpcode::MCallVirtual: return "call-virtual";
  case MOpcode::MCallNative: return "call-native";
  case MOpcode::MIntrinsic: return "intrinsic";
  case MOpcode::MRet: return "ret";
  case MOpcode::MRetVoid: return "ret-void";
  case MOpcode::MOpcodeCount: break;
  }
  return "invalid";
}

bool vm::isMCondBranch(MOpcode Op) {
  switch (Op) {
  case MOpcode::MIfEq:
  case MOpcode::MIfNe:
  case MOpcode::MIfLt:
  case MOpcode::MIfLe:
  case MOpcode::MIfGt:
  case MOpcode::MIfGe:
  case MOpcode::MIfEqz:
  case MOpcode::MIfNez:
  case MOpcode::MIfLtz:
  case MOpcode::MIfLez:
  case MOpcode::MIfGtz:
  case MOpcode::MIfGez:
    return true;
  default:
    return false;
  }
}

bool vm::isMBranch(MOpcode Op) {
  return Op == MOpcode::MGoto || isMCondBranch(Op);
}
