//===- vm/Executor.cpp - Machine-code executor tier -------------------------===//
//
// Runs compiled MachineFunctions under the cycle cost model. Unlike the
// interpreter, nothing here re-checks what the compiler chose not to check:
// an unsound optimization produces genuine memory corruption, wild traps,
// or silently wrong results — exactly the failure classes Figure 1 counts.
//
//===----------------------------------------------------------------------===//

#include "vm/Runtime.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

using namespace ropt;
using namespace ropt::vm;

namespace {

int64_t safeDiv(int64_t A, int64_t B) {
  if (B == -1 && A == std::numeric_limits<int64_t>::min())
    return A;
  return A / B;
}

int64_t safeRem(int64_t A, int64_t B) {
  if (B == -1 && A == std::numeric_limits<int64_t>::min())
    return 0;
  return A % B;
}

int64_t doubleToInt(double D) {
  if (std::isnan(D))
    return 0;
  if (D >= 9.2233720368547758e18)
    return std::numeric_limits<int64_t>::max();
  if (D <= -9.2233720368547758e18)
    return std::numeric_limits<int64_t>::min();
  return static_cast<int64_t>(D);
}

double runIntrinsic(IntrinsicKind Kind, const Value *Args) {
  switch (Kind) {
  case IntrinsicKind::Sin: return std::sin(Args[0].asF64());
  case IntrinsicKind::Cos: return std::cos(Args[0].asF64());
  case IntrinsicKind::Tan: return std::tan(Args[0].asF64());
  case IntrinsicKind::Exp: return std::exp(Args[0].asF64());
  case IntrinsicKind::Log: return std::log(Args[0].asF64());
  case IntrinsicKind::Floor: return std::floor(Args[0].asF64());
  case IntrinsicKind::AbsF: return std::fabs(Args[0].asF64());
  case IntrinsicKind::Pow:
    return std::pow(Args[0].asF64(), Args[1].asF64());
  case IntrinsicKind::Atan2:
    return std::atan2(Args[0].asF64(), Args[1].asF64());
  case IntrinsicKind::MinF: {
    double A = Args[0].asF64(), B = Args[1].asF64();
    return A < B ? A : B;
  }
  case IntrinsicKind::MaxF: {
    double A = Args[0].asF64(), B = Args[1].asF64();
    return A > B ? A : B;
  }
  case IntrinsicKind::IntrinsicCount:
    break;
  }
  return 0.0;
}

} // namespace

Value Runtime::execMachine(const MachineFunction &Fn,
                           const std::vector<Value> &Args) {
  assert(Args.size() == Fn.ParamCount && "argument count mismatch");

  // Frames overwhelmingly fit the inline buffer, so a call costs no
  // allocation; only pathological register counts spill to the heap.
  Value StackRegs[48];
  std::vector<Value> HeapRegs;
  Value *R;
  if (Fn.NumRegs <= 48) {
    std::fill_n(StackRegs, Fn.NumRegs, Value());
    R = StackRegs;
  } else {
    HeapRegs.resize(Fn.NumRegs);
    R = HeapRegs.data(); // never resized below
  }
  for (size_t I = 0; I != Args.size(); ++I)
    R[I] = Args[I];

  // Scratch argument buffer: one allocation per frame, not per call insn.
  std::vector<Value> CallArgs;

  charge(Costs.CallCycles);

  // Extra cycles per touch of a register that did not fit the physical
  // register file: the regalloc quality dimension. A function whose frame
  // fits the register file cannot touch a spilled register at all, so the
  // whole per-instruction scan is hoisted behind one loop-invariant test.
  const bool MaySpill = Fn.NumRegs > PhysRegCount;
  auto SpillCost = [&](const MInsn &I) {
    uint32_t Touches = 0;
    if (I.A != MNoReg && I.A >= PhysRegCount)
      ++Touches;
    if (I.B != MNoReg && I.B >= PhysRegCount)
      ++Touches;
    if (I.C != MNoReg && I.C >= PhysRegCount)
      ++Touches;
    for (unsigned N = 0; N != I.ArgCount; ++N)
      if (I.Args[N] >= PhysRegCount)
        ++Touches;
    if (Touches)
      charge(static_cast<uint64_t>(Touches) * Costs.SpillTouchCycles);
  };

  auto TakeBranch = [&](const MInsn &I, size_t Pc, bool Taken) {
    charge(Costs.BranchCycles);
    bool PredictedRight;
    if (I.Hint == BranchHint::Likely)
      PredictedRight = Taken;
    else if (I.Hint == BranchHint::Unlikely)
      PredictedRight = !Taken;
    else
      PredictedRight = Predictor.predictAndUpdate(
          (static_cast<uint64_t>(Fn.Method) << 20) ^ Pc, Taken);
    if (!PredictedRight)
      charge(Costs.BranchMispredictPenalty);
    noteBranch((static_cast<uint64_t>(Fn.Method) << 20) ^ Pc, Taken);
  };

  size_t Pc = 0;
  const MInsn *Code = Fn.Code.data();
  const size_t CodeSize = Fn.Code.size();

  while (Trap == TrapKind::None) {
    if (Pc >= CodeSize) {
      // Malformed code (e.g. produced by a broken pass pipeline that
      // slipped past the IR verifier): treat as a crash.
      Trap = TrapKind::MemoryFault;
      break;
    }
    const MInsn &I = Code[Pc];
    if (!consumeInsn())
      break;
    if (MaySpill)
      SpillCost(I);

    size_t NextPc = Pc + 1;

    switch (I.Op) {
    case MOpcode::MNop:
      break;
    case MOpcode::MMovImmI:
      R[I.A] = Value::fromI64(I.ImmI);
      charge(Costs.MoveCycles);
      break;
    case MOpcode::MMovImmF:
      R[I.A] = Value::fromF64(I.ImmF);
      charge(Costs.MoveCycles);
      break;
    case MOpcode::MMov:
      R[I.A] = R[I.B];
      charge(Costs.MoveCycles);
      break;

    case MOpcode::MAddI:
      R[I.A] = Value::fromI64(R[I.B].asI64() + R[I.C].asI64());
      charge(Costs.AluCycles);
      break;
    case MOpcode::MSubI:
      R[I.A] = Value::fromI64(R[I.B].asI64() - R[I.C].asI64());
      charge(Costs.AluCycles);
      break;
    case MOpcode::MMulI:
      R[I.A] = Value::fromI64(R[I.B].asI64() * R[I.C].asI64());
      charge(Costs.MulCycles);
      break;
    case MOpcode::MDivI: {
      // Unchecked: the compiler must have emitted MCheckDiv if the divisor
      // can be zero. Hardware still faults on zero.
      int64_t Divisor = R[I.C].asI64();
      if (Divisor == 0) {
        Trap = TrapKind::DivByZero;
        break;
      }
      R[I.A] = Value::fromI64(safeDiv(R[I.B].asI64(), Divisor));
      charge(Costs.DivCycles);
      break;
    }
    case MOpcode::MRemI: {
      int64_t Divisor = R[I.C].asI64();
      if (Divisor == 0) {
        Trap = TrapKind::DivByZero;
        break;
      }
      R[I.A] = Value::fromI64(safeRem(R[I.B].asI64(), Divisor));
      charge(Costs.DivCycles);
      break;
    }
    case MOpcode::MAndI:
      R[I.A] = Value::fromI64(R[I.B].asI64() & R[I.C].asI64());
      charge(Costs.AluCycles);
      break;
    case MOpcode::MOrI:
      R[I.A] = Value::fromI64(R[I.B].asI64() | R[I.C].asI64());
      charge(Costs.AluCycles);
      break;
    case MOpcode::MXorI:
      R[I.A] = Value::fromI64(R[I.B].asI64() ^ R[I.C].asI64());
      charge(Costs.AluCycles);
      break;
    case MOpcode::MShlI:
      R[I.A] = Value::fromI64(R[I.B].asI64()
                                 << (R[I.C].asI64() & 63));
      charge(Costs.AluCycles);
      break;
    case MOpcode::MShrI:
      R[I.A] =
          Value::fromI64(R[I.B].asI64() >> (R[I.C].asI64() & 63));
      charge(Costs.AluCycles);
      break;
    case MOpcode::MNegI:
      R[I.A] = Value::fromI64(-R[I.B].asI64());
      charge(Costs.AluCycles);
      break;

    case MOpcode::MAddF:
      R[I.A] = Value::fromF64(R[I.B].asF64() + R[I.C].asF64());
      charge(Costs.FAddCycles);
      break;
    case MOpcode::MSubF:
      R[I.A] = Value::fromF64(R[I.B].asF64() - R[I.C].asF64());
      charge(Costs.FAddCycles);
      break;
    case MOpcode::MMulF:
      R[I.A] = Value::fromF64(R[I.B].asF64() * R[I.C].asF64());
      charge(Costs.FMulCycles);
      break;
    case MOpcode::MDivF:
      R[I.A] = Value::fromF64(R[I.B].asF64() / R[I.C].asF64());
      charge(Costs.FDivCycles);
      break;
    case MOpcode::MNegF:
      R[I.A] = Value::fromF64(-R[I.B].asF64());
      charge(Costs.FAddCycles);
      break;
    case MOpcode::MCmpF: {
      double A = R[I.B].asF64(), B = R[I.C].asF64();
      R[I.A] = Value::fromI64((A < B) ? -1 : (A == B ? 0 : 1));
      charge(Costs.FAddCycles);
      break;
    }
    case MOpcode::MSqrtF:
      R[I.A] = Value::fromF64(std::sqrt(R[I.B].asF64()));
      charge(Costs.FSqrtCycles);
      break;
    case MOpcode::MI2F:
      R[I.A] = Value::fromF64(static_cast<double>(R[I.B].asI64()));
      charge(Costs.ConvCycles);
      break;
    case MOpcode::MF2I:
      R[I.A] = Value::fromI64(doubleToInt(R[I.B].asF64()));
      charge(Costs.ConvCycles);
      break;

    case MOpcode::MGoto:
      NextPc = static_cast<size_t>(I.Target);
      charge(Costs.BranchCycles);
      break;
    case MOpcode::MIfEq:
    case MOpcode::MIfNe:
    case MOpcode::MIfLt:
    case MOpcode::MIfLe:
    case MOpcode::MIfGt:
    case MOpcode::MIfGe:
    case MOpcode::MIfEqz:
    case MOpcode::MIfNez:
    case MOpcode::MIfLtz:
    case MOpcode::MIfLez:
    case MOpcode::MIfGtz:
    case MOpcode::MIfGez: {
      int64_t A = R[I.B].asI64();
      int64_t B = I.C == MNoReg ? 0 : R[I.C].asI64();
      bool Taken = false;
      switch (I.Op) {
      case MOpcode::MIfEq: case MOpcode::MIfEqz: Taken = A == B; break;
      case MOpcode::MIfNe: case MOpcode::MIfNez: Taken = A != B; break;
      case MOpcode::MIfLt: case MOpcode::MIfLtz: Taken = A < B; break;
      case MOpcode::MIfLe: case MOpcode::MIfLez: Taken = A <= B; break;
      case MOpcode::MIfGt: case MOpcode::MIfGtz: Taken = A > B; break;
      default: Taken = A >= B; break;
      }
      TakeBranch(I, Pc, Taken);
      if (Taken)
        NextPc = static_cast<size_t>(I.Target);
      break;
    }

    case MOpcode::MCheckNull:
      charge(Costs.CheckCycles);
      if (R[I.B].isNullRef())
        Trap = TrapKind::NullPointer;
      break;
    case MOpcode::MCheckBounds: {
      charge(Costs.CheckCycles);
      uint64_t Arr = R[I.B].asRef();
      ObjectHeader Header;
      chargeMemRead(Arr);
      if (!TheHeap.readHeader(Arr, Header)) {
        Trap = TrapKind::MemoryFault;
        break;
      }
      int64_t Index = R[I.C].asI64();
      if (Index < 0 || static_cast<uint64_t>(Index) >= Header.Count)
        Trap = TrapKind::OutOfBounds;
      break;
    }
    case MOpcode::MCheckDiv:
      charge(Costs.CheckCycles);
      if (R[I.B].asI64() == 0)
        Trap = TrapKind::DivByZero;
      break;
    case MOpcode::MSafepoint:
      safepoint();
      break;
    case MOpcode::MGuardClass: {
      charge(Costs.CheckCycles);
      uint64_t Obj = R[I.B].asRef();
      ObjectHeader Header;
      chargeMemRead(Obj);
      if (Obj == 0 || !TheHeap.readHeader(Obj, Header)) {
        Trap = TrapKind::MemoryFault;
        break;
      }
      if (Header.ClassOrElem != I.Idx) {
        // Speculation failed: branch to the slow path.
        charge(Costs.BranchMispredictPenalty);
        NextPc = static_cast<size_t>(I.Target);
      }
      break;
    }

    case MOpcode::MLoadSlot: {
      uint64_t Bits = 0;
      if (memLoad(Heap::slotAddr(R[I.B].asRef(), I.Idx), Bits))
        R[I.A].Raw = Bits;
      break;
    }
    case MOpcode::MStoreSlot:
      memStore(Heap::slotAddr(R[I.B].asRef(), I.Idx), R[I.A].Raw);
      break;
    case MOpcode::MLoadStatic: {
      uint64_t Bits = 0;
      if (memLoad(staticSlotAddr(I.Idx), Bits))
        R[I.A].Raw = Bits;
      break;
    }
    case MOpcode::MStoreStatic:
      memStore(staticSlotAddr(I.Idx), R[I.A].Raw);
      break;
    case MOpcode::MALoad: {
      // Unchecked by design: a wrong index after an unsound bounds-check
      // elimination reads whatever lives there.
      uint64_t Addr = Heap::elemAddr(
          R[I.B].asRef(), static_cast<uint64_t>(R[I.C].asI64()));
      uint64_t Bits = 0;
      if (memLoad(Addr, Bits))
        R[I.A].Raw = Bits;
      break;
    }
    case MOpcode::MAStore: {
      uint64_t Addr = Heap::elemAddr(
          R[I.B].asRef(), static_cast<uint64_t>(R[I.C].asI64()));
      memStore(Addr, R[I.A].Raw);
      break;
    }
    case MOpcode::MArrayLen: {
      uint64_t Arr = R[I.B].asRef();
      ObjectHeader Header;
      chargeMemRead(Arr);
      if (!TheHeap.readHeader(Arr, Header)) {
        Trap = TrapKind::MemoryFault;
        break;
      }
      R[I.A] = Value::fromI64(static_cast<int64_t>(Header.Count));
      break;
    }

    case MOpcode::MNewInstance: {
      const dex::ClassInfo &Cls = Dex.classAt(I.Idx);
      charge(Costs.AllocBaseCycles +
             Costs.AllocPerSlotCycles * Cls.InstanceSlots);
      noteAlloc(Cls.InstanceSlots);
      R[I.A] = Value::fromRef(TheHeap.allocate(
          ObjKind::Object, Cls.Id, Cls.InstanceSlots, Trap));
      break;
    }
    case MOpcode::MNewArray: {
      int64_t Len = R[I.B].asI64();
      if (Len < 0) {
        Trap = TrapKind::OutOfBounds;
        break;
      }
      charge(Costs.AllocBaseCycles +
             Costs.AllocPerSlotCycles * static_cast<uint64_t>(Len));
      noteAlloc(static_cast<uint64_t>(Len));
      R[I.A] = Value::fromRef(
          TheHeap.allocate(static_cast<ObjKind>(I.Idx), 0,
                           static_cast<uint64_t>(Len), Trap));
      break;
    }

    case MOpcode::MCallStatic:
    case MOpcode::MCallVirtual:
    case MOpcode::MCallNative: {
      CallArgs.resize(I.ArgCount);
      for (unsigned N = 0; N != I.ArgCount; ++N)
        CallArgs[N] = R[I.Args[N]];
      Value Ret;
      if (I.Op == MOpcode::MCallNative) {
        Ret = callNative(I.Idx, CallArgs);
      } else if (I.Op == MOpcode::MCallStatic) {
        Ret = invoke(I.Idx, CallArgs);
      } else {
        charge(Costs.VirtualDispatchCycles);
        uint64_t Receiver = CallArgs[0].asRef();
        ObjectHeader Header;
        chargeMemRead(Receiver);
        if (Receiver == 0 || !TheHeap.readHeader(Receiver, Header)) {
          Trap = TrapKind::MemoryFault;
          break;
        }
        dex::ClassId Cls = Header.ClassOrElem;
        // A corrupted header (e.g. after an out-of-bounds store) yields a
        // garbage class id: crash like a wild indirect jump would.
        if (Cls >= Dex.classes().size()) {
          Trap = TrapKind::MemoryFault;
          break;
        }
        const dex::Method &Declared = Dex.method(I.Idx);
        const dex::ClassInfo &ClsInfo = Dex.classAt(Cls);
        if (Declared.VTableSlot < 0 ||
            static_cast<size_t>(Declared.VTableSlot) >=
                ClsInfo.VTable.size()) {
          Trap = TrapKind::MemoryFault;
          break;
        }
        Ret = invoke(
            ClsInfo.VTable[static_cast<size_t>(Declared.VTableSlot)],
            CallArgs);
      }
      if (Trap != TrapKind::None)
        break;
      if (I.A != MNoReg)
        R[I.A] = Ret;
      break;
    }

    case MOpcode::MIntrinsic: {
      Value ArgVals[MMaxArgs];
      for (unsigned N = 0; N != I.ArgCount; ++N)
        ArgVals[N] = R[I.Args[N]];
      charge(intrinsicWorkCycles(static_cast<IntrinsicKind>(I.Idx)));
      R[I.A] = Value::fromF64(
          runIntrinsic(static_cast<IntrinsicKind>(I.Idx), ArgVals));
      break;
    }

    case MOpcode::MRet:
      charge(Costs.ReturnCycles);
      return R[I.B];
    case MOpcode::MRetVoid:
      charge(Costs.ReturnCycles);
      return Value();

    case MOpcode::MOpcodeCount:
      Trap = TrapKind::MemoryFault;
      break;
    }

    Pc = NextPc;
  }
  return Value();
}
