//===- vm/Heap.h - Garbage-collected heap over simulated memory -*- C++ -*-===//
//
// Part of ReplayOpt (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bump-pointer heap living *inside* an os::AddressSpace, so page-level
/// capture sees every allocation and access. All allocator state (bump
/// offset, GC accounting) is kept in a control block at the heap base —
/// inside captured memory — which is what makes replays allocation-exact.
///
/// The GC is a cost-and-paging model, not a reclaimer: workloads are sized
/// to fit the heap, but safepoint polls still trigger "collections" that
/// charge a pause and touch every live heap page. That is precisely why the
/// capture mechanism postpones snapshots when a GC is imminent (Section
/// 3.2) and why redundant safepoint checks in unrolled loops cost real time
/// (Section 3.5's custom pass).
///
//===----------------------------------------------------------------------===//

#ifndef ROPT_VM_HEAP_H
#define ROPT_VM_HEAP_H

#include "os/AddressSpace.h"
#include "vm/Trap.h"

#include <cstdint>

namespace ropt {
namespace vm {

/// Standard process layout. Every app process and every replay loader uses
/// these bases, so captured addresses stay meaningful.
struct Layout {
  static constexpr uint64_t CodeBase = 0x40000000;
  static constexpr uint64_t CodeSize = 4 * 1024 * 1024;
  static constexpr uint64_t DataBase = 0x50000000; ///< Static fields.
  static constexpr uint64_t DataSize = 256 * 1024;
  static constexpr uint64_t HeapBase = 0x60000000;
  static constexpr uint64_t RuntimeImageBase = 0x70000000;
  static constexpr uint64_t RuntimeImageSize = 12 * 1024 * 1024;
  static constexpr uint64_t StackBase = 0x7f000000;
  static constexpr uint64_t StackSize = 1024 * 1024;
};

/// What a heap cell is. Stored in object headers.
enum class ObjKind : uint8_t {
  Object = 1,
  ArrayI = 2,
  ArrayF = 3,
  ArrayR = 4,
};

/// 16-byte header preceding every allocation.
struct ObjectHeader {
  uint32_t ClassOrElem = 0; ///< ClassId for objects; unused for arrays.
  uint8_t Kind = 0;         ///< ObjKind.
  uint8_t Pad[3] = {};
  uint64_t Count = 0;       ///< Field slots or array elements.
};

static_assert(sizeof(ObjectHeader) == 16, "header layout is part of the ABI");

/// A view over the heap region of an address space. Multiple views over the
/// same space observe the same allocator state (it lives in memory).
class Heap {
public:
  static constexpr uint64_t ControlBlockSize = 64;
  /// Control block field offsets (from heap base).
  static constexpr uint64_t BumpOffsetSlot = 0;
  static constexpr uint64_t BytesSinceGcSlot = 8;
  static constexpr uint64_t GcRunsSlot = 16;

  /// Views the heap inside \p Space. \p LimitBytes and \p GcThresholdBytes
  /// are configuration, not state, and must match across views.
  Heap(os::AddressSpace &Space, uint64_t LimitBytes,
       uint64_t GcThresholdBytes)
      : Space(Space), LimitBytes(LimitBytes),
        GcThresholdBytes(GcThresholdBytes) {}

  /// Writes a fresh control block. Call once after mapping the region.
  void initialize();

  /// Allocates a cell; returns its address or 0 with \p Trap set.
  /// For objects, \p Count is the slot count; for arrays, the length.
  uint64_t allocate(ObjKind Kind, uint32_t ClassOrElem, uint64_t Count,
                    TrapKind &Trap);

  /// Reads the header at \p Ref. Returns false on access failure.
  bool readHeader(uint64_t Ref, ObjectHeader &Out);

  /// Address of field slot \p Slot of the object at \p Ref.
  static uint64_t slotAddr(uint64_t Ref, uint64_t Slot) {
    return Ref + sizeof(ObjectHeader) + 8 * Slot;
  }

  /// Address of element \p Index of the array at \p Ref.
  static uint64_t elemAddr(uint64_t Ref, uint64_t Index) {
    return Ref + sizeof(ObjectHeader) + 8 * Index;
  }

  /// Bytes currently allocated (bump offset minus control block).
  uint64_t bytesAllocated();

  /// True when the next safepoint is likely to trigger a collection; the
  /// capture scheduler postpones snapshots in this state.
  bool gcImminent();

  /// Safepoint poll: runs the GC model if due. Returns the cycles the poll
  /// consumed beyond the poll itself (0 when no collection ran). A
  /// collection touches every allocated heap page (reads), which is what
  /// would inflate a concurrent capture.
  uint64_t pollSafepoint(uint64_t GcPauseCycles);

  /// Number of collections this heap has run (from the control block).
  uint64_t gcRuns();

  uint64_t limitBytes() const { return LimitBytes; }

private:
  uint64_t readControl(uint64_t Slot);
  void writeControl(uint64_t Slot, uint64_t Value);

  os::AddressSpace &Space;
  uint64_t LimitBytes;
  uint64_t GcThresholdBytes;
};

} // namespace vm
} // namespace ropt

#endif // ROPT_VM_HEAP_H
