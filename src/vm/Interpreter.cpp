//===- vm/Interpreter.cpp - Bytecode interpreter tier -----------------------===//
//
// The slow, always-correct tier: used online for cold methods and offline
// for the interpreted verification/profiling replay (Section 3.4).
//
//===----------------------------------------------------------------------===//

#include "vm/Runtime.h"

#include <cassert>
#include <cmath>
#include <limits>

using namespace ropt;
using namespace ropt::vm;

namespace {

int64_t safeDiv(int64_t A, int64_t B) {
  if (B == -1 && A == std::numeric_limits<int64_t>::min())
    return A; // wraps, as AArch64 sdiv does
  return A / B;
}

int64_t safeRem(int64_t A, int64_t B) {
  if (B == -1 && A == std::numeric_limits<int64_t>::min())
    return 0;
  return A % B;
}

int64_t doubleToInt(double D) {
  if (std::isnan(D))
    return 0;
  if (D >= 9.2233720368547758e18)
    return std::numeric_limits<int64_t>::max();
  if (D <= -9.2233720368547758e18)
    return std::numeric_limits<int64_t>::min();
  return static_cast<int64_t>(D);
}

} // namespace

Value Runtime::interpret(const dex::Method &M,
                         const std::vector<Value> &Args) {
  assert(!M.IsNative && "cannot interpret a native method");

  std::vector<Value> Regs(M.RegCount);
  for (size_t I = 0; I != Args.size(); ++I)
    Regs[I] = Args[I];

  charge(Costs.CallCycles);
  safepoint(); // method-entry poll

  size_t Pc = 0;
  const std::vector<dex::Insn> &Code = M.Code;

  while (Trap == TrapKind::None) {
    assert(Pc < Code.size() && "fell off the end of verified bytecode");
    const dex::Insn &I = Code[Pc];
    if (!consumeInsn())
      break;
    charge(Costs.InterpreterDispatchCycles);

    // Default control flow: fall through. Branches overwrite NextPc.
    size_t NextPc = Pc + 1;

    using dex::Opcode;
    switch (I.Op) {
    case Opcode::Nop:
      break;
    case Opcode::ConstI:
      Regs[I.A] = Value::fromI64(I.ImmI);
      charge(Costs.MoveCycles);
      break;
    case Opcode::ConstF:
      Regs[I.A] = Value::fromF64(I.ImmF);
      charge(Costs.MoveCycles);
      break;
    case Opcode::ConstNull:
      Regs[I.A] = Value::fromRef(0);
      charge(Costs.MoveCycles);
      break;
    case Opcode::Move:
      Regs[I.A] = Regs[I.B];
      charge(Costs.MoveCycles);
      break;

    case Opcode::AddI:
      Regs[I.A] = Value::fromI64(Regs[I.B].asI64() + Regs[I.C].asI64());
      charge(Costs.AluCycles);
      break;
    case Opcode::SubI:
      Regs[I.A] = Value::fromI64(Regs[I.B].asI64() - Regs[I.C].asI64());
      charge(Costs.AluCycles);
      break;
    case Opcode::MulI:
      Regs[I.A] = Value::fromI64(Regs[I.B].asI64() * Regs[I.C].asI64());
      charge(Costs.MulCycles);
      break;
    case Opcode::DivI:
    case Opcode::RemI: {
      int64_t Divisor = Regs[I.C].asI64();
      charge(Costs.CheckCycles);
      if (Divisor == 0) {
        Trap = TrapKind::DivByZero;
        break;
      }
      int64_t Dividend = Regs[I.B].asI64();
      Regs[I.A] = Value::fromI64(I.Op == Opcode::DivI
                                     ? safeDiv(Dividend, Divisor)
                                     : safeRem(Dividend, Divisor));
      charge(Costs.DivCycles);
      break;
    }
    case Opcode::AndI:
      Regs[I.A] = Value::fromI64(Regs[I.B].asI64() & Regs[I.C].asI64());
      charge(Costs.AluCycles);
      break;
    case Opcode::OrI:
      Regs[I.A] = Value::fromI64(Regs[I.B].asI64() | Regs[I.C].asI64());
      charge(Costs.AluCycles);
      break;
    case Opcode::XorI:
      Regs[I.A] = Value::fromI64(Regs[I.B].asI64() ^ Regs[I.C].asI64());
      charge(Costs.AluCycles);
      break;
    case Opcode::ShlI:
      Regs[I.A] = Value::fromI64(Regs[I.B].asI64()
                                 << (Regs[I.C].asI64() & 63));
      charge(Costs.AluCycles);
      break;
    case Opcode::ShrI:
      Regs[I.A] =
          Value::fromI64(Regs[I.B].asI64() >> (Regs[I.C].asI64() & 63));
      charge(Costs.AluCycles);
      break;
    case Opcode::NegI:
      Regs[I.A] = Value::fromI64(-Regs[I.B].asI64());
      charge(Costs.AluCycles);
      break;

    case Opcode::AddF:
      Regs[I.A] = Value::fromF64(Regs[I.B].asF64() + Regs[I.C].asF64());
      charge(Costs.FAddCycles);
      break;
    case Opcode::SubF:
      Regs[I.A] = Value::fromF64(Regs[I.B].asF64() - Regs[I.C].asF64());
      charge(Costs.FAddCycles);
      break;
    case Opcode::MulF:
      Regs[I.A] = Value::fromF64(Regs[I.B].asF64() * Regs[I.C].asF64());
      charge(Costs.FMulCycles);
      break;
    case Opcode::DivF:
      Regs[I.A] = Value::fromF64(Regs[I.B].asF64() / Regs[I.C].asF64());
      charge(Costs.FDivCycles);
      break;
    case Opcode::NegF:
      Regs[I.A] = Value::fromF64(-Regs[I.B].asF64());
      charge(Costs.FAddCycles);
      break;
    case Opcode::CmpF: {
      double A = Regs[I.B].asF64(), B = Regs[I.C].asF64();
      int64_t R = (A < B) ? -1 : (A == B ? 0 : 1); // NaN orders as +1
      Regs[I.A] = Value::fromI64(R);
      charge(Costs.FAddCycles);
      break;
    }
    case Opcode::SqrtF:
      Regs[I.A] = Value::fromF64(std::sqrt(Regs[I.B].asF64()));
      charge(Costs.FSqrtCycles);
      break;
    case Opcode::I2F:
      Regs[I.A] =
          Value::fromF64(static_cast<double>(Regs[I.B].asI64()));
      charge(Costs.ConvCycles);
      break;
    case Opcode::F2I:
      Regs[I.A] = Value::fromI64(doubleToInt(Regs[I.B].asF64()));
      charge(Costs.ConvCycles);
      break;

    case Opcode::Goto:
      NextPc = static_cast<size_t>(I.Target);
      charge(Costs.BranchCycles);
      // Loop back-edge: poll for GC, as ART's interpreter does.
      if (NextPc <= Pc)
        safepoint();
      break;
    case Opcode::IfEq:
    case Opcode::IfNe:
    case Opcode::IfLt:
    case Opcode::IfLe:
    case Opcode::IfGt:
    case Opcode::IfGe:
    case Opcode::IfEqz:
    case Opcode::IfNez:
    case Opcode::IfLtz:
    case Opcode::IfLez:
    case Opcode::IfGtz:
    case Opcode::IfGez: {
      int64_t A = Regs[I.B].asI64();
      int64_t B = I.C == dex::NoReg ? 0 : Regs[I.C].asI64();
      bool Taken = false;
      switch (I.Op) {
      case Opcode::IfEq: case Opcode::IfEqz: Taken = A == B; break;
      case Opcode::IfNe: case Opcode::IfNez: Taken = A != B; break;
      case Opcode::IfLt: case Opcode::IfLtz: Taken = A < B; break;
      case Opcode::IfLe: case Opcode::IfLez: Taken = A <= B; break;
      case Opcode::IfGt: case Opcode::IfGtz: Taken = A > B; break;
      default: Taken = A >= B; break;
      }
      charge(Costs.BranchCycles);
      // Same site key the executor feeds its predictor, so the profiled
      // mispredict features line up with the cost model's behavior.
      noteBranch((static_cast<uint64_t>(M.Id) << 20) ^ Pc, Taken);
      if (Taken) {
        NextPc = static_cast<size_t>(I.Target);
        // Loop back-edge: poll for GC, as ART's interpreter does.
        if (NextPc <= Pc)
          safepoint();
      }
      break;
    }

    case Opcode::InvokeStatic:
    case Opcode::InvokeVirtual:
    case Opcode::InvokeNative: {
      std::vector<Value> CallArgs(I.Args, I.Args + I.ArgCount);
      for (unsigned N = 0; N != I.ArgCount; ++N)
        CallArgs[N] = Regs[I.Args[N]];
      Value Ret;
      if (I.Op == Opcode::InvokeNative) {
        Ret = callNative(I.Idx, CallArgs);
      } else if (I.Op == Opcode::InvokeStatic) {
        charge(Costs.CallCycles);
        Ret = invoke(I.Idx, CallArgs);
      } else {
        // Virtual dispatch: read the receiver header for its class.
        uint64_t Receiver = CallArgs[0].asRef();
        charge(Costs.VirtualDispatchCycles);
        if (Receiver == 0) {
          Trap = TrapKind::NullPointer;
          break;
        }
        ObjectHeader Header;
        if (!TheHeap.readHeader(Receiver, Header)) {
          Trap = TrapKind::MemoryFault;
          break;
        }
        dex::ClassId Cls = Header.ClassOrElem;
        if (Observer)
          Observer->onVirtualDispatch(M.Id, static_cast<uint32_t>(Pc),
                                      Cls);
        Ret = invoke(Dex.resolveVirtual(Cls, I.Idx), CallArgs);
      }
      if (Trap != TrapKind::None)
        break;
      if (I.A != dex::NoReg)
        Regs[I.A] = Ret;
      break;
    }

    case Opcode::Ret:
      charge(Costs.ReturnCycles);
      return Regs[I.B];
    case Opcode::RetVoid:
      charge(Costs.ReturnCycles);
      return Value();

    case Opcode::NewInstance: {
      const dex::ClassInfo &Cls = Dex.classAt(I.Idx);
      charge(Costs.AllocBaseCycles +
             Costs.AllocPerSlotCycles * Cls.InstanceSlots);
      noteAlloc(Cls.InstanceSlots);
      Regs[I.A] = Value::fromRef(TheHeap.allocate(
          ObjKind::Object, Cls.Id, Cls.InstanceSlots, Trap));
      break;
    }
    case Opcode::NewArrayI:
    case Opcode::NewArrayF:
    case Opcode::NewArrayR: {
      int64_t Len = Regs[I.B].asI64();
      if (Len < 0) {
        Trap = TrapKind::OutOfBounds;
        break;
      }
      ObjKind Kind = I.Op == Opcode::NewArrayI   ? ObjKind::ArrayI
                     : I.Op == Opcode::NewArrayF ? ObjKind::ArrayF
                                                 : ObjKind::ArrayR;
      charge(Costs.AllocBaseCycles +
             Costs.AllocPerSlotCycles * static_cast<uint64_t>(Len));
      noteAlloc(static_cast<uint64_t>(Len));
      Regs[I.A] = Value::fromRef(
          TheHeap.allocate(Kind, 0, static_cast<uint64_t>(Len), Trap));
      break;
    }

    case Opcode::ALoadI:
    case Opcode::ALoadF:
    case Opcode::ALoadR:
    case Opcode::AStoreI:
    case Opcode::AStoreF:
    case Opcode::AStoreR: {
      bool IsStore = I.Op == Opcode::AStoreI || I.Op == Opcode::AStoreF ||
                     I.Op == Opcode::AStoreR;
      uint64_t Arr = Regs[I.B].asRef();
      charge(Costs.CheckCycles * 2);
      if (Arr == 0) {
        Trap = TrapKind::NullPointer;
        break;
      }
      ObjectHeader Header;
      if (!TheHeap.readHeader(Arr, Header)) {
        Trap = TrapKind::MemoryFault;
        break;
      }
      int64_t Index = Regs[I.C].asI64();
      if (Index < 0 ||
          static_cast<uint64_t>(Index) >= Header.Count) {
        Trap = TrapKind::OutOfBounds;
        break;
      }
      uint64_t Addr = Heap::elemAddr(Arr, static_cast<uint64_t>(Index));
      if (IsStore) {
        memStore(Addr, Regs[I.A].Raw);
      } else {
        uint64_t Bits = 0;
        if (memLoad(Addr, Bits))
          Regs[I.A].Raw = Bits;
      }
      break;
    }
    case Opcode::ArrayLen: {
      uint64_t Arr = Regs[I.B].asRef();
      charge(Costs.CheckCycles);
      if (Arr == 0) {
        Trap = TrapKind::NullPointer;
        break;
      }
      ObjectHeader Header;
      if (!TheHeap.readHeader(Arr, Header)) {
        Trap = TrapKind::MemoryFault;
        break;
      }
      charge(Costs.LoadCycles);
      Regs[I.A] = Value::fromI64(static_cast<int64_t>(Header.Count));
      break;
    }

    case Opcode::GetFieldI:
    case Opcode::GetFieldF:
    case Opcode::GetFieldR:
    case Opcode::PutFieldI:
    case Opcode::PutFieldF:
    case Opcode::PutFieldR: {
      bool IsPut = I.Op == Opcode::PutFieldI ||
                   I.Op == Opcode::PutFieldF || I.Op == Opcode::PutFieldR;
      uint64_t Obj = Regs[I.B].asRef();
      charge(Costs.CheckCycles);
      if (Obj == 0) {
        Trap = TrapKind::NullPointer;
        break;
      }
      uint64_t Addr =
          Heap::slotAddr(Obj, Dex.field(I.Idx).SlotIndex);
      if (IsPut) {
        memStore(Addr, Regs[I.A].Raw);
      } else {
        uint64_t Bits = 0;
        if (memLoad(Addr, Bits))
          Regs[I.A].Raw = Bits;
      }
      break;
    }

    case Opcode::GetStaticI:
    case Opcode::GetStaticF:
    case Opcode::GetStaticR: {
      uint64_t Bits = 0;
      if (memLoad(staticSlotAddr(I.Idx), Bits))
        Regs[I.A].Raw = Bits;
      break;
    }
    case Opcode::PutStaticI:
    case Opcode::PutStaticF:
    case Opcode::PutStaticR:
      memStore(staticSlotAddr(I.Idx), Regs[I.A].Raw);
      break;

    case Opcode::OpcodeCount:
      assert(false && "invalid opcode reached the interpreter");
      break;
    }

    Pc = NextPc;
  }
  return Value();
}
