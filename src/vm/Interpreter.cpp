//===- vm/Interpreter.cpp - Bytecode interpreter tier -----------------------===//
//
// The slow, always-correct tier: used online for cold methods and offline
// for the interpreted verification/profiling replay (Section 3.4).
//
// The dispatch loop is the single hottest path of the whole system — every
// offline replay of every genome runs through it at least for the cold
// methods — so it is shaped for the compiler: the cycle cost model is
// copied into a local (its fields cannot alias the memory the VM writes,
// but the compiler cannot prove that through Space stores), the register
// file is accessed through a raw pointer, and the trap exits are annotated
// cold so the fall-through path stays straight-line. None of this changes
// a single charged cycle or the order of observer callbacks: replay
// digests are byte-identical to the naive loop.
//
//===----------------------------------------------------------------------===//

#include "vm/Runtime.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#if defined(__GNUC__) || defined(__clang__)
#define ROPT_UNLIKELY(x) __builtin_expect(!!(x), 0)
#else
#define ROPT_UNLIKELY(x) (x)
#endif

using namespace ropt;
using namespace ropt::vm;

namespace {

int64_t safeDiv(int64_t A, int64_t B) {
  if (B == -1 && A == std::numeric_limits<int64_t>::min())
    return A; // wraps, as AArch64 sdiv does
  return A / B;
}

int64_t safeRem(int64_t A, int64_t B) {
  if (B == -1 && A == std::numeric_limits<int64_t>::min())
    return 0;
  return A % B;
}

int64_t doubleToInt(double D) {
  if (std::isnan(D))
    return 0;
  if (D >= 9.2233720368547758e18)
    return std::numeric_limits<int64_t>::max();
  if (D <= -9.2233720368547758e18)
    return std::numeric_limits<int64_t>::min();
  return static_cast<int64_t>(D);
}

} // namespace

Value Runtime::interpret(const dex::Method &M,
                         const std::vector<Value> &Args) {
  assert(!M.IsNative && "cannot interpret a native method");

  // Frames overwhelmingly fit the inline buffer, so a call costs no
  // allocation; only pathological register counts spill to the heap.
  Value StackRegs[48];
  std::vector<Value> HeapRegs;
  Value *R;
  if (M.RegCount <= 48) {
    std::fill_n(StackRegs, M.RegCount, Value());
    R = StackRegs;
  } else {
    HeapRegs.resize(M.RegCount);
    R = HeapRegs.data(); // never resized below
  }
  for (size_t I = 0; I != Args.size(); ++I)
    R[I] = Args[I];

  // Scratch argument buffer: one allocation per frame, not per call insn.
  std::vector<Value> CallArgs;

  // Local copy: lets the per-instruction charges stay in registers.
  const CycleCostModel CM = Costs;

  charge(CM.CallCycles);
  safepoint(); // method-entry poll

  size_t Pc = 0;
  const dex::Insn *Code = M.Code.data();
  const size_t CodeSize = M.Code.size();
  (void)CodeSize;

  while (Trap == TrapKind::None) {
    assert(Pc < CodeSize && "fell off the end of verified bytecode");
    const dex::Insn &I = Code[Pc];
    if (ROPT_UNLIKELY(!consumeInsn()))
      break;
    charge(CM.InterpreterDispatchCycles);

    // Default control flow: fall through. Branches overwrite NextPc.
    size_t NextPc = Pc + 1;

    using dex::Opcode;
    switch (I.Op) {
    case Opcode::Nop:
      break;
    case Opcode::ConstI:
      R[I.A] = Value::fromI64(I.ImmI);
      charge(CM.MoveCycles);
      break;
    case Opcode::ConstF:
      R[I.A] = Value::fromF64(I.ImmF);
      charge(CM.MoveCycles);
      break;
    case Opcode::ConstNull:
      R[I.A] = Value::fromRef(0);
      charge(CM.MoveCycles);
      break;
    case Opcode::Move:
      R[I.A] = R[I.B];
      charge(CM.MoveCycles);
      break;

    case Opcode::AddI:
      R[I.A] = Value::fromI64(R[I.B].asI64() + R[I.C].asI64());
      charge(CM.AluCycles);
      break;
    case Opcode::SubI:
      R[I.A] = Value::fromI64(R[I.B].asI64() - R[I.C].asI64());
      charge(CM.AluCycles);
      break;
    case Opcode::MulI:
      R[I.A] = Value::fromI64(R[I.B].asI64() * R[I.C].asI64());
      charge(CM.MulCycles);
      break;
    case Opcode::DivI:
    case Opcode::RemI: {
      int64_t Divisor = R[I.C].asI64();
      charge(CM.CheckCycles);
      if (ROPT_UNLIKELY(Divisor == 0)) {
        Trap = TrapKind::DivByZero;
        break;
      }
      int64_t Dividend = R[I.B].asI64();
      R[I.A] = Value::fromI64(I.Op == Opcode::DivI
                                  ? safeDiv(Dividend, Divisor)
                                  : safeRem(Dividend, Divisor));
      charge(CM.DivCycles);
      break;
    }
    case Opcode::AndI:
      R[I.A] = Value::fromI64(R[I.B].asI64() & R[I.C].asI64());
      charge(CM.AluCycles);
      break;
    case Opcode::OrI:
      R[I.A] = Value::fromI64(R[I.B].asI64() | R[I.C].asI64());
      charge(CM.AluCycles);
      break;
    case Opcode::XorI:
      R[I.A] = Value::fromI64(R[I.B].asI64() ^ R[I.C].asI64());
      charge(CM.AluCycles);
      break;
    case Opcode::ShlI:
      R[I.A] = Value::fromI64(R[I.B].asI64() << (R[I.C].asI64() & 63));
      charge(CM.AluCycles);
      break;
    case Opcode::ShrI:
      R[I.A] = Value::fromI64(R[I.B].asI64() >> (R[I.C].asI64() & 63));
      charge(CM.AluCycles);
      break;
    case Opcode::NegI:
      R[I.A] = Value::fromI64(-R[I.B].asI64());
      charge(CM.AluCycles);
      break;

    case Opcode::AddF:
      R[I.A] = Value::fromF64(R[I.B].asF64() + R[I.C].asF64());
      charge(CM.FAddCycles);
      break;
    case Opcode::SubF:
      R[I.A] = Value::fromF64(R[I.B].asF64() - R[I.C].asF64());
      charge(CM.FAddCycles);
      break;
    case Opcode::MulF:
      R[I.A] = Value::fromF64(R[I.B].asF64() * R[I.C].asF64());
      charge(CM.FMulCycles);
      break;
    case Opcode::DivF:
      R[I.A] = Value::fromF64(R[I.B].asF64() / R[I.C].asF64());
      charge(CM.FDivCycles);
      break;
    case Opcode::NegF:
      R[I.A] = Value::fromF64(-R[I.B].asF64());
      charge(CM.FAddCycles);
      break;
    case Opcode::CmpF: {
      double A = R[I.B].asF64(), B = R[I.C].asF64();
      int64_t Res = (A < B) ? -1 : (A == B ? 0 : 1); // NaN orders as +1
      R[I.A] = Value::fromI64(Res);
      charge(CM.FAddCycles);
      break;
    }
    case Opcode::SqrtF:
      R[I.A] = Value::fromF64(std::sqrt(R[I.B].asF64()));
      charge(CM.FSqrtCycles);
      break;
    case Opcode::I2F:
      R[I.A] = Value::fromF64(static_cast<double>(R[I.B].asI64()));
      charge(CM.ConvCycles);
      break;
    case Opcode::F2I:
      R[I.A] = Value::fromI64(doubleToInt(R[I.B].asF64()));
      charge(CM.ConvCycles);
      break;

    case Opcode::Goto:
      NextPc = static_cast<size_t>(I.Target);
      charge(CM.BranchCycles);
      // Loop back-edge: poll for GC, as ART's interpreter does.
      if (NextPc <= Pc)
        safepoint();
      break;
    case Opcode::IfEq:
    case Opcode::IfNe:
    case Opcode::IfLt:
    case Opcode::IfLe:
    case Opcode::IfGt:
    case Opcode::IfGe:
    case Opcode::IfEqz:
    case Opcode::IfNez:
    case Opcode::IfLtz:
    case Opcode::IfLez:
    case Opcode::IfGtz:
    case Opcode::IfGez: {
      int64_t A = R[I.B].asI64();
      int64_t B = I.C == dex::NoReg ? 0 : R[I.C].asI64();
      bool Taken = false;
      switch (I.Op) {
      case Opcode::IfEq: case Opcode::IfEqz: Taken = A == B; break;
      case Opcode::IfNe: case Opcode::IfNez: Taken = A != B; break;
      case Opcode::IfLt: case Opcode::IfLtz: Taken = A < B; break;
      case Opcode::IfLe: case Opcode::IfLez: Taken = A <= B; break;
      case Opcode::IfGt: case Opcode::IfGtz: Taken = A > B; break;
      default: Taken = A >= B; break;
      }
      charge(CM.BranchCycles);
      // Same site key the executor feeds its predictor, so the profiled
      // mispredict features line up with the cost model's behavior.
      noteBranch((static_cast<uint64_t>(M.Id) << 20) ^ Pc, Taken);
      if (Taken) {
        NextPc = static_cast<size_t>(I.Target);
        // Loop back-edge: poll for GC, as ART's interpreter does.
        if (NextPc <= Pc)
          safepoint();
      }
      break;
    }

    case Opcode::InvokeStatic:
    case Opcode::InvokeVirtual:
    case Opcode::InvokeNative: {
      CallArgs.resize(I.ArgCount);
      for (unsigned N = 0; N != I.ArgCount; ++N)
        CallArgs[N] = R[I.Args[N]];
      Value Ret;
      if (I.Op == Opcode::InvokeNative) {
        Ret = callNative(I.Idx, CallArgs);
      } else if (I.Op == Opcode::InvokeStatic) {
        charge(CM.CallCycles);
        Ret = invoke(I.Idx, CallArgs);
      } else {
        // Virtual dispatch: read the receiver header for its class.
        uint64_t Receiver = CallArgs[0].asRef();
        charge(CM.VirtualDispatchCycles);
        if (ROPT_UNLIKELY(Receiver == 0)) {
          Trap = TrapKind::NullPointer;
          break;
        }
        ObjectHeader Header;
        if (ROPT_UNLIKELY(!TheHeap.readHeader(Receiver, Header))) {
          Trap = TrapKind::MemoryFault;
          break;
        }
        dex::ClassId Cls = Header.ClassOrElem;
        if (Observer)
          Observer->onVirtualDispatch(M.Id, static_cast<uint32_t>(Pc),
                                      Cls);
        Ret = invoke(Dex.resolveVirtual(Cls, I.Idx), CallArgs);
      }
      if (Trap != TrapKind::None)
        break;
      if (I.A != dex::NoReg)
        R[I.A] = Ret;
      break;
    }

    case Opcode::Ret:
      charge(CM.ReturnCycles);
      return R[I.B];
    case Opcode::RetVoid:
      charge(CM.ReturnCycles);
      return Value();

    case Opcode::NewInstance: {
      const dex::ClassInfo &Cls = Dex.classAt(I.Idx);
      charge(CM.AllocBaseCycles +
             CM.AllocPerSlotCycles * Cls.InstanceSlots);
      noteAlloc(Cls.InstanceSlots);
      R[I.A] = Value::fromRef(TheHeap.allocate(
          ObjKind::Object, Cls.Id, Cls.InstanceSlots, Trap));
      break;
    }
    case Opcode::NewArrayI:
    case Opcode::NewArrayF:
    case Opcode::NewArrayR: {
      int64_t Len = R[I.B].asI64();
      if (ROPT_UNLIKELY(Len < 0)) {
        Trap = TrapKind::OutOfBounds;
        break;
      }
      ObjKind Kind = I.Op == Opcode::NewArrayI   ? ObjKind::ArrayI
                     : I.Op == Opcode::NewArrayF ? ObjKind::ArrayF
                                                 : ObjKind::ArrayR;
      charge(CM.AllocBaseCycles +
             CM.AllocPerSlotCycles * static_cast<uint64_t>(Len));
      noteAlloc(static_cast<uint64_t>(Len));
      R[I.A] = Value::fromRef(
          TheHeap.allocate(Kind, 0, static_cast<uint64_t>(Len), Trap));
      break;
    }

    case Opcode::ALoadI:
    case Opcode::ALoadF:
    case Opcode::ALoadR:
    case Opcode::AStoreI:
    case Opcode::AStoreF:
    case Opcode::AStoreR: {
      bool IsStore = I.Op == Opcode::AStoreI || I.Op == Opcode::AStoreF ||
                     I.Op == Opcode::AStoreR;
      uint64_t Arr = R[I.B].asRef();
      charge(CM.CheckCycles * 2);
      if (ROPT_UNLIKELY(Arr == 0)) {
        Trap = TrapKind::NullPointer;
        break;
      }
      ObjectHeader Header;
      if (ROPT_UNLIKELY(!TheHeap.readHeader(Arr, Header))) {
        Trap = TrapKind::MemoryFault;
        break;
      }
      int64_t Index = R[I.C].asI64();
      if (ROPT_UNLIKELY(Index < 0 ||
                        static_cast<uint64_t>(Index) >= Header.Count)) {
        Trap = TrapKind::OutOfBounds;
        break;
      }
      uint64_t Addr = Heap::elemAddr(Arr, static_cast<uint64_t>(Index));
      if (IsStore) {
        memStore(Addr, R[I.A].Raw);
      } else {
        uint64_t Bits = 0;
        if (memLoad(Addr, Bits))
          R[I.A].Raw = Bits;
      }
      break;
    }
    case Opcode::ArrayLen: {
      uint64_t Arr = R[I.B].asRef();
      charge(CM.CheckCycles);
      if (ROPT_UNLIKELY(Arr == 0)) {
        Trap = TrapKind::NullPointer;
        break;
      }
      ObjectHeader Header;
      if (ROPT_UNLIKELY(!TheHeap.readHeader(Arr, Header))) {
        Trap = TrapKind::MemoryFault;
        break;
      }
      charge(CM.LoadCycles);
      R[I.A] = Value::fromI64(static_cast<int64_t>(Header.Count));
      break;
    }

    case Opcode::GetFieldI:
    case Opcode::GetFieldF:
    case Opcode::GetFieldR:
    case Opcode::PutFieldI:
    case Opcode::PutFieldF:
    case Opcode::PutFieldR: {
      bool IsPut = I.Op == Opcode::PutFieldI ||
                   I.Op == Opcode::PutFieldF || I.Op == Opcode::PutFieldR;
      uint64_t Obj = R[I.B].asRef();
      charge(CM.CheckCycles);
      if (ROPT_UNLIKELY(Obj == 0)) {
        Trap = TrapKind::NullPointer;
        break;
      }
      uint64_t Addr =
          Heap::slotAddr(Obj, Dex.field(I.Idx).SlotIndex);
      if (IsPut) {
        memStore(Addr, R[I.A].Raw);
      } else {
        uint64_t Bits = 0;
        if (memLoad(Addr, Bits))
          R[I.A].Raw = Bits;
      }
      break;
    }

    case Opcode::GetStaticI:
    case Opcode::GetStaticF:
    case Opcode::GetStaticR: {
      uint64_t Bits = 0;
      if (memLoad(staticSlotAddr(I.Idx), Bits))
        R[I.A].Raw = Bits;
      break;
    }
    case Opcode::PutStaticI:
    case Opcode::PutStaticF:
    case Opcode::PutStaticR:
      memStore(staticSlotAddr(I.Idx), R[I.A].Raw);
      break;

    case Opcode::OpcodeCount:
      assert(false && "invalid opcode reached the interpreter");
      break;
    }

    Pc = NextPc;
  }
  return Value();
}
