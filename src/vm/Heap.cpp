//===- vm/Heap.cpp - Garbage-collected heap over simulated memory ---------===//

#include "vm/Heap.h"

#include "support/Metrics.h"

#include <cassert>

using namespace ropt;
using namespace ropt::vm;

uint64_t Heap::readControl(uint64_t Slot) {
  uint64_t Value = 0;
  [[maybe_unused]] os::AccessResult R =
      Space.loadU64(Layout::HeapBase + Slot, Value);
  assert(R == os::AccessResult::Ok && "heap control block unreachable");
  return Value;
}

void Heap::writeControl(uint64_t Slot, uint64_t Value) {
  [[maybe_unused]] os::AccessResult R =
      Space.storeU64(Layout::HeapBase + Slot, Value);
  assert(R == os::AccessResult::Ok && "heap control block unreachable");
}

void Heap::initialize() {
  writeControl(BumpOffsetSlot, ControlBlockSize);
  writeControl(BytesSinceGcSlot, 0);
  writeControl(GcRunsSlot, 0);
}

uint64_t Heap::allocate(ObjKind Kind, uint32_t ClassOrElem, uint64_t Count,
                        TrapKind &Trap) {
  uint64_t Bump = readControl(BumpOffsetSlot);
  uint64_t Bytes = sizeof(ObjectHeader) + 8 * Count;
  Bytes = (Bytes + 15) & ~15ULL; // 16-byte alignment
  if (Bump + Bytes > LimitBytes) {
    Trap = TrapKind::OutOfMemory;
    return 0;
  }
  uint64_t Ref = Layout::HeapBase + Bump;

  ObjectHeader Header;
  Header.ClassOrElem = ClassOrElem;
  Header.Kind = static_cast<uint8_t>(Kind);
  Header.Count = Count;
  if (Space.write(Ref, &Header, sizeof(Header)) != os::AccessResult::Ok) {
    Trap = TrapKind::MemoryFault;
    return 0;
  }
  // Fresh pages are zeroed by the simulated kernel, but a recycled replay
  // space may hold stale bytes; zero the payload explicitly.
  static const uint8_t Zeros[256] = {};
  uint64_t Remaining = Bytes - sizeof(ObjectHeader);
  uint64_t At = Ref + sizeof(ObjectHeader);
  while (Remaining > 0) {
    uint64_t Chunk = Remaining < sizeof(Zeros) ? Remaining : sizeof(Zeros);
    if (Space.write(At, Zeros, Chunk) != os::AccessResult::Ok) {
      Trap = TrapKind::MemoryFault;
      return 0;
    }
    At += Chunk;
    Remaining -= Chunk;
  }

  writeControl(BumpOffsetSlot, Bump + Bytes);
  writeControl(BytesSinceGcSlot, readControl(BytesSinceGcSlot) + Bytes);
  ROPT_METRIC_INC("vm.heap_allocs");
  ROPT_METRIC_ADD("vm.heap_bytes", Bytes);
  return Ref;
}

bool Heap::readHeader(uint64_t Ref, ObjectHeader &Out) {
  return Space.read(Ref, &Out, sizeof(Out)) == os::AccessResult::Ok;
}

uint64_t Heap::bytesAllocated() {
  return readControl(BumpOffsetSlot) - ControlBlockSize;
}

bool Heap::gcImminent() {
  return readControl(BytesSinceGcSlot) * 10 >= GcThresholdBytes * 9;
}

uint64_t Heap::pollSafepoint(uint64_t GcPauseCycles) {
  // Collect as soon as a collection is "imminent" (the same 90% bar the
  // capture scheduler postpones on) — a postponed capture must always get
  // its chance on a later run.
  if (readControl(BytesSinceGcSlot) * 10 < GcThresholdBytes * 9)
    return 0;
  // "Collect": charge the pause and walk every allocated page, as a tracing
  // collector would. The walk performs protected reads so that a concurrent
  // capture observes the page traffic.
  uint64_t Bump = readControl(BumpOffsetSlot);
  for (uint64_t Offset = 0; Offset < Bump; Offset += os::PageSize) {
    uint8_t Byte;
    (void)Space.read(Layout::HeapBase + Offset, &Byte, 1);
  }
  writeControl(BytesSinceGcSlot, 0);
  writeControl(GcRunsSlot, readControl(GcRunsSlot) + 1);
  ROPT_METRIC_INC("vm.gc_runs");
  return GcPauseCycles;
}

uint64_t Heap::gcRuns() { return readControl(GcRunsSlot); }
