//===- replay/Replayer.cpp - Offline replay of captured regions -------------===//

#include "replay/Replayer.h"

#include "support/Metrics.h"
#include "support/Random.h"
#include "support/Trace.h"

#include <cassert>
#include <functional>
#include <set>

using namespace ropt;
using namespace ropt::replay;
using os::AddressSpace;
using os::Mapping;
using os::MappingKind;
using os::PageSize;

Replayer::Replayer(const dex::DexFile &File,
                   const vm::NativeRegistry &Natives,
                   vm::RuntimeConfig Config, uint64_t AslrSeed)
    : File(File), Natives(Natives), Config(Config), AslrRng(AslrSeed) {}

namespace {

/// Size of the loader's own footprint (stack, code, scratch).
constexpr uint64_t LoaderPages = 24;

/// Finds a page-aligned area of \p Pages pages not used by any captured
/// mapping, scanning upward from \p From.
uint64_t findFreeArea(const capture::Capture &Cap, uint64_t From,
                      uint64_t Pages) {
  uint64_t Addr = os::pageBase(From);
  for (;;) {
    bool Clear = true;
    for (const Mapping &M : Cap.Mappings) {
      uint64_t End = Addr + Pages * PageSize;
      if (Addr < M.End && M.Start < End) {
        Clear = false;
        Addr = M.End;
        break;
      }
    }
    if (Clear)
      return Addr;
  }
}

/// Observer that collects the verification map's write set and the type
/// profile during the interpreted replay.
class RecordingObserver : public vm::ExecObserver {
public:
  std::set<uint64_t> WrittenCells;
  lir::TypeProfile Profile;

  void onCellWrite(uint64_t Addr) override { WrittenCells.insert(Addr); }
  void onVirtualDispatch(dex::MethodId Caller, uint32_t Pc,
                         dex::ClassId Receiver) override {
    Profile.record(Caller, Pc, Receiver);
  }
};

} // namespace

os::AddressSpace &Replayer::bootTemplate(const capture::Capture &Cap) {
  auto It = BootTemplates.find(Cap.BootId);
  if (It != BootTemplates.end())
    return It->second;

  AddressSpace Template;
  Rng ImageRng(0xb007ULL * 2654435761ULL + Cap.BootId);
  for (const Mapping &M : Cap.Mappings) {
    if (M.Kind != MappingKind::RuntimeImage)
      continue;
    Template.mapRegion(M.Start, M.sizeBytes(), os::ProtRead, M.Kind,
                       M.Name);
    for (uint64_t Offset = 0; Offset < M.sizeBytes(); Offset += 64) {
      uint64_t Words[8];
      for (uint64_t &W : Words)
        W = ImageRng.next();
      (void)Template.poke(M.Start + Offset, Words, sizeof(Words));
    }
  }
  return BootTemplates.emplace(Cap.BootId, std::move(Template))
      .first->second;
}

uint64_t Replayer::captureFingerprint(const capture::Capture &Cap) {
  // FNV-1a over the capture's structure plus a light content sample: a
  // capture mutated in place under a live session must not replay against
  // stale session memory. Cost is O(pages) with a small constant — paid
  // once per session replay, not per instruction.
  uint64_t H = 1469598103934665603ULL;
  auto Mix = [&H](uint64_t V) {
    H ^= V;
    H *= 1099511628211ULL;
  };
  Mix(Cap.BootId);
  Mix(Cap.Root);
  Mix(Cap.Args.size());
  for (const vm::Value &A : Cap.Args)
    Mix(A.Raw);
  Mix(Cap.Mappings.size());
  for (const Mapping &M : Cap.Mappings) {
    Mix(M.Start);
    Mix(M.End);
    Mix(static_cast<uint64_t>(M.Kind));
  }
  Mix(Cap.Pages.size());
  for (const capture::PageRecord &P : Cap.Pages) {
    Mix(P.Addr);
    Mix(P.Bytes.size());
    if (P.Bytes.size() >= 8) {
      uint64_t First = 0, Last = 0;
      std::memcpy(&First, P.Bytes.data(), 8);
      std::memcpy(&Last, P.Bytes.data() + P.Bytes.size() - 8, 8);
      Mix(First);
      Mix(Last);
    }
  }
  return H;
}

os::AddressSpace Replayer::buildRestoredSpace(const capture::Capture &Cap,
                                              LoaderStats &Loader) {
  // Start from the per-boot template: runtime-image pages shared CoW.
  AddressSpace Space = bootTemplate(Cap).forkClone();

  // --- Stage 0: the loader occupies an ASLR-randomized base, chosen
  // below the runtime image so it never lands on template pages but can
  // genuinely collide with code/data/heap mappings. --------------------
  uint64_t LoaderBase =
      os::pageBase(0x10000000 + AslrRng.below(0x58000000));
  Space.mapRegion(LoaderBase, LoaderPages * PageSize,
                  os::ProtRead | os::ProtWrite, MappingKind::Anonymous,
                  "loader");
  Loader.LoaderBase = LoaderBase;

  // --- Stage 1: map the captured layout; collisions stage elsewhere. ----
  uint64_t StagingBase = findFreeArea(Cap, 0xa0000000, LoaderPages);
  std::vector<std::pair<uint64_t, uint64_t>> Staged; // (final, temp)

  for (const Mapping &M : Cap.Mappings) {
    if (M.Kind == MappingKind::RuntimeImage) {
      Loader.CommonPagesMapped += M.pageCount();
      continue; // mapped via the boot template
    }
    bool CollidesWithLoader =
        M.Start < LoaderBase + LoaderPages * PageSize &&
        LoaderBase < M.End;
    if (!CollidesWithLoader) {
      Space.mapRegion(M.Start, M.sizeBytes(), os::ProtRead | os::ProtWrite,
                      M.Kind, M.Name);
      continue;
    }
    for (uint64_t Addr = M.Start; Addr < M.End; Addr += PageSize) {
      bool Collides = Addr >= LoaderBase &&
                      Addr < LoaderBase + LoaderPages * PageSize;
      if (!Collides) {
        Space.mapRegion(Addr, PageSize, os::ProtRead | os::ProtWrite,
                        M.Kind, M.Name);
        continue;
      }
      uint64_t Temp = StagingBase + Staged.size() * PageSize;
      Space.mapRegion(Temp, PageSize, os::ProtRead | os::ProtWrite,
                      MappingKind::Anonymous, "staged");
      Staged.emplace_back(Addr, Temp);
      ++Loader.CollidingPages;
    }
  }

  auto TargetAddr = [&Staged](uint64_t PageAddr) {
    for (const auto &[Final, Temp] : Staged)
      if (Final == PageAddr)
        return Temp;
    return PageAddr;
  };

  // Captured (process-specific) pages.
  for (const capture::PageRecord &P : Cap.Pages) {
    [[maybe_unused]] bool Ok =
        Space.poke(TargetAddr(P.Addr), P.Bytes.data(), P.Bytes.size());
    assert(Ok && "captured page has no mapping");
    ++Loader.PagesRestored;
  }

  // --- Stages 2+3: break-free — drop the loader, relocate staged pages. -
  Space.unmapRegion(LoaderBase, LoaderPages * PageSize);
  for (const auto &[Final, Temp] : Staged) {
    std::vector<uint8_t> Bytes(PageSize);
    [[maybe_unused]] bool Ok = Space.peek(Temp, Bytes.data(), PageSize);
    assert(Ok && "staged page vanished");
    const Mapping *Owner = nullptr;
    for (const Mapping &Candidate : Cap.Mappings)
      if (Candidate.contains(Final))
        Owner = &Candidate;
    assert(Owner && "staged page outside every mapping");
    Space.mapRegion(Final, PageSize, os::ProtRead | os::ProtWrite,
                    Owner->Kind, Owner->Name);
    (void)Space.poke(Final, Bytes.data(), PageSize);
    Space.unmapRegion(Temp, PageSize);
  }
  return Space;
}

void Replayer::runRegion(AddressSpace &Space, const capture::Capture &Cap,
                         ReplayCode Mode, const vm::CodeCache *Code,
                         vm::ExecObserver *Observer, ReplayResult &Out) {
  // --- Stage 4: pick the code version and execute the region. -----------
  // Always a fresh Runtime: its cache simulator, branch predictor and
  // cycle totals are per-replay state — reusing them across replays would
  // change charged cycles (and Env.NowMillis) and break digest identity.
  vm::Runtime RT(Space, File, Natives, Config);
  if (Mode == ReplayCode::Compiled && Code) {
    // Zero-copy install: the compiled binary is shared by pointer instead
    // of copied into the runtime-owned cache function by function.
    RT.setSharedCode(Code);
    RT.setMode(vm::ExecMode::Mixed);
  } else {
    RT.setMode(vm::ExecMode::InterpretOnly);
  }
  if (Observer)
    RT.setObserver(Observer);

  {
    ROPT_TRACE_SPAN("replay.execute");
    Out.Result = RT.call(Cap.Root, Cap.Args);
  }

  ROPT_METRIC_INC("replay.replays");
  ROPT_METRIC_OBSERVE("replay.cycles", Out.Result.Cycles,
                      ({1e4, 1e5, 1e6, 1e7, 1e8, 1e9}));
}

/// Loader-work metrics count work actually performed, so the session path
/// emits them once per session build while ReplayResult::Loader carries
/// the cumulative per-session numbers on every replay.
static void emitLoaderMetrics(const LoaderStats &L) {
  ROPT_METRIC_ADD("replay.pages_restored", L.PagesRestored);
  ROPT_METRIC_ADD("replay.collisions_handled", L.CollidingPages);
}

ReplayResult Replayer::replayImpl(
    const capture::Capture &Cap, ReplayCode Mode,
    const vm::CodeCache *Code, vm::ExecObserver *Observer,
    const std::function<void(AddressSpace &, const vm::CallResult &)>
        &PostRun) {
  ROPT_TRACE_SPAN("replay.run");
  ReplayResult Out;

  if (!SessionMode) {
    AddressSpace Space = buildRestoredSpace(Cap, Out.Loader);
    emitLoaderMetrics(Out.Loader);
    runRegion(Space, Cap, Mode, Code, Observer, Out);
    ++SessStats.FreshReplays;
    if (PostRun)
      PostRun(Space, Out.Result);
    return Out;
  }

  // Fork-server path: find (or build) the pristine session for this
  // capture, execute against it, then delta-reset the dirty pages.
  uint64_t Fp = captureFingerprint(Cap);
  auto It = Sessions.find(&Cap);
  if (It != Sessions.end() && It->second.Fingerprint != Fp) {
    // The capture changed in place (or a new capture reuses the address):
    // the session memory is stale. Rebuild from scratch.
    Sessions.erase(It);
    It = Sessions.end();
    ++SessStats.FullRebuilds;
    ROPT_METRIC_INC("replay.full_rebuilds");
  }
  if (It == Sessions.end()) {
    Session S;
    S.Space = buildRestoredSpace(Cap, S.Loader);
    S.Space.takeSnapshot();
    S.Fingerprint = Fp;
    It = Sessions.emplace(&Cap, std::move(S)).first;
    ++SessStats.SessionsCreated;
    ROPT_METRIC_INC("replay.sessions_created");
    emitLoaderMetrics(It->second.Loader);
  }

  Session &S = It->second;
  Out.Loader = S.Loader; // cumulative per-session loader work (see .h)
  runRegion(S.Space, Cap, Mode, Code, Observer, Out);
  ++SessStats.SessionReplays;
  if (PostRun)
    PostRun(S.Space, Out.Result);

  int64_t Reverted = S.Space.resetToSnapshot();
  if (Reverted < 0) {
    // Structural change during the region (never happens for well-formed
    // workloads — the heap never unmaps). Drop the session; the next
    // replay rebuilds it.
    Sessions.erase(It);
    ++SessStats.FullRebuilds;
    ROPT_METRIC_INC("replay.full_rebuilds");
  } else {
    ++SessStats.DeltaResets;
    SessStats.PagesReverted += static_cast<uint64_t>(Reverted);
    ROPT_METRIC_INC("replay.session_resets");
    ROPT_METRIC_ADD("replay.pages_reverted",
                    static_cast<uint64_t>(Reverted));
  }
  return Out;
}

void Replayer::setSessionMode(bool On) {
  if (SessionMode == On)
    return;
  SessionMode = On;
  if (!On)
    Sessions.clear();
}

ReplayResult Replayer::replay(const capture::Capture &Cap, ReplayCode Mode,
                              const vm::CodeCache *Code,
                              vm::ExecObserver *Observer) {
  return replayImpl(Cap, Mode, Code, Observer, nullptr);
}

support::Result<InterpretedReplayResult>
Replayer::interpretedReplay(const capture::Capture &Cap) {
  ROPT_TRACE_SPAN("replay.interpreted");
  ROPT_METRIC_INC("replay.interpreted_replays");
  InterpretedReplayResult Out;
  RecordingObserver Obs;

  Out.Replay = replayImpl(
      Cap, ReplayCode::Interpreter, nullptr, &Obs,
      [&Obs, &Out](AddressSpace &Space, const vm::CallResult &Result) {
        (void)Result;
        for (uint64_t Addr : Obs.WrittenCells) {
          uint64_t Bits = 0;
          if (Space.peek(Addr, &Bits, sizeof(Bits)))
            Out.Map.Cells[Addr] = Bits;
        }
      });
  Out.Profile = std::move(Obs.Profile);

  if (Out.Replay.Result.Trap == vm::TrapKind::Timeout)
    return support::Error{support::ErrorCode::ReplayTimeout,
                          "interpreted replay exhausted its budget"};
  if (Out.Replay.Result.Trap != vm::TrapKind::None)
    return support::Error{support::ErrorCode::ReplayCrash,
                          "interpreted replay trapped"};
  if (File.method(Cap.Root).ReturnsValue) {
    Out.Map.HasReturn = true;
    Out.Map.ReturnBits = Out.Replay.Result.Ret.Raw;
  }
  return Out;
}

support::Result<ReplayResult>
Replayer::verifiedReplay(const capture::Capture &Cap,
                         const vm::CodeCache &Code,
                         const VerificationMap &Map) {
  ROPT_TRACE_SPAN("replay.verified");
  std::map<uint64_t, uint64_t> Observed;
  ReplayResult Out = replayImpl(
      Cap, ReplayCode::Compiled, &Code, nullptr,
      [&Map, &Observed](AddressSpace &Space, const vm::CallResult &R) {
        if (R.Trap != vm::TrapKind::None)
          return;
        for (const auto &KV : Map.Cells) {
          uint64_t Bits = 0;
          if (Space.peek(KV.first, &Bits, sizeof(Bits)))
            Observed[KV.first] = Bits;
        }
      });

  if (Out.Result.Trap == vm::TrapKind::Timeout)
    return support::Error{support::ErrorCode::ReplayTimeout,
                          "verified replay exhausted its budget"};
  if (Out.Result.Trap != vm::TrapKind::None)
    return support::Error{support::ErrorCode::ReplayCrash,
                          "verified replay trapped"};
  bool Matches = !(Map.HasReturn && Map.ReturnBits != Out.Result.Ret.Raw) &&
                 Observed == Map.Cells;
  if (!Matches) {
    ROPT_METRIC_INC("replay.verify_mismatches");
    return support::Error{support::ErrorCode::OutputMismatch,
                          "verification map mismatch"};
  }
  ROPT_METRIC_INC("replay.verify_ok");
  return Out;
}
