//===- replay/Replayer.cpp - Offline replay of captured regions -------------===//

#include "replay/Replayer.h"

#include "support/Metrics.h"
#include "support/Random.h"
#include "support/Trace.h"

#include <cassert>
#include <functional>
#include <set>

using namespace ropt;
using namespace ropt::replay;
using os::AddressSpace;
using os::Mapping;
using os::MappingKind;
using os::PageSize;

Replayer::Replayer(const dex::DexFile &File,
                   const vm::NativeRegistry &Natives,
                   vm::RuntimeConfig Config, uint64_t AslrSeed)
    : File(File), Natives(Natives), Config(Config), AslrRng(AslrSeed) {}

namespace {

/// Size of the loader's own footprint (stack, code, scratch).
constexpr uint64_t LoaderPages = 24;

/// Finds a page-aligned area of \p Pages pages not used by any captured
/// mapping, scanning upward from \p From.
uint64_t findFreeArea(const capture::Capture &Cap, uint64_t From,
                      uint64_t Pages) {
  uint64_t Addr = os::pageBase(From);
  for (;;) {
    bool Clear = true;
    for (const Mapping &M : Cap.Mappings) {
      uint64_t End = Addr + Pages * PageSize;
      if (Addr < M.End && M.Start < End) {
        Clear = false;
        Addr = M.End;
        break;
      }
    }
    if (Clear)
      return Addr;
  }
}

/// Observer that collects the verification map's write set and the type
/// profile during the interpreted replay.
class RecordingObserver : public vm::ExecObserver {
public:
  std::set<uint64_t> WrittenCells;
  lir::TypeProfile Profile;

  void onCellWrite(uint64_t Addr) override { WrittenCells.insert(Addr); }
  void onVirtualDispatch(dex::MethodId Caller, uint32_t Pc,
                         dex::ClassId Receiver) override {
    Profile.record(Caller, Pc, Receiver);
  }
};

} // namespace

os::AddressSpace &Replayer::bootTemplate(const capture::Capture &Cap) {
  auto It = BootTemplates.find(Cap.BootId);
  if (It != BootTemplates.end())
    return It->second;

  AddressSpace Template;
  Rng ImageRng(0xb007ULL * 2654435761ULL + Cap.BootId);
  for (const Mapping &M : Cap.Mappings) {
    if (M.Kind != MappingKind::RuntimeImage)
      continue;
    Template.mapRegion(M.Start, M.sizeBytes(), os::ProtRead, M.Kind,
                       M.Name);
    for (uint64_t Offset = 0; Offset < M.sizeBytes(); Offset += 64) {
      uint64_t Words[8];
      for (uint64_t &W : Words)
        W = ImageRng.next();
      (void)Template.poke(M.Start + Offset, Words, sizeof(Words));
    }
  }
  return BootTemplates.emplace(Cap.BootId, std::move(Template))
      .first->second;
}

ReplayResult Replayer::replayImpl(
    const capture::Capture &Cap, ReplayCode Mode,
    const vm::CodeCache *Code, vm::ExecObserver *Observer,
    const std::function<void(AddressSpace &, const vm::CallResult &)>
        &PostRun) {
  ROPT_TRACE_SPAN("replay.run");
  ReplayResult Out;
  // Start from the per-boot template: runtime-image pages shared CoW.
  AddressSpace Space = bootTemplate(Cap).forkClone();

  // --- Stage 0: the loader occupies an ASLR-randomized base, chosen
  // below the runtime image so it never lands on template pages but can
  // genuinely collide with code/data/heap mappings. --------------------
  uint64_t LoaderBase =
      os::pageBase(0x10000000 + AslrRng.below(0x58000000));
  Space.mapRegion(LoaderBase, LoaderPages * PageSize,
                  os::ProtRead | os::ProtWrite, MappingKind::Anonymous,
                  "loader");
  Out.Loader.LoaderBase = LoaderBase;

  // --- Stage 1: map the captured layout; collisions stage elsewhere. ----
  uint64_t StagingBase = findFreeArea(Cap, 0xa0000000, LoaderPages);
  std::vector<std::pair<uint64_t, uint64_t>> Staged; // (final, temp)

  for (const Mapping &M : Cap.Mappings) {
    if (M.Kind == MappingKind::RuntimeImage) {
      Out.Loader.CommonPagesMapped += M.pageCount();
      continue; // mapped via the boot template
    }
    bool CollidesWithLoader =
        M.Start < LoaderBase + LoaderPages * PageSize &&
        LoaderBase < M.End;
    if (!CollidesWithLoader) {
      Space.mapRegion(M.Start, M.sizeBytes(), os::ProtRead | os::ProtWrite,
                      M.Kind, M.Name);
      continue;
    }
    for (uint64_t Addr = M.Start; Addr < M.End; Addr += PageSize) {
      bool Collides = Addr >= LoaderBase &&
                      Addr < LoaderBase + LoaderPages * PageSize;
      if (!Collides) {
        Space.mapRegion(Addr, PageSize, os::ProtRead | os::ProtWrite,
                        M.Kind, M.Name);
        continue;
      }
      uint64_t Temp = StagingBase + Staged.size() * PageSize;
      Space.mapRegion(Temp, PageSize, os::ProtRead | os::ProtWrite,
                      MappingKind::Anonymous, "staged");
      Staged.emplace_back(Addr, Temp);
      ++Out.Loader.CollidingPages;
    }
  }

  auto TargetAddr = [&Staged](uint64_t PageAddr) {
    for (const auto &[Final, Temp] : Staged)
      if (Final == PageAddr)
        return Temp;
    return PageAddr;
  };

  // Captured (process-specific) pages.
  for (const capture::PageRecord &P : Cap.Pages) {
    [[maybe_unused]] bool Ok =
        Space.poke(TargetAddr(P.Addr), P.Bytes.data(), P.Bytes.size());
    assert(Ok && "captured page has no mapping");
    ++Out.Loader.PagesRestored;
  }

  // --- Stages 2+3: break-free — drop the loader, relocate staged pages. -
  Space.unmapRegion(LoaderBase, LoaderPages * PageSize);
  for (const auto &[Final, Temp] : Staged) {
    std::vector<uint8_t> Bytes(PageSize);
    [[maybe_unused]] bool Ok = Space.peek(Temp, Bytes.data(), PageSize);
    assert(Ok && "staged page vanished");
    const Mapping *Owner = nullptr;
    for (const Mapping &Candidate : Cap.Mappings)
      if (Candidate.contains(Final))
        Owner = &Candidate;
    assert(Owner && "staged page outside every mapping");
    Space.mapRegion(Final, PageSize, os::ProtRead | os::ProtWrite,
                    Owner->Kind, Owner->Name);
    (void)Space.poke(Final, Bytes.data(), PageSize);
    Space.unmapRegion(Temp, PageSize);
  }

  // --- Stage 4: pick the code version and execute the region. -----------
  vm::Runtime RT(Space, File, Natives, Config);
  if (Mode == ReplayCode::Compiled && Code) {
    for (const auto &KV : Code->functions())
      RT.codeCache().install(KV.second);
    RT.setMode(vm::ExecMode::Mixed);
  } else {
    RT.setMode(vm::ExecMode::InterpretOnly);
  }
  if (Observer)
    RT.setObserver(Observer);

  {
    ROPT_TRACE_SPAN("replay.execute");
    Out.Result = RT.call(Cap.Root, Cap.Args);
  }

  ROPT_METRIC_INC("replay.replays");
  ROPT_METRIC_ADD("replay.pages_restored", Out.Loader.PagesRestored);
  ROPT_METRIC_ADD("replay.collisions_handled", Out.Loader.CollidingPages);
  ROPT_METRIC_OBSERVE("replay.cycles", Out.Result.Cycles,
                      ({1e4, 1e5, 1e6, 1e7, 1e8, 1e9}));

  if (PostRun)
    PostRun(Space, Out.Result);
  return Out;
}

ReplayResult Replayer::replay(const capture::Capture &Cap, ReplayCode Mode,
                              const vm::CodeCache *Code,
                              vm::ExecObserver *Observer) {
  return replayImpl(Cap, Mode, Code, Observer, nullptr);
}

support::Result<InterpretedReplayResult>
Replayer::interpretedReplay(const capture::Capture &Cap) {
  ROPT_TRACE_SPAN("replay.interpreted");
  ROPT_METRIC_INC("replay.interpreted_replays");
  InterpretedReplayResult Out;
  RecordingObserver Obs;

  Out.Replay = replayImpl(
      Cap, ReplayCode::Interpreter, nullptr, &Obs,
      [&Obs, &Out](AddressSpace &Space, const vm::CallResult &Result) {
        (void)Result;
        for (uint64_t Addr : Obs.WrittenCells) {
          uint64_t Bits = 0;
          if (Space.peek(Addr, &Bits, sizeof(Bits)))
            Out.Map.Cells[Addr] = Bits;
        }
      });
  Out.Profile = std::move(Obs.Profile);

  if (Out.Replay.Result.Trap == vm::TrapKind::Timeout)
    return support::Error{support::ErrorCode::ReplayTimeout,
                          "interpreted replay exhausted its budget"};
  if (Out.Replay.Result.Trap != vm::TrapKind::None)
    return support::Error{support::ErrorCode::ReplayCrash,
                          "interpreted replay trapped"};
  if (File.method(Cap.Root).ReturnsValue) {
    Out.Map.HasReturn = true;
    Out.Map.ReturnBits = Out.Replay.Result.Ret.Raw;
  }
  return Out;
}

support::Result<ReplayResult>
Replayer::verifiedReplay(const capture::Capture &Cap,
                         const vm::CodeCache &Code,
                         const VerificationMap &Map) {
  ROPT_TRACE_SPAN("replay.verified");
  std::map<uint64_t, uint64_t> Observed;
  ReplayResult Out = replayImpl(
      Cap, ReplayCode::Compiled, &Code, nullptr,
      [&Map, &Observed](AddressSpace &Space, const vm::CallResult &R) {
        if (R.Trap != vm::TrapKind::None)
          return;
        for (const auto &KV : Map.Cells) {
          uint64_t Bits = 0;
          if (Space.peek(KV.first, &Bits, sizeof(Bits)))
            Observed[KV.first] = Bits;
        }
      });

  if (Out.Result.Trap == vm::TrapKind::Timeout)
    return support::Error{support::ErrorCode::ReplayTimeout,
                          "verified replay exhausted its budget"};
  if (Out.Result.Trap != vm::TrapKind::None)
    return support::Error{support::ErrorCode::ReplayCrash,
                          "verified replay trapped"};
  bool Matches = !(Map.HasReturn && Map.ReturnBits != Out.Result.Ret.Raw) &&
                 Observed == Map.Cells;
  if (!Matches) {
    ROPT_METRIC_INC("replay.verify_mismatches");
    return support::Error{support::ErrorCode::OutputMismatch,
                          "verification map mismatch"};
  }
  ROPT_METRIC_INC("replay.verify_ok");
  return Out;
}
