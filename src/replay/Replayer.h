//===- replay/Replayer.h - Offline replay of captured regions ---*- C++ -*-===//
//
// Part of ReplayOpt (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 3.3's replay mechanism: a loader rebuilds a partial process
/// whose memory equals the captured snapshot, then re-executes the hot
/// region under any code version — the original Android binary, the
/// interpreter (for verification/profiling, Section 3.4), or a freshly
/// optimized LLVM binary.
///
/// The loader itself occupies pages at an ASLR-randomized base; captured
/// pages that collide are staged at a free temporary location, the loader's
/// break-free stub releases the loader pages, and the staged pages move to
/// their final addresses — faithfully modelled over the simulated address
/// space, with every step observable for tests.
///
/// **Replay sessions (fork-server mode, DESIGN.md §16).** With
/// `setSessionMode(true)`, the Replayer keeps one pristine restored
/// address space per capture: the boot template is forked once, the
/// loader runs once, and a snapshot is taken of the final restored
/// layout. Every replay then executes directly against that space and is
/// followed by a dirty-page delta reset (`os::AddressSpace::
/// resetToSnapshot`) that reverts exactly the pages the region wrote.
/// Because the reset restores bit-identical pre-region memory and every
/// replay still gets a fresh `vm::Runtime` (cache simulator, branch
/// predictor, cycle totals), session replays produce byte-identical
/// `CallResult`s and `VerificationMap`s to fresh rebuilds — the session
/// is invisible to every digest. If a capture's content changes under a
/// live session, or the reset is ever impossible (structural address-
/// space change), the session is dropped and rebuilt (`SessionStats::
/// FullRebuilds`, `replay.full_rebuilds`).
///
//===----------------------------------------------------------------------===//

#ifndef ROPT_REPLAY_REPLAYER_H
#define ROPT_REPLAY_REPLAYER_H

#include "capture/Capture.h"
#include "lir/TypeProfile.h"
#include "support/Result.h"
#include "vm/Runtime.h"

#include <functional>
#include <map>
#include <memory>

namespace ropt {
namespace replay {

/// How the region is executed during a replay.
enum class ReplayCode {
  Interpreter, ///< Bytecode interpreter (verification / profiling runs).
  Compiled,    ///< A supplied vm::CodeCache (Android or LLVM binary).
};

/// Loader bookkeeping, exposed for tests and the micro benches.
///
/// Semantics under session mode: loader work happens once per session, so
/// the session-*building* replay reports the full restore (PagesRestored,
/// CollidingPages, ...) and every session-*reusing* replay reports the
/// same cumulative per-session numbers again — the loader work that backs
/// the replay, not work done during it. Sum LoaderStats across replays of
/// one session and you count the build once per replay; use
/// `Replayer::sessionStats()` for cross-replay accounting instead.
struct LoaderStats {
  uint64_t LoaderBase = 0;
  uint64_t CollidingPages = 0; ///< Captured pages staged + relocated.
  uint64_t PagesRestored = 0;
  uint64_t CommonPagesMapped = 0;
};

/// Fork-server accounting across one Replayer's lifetime.
struct SessionStats {
  uint64_t SessionsCreated = 0; ///< Pristine spaces built (loader runs).
  uint64_t SessionReplays = 0;  ///< Replays served from a live session.
  uint64_t FreshReplays = 0;    ///< Replays that rebuilt from scratch
                                ///< (session mode off).
  uint64_t DeltaResets = 0;     ///< Dirty-page reverts between replays.
  uint64_t PagesReverted = 0;   ///< Pages those resets reverted in total.
  uint64_t FullRebuilds = 0;    ///< Sessions dropped: capture changed or
                                ///< the delta reset was impossible.

  SessionStats &operator+=(const SessionStats &O) {
    SessionsCreated += O.SessionsCreated;
    SessionReplays += O.SessionReplays;
    FreshReplays += O.FreshReplays;
    DeltaResets += O.DeltaResets;
    PagesReverted += O.PagesReverted;
    FullRebuilds += O.FullRebuilds;
    return *this;
  }

  double pagesPerReset() const {
    return DeltaResets ? static_cast<double>(PagesReverted) /
                             static_cast<double>(DeltaResets)
                       : 0.0;
  }
};

/// Externally visible behaviour of one region execution: the final values
/// of every heap/static cell the interpreted replay wrote, plus the return
/// value (Section 3.4's verification map).
struct VerificationMap {
  std::map<uint64_t, uint64_t> Cells;
  bool HasReturn = false;
  uint64_t ReturnBits = 0;

  bool empty() const { return Cells.empty() && !HasReturn; }
};

/// Result of one replay.
struct ReplayResult {
  vm::CallResult Result;
  LoaderStats Loader;
};

/// Result of the interpreted verification/profiling replay.
struct InterpretedReplayResult {
  ReplayResult Replay;
  VerificationMap Map;
  lir::TypeProfile Profile;
};

/// Replays captured executions. One Replayer per application; each replay
/// builds a fresh partial process — or, in session mode, reuses a
/// per-capture fork-server process reset between replays.
class Replayer {
public:
  Replayer(const dex::DexFile &File, const vm::NativeRegistry &Natives,
           vm::RuntimeConfig Config, uint64_t AslrSeed = 1);

  /// Replays \p Cap under \p Code (nullptr or Interpreter mode => pure
  /// interpretation). \p Observer, if given, sees the execution's heap
  /// writes and dispatches.
  ReplayResult replay(const capture::Capture &Cap, ReplayCode Mode,
                      const vm::CodeCache *Code,
                      vm::ExecObserver *Observer = nullptr);

  /// The interpreted replay: builds the verification map and the virtual
  /// call-site type profile (Section 3.4). Fails with ReplayCrash /
  /// ReplayTimeout when the interpretation itself traps.
  support::Result<InterpretedReplayResult>
  interpretedReplay(const capture::Capture &Cap);

  /// Replays \p Cap with \p Code and checks the externally visible
  /// behaviour against \p Map. Succeeds only when behaviour matches (same
  /// written cells, same return value, no trap); otherwise the error code
  /// says how it diverged: ReplayCrash, ReplayTimeout, or OutputMismatch.
  support::Result<ReplayResult>
  verifiedReplay(const capture::Capture &Cap, const vm::CodeCache &Code,
                 const VerificationMap &Map);

  /// Fork-server replay sessions: keep one restored address space per
  /// capture and delta-reset dirty pages between replays instead of
  /// rebuilding. Off by default — raw Replayer users (tests, loader
  /// benches) see the classic per-replay loader behaviour; evaluation
  /// backends turn it on via SearchOptions::SessionBackends. Turning it
  /// off drops every live session.
  void setSessionMode(bool On);
  bool sessionMode() const { return SessionMode; }

  /// Cross-replay session accounting (see LoaderStats for the
  /// per-replay/per-session split).
  const SessionStats &sessionStats() const { return SessStats; }

  /// Live sessions currently held (tests/benches).
  size_t liveSessions() const { return Sessions.size(); }

private:
  /// One fork-server process: the restored space snapshot plus the loader
  /// work that built it and a fingerprint to detect capture changes.
  struct Session {
    os::AddressSpace Space;
    LoaderStats Loader;
    uint64_t Fingerprint = 0;
  };

  /// Core replay; \p PostRun (optional) observes the address space after
  /// the region finished, before teardown (or before the session reset).
  ReplayResult
  replayImpl(const capture::Capture &Cap, ReplayCode Mode,
             const vm::CodeCache *Code, vm::ExecObserver *Observer,
             const std::function<void(os::AddressSpace &,
                                      const vm::CallResult &)> &PostRun);

  /// Stages 0-3: fork the boot template and run the loader dance until
  /// the space holds exactly the captured layout. Fills \p Loader.
  os::AddressSpace buildRestoredSpace(const capture::Capture &Cap,
                                      LoaderStats &Loader);

  /// Stage 4: execute the region in \p Space under the chosen code
  /// version with a fresh vm::Runtime; fills \p Out.Result and emits the
  /// per-replay metrics.
  void runRegion(os::AddressSpace &Space, const capture::Capture &Cap,
                 ReplayCode Mode, const vm::CodeCache *Code,
                 vm::ExecObserver *Observer, ReplayResult &Out);

  /// Cheap content signature used to notice a capture changing in place
  /// under a live session.
  static uint64_t captureFingerprint(const capture::Capture &Cap);

  /// Per-boot template space holding the (immutable) runtime image; each
  /// replay forks it so the 12 MiB of content is shared copy-on-write
  /// instead of being regenerated per replay.
  os::AddressSpace &bootTemplate(const capture::Capture &Cap);

  const dex::DexFile &File;
  const vm::NativeRegistry &Natives;
  vm::RuntimeConfig Config;
  Rng AslrRng;
  std::map<uint64_t, os::AddressSpace> BootTemplates;

  bool SessionMode = false;
  std::map<const capture::Capture *, Session> Sessions;
  SessionStats SessStats;
};

} // namespace replay
} // namespace ropt

#endif // ROPT_REPLAY_REPLAYER_H
