//===- replay/Replayer.h - Offline replay of captured regions ---*- C++ -*-===//
//
// Part of ReplayOpt (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 3.3's replay mechanism: a loader rebuilds a partial process
/// whose memory equals the captured snapshot, then re-executes the hot
/// region under any code version — the original Android binary, the
/// interpreter (for verification/profiling, Section 3.4), or a freshly
/// optimized LLVM binary.
///
/// The loader itself occupies pages at an ASLR-randomized base; captured
/// pages that collide are staged at a free temporary location, the loader's
/// break-free stub releases the loader pages, and the staged pages move to
/// their final addresses — faithfully modelled over the simulated address
/// space, with every step observable for tests.
///
//===----------------------------------------------------------------------===//

#ifndef ROPT_REPLAY_REPLAYER_H
#define ROPT_REPLAY_REPLAYER_H

#include "capture/Capture.h"
#include "lir/TypeProfile.h"
#include "support/Result.h"
#include "vm/Runtime.h"

#include <functional>
#include <map>
#include <memory>

namespace ropt {
namespace replay {

/// How the region is executed during a replay.
enum class ReplayCode {
  Interpreter, ///< Bytecode interpreter (verification / profiling runs).
  Compiled,    ///< A supplied vm::CodeCache (Android or LLVM binary).
};

/// Loader bookkeeping, exposed for tests and the micro benches.
struct LoaderStats {
  uint64_t LoaderBase = 0;
  uint64_t CollidingPages = 0; ///< Captured pages staged + relocated.
  uint64_t PagesRestored = 0;
  uint64_t CommonPagesMapped = 0;
};

/// Externally visible behaviour of one region execution: the final values
/// of every heap/static cell the interpreted replay wrote, plus the return
/// value (Section 3.4's verification map).
struct VerificationMap {
  std::map<uint64_t, uint64_t> Cells;
  bool HasReturn = false;
  uint64_t ReturnBits = 0;

  bool empty() const { return Cells.empty() && !HasReturn; }
};

/// Result of one replay.
struct ReplayResult {
  vm::CallResult Result;
  LoaderStats Loader;
};

/// Result of the interpreted verification/profiling replay.
struct InterpretedReplayResult {
  ReplayResult Replay;
  VerificationMap Map;
  lir::TypeProfile Profile;
};

/// Replays captured executions. One Replayer per application; each replay
/// builds a fresh partial process.
class Replayer {
public:
  Replayer(const dex::DexFile &File, const vm::NativeRegistry &Natives,
           vm::RuntimeConfig Config, uint64_t AslrSeed = 1);

  /// Replays \p Cap under \p Code (nullptr or Interpreter mode => pure
  /// interpretation). \p Observer, if given, sees the execution's heap
  /// writes and dispatches.
  ReplayResult replay(const capture::Capture &Cap, ReplayCode Mode,
                      const vm::CodeCache *Code,
                      vm::ExecObserver *Observer = nullptr);

  /// The interpreted replay: builds the verification map and the virtual
  /// call-site type profile (Section 3.4). Fails with ReplayCrash /
  /// ReplayTimeout when the interpretation itself traps.
  support::Result<InterpretedReplayResult>
  interpretedReplay(const capture::Capture &Cap);

  /// Replays \p Cap with \p Code and checks the externally visible
  /// behaviour against \p Map. Succeeds only when behaviour matches (same
  /// written cells, same return value, no trap); otherwise the error code
  /// says how it diverged: ReplayCrash, ReplayTimeout, or OutputMismatch.
  support::Result<ReplayResult>
  verifiedReplay(const capture::Capture &Cap, const vm::CodeCache &Code,
                 const VerificationMap &Map);

private:
  /// Core replay; \p PostRun (optional) observes the address space after
  /// the region finished, before teardown.
  ReplayResult
  replayImpl(const capture::Capture &Cap, ReplayCode Mode,
             const vm::CodeCache *Code, vm::ExecObserver *Observer,
             const std::function<void(os::AddressSpace &,
                                      const vm::CallResult &)> &PostRun);

  /// Per-boot template space holding the (immutable) runtime image; each
  /// replay forks it so the 12 MiB of content is shared copy-on-write
  /// instead of being regenerated per replay.
  os::AddressSpace &bootTemplate(const capture::Capture &Cap);

  const dex::DexFile &File;
  const vm::NativeRegistry &Natives;
  vm::RuntimeConfig Config;
  Rng AslrRng;
  std::map<uint64_t, os::AddressSpace> BootTemplates;
};

} // namespace replay
} // namespace ropt

#endif // ROPT_REPLAY_REPLAYER_H
