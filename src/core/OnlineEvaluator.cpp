//===- core/OnlineEvaluator.cpp - Motivation experiments ---------------------===//

#include "core/OnlineEvaluator.h"

#include "support/Statistics.h"

#include <cassert>

using namespace ropt;
using namespace ropt::core;

OnlineEvaluator::OnlineEvaluator(const workloads::Application &App,
                                 PipelineConfig Config)
    : App(App), Config(Config), R(Config.Seed ^ 0x0411e) {
  IterativeCompiler Pipeline(Config);
  IterativeCompiler::ProfiledApp Profiled = Pipeline.profileApp(App);
  if (!Profiled.Region)
    return;
  Region = *Profiled.Region;
  std::optional<IterativeCompiler::CapturedRegion> Captured =
      Pipeline.captureRegion(*Profiled.Instance, Region);
  if (!Captured)
    return;
  this->Captured = std::move(*Captured);
  Evaluator = std::make_unique<RegionEvaluator>(
      this->App, Region, this->Captured.Cap, this->Captured.Map,
      this->Captured.Profile, this->Config);
  Ready = true;
}

OutcomeHistogram OnlineEvaluator::classifyRandomSequences(int Count) {
  assert(Ready && "setup failed");
  OutcomeHistogram H;
  for (int I = 0; I != Count; ++I) {
    search::Genome G = search::randomGenome(R, Config.Search.GA.Genomes);
    search::Evaluation E = Evaluator->evaluate(G);
    switch (E.Kind) {
    case search::EvalKind::Ok: ++H.Correct; break;
    case search::EvalKind::CompileError: ++H.CompilerError; break;
    case search::EvalKind::RuntimeCrash: ++H.RuntimeCrash; break;
    case search::EvalKind::RuntimeTimeout: ++H.RuntimeTimeout; break;
    case search::EvalKind::WrongOutput: ++H.WrongOutput; break;
    case search::EvalKind::Unevaluated: break; // cannot come from evaluate()
    }
  }
  return H;
}

std::vector<double>
OnlineEvaluator::randomCorrectSpeedups(int Count, int MaxAttempts) {
  assert(Ready && "setup failed");
  search::Evaluation Android = Evaluator->evaluateAndroid();
  assert(Android.ok() && "android baseline failed");

  std::vector<double> Speedups;
  for (int Attempt = 0;
       Attempt != MaxAttempts &&
       static_cast<int>(Speedups.size()) < Count;
       ++Attempt) {
    search::Genome G = search::randomGenome(R, Config.Search.GA.Genomes);
    search::Evaluation E = Evaluator->evaluate(G);
    if (E.ok())
      Speedups.push_back(Android.MedianCycles / E.MedianCycles);
  }
  return Speedups;
}

namespace {

/// Emits trajectory points at roughly log-spaced evaluation counts.
std::vector<int> logSpacedCounts(int Max) {
  std::vector<int> Counts;
  for (int K = 1; K <= Max;) {
    Counts.push_back(K);
    int Next = static_cast<int>(K * 1.3) + 1;
    K = Next;
  }
  if (Counts.back() != Max)
    Counts.push_back(Max);
  return Counts;
}

ConvergencePoint pointAt(const std::vector<double> &T0,
                         const std::vector<double> &T1, int K, Rng &R) {
  ConvergencePoint P;
  P.Evaluations = K;
  std::vector<double> A(T0.begin(), T0.begin() + K);
  std::vector<double> B(T1.begin(), T1.begin() + K);
  P.Estimate = mean(A) / mean(B);
  BootstrapInterval Ci95 = bootstrapRatioCI(A, B, 0.95, R, 400);
  BootstrapInterval Ci75 = bootstrapRatioCI(A, B, 0.75, R, 400);
  P.Ci95Low = Ci95.Low;
  P.Ci95High = Ci95.High;
  P.Ci75Low = Ci75.Low;
  P.Ci75High = Ci75.High;
  return P;
}

} // namespace

OnlineEvaluator::Convergence
OnlineEvaluator::convergence(int MaxEvaluations) {
  assert(Ready && "setup failed");
  Convergence Out;

  // Region code at -O0 and -O1.
  search::Genome O0, O1;
  O0.Passes = lir::o0Pipeline();
  O1.Passes = lir::o1Pipeline();
  std::optional<vm::CodeCache> O0Code = Evaluator->compileRegion(O0);
  std::optional<vm::CodeCache> O1Code = Evaluator->compileRegion(O1);
  assert(O0Code && O1Code && "preset compilation failed");

  // Online: two app instances, each executing the hot region directly
  // with freshly drawn inputs under online noise.
  AppInstance Inst0(App, Config.Seed + 11);
  AppInstance Inst1(App, Config.Seed + 12);
  Inst0.overrideRegionCode(Region.Methods, *O0Code);
  Inst1.overrideRegionCode(Region.Methods, *O1Code);

  auto RunOnline = [&](AppInstance &Inst) {
    int64_t Param = R.range(App.MinParam, App.MaxParam);
    vm::CallResult Res =
        Inst.runtime().call(Region.Root, App.argsFor(Param));
    assert(Res.ok() && "online evaluation trapped");
    return Config.Measure.Noise.online(R, static_cast<double>(Res.Cycles));
  };

  std::vector<double> OnT0, OnT1;
  for (int I = 0; I != MaxEvaluations; ++I) {
    OnT0.push_back(RunOnline(Inst0));
    OnT1.push_back(RunOnline(Inst1));
  }

  // Offline: the captured input replayed; timings are the deterministic
  // cycle counts under offline noise.
  vm::NativeRegistry Natives = vm::NativeRegistry::standardLibrary();
  replay::Replayer Rep(*App.File, Natives, App.RtConfig,
                       Config.Seed ^ 0x0ff1);
  double Off0 = static_cast<double>(
      Rep.replay(Captured.Cap, replay::ReplayCode::Compiled, &*O0Code)
          .Result.Cycles);
  double Off1 = static_cast<double>(
      Rep.replay(Captured.Cap, replay::ReplayCode::Compiled, &*O1Code)
          .Result.Cycles);
  std::vector<double> OffT0, OffT1;
  for (int I = 0; I != MaxEvaluations; ++I) {
    OffT0.push_back(Config.Measure.Noise.offline(R, Off0));
    OffT1.push_back(Config.Measure.Noise.offline(R, Off1));
  }

  Out.TrueSpeedup = Off0 / Off1;
  for (int K : logSpacedCounts(MaxEvaluations)) {
    if (K < 2)
      continue;
    Out.Online.push_back(pointAt(OnT0, OnT1, K, R));
    Out.Offline.push_back(pointAt(OffT0, OffT1, K, R));
  }
  return Out;
}
