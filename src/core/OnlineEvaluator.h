//===- core/OnlineEvaluator.h - Motivation experiments ----------*- C++ -*-===//
//
// Part of ReplayOpt (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Section-2 motivation experiments:
///   Figure 1 — outcome classes of random optimization sequences.
///   Figure 2 — how slow random-but-correct binaries are.
///   Figure 3 — online vs offline speedup-estimation convergence.
///
//===----------------------------------------------------------------------===//

#ifndef ROPT_CORE_ONLINE_EVALUATOR_H
#define ROPT_CORE_ONLINE_EVALUATOR_H

#include "core/IterativeCompiler.h"

namespace ropt {
namespace core {

/// Figure 1's outcome histogram.
struct OutcomeHistogram {
  int CompilerError = 0; ///< Verifier rejection / size blowup.
  int RuntimeCrash = 0;
  int RuntimeTimeout = 0;
  int WrongOutput = 0;
  int Correct = 0;

  int total() const {
    return CompilerError + RuntimeCrash + RuntimeTimeout + WrongOutput +
           Correct;
  }
};

/// One trajectory point of the Figure-3 estimation experiment.
struct ConvergencePoint {
  int Evaluations = 0;
  double Estimate = 0.0; ///< mean(T_baseline) / mean(T_optimized).
  double Ci75Low = 0.0, Ci75High = 0.0;
  double Ci95Low = 0.0, Ci95High = 0.0;
};

/// Runs the motivation experiments on one application's hot region.
class OnlineEvaluator {
public:
  OnlineEvaluator(const workloads::Application &App,
                  PipelineConfig Config);

  /// True when setup (profile, capture, interpreted replay) succeeded.
  bool ready() const { return Ready; }

  /// Figure 1: classify \p Count random optimization sequences.
  OutcomeHistogram classifyRandomSequences(int Count);

  /// Figure 2: speedups (vs Android) of \p Count random *correct*
  /// sequences; keeps drawing genomes until that many correct ones ran.
  std::vector<double> randomCorrectSpeedups(int Count,
                                            int MaxAttempts = 2000);

  /// Figure 3: speedup-of-O1-over-O0 estimation trajectories. Online
  /// evaluations draw a fresh input in [MinParam, MaxParam] and online
  /// noise per run; offline evaluations replay the fixed captured input
  /// with offline noise. Points are emitted at log-spaced eval counts.
  struct Convergence {
    std::vector<ConvergencePoint> Online;
    std::vector<ConvergencePoint> Offline;
    double TrueSpeedup = 0.0; ///< Noise-free cycles ratio at the default.
  };
  Convergence convergence(int MaxEvaluations);

  const profiler::HotRegion &region() const { return Region; }
  RegionEvaluator &evaluator() { return *Evaluator; }

private:
  workloads::Application App;
  PipelineConfig Config;
  profiler::HotRegion Region;
  IterativeCompiler::CapturedRegion Captured;
  std::unique_ptr<RegionEvaluator> Evaluator;
  Rng R;
  bool Ready = false;
};

} // namespace core
} // namespace ropt

#endif // ROPT_CORE_ONLINE_EVALUATOR_H
