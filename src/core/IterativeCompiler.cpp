//===- core/IterativeCompiler.cpp - The replay-based main loop --------------===//

#include "core/IterativeCompiler.h"

#include "hgraph/AndroidCompiler.h"
#include "support/Metrics.h"
#include "support/Statistics.h"
#include "support/Trace.h"

#include <cassert>

using namespace ropt;
using namespace ropt::core;

// --- RegionEvaluator ----------------------------------------------------------

RegionEvaluator::RegionEvaluator(const workloads::Application &App,
                                 const profiler::HotRegion &Region,
                                 const capture::Capture &Cap,
                                 const replay::VerificationMap &Map,
                                 const lir::TypeProfile &Profile,
                                 const PipelineConfig &Config)
    : App(App), Region(Region), Profile(Profile), Config(Config),
      Natives(vm::NativeRegistry::standardLibrary()),
      Rep(*App.File, Natives, App.RtConfig, Config.Seed ^ 0xa51f),
      NoiseRng(Config.Seed ^ 0x90153) {
  Caps.push_back(CaptureRef{&Cap, &Map});
}

RegionEvaluator::RegionEvaluator(
    const workloads::Application &App, const profiler::HotRegion &Region,
    const std::vector<CapturedRegion> &Captures,
    const PipelineConfig &Config)
    : App(App), Region(Region), Config(Config),
      Natives(vm::NativeRegistry::standardLibrary()),
      Rep(*App.File, Natives, App.RtConfig, Config.Seed ^ 0xa51f),
      NoiseRng(Config.Seed ^ 0x90153) {
  assert(!Captures.empty() && "need at least one capture");
  for (const CapturedRegion &C : Captures) {
    Caps.push_back(CaptureRef{&C.Cap, &C.Map});
    Profile.merge(C.Profile);
  }
}

namespace {

/// Content hash over every compiled function (identical-binary detection).
uint64_t hashCodeCache(const vm::CodeCache &Code) {
  uint64_t H = 1469598103934665603ULL;
  auto Mix = [&H](uint64_t V) {
    H ^= V;
    H *= 1099511628211ULL;
  };
  for (const auto &KV : Code.functions()) {
    Mix(KV.first);
    const vm::MachineFunction &Fn = *KV.second;
    Mix(Fn.NumRegs);
    for (const vm::MInsn &I : Fn.Code) {
      Mix(static_cast<uint64_t>(I.Op));
      Mix((uint64_t(I.A) << 32) | (uint64_t(I.B) << 16) | I.C);
      Mix(static_cast<uint64_t>(I.Target) | (uint64_t(I.Idx) << 32));
      Mix(static_cast<uint64_t>(I.ImmI));
      uint64_t FBits;
      static_assert(sizeof(FBits) == sizeof(I.ImmF), "bitcast");
      __builtin_memcpy(&FBits, &I.ImmF, sizeof(FBits));
      Mix(FBits);
      Mix(static_cast<uint64_t>(I.Hint) + 2);
      for (unsigned A = 0; A != I.ArgCount; ++A)
        Mix(I.Args[A]);
    }
  }
  return H;
}

} // namespace

search::Evaluation RegionEvaluator::evaluateCache(const vm::CodeCache &Code) {
  search::Evaluation E;
  E.CodeSize = Code.totalSizeBytes();
  E.BinaryHash = hashCodeCache(Code);

  // One verified replay per capture classifies the binary — wrong on any
  // input means wrong. Replays are cycle-exact, so the paper's 10
  // measurement replays become 10 noise draws around the measured cycle
  // count (documented substitution).
  double Cycles = 0.0;
  for (const CaptureRef &C : Caps) {
    replay::ReplayResult Out;
    bool Verified = Rep.verifiedReplay(*C.Cap, Code, *C.Map, Out);
    if (Out.Result.Trap == vm::TrapKind::Timeout) {
      E.Kind = search::EvalKind::RuntimeTimeout;
      ++Stats.RuntimeTimeout;
      return E;
    }
    if (Out.Result.Trap != vm::TrapKind::None) {
      E.Kind = search::EvalKind::RuntimeCrash;
      ++Stats.RuntimeCrash;
      return E;
    }
    if (!Verified) {
      E.Kind = search::EvalKind::WrongOutput;
      ++Stats.WrongOutput;
      return E;
    }
    Cycles += static_cast<double>(Out.Result.Cycles);
  }

  E.Kind = search::EvalKind::Ok;
  ++Stats.Ok;
  E.Samples = Config.Noise.offlineSamples(
      NoiseRng, Cycles,
      static_cast<size_t>(Config.ReplaysPerEvaluation));
  E.Samples = removeOutliersMAD(E.Samples);
  E.MedianCycles = median(E.Samples);
  return E;
}

std::optional<vm::CodeCache>
RegionEvaluator::compileRegion(const search::Genome &G) {
  ROPT_TRACE_SPAN("compile.region");
  lir::CompileOptions Options;
  Options.Pipeline = G.Passes;
  Options.RegAlloc = G.RegAlloc;
  Options.SizeBudget = Config.CompileSizeBudget;
  vm::CodeCache Code;
  lir::CompileStatus Status = lir::compileAllLlvm(
      *App.File, Region.Methods, Options, Code, &Profile);
  if (Status != lir::CompileStatus::Ok)
    return std::nullopt;
  return Code;
}

search::Evaluation RegionEvaluator::evaluate(const search::Genome &G) {
  std::optional<vm::CodeCache> Code = compileRegion(G);
  if (!Code) {
    search::Evaluation E;
    E.Kind = search::EvalKind::CompileError;
    ++Stats.CompileError;
    return E;
  }
  return evaluateCache(*Code);
}

search::Evaluation RegionEvaluator::evaluatePipeline(
    const std::vector<lir::PassInstance> &Pipeline,
    hgraph::RegAllocKind RegAlloc) {
  search::Genome G;
  G.Passes = Pipeline;
  G.RegAlloc = RegAlloc;
  return evaluate(G);
}

search::Evaluation RegionEvaluator::evaluateAndroid() {
  vm::CodeCache Code;
  hgraph::compileAllAndroid(*App.File, Region.Methods, Code);
  return evaluateCache(Code);
}

// --- OptimizationReport -----------------------------------------------------------

double OptimizationReport::speedupGaOverAndroid() const {
  if (WholeGa.empty() || WholeAndroid.empty())
    return 0.0;
  return mean(WholeAndroid) / mean(WholeGa);
}

double OptimizationReport::speedupO3OverAndroid() const {
  if (WholeO3.empty() || WholeAndroid.empty())
    return 0.0;
  return mean(WholeAndroid) / mean(WholeO3);
}

double OptimizationReport::speedupGaOverO3() const {
  if (WholeGa.empty() || WholeO3.empty())
    return 0.0;
  return mean(WholeO3) / mean(WholeGa);
}

// --- IterativeCompiler ----------------------------------------------------------

IterativeCompiler::ProfiledApp
IterativeCompiler::profileApp(const workloads::Application &App) {
  ROPT_TRACE_SPAN("pipeline.profile");
  ProfiledApp Out{
      std::make_unique<AppInstance>(App, Config.Seed,
                                    /*AttributeCycles=*/true),
      profiler::ReplayabilityAnalysis::analyze(*App.File),
      {},
      std::nullopt,
      {}};
  for (int I = 0; I != Config.ProfileSessions; ++I) {
    vm::CallResult R = Out.Instance->runSession(App.DefaultParam + I);
    assert(R.ok() && "profiling session trapped");
    (void)R;
  }
  Out.Profile = profiler::MethodProfile::fromRuntime(Out.Instance->runtime());
  Out.Region = profiler::detectHotRegion(*App.File, Out.Profile, Out.RA);
  Out.Breakdown = profiler::computeBreakdown(
      *App.File, Out.Profile, Out.RA,
      Out.Region ? &*Out.Region : nullptr);
  return Out;
}

std::optional<IterativeCompiler::CapturedRegion>
IterativeCompiler::captureRegion(AppInstance &Instance,
                                 const profiler::HotRegion &Region,
                                 int SessionOffset) {
  ROPT_TRACE_SPAN("pipeline.capture");
  capture::CaptureManager CM(Instance.kernel(), Instance.process(),
                             Instance.runtime(), Config.KernelCosts);
  CM.armCapture(Region.Root);
  // Captures are postponed while GC is imminent; a handful of sessions is
  // always enough opportunity (Section 3.2: "plenty of opportunities").
  const workloads::Application &App = Instance.app();
  for (int Attempt = 0; Attempt != 32 && !CM.captureReady(); ++Attempt) {
    vm::CallResult R =
        Instance.runSession(App.DefaultParam + 100 + SessionOffset + Attempt);
    if (!R.ok())
      return std::nullopt;
  }
  if (!CM.captureReady())
    return std::nullopt;

  CapturedRegion Out;
  Out.Postponements = CM.postponedCount();
  Out.Cap = *CM.takeCapture();
  CM.spoolToStorage(Out.Cap, App.Name);

  vm::NativeRegistry Natives = vm::NativeRegistry::standardLibrary();
  replay::Replayer Rep(*App.File, Natives, App.RtConfig,
                       Config.Seed ^ 0x1e91a);
  replay::InterpretedReplayResult IR = Rep.interpretedReplay(Out.Cap);
  if (!IR.Replay.Result.ok())
    return std::nullopt;
  Out.Map = std::move(IR.Map);
  Out.Profile = std::move(IR.Profile);
  return Out;
}

std::vector<IterativeCompiler::CapturedRegion>
IterativeCompiler::captureRegionMulti(AppInstance &Instance,
                                      const profiler::HotRegion &Region,
                                      int Count) {
  std::vector<CapturedRegion> Out;
  for (int I = 0; I != Count; ++I) {
    std::optional<CapturedRegion> C =
        captureRegion(Instance, Region, I * 37);
    if (!C)
      break;
    Out.push_back(std::move(*C));
  }
  return Out;
}

OptimizationReport
IterativeCompiler::optimize(const workloads::Application &App) {
  ROPT_TRACE_SPAN("pipeline.optimize");
  ROPT_METRIC_INC("pipeline.runs");
  OptimizationReport Report;
  Report.AppName = App.Name;

  // --- Phases 1-2: online profile + hot region (Section 3.1). ----------
  ProfiledApp Profiled = profileApp(App);
  Report.Breakdown = Profiled.Breakdown;
  if (!Profiled.Region) {
    Report.FailureReason = "no replayable hot region";
    ROPT_METRIC_INC("pipeline.failures");
    return Report;
  }
  Report.Region = *Profiled.Region;

  // --- Phase 3: transparent capture + interpreted replay (3.2-3.4). ----
  std::vector<CapturedRegion> Captures = captureRegionMulti(
      *Profiled.Instance, Report.Region,
      std::max(1, Config.CapturesPerRegion));
  if (Captures.empty()) {
    Report.FailureReason = "capture failed";
    ROPT_METRIC_INC("pipeline.failures");
    return Report;
  }
  Report.Cap = Captures.front().Cap;
  Report.CapturePostponements = Captures.front().Postponements;

  // --- Phase 4: the GA over the transformation space (3.6-3.7). --------
  RegionEvaluator Evaluator(App, Report.Region, Captures, Config);
  std::optional<search::Scored> Best;
  {
    ROPT_TRACE_SPAN("pipeline.search");
    search::Evaluation Android = Evaluator.evaluateAndroid();
    search::Evaluation O3 = Evaluator.evaluatePipeline(lir::o3Pipeline());
    if (!Android.ok()) {
      Report.FailureReason = "android baseline replay failed";
      ROPT_METRIC_INC("pipeline.failures");
      return Report;
    }
    Report.RegionAndroid = Android.MedianCycles;
    Report.RegionO3 = O3.ok() ? O3.MedianCycles : 0.0;

    search::GeneticSearch GA(
        Config.GA, Config.Seed ^ 0x6a5e,
        [&Evaluator](const search::Genome &G) {
          return Evaluator.evaluate(G);
        });
    Best = GA.run(Android.MedianCycles,
                  O3.ok() ? O3.MedianCycles : Android.MedianCycles,
                  &Report.Trace);
  }
  Report.Counters = Evaluator.counters();
  if (!Best) {
    Report.FailureReason = "search produced no valid binary";
    ROPT_METRIC_INC("pipeline.failures");
    return Report;
  }
  Report.Best = *Best;
  Report.RegionBest = Best->E.MedianCycles;

  // --- Phase 5: install + whole-program measurement outside replay. ----
  ROPT_TRACE_SPAN("pipeline.install_measure");
  std::optional<vm::CodeCache> BestCode =
      Evaluator.compileRegion(Best->G);
  assert(BestCode && "winning genome stopped compiling");

  lir::CompileOptions O3Options;
  O3Options.Pipeline = lir::o3Pipeline();
  vm::CodeCache O3Code;
  lir::compileAllLlvm(*App.File, Report.Region.Methods, O3Options, O3Code,
                      &Captures.front().Profile);

  Rng NoiseRng(Config.Seed ^ 0x0911e);
  auto MeasureVariant =
      [&](const vm::CodeCache *Override) -> std::vector<double> {
    AppInstance Fresh(App, Config.Seed + 7);
    if (Override)
      Fresh.overrideRegionCode(Report.Region.Methods, *Override);
    uint64_t Block = Fresh.runSessionBlock(Config.FinalSessionBlock,
                                           App.DefaultParam);
    if (Block == 0)
      return {};
    std::vector<double> Samples;
    for (int I = 0; I != Config.FinalMeasurementRuns; ++I)
      Samples.push_back(
          Config.Noise.online(NoiseRng, static_cast<double>(Block)));
    return Samples;
  };
  Report.WholeAndroid = MeasureVariant(nullptr);
  Report.WholeO3 = MeasureVariant(&O3Code);
  Report.WholeGa = MeasureVariant(&*BestCode);

  Report.Succeeded = !Report.WholeAndroid.empty() &&
                     !Report.WholeGa.empty();
  if (!Report.Succeeded) {
    Report.FailureReason = "final measurement failed";
    ROPT_METRIC_INC("pipeline.failures");
  }
  return Report;
}
