//===- core/IterativeCompiler.cpp - The replay-based main loop --------------===//

#include "core/IterativeCompiler.h"

#include "hgraph/AndroidCompiler.h"
#include "support/Metrics.h"
#include "support/Statistics.h"
#include "support/Trace.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace ropt;
using namespace ropt::core;

PipelineConfig PipelineConfig::paperDefaults() {
  // The member initializers are the Section 4 values already; the named
  // constructor exists so call sites say which configuration they mean.
  return PipelineConfig{};
}

search::GaConfig core::scaledGaConfig(const search::GaConfig &Base,
                                      double Scale) {
  if (Scale >= 1.0)
    return Base;
  search::GaConfig Out = Base;
  double Axis = std::sqrt(std::max(Scale, 0.0));
  Out.Generations = std::max(
      2, static_cast<int>(std::lround(Base.Generations * Axis)));
  Out.PopulationSize = std::max(
      8, static_cast<int>(std::lround(Base.PopulationSize * Axis)));
  Out.TournamentSize = std::min(Out.TournamentSize, Out.PopulationSize);
  Out.EliteCount = std::min(Out.EliteCount, Out.PopulationSize - 1);
  Out.HillClimbRounds = std::min(Out.HillClimbRounds, Out.Generations);
  return Out;
}

// --- RegionEvaluator ----------------------------------------------------------

RegionEvaluator::RegionEvaluator(const workloads::Application &App,
                                 const profiler::HotRegion &Region,
                                 const capture::Capture &Cap,
                                 const replay::VerificationMap &Map,
                                 const lir::TypeProfile &Profile,
                                 const PipelineConfig &Config)
    : App(App), Region(Region), Profile(Profile), Config(Config),
      Natives(vm::NativeRegistry::standardLibrary()),
      Rep(*App.File, Natives, App.RtConfig, Config.Seed ^ 0xa51f),
      NoiseRng(Config.Seed ^ 0x90153) {
  Caps.push_back(CaptureRef{&Cap, &Map});
  Rep.setSessionMode(Config.Search.SessionBackends);
}

RegionEvaluator::RegionEvaluator(
    const workloads::Application &App, const profiler::HotRegion &Region,
    const std::vector<CapturedRegion> &Captures,
    const PipelineConfig &Config)
    : App(App), Region(Region), Config(Config),
      Natives(vm::NativeRegistry::standardLibrary()),
      Rep(*App.File, Natives, App.RtConfig, Config.Seed ^ 0xa51f),
      NoiseRng(Config.Seed ^ 0x90153) {
  assert(!Captures.empty() && "need at least one capture");
  for (const CapturedRegion &C : Captures) {
    Caps.push_back(CaptureRef{&C.Cap, &C.Map});
    Profile.merge(C.Profile);
  }
  Rep.setSessionMode(Config.Search.SessionBackends);
}

search::ReplayBackendStats RegionEvaluator::replayStats() const {
  const replay::SessionStats &S = Rep.sessionStats();
  search::ReplayBackendStats R;
  R.SessionsCreated = S.SessionsCreated;
  R.SessionReplays = S.SessionReplays;
  R.FreshReplays = S.FreshReplays;
  R.DeltaResets = S.DeltaResets;
  R.PagesReverted = S.PagesReverted;
  R.FullRebuilds = S.FullRebuilds;
  return R;
}

namespace {

/// Content hash over every compiled function (identical-binary detection).
uint64_t hashCodeCache(const vm::CodeCache &Code) {
  uint64_t H = 1469598103934665603ULL;
  auto Mix = [&H](uint64_t V) {
    H ^= V;
    H *= 1099511628211ULL;
  };
  for (const auto &KV : Code.functions()) {
    Mix(KV.first);
    const vm::MachineFunction &Fn = *KV.second;
    Mix(Fn.NumRegs);
    for (const vm::MInsn &I : Fn.Code) {
      Mix(static_cast<uint64_t>(I.Op));
      Mix((uint64_t(I.A) << 32) | (uint64_t(I.B) << 16) | I.C);
      Mix(static_cast<uint64_t>(I.Target) | (uint64_t(I.Idx) << 32));
      Mix(static_cast<uint64_t>(I.ImmI));
      uint64_t FBits;
      static_assert(sizeof(FBits) == sizeof(I.ImmF), "bitcast");
      __builtin_memcpy(&FBits, &I.ImmF, sizeof(FBits));
      Mix(FBits);
      Mix(static_cast<uint64_t>(I.Hint) + 2);
      for (unsigned A = 0; A != I.ArgCount; ++A)
        Mix(I.Args[A]);
    }
  }
  return H;
}

} // namespace

bool RegionEvaluator::verifyCache(const vm::CodeCache &Code,
                                  search::Evaluation &E) {
  E.CodeSize = Code.totalSizeBytes();
  E.BinaryHash = hashCodeCache(Code);

  // One verified replay per capture classifies the binary — wrong on any
  // input means wrong. Replays are cycle-exact, so measurement replays
  // become noise draws around the measured cycle count (documented
  // substitution).
  double Cycles = 0.0;
  for (const CaptureRef &C : Caps) {
    support::Result<replay::ReplayResult> R =
        Rep.verifiedReplay(*C.Cap, Code, *C.Map);
    if (!R) {
      E.Kind = search::evalKindForError(R.error().Code);
      E.Error = R.error().Code;
      Stats.count(E.Kind);
      return false;
    }
    Cycles += static_cast<double>(R.value().Result.Cycles);
  }

  E.Kind = search::EvalKind::Ok;
  E.BaseCycles = Cycles;
  Stats.count(E.Kind);
  return true;
}

search::Evaluation RegionEvaluator::evaluateCache(const vm::CodeCache &Code,
                                                  Rng &Noise) {
  search::Evaluation E;
  if (!verifyCache(Code, E))
    return E;
  E.Samples = Config.Measure.Noise.offlineSamples(
      Noise, E.BaseCycles,
      static_cast<size_t>(Config.Search.MaxReplaysPerEvaluation));
  E.SamplesSpent = static_cast<int>(E.Samples.size());
  E.Samples = removeOutliersMAD(E.Samples);
  E.MedianCycles = median(E.Samples);
  return E;
}

std::optional<vm::CodeCache>
RegionEvaluator::compileRegion(const search::Genome &G) {
  ROPT_TRACE_SPAN("compile.region");
  lir::CompileOptions Options;
  Options.Pipeline = G.Passes;
  Options.RegAlloc = G.RegAlloc;
  Options.SizeBudget = Config.Search.CompileSizeBudget;
  vm::CodeCache Code;
  lir::CompileStatus Status = lir::compileAllLlvm(
      *App.File, Region.Methods, Options, Code, &Profile);
  if (Status != lir::CompileStatus::Ok)
    return std::nullopt;
  return Code;
}

search::CompiledBinary
RegionEvaluator::compileGenome(const search::Genome &G) {
  search::CompiledBinary B;
  std::optional<vm::CodeCache> Code = compileRegion(G);
  if (!Code)
    return B;
  B.Ok = true;
  B.BinaryHash = hashCodeCache(*Code);
  B.CodeSize = Code->totalSizeBytes();
  B.Artifact = std::make_shared<const vm::CodeCache>(std::move(*Code));
  return B;
}

search::Evaluation
RegionEvaluator::measureBinary(const search::CompiledBinary &B,
                               uint64_t NoiseSeed, size_t SampleCount) {
  assert(B.Ok && B.Artifact && "measuring a failed compile");
  const vm::CodeCache &Code =
      *static_cast<const vm::CodeCache *>(B.Artifact.get());
  search::Evaluation E;
  if (!verifyCache(Code, E))
    return E;
  // Raw samples, indexed draws: the engine owns outlier removal and may
  // extend the block later without re-verifying.
  E.Samples = Config.Measure.Noise.offlineSampleRange(NoiseSeed,
                                                      E.BaseCycles,
                                                      /*Begin=*/0,
                                                      SampleCount);
  E.SamplesSpent = static_cast<int>(E.Samples.size());
  E.MedianCycles = median(removeOutliersMAD(E.Samples));
  return E;
}

std::vector<double>
RegionEvaluator::extendSamples(const search::Evaluation &E,
                               uint64_t NoiseSeed, size_t Begin,
                               size_t Count) {
  return Config.Measure.Noise.offlineSampleRange(NoiseSeed, E.BaseCycles,
                                                 Begin, Count);
}

search::Evaluation RegionEvaluator::evaluate(const search::Genome &G) {
  std::optional<vm::CodeCache> Code = compileRegion(G);
  if (!Code) {
    search::Evaluation E;
    E.Kind = search::EvalKind::CompileError;
    E.Error = support::ErrorCode::CompileFailed;
    Stats.count(E.Kind);
    return E;
  }
  return evaluateCache(*Code, NoiseRng);
}

search::Evaluation RegionEvaluator::evaluatePipeline(
    const std::vector<lir::PassInstance> &Pipeline,
    hgraph::RegAllocKind RegAlloc) {
  search::Genome G;
  G.Passes = Pipeline;
  G.RegAlloc = RegAlloc;
  return evaluate(G);
}

search::Evaluation RegionEvaluator::evaluateAndroid() {
  vm::CodeCache Code;
  hgraph::compileAllAndroid(*App.File, Region.Methods, Code);
  return evaluateCache(Code, NoiseRng);
}

// --- OptimizationReport -----------------------------------------------------------

double OptimizationReport::speedupGaOverAndroid() const {
  if (WholeGa.empty() || WholeAndroid.empty())
    return 0.0;
  return mean(WholeAndroid) / mean(WholeGa);
}

double OptimizationReport::speedupO3OverAndroid() const {
  if (WholeO3.empty() || WholeAndroid.empty())
    return 0.0;
  return mean(WholeAndroid) / mean(WholeO3);
}

double OptimizationReport::speedupGaOverO3() const {
  if (WholeGa.empty() || WholeO3.empty())
    return 0.0;
  return mean(WholeO3) / mean(WholeGa);
}

// --- IterativeCompiler ----------------------------------------------------------

IterativeCompiler::ProfiledApp
IterativeCompiler::profileApp(const workloads::Application &App) {
  ROPT_TRACE_SPAN("pipeline.profile");
  ProfiledApp Out{
      std::make_unique<AppInstance>(App, Config.Seed,
                                    /*AttributeCycles=*/true),
      profiler::ReplayabilityAnalysis::analyze(*App.File),
      {},
      std::nullopt,
      {}};
  for (int I = 0; I != Config.Capture.ProfileSessions; ++I) {
    vm::CallResult R = Out.Instance->runSession(App.DefaultParam + I);
    assert(R.ok() && "profiling session trapped");
    (void)R;
  }
  Out.Profile = profiler::MethodProfile::fromRuntime(Out.Instance->runtime());
  Out.Region = profiler::detectHotRegion(*App.File, Out.Profile, Out.RA);
  Out.Breakdown = profiler::computeBreakdown(
      *App.File, Out.Profile, Out.RA,
      Out.Region ? &*Out.Region : nullptr);
  return Out;
}

std::optional<IterativeCompiler::CapturedRegion>
IterativeCompiler::captureRegion(AppInstance &Instance,
                                 const profiler::HotRegion &Region,
                                 int SessionOffset) {
  ROPT_TRACE_SPAN("pipeline.capture");
  capture::CaptureManager CM(Instance.kernel(), Instance.process(),
                             Instance.runtime(),
                             Config.Capture.KernelCosts);
  CM.armCapture(Region.Root);
  // Captures are postponed while GC is imminent; a handful of sessions is
  // always enough opportunity (Section 3.2: "plenty of opportunities").
  const workloads::Application &App = Instance.app();
  for (int Attempt = 0; Attempt != 32 && !CM.captureReady(); ++Attempt) {
    vm::CallResult R =
        Instance.runSession(App.DefaultParam + 100 + SessionOffset + Attempt);
    if (!R.ok())
      return std::nullopt;
  }

  CapturedRegion Out;
  Out.Postponements = CM.postponedCount();
  support::Result<capture::Capture> Taken = CM.takeCapture();
  if (!Taken)
    return std::nullopt;
  Out.Cap = std::move(Taken).value();
  CM.spoolToStorage(Out.Cap, App.Name);

  vm::NativeRegistry Natives = vm::NativeRegistry::standardLibrary();
  replay::Replayer Rep(*App.File, Natives, App.RtConfig,
                       Config.Seed ^ 0x1e91a);
  support::Result<replay::InterpretedReplayResult> IR =
      Rep.interpretedReplay(Out.Cap);
  if (!IR)
    return std::nullopt;
  Out.Map = std::move(IR.value().Map);
  Out.Profile = std::move(IR.value().Profile);
  return Out;
}

std::vector<IterativeCompiler::CapturedRegion>
IterativeCompiler::captureRegionMulti(AppInstance &Instance,
                                      const profiler::HotRegion &Region,
                                      int Count) {
  std::vector<CapturedRegion> Out;
  for (int I = 0; I != Count; ++I) {
    std::optional<CapturedRegion> C =
        captureRegion(Instance, Region, I * 37);
    if (!C)
      break;
    Out.push_back(std::move(*C));
  }
  return Out;
}

OptimizationReport
IterativeCompiler::optimize(const workloads::Application &App) {
  ROPT_TRACE_SPAN("pipeline.optimize");
  ROPT_METRIC_INC("pipeline.runs");
  OptimizationReport Report;
  Report.AppName = App.Name;

  // --- Phases 1-2: online profile + hot region (Section 3.1). ----------
  ProfiledApp Profiled = profileApp(App);
  Report.Breakdown = Profiled.Breakdown;

  // The observability loop's decision data: candidate regions, features,
  // labels, slack, budget shares. Pure function of the profile, so it is
  // identical at any --jobs and costs microseconds — always computed.
  Report.Analysis =
      analysis::analyzeApp(*App.File, Profiled.Profile, Profiled.RA);

  if (Config.ForceRegionRoot != dex::InvalidId) {
    // Multi-region harnesses point the pipeline at a specific candidate.
    profiler::HotRegion Forced;
    Forced.Root = Config.ForceRegionRoot;
    Forced.Methods =
        profiler::compilableRegion(*App.File, Profiled.RA,
                                   Config.ForceRegionRoot);
    for (dex::MethodId Id : Forced.Methods)
      if (Id < Profiled.Profile.ExclusiveCycles.size())
        Forced.EstimatedCycles += Profiled.Profile.ExclusiveCycles[Id];
    if (Forced.Methods.empty() || Forced.EstimatedCycles == 0) {
      Report.FailureReason = "forced region root has no profiled closure";
      ROPT_METRIC_INC("pipeline.failures");
      return Report;
    }
    Report.Region = std::move(Forced);
  } else if (Profiled.Region) {
    Report.Region = *Profiled.Region;
  } else {
    Report.FailureReason = "no replayable hot region";
    ROPT_METRIC_INC("pipeline.failures");
    return Report;
  }

  // --- Phase 3: transparent capture + interpreted replay (3.2-3.4). ----
  std::vector<CapturedRegion> Captures = captureRegionMulti(
      *Profiled.Instance, Report.Region,
      std::max(1, Config.Capture.CapturesPerRegion));
  if (Captures.empty()) {
    Report.FailureReason = "capture failed";
    ROPT_METRIC_INC("pipeline.failures");
    return Report;
  }
  Report.Cap = Captures.front().Cap;
  Report.CapturePostponements = Captures.front().Postponements;

  // --- Phase 4: the GA over the transformation space (3.6-3.7). --------
  // Baselines and the final install run on a serial evaluator; the GA's
  // batches run through the engine, which owns one RegionEvaluator per
  // worker and memoizes duplicate genomes/binaries.
  RegionEvaluator Baselines(App, Report.Region, Captures, Config);
  search::EngineOptions EngineOpts;
  EngineOpts.Jobs = Config.Search.Jobs;
  EngineOpts.Memoize = Config.Search.Memoize;
  EngineOpts.Racing = Config.Search.Racing;
  EngineOpts.MinReplays = Config.Search.MinReplaysPerEvaluation;
  EngineOpts.MaxReplays = Config.Search.MaxReplaysPerEvaluation;
  EngineOpts.RacingAlpha = Config.Search.GA.SignificanceAlpha;
  search::EvaluationEngine Engine(
      [&App, &Report, &Captures, this]() {
        return std::make_unique<RegionEvaluator>(App, Report.Region,
                                                 Captures, Config);
      },
      EngineOpts, Config.Seed);

  std::optional<search::Scored> Best;
  {
    ROPT_TRACE_SPAN("pipeline.search");
    search::Evaluation Android = Baselines.evaluateAndroid();
    search::Evaluation O3 = Baselines.evaluatePipeline(lir::o3Pipeline());
    if (!Android.ok()) {
      Report.FailureReason = "android baseline replay failed";
      ROPT_METRIC_INC("pipeline.failures");
      return Report;
    }
    Report.RegionAndroid = Android.MedianCycles;
    Report.RegionO3 = O3.ok() ? O3.MedianCycles : 0.0;

    // Criticality-weighted allocation: the slack-0 region keeps the full
    // configuration bit-for-bit; cooler regions search a scaled-down
    // budget with the label's pruned arms masked out.
    search::GaConfig GaCfg = Config.Search.GA;
    if (Config.Search.AnalysisGuided) {
      if (const analysis::RegionReport *R =
              Report.Analysis.byRoot(Report.Region.Root)) {
        Report.AppliedBudgetScale = R->BudgetScale;
        GaCfg = scaledGaConfig(GaCfg, R->BudgetScale);
        if (R->Slack > 0)
          GaCfg.Genomes.DisabledPassMask |=
              analysis::prunedPassMask(R->Label);
        Report.AppliedPassMask = GaCfg.Genomes.DisabledPassMask;
      }
    }

    search::GeneticSearch GA(GaCfg, Config.Seed ^ 0x6a5e,
                             Engine, Config.Provenance);
    if (!Config.Search.WarmStart.empty())
      GA.seedPopulation(Config.Search.WarmStart);
    Best = GA.run(Android.MedianCycles,
                  O3.ok() ? O3.MedianCycles : Android.MedianCycles,
                  &Report.Trace);
  }
  Report.Counters = Engine.counters();
  Report.Counters += Baselines.counters();
  Report.CacheStats = Engine.cacheStats();
  Report.RacingStats = Engine.racingStats();
  Report.ReplayBackend = Engine.replayBackendStats();
  Report.ReplayBackend += Baselines.replayStats();
  if (!Best) {
    Report.FailureReason = "search produced no valid binary";
    ROPT_METRIC_INC("pipeline.failures");
    return Report;
  }
  Report.Best = *Best;
  Report.RegionBest = Best->E.MedianCycles;

  // --- Phase 5: install + whole-program measurement outside replay. ----
  ROPT_TRACE_SPAN("pipeline.install_measure");
  std::optional<vm::CodeCache> BestCode =
      Baselines.compileRegion(Best->G);
  assert(BestCode && "winning genome stopped compiling");

  lir::CompileOptions O3Options;
  O3Options.Pipeline = lir::o3Pipeline();
  vm::CodeCache O3Code;
  lir::compileAllLlvm(*App.File, Report.Region.Methods, O3Options, O3Code,
                      &Captures.front().Profile);

  Rng NoiseRng(Config.Seed ^ 0x0911e);
  auto MeasureVariant =
      [&](const vm::CodeCache *Override) -> std::vector<double> {
    AppInstance Fresh(App, Config.Seed + 7);
    if (Override)
      Fresh.overrideRegionCode(Report.Region.Methods, *Override);
    uint64_t Block = Fresh.runSessionBlock(Config.Measure.FinalSessionBlock,
                                           App.DefaultParam);
    if (Block == 0)
      return {};
    std::vector<double> Samples;
    for (int I = 0; I != Config.Measure.FinalMeasurementRuns; ++I)
      Samples.push_back(Config.Measure.Noise.online(
          NoiseRng, static_cast<double>(Block)));
    return Samples;
  };
  Report.WholeAndroid = MeasureVariant(nullptr);
  Report.WholeO3 = MeasureVariant(&O3Code);
  Report.WholeGa = MeasureVariant(&*BestCode);

  Report.Succeeded = !Report.WholeAndroid.empty() &&
                     !Report.WholeGa.empty();
  if (!Report.Succeeded) {
    Report.FailureReason = "final measurement failed";
    ROPT_METRIC_INC("pipeline.failures");
  }
  return Report;
}
