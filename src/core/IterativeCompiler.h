//===- core/IterativeCompiler.h - The replay-based main loop ----*- C++ -*-===//
//
// Part of ReplayOpt (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The system of Figure 6, end to end: profile online -> detect the hot
/// region -> capture transparently -> interpreted replay (verification map
/// + type profile) -> GA over the LLVM transformation space with
/// replay-based fitness and verification-map rejection -> install the best
/// binary -> measure whole-program speedups outside the replay
/// environment. Also exposes the per-genome RegionEvaluator the Figure
/// 1/2/9 experiments reuse.
///
//===----------------------------------------------------------------------===//

#ifndef ROPT_CORE_ITERATIVE_COMPILER_H
#define ROPT_CORE_ITERATIVE_COMPILER_H

#include "capture/CaptureManager.h"
#include "core/AppInstance.h"
#include "core/Measurement.h"
#include "lir/Backend.h"
#include "profiler/HotRegion.h"
#include "replay/Replayer.h"
#include "search/GeneticSearch.h"

#include <optional>

namespace ropt {
namespace core {

/// Pipeline configuration (paper defaults, Section 4).
struct PipelineConfig {
  uint64_t Seed = 1;
  search::GaConfig GA;
  int ReplaysPerEvaluation = 10;
  /// Captures taken per region; >1 evaluates genomes across several real
  /// inputs (the paper's §5.4 multi-capture setting).
  int CapturesPerRegion = 1;
  int ProfileSessions = 6;
  int FinalSessionBlock = 3;      ///< Sessions per whole-program sample.
  int FinalMeasurementRuns = 10;
  MeasurementModel Noise;
  os::KernelCostModel KernelCosts;
  size_t CompileSizeBudget = 2000;
};

/// One captured region with its interpreted-replay artifacts.
struct CapturedRegion {
  capture::Capture Cap;
  replay::VerificationMap Map;
  lir::TypeProfile Profile;
  uint64_t Postponements = 0;
};

/// Evaluates one optimization decision against one or more captures:
/// compile, verify through replay (against *every* capture — a binary that
/// is only right for some inputs is wrong), measure. This is the GA's
/// fitness callback and the random-search experiments' engine. Multiple
/// captures per region are the paper's §5.4 "realistic system" setting and
/// guard the search against overfitting to a single input.
class RegionEvaluator {
public:
  /// Single-capture constructor (the paper's default configuration).
  RegionEvaluator(const workloads::Application &App,
                  const profiler::HotRegion &Region,
                  const capture::Capture &Cap,
                  const replay::VerificationMap &Map,
                  const lir::TypeProfile &Profile,
                  const PipelineConfig &Config);

  /// Multi-capture constructor; \p Captures must outlive the evaluator.
  RegionEvaluator(const workloads::Application &App,
                  const profiler::HotRegion &Region,
                  const std::vector<CapturedRegion> &Captures,
                  const PipelineConfig &Config);

  /// GA hook: compile with the genome, verify, sample timings.
  search::Evaluation evaluate(const search::Genome &G);

  /// Evaluates an explicit pipeline (the -O presets).
  search::Evaluation
  evaluatePipeline(const std::vector<lir::PassInstance> &Pipeline,
                   hgraph::RegAllocKind RegAlloc =
                       hgraph::RegAllocKind::LinearScan);

  /// Evaluates the stock Android binary of the region.
  search::Evaluation evaluateAndroid();

  /// Compiles the region with \p G without evaluating (for installs).
  /// Returns nullopt when compilation fails.
  std::optional<vm::CodeCache> compileRegion(const search::Genome &G);

  struct Counters {
    int Ok = 0;
    int CompileError = 0;
    int RuntimeCrash = 0;
    int RuntimeTimeout = 0;
    int WrongOutput = 0;
    int total() const {
      return Ok + CompileError + RuntimeCrash + RuntimeTimeout +
             WrongOutput;
    }
  };
  const Counters &counters() const { return Stats; }

private:
  search::Evaluation evaluateCache(const vm::CodeCache &Code);

  struct CaptureRef {
    const capture::Capture *Cap;
    const replay::VerificationMap *Map;
  };

  const workloads::Application &App;
  const profiler::HotRegion &Region;
  std::vector<CaptureRef> Caps;
  lir::TypeProfile Profile; ///< Merged across captures.
  const PipelineConfig &Config;
  vm::NativeRegistry Natives;
  replay::Replayer Rep;
  Rng NoiseRng;
  Counters Stats;
};

/// Everything the pipeline produced for one application.
struct OptimizationReport {
  std::string AppName;
  bool Succeeded = false;
  std::string FailureReason;

  profiler::HotRegion Region;
  profiler::CodeBreakdown Breakdown;
  capture::Capture Cap;
  uint64_t CapturePostponements = 0;

  /// Region-level replay medians (cycles).
  double RegionAndroid = 0.0;
  double RegionO3 = 0.0;
  double RegionBest = 0.0;

  search::Scored Best;
  search::GaTrace Trace;
  RegionEvaluator::Counters Counters;

  /// Whole-program session samples, measured outside the replay
  /// environment (online noise included).
  std::vector<double> WholeAndroid;
  std::vector<double> WholeO3;
  std::vector<double> WholeGa;

  double speedupGaOverAndroid() const;
  double speedupO3OverAndroid() const;
  double speedupGaOverO3() const;
};

/// The orchestrator.
class IterativeCompiler {
public:
  explicit IterativeCompiler(PipelineConfig Config) : Config(Config) {}

  /// Runs the full pipeline on one application.
  OptimizationReport optimize(const workloads::Application &App);

  /// Pieces, exposed for the experiment harnesses: profile the app and
  /// detect its region (phase 1-2)...
  struct ProfiledApp {
    std::unique_ptr<AppInstance> Instance;
    profiler::ReplayabilityAnalysis RA;
    profiler::MethodProfile Profile;
    std::optional<profiler::HotRegion> Region;
    profiler::CodeBreakdown Breakdown;
  };
  ProfiledApp profileApp(const workloads::Application &App);

  /// ...and capture its hot region (phase 3), returning the capture plus
  /// the interpreted replay artifacts.
  using CapturedRegion = core::CapturedRegion;
  /// \p SessionOffset shifts the scripted session parameters so distinct
  /// captures snapshot distinct user inputs.
  std::optional<CapturedRegion>
  captureRegion(AppInstance &Instance, const profiler::HotRegion &Region,
                int SessionOffset = 0);

  /// Takes \p Count captures of the region across distinct sessions.
  std::vector<CapturedRegion>
  captureRegionMulti(AppInstance &Instance,
                     const profiler::HotRegion &Region, int Count);

  const PipelineConfig &config() const { return Config; }

private:
  PipelineConfig Config;
};

} // namespace core
} // namespace ropt

#endif // ROPT_CORE_ITERATIVE_COMPILER_H
