//===- core/IterativeCompiler.h - The replay-based main loop ----*- C++ -*-===//
//
// Part of ReplayOpt (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The system of Figure 6, end to end: profile online -> detect the hot
/// region -> capture transparently -> interpreted replay (verification map
/// + type profile) -> GA over the LLVM transformation space with
/// replay-based fitness and verification-map rejection -> install the best
/// binary -> measure whole-program speedups outside the replay
/// environment.
///
/// Fitness runs through search::EvaluationEngine: the pipeline hands the
/// engine a factory for RegionEvaluator backends (one per worker, each
/// with its own replay sandbox) and the engine parallelizes and memoizes
/// the GA's batches. RegionEvaluator remains directly usable as the
/// serial per-genome evaluator for the ablation experiments.
///
//===----------------------------------------------------------------------===//

#ifndef ROPT_CORE_ITERATIVE_COMPILER_H
#define ROPT_CORE_ITERATIVE_COMPILER_H

#include "analysis/RegionAnalysis.h"
#include "capture/CaptureManager.h"
#include "core/AppInstance.h"
#include "core/Measurement.h"
#include "lir/Backend.h"
#include "profiler/HotRegion.h"
#include "replay/Replayer.h"
#include "search/EvaluationEngine.h"
#include "search/GeneticSearch.h"

#include <optional>

namespace ropt {
namespace core {

/// Everything that shapes the offline search (phase 4).
struct SearchOptions {
  search::GaConfig GA;
  /// Adaptive measurement racing (DESIGN.md §11). Off — the paper's
  /// configuration — every evaluation pays MaxReplaysPerEvaluation
  /// replays; on, fresh binaries start with MinReplaysPerEvaluation and
  /// race the incumbent for the rest, early-stopping clear losers.
  bool Racing = false;
  int MinReplaysPerEvaluation = 3;
  /// Fork-server replay sessions (DESIGN.md §16): each evaluation backend
  /// keeps one pristine restored address space per capture and
  /// delta-resets dirty pages between replays instead of re-running the
  /// loader. Purely a throughput lever — measurements, digests and
  /// evaluations.jsonl are byte-identical either way.
  bool SessionBackends = true;
  /// The measurement budget per binary (the paper's fixed 10).
  int MaxReplaysPerEvaluation = 10;
  size_t CompileSizeBudget = 2000;
  /// Worker threads for the evaluation engine; 0 = hardware concurrency.
  int Jobs = 0;
  /// The engine's two-level genome/binary cache.
  bool Memoize = true;
  /// Genomes injected into generation 0 ahead of the random fill
  /// (search::GenomeSource::Seeded), each carrying the provenance id of
  /// the hint chain it rides on (0 = locally minted). The fleet layer
  /// routes re-verified server hints and a device's previous best through
  /// this, and the persistent store's restored leaderboard entries keep
  /// their prior-night chains; empty — the paper's cold-start
  /// configuration — leaves generation 0 fully random.
  std::vector<search::SeedGenome> WarmStart;
  /// Close the observability loop (DESIGN.md §13): scale the GA budget by
  /// the optimized region's criticality (the slack-0 region keeps the
  /// full budget; cooler regions get quadratically less) and disable the
  /// genome arms the region's bottleneck label rules out. Off — the
  /// default — leaves the search identical to the paper's configuration.
  bool AnalysisGuided = false;
};

/// \p Scale in (0, 1]: shrinks generations and population evenly (sqrt
/// split, so total evaluations scale roughly linearly with \p Scale) with
/// floors of 2 generations and 8 genomes; tournament/elite sizes are
/// re-clamped to the smaller population. Scale >= 1 returns \p Base
/// untouched — the critical region's search is bit-identical to the
/// unscaled configuration.
search::GaConfig scaledGaConfig(const search::GaConfig &Base, double Scale);

/// Everything that shapes profiling and capture (phases 1-3).
struct CaptureOptions {
  /// Captures taken per region; >1 evaluates genomes across several real
  /// inputs (the paper's §5.4 multi-capture setting).
  int CapturesPerRegion = 1;
  int ProfileSessions = 6;
  os::KernelCostModel KernelCosts;
};

/// Everything that shapes the final whole-program measurement (phase 5)
/// and the noise model shared with replay-time sampling.
struct MeasureOptions {
  int FinalSessionBlock = 3; ///< Sessions per whole-program sample.
  int FinalMeasurementRuns = 10;
  MeasurementModel Noise;
};

/// Pipeline configuration. The member initializers *are* the paper's
/// Section 4 values; paperDefaults() spells that out at call sites.
struct PipelineConfig {
  uint64_t Seed = 1;
  SearchOptions Search;
  CaptureOptions Capture;
  MeasureOptions Measure;

  /// Run-report flight recorder (report::RunReport), when the harness
  /// opened one with --report: the GA hands it one provenance record per
  /// evaluation, strictly in batch order. Not owned; may be null.
  search::ProvenanceSink *Provenance = nullptr;

  /// When set, optimize() searches the compilable closure of this root
  /// instead of the detected hot region — the multi-region harnesses
  /// (abl_critical_path) point the pipeline at each candidate in turn.
  dex::MethodId ForceRegionRoot = dex::InvalidId;

  /// The configuration of the paper's evaluation (Section 4): 11x50 GA,
  /// 10 replays per evaluation, single capture, 6 profile sessions.
  static PipelineConfig paperDefaults();
};

/// One captured region with its interpreted-replay artifacts.
struct CapturedRegion {
  capture::Capture Cap;
  replay::VerificationMap Map;
  lir::TypeProfile Profile;
  uint64_t Postponements = 0;
};

/// Evaluates one optimization decision against one or more captures:
/// compile, verify through replay (against *every* capture — a binary that
/// is only right for some inputs is wrong), measure. Implements the
/// engine's per-worker EvalBackend; the evaluation engine creates one
/// RegionEvaluator per worker slot, so instances need no locking. Multiple
/// captures per region are the paper's §5.4 "realistic system" setting and
/// guard the search against overfitting to a single input.
class RegionEvaluator : public search::EvalBackend {
public:
  /// Single-capture constructor (the paper's default configuration).
  RegionEvaluator(const workloads::Application &App,
                  const profiler::HotRegion &Region,
                  const capture::Capture &Cap,
                  const replay::VerificationMap &Map,
                  const lir::TypeProfile &Profile,
                  const PipelineConfig &Config);

  /// Multi-capture constructor; \p Captures must outlive the evaluator.
  RegionEvaluator(const workloads::Application &App,
                  const profiler::HotRegion &Region,
                  const std::vector<CapturedRegion> &Captures,
                  const PipelineConfig &Config);

  /// EvalBackend: compile with the genome, hand back hash/size/artifact.
  search::CompiledBinary compileGenome(const search::Genome &G) override;

  /// EvalBackend: verify + draw \p SampleCount raw timing samples for a
  /// compiled binary. Sample \c i is a pure function of (\p NoiseSeed,
  /// i), so the result is independent of scheduling and of how the
  /// racing engine splits the budget into blocks.
  search::Evaluation measureBinary(const search::CompiledBinary &B,
                                   uint64_t NoiseSeed,
                                   size_t SampleCount) override;

  /// EvalBackend: raw samples [\p Begin, \p Begin + \p Count) of an
  /// already-verified binary's noise stream, drawn around E.BaseCycles —
  /// no artifact or replay needed.
  std::vector<double> extendSamples(const search::Evaluation &E,
                                    uint64_t NoiseSeed, size_t Begin,
                                    size_t Count) override;

  /// EvalBackend: this evaluator's fork-server session accounting
  /// (all-zeros when SearchOptions::SessionBackends is off).
  search::ReplayBackendStats replayStats() const override;

  /// Serial convenience: compile + verify + sample in one call, drawing
  /// noise from this evaluator's own stream (the ablation harnesses'
  /// entry point).
  search::Evaluation evaluate(const search::Genome &G);

  /// Evaluates an explicit pipeline (the -O presets).
  search::Evaluation
  evaluatePipeline(const std::vector<lir::PassInstance> &Pipeline,
                   hgraph::RegAllocKind RegAlloc =
                       hgraph::RegAllocKind::LinearScan);

  /// Evaluates the stock Android binary of the region.
  search::Evaluation evaluateAndroid();

  /// Compiles the region with \p G without evaluating (for installs).
  /// Returns nullopt when compilation fails.
  std::optional<vm::CodeCache> compileRegion(const search::Genome &G);

  /// Outcome counts over every evaluation this instance performed.
  using Counters = search::EngineCounters;
  const Counters &counters() const { return Stats; }

private:
  search::Evaluation evaluateCache(const vm::CodeCache &Code, Rng &Noise);
  /// Verified replay against every capture; fills Kind/Error, hash, size
  /// and BaseCycles (the deterministic cycle sum noise samples around).
  /// Returns true when the binary is Ok.
  bool verifyCache(const vm::CodeCache &Code, search::Evaluation &E);

  struct CaptureRef {
    const capture::Capture *Cap;
    const replay::VerificationMap *Map;
  };

  const workloads::Application &App;
  const profiler::HotRegion &Region;
  std::vector<CaptureRef> Caps;
  lir::TypeProfile Profile; ///< Merged across captures.
  const PipelineConfig &Config;
  vm::NativeRegistry Natives;
  replay::Replayer Rep;
  Rng NoiseRng; ///< Serial-path noise stream (evaluate()).
  Counters Stats;
};

/// Everything the pipeline produced for one application.
struct OptimizationReport {
  std::string AppName;
  bool Succeeded = false;
  std::string FailureReason;

  profiler::HotRegion Region;
  profiler::CodeBreakdown Breakdown;
  capture::Capture Cap;
  uint64_t CapturePostponements = 0;

  /// The observability loop's region analysis: every candidate region
  /// with its features, label, slack and budget share (always computed —
  /// it is a cheap pure function of the profile — and recorded in the run
  /// report whether or not AnalysisGuided applied it).
  analysis::AppAnalysis Analysis;
  /// What the search actually ran with: 1.0 / 0 unless AnalysisGuided.
  double AppliedBudgetScale = 1.0;
  uint32_t AppliedPassMask = 0;

  /// Region-level replay medians (cycles).
  double RegionAndroid = 0.0;
  double RegionO3 = 0.0;
  double RegionBest = 0.0;

  search::Scored Best;
  search::GaTrace Trace;
  /// GA evaluations (through the engine) plus the two baselines.
  search::EngineCounters Counters;
  /// The engine's memoization story for the search.
  search::EngineCacheStats CacheStats;
  /// The engine's replay-budget accounting (racing vs fixed budget).
  search::EngineRacingStats RacingStats;
  /// Fork-server replay-session accounting, summed over every evaluation
  /// backend (engine workers plus the serial baselines evaluator).
  search::ReplayBackendStats ReplayBackend;

  /// Whole-program session samples, measured outside the replay
  /// environment (online noise included).
  std::vector<double> WholeAndroid;
  std::vector<double> WholeO3;
  std::vector<double> WholeGa;

  double speedupGaOverAndroid() const;
  double speedupO3OverAndroid() const;
  double speedupGaOverO3() const;
};

/// The orchestrator.
class IterativeCompiler {
public:
  explicit IterativeCompiler(PipelineConfig Config) : Config(Config) {}

  /// Runs the full pipeline on one application.
  OptimizationReport optimize(const workloads::Application &App);

  /// Pieces, exposed for the experiment harnesses: profile the app and
  /// detect its region (phase 1-2)...
  struct ProfiledApp {
    std::unique_ptr<AppInstance> Instance;
    profiler::ReplayabilityAnalysis RA;
    profiler::MethodProfile Profile;
    std::optional<profiler::HotRegion> Region;
    profiler::CodeBreakdown Breakdown;
  };
  ProfiledApp profileApp(const workloads::Application &App);

  /// ...and capture its hot region (phase 3), returning the capture plus
  /// the interpreted replay artifacts.
  using CapturedRegion = core::CapturedRegion;
  /// \p SessionOffset shifts the scripted session parameters so distinct
  /// captures snapshot distinct user inputs.
  std::optional<CapturedRegion>
  captureRegion(AppInstance &Instance, const profiler::HotRegion &Region,
                int SessionOffset = 0);

  /// Takes \p Count captures of the region across distinct sessions.
  std::vector<CapturedRegion>
  captureRegionMulti(AppInstance &Instance,
                     const profiler::HotRegion &Region, int Count);

  const PipelineConfig &config() const { return Config; }

private:
  PipelineConfig Config;
};

} // namespace core
} // namespace ropt

#endif // ROPT_CORE_ITERATIVE_COMPILER_H
