//===- core/AppInstance.h - A booted application process --------*- C++ -*-===//
//
// Part of ReplayOpt (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One running application: a simulated kernel + process + runtime with
/// the app's dex file loaded, init() executed, and (by default) every
/// compilable method AOT-compiled with the stock Android pipeline — the
/// out-of-the-box device state the paper's baseline represents.
///
//===----------------------------------------------------------------------===//

#ifndef ROPT_CORE_APP_INSTANCE_H
#define ROPT_CORE_APP_INSTANCE_H

#include "os/Kernel.h"
#include "vm/Runtime.h"
#include "workloads/Workloads.h"

#include <memory>

namespace ropt {
namespace core {

class AppInstance {
public:
  /// Code installed at boot.
  enum class BootCode {
    AndroidCompiled, ///< Stock pipeline for every compilable method.
    InterpretOnly,   ///< Nothing compiled.
  };

  AppInstance(const workloads::Application &App, uint64_t Seed,
              bool AttributeCycles = false,
              BootCode Boot = BootCode::AndroidCompiled);

  /// Runs one session with the given parameter (queues one scripted user
  /// input first).
  vm::CallResult runSession(int64_t Param);

  /// Runs \p Count sessions with deterministic parameters derived from the
  /// app default; returns the summed cycles (0 if any session trapped —
  /// callers treat that as a failed measurement).
  uint64_t runSessionBlock(int Count, int64_t BaseParam);

  /// Replaces the code for \p Methods with the functions in \p Code,
  /// keeping everything else as booted (the paper applies the winning
  /// binary to the hot region only).
  void overrideRegionCode(const std::vector<dex::MethodId> &Methods,
                          const vm::CodeCache &Code);

  vm::Runtime &runtime() { return *RT; }
  os::Kernel &kernel() { return Kernel; }
  os::Process &process() { return *Proc; }
  const workloads::Application &app() const { return App; }
  Rng &inputRng() { return InputRng; }

private:
  workloads::Application App;
  os::Kernel Kernel;
  os::Process *Proc = nullptr;
  vm::NativeRegistry Natives;
  std::unique_ptr<vm::Runtime> RT;
  Rng InputRng;
  Rng EnvRng;
};

} // namespace core
} // namespace ropt

#endif // ROPT_CORE_APP_INSTANCE_H
