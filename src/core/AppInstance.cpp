//===- core/AppInstance.cpp - A booted application process ------------------===//

#include "core/AppInstance.h"

#include "hgraph/AndroidCompiler.h"

#include <cassert>

using namespace ropt;
using namespace ropt::core;

AppInstance::AppInstance(const workloads::Application &App, uint64_t Seed,
                         bool AttributeCycles, BootCode Boot)
    : App(App), Natives(vm::NativeRegistry::standardLibrary()),
      InputRng(Seed ^ 0x5e551011), EnvRng(Seed ^ 0xe417) {
  vm::RuntimeConfig Config = App.RtConfig;
  Config.AttributeCycles = AttributeCycles;

  Proc = &Kernel.spawn();
  vm::Runtime::mapStandardLayout(Proc->space(), *App.File, Config);
  RT = std::make_unique<vm::Runtime>(Proc->space(), *App.File, Natives,
                                     Config);
  RT->setEnvironmentRng(&EnvRng);

  if (Boot == BootCode::AndroidCompiled) {
    std::vector<dex::MethodId> All;
    for (const dex::Method &M : App.File->methods())
      if (!M.IsNative && !M.isUncompilable())
        All.push_back(M.Id);
    hgraph::compileAllAndroid(*App.File, All, RT->codeCache());
  }

  [[maybe_unused]] vm::CallResult Init =
      RT->call(App.InitEntry, App.argsFor(App.InitParam));
  assert(Init.ok() && "application init trapped");
  // The profile should describe the user's sessions, not app startup —
  // otherwise a heavyweight init() masquerades as the hot region.
  RT->resetProfile();
}

vm::CallResult AppInstance::runSession(int64_t Param) {
  RT->inputQueue().push_back(static_cast<int64_t>(InputRng.below(4)));
  return RT->call(App.SessionEntry, App.argsFor(Param));
}

uint64_t AppInstance::runSessionBlock(int Count, int64_t BaseParam) {
  uint64_t Total = 0;
  for (int I = 0; I != Count; ++I) {
    vm::CallResult R = runSession(BaseParam + I);
    if (!R.ok())
      return 0;
    Total += R.Cycles;
  }
  return Total;
}

void AppInstance::overrideRegionCode(
    const std::vector<dex::MethodId> &Methods, const vm::CodeCache &Code) {
  for (dex::MethodId Id : Methods) {
    if (const vm::MachineFunction *Fn = Code.lookup(Id)) {
      RT->codeCache().install(
          std::make_shared<vm::MachineFunction>(*Fn));
    } else {
      RT->codeCache().remove(Id); // falls back to the interpreter
    }
  }
}
