//===- core/Measurement.h - Timing noise models ------------------*- C++ -*-===//
//
// Part of ReplayOpt (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded multiplicative log-normal noise models for the two measurement
/// contexts the paper contrasts: offline replays (idle device, pinned
/// frequency, identical state — per Section 3.7) versus the online
/// environment (frequency scaling, thermal throttling, contention — per
/// Section 2). The deterministic simulator gives exact cycle counts; these
/// models reintroduce the measurement reality the paper's statistics exist
/// to cope with.
///
//===----------------------------------------------------------------------===//

#ifndef ROPT_CORE_MEASUREMENT_H
#define ROPT_CORE_MEASUREMENT_H

#include "support/Random.h"

namespace ropt {
namespace core {

struct MeasurementModel {
  /// Replay environment: idle, charged, frequency pinned.
  double OfflineSigma = 0.004;
  /// Interactive environment: governors, thermals, background load. The
  /// heavy right tail (GC, scheduler hiccups) is modelled explicitly.
  double OnlineSigma = 0.05;
  double OnlineSpikeProb = 0.03;
  double OnlineSpikeScale = 1.8;

  double offline(Rng &R, double Cycles) const {
    return Cycles * R.logNormal(0.0, OfflineSigma);
  }

  double online(Rng &R, double Cycles) const {
    double Noisy = Cycles * R.logNormal(0.0, OnlineSigma);
    if (R.chance(OnlineSpikeProb))
      Noisy *= OnlineSpikeScale;
    return Noisy;
  }

  /// Draws \p Count offline samples around a deterministic cycle count —
  /// equivalent to performing that many replays, since replays of the same
  /// capture are cycle-exact (documented substitution, DESIGN.md §2).
  std::vector<double> offlineSamples(Rng &R, double Cycles,
                                     size_t Count) const {
    std::vector<double> Out;
    Out.reserve(Count);
    for (size_t I = 0; I != Count; ++I)
      Out.push_back(offline(R, Cycles));
    return Out;
  }

  /// Offline sample \p Index of the stream identified by \p NoiseSeed — a
  /// pure function of (NoiseSeed, Index, Cycles), unlike the sequential
  /// offlineSamples() stream. The racing engine relies on this to extend
  /// a binary's sample block later (or from another worker) and get
  /// exactly the values a single up-front draw would have produced.
  double offlineSampleAt(uint64_t NoiseSeed, size_t Index,
                         double Cycles) const {
    Rng R(NoiseSeed +
          0x9e3779b97f4a7c15ull * (static_cast<uint64_t>(Index) + 1));
    return offline(R, Cycles);
  }

  /// Draws offline samples [\p Begin, \p Begin + \p Count) of the
  /// \p NoiseSeed stream via offlineSampleAt().
  std::vector<double> offlineSampleRange(uint64_t NoiseSeed, double Cycles,
                                         size_t Begin, size_t Count) const {
    std::vector<double> Out;
    Out.reserve(Count);
    for (size_t I = 0; I != Count; ++I)
      Out.push_back(offlineSampleAt(NoiseSeed, Begin + I, Cycles));
    return Out;
  }
};

} // namespace core
} // namespace ropt

#endif // ROPT_CORE_MEASUREMENT_H
