//===- os/Kernel.cpp - Processes, fork, storage device --------------------===//

#include "os/Kernel.h"

#include <cassert>

using namespace ropt;
using namespace ropt::os;

void StorageDevice::writeFile(const std::string &Path,
                              std::vector<uint8_t> Bytes) {
  LifetimeBytesWritten += Bytes.size();
  Files[Path] = std::move(Bytes);
}

const std::vector<uint8_t> *
StorageDevice::readFile(const std::string &Path) const {
  auto It = Files.find(Path);
  return It == Files.end() ? nullptr : &It->second;
}

bool StorageDevice::removeFile(const std::string &Path) {
  return Files.erase(Path) != 0;
}

std::vector<std::string> StorageDevice::listFiles() const {
  std::vector<std::string> Paths;
  Paths.reserve(Files.size());
  for (const auto &KV : Files)
    Paths.push_back(KV.first);
  return Paths;
}

uint64_t StorageDevice::totalBytesStored() const {
  uint64_t Total = 0;
  for (const auto &KV : Files)
    Total += KV.second.size();
  return Total;
}

Process &Kernel::spawn() {
  Pid Id = NextPid++;
  auto Proc = std::make_unique<Process>(Id, /*Parent=*/0);
  Process &Ref = *Proc;
  Table.emplace(Id, std::move(Proc));
  return Ref;
}

Process &Kernel::fork(Process &Parent) {
  ++Forks;
  Pid Id = NextPid++;
  auto Child = std::make_unique<Process>(Id, Parent.pid());
  Child->Space = Parent.Space.forkClone();
  Process &Ref = *Child;
  Table.emplace(Id, std::move(Child));
  return Ref;
}

void Kernel::reap(Pid Id) {
  [[maybe_unused]] size_t Erased = Table.erase(Id);
  assert(Erased == 1 && "reaping unknown pid");
}

Process *Kernel::find(Pid Id) {
  auto It = Table.find(Id);
  return It == Table.end() ? nullptr : It->second.get();
}
