//===- os/AddressSpace.h - Simulated per-process virtual memory -*- C++ -*-===//
//
// Part of ReplayOpt (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A page-granular virtual address space with protection bits, fault
/// delivery, and Copy-on-Write sharing. This is the substrate the paper's
/// capture mechanism is built on: read-protect pages, let the fault handler
/// record first accesses, and let CoW preserve the pre-region state of any
/// page the application writes.
///
/// Two performance features serve the replay fork-server (DESIGN.md §16):
///
/// - **Snapshots.** `takeSnapshot()` freezes the current content as a
///   restore point; every page written afterwards is recorded in a dirty
///   set, and `resetToSnapshot()` reverts exactly those pages by dropping
///   their private copies and re-sharing the snapshot's physical pages
///   (re-arming the snapshot protections with them). Dirty recording rides
///   the existing CoW path: taking the snapshot bumps every materialized
///   page to shared, so the first post-snapshot write necessarily transits
///   `ensurePrivate`, which is the single recording point.
///
/// - **Inline access fast path.** `read`/`write` handle the common case —
///   page-local access, permitted protection, (for writes) already-private
///   backing — entirely in the header against a small multi-entry
///   translation cache; everything else tails into the out-of-line slow
///   path, which also keeps the fault accounting. A private page under an
///   armed snapshot is by construction already in the dirty set, so the
///   inline write path can skip the recording check.
///
//===----------------------------------------------------------------------===//

#ifndef ROPT_OS_ADDRESS_SPACE_H
#define ROPT_OS_ADDRESS_SPACE_H

#include "os/Memory.h"

#include <array>
#include <cstring>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace ropt {
namespace os {

/// Counters for kernel-visible memory events; the capture overhead model
/// (Figure 10) is driven by these.
struct MemoryStats {
  uint64_t ProtectCalls = 0;   ///< protectRange invocations.
  uint64_t PagesProtected = 0; ///< Pages whose protection changed.
  uint64_t ReadFaults = 0;     ///< Faults taken on read access.
  uint64_t WriteFaults = 0;    ///< Faults taken on write access.
  uint64_t CowCopies = 0;      ///< Pages duplicated by Copy-on-Write.
  uint64_t MapsEnumerations = 0; ///< procMaps() style walks.
  uint64_t SnapshotsTaken = 0;   ///< takeSnapshot() restore points armed.
  uint64_t SnapshotResets = 0;   ///< Successful resetToSnapshot() calls.
  uint64_t PagesReverted = 0;    ///< Dirty pages reverted across resets.
};

/// Outcome of a memory access attempt.
enum class AccessResult {
  Ok,        ///< Access performed.
  Unmapped,  ///< No page at the address.
  Violation, ///< Protection violation not resolved by the fault handler.
};

/// A page-table backed virtual address space.
///
/// Faults: when an access violates the page protection, the installed fault
/// handler (if any) runs. If it returns true the access is retried once —
/// the handler is expected to have changed the protection. A second failure,
/// or the absence of a handler, yields AccessResult::Violation.
class AddressSpace {
public:
  /// Handler invoked on a protection fault. \p Addr is the faulting address,
  /// \p IsWrite distinguishes write faults. Returns true to retry.
  using FaultHandler = std::function<bool(uint64_t Addr, bool IsWrite)>;

  AddressSpace() = default;

  /// Maps \p Size bytes (rounded up to pages) at \p Start with \p Prot.
  /// The range must not overlap an existing mapping.
  void mapRegion(uint64_t Start, uint64_t Size, uint8_t Prot,
                 MappingKind Kind, const std::string &Name);

  /// Unmaps every page in [Start, Start+Size). Pages outside any mapping
  /// are ignored. Mappings fully contained in the range are removed;
  /// partial overlap shrinks the mapping bookkeeping conservatively.
  void unmapRegion(uint64_t Start, uint64_t Size);

  /// Changes the protection of all mapped pages in [Start, Start+Size).
  /// Counts one ProtectCall plus one PagesProtected per page touched.
  void protectRange(uint64_t Start, uint64_t Size, uint8_t Prot);

  /// Installs (or clears, with nullptr) the protection-fault handler.
  void setFaultHandler(FaultHandler Handler) {
    OnFault = std::move(Handler);
  }

  /// Reads \p Size bytes at \p Addr into \p Out. May span pages. The
  /// page-local permitted case is served inline from the translation
  /// cache; faults, misses and page-spanning accesses take the slow path.
  AccessResult read(uint64_t Addr, void *Out, uint64_t Size) {
    uint64_t Offset = Addr & (PageSize - 1);
    if (Offset + Size <= PageSize) {
      if (const PageEntry *E = lookupTranslation(pageNumber(Addr))) {
        if (E->Prot & ProtRead) {
          if (E->Phys)
            std::memcpy(Out, E->Phys->Data.data() + Offset, Size);
          else
            std::memset(Out, 0, Size); // untouched page reads as zeros
          return AccessResult::Ok;
        }
      }
    }
    return readSlow(Addr, Out, Size);
  }

  /// Writes \p Size bytes at \p Addr. May span pages. Triggers CoW. The
  /// inline path additionally requires a private, materialized page — a
  /// shared or lazy-zero page must transit ensurePrivate (CoW + dirty-set
  /// recording) on the slow path.
  AccessResult write(uint64_t Addr, const void *Data, uint64_t Size) {
    uint64_t Offset = Addr & (PageSize - 1);
    if (Offset + Size <= PageSize) {
      if (PageEntry *E = lookupTranslation(pageNumber(Addr))) {
        if ((E->Prot & ProtWrite) && E->Phys && E->Phys.use_count() == 1) {
          std::memcpy(E->Phys->Data.data() + Offset, Data, Size);
          return AccessResult::Ok;
        }
      }
    }
    return writeSlow(Addr, Data, Size);
  }

  /// Typed helpers; assert on unaligned page-spanning is not required —
  /// they go through read()/write().
  AccessResult loadU64(uint64_t Addr, uint64_t &Out) {
    return read(Addr, &Out, sizeof(Out));
  }
  AccessResult storeU64(uint64_t Addr, uint64_t Value) {
    return write(Addr, &Value, sizeof(Value));
  }
  AccessResult loadF64(uint64_t Addr, double &Out) {
    return read(Addr, &Out, sizeof(Out));
  }
  AccessResult storeF64(uint64_t Addr, double Value) {
    return write(Addr, &Value, sizeof(Value));
  }

  /// Reads bytes ignoring protection (kernel-style access for capture and
  /// snapshot tooling). Returns false if any page is unmapped.
  bool peek(uint64_t Addr, void *Out, uint64_t Size) const;

  /// Writes bytes ignoring protection, still honouring CoW so snapshots
  /// stay intact. Returns false if any page is unmapped.
  bool poke(uint64_t Addr, const void *Data, uint64_t Size);

  /// True if the page containing \p Addr is mapped.
  bool isMapped(uint64_t Addr) const {
    return Pages.count(pageNumber(Addr)) != 0;
  }

  /// Protection of the page containing \p Addr; ProtNone if unmapped.
  uint8_t protectionOf(uint64_t Addr) const;

  /// Enumerates mappings, ordered by start address (the simulated
  /// /proc/self/maps). Counts one MapsEnumeration.
  std::vector<Mapping> procMaps();

  /// Mapping lookup without stats side effects; nullptr if none.
  const Mapping *findMapping(uint64_t Addr) const;

  /// Clones this space for fork(): page table copied, physical pages
  /// shared, so the first write on either side triggers Copy-on-Write.
  /// The clone starts without a snapshot or dirty set of its own.
  AddressSpace forkClone() const;

  /// Returns the physical page ref for tests/capture; nullptr if unmapped.
  PhysPageRef physicalPage(uint64_t Addr) const;

  /// Total number of mapped pages.
  uint64_t mappedPageCount() const { return Pages.size(); }

  /// Freezes the current content and protections as the restore point for
  /// later resetToSnapshot() calls. Every materialized page becomes shared
  /// with the snapshot, so any later write necessarily pays one CoW copy —
  /// the price of knowing exactly which pages to revert. Replaces any
  /// earlier snapshot and clears the dirty set.
  void takeSnapshot();

  /// Reverts every page written (or re-protected) since takeSnapshot() to
  /// its snapshot content and protection, dropping the private copies and
  /// re-sharing the snapshot's physical pages. Returns the number of pages
  /// reverted, or -1 when there is no valid restore point — no snapshot
  /// taken, or the address-space *structure* (map/unmap) changed since,
  /// which invalidates it. On -1 the caller must rebuild from scratch.
  int64_t resetToSnapshot();

  /// True while resetToSnapshot() would succeed.
  bool hasValidSnapshot() const { return SnapshotArmed && !StructuralChange; }

  /// Forgets the restore point and the dirty set (frees the snapshot's
  /// page-table copy; shared physical pages are released lazily by CoW).
  void dropSnapshot();

  /// Pages written or re-protected since the last takeSnapshot().
  uint64_t dirtyPageCount() const { return Dirty.size(); }

  const MemoryStats &stats() const { return Stats; }
  void resetStats() { Stats = MemoryStats(); }

private:
  /// Physical backing is allocated lazily: a null Phys reads as zeros and
  /// materializes on first write (the zero-page trick real kernels use).
  struct PageEntry {
    PhysPageRef Phys;
    uint8_t Prot = ProtNone;
  };

  /// Ensures this space holds a private, materialized copy of page
  /// \p PageNum before writing; records it in the dirty set while a
  /// snapshot is armed. This is the single point every first-after-
  /// snapshot write passes through (see the header comment invariant).
  void ensurePrivate(uint64_t PageNum, PageEntry &Entry);

  /// One page-bounded access step. Returns the number of bytes handled or
  /// sets \p Result and returns 0 on failure.
  uint64_t accessChunk(uint64_t Addr, void *Buf, uint64_t Size, bool IsWrite,
                       AccessResult &Result);

  AccessResult readSlow(uint64_t Addr, void *Out, uint64_t Size);
  AccessResult writeSlow(uint64_t Addr, const void *Data, uint64_t Size);

  // Small fully-associative translation cache in front of the page table.
  // unordered_map never moves its nodes, so cached PageEntry pointers stay
  // valid until a page is erased (unmapRegion invalidates the cache).
  static constexpr size_t TranslationWays = 4;
  struct TranslationEntry {
    uint64_t PageNum = ~0ULL;
    PageEntry *Entry = nullptr;
  };

  PageEntry *lookupTranslation(uint64_t PageNum) const {
    for (const TranslationEntry &T : Translations)
      if (T.PageNum == PageNum)
        return T.Entry;
    return nullptr;
  }

  void fillTranslation(uint64_t PageNum, PageEntry *Entry) const {
    Translations[TranslationVictim] = {PageNum, Entry};
    TranslationVictim = (TranslationVictim + 1) % TranslationWays;
  }

  void invalidateTranslations() const {
    for (TranslationEntry &T : Translations)
      T = TranslationEntry();
    TranslationVictim = 0;
  }

  std::unordered_map<uint64_t, PageEntry> Pages;
  std::vector<Mapping> Mappings; ///< Kept sorted by Start.
  FaultHandler OnFault;
  MemoryStats Stats;

  mutable std::array<TranslationEntry, TranslationWays> Translations;
  mutable size_t TranslationVictim = 0;

  // Snapshot/restore state (replay fork-server support).
  std::unordered_map<uint64_t, PageEntry> SnapshotPages;
  std::unordered_set<uint64_t> Dirty;
  bool SnapshotArmed = false;
  bool StructuralChange = false;
};

} // namespace os
} // namespace ropt

#endif // ROPT_OS_ADDRESS_SPACE_H
