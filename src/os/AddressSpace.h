//===- os/AddressSpace.h - Simulated per-process virtual memory -*- C++ -*-===//
//
// Part of ReplayOpt (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A page-granular virtual address space with protection bits, fault
/// delivery, and Copy-on-Write sharing. This is the substrate the paper's
/// capture mechanism is built on: read-protect pages, let the fault handler
/// record first accesses, and let CoW preserve the pre-region state of any
/// page the application writes.
///
//===----------------------------------------------------------------------===//

#ifndef ROPT_OS_ADDRESS_SPACE_H
#define ROPT_OS_ADDRESS_SPACE_H

#include "os/Memory.h"

#include <cstring>
#include <functional>
#include <unordered_map>
#include <vector>

namespace ropt {
namespace os {

/// Counters for kernel-visible memory events; the capture overhead model
/// (Figure 10) is driven by these.
struct MemoryStats {
  uint64_t ProtectCalls = 0;   ///< protectRange invocations.
  uint64_t PagesProtected = 0; ///< Pages whose protection changed.
  uint64_t ReadFaults = 0;     ///< Faults taken on read access.
  uint64_t WriteFaults = 0;    ///< Faults taken on write access.
  uint64_t CowCopies = 0;      ///< Pages duplicated by Copy-on-Write.
  uint64_t MapsEnumerations = 0; ///< procMaps() style walks.
};

/// Outcome of a memory access attempt.
enum class AccessResult {
  Ok,        ///< Access performed.
  Unmapped,  ///< No page at the address.
  Violation, ///< Protection violation not resolved by the fault handler.
};

/// A page-table backed virtual address space.
///
/// Faults: when an access violates the page protection, the installed fault
/// handler (if any) runs. If it returns true the access is retried once —
/// the handler is expected to have changed the protection. A second failure,
/// or the absence of a handler, yields AccessResult::Violation.
class AddressSpace {
public:
  /// Handler invoked on a protection fault. \p Addr is the faulting address,
  /// \p IsWrite distinguishes write faults. Returns true to retry.
  using FaultHandler = std::function<bool(uint64_t Addr, bool IsWrite)>;

  AddressSpace() = default;

  /// Maps \p Size bytes (rounded up to pages) at \p Start with \p Prot.
  /// The range must not overlap an existing mapping.
  void mapRegion(uint64_t Start, uint64_t Size, uint8_t Prot,
                 MappingKind Kind, const std::string &Name);

  /// Unmaps every page in [Start, Start+Size). Pages outside any mapping
  /// are ignored. Mappings fully contained in the range are removed;
  /// partial overlap shrinks the mapping bookkeeping conservatively.
  void unmapRegion(uint64_t Start, uint64_t Size);

  /// Changes the protection of all mapped pages in [Start, Start+Size).
  /// Counts one ProtectCall plus one PagesProtected per page touched.
  void protectRange(uint64_t Start, uint64_t Size, uint8_t Prot);

  /// Installs (or clears, with nullptr) the protection-fault handler.
  void setFaultHandler(FaultHandler Handler) {
    OnFault = std::move(Handler);
  }

  /// Reads \p Size bytes at \p Addr into \p Out. May span pages.
  AccessResult read(uint64_t Addr, void *Out, uint64_t Size);

  /// Writes \p Size bytes at \p Addr. May span pages. Triggers CoW.
  AccessResult write(uint64_t Addr, const void *Data, uint64_t Size);

  /// Typed helpers; assert on unaligned page-spanning is not required —
  /// they go through read()/write().
  AccessResult loadU64(uint64_t Addr, uint64_t &Out) {
    return read(Addr, &Out, sizeof(Out));
  }
  AccessResult storeU64(uint64_t Addr, uint64_t Value) {
    return write(Addr, &Value, sizeof(Value));
  }
  AccessResult loadF64(uint64_t Addr, double &Out) {
    return read(Addr, &Out, sizeof(Out));
  }
  AccessResult storeF64(uint64_t Addr, double Value) {
    return write(Addr, &Value, sizeof(Value));
  }

  /// Reads bytes ignoring protection (kernel-style access for capture and
  /// snapshot tooling). Returns false if any page is unmapped.
  bool peek(uint64_t Addr, void *Out, uint64_t Size) const;

  /// Writes bytes ignoring protection, still honouring CoW so snapshots
  /// stay intact. Returns false if any page is unmapped.
  bool poke(uint64_t Addr, const void *Data, uint64_t Size);

  /// True if the page containing \p Addr is mapped.
  bool isMapped(uint64_t Addr) const {
    return Pages.count(pageNumber(Addr)) != 0;
  }

  /// Protection of the page containing \p Addr; ProtNone if unmapped.
  uint8_t protectionOf(uint64_t Addr) const;

  /// Enumerates mappings, ordered by start address (the simulated
  /// /proc/self/maps). Counts one MapsEnumeration.
  std::vector<Mapping> procMaps();

  /// Mapping lookup without stats side effects; nullptr if none.
  const Mapping *findMapping(uint64_t Addr) const;

  /// Clones this space for fork(): page table copied, physical pages
  /// shared, so the first write on either side triggers Copy-on-Write.
  AddressSpace forkClone() const;

  /// Returns the physical page ref for tests/capture; nullptr if unmapped.
  PhysPageRef physicalPage(uint64_t Addr) const;

  /// Total number of mapped pages.
  uint64_t mappedPageCount() const { return Pages.size(); }

  const MemoryStats &stats() const { return Stats; }
  void resetStats() { Stats = MemoryStats(); }

private:
  /// Physical backing is allocated lazily: a null Phys reads as zeros and
  /// materializes on first write (the zero-page trick real kernels use).
  struct PageEntry {
    PhysPageRef Phys;
    uint8_t Prot = ProtNone;
  };

  /// Ensures this space holds a private, materialized copy of the page
  /// before writing.
  void ensurePrivate(PageEntry &Entry);

  /// One page-bounded access step. Returns the number of bytes handled or
  /// sets \p Result and returns 0 on failure.
  uint64_t accessChunk(uint64_t Addr, void *Buf, uint64_t Size, bool IsWrite,
                       AccessResult &Result);

  std::unordered_map<uint64_t, PageEntry> Pages;
  std::vector<Mapping> Mappings; ///< Kept sorted by Start.
  FaultHandler OnFault;
  MemoryStats Stats;

  // One-entry translation cache to keep the hot interpreter path cheap.
  mutable uint64_t CachedPageNum = ~0ULL;
  mutable PageEntry *CachedEntry = nullptr;
};

} // namespace os
} // namespace ropt

#endif // ROPT_OS_ADDRESS_SPACE_H
