//===- os/Kernel.h - Processes, fork, storage device ------------*- C++ -*-===//
//
// Part of ReplayOpt (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal process model over AddressSpace: fork() with Copy-on-Write
/// sharing, per-process priority and sleep state (the capture child is
/// minimized and slept), and a storage device the child spools captured
/// pages to.
///
//===----------------------------------------------------------------------===//

#ifndef ROPT_OS_KERNEL_H
#define ROPT_OS_KERNEL_H

#include "os/AddressSpace.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace ropt {
namespace os {

using Pid = uint32_t;

/// Scheduling priority; only the extremes matter for our purposes.
enum class Priority { Normal, Lowest };

/// A simulated process: an address space plus scheduler bookkeeping.
class Process {
public:
  Process(Pid Id, Pid Parent) : Id(Id), Parent(Parent) {}

  Pid pid() const { return Id; }
  Pid parentPid() const { return Parent; }

  AddressSpace &space() { return Space; }
  const AddressSpace &space() const { return Space; }

  Priority priority() const { return Prio; }
  void setPriority(Priority P) { Prio = P; }

  bool isAsleep() const { return Asleep; }
  void sleep() { Asleep = true; }
  void wake() { Asleep = false; }

private:
  friend class Kernel;
  Pid Id;
  Pid Parent;
  AddressSpace Space;
  Priority Prio = Priority::Normal;
  bool Asleep = false;
};

/// The storage device captured pages are spooled to. Tracks total bytes
/// written so the storage-overhead experiment (Figure 11) can account them.
class StorageDevice {
public:
  /// Writes (replacing) a named blob.
  void writeFile(const std::string &Path, std::vector<uint8_t> Bytes);

  /// Returns the blob, or nullptr if absent.
  const std::vector<uint8_t> *readFile(const std::string &Path) const;

  /// Removes a blob; returns true if it existed.
  bool removeFile(const std::string &Path);

  bool exists(const std::string &Path) const {
    return Files.count(Path) != 0;
  }

  /// Paths currently stored, sorted.
  std::vector<std::string> listFiles() const;

  uint64_t totalBytesStored() const;
  uint64_t lifetimeBytesWritten() const { return LifetimeBytesWritten; }

private:
  std::map<std::string, std::vector<uint8_t>> Files;
  uint64_t LifetimeBytesWritten = 0;
};

/// Process table + fork. Processes are owned by the kernel and addressed by
/// pid; pointers remain valid until the process is reaped.
class Kernel {
public:
  Kernel() = default;

  /// Creates a fresh process with an empty address space.
  Process &spawn();

  /// Forks \p Parent: the child receives a forkClone() of the parent's
  /// address space (shared physical pages, CoW on write). Returns the child.
  Process &fork(Process &Parent);

  /// Destroys the process. Shared pages survive through shared_ptr refs.
  void reap(Pid Id);

  Process *find(Pid Id);
  size_t processCount() const { return Table.size(); }

  StorageDevice &storage() { return Disk; }
  const StorageDevice &storage() const { return Disk; }

  uint64_t forkCount() const { return Forks; }

private:
  std::map<Pid, std::unique_ptr<Process>> Table;
  StorageDevice Disk;
  Pid NextPid = 1;
  uint64_t Forks = 0;
};

} // namespace os
} // namespace ropt

#endif // ROPT_OS_KERNEL_H
