//===- os/CostModel.h - Kernel event cost model -----------------*- C++ -*-===//
//
// Part of ReplayOpt (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Converts counted kernel events into microseconds of online overhead.
///
/// The paper measures capture overhead on a Pixel 4 (Figure 10): fork takes
/// 1-6 ms depending on the process state, preparation (parsing
/// /proc/self/maps plus read-protecting pages) 4-11 ms, and the residual
/// fault + Copy-on-Write cost is usually small but reaches 10-16 ms for
/// write-heavy benchmarks. The constants below are calibrated so that a
/// process with a few thousand mappings/pages lands in those bands while the
/// *relative* weight of each component still derives from the workload's
/// genuine event counts in the simulated kernel.
///
//===----------------------------------------------------------------------===//

#ifndef ROPT_OS_COST_MODEL_H
#define ROPT_OS_COST_MODEL_H

#include "os/AddressSpace.h"

#include <cstdint>

namespace ropt {
namespace os {

/// Per-event costs, in microseconds.
struct KernelCostModel {
  /// fork(): base syscall plus page-table duplication per mapped page.
  double ForkBaseUs = 1100.0;
  double ForkPerPageUs = 0.50;

  /// Parsing one /proc/self/maps line (the paper calls /proc "slow").
  double MapsParsePerMappingUs = 14.0;

  /// One mprotect() syscall and the per-page PTE update cost.
  double ProtectCallUs = 4.0;
  double ProtectPerPageUs = 0.90;

  /// One user-space page-fault round trip (trap, handler, mprotect fix-up).
  double PageFaultUs = 26.0;

  /// Duplicating one page for Copy-on-Write (in-kernel).
  double CowCopyUs = 12.0;

  /// fork() cost for a process with \p MappedPages pages.
  double forkCostUs(uint64_t MappedPages) const {
    return ForkBaseUs + ForkPerPageUs * static_cast<double>(MappedPages);
  }

  /// Preparation cost: maps parsing plus read-protection.
  double preparationCostUs(uint64_t Mappings, uint64_t ProtectCalls,
                           uint64_t PagesProtected) const {
    return MapsParsePerMappingUs * static_cast<double>(Mappings) +
           ProtectCallUs * static_cast<double>(ProtectCalls) +
           ProtectPerPageUs * static_cast<double>(PagesProtected);
  }

  /// In-region cost: page faults taken plus CoW duplications.
  double faultAndCowCostUs(uint64_t Faults, uint64_t CowCopies) const {
    return PageFaultUs * static_cast<double>(Faults) +
           CowCopyUs * static_cast<double>(CowCopies);
  }
};

} // namespace os
} // namespace ropt

#endif // ROPT_OS_COST_MODEL_H
