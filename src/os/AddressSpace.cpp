//===- os/AddressSpace.cpp - Simulated per-process virtual memory --------===//

#include "os/AddressSpace.h"

#include <algorithm>
#include <cassert>

using namespace ropt;
using namespace ropt::os;

const char *os::mappingKindName(MappingKind Kind) {
  switch (Kind) {
  case MappingKind::Code:
    return "code";
  case MappingKind::Data:
    return "data";
  case MappingKind::Heap:
    return "heap";
  case MappingKind::Stack:
    return "stack";
  case MappingKind::RuntimeImage:
    return "runtime-image";
  case MappingKind::FileMapped:
    return "file";
  case MappingKind::Anonymous:
    return "anon";
  }
  return "unknown";
}

void AddressSpace::mapRegion(uint64_t Start, uint64_t Size, uint8_t Prot,
                             MappingKind Kind, const std::string &Name) {
  assert(Size > 0 && "empty mapping");
  assert(Start == pageBase(Start) && "mapping start must be page aligned");
  uint64_t Bytes = roundUpToPage(Size);
  uint64_t FirstPage = pageNumber(Start);
  uint64_t NumPages = Bytes / PageSize;
  for (uint64_t P = FirstPage; P != FirstPage + NumPages; ++P) {
    assert(Pages.count(P) == 0 && "mapping overlaps existing pages");
    PageEntry Entry;
    Entry.Prot = Prot; // backing allocated lazily on first write
    Pages.emplace(P, std::move(Entry));
  }
  Mapping M;
  M.Start = Start;
  M.End = Start + Bytes;
  M.Kind = Kind;
  M.Name = Name;
  auto Pos = std::lower_bound(
      Mappings.begin(), Mappings.end(), M,
      [](const Mapping &A, const Mapping &B) { return A.Start < B.Start; });
  Mappings.insert(Pos, std::move(M));
  invalidateTranslations();
  if (SnapshotArmed)
    StructuralChange = true; // the snapshot no longer describes this space
}

void AddressSpace::unmapRegion(uint64_t Start, uint64_t Size) {
  uint64_t Bytes = roundUpToPage(Size);
  uint64_t FirstPage = pageNumber(Start);
  uint64_t NumPages = Bytes / PageSize;
  for (uint64_t P = FirstPage; P != FirstPage + NumPages; ++P)
    Pages.erase(P);
  uint64_t End = Start + Bytes;
  for (auto It = Mappings.begin(); It != Mappings.end();) {
    if (It->Start >= Start && It->End <= End) {
      It = Mappings.erase(It);
      continue;
    }
    // Partial overlap: shrink the bookkeeping range.
    if (It->contains(Start) && It->End > End)
      It->End = Start; // conservative: drop the tail record
    else if (Start <= It->Start && It->contains(End - 1))
      It->Start = End;
    ++It;
  }
  invalidateTranslations();
  if (SnapshotArmed)
    StructuralChange = true;
}

void AddressSpace::protectRange(uint64_t Start, uint64_t Size, uint8_t Prot) {
  ++Stats.ProtectCalls;
  uint64_t Bytes = roundUpToPage(Size);
  uint64_t FirstPage = pageNumber(Start);
  uint64_t NumPages = Bytes / PageSize;
  for (uint64_t P = FirstPage; P != FirstPage + NumPages; ++P) {
    auto It = Pages.find(P);
    if (It == Pages.end())
      continue;
    if (It->second.Prot != Prot) {
      It->second.Prot = Prot;
      ++Stats.PagesProtected;
      if (SnapshotArmed)
        Dirty.insert(P); // reset must re-arm the snapshot protection
    }
  }
}

uint8_t AddressSpace::protectionOf(uint64_t Addr) const {
  auto It = Pages.find(pageNumber(Addr));
  return It == Pages.end() ? static_cast<uint8_t>(ProtNone) : It->second.Prot;
}

std::vector<Mapping> AddressSpace::procMaps() {
  ++Stats.MapsEnumerations;
  return Mappings;
}

const Mapping *AddressSpace::findMapping(uint64_t Addr) const {
  for (const Mapping &M : Mappings)
    if (M.contains(Addr))
      return &M;
  return nullptr;
}

void AddressSpace::ensurePrivate(uint64_t PageNum, PageEntry &Entry) {
  // Every first write after takeSnapshot() lands here: the snapshot's
  // page-table copy holds a reference to every materialized page (so
  // use_count > 1), and lazy-zero pages have no backing yet. A private
  // materialized page can only mean the dirty set already has this page.
  if (!Entry.Phys) {
    Entry.Phys = std::make_shared<PhysicalPage>();
    if (SnapshotArmed)
      Dirty.insert(PageNum);
    return;
  }
  if (Entry.Phys.use_count() <= 1)
    return;
  // Copy-on-Write: the writer receives a private duplicate; every other
  // sharer keeps seeing the original bytes. This is exactly what keeps the
  // capture child's snapshot pristine while the parent keeps running.
  auto Copy = std::make_shared<PhysicalPage>(*Entry.Phys);
  Entry.Phys = std::move(Copy);
  ++Stats.CowCopies;
  if (SnapshotArmed)
    Dirty.insert(PageNum);
}

uint64_t AddressSpace::accessChunk(uint64_t Addr, void *Buf, uint64_t Size,
                                   bool IsWrite, AccessResult &Result) {
  uint64_t PageNum = pageNumber(Addr);
  PageEntry *Entry = lookupTranslation(PageNum);
  if (!Entry) {
    auto It = Pages.find(PageNum);
    if (It == Pages.end()) {
      Result = AccessResult::Unmapped;
      return 0;
    }
    Entry = &It->second;
    fillTranslation(PageNum, Entry);
  }

  uint8_t Needed = IsWrite ? ProtWrite : ProtRead;
  if ((Entry->Prot & Needed) == 0) {
    if (IsWrite)
      ++Stats.WriteFaults;
    else
      ++Stats.ReadFaults;
    bool Retried = OnFault && OnFault(Addr, IsWrite);
    if (!Retried || (Entry->Prot & Needed) == 0) {
      Result = AccessResult::Violation;
      return 0;
    }
  }

  if (IsWrite)
    ensurePrivate(PageNum, *Entry);

  uint64_t Offset = Addr - pageBase(Addr);
  uint64_t Chunk = std::min(Size, PageSize - Offset);
  if (IsWrite)
    std::memcpy(Entry->Phys->Data.data() + Offset, Buf, Chunk);
  else if (Entry->Phys)
    std::memcpy(Buf, Entry->Phys->Data.data() + Offset, Chunk);
  else
    std::memset(Buf, 0, Chunk); // untouched page reads as zeros
  Result = AccessResult::Ok;
  return Chunk;
}

AccessResult AddressSpace::readSlow(uint64_t Addr, void *Out, uint64_t Size) {
  uint8_t *Buf = static_cast<uint8_t *>(Out);
  while (Size > 0) {
    AccessResult Result;
    uint64_t Done = accessChunk(Addr, Buf, Size, /*IsWrite=*/false, Result);
    if (Result != AccessResult::Ok)
      return Result;
    Addr += Done;
    Buf += Done;
    Size -= Done;
  }
  return AccessResult::Ok;
}

AccessResult AddressSpace::writeSlow(uint64_t Addr, const void *Data,
                                     uint64_t Size) {
  const uint8_t *Buf = static_cast<const uint8_t *>(Data);
  while (Size > 0) {
    AccessResult Result;
    uint64_t Done = accessChunk(Addr, const_cast<uint8_t *>(Buf), Size,
                                /*IsWrite=*/true, Result);
    if (Result != AccessResult::Ok)
      return Result;
    Addr += Done;
    Buf += Done;
    Size -= Done;
  }
  return AccessResult::Ok;
}

bool AddressSpace::peek(uint64_t Addr, void *Out, uint64_t Size) const {
  uint8_t *Buf = static_cast<uint8_t *>(Out);
  while (Size > 0) {
    auto It = Pages.find(pageNumber(Addr));
    if (It == Pages.end())
      return false;
    uint64_t Offset = Addr - pageBase(Addr);
    uint64_t Chunk = std::min(Size, PageSize - Offset);
    if (It->second.Phys)
      std::memcpy(Buf, It->second.Phys->Data.data() + Offset, Chunk);
    else
      std::memset(Buf, 0, Chunk);
    Addr += Chunk;
    Buf += Chunk;
    Size -= Chunk;
  }
  return true;
}

bool AddressSpace::poke(uint64_t Addr, const void *Data, uint64_t Size) {
  const uint8_t *Buf = static_cast<const uint8_t *>(Data);
  while (Size > 0) {
    uint64_t PageNum = pageNumber(Addr);
    auto It = Pages.find(PageNum);
    if (It == Pages.end())
      return false;
    ensurePrivate(PageNum, It->second);
    uint64_t Offset = Addr - pageBase(Addr);
    uint64_t Chunk = std::min(Size, PageSize - Offset);
    std::memcpy(It->second.Phys->Data.data() + Offset, Buf, Chunk);
    Addr += Chunk;
    Buf += Chunk;
    Size -= Chunk;
  }
  return true;
}

AddressSpace AddressSpace::forkClone() const {
  AddressSpace Child;
  Child.Pages = Pages; // shares PhysicalPage refs -> CoW on either side
  Child.Mappings = Mappings;
  return Child;
}

PhysPageRef AddressSpace::physicalPage(uint64_t Addr) const {
  auto It = Pages.find(pageNumber(Addr));
  return It == Pages.end() ? nullptr : It->second.Phys;
}

void AddressSpace::takeSnapshot() {
  SnapshotPages = Pages; // bumps every materialized page to shared
  Dirty.clear();
  SnapshotArmed = true;
  StructuralChange = false;
  ++Stats.SnapshotsTaken;
}

int64_t AddressSpace::resetToSnapshot() {
  if (!SnapshotArmed || StructuralChange)
    return -1;
  int64_t Reverted = 0;
  for (uint64_t P : Dirty) {
    auto It = Pages.find(P);
    auto SIt = SnapshotPages.find(P);
    if (It == Pages.end() || SIt == SnapshotPages.end()) {
      // Unreachable while StructuralChange tracking is sound; degrade to
      // "snapshot invalid" rather than half-restoring silently.
      StructuralChange = true;
      return -1;
    }
    It->second = SIt->second; // re-share the snapshot page, re-arm Prot
    ++Reverted;
  }
  Dirty.clear();
  invalidateTranslations();
  ++Stats.SnapshotResets;
  Stats.PagesReverted += static_cast<uint64_t>(Reverted);
  return Reverted;
}

void AddressSpace::dropSnapshot() {
  SnapshotPages.clear();
  Dirty.clear();
  SnapshotArmed = false;
  StructuralChange = false;
}
