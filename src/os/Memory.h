//===- os/Memory.h - Pages, protections, mappings ---------------*- C++ -*-===//
//
// Part of ReplayOpt (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Basic memory-model types for the simulated kernel: 4 KiB pages,
/// protection flags, and named mappings (the analogue of /proc/self/maps
/// entries, which the paper's capture mechanism parses).
///
//===----------------------------------------------------------------------===//

#ifndef ROPT_OS_MEMORY_H
#define ROPT_OS_MEMORY_H

#include <array>
#include <cstdint>
#include <memory>
#include <string>

namespace ropt {
namespace os {

/// Page size of the simulated MMU. Matches the 4 KiB pages of the paper's
/// AArch64 Linux target.
constexpr uint64_t PageSize = 4096;

/// Returns the page-aligned base address containing \p Addr.
constexpr uint64_t pageBase(uint64_t Addr) { return Addr & ~(PageSize - 1); }

/// Returns the page number containing \p Addr.
constexpr uint64_t pageNumber(uint64_t Addr) { return Addr / PageSize; }

/// Rounds \p Size up to a whole number of pages.
constexpr uint64_t roundUpToPage(uint64_t Size) {
  return (Size + PageSize - 1) & ~(PageSize - 1);
}

/// Page protection bits. Combinable.
enum ProtFlags : uint8_t {
  ProtNone = 0,
  ProtRead = 1,
  ProtWrite = 2,
  ProtExec = 4,
};

/// What a mapping backs. The capture mechanism treats these differently:
/// RuntimeImage pages are captured once per boot, FileMapped pages are never
/// captured (only their path/offset is logged), everything else is
/// process-specific.
enum class MappingKind {
  Code,         ///< Application machine code.
  Data,         ///< Application globals.
  Heap,         ///< Garbage-collected heap.
  Stack,        ///< Thread stack.
  RuntimeImage, ///< Immutable runtime objects, identical across processes
                ///< created during the same device boot.
  FileMapped,   ///< Memory-mapped system file (e.g. shared library code).
  Anonymous,    ///< Other anonymous memory (loader scratch, buffers).
};

/// Returns a short human-readable name for \p Kind.
const char *mappingKindName(MappingKind Kind);

/// One /proc/self/maps-style entry.
struct Mapping {
  uint64_t Start = 0; ///< Inclusive, page aligned.
  uint64_t End = 0;   ///< Exclusive, page aligned.
  MappingKind Kind = MappingKind::Anonymous;
  std::string Name;

  uint64_t sizeBytes() const { return End - Start; }
  uint64_t pageCount() const { return sizeBytes() / PageSize; }
  bool contains(uint64_t Addr) const { return Addr >= Start && Addr < End; }
};

/// Backing store for one page. Shared between address spaces after fork;
/// Copy-on-Write duplicates it on the first post-fork write.
struct PhysicalPage {
  std::array<uint8_t, PageSize> Data{};
};

using PhysPageRef = std::shared_ptr<PhysicalPage>;

} // namespace os
} // namespace ropt

#endif // ROPT_OS_MEMORY_H
