//===- store/KMeans.h - Deterministic device-class clustering ---*- C++ -*-===//
//
// Part of ReplayOpt (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded k-means for device-class clustering (DESIGN.md §17): the
/// persistent optimization service groups devices by their cost-model
/// profile vector (kernel cost scale per event type, noise sigma scale,
/// session parameter) so per-class leaderboards keep slow-SoC devices
/// from chasing fast-SoC winners — the perf-counter task-clustering idea
/// of the CAT policy work (PAPERS.md) applied to an install base.
///
/// Everything is deterministic: seeded k-means++ initialization, a fixed
/// iteration cap, lowest-index tie-breaks on equidistant centroids, and a
/// final relabeling by lexicographic centroid order so class ids are
/// stable across reruns regardless of which random point seeded which
/// cluster. Clustering runs once per fleet run in a serial context, so
/// the assignment is also independent of `--jobs`.
///
//===----------------------------------------------------------------------===//

#ifndef ROPT_STORE_KMEANS_H
#define ROPT_STORE_KMEANS_H

#include <cstdint>
#include <vector>

namespace ropt {
namespace store {

struct KMeansResult {
  /// Final centroids in lexicographic order — the stable class ids.
  std::vector<std::vector<double>> Centroids;
  /// Per-input-point class id (index into Centroids).
  std::vector<int> Assignment;
  /// Lloyd iterations actually run (<= the cap).
  int Iterations = 0;
};

/// Clusters \p Points into at most \p K classes. K is clamped to the
/// number of points; every point keeps its dimensionality (all points
/// must agree on it). The result is a pure function of (Points, K, Seed).
KMeansResult kmeans(const std::vector<std::vector<double>> &Points, int K,
                    uint64_t Seed, int MaxIterations = 24);

} // namespace store
} // namespace ropt

#endif // ROPT_STORE_KMEANS_H
