//===- store/KMeans.cpp - Deterministic device-class clustering -----------===//

#include "store/KMeans.h"

#include "support/Random.h"

#include <algorithm>
#include <cassert>

using namespace ropt;
using namespace ropt::store;

namespace {

double sqDist(const std::vector<double> &A, const std::vector<double> &B) {
  double D = 0.0;
  for (size_t I = 0; I != A.size(); ++I) {
    double X = A[I] - B[I];
    D += X * X;
  }
  return D;
}

/// Index of the centroid nearest to \p P; the lowest index wins exact
/// distance ties, so assignment is a total deterministic function.
int nearest(const std::vector<std::vector<double>> &Centroids,
            const std::vector<double> &P) {
  int Best = 0;
  double BestD = sqDist(Centroids[0], P);
  for (size_t C = 1; C != Centroids.size(); ++C) {
    double D = sqDist(Centroids[C], P);
    if (D < BestD) {
      BestD = D;
      Best = static_cast<int>(C);
    }
  }
  return Best;
}

} // namespace

KMeansResult store::kmeans(const std::vector<std::vector<double>> &Points,
                           int K, uint64_t Seed, int MaxIterations) {
  KMeansResult Out;
  if (Points.empty() || K <= 0)
    return Out;
  size_t N = Points.size();
  size_t Dims = Points[0].size();
  size_t Kn = std::min(static_cast<size_t>(K), N);

  // Seeded k-means++: first centroid uniform, the rest weighted by
  // squared distance to the nearest chosen centroid. The weighted draw is
  // a deterministic scan over a single uniform sample.
  Rng R(Seed ^ 0x6b6d65616e73ull); // "kmeans"
  std::vector<std::vector<double>> C;
  C.push_back(Points[static_cast<size_t>(R.below(N))]);
  std::vector<double> MinD(N);
  while (C.size() < Kn) {
    double Total = 0.0;
    for (size_t I = 0; I != N; ++I) {
      MinD[I] = sqDist(C.back(), Points[I]);
      for (size_t J = 0; J + 1 < C.size(); ++J)
        MinD[I] = std::min(MinD[I], sqDist(C[J], Points[I]));
      Total += MinD[I];
    }
    size_t Pick = 0;
    if (Total > 0.0) {
      double Target = R.uniform() * Total;
      double Acc = 0.0;
      for (size_t I = 0; I != N; ++I) {
        Acc += MinD[I];
        if (Acc >= Target) {
          Pick = I;
          break;
        }
      }
    } else {
      // All remaining points coincide with a centroid; any choice yields
      // an empty-ish cluster — take the next index round-robin.
      Pick = C.size() % N;
    }
    C.push_back(Points[Pick]);
  }

  // Lloyd iterations under a fixed cap; stop early once the assignment
  // is a fixed point.
  std::vector<int> Assign(N, 0);
  for (int It = 0; It != std::max(1, MaxIterations); ++It) {
    bool Changed = It == 0;
    for (size_t I = 0; I != N; ++I) {
      int A = nearest(C, Points[I]);
      if (A != Assign[I]) {
        Assign[I] = A;
        Changed = true;
      }
    }
    Out.Iterations = It + 1;
    if (!Changed && It != 0)
      break;

    // Recompute centroids; an emptied cluster is re-seeded with the point
    // farthest from its current centroid (lowest index on ties) so K
    // never silently collapses.
    std::vector<std::vector<double>> Sum(C.size(),
                                         std::vector<double>(Dims, 0.0));
    std::vector<size_t> Count(C.size(), 0);
    for (size_t I = 0; I != N; ++I) {
      for (size_t D = 0; D != Dims; ++D)
        Sum[static_cast<size_t>(Assign[I])][D] += Points[I][D];
      ++Count[static_cast<size_t>(Assign[I])];
    }
    for (size_t Cl = 0; Cl != C.size(); ++Cl) {
      if (Count[Cl] == 0) {
        size_t Far = 0;
        double FarD = -1.0;
        for (size_t I = 0; I != N; ++I) {
          double D = sqDist(C[static_cast<size_t>(Assign[I])], Points[I]);
          if (D > FarD) {
            FarD = D;
            Far = I;
          }
        }
        C[Cl] = Points[Far];
        continue;
      }
      for (size_t D = 0; D != Dims; ++D)
        C[Cl][D] = Sum[Cl][D] / static_cast<double>(Count[Cl]);
    }
  }

  // Every class must end with at least one member — an empty class would
  // cost the fleet a full pipeline setup for nobody. Ascending over empty
  // clusters, steal the point farthest from its current centroid among
  // clusters that can spare one (lowest index on ties).
  {
    std::vector<size_t> Count(C.size(), 0);
    for (int A : Assign)
      ++Count[static_cast<size_t>(A)];
    for (size_t Cl = 0; Cl != C.size(); ++Cl) {
      if (Count[Cl] != 0)
        continue;
      size_t Far = N;
      double FarD = -1.0;
      for (size_t I = 0; I != N; ++I) {
        if (Count[static_cast<size_t>(Assign[I])] < 2)
          continue;
        double D = sqDist(C[static_cast<size_t>(Assign[I])], Points[I]);
        if (D > FarD) {
          FarD = D;
          Far = I;
        }
      }
      if (Far == N)
        continue; // Fewer distinct points than clusters; nothing to steal.
      --Count[static_cast<size_t>(Assign[Far])];
      Assign[Far] = static_cast<int>(Cl);
      ++Count[Cl];
      C[Cl] = Points[Far];
    }
  }

  // Stable ids: relabel clusters by lexicographic centroid order (original
  // index breaks exact ties), so the same population always gets the same
  // class numbering no matter which seed point started which cluster.
  std::vector<size_t> Order(C.size());
  for (size_t I = 0; I != Order.size(); ++I)
    Order[I] = I;
  std::stable_sort(Order.begin(), Order.end(),
                   [&C](size_t A, size_t B) { return C[A] < C[B]; });
  std::vector<int> Relabel(C.size(), 0);
  Out.Centroids.resize(C.size());
  for (size_t NewId = 0; NewId != Order.size(); ++NewId) {
    Relabel[Order[NewId]] = static_cast<int>(NewId);
    Out.Centroids[NewId] = C[Order[NewId]];
  }
  Out.Assignment.resize(N);
  for (size_t I = 0; I != N; ++I)
    Out.Assignment[I] = Relabel[static_cast<size_t>(Assign[I])];
  return Out;
}
