//===- store/Store.h - Durable cross-run optimization store -----*- C++ -*-===//
//
// Part of ReplayOpt (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The persistent half of the crowd-sourced search (DESIGN.md §17): a
/// versioned, deterministic on-disk snapshot of the fleet server's state,
/// so "overnight, across the install base" actually spans nights — every
/// run warm-starts from the last run's verified leaderboard instead of a
/// cold population.
///
/// The store is one canonical JSON document (`store.json` in the store
/// directory) holding, per app, the full leaderboard: genomes by their
/// canonical pipeline string, pooled speedup samples, reporting devices
/// and device classes, TTL bookkeeping, provenance chains — and the
/// quarantine set, which MUST survive restart (a genome one night's
/// verification proved unsound never re-enters a hint set). Alongside the
/// boards it records the device-class model (k-means centroids +
/// assignments over the cost-model profile vectors) that keyed the
/// per-class leaderboards.
///
/// Format contract:
///  - serialize() is canonical: fixed field order, apps sorted by name,
///    %.17g doubles, 64-bit identities as "0x%016llx" hex strings (JSON
///    numbers are doubles here). serialize(deserialize(S)) == S for any
///    current-schema document, so load -> save is a byte fixed point and
///    store bytes are comparable across `--jobs`.
///  - save() writes `store.json.tmp` then renames — a crashed run leaves
///    the previous night intact, never a torn file.
///  - load() never fails the caller: a missing file is a silent cold
///    start; a corrupt, truncated or newer-schema file is a cold start
///    with a warning; an older-schema file loads with defaults for the
///    fields it predates (forward-tolerant reads).
///
//===----------------------------------------------------------------------===//

#ifndef ROPT_STORE_STORE_H
#define ROPT_STORE_STORE_H

#include <cstdint>
#include <string>
#include <vector>

namespace ropt {
namespace store {

/// Current store schema. History:
///   1  initial: apps/entries with pooled samples, quarantine, TTL ticks,
///      provenance, device classes; k-means class model; night counter.
inline constexpr int CurrentSchema = 1;

/// Provenance of a stored entry — the chain the genome rides on, carried
/// verbatim across nights so discovery credit survives restarts.
struct StoredProvenance {
  uint64_t Id = 0;
  int Device = -1; ///< Discovering device (-1 = server-injected).
  int Step = 0;
  uint64_t Time = 0; ///< Virtual discovery instant, prior run's clock.
};

/// One leaderboard row at rest. The genome is stored as its canonical
/// pipeline string (search::Genome::name()) so the store depends only on
/// support — the fleet layer parses it back on import.
struct StoredEntry {
  std::string Genome; ///< Canonical pipeline string (the entry key).
  uint64_t BinaryHash = 0;
  uint64_t CodeSize = 0;
  std::vector<double> Samples; ///< Pooled speedups, capped by the server.
  double Speedup = 0.0;        ///< median(Samples) as merged.
  std::vector<int> Devices;    ///< Reporting devices, ascending.
  std::vector<int> Classes;    ///< Reporting device classes, ascending.
  int Reports = 0;
  bool Quarantined = false;
  std::string RejectVerdict;
  uint64_t LastReportTick = 0;
  bool Expired = false;
  StoredProvenance Prov;
};

struct StoredApp {
  std::string Name;
  std::vector<StoredEntry> Entries; ///< Leaderboard order.
};

/// The device-class model of the last run: k-means centroids over the
/// profile vectors (see fleet::profileVector) and the per-device
/// assignment, so `ropt-report store` can print the roster and the next
/// run can compare its clustering against the stored one.
struct StoredClassModel {
  int K = 0;
  int Dims = 0;
  std::vector<std::vector<double>> Centroids; ///< K x Dims, id order.
  std::vector<int> Assignments;               ///< Per device id.
};

/// Everything one store file holds.
struct StoreState {
  int Schema = CurrentSchema;
  uint64_t Nights = 0; ///< Completed runs folded into this store.
  uint64_t FleetSeed = 0;
  StoredClassModel Classes;
  std::vector<StoredApp> Apps;
};

/// Renders \p S as the canonical store document (apps sorted by name).
std::string serialize(const StoreState &S);

/// Parses \p Text. On success Warning is empty; a corrupt or newer-schema
/// document yields an empty state plus a warning (never an abort).
struct DecodeResult {
  StoreState State;
  std::string Warning;
};
DecodeResult deserialize(const std::string &Text);

/// One store directory. The document lives at `<dir>/store.json`.
class Store {
public:
  explicit Store(std::string Dir) : Dir(std::move(Dir)) {}

  struct LoadResult {
    StoreState State;
    bool Found = false;     ///< store.json existed.
    std::string Warning;    ///< Non-empty = fell back to a cold start.
    std::string RawBytes;   ///< File contents when Found (for validation).
  };

  /// Reads the store. Never fails: missing -> cold start (no warning);
  /// unreadable/corrupt/newer schema -> cold start + warning.
  LoadResult load() const;

  /// Atomically replaces the store document (tmp + rename), creating the
  /// store directory if needed. Returns false with \p Err set on I/O
  /// failure — the previous document, if any, is left intact.
  bool save(const StoreState &S, std::string *Err = nullptr) const;

  const std::string &dir() const { return Dir; }
  std::string path() const;

private:
  std::string Dir;
};

} // namespace store
} // namespace ropt

#endif // ROPT_STORE_STORE_H
