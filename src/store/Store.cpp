//===- store/Store.cpp - Durable cross-run optimization store -------------===//

#include "store/Store.h"

#include "support/Format.h"
#include "support/Json.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>

using namespace ropt;
using namespace ropt::store;

namespace {

std::string hex64(uint64_t V) {
  return format("0x%016llx", static_cast<unsigned long long>(V));
}

uint64_t parseHex64(const std::string &S) {
  return std::strtoull(S.c_str(), nullptr, 16);
}

std::string provJson(const StoredProvenance &P) {
  json::Builder B;
  B.field("id", hex64(P.Id));
  B.field("device", P.Device);
  B.field("step", P.Step);
  B.field("time", static_cast<uint64_t>(P.Time));
  return std::move(B).str();
}

std::string entryJson(const StoredEntry &E) {
  json::Builder B;
  B.field("genome", E.Genome);
  B.field("hash", hex64(E.BinaryHash));
  B.field("code_size", E.CodeSize);
  {
    json::Builder A(/*Array=*/true);
    for (double S : E.Samples)
      A.element(S);
    B.fieldRaw("samples", std::move(A).str());
  }
  B.field("speedup", E.Speedup);
  {
    json::Builder A(/*Array=*/true);
    for (int D : E.Devices)
      A.element(static_cast<double>(D));
    B.fieldRaw("devices", std::move(A).str());
  }
  {
    json::Builder A(/*Array=*/true);
    for (int C : E.Classes)
      A.element(static_cast<double>(C));
    B.fieldRaw("classes", std::move(A).str());
  }
  B.field("reports", E.Reports);
  B.field("quarantined", E.Quarantined);
  B.field("verdict", E.RejectVerdict);
  B.field("last_report_tick", E.LastReportTick);
  B.field("expired", E.Expired);
  B.fieldRaw("prov", provJson(E.Prov));
  return std::move(B).str();
}

std::string classesJson(const StoredClassModel &M) {
  json::Builder B;
  B.field("k", M.K);
  B.field("dims", M.Dims);
  {
    json::Builder Rows(/*Array=*/true);
    for (const std::vector<double> &C : M.Centroids) {
      json::Builder Row(/*Array=*/true);
      for (double V : C)
        Row.element(V);
      Rows.elementRaw(std::move(Row).str());
    }
    B.fieldRaw("centroids", std::move(Rows).str());
  }
  {
    json::Builder A(/*Array=*/true);
    for (int V : M.Assignments)
      A.element(static_cast<double>(V));
    B.fieldRaw("assignments", std::move(A).str());
  }
  return std::move(B).str();
}

StoredProvenance decodeProv(const json::Value &V) {
  StoredProvenance P;
  P.Id = parseHex64(V.string("id", "0x0"));
  P.Device = static_cast<int>(V.number("device", -1));
  P.Step = static_cast<int>(V.number("step", 0));
  P.Time = static_cast<uint64_t>(V.number("time", 0));
  return P;
}

StoredEntry decodeEntry(const json::Value &V) {
  StoredEntry E;
  E.Genome = V.string("genome");
  E.BinaryHash = parseHex64(V.string("hash", "0x0"));
  E.CodeSize = static_cast<uint64_t>(V.number("code_size", 0));
  if (const json::Value *S = V.find("samples"))
    for (const json::Value &Elem : S->elements())
      E.Samples.push_back(Elem.asNumber());
  E.Speedup = V.number("speedup", 0.0);
  if (const json::Value *D = V.find("devices"))
    for (const json::Value &Elem : D->elements())
      E.Devices.push_back(static_cast<int>(Elem.asNumber()));
  if (const json::Value *C = V.find("classes"))
    for (const json::Value &Elem : C->elements())
      E.Classes.push_back(static_cast<int>(Elem.asNumber()));
  E.Reports = static_cast<int>(V.number("reports", 0));
  if (const json::Value *Q = V.find("quarantined"))
    E.Quarantined = Q->asBool();
  E.RejectVerdict = V.string("verdict");
  E.LastReportTick = static_cast<uint64_t>(V.number("last_report_tick", 0));
  if (const json::Value *X = V.find("expired"))
    E.Expired = X->asBool();
  if (const json::Value *P = V.find("prov"))
    E.Prov = decodeProv(*P);
  return E;
}

} // namespace

std::string store::serialize(const StoreState &S) {
  // Canonical app order: by name. The fleet server exports map-ordered
  // boards so this is usually a no-op, but the contract belongs to the
  // serializer — any producer yields the same bytes for the same state.
  std::vector<const StoredApp *> Apps;
  for (const StoredApp &A : S.Apps)
    Apps.push_back(&A);
  std::stable_sort(Apps.begin(), Apps.end(),
                   [](const StoredApp *A, const StoredApp *B) {
                     return A->Name < B->Name;
                   });

  json::Builder B;
  B.field("schema", S.Schema);
  B.field("tool", "ropt-store");
  B.field("nights", S.Nights);
  B.field("fleet_seed", S.FleetSeed);
  B.fieldRaw("classes", classesJson(S.Classes));
  {
    json::Builder AppArr(/*Array=*/true);
    for (const StoredApp *A : Apps) {
      json::Builder AB;
      AB.field("name", A->Name);
      json::Builder Entries(/*Array=*/true);
      for (const StoredEntry &E : A->Entries)
        Entries.elementRaw(entryJson(E));
      AB.fieldRaw("entries", std::move(Entries).str());
      AppArr.elementRaw(std::move(AB).str());
    }
    B.fieldRaw("apps", std::move(AppArr).str());
  }
  return std::move(B).str() + "\n";
}

DecodeResult store::deserialize(const std::string &Text) {
  DecodeResult Out;
  support::Result<json::Value> Parsed = json::parse(Text);
  if (!Parsed) {
    Out.Warning = "store: corrupt document (" + Parsed.error().Message +
                  "); starting cold";
    return Out;
  }
  const json::Value &V = Parsed.value();
  if (!V.isObject()) {
    Out.Warning = "store: document is not an object; starting cold";
    return Out;
  }
  const json::Value *SchemaV = V.find("schema");
  int Schema = SchemaV ? static_cast<int>(SchemaV->asNumber(-1)) : -1;
  if (Schema < 1) {
    Out.Warning = "store: missing or invalid schema; starting cold";
    return Out;
  }
  if (Schema > CurrentSchema) {
    Out.Warning = format("store: schema %d is newer than this build's %d; "
                         "starting cold",
                         Schema, CurrentSchema);
    return Out;
  }

  // Forward-tolerant reads from here on: an older-schema document simply
  // lacks fields, and every absent field decodes to its default.
  StoreState &S = Out.State;
  S.Schema = Schema;
  S.Nights = static_cast<uint64_t>(V.number("nights", 0));
  S.FleetSeed = static_cast<uint64_t>(V.number("fleet_seed", 0));
  if (const json::Value *C = V.find("classes")) {
    S.Classes.K = static_cast<int>(C->number("k", 0));
    S.Classes.Dims = static_cast<int>(C->number("dims", 0));
    if (const json::Value *Cen = C->find("centroids"))
      for (const json::Value &Row : Cen->elements()) {
        std::vector<double> R;
        for (const json::Value &Elem : Row.elements())
          R.push_back(Elem.asNumber());
        S.Classes.Centroids.push_back(std::move(R));
      }
    if (const json::Value *A = C->find("assignments"))
      for (const json::Value &Elem : A->elements())
        S.Classes.Assignments.push_back(static_cast<int>(Elem.asNumber()));
  }
  if (const json::Value *Apps = V.find("apps")) {
    for (const json::Value &AV : Apps->elements()) {
      if (!AV.isObject())
        continue;
      StoredApp A;
      A.Name = AV.string("name");
      if (A.Name.empty())
        continue;
      if (const json::Value *Entries = AV.find("entries"))
        for (const json::Value &EV : Entries->elements())
          if (EV.isObject() && !EV.string("genome").empty())
            A.Entries.push_back(decodeEntry(EV));
      S.Apps.push_back(std::move(A));
    }
  }
  return Out;
}

std::string Store::path() const {
  return (std::filesystem::path(Dir) / "store.json").string();
}

Store::LoadResult Store::load() const {
  LoadResult Out;
  std::string P = path();
  std::FILE *F = std::fopen(P.c_str(), "rb");
  if (!F)
    return Out; // Missing store: a silent cold start.
  Out.Found = true;
  char Buf[1 << 14];
  size_t Read;
  while ((Read = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.RawBytes.append(Buf, Read);
  std::fclose(F);

  DecodeResult D = deserialize(Out.RawBytes);
  Out.State = std::move(D.State);
  Out.Warning = std::move(D.Warning);
  if (!Out.Warning.empty())
    Out.Warning += " (" + P + ")";
  return Out;
}

bool Store::save(const StoreState &S, std::string *Err) const {
  std::error_code Ec;
  std::filesystem::create_directories(Dir, Ec);
  if (Ec) {
    if (Err)
      *Err = "store: cannot create " + Dir + ": " + Ec.message();
    return false;
  }
  std::string Doc = serialize(S);
  std::string P = path();
  std::string Tmp = P + ".tmp";
  std::FILE *F = std::fopen(Tmp.c_str(), "wb");
  if (!F) {
    if (Err)
      *Err = "store: cannot write " + Tmp;
    return false;
  }
  bool Ok = std::fwrite(Doc.data(), 1, Doc.size(), F) == Doc.size();
  Ok = std::fclose(F) == 0 && Ok;
  if (!Ok) {
    if (Err)
      *Err = "store: short write to " + Tmp;
    std::remove(Tmp.c_str());
    return false;
  }
  // Atomic publish: a crashed run leaves the previous night intact.
  std::filesystem::rename(Tmp, P, Ec);
  if (Ec) {
    if (Err)
      *Err = "store: rename to " + P + " failed: " + Ec.message();
    std::remove(Tmp.c_str());
    return false;
  }
  return true;
}
