//===- analysis/FleetTrace.cpp - Fleet-wide virtual-clock trace -----------===//
//
// Part of ReplayOpt (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/FleetTrace.h"

#include "support/Json.h"

#include <algorithm>
#include <cstdio>

namespace ropt {
namespace analysis {

void FleetTrace::beginCell(const std::string &App, int Devices,
                           int NumTracks) {
  Cell C;
  C.App = App;
  C.Devices = Devices;
  C.NumTracks = NumTracks < 1 ? 1 : NumTracks;
  Cells.push_back(std::move(C));
}

void FleetTrace::add(FleetTraceEvent E) {
  if (Cells.empty())
    beginCell("", 0, 1);
  Cells.back().Events.push_back(std::move(E));
}

namespace {

std::string metadataEvent(uint64_t Pid, const std::string &Label) {
  json::Builder B;
  B.field("name", "process_name")
      .field("ph", "M")
      .field("pid", Pid)
      .field("tid", uint64_t(0));
  json::Builder Args;
  Args.field("name", Label);
  B.fieldRaw("args", std::move(Args).str());
  return std::move(B).str();
}

} // namespace

std::string FleetTrace::toChromeJson() const {
  std::string Out;
  Out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool First = true;
  auto Emit = [&](std::string Json) {
    if (!First)
      Out += ',';
    First = false;
    Out += Json;
  };

  uint64_t BasePid = 0;
  for (const Cell &C : Cells) {
    // pid 0 of the block is the server track, 1..NumTracks the classes.
    std::string Prefix = C.App + " x" + std::to_string(C.Devices);
    Emit(metadataEvent(BasePid, Prefix + " server"));
    for (int T = 0; T < C.NumTracks; ++T)
      Emit(metadataEvent(BasePid + 1 + static_cast<uint64_t>(T),
                         Prefix + " class " + std::to_string(T)));

    // Events arrive in commit order, but churn schedules are placed at
    // future ticks before the loop runs — sort by the virtual key.
    std::vector<const FleetTraceEvent *> Order;
    Order.reserve(C.Events.size());
    for (const FleetTraceEvent &E : C.Events)
      Order.push_back(&E);
    std::stable_sort(Order.begin(), Order.end(),
                     [](const FleetTraceEvent *A, const FleetTraceEvent *B) {
                       if (A->Time != B->Time)
                         return A->Time < B->Time;
                       return A->Seq < B->Seq;
                     });

    for (const FleetTraceEvent *E : Order) {
      uint64_t Pid = BasePid + static_cast<uint64_t>(E->Track < 0
                                                         ? 0
                                                         : 1 + E->Track);
      uint64_t Tid = static_cast<uint64_t>(E->Device < 0 ? 0 : E->Device);
      switch (E->K) {
      case FleetTraceEvent::Kind::Step: {
        json::Builder B;
        B.field("name", E->Name)
            .field("cat", "fleet.step")
            .field("ph", "X")
            .field("ts", E->Time)
            .field("dur", E->Duration)
            .field("pid", Pid)
            .field("tid", Tid);
        json::Builder Args;
        Args.field("best_speedup", E->Value);
        B.fieldRaw("args", std::move(Args).str());
        Emit(std::move(B).str());
        break;
      }
      case FleetTraceEvent::Kind::Delivery: {
        // Async begin/end pair: Chrome draws the in-flight window (and,
        // with flow arrows enabled, the arc) between the two ticks.
        json::Builder Begin;
        Begin.field("name", E->Name)
            .field("cat", "fleet.delivery")
            .field("ph", "b")
            .field("id", E->FlowId)
            .field("ts", E->Time)
            .field("pid", Pid)
            .field("tid", Tid);
        Emit(std::move(Begin).str());
        json::Builder End;
        End.field("name", E->Name)
            .field("cat", "fleet.delivery")
            .field("ph", "e")
            .field("id", E->FlowId)
            .field("ts", E->EndTime)
            .field("pid", Pid)
            .field("tid", Tid);
        Emit(std::move(End).str());
        break;
      }
      case FleetTraceEvent::Kind::Merge:
      case FleetTraceEvent::Kind::Join:
      case FleetTraceEvent::Kind::Leave: {
        json::Builder B;
        B.field("name", E->Name)
            .field("cat", E->K == FleetTraceEvent::Kind::Merge
                              ? "fleet.server"
                              : "fleet.churn")
            .field("ph", "i")
            .field("s", "p")
            .field("ts", E->Time)
            .field("pid", Pid)
            .field("tid", Tid);
        Emit(std::move(B).str());
        break;
      }
      }
    }
    BasePid += static_cast<uint64_t>(C.NumTracks) + 1;
  }
  Out += "]}";
  return Out;
}

} // namespace analysis
} // namespace ropt
