//===- analysis/FleetTrace.h - Fleet-wide virtual-clock trace ---*- C++ -*-===//
//
// Part of ReplayOpt (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders the whole fleet's virtual-time history as one Chrome trace
/// (`fleet.trace.json`, DESIGN.md §15): device search steps as Complete
/// spans, in-flight report/hint deliveries as async arrows, server merges
/// and churn join/leave as instants. The model is deliberately neutral —
/// plain events, no fleet types — so the analysis layer stays below the
/// fleet in the dependency order and the report layer can render traces
/// without linking `ropt_fleet`.
///
/// Determinism contract: events are appended from serial contexts (event
/// loop commits) carrying the loop's own `(Time, Seq)` key, the renderer
/// sorts by that key and emits everything serially — the JSON is a pure
/// function of the events and therefore byte-identical at any `--jobs`.
///
/// Track layout: one Chrome *process* per device class plus one for the
/// server, per coordinator cell (app x device-count); the device id is
/// the thread. Virtual ticks are emitted as microseconds, so a 1500-tick
/// horizon renders as a 1.5 ms timeline.
///
//===----------------------------------------------------------------------===//

#ifndef ROPT_ANALYSIS_FLEET_TRACE_H
#define ROPT_ANALYSIS_FLEET_TRACE_H

#include <cstdint>
#include <string>
#include <vector>

namespace ropt {
namespace analysis {

/// One virtual-time event of a fleet run.
struct FleetTraceEvent {
  enum class Kind {
    Step,     ///< One device search step (Complete span of Duration ticks).
    Delivery, ///< An in-flight message (async arrow Time -> EndTime).
    Merge,    ///< A server-side leaderboard merge (instant, server track).
    Join,     ///< A churn joiner's first step was scheduled (instant).
    Leave,    ///< A device died mid-run (instant).
  };
  Kind K = Kind::Step;
  uint64_t Time = 0; ///< Virtual start tick.
  uint64_t Seq = 0;  ///< Tie-break within a tick (append order).
  int Track = -1;    ///< Device class id; -1 selects the server track.
  int Device = -1;   ///< Reporting device (Chrome thread id).
  uint64_t Duration = 0; ///< Step: virtual ticks spent.
  uint64_t EndTime = 0;  ///< Delivery: arrival tick.
  uint64_t FlowId = 0;   ///< Delivery: async-arrow id (unique per cell).
  std::string Name;      ///< Human label ("step 3", "hints", "merge d2").
  double Value = 0.0;    ///< Step: best speedup after the step.
};

/// Accumulates per-cell events and renders the single Chrome JSON.
class FleetTrace {
public:
  /// Opens a new cell (one coordinator run: app x device count); its
  /// server track and \p NumTracks class tracks get a private pid block
  /// so several sweep cells coexist in one timeline.
  void beginCell(const std::string &App, int Devices, int NumTracks);

  /// Appends one event to the current cell (beginCell() first).
  void add(FleetTraceEvent E);

  bool empty() const { return Cells.empty(); }

  /// The deterministic `{"displayTimeUnit":...,"traceEvents":[...]}`
  /// rendering of every cell, events sorted by `(Time, Seq)`.
  std::string toChromeJson() const;

private:
  struct Cell {
    std::string App;
    int Devices = 0;
    int NumTracks = 0;
    std::vector<FleetTraceEvent> Events;
  };
  std::vector<Cell> Cells;
};

} // namespace analysis
} // namespace ropt

#endif // ROPT_ANALYSIS_FLEET_TRACE_H
