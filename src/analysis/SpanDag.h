//===- analysis/SpanDag.h - Span tree over trace events ---------*- C++ -*-===//
//
// Part of ReplayOpt (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reconstructs the execution DAG from the trace recorder's Complete
/// spans: per-thread nesting by interval containment, self time (span
/// duration minus child durations), per-name aggregates for the
/// summarizer's top-spans table, and the wall-clock critical path (the
/// longest root span followed down its longest-child chain). Spans carry
/// wall-clock durations, so this view feeds human-facing summaries; the
/// byte-stable decision data lives in RegionAnalysis.
///
//===----------------------------------------------------------------------===//

#ifndef ROPT_ANALYSIS_SPAN_DAG_H
#define ROPT_ANALYSIS_SPAN_DAG_H

#include "support/Result.h"
#include "support/Trace.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ropt {
namespace analysis {

/// One span in the reconstructed tree.
struct SpanNode {
  std::string Name;
  uint64_t StartUs = 0;
  uint64_t DurUs = 0;
  uint64_t SelfUs = 0; ///< DurUs minus children's DurUs, clamped at 0.
  uint32_t ThreadId = 0;
  int Parent = -1; ///< Index into nodes(), -1 for a root.
  std::vector<int> Children;
};

/// Per-name rollup for the top-spans table.
struct SpanStats {
  std::string Name;
  uint64_t TotalUs = 0;
  uint64_t SelfUs = 0;
  uint64_t Count = 0;
};

class SpanDag {
public:
  /// Builds from recorder events (Counter/Instant events are ignored).
  static SpanDag fromEvents(const std::vector<TraceEvent> &Events);
  /// Parses a Chrome trace_event export (trace.json) and builds from its
  /// "ph":"X" entries.
  static support::Result<SpanDag> fromChromeJson(const std::string &Text);

  const std::vector<SpanNode> &nodes() const { return Nodes; }
  const std::vector<int> &roots() const { return Roots; }

  /// The wall-clock critical path: the longest root span, then its
  /// longest child, and so on to a leaf. Node indices, root first. Ties
  /// break toward the earlier start, then the lexically smaller name.
  std::vector<int> criticalPath() const;

  /// Per-name aggregates, the \p N largest by total duration (ties break
  /// by name), for summarize's top-spans table.
  std::vector<SpanStats> topSpans(size_t N) const;

private:
  struct RawSpan {
    std::string Name;
    uint64_t StartUs = 0;
    uint64_t DurUs = 0;
    uint32_t ThreadId = 0;
  };
  static SpanDag build(std::vector<RawSpan> Spans);

  std::vector<SpanNode> Nodes;
  std::vector<int> Roots;
};

} // namespace analysis
} // namespace ropt

#endif // ROPT_ANALYSIS_SPAN_DAG_H
