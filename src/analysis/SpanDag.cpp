//===- analysis/SpanDag.cpp - Span tree over trace events -------------------===//

#include "analysis/SpanDag.h"

#include "support/Json.h"

#include <algorithm>
#include <map>

using namespace ropt;
using namespace ropt::analysis;

SpanDag SpanDag::build(std::vector<RawSpan> Spans) {
  // Parent-before-child order: by thread, then start ascending, then
  // duration descending (the containing span first). For identical
  // intervals the RAII recorder emits the inner span first (destructors
  // unwind inside-out), so the later-recorded event is the outer one.
  std::vector<size_t> Order(Spans.size());
  for (size_t I = 0; I != Order.size(); ++I)
    Order[I] = I;
  std::sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
    const RawSpan &SA = Spans[A], &SB = Spans[B];
    if (SA.ThreadId != SB.ThreadId)
      return SA.ThreadId < SB.ThreadId;
    if (SA.StartUs != SB.StartUs)
      return SA.StartUs < SB.StartUs;
    if (SA.DurUs != SB.DurUs)
      return SA.DurUs > SB.DurUs;
    return A > B;
  });

  SpanDag Dag;
  Dag.Nodes.reserve(Spans.size());
  std::vector<int> Stack; // Indices into Dag.Nodes, current thread only.
  uint32_t StackThread = 0;
  for (size_t I : Order) {
    RawSpan &S = Spans[I];
    if (S.ThreadId != StackThread) {
      Stack.clear();
      StackThread = S.ThreadId;
    }
    uint64_t End = S.StartUs + S.DurUs;
    while (!Stack.empty()) {
      const SpanNode &Top = Dag.Nodes[static_cast<size_t>(Stack.back())];
      if (S.StartUs >= Top.StartUs && End <= Top.StartUs + Top.DurUs)
        break;
      Stack.pop_back();
    }
    SpanNode N;
    N.Name = std::move(S.Name);
    N.StartUs = S.StartUs;
    N.DurUs = S.DurUs;
    N.SelfUs = S.DurUs;
    N.ThreadId = S.ThreadId;
    N.Parent = Stack.empty() ? -1 : Stack.back();
    int Index = static_cast<int>(Dag.Nodes.size());
    Dag.Nodes.push_back(std::move(N));
    if (Stack.empty())
      Dag.Roots.push_back(Index);
    else
      Dag.Nodes[static_cast<size_t>(Stack.back())].Children.push_back(
          Index);
    Stack.push_back(Index);
  }

  for (SpanNode &N : Dag.Nodes) {
    uint64_t ChildUs = 0;
    for (int C : N.Children)
      ChildUs += Dag.Nodes[static_cast<size_t>(C)].DurUs;
    N.SelfUs = ChildUs >= N.DurUs ? 0 : N.DurUs - ChildUs;
  }
  return Dag;
}

SpanDag SpanDag::fromEvents(const std::vector<TraceEvent> &Events) {
  std::vector<RawSpan> Spans;
  for (const TraceEvent &E : Events) {
    if (E.Ph != TraceEvent::Phase::Complete)
      continue;
    RawSpan S;
    S.Name = E.Name;
    S.StartUs = E.StartUs;
    S.DurUs = E.DurUs;
    S.ThreadId = E.ThreadId;
    Spans.push_back(std::move(S));
  }
  return build(std::move(Spans));
}

support::Result<SpanDag> SpanDag::fromChromeJson(const std::string &Text) {
  support::Result<json::Value> Doc = json::parse(Text);
  if (!Doc)
    return support::Error(support::ErrorCode::Unknown,
                          "trace.json: " + Doc.error().Message);
  const json::Value *Events = Doc.value().find("traceEvents");
  if (!Events || !Events->isArray())
    return support::Error(support::ErrorCode::Unknown,
                          "trace.json: missing traceEvents array");
  std::vector<RawSpan> Spans;
  for (const json::Value &E : Events->elements()) {
    if (E.string("ph") != "X")
      continue;
    RawSpan S;
    S.Name = E.string("name");
    S.StartUs = static_cast<uint64_t>(E.number("ts"));
    S.DurUs = static_cast<uint64_t>(E.number("dur"));
    S.ThreadId = static_cast<uint32_t>(E.number("tid"));
    Spans.push_back(std::move(S));
  }
  return build(std::move(Spans));
}

std::vector<int> SpanDag::criticalPath() const {
  auto Better = [&](int A, int B) {
    // True when A is the better (longer) pick; ties toward the earlier
    // start, then the lexically smaller name, for a stable result.
    const SpanNode &NA = Nodes[static_cast<size_t>(A)];
    const SpanNode &NB = Nodes[static_cast<size_t>(B)];
    if (NA.DurUs != NB.DurUs)
      return NA.DurUs > NB.DurUs;
    if (NA.StartUs != NB.StartUs)
      return NA.StartUs < NB.StartUs;
    return NA.Name < NB.Name;
  };
  std::vector<int> Path;
  if (Roots.empty())
    return Path;
  int Cur = Roots.front();
  for (int R : Roots)
    if (R != Cur && Better(R, Cur))
      Cur = R;
  while (true) {
    Path.push_back(Cur);
    const SpanNode &N = Nodes[static_cast<size_t>(Cur)];
    if (N.Children.empty())
      break;
    int Next = N.Children.front();
    for (int C : N.Children)
      if (C != Next && Better(C, Next))
        Next = C;
    Cur = Next;
  }
  return Path;
}

std::vector<SpanStats> SpanDag::topSpans(size_t N) const {
  std::map<std::string, SpanStats> ByName;
  for (const SpanNode &Node : Nodes) {
    SpanStats &S = ByName[Node.Name];
    S.Name = Node.Name;
    S.TotalUs += Node.DurUs;
    S.SelfUs += Node.SelfUs;
    ++S.Count;
  }
  std::vector<SpanStats> Out;
  Out.reserve(ByName.size());
  for (auto &KV : ByName)
    Out.push_back(std::move(KV.second));
  std::sort(Out.begin(), Out.end(),
            [](const SpanStats &A, const SpanStats &B) {
              if (A.TotalUs != B.TotalUs)
                return A.TotalUs > B.TotalUs;
              return A.Name < B.Name;
            });
  if (Out.size() > N)
    Out.resize(N);
  return Out;
}
