//===- analysis/RegionAnalysis.cpp - Criticality and bottlenecks -----------===//

#include "analysis/RegionAnalysis.h"

#include "lir/Passes.h"
#include "vm/CostModel.h"

#include <algorithm>
#include <cstring>
#include <set>

using namespace ropt;
using namespace ropt::analysis;
using namespace ropt::dex;

const char *analysis::bottleneckName(Bottleneck B) {
  switch (B) {
  case Bottleneck::NativeHeavy: return "native_heavy";
  case Bottleneck::MemoryBound: return "memory_bound";
  case Bottleneck::Branchy: return "branchy";
  case Bottleneck::Compute: return "compute";
  case Bottleneck::Balanced: return "balanced";
  }
  return "balanced";
}

Bottleneck analysis::bottleneckFromName(const std::string &Name) {
  if (Name == "native_heavy")
    return Bottleneck::NativeHeavy;
  if (Name == "memory_bound")
    return Bottleneck::MemoryBound;
  if (Name == "branchy")
    return Bottleneck::Branchy;
  if (Name == "compute")
    return Bottleneck::Compute;
  return Bottleneck::Balanced;
}

double RegionFeatures::nativeShare() const {
  uint64_t Total = Cycles + NativeCycles;
  if (Total == 0)
    return 0.0;
  return static_cast<double>(NativeCycles) / static_cast<double>(Total);
}

double RegionFeatures::memShare() const {
  if (Cycles == 0)
    return 0.0;
  // Priced with the default cost model: the classifier wants the share of
  // managed cycles spent moving data (including allocator machinery), not
  // the raw event counts.
  vm::CycleCostModel Costs;
  uint64_t MemCycles = MemReads * Costs.LoadCycles +
                       CacheMisses * Costs.CacheMissPenalty +
                       MemWrites * Costs.StoreCycles +
                       Allocs * Costs.AllocBaseCycles +
                       AllocSlots * Costs.AllocPerSlotCycles;
  return static_cast<double>(MemCycles) / static_cast<double>(Cycles);
}

double RegionFeatures::mispredictsPerKiloInsn() const {
  if (Insns == 0)
    return 0.0;
  return 1000.0 * static_cast<double>(Mispredicts) /
         static_cast<double>(Insns);
}

Bottleneck analysis::classify(const RegionFeatures &F,
                              const ClassifierRules &Rules) {
  if (F.nativeShare() >= Rules.NativeShareMin)
    return Bottleneck::NativeHeavy;
  if (F.memShare() >= Rules.MemShareMin)
    return Bottleneck::MemoryBound;
  if (F.mispredictsPerKiloInsn() >= Rules.MispredictPerKiloInsnMin)
    return Bottleneck::Branchy;
  if (F.memShare() <= Rules.ComputeMemShareMax &&
      F.mispredictsPerKiloInsn() < Rules.ComputeMispredictMax)
    return Bottleneck::Compute;
  return Bottleneck::Balanced;
}

const RegionReport *AppAnalysis::byRoot(MethodId Root) const {
  for (const RegionReport &R : Regions)
    if (R.Root == Root)
      return &R;
  return nullptr;
}

namespace {

/// Deterministic callee list of \p M restricted to \p Closure: static
/// targets plus every possible virtual dispatch target, in code order,
/// first occurrence only.
std::vector<MethodId> calleesIn(const DexFile &File, const Method &M,
                                const std::set<MethodId> &Closure) {
  std::vector<MethodId> Out;
  auto Add = [&](MethodId Id) {
    if (Id == M.Id || !Closure.count(Id))
      return;
    if (std::find(Out.begin(), Out.end(), Id) == Out.end())
      Out.push_back(Id);
  };
  for (const Insn &I : M.Code) {
    if (I.Op == Opcode::InvokeStatic) {
      Add(I.Idx);
    } else if (I.Op == Opcode::InvokeVirtual) {
      const Method &Declared = File.method(I.Idx);
      for (const ClassInfo &C : File.classes()) {
        if (!File.isSubclassOf(C.Id, Declared.Owner))
          continue;
        if (Declared.VTableSlot >= 0 &&
            static_cast<size_t>(Declared.VTableSlot) < C.VTable.size())
          Add(C.VTable[static_cast<size_t>(Declared.VTableSlot)]);
      }
    }
  }
  return Out;
}

/// Longest exclusive-cycle chain from \p Id down the region's static call
/// graph. Back edges (recursion) are cut by the on-stack set; the graph
/// is method-count small, so plain DFS is fine.
uint64_t longestChain(const DexFile &File,
                      const profiler::MethodProfile &Profile,
                      const std::set<MethodId> &Closure, MethodId Id,
                      std::set<MethodId> &OnStack,
                      std::vector<MethodId> &Chain) {
  uint64_t Self = Id < Profile.ExclusiveCycles.size()
                      ? Profile.ExclusiveCycles[Id]
                      : 0;
  OnStack.insert(Id);
  uint64_t BestBelow = 0;
  std::vector<MethodId> BestChain;
  for (MethodId Callee : calleesIn(File, File.method(Id), Closure)) {
    if (OnStack.count(Callee))
      continue;
    std::vector<MethodId> Sub;
    uint64_t C = longestChain(File, Profile, Closure, Callee, OnStack, Sub);
    if (C > BestBelow) {
      BestBelow = C;
      BestChain = std::move(Sub);
    }
  }
  OnStack.erase(Id);
  Chain.clear();
  Chain.push_back(Id);
  Chain.insert(Chain.end(), BestChain.begin(), BestChain.end());
  return Self + BestBelow;
}

struct Candidate {
  MethodId Root = InvalidId;
  std::vector<MethodId> Methods;
  uint64_t Cycles = 0;
};

} // namespace

AppAnalysis analysis::analyzeApp(const DexFile &File,
                                 const profiler::MethodProfile &Profile,
                                 const profiler::ReplayabilityAnalysis &RA,
                                 size_t MaxRegions,
                                 const ClassifierRules &Rules) {
  AppAnalysis Out;

  // Algorithm 1's root enumeration, keeping every candidate instead of
  // only the winner.
  std::vector<Candidate> Candidates;
  for (const Method &M : File.methods()) {
    if (!RA.isReplayable(M.Id) || !RA.isCompilable(M.Id))
      continue;
    if (M.Id >= Profile.ExclusiveCycles.size())
      continue;
    Candidate C;
    C.Root = M.Id;
    C.Methods = profiler::compilableRegion(File, RA, M.Id);
    for (MethodId R : C.Methods)
      if (R < Profile.ExclusiveCycles.size())
        C.Cycles += Profile.ExclusiveCycles[R];
    if (C.Cycles == 0)
      continue;
    Candidates.push_back(std::move(C));
  }

  // Hottest first; root id breaks ties so the winner matches
  // detectHotRegion()'s first-max choice.
  std::sort(Candidates.begin(), Candidates.end(),
            [](const Candidate &A, const Candidate &B) {
              if (A.Cycles != B.Cycles)
                return A.Cycles > B.Cycles;
              return A.Root < B.Root;
            });

  // Nested candidates are the same work seen from a lower root: a root
  // already inside a kept (hotter) region is not a separate candidate.
  std::vector<Candidate> Kept;
  for (Candidate &C : Candidates) {
    if (Kept.size() >= MaxRegions)
      break;
    bool Nested = false;
    for (const Candidate &K : Kept)
      if (std::find(K.Methods.begin(), K.Methods.end(), C.Root) !=
          K.Methods.end()) {
        Nested = true;
        break;
      }
    if (!Nested)
      Kept.push_back(std::move(C));
  }
  if (Kept.empty())
    return Out;

  double SumSq = 0.0;
  for (const Candidate &K : Kept) {
    double C = static_cast<double>(K.Cycles);
    SumSq += C * C;
  }
  double MaxCycles = static_cast<double>(Kept.front().Cycles);

  for (Candidate &K : Kept) {
    RegionReport R;
    R.Root = K.Root;
    R.RootName = File.method(K.Root).Name;
    R.Methods = std::move(K.Methods);
    R.Features.Cycles = K.Cycles;
    for (MethodId Id : R.Methods) {
      if (Id >= Profile.Features.size())
        continue;
      const vm::MethodFeatureCounters &F = Profile.Features[Id];
      R.Features.Insns += F.Insns;
      R.Features.Branches += F.Branches;
      R.Features.Mispredicts += F.Mispredicts;
      R.Features.MemReads += F.MemReads;
      R.Features.MemWrites += F.MemWrites;
      R.Features.CacheMisses += F.CacheMisses;
      R.Features.Allocs += F.Allocs;
      R.Features.AllocSlots += F.AllocSlots;
      R.Features.NativeCycles += F.NativeCycles;
    }
    R.Label = classify(R.Features, Rules);

    std::set<MethodId> Closure(R.Methods.begin(), R.Methods.end());
    std::set<MethodId> OnStack;
    R.CriticalPathCycles = longestChain(File, Profile, Closure, R.Root,
                                        OnStack, R.CriticalChain);

    R.Slack = Kept.front().Cycles - K.Cycles;
    double C = static_cast<double>(K.Cycles);
    R.BudgetWeight = SumSq > 0.0 ? (C * C) / SumSq : 0.0;
    R.BudgetScale =
        MaxCycles > 0.0 ? (C * C) / (MaxCycles * MaxCycles) : 0.0;
    Out.Regions.push_back(std::move(R));
  }
  return Out;
}

uint32_t analysis::prunedPassMask(Bottleneck B) {
  auto Bit = [](lir::PassId P) {
    return 1u << static_cast<uint32_t>(P);
  };
  switch (B) {
  case Bottleneck::MemoryBound:
    // Unrolling and peeling multiply the working set without shortening
    // the data-movement spine; JNI intrinsics have nothing to intrinsify.
    return Bit(lir::PassId::LoopUnroll) | Bit(lir::PassId::LoopPeel) |
           Bit(lir::PassId::JniIntrinsics);
  case Bottleneck::NativeHeavy:
    // The time is on the far side of the JNI boundary: loop-body
    // restructuring and bounds-check elimination move managed cycles only.
    return Bit(lir::PassId::LoopUnroll) | Bit(lir::PassId::LoopPeel) |
           Bit(lir::PassId::BoundsCheckElim);
  case Bottleneck::Branchy:
    return Bit(lir::PassId::JniIntrinsics) |
           Bit(lir::PassId::Reassociate);
  case Bottleneck::Compute:
    return Bit(lir::PassId::JniIntrinsics);
  case Bottleneck::Balanced:
    return 0;
  }
  return 0;
}
