//===- analysis/RegionAnalysis.h - Criticality and bottlenecks --*- C++ -*-===//
//
// Part of ReplayOpt (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The decision side of the observability loop (DESIGN.md §13): turn the
/// profiler's per-method exclusive cycles and microarchitectural feature
/// counts into (1) a ranked set of candidate hot regions with per-region
/// slack and critical-path cycles, (2) one auditable bottleneck label per
/// region from a deterministic rule cascade, and (3) a criticality-
/// weighted search-budget allocation: the slack-0 region keeps the full
/// GA budget untouched, cooler regions get quadratically scaled-down
/// budgets plus a bottleneck-specific mask of genome arms not worth
/// drawing. Everything here is a pure function of the profile, so the
/// output is byte-identical across --jobs and reruns.
///
//===----------------------------------------------------------------------===//

#ifndef ROPT_ANALYSIS_REGION_ANALYSIS_H
#define ROPT_ANALYSIS_REGION_ANALYSIS_H

#include "profiler/HotRegion.h"

#include <string>
#include <vector>

namespace ropt {
namespace analysis {

/// The label vocabulary. Exactly one per region; the first matching rule
/// in classify()'s cascade wins.
enum class Bottleneck {
  NativeHeavy, ///< JNI transitions + native bodies dominate.
  MemoryBound, ///< Loads/stores + cache misses dominate.
  Branchy,     ///< High mispredict density.
  Compute,     ///< ALU-bound: little memory traffic, predictable branches.
  Balanced,    ///< Nothing dominates.
};

const char *bottleneckName(Bottleneck B);
/// Inverse of bottleneckName(); Balanced for unknown strings.
Bottleneck bottleneckFromName(const std::string &Name);

/// Feature vector for one region (sums over the closure's methods), plus
/// the derived shares the classifier actually tests — recorded alongside
/// the label so every labeling decision is auditable from the run report.
struct RegionFeatures {
  uint64_t Cycles = 0; ///< Closure exclusive cycles (managed code only).
  uint64_t Insns = 0;
  uint64_t Branches = 0;
  uint64_t Mispredicts = 0;
  uint64_t MemReads = 0;
  uint64_t MemWrites = 0;
  uint64_t CacheMisses = 0;
  uint64_t Allocs = 0;
  uint64_t AllocSlots = 0;
  uint64_t NativeCycles = 0; ///< JNI work triggered by closure methods.

  /// JNI share of the region's total footprint (managed + native).
  double nativeShare() const;
  /// Estimated memory-cycle share of the managed cycles, priced with the
  /// default cost model (loads, stores, miss penalty, alloc machinery).
  double memShare() const;
  /// Mispredicted branches per thousand instructions.
  double mispredictsPerKiloInsn() const;
};

/// Rule thresholds (documented in DESIGN.md §13). Defaults are what the
/// pipeline ships; tests construct variants to probe the cascade.
struct ClassifierRules {
  double NativeShareMin = 0.25;
  double MemShareMin = 0.40;
  double MispredictPerKiloInsnMin = 12.0;
  double ComputeMemShareMax = 0.15;
  double ComputeMispredictMax = 4.0;
};

/// The rule cascade: native_heavy > memory_bound > branchy > compute >
/// balanced, first match wins.
Bottleneck classify(const RegionFeatures &F,
                    const ClassifierRules &Rules = ClassifierRules());

/// One candidate region with everything the budget allocator and the
/// run report need.
struct RegionReport {
  dex::MethodId Root = dex::InvalidId;
  std::string RootName;
  std::vector<dex::MethodId> Methods; ///< Compilable closure incl. Root.
  RegionFeatures Features;
  Bottleneck Label = Bottleneck::Balanced;
  /// Longest root-to-leaf chain of exclusive cycles through the region's
  /// static call graph (back edges cut) — the region's serial spine.
  uint64_t CriticalPathCycles = 0;
  /// Method ids along that chain, root first.
  std::vector<dex::MethodId> CriticalChain;
  /// Hottest-region cycles minus this region's cycles; 0 marks the
  /// critical region.
  uint64_t Slack = 0;
  /// Quadratic criticality weight; weights sum to 1 over the set.
  double BudgetWeight = 0.0;
  /// BudgetWeight normalized so the slack-0 region gets exactly 1.0 —
  /// its GA budget is the full, untouched configuration.
  double BudgetScale = 0.0;
};

/// The per-app analysis: candidate regions hottest-first (index 0 is the
/// slack-0 critical region detectHotRegion() would have picked).
struct AppAnalysis {
  std::vector<RegionReport> Regions;

  bool empty() const { return Regions.empty(); }
  const RegionReport *critical() const {
    return Regions.empty() ? nullptr : &Regions.front();
  }
  /// Region whose root is \p Root, or nullptr.
  const RegionReport *byRoot(dex::MethodId Root) const;
};

/// Enumerates candidate regions the way Algorithm 1 enumerates roots
/// (replayable + compilable, nonzero profiled cycles), dedupes nested
/// candidates (a root already inside a hotter region's closure is not a
/// separate candidate), keeps the top \p MaxRegions by cycles, then
/// classifies and allocates budget. Pure function of its inputs.
AppAnalysis analyzeApp(const dex::DexFile &File,
                       const profiler::MethodProfile &Profile,
                       const profiler::ReplayabilityAnalysis &RA,
                       size_t MaxRegions = 3,
                       const ClassifierRules &Rules = ClassifierRules());

/// Genome arms not worth drawing for a region with label \p B, as a
/// bitmask over lir::PassId (GenomeConfig::DisabledPassMask). Applied
/// only to slack>0 regions — the critical region always searches the
/// full space.
uint32_t prunedPassMask(Bottleneck B);

} // namespace analysis
} // namespace ropt

#endif // ROPT_ANALYSIS_REGION_ANALYSIS_H
