//===- fleet/Server.cpp - Per-app genome leaderboard ----------------------===//

#include "fleet/Server.h"

#include "support/Metrics.h"
#include "support/Statistics.h"

#include <algorithm>

using namespace ropt;
using namespace ropt::fleet;

Server::LeaderEntry &Server::entryFor(AppBoard &Board, const GenomeReport &G,
                                      bool &Existing) {
  // Dedup: binary hash first (the ISSUE's key — textually different
  // genomes landing on the same machine code are one entry), genome name
  // as fallback (injected hints carry no hash; the same genome can hash
  // differently across heterogeneous devices).
  Existing = true;
  if (G.BinaryHash != 0) {
    auto It = Board.ByHash.find(G.BinaryHash);
    if (It != Board.ByHash.end())
      return Board.Entries[It->second];
  }
  auto It = Board.ByKey.find(G.Key);
  if (It != Board.ByKey.end()) {
    LeaderEntry &E = Board.Entries[It->second];
    // Learn the hash the fallback path was missing.
    if (E.BinaryHash == 0 && G.BinaryHash != 0) {
      E.BinaryHash = G.BinaryHash;
      Board.ByHash.emplace(G.BinaryHash, It->second);
    }
    return E;
  }

  Existing = false;
  Board.Entries.emplace_back();
  size_t Index = Board.Entries.size() - 1;
  LeaderEntry &E = Board.Entries.back();
  E.G = G.G;
  E.Key = G.Key;
  E.BinaryHash = G.BinaryHash;
  E.CodeSize = G.CodeSize;
  Board.ByKey.emplace(G.Key, Index);
  if (G.BinaryHash != 0)
    Board.ByHash.emplace(G.BinaryHash, Index);
  return E;
}

void Server::merge(const std::string &App, const RoundReport &R,
                   VirtualTime Now) {
  AppBoard &Board = Boards[App];
  ++Stats.ReportsMerged;
  ROPT_METRIC_INC("fleet.reports_merged");

  for (const GenomeReport &G : R.Best) {
    ++Stats.GenomesReported;
    bool Existing = false;
    LeaderEntry &E = entryFor(Board, G, Existing);
    if (Existing) {
      ++Stats.Duplicates;
      ROPT_METRIC_INC("fleet.duplicate_reports");
    }
    // First reporter wins the discovery credit: the entry's provenance
    // is fixed when the entry is created (or when a pre-provenance entry
    // first sees a provenanced report) and later duplicates never
    // re-attribute the chain.
    if (E.Prov.Id == 0 && G.Prov.Id != 0)
      E.Prov = G.Prov;
    // A fresh report renews the TTL clock and revives an expired entry:
    // live confirmation beats staleness.
    E.LastReportTick = std::max(E.LastReportTick, Now);
    E.Expired = false;
    // Statistical merging: pool the normalized samples (first
    // MaxPooledSamples survive — deterministic, arrival-ordered by the
    // coordinator's serialized commits) and re-rank by pooled median.
    for (double S : G.SpeedupSamples) {
      if (E.Samples.size() >= Opt.MaxPooledSamples)
        break;
      E.Samples.push_back(S);
    }
    if (E.Samples.empty())
      E.Samples.push_back(G.SpeedupMedian);
    E.Speedup = median(E.Samples);
    E.Devices.insert(R.Device);
    ++E.Reports;
  }

  // A rejection retires the genome fleet-wide: one device's verification
  // map proving a miscompile outweighs any number of speedup reports.
  for (const HintRejection &Rej : R.Rejections) {
    auto It = Board.ByKey.find(Rej.Key);
    if (It == Board.ByKey.end())
      continue;
    LeaderEntry &E = Board.Entries[It->second];
    if (!E.Quarantined) {
      E.Quarantined = true;
      E.RejectVerdict = Rej.Verdict;
      ++Stats.Quarantined;
      ROPT_METRIC_INC("fleet.quarantined");
    }
  }
}

std::vector<Hint> Server::hints(const std::string &App, VirtualTime Now) {
  std::vector<Hint> Out;
  auto It = Boards.find(App);
  if (It == Boards.end())
    return Out;

  // Lazy TTL sweep: expiry only matters when hints are served, so the
  // aging check lives here rather than on a timer event.
  if (Opt.TtlTicks != 0) {
    for (LeaderEntry &E : It->second.Entries) {
      if (E.Expired || Now <= E.LastReportTick + Opt.TtlTicks)
        continue;
      E.Expired = true;
      ++Stats.Expired;
      ROPT_METRIC_INC("fleet.leaderboard_expired");
    }
  }

  std::vector<const LeaderEntry *> Ranked;
  for (const LeaderEntry &E : It->second.Entries)
    if (!E.Quarantined && !E.Expired)
      Ranked.push_back(&E);
  // Only the top-k leave the server, and (speedup, key) is a total
  // order, so a partial sort returns exactly the fully-sorted prefix —
  // at 10k-device scale this call runs once per report arrival over
  // thousands of entries, and O(E log k) matters.
  size_t K = std::min(Ranked.size(),
                      static_cast<size_t>(std::max(0, Opt.TopK)));
  std::partial_sort(Ranked.begin(), Ranked.begin() + static_cast<long>(K),
                    Ranked.end(),
                    [](const LeaderEntry *A, const LeaderEntry *B) {
                      if (A->Speedup != B->Speedup)
                        return A->Speedup > B->Speedup;
                      return A->Key < B->Key;
                    });
  for (size_t I = 0; I != K; ++I) {
    const LeaderEntry *E = Ranked[I];
    Out.push_back(Hint{E->G, E->Key, E->Speedup, E->Reports, E->Prov});
  }
  Stats.HintsServed += Out.size();
  return Out;
}

void Server::injectHint(const std::string &App, const search::Genome &G,
                        double Speedup) {
  GenomeReport R;
  R.G = G;
  R.Key = G.name();
  R.SpeedupMedian = Speedup;
  R.SpeedupSamples = {Speedup};
  // Injected genomes still get a chain (so rejections and adoptions are
  // attributable) but no discovery time — Device -1 marks it synthetic.
  R.Prov = Provenance{mintProvenanceId(-1, 0, R.Key), -1, 0, 0};
  RoundReport Injected;
  Injected.Device = -1; // Not a real fleet member.
  Injected.Best.push_back(std::move(R));
  merge(App, Injected);
}

const std::vector<Server::LeaderEntry> *
Server::leaderboard(const std::string &App) const {
  auto It = Boards.find(App);
  return It == Boards.end() ? nullptr : &It->second.Entries;
}
