//===- fleet/Server.cpp - Per-app genome leaderboard ----------------------===//

#include "fleet/Server.h"

#include "support/Metrics.h"
#include "support/Statistics.h"

#include <algorithm>

using namespace ropt;
using namespace ropt::fleet;

Server::LeaderEntry &Server::entryFor(AppBoard &Board, const GenomeReport &G,
                                      bool &Existing) {
  // Dedup: binary hash first (the ISSUE's key — textually different
  // genomes landing on the same machine code are one entry), genome name
  // as fallback (injected hints carry no hash; the same genome can hash
  // differently across heterogeneous devices).
  Existing = true;
  if (G.BinaryHash != 0) {
    auto It = Board.ByHash.find(G.BinaryHash);
    if (It != Board.ByHash.end())
      return Board.Entries[It->second];
  }
  auto It = Board.ByKey.find(G.Key);
  if (It != Board.ByKey.end()) {
    LeaderEntry &E = Board.Entries[It->second];
    // Learn the hash the fallback path was missing.
    if (E.BinaryHash == 0 && G.BinaryHash != 0) {
      E.BinaryHash = G.BinaryHash;
      Board.ByHash.emplace(G.BinaryHash, It->second);
    }
    return E;
  }

  Existing = false;
  Board.Entries.emplace_back();
  size_t Index = Board.Entries.size() - 1;
  LeaderEntry &E = Board.Entries.back();
  E.G = G.G;
  E.Key = G.Key;
  E.BinaryHash = G.BinaryHash;
  E.CodeSize = G.CodeSize;
  Board.ByKey.emplace(G.Key, Index);
  if (G.BinaryHash != 0)
    Board.ByHash.emplace(G.BinaryHash, Index);
  return E;
}

void Server::merge(const std::string &App, const RoundReport &R,
                   VirtualTime Now) {
  AppBoard &Board = Boards[App];
  ++Stats.ReportsMerged;
  ROPT_METRIC_INC("fleet.reports_merged");

  for (const GenomeReport &G : R.Best) {
    ++Stats.GenomesReported;
    bool Existing = false;
    LeaderEntry &E = entryFor(Board, G, Existing);
    if (Existing) {
      ++Stats.Duplicates;
      ROPT_METRIC_INC("fleet.duplicate_reports");
    }
    // First reporter wins the discovery credit: the entry's provenance
    // is fixed when the entry is created (or when a pre-provenance entry
    // first sees a provenanced report) and later duplicates never
    // re-attribute the chain.
    if (E.Prov.Id == 0 && G.Prov.Id != 0)
      E.Prov = G.Prov;
    // A fresh report renews the TTL clock and revives an expired entry:
    // live confirmation beats staleness.
    E.LastReportTick = std::max(E.LastReportTick, Now);
    E.Expired = false;
    // Statistical merging: pool the normalized samples (first
    // MaxPooledSamples survive — deterministic, arrival-ordered by the
    // coordinator's serialized commits) and re-rank by pooled median.
    for (double S : G.SpeedupSamples) {
      if (E.Samples.size() >= Opt.MaxPooledSamples)
        break;
      E.Samples.push_back(S);
    }
    if (E.Samples.empty())
      E.Samples.push_back(G.SpeedupMedian);
    E.Speedup = median(E.Samples);
    E.Devices.insert(R.Device);
    if (R.DeviceClass >= 0)
      E.Classes.insert(R.DeviceClass);
    ++E.Reports;
  }

  // A rejection retires the genome fleet-wide: one device's verification
  // map proving a miscompile outweighs any number of speedup reports.
  for (const HintRejection &Rej : R.Rejections) {
    auto It = Board.ByKey.find(Rej.Key);
    if (It == Board.ByKey.end())
      continue;
    LeaderEntry &E = Board.Entries[It->second];
    if (!E.Quarantined) {
      E.Quarantined = true;
      E.RejectVerdict = Rej.Verdict;
      ++Stats.Quarantined;
      ROPT_METRIC_INC("fleet.quarantined");
    }
  }
}

std::vector<Hint> Server::hints(const std::string &App, VirtualTime Now,
                                int Class) {
  std::vector<Hint> Out;
  auto It = Boards.find(App);
  if (It == Boards.end())
    return Out;

  // Lazy TTL sweep: expiry only matters when hints are served, so the
  // aging check lives here rather than on a timer event.
  if (Opt.TtlTicks != 0) {
    for (LeaderEntry &E : It->second.Entries) {
      if (E.Expired || Now <= E.LastReportTick + Opt.TtlTicks)
        continue;
      E.Expired = true;
      ++Stats.Expired;
      ROPT_METRIC_INC("fleet.leaderboard_expired");
    }
  }

  // Class-local serving splits the eligible entries into the class's own
  // pool (some device of this class confirmed the entry) and the rest;
  // the global ranking (Class -1) keeps everything in one pool.
  std::vector<const LeaderEntry *> Ranked;
  std::vector<const LeaderEntry *> Tail;
  for (const LeaderEntry &E : It->second.Entries) {
    if (E.Quarantined || E.Expired)
      continue;
    if (Class >= 0 && !E.Classes.count(Class))
      Tail.push_back(&E);
    else
      Ranked.push_back(&E);
  }
  auto BetterHint = [](const LeaderEntry *A, const LeaderEntry *B) {
    if (A->Speedup != B->Speedup)
      return A->Speedup > B->Speedup;
    return A->Key < B->Key;
  };
  // Only the top-k leave the server, and (speedup, key) is a total
  // order, so a partial sort returns exactly the fully-sorted prefix —
  // at 10k-device scale this call runs once per report arrival over
  // thousands of entries, and O(E log k) matters.
  size_t K = std::min(Ranked.size(),
                      static_cast<size_t>(std::max(0, Opt.TopK)));
  std::partial_sort(Ranked.begin(), Ranked.begin() + static_cast<long>(K),
                    Ranked.end(), BetterHint);
  for (size_t I = 0; I != K; ++I) {
    const LeaderEntry *E = Ranked[I];
    Out.push_back(Hint{E->G, E->Key, E->Speedup, E->Reports, E->Prov});
  }
  // The cross-class exploration tail: the best few entries only other
  // classes have confirmed, so a class still re-verifies foreign-hardware
  // winners on its own silicon instead of ossifying.
  if (Class >= 0 && !Tail.empty()) {
    size_t T = std::min(Tail.size(),
                        static_cast<size_t>(std::max(0, Opt.ExplorationTail)));
    std::partial_sort(Tail.begin(), Tail.begin() + static_cast<long>(T),
                      Tail.end(), BetterHint);
    for (size_t I = 0; I != T; ++I) {
      const LeaderEntry *E = Tail[I];
      Out.push_back(Hint{E->G, E->Key, E->Speedup, E->Reports, E->Prov});
    }
  }
  Stats.HintsServed += Out.size();
  return Out;
}

void Server::injectHint(const std::string &App, const search::Genome &G,
                        double Speedup, int Class) {
  std::string Key = G.name();
  // The quarantine gate: a genome some device's verification map already
  // proved unsound — this run or any stored night before it — must never
  // re-enter the hint plane through injection.
  auto BoardIt = Boards.find(App);
  if (BoardIt != Boards.end()) {
    auto It = BoardIt->second.ByKey.find(Key);
    if (It != BoardIt->second.ByKey.end() &&
        BoardIt->second.Entries[It->second].Quarantined) {
      ++Stats.InjectionsDropped;
      ROPT_METRIC_INC("fleet.hints_rejected");
      return;
    }
  }
  GenomeReport R;
  R.G = G;
  R.Key = std::move(Key);
  R.SpeedupMedian = Speedup;
  R.SpeedupSamples = {Speedup};
  // Injected genomes still get a chain (so rejections and adoptions are
  // attributable) but no discovery time — Device -1 marks it synthetic.
  R.Prov = Provenance{mintProvenanceId(-1, 0, R.Key), -1, 0, 0};
  RoundReport Injected;
  Injected.Device = -1; // Not a real fleet member.
  Injected.DeviceClass = Class;
  Injected.Best.push_back(std::move(R));
  merge(App, Injected);
  ++Stats.HintsInjected;
}

const std::vector<Server::LeaderEntry> *
Server::leaderboard(const std::string &App) const {
  auto It = Boards.find(App);
  return It == Boards.end() ? nullptr : &It->second.Entries;
}

std::vector<std::string> Server::apps() const {
  std::vector<std::string> Out;
  for (const auto &KV : Boards)
    Out.push_back(KV.first);
  return Out;
}

void Server::exportState(store::StoreState &Out) const {
  Out.Apps.clear();
  for (const auto &KV : Boards) {
    store::StoredApp App;
    App.Name = KV.first;
    for (const LeaderEntry &E : KV.second.Entries) {
      store::StoredEntry S;
      // The canonical key is the stored genome: a quarantined entry kept
      // genome-less after a failed parse still round-trips by key.
      S.Genome = E.Key;
      S.BinaryHash = E.BinaryHash;
      S.CodeSize = E.CodeSize;
      S.Samples = E.Samples;
      S.Speedup = E.Speedup;
      S.Devices.assign(E.Devices.begin(), E.Devices.end());
      S.Classes.assign(E.Classes.begin(), E.Classes.end());
      S.Reports = E.Reports;
      S.Quarantined = E.Quarantined;
      S.RejectVerdict = E.RejectVerdict;
      S.LastReportTick = E.LastReportTick;
      S.Expired = E.Expired;
      S.Prov = store::StoredProvenance{E.Prov.Id, E.Prov.Device, E.Prov.Step,
                                       E.Prov.Time};
      App.Entries.push_back(std::move(S));
    }
    Out.Apps.push_back(std::move(App));
  }
}

size_t Server::importState(const store::StoreState &S,
                           std::vector<std::string> *Warnings) {
  size_t Restored = 0;
  for (const store::StoredApp &App : S.Apps) {
    AppBoard &Board = Boards[App.Name];
    Board.Entries.clear();
    Board.ByHash.clear();
    Board.ByKey.clear();
    for (const store::StoredEntry &E : App.Entries) {
      search::Genome G;
      bool Parsed = search::parseGenome(E.Genome, G);
      if (!Parsed && !E.Quarantined) {
        // A live entry we cannot re-materialize is useless as a hint;
        // a quarantined one still blocks injection by key alone.
        if (Warnings)
          Warnings->push_back("store: " + App.Name +
                              ": skipping unparseable genome \"" + E.Genome +
                              "\"");
        continue;
      }
      if (Board.ByKey.count(E.Genome)) {
        if (Warnings)
          Warnings->push_back("store: " + App.Name +
                              ": duplicate genome \"" + E.Genome +
                              "\"; keeping the first");
        continue;
      }
      LeaderEntry L;
      if (Parsed)
        L.G = std::move(G);
      L.Key = E.Genome;
      L.BinaryHash = E.BinaryHash;
      L.CodeSize = E.CodeSize;
      L.Samples = E.Samples;
      L.Speedup = E.Speedup;
      L.Devices.insert(E.Devices.begin(), E.Devices.end());
      L.Classes.insert(E.Classes.begin(), E.Classes.end());
      L.Reports = E.Reports;
      L.Quarantined = E.Quarantined;
      L.RejectVerdict = E.RejectVerdict;
      L.LastReportTick = E.LastReportTick;
      L.Expired = E.Expired;
      L.Restored = true;
      L.Prov = Provenance{E.Prov.Id, E.Prov.Device, E.Prov.Step, E.Prov.Time};
      size_t Index = Board.Entries.size();
      Board.ByKey.emplace(L.Key, Index);
      if (L.BinaryHash != 0 && !Board.ByHash.count(L.BinaryHash))
        Board.ByHash.emplace(L.BinaryHash, Index);
      Board.Entries.push_back(std::move(L));
      ++Restored;
    }
  }
  Stats.EntriesRestored += Restored;
  return Restored;
}
