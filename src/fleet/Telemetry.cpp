//===- fleet/Telemetry.cpp - Coordinator-side telemetry hub ---------------===//
//
// Part of ReplayOpt (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//

#include "fleet/Telemetry.h"

#include <algorithm>

namespace ropt {
namespace fleet {

TelemetryHub::TelemetryHub(std::string App, int Devices, int NumClasses,
                           size_t EventsPerDevice)
    : App(std::move(App)), Devices(Devices),
      NumClasses(NumClasses < 1 ? 1 : NumClasses),
      EventsPerDevice(EventsPerDevice < 8 ? 8 : EventsPerDevice),
      DeviceClass(static_cast<size_t>(Devices), 0),
      Buffers(static_cast<size_t>(Devices) + 1) {
  Classes.resize(static_cast<size_t>(this->NumClasses));
  for (int C = 0; C < this->NumClasses; ++C)
    Classes[static_cast<size_t>(C)].ClassId = C;
}

void TelemetryHub::setDeviceClass(int Device, int ClassId) {
  ClassId %= NumClasses;
  DeviceClass[static_cast<size_t>(Device)] = ClassId;
  ++Classes[static_cast<size_t>(ClassId)].Devices;
}

void TelemetryHub::push(int Device, analysis::FleetTraceEvent E) {
  E.Seq = NextSeq++;
  E.Device = Device;
  E.Track = Device < 0 ? -1 : DeviceClass[static_cast<size_t>(Device)];
  std::deque<analysis::FleetTraceEvent> &Buf =
      Buffers[static_cast<size_t>(Device + 1)];
  if (Buf.size() >= EventsPerDevice) {
    Buf.pop_front(); // Drop-oldest, like the bounded TraceRecorder.
    ++Dropped;
    ROPT_METRIC_INC("fleet.telemetry_dropped");
  }
  Buf.push_back(std::move(E));
}

ProvenanceChain &TelemetryHub::chainFor(const Provenance &P,
                                        const std::string &Key) {
  ProvenanceChain &C = Chains[P.Id];
  if (C.Id == 0) {
    C.Id = P.Id;
    C.Key = Key;
    C.Device = P.Device;
    C.Step = P.Step;
    C.DiscoveryTime = P.Time;
  }
  return C;
}

void TelemetryHub::onJoin(int Device, VirtualTime At) {
  analysis::FleetTraceEvent E;
  E.K = analysis::FleetTraceEvent::Kind::Join;
  E.Time = At;
  E.Name = "join d" + std::to_string(Device);
  push(Device, std::move(E));
}

void TelemetryHub::onLeave(int Device, VirtualTime At) {
  analysis::FleetTraceEvent E;
  E.K = analysis::FleetTraceEvent::Kind::Leave;
  E.Time = At;
  E.Name = "leave d" + std::to_string(Device);
  push(Device, std::move(E));
}

void TelemetryHub::onDelivery(bool HintChannel, int Device, VirtualTime Send,
                              VirtualTime Arrive) {
  analysis::FleetTraceEvent E;
  E.K = analysis::FleetTraceEvent::Kind::Delivery;
  E.Time = Send;
  E.EndTime = Arrive;
  E.FlowId = NextFlowId++;
  E.Name = (HintChannel ? "hints d" : "report d") + std::to_string(Device);
  push(Device, std::move(E));
}

void TelemetryHub::onMerge(int Device, VirtualTime At) {
  analysis::FleetTraceEvent E;
  E.K = analysis::FleetTraceEvent::Kind::Merge;
  E.Time = At;
  E.Name = "merge d" + std::to_string(Device);
  push(-1, std::move(E)); // Server track.
}

void TelemetryHub::onGenomeMerged(const Provenance &P, const std::string &Key,
                                  VirtualTime At) {
  if (P.Id == 0)
    return;
  ProvenanceChain &C = chainFor(P, Key);
  if (C.FirstMergeTime == 0)
    C.FirstMergeTime = At;
}

void TelemetryHub::onHintArrival(int Device, const Provenance &P,
                                 const std::string &Key, VirtualTime At) {
  if (P.Id == 0)
    return;
  ProvenanceChain &C = chainFor(P, Key);
  ++C.Arrivals;
  // Injected hints (Device -1) have no discovery time, and a restored
  // chain's discovery is on a prior run's clock; only chains minted on a
  // real device *this run* get a latency observation.
  if (P.Device >= 0 && !C.Restored && At >= P.Time) {
    uint64_t Lat = At - P.Time;
    C.LatencyTicksTotal += Lat;
    int Cls = DeviceClass[static_cast<size_t>(Device)];
    Classes[static_cast<size_t>(Cls)].Sketches.HintLatency.observe(
        static_cast<double>(Lat));
    ROPT_METRIC_OBSERVE("fleet.hint_latency", static_cast<double>(Lat),
                        ({2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}));
  }
}

void TelemetryHub::onAdoption(int Device, uint64_t ProvId, VirtualTime At) {
  auto It = Chains.find(ProvId);
  if (It == Chains.end())
    return;
  ProvenanceChain &C = It->second;
  if (C.Adoptions == 0) {
    C.FirstAdoptDevice = Device;
    C.FirstAdoptTime = At;
  }
  ++C.Adoptions;
}

void TelemetryHub::onRejection(int Device, uint64_t ProvId) {
  int Cls = DeviceClass[static_cast<size_t>(Device)];
  ++Classes[static_cast<size_t>(Cls)].Quarantines;
  auto It = Chains.find(ProvId);
  if (It != Chains.end())
    ++It->second.Rejections;
}

void TelemetryHub::onStep(int Device, int StepIndex, VirtualTime Start,
                          VirtualTime End, double BestSpeedup) {
  int Cls = DeviceClass[static_cast<size_t>(Device)];
  ClassTelemetry &CT = Classes[static_cast<size_t>(Cls)];
  CT.Sketches.StepTicks.observe(static_cast<double>(End - Start));
  if (BestSpeedup > 0.0)
    CT.Sketches.Speedup.observe(BestSpeedup);

  analysis::FleetTraceEvent E;
  E.K = analysis::FleetTraceEvent::Kind::Step;
  E.Time = Start;
  E.Duration = End - Start;
  E.Value = BestSpeedup;
  E.Name = "step " + std::to_string(StepIndex);
  push(Device, std::move(E));
}

void TelemetryHub::markWinner(uint64_t ProvId) {
  auto It = Chains.find(ProvId);
  if (It != Chains.end())
    It->second.Won = true;
}

void TelemetryHub::markRestored(const Provenance &P, const std::string &Key) {
  if (P.Id == 0)
    return;
  chainFor(P, Key).Restored = true;
}

FleetTelemetry TelemetryHub::telemetry() const {
  FleetTelemetry Out;
  Out.App = App;
  Out.Devices = Devices;
  Out.Classes = Classes;
  for (const ClassTelemetry &C : Out.Classes)
    Out.Total += C.Sketches;
  Out.Chains.reserve(Chains.size());
  for (const auto &KV : Chains)
    Out.Chains.push_back(KV.second);
  std::stable_sort(Out.Chains.begin(), Out.Chains.end(),
                   [](const ProvenanceChain &A, const ProvenanceChain &B) {
                     if (A.DiscoveryTime != B.DiscoveryTime)
                       return A.DiscoveryTime < B.DiscoveryTime;
                     return A.Id < B.Id;
                   });
  Out.DroppedEvents = Dropped;
  return Out;
}

std::vector<analysis::FleetTraceEvent> TelemetryHub::traceEvents() const {
  std::vector<analysis::FleetTraceEvent> Out;
  size_t Total = 0;
  for (const auto &Buf : Buffers)
    Total += Buf.size();
  Out.reserve(Total);
  for (const auto &Buf : Buffers)
    for (const analysis::FleetTraceEvent &E : Buf)
      Out.push_back(E);
  std::stable_sort(Out.begin(), Out.end(),
                   [](const analysis::FleetTraceEvent &A,
                      const analysis::FleetTraceEvent &B) {
                     if (A.Time != B.Time)
                       return A.Time < B.Time;
                     return A.Seq < B.Seq;
                   });
  return Out;
}

} // namespace fleet
} // namespace ropt
