//===- fleet/EventLoop.h - Deterministic discrete-event engine --*- C++ -*-===//
//
// Part of ReplayOpt (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The virtual clock under the asynchronous fleet (DESIGN.md §14): a
/// discrete-event scheduler whose outcome is a pure function of the
/// scheduled events, never of wall-clock time, thread count or OS
/// scheduling. Three design rules carry the determinism proof:
///
///  1. **Total event order.** Every event carries a key `(Time, Seq)`
///     where `Seq` is a monotone counter assigned at schedule() time.
///     Scheduling only happens from serial contexts (the caller before
///     run(), and commit handlers inside run()), so `Seq` assignment —
///     and with it the tie-break among same-tick events — is itself
///     deterministic.
///
///  2. **Compute/commit split.** An event's *compute* phase does the
///     expensive work (a device's search round) and may run on a pool
///     worker; its *commit* phase mutates shared state (server merges,
///     mailboxes, new events) and always runs serially on the loop
///     thread in `(Time, Seq)` order. Computes touch only lane-local
///     state: events in the same lane are executed in key order by a
///     single worker per wave, so a lane (one device class sharing an
///     evaluation engine) never sees two concurrent computes.
///
///  3. **Exact batches.** The loop processes the queue strictly in key
///     order. The only parallelism is a *batch*: a maximal run of
///     consecutive queue-front events that all carry a compute and share
///     one virtual tick. Batch computes fan out over the pool (one task
///     per lane); the batch then commits serially in key order. Because
///     a compute event never jumps ahead of an earlier-keyed commit-only
///     event (message arrivals, step completions), and same-tick
///     computes only touch lane-local state, the parallel execution is
///     observationally identical to serial strict `(Time, Seq)`
///     execution at any pool size — determinism is not a property to
///     re-prove per handler, it falls out of the schedule.
///
/// Parallelism at 10k-device scale therefore comes from the *schedule*:
/// the coordinator aligns step starts to a coarse grid
/// (FleetOptions::StepGridTicks), so thousands of device computes share
/// a tick and batch together.
///
/// Warm starts (DESIGN.md §17) happen strictly *before* run(): the
/// coordinator pre-seeds device hint mailboxes from a restored store
/// in the serial scheduling context, so persisted state never races
/// the event order — the first scheduled step already sees the hints,
/// and the virtual clock starts at 0 on every night regardless of how
/// many nights the store has accumulated.
///
//===----------------------------------------------------------------------===//

#ifndef ROPT_FLEET_EVENT_LOOP_H
#define ROPT_FLEET_EVENT_LOOP_H

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace ropt {

class ThreadPool;

namespace fleet {

/// Simulated ticks since the run began. Purely virtual: one tick has no
/// wall-clock meaning, it is only ordered against other ticks.
using VirtualTime = uint64_t;

class EventLoop {
public:
  /// Commit handlers receive the loop to schedule follow-up events.
  using ComputeFn = std::function<void()>;
  using CommitFn = std::function<void(EventLoop &)>;

  /// \p Pool runs compute phases; commits stay on the caller's thread.
  explicit EventLoop(ThreadPool &Pool);

  /// Schedules an event. \p At is clamped to now()+1 when it is not in
  /// the future — virtual time never stalls or runs backwards. \p Lane
  /// groups events whose computes share mutable state (a device class);
  /// lane -1 means "commit-only, no compute". Returns the event's Seq.
  uint64_t schedule(VirtualTime At, int Lane, ComputeFn Compute,
                    CommitFn Commit);

  /// Drains the queue: same-tick batches of (parallel-by-lane) computes
  /// and strictly-ordered commits, until no events remain. Must not be
  /// called re-entrantly.
  void run();

  /// The current virtual time: the key-time of the event whose commit is
  /// running, or of the last committed event between batches.
  VirtualTime now() const { return Now; }

  // Introspection for tests and the coordinator's log.
  uint64_t eventsProcessed() const { return Processed; }
  uint64_t batches() const { return Batches; }
  uint64_t maxBatchEvents() const { return MaxBatch; }

private:
  struct Event {
    VirtualTime Time = 0;
    uint64_t Seq = 0;
    int Lane = -1;
    ComputeFn Compute;
    CommitFn Commit;
  };
  struct Later {
    bool operator()(const Event &A, const Event &B) const {
      if (A.Time != B.Time)
        return A.Time > B.Time;
      return A.Seq > B.Seq;
    }
  };

  ThreadPool &Pool;
  std::priority_queue<Event, std::vector<Event>, Later> Queue;
  VirtualTime Now = 0;
  uint64_t NextSeq = 0;
  uint64_t Processed = 0;
  uint64_t Batches = 0;
  uint64_t MaxBatch = 0;
  bool Running = false;
};

} // namespace fleet
} // namespace ropt

#endif // ROPT_FLEET_EVENT_LOOP_H
