//===- fleet/EventLoop.cpp - Deterministic discrete-event engine ----------===//

#include "fleet/EventLoop.h"

#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>
#include <map>

using namespace ropt;
using namespace ropt::fleet;

EventLoop::EventLoop(ThreadPool &Pool) : Pool(Pool) {}

uint64_t EventLoop::schedule(VirtualTime At, int Lane, ComputeFn Compute,
                             CommitFn Commit) {
  Event E;
  // Clamp instead of assert: a zero-latency transport draw or a zero-tick
  // step must still move time forward, or same-key events would pile up.
  E.Time = std::max<VirtualTime>(At, Running ? Now + 1 : At);
  uint64_t Seq = NextSeq++;
  E.Seq = Seq;
  E.Lane = Lane;
  E.Compute = std::move(Compute);
  E.Commit = std::move(Commit);
  Queue.push(std::move(E));
  return Seq;
}

void EventLoop::run() {
  assert(!Running && "EventLoop::run is not re-entrant");
  Running = true;
  std::vector<Event> Batch;
  while (!Queue.empty()) {
    // Commit-only events (message arrivals, step completions) process
    // strictly one at a time: a compute must never run ahead of an
    // earlier-keyed commit that could feed it (a hint landing in its
    // mailbox).
    if (!Queue.top().Compute) {
      Event E = Queue.top();
      Queue.pop();
      Now = std::max(Now, E.Time);
      ++Processed;
      if (E.Commit)
        E.Commit(*this);
      continue;
    }

    // Batch: the maximal run of consecutive compute events sharing the
    // front's tick. Same-tick computes cannot observe each other's
    // commits under strict order either (commits of equal-time events
    // run after all their computes would have in any serialization that
    // respects the compute/commit split), so running them in parallel is
    // observationally identical to the serial schedule. Membership
    // depends only on queue content here, which is deterministic.
    Batch.clear();
    VirtualTime Tick = Queue.top().Time;
    while (!Queue.empty() && Queue.top().Time == Tick &&
           Queue.top().Compute) {
      Batch.push_back(Queue.top());
      Queue.pop();
    }
    ++Batches;
    MaxBatch = std::max<uint64_t>(MaxBatch, Batch.size());

    // Compute phase: one pool task per lane, each running its lane's
    // computes in (Time, Seq) order. The batch vector came off the heap
    // already key-sorted, so in-lane order is the global order
    // restricted to the lane.
    std::map<int, std::vector<const Event *>> Lanes;
    for (const Event &E : Batch)
      Lanes[E.Lane].push_back(&E);
    if (Lanes.size() == 1) {
      for (const Event *E : Lanes.begin()->second)
        E->Compute();
    } else {
      std::vector<const std::vector<const Event *> *> Work;
      Work.reserve(Lanes.size());
      for (const auto &KV : Lanes)
        Work.push_back(&KV.second);
      Pool.parallelFor(Work.size(), [&Work](size_t I, size_t) {
        for (const Event *E : *Work[I])
          E->Compute();
      });
    }

    // Commit phase: serial, in key order, on this thread. Commits may
    // schedule; schedule() clamps to Now+1 using the committing event's
    // time, so the queue never receives an event at or before Now.
    for (Event &E : Batch) {
      Now = std::max(Now, E.Time);
      ++Processed;
      if (E.Commit)
        E.Commit(*this);
    }
  }
  Running = false;
}
