//===- fleet/Coordinator.h - Event-driven fleet simulation ------*- C++ -*-===//
//
// Part of ReplayOpt (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives a device population against one server as a deterministic
/// discrete-event simulation (DESIGN.md §14). The paper's deployment
/// model is an install base of phones that report whenever they finish —
/// not a lock-step barrier — so there are no rounds here, only events on
/// the fleet EventLoop's virtual clock:
///
///   StepExec(d)    the device runs one warm-started search step. The
///                  expensive compute runs on a pool lane (one lane per
///                  device class, so a shared class engine never sees two
///                  concurrent members); the commit schedules...
///   StepDone(d)    ...at begin + the step's virtual duration (derived
///                  from the evaluation work done and the device's cost
///                  scale). Logs the step, applies churn (a device past
///                  its leave tick dies here — results discarded), and
///                  plans the report's delivery through the transport.
///   ReportArrive   the report lands at the server after real in-flight
///                  latency: merge into the leaderboard (TTL-stamped),
///                  snapshot the hint set *at arrival time*, and plan the
///                  hint response's delivery back to the device.
///   HintArrive     the hints land in the device's mailbox — possibly
///                  mid-step, in which case they seed the step after the
///                  next. A hint push overtaken in flight (a later send
///                  arriving first) is counted in `reorders_effective`:
///                  reordering now deterministically changes which hints
///                  seed which search, instead of being hidden by a
///                  barrier.
///
/// Devices self-schedule: after each step the next StepExec fires a
/// short idle later, up to the configured step count; joiners start at
/// their seeded join tick. The §9 determinism contract holds at any
/// `--jobs` because every shared-state mutation is an event commit and
/// commits serialize in `(virtual time, seq)` order — FleetResult::
/// digest() captures exactly that scheduling-independent outcome.
///
//===----------------------------------------------------------------------===//

#ifndef ROPT_FLEET_COORDINATOR_H
#define ROPT_FLEET_COORDINATOR_H

#include "fleet/Device.h"
#include "fleet/EventLoop.h"
#include "fleet/Server.h"
#include "fleet/Telemetry.h"
#include "fleet/Transport.h"

#include <string>
#include <vector>

namespace ropt {
namespace report {
class RunReport;
} // namespace report

namespace fleet {

/// Seeded population churn: which devices die mid-run and which join
/// late, all derived from (fleet seed, device id) so a churn run is as
/// replayable as a stable one.
struct Churn {
  /// Each of the initial devices leaves with this probability; a leaver
  /// dies at a seeded tick in [HorizonTicks/4, HorizonTicks] — its
  /// in-flight step is discarded and it never reports again.
  double LeaveFraction = 0.0;
  /// floor(JoinFraction * Devices) extra devices join at seeded ticks in
  /// [1, HorizonTicks] and run the full step count from there.
  double JoinFraction = 0.0;
  /// The virtual-time span the leave/join ticks are drawn from.
  VirtualTime HorizonTicks = 1500;
};

/// The one fleet-layer configuration aggregate (mirrors
/// core::PipelineConfig): population shape, heterogeneity, network
/// degradation, retry policy, step cost model and churn, with
/// paperDefaults() as the deployment-realistic baseline. The transport
/// itself is still injected into run() — Net describes the network a
/// SimTransport caller should build.
struct FleetOptions {
  int Devices = 4;
  /// Search steps each device runs (the old synchronous "rounds").
  int Rounds = 3;
  /// Pool threads driving event computes; 0 = hardware concurrency.
  /// Results are identical at any value.
  int Jobs = 0;
  uint64_t Seed = 1;

  // Heterogeneity of the derived device profiles (see DeviceProfile).
  double CostJitter = 0.25;
  double NoiseJitter = 0.5;
  int64_t SessionSpread = 2;
  /// Quantize the population into this many hardware/user classes that
  /// share one pipeline + evaluation engine (see DeviceClassState).
  /// 0 = one class per device (the fully-continuous small-fleet mode).
  int ProfileClasses = 0;
  /// Derive classes by seeded k-means over each device's *continuous*
  /// cost-model profile vector (store::kmeans over fleet::profileVector)
  /// instead of the modulo quantization: devices keep their own hardware
  /// axes, cluster membership follows actual profile similarity, and the
  /// class pipeline is built from the cluster centroid. Hints are then
  /// served class-locally (per-class top-k + cross-class exploration
  /// tail). Only meaningful with ProfileClasses > 0 and fewer classes
  /// than devices.
  bool KMeansClasses = false;
  /// Pre-seed every device's mailbox with the server's hint set before
  /// its first step — the cross-run warm start. The server is expected
  /// to hold restored leaderboards (Server::importState /
  /// Server::injectHint); devices still re-verify every restored hint
  /// against their own verification map before adopting it.
  bool WarmStartHints = false;

  TransportOptions Net; ///< For the caller's SimTransport.
  RetryPolicy Retry;

  StepCosts Costs; ///< Virtual duration model of one search step.
  /// Idle ticks between a step's completion and the next step's start
  /// (the user's next app session). Covers a healthy round trip, so a
  /// timely hint response seeds the next step and a retried or reordered
  /// one deterministically misses it.
  VirtualTime IdleTicks = 16;
  /// Devices start their first step at a seeded tick in
  /// [1, 1 + StartSpreadTicks] — an install base never starts in phase.
  VirtualTime StartSpreadTicks = 8;
  /// Step starts are rounded up to this grid so device computes share
  /// ticks and batch on the event loop (see EventLoop.h: parallelism
  /// comes from the schedule, the loop itself is strictly ordered).
  /// 0 or 1 = no alignment, fully spread starts.
  VirtualTime StepGridTicks = 32;

  /// Per-device cap on buffered fleet-trace events (drop-oldest past it,
  /// counted by `fleet.telemetry_dropped`) — the PR 6 TraceRecorder
  /// bound, applied per device so 10k-device runs stay flat in memory.
  size_t TelemetryEventsPerDevice = 2048;

  Churn Population;

  /// The paper-faithful deployment defaults: a flaky mobile network
  /// (15% drop, 10% reorder) over the default heterogeneity spread.
  static FleetOptions paperDefaults();
};

/// One completed device step in commit `(time, seq)` order — the
/// substrate of the report layer's fleet.jsonl.
struct FleetStepLog {
  VirtualTime Time = 0; ///< Virtual completion time of the step.
  int Step = 0;         ///< The device's step index (0-based).
  int Device = 0;
  DeviceRound Outcome;
  SendOutcome ReportDelivery; ///< Device -> server (unplanned if Dropped).
  bool Dropped = false;       ///< Device died at this step (churn).
};

/// What one coordinator run produced for one app.
struct FleetResult {
  std::string AppName;
  bool Succeeded = false;
  std::string FailureReason;

  int Devices = 0; ///< Total participants (initial + joiners).
  int Rounds = 0;  ///< Steps per device.
  double BestSpeedup = 0.0; ///< Max over delivered reports (vs own base).
  std::string BestGenome;
  int BestDevice = -1;
  bool BestFromHint = false;
  /// Chain of the winning genome: the device that discovered it and the
  /// virtual instant it did (not necessarily BestDevice — that is who
  /// *reported* the winning speedup).
  Provenance BestProv;

  std::vector<FleetStepLog> Log; ///< Commit order: (time, seq).
  std::vector<Server::LeaderEntry> Leaderboard; ///< Final snapshot.

  VirtualTime VirtualDuration = 0; ///< Loop time when the queue drained.
  int DevicesLeft = 0;   ///< Churn: devices that died mid-run.
  int DevicesJoined = 0; ///< Churn: late joiners.

  /// KMeansClasses run: per-device class assignment and the centroids
  /// (profile-vector space, stable lexicographic id order) — what the
  /// store persists as the night's class model. Empty otherwise.
  std::vector<int> ClassOf;
  std::vector<std::vector<double>> ClassCentroids;
  /// Warm-start hints pre-seeded into device mailboxes (WarmStartHints).
  uint64_t WarmStartHintCount = 0;

  // Sums over classes / steps.
  search::EngineCounters Counters;
  search::EngineCacheStats Cache;
  search::EngineRacingStats Racing;
  /// Fork-server replay-session accounting over every class backend.
  search::ReplayBackendStats ReplayBackend;
  uint64_t HintsPublished = 0; ///< Hints sent to devices (pre-dedup).
  uint64_t HintsAdopted = 0;
  uint64_t HintsRejected = 0;
  TransportStats Transport; ///< All sends, both channels.

  /// Per-class sketches, their cell merge, and every provenance chain.
  FleetTelemetry Telemetry;
  /// The surviving virtual-clock trace events in `(time, seq)` order
  /// (analysis::FleetTrace renders them as fleet.trace.json).
  std::vector<analysis::FleetTraceEvent> TraceEvents;

  /// A stable fingerprint of every scheduling-independent outcome: device
  /// step results with their virtual times, adopted/rejected hints, the
  /// leaderboard. Transport volume counters are deliberately excluded —
  /// but arrival *consequences* (which hints seeded what, when) are in.
  std::string digest() const;
};

class Coordinator {
public:
  /// \p Base is the per-class pipeline configuration (the population
  /// shape and seeds come from \p Opt; Base.Seed is overridden per
  /// class).
  Coordinator(FleetOptions Opt, core::PipelineConfig Base)
      : Opt(Opt), Base(std::move(Base)) {}

  /// Runs the event-driven fleet simulation for \p AppName against
  /// \p Srv over \p Net. When \p Report is non-null, every completed
  /// step is appended to its fleet log with its virtual time.
  FleetResult run(const std::string &AppName, Server &Srv, Transport &Net,
                  report::RunReport *Report = nullptr);

private:
  FleetOptions Opt;
  core::PipelineConfig Base;
};

} // namespace fleet
} // namespace ropt

#endif // ROPT_FLEET_COORDINATOR_H
