//===- fleet/Coordinator.h - Deterministic fleet rounds ---------*- C++ -*-===//
//
// Part of ReplayOpt (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives N devices against one server in synchronous rounds, preserving
/// the §9 determinism contract at fleet scale:
///
///   per round —
///     1. serial:   snapshot the server's hint set, deliver it per device
///                  through the transport (retry masks loss);
///     2. parallel: every device runs its warm-started search round over
///                  support::ThreadPool (devices are fully self-contained:
///                  own dex file, own captures, own single-job engine);
///     3. serial, in device-id order: deliver each device's report and
///                  commit the server merge.
///
/// Device order and merge commits never depend on scheduling, so a seeded
/// fleet run is bit-identical at any `--jobs` — and, because sendWithRetry
/// makes delivery effectively certain, identical under transport loss and
/// reordering too (only the retry/tick counters change). FleetResult::
/// digest() captures exactly the scheduling-independent outcome for tests.
///
//===----------------------------------------------------------------------===//

#ifndef ROPT_FLEET_COORDINATOR_H
#define ROPT_FLEET_COORDINATOR_H

#include "fleet/Device.h"
#include "fleet/Server.h"
#include "fleet/Transport.h"

#include <string>
#include <vector>

namespace ropt {
namespace report {
class RunReport;
} // namespace report

namespace fleet {

struct FleetConfig {
  int Devices = 4;
  int Rounds = 3;
  /// Pool threads driving device rounds; 0 = hardware concurrency.
  /// Results are identical at any value.
  int Jobs = 0;
  uint64_t Seed = 1;

  // Heterogeneity of the derived device profiles (see DeviceProfile).
  double CostJitter = 0.25;
  double NoiseJitter = 0.5;
  int64_t SessionSpread = 2;

  RetryPolicy Retry;
};

/// One (round, device) cell of the round log — the substrate of the
/// report layer's fleet.jsonl.
struct FleetRoundLog {
  int Round = 0;
  int Device = 0;
  DeviceRound Outcome;
  SendOutcome HintDelivery;   ///< Server -> device.
  SendOutcome ReportDelivery; ///< Device -> server.
};

/// What one coordinator run produced for one app.
struct FleetResult {
  std::string AppName;
  bool Succeeded = false;
  std::string FailureReason;

  int Devices = 0;
  int Rounds = 0;
  double BestSpeedup = 0.0; ///< Max over devices (vs own baselines).
  std::string BestGenome;
  int BestDevice = -1;
  bool BestFromHint = false;

  std::vector<FleetRoundLog> Log; ///< Round-major, device-minor.
  std::vector<Server::LeaderEntry> Leaderboard; ///< Final snapshot.

  // Sums over devices / rounds.
  search::EngineCounters Counters;
  search::EngineCacheStats Cache;
  search::EngineRacingStats Racing;
  uint64_t HintsPublished = 0; ///< Hints handed to devices (pre-dedup).
  uint64_t HintsAdopted = 0;
  uint64_t HintsRejected = 0;
  uint64_t TransportAttempts = 0;
  uint64_t TransportDrops = 0;
  uint64_t TransportTicks = 0;
  uint64_t DeliveriesFailed = 0; ///< Retry cap exhausted (should be 0).

  /// A stable fingerprint of every scheduling-independent outcome: device
  /// results, adopted/rejected hints, the leaderboard. Transport counters
  /// are deliberately excluded — they are the one thing a lossy network
  /// is allowed to change.
  std::string digest() const;
};

class Coordinator {
public:
  /// \p Base is the per-device pipeline configuration (the device count,
  /// rounds and seeds come from \p Config; Base.Seed is overridden per
  /// device).
  Coordinator(FleetConfig Config, core::PipelineConfig Base)
      : Config(Config), Base(std::move(Base)) {}

  /// Runs the full round protocol for \p AppName against \p Srv over
  /// \p Net. When \p Report is non-null, every (round, device) cell is
  /// appended to its fleet round log.
  FleetResult run(const std::string &AppName, Server &Srv, Transport &Net,
                  report::RunReport *Report = nullptr);

private:
  FleetConfig Config;
  core::PipelineConfig Base;
};

} // namespace fleet
} // namespace ropt

#endif // ROPT_FLEET_COORDINATOR_H
