//===- fleet/Device.cpp - One simulated fleet member ----------------------===//

#include "fleet/Device.h"

#include "lir/Backend.h"
#include "support/Metrics.h"
#include "support/Statistics.h"

#include <algorithm>

using namespace ropt;
using namespace ropt::fleet;

DeviceProfile DeviceProfile::derive(uint64_t FleetSeed, int Id,
                                    double CostJitter, double NoiseJitter,
                                    int64_t SessionSpread) {
  DeviceProfile P;
  P.Id = Id;
  Rng R(FleetSeed ^ (0x9e3779b97f4a7c15ull *
                     (static_cast<uint64_t>(Id) + 1)));
  P.Seed = R.next();
  if (CostJitter > 0.0)
    P.CostScale = 1.0 + R.uniform(-CostJitter, CostJitter);
  if (NoiseJitter > 0.0)
    P.NoiseScale = 1.0 + R.uniform(-NoiseJitter, NoiseJitter);
  if (SessionSpread > 0)
    P.SessionShift = R.range(-SessionSpread, SessionSpread);
  return P;
}

Device::Device(const std::string &AppName, const core::PipelineConfig &Base,
               const DeviceProfile &Profile)
    : App(workloads::buildByName(AppName)), Config(Base), Prof(Profile) {
  Config.Seed = Prof.Seed;
  // The coordinator's pool provides cross-device parallelism; a nested
  // single-job engine runs inline on the coordinator's worker (a
  // multi-thread nested pool would deadlock parallelFor).
  Config.Search.Jobs = 1;
  // Device GAs log through fleet.jsonl, not the evaluation stream.
  Config.Provenance = nullptr;

  // Hardware heterogeneity: scale every per-event kernel cost (a uniformly
  // slower/faster SoC) and the measurement-noise floor.
  os::KernelCostModel &K = Config.Capture.KernelCosts;
  K.ForkBaseUs *= Prof.CostScale;
  K.ForkPerPageUs *= Prof.CostScale;
  K.MapsParsePerMappingUs *= Prof.CostScale;
  K.ProtectCallUs *= Prof.CostScale;
  K.ProtectPerPageUs *= Prof.CostScale;
  K.PageFaultUs *= Prof.CostScale;
  K.CowCopyUs *= Prof.CostScale;
  Config.Measure.Noise.OfflineSigma *= Prof.NoiseScale;
  Config.Measure.Noise.OnlineSigma *= Prof.NoiseScale;

  // User heterogeneity: this device's owner exercises a different session
  // input (only meaningful for apps with a real online parameter range).
  if (Prof.SessionShift != 0 && App.MinParam < App.MaxParam)
    App.DefaultParam = std::clamp(App.DefaultParam + Prof.SessionShift,
                                  App.MinParam, App.MaxParam);
}

bool Device::setup() {
  core::IterativeCompiler Pipeline(Config);
  core::IterativeCompiler::ProfiledApp Profiled = Pipeline.profileApp(App);
  if (!Profiled.Region) {
    Failure = "no replayable hot region";
    return false;
  }
  Region = *Profiled.Region;

  // Fleet rounds inherit the observability loop's allocation: when the
  // coordinator runs analysis-guided, each device derives its own
  // criticality scale and bottleneck mask from its own profile, and every
  // round's GA (runRound reads Config.Search.GA) searches under them.
  if (Config.Search.AnalysisGuided) {
    analysis::AppAnalysis Analysis =
        analysis::analyzeApp(*App.File, Profiled.Profile, Profiled.RA);
    if (const analysis::RegionReport *R = Analysis.byRoot(Region.Root)) {
      Config.Search.GA = core::scaledGaConfig(Config.Search.GA,
                                              R->BudgetScale);
      if (R->Slack > 0)
        Config.Search.GA.Genomes.DisabledPassMask |=
            analysis::prunedPassMask(R->Label);
    }
  }

  Captures = Pipeline.captureRegionMulti(
      *Profiled.Instance, Region,
      std::max(1, Config.Capture.CapturesPerRegion));
  if (Captures.empty()) {
    Failure = "capture failed";
    return false;
  }

  Baselines =
      std::make_unique<core::RegionEvaluator>(App, Region, Captures, Config);
  search::EngineOptions Opts;
  Opts.Jobs = 1; // See the constructor: never nest a multi-thread pool.
  Opts.Memoize = Config.Search.Memoize;
  Opts.Racing = Config.Search.Racing;
  Opts.MinReplays = Config.Search.MinReplaysPerEvaluation;
  Opts.MaxReplays = Config.Search.MaxReplaysPerEvaluation;
  Opts.RacingAlpha = Config.Search.GA.SignificanceAlpha;
  Engine = std::make_unique<search::EvaluationEngine>(
      [this]() {
        return std::make_unique<core::RegionEvaluator>(App, Region,
                                                       Captures, Config);
      },
      Opts, Config.Seed);

  search::Evaluation Android = Baselines->evaluateAndroid();
  if (!Android.ok()) {
    Failure = "android baseline replay failed";
    return false;
  }
  AndroidCycles = Android.MedianCycles;
  search::Evaluation O3 = Baselines->evaluatePipeline(lir::o3Pipeline());
  O3Cycles = O3.ok() ? O3.MedianCycles : AndroidCycles;
  return true;
}

double Device::speedupOf(const search::Evaluation &E) const {
  return E.MedianCycles > 0.0 ? AndroidCycles / E.MedianCycles : 0.0;
}

GenomeReport Device::reportFor(const search::Scored &S) const {
  GenomeReport R;
  R.G = S.G;
  R.Key = S.G.name();
  R.BinaryHash = S.E.BinaryHash;
  R.CodeSize = S.E.CodeSize;
  for (double Cycles : S.E.Samples)
    if (Cycles > 0.0)
      R.SpeedupSamples.push_back(AndroidCycles / Cycles);
  R.SpeedupMedian =
      R.SpeedupSamples.empty() ? speedupOf(S.E) : median(R.SpeedupSamples);
  R.Source = S.Source;
  return R;
}

DeviceRound Device::runRound(int Round, const std::vector<Hint> &Hints) {
  DeviceRound Out;
  Out.Report.Device = Prof.Id;
  Out.Report.Round = Round;
  int EvalsBefore = Engine->counters().total();
  ROPT_METRIC_INC("fleet.device_rounds");

  // --- Re-verify foreign hints before adoption (the safety contract):
  // compile + replay against *this device's* verification map, through
  // the engine so repeats are cache hits. Hints echoing our own reports
  // are not foreign and skip the bookkeeping.
  std::vector<const Hint *> Foreign;
  std::vector<const Hint *> Fresh;
  for (const Hint &H : Hints) {
    if (OwnReported.count(H.Key))
      continue;
    Foreign.push_back(&H);
    if (!KnownHints.count(H.Key))
      Fresh.push_back(&H);
  }
  Out.HintsReceived = static_cast<int>(Foreign.size());
  if (!Fresh.empty()) {
    std::vector<search::Genome> ToVerify;
    ToVerify.reserve(Fresh.size());
    for (const Hint *H : Fresh)
      ToVerify.push_back(H->G);
    std::vector<search::Evaluation> Verdicts =
        Engine->evaluateBatch(ToVerify);
    for (size_t I = 0; I != Fresh.size(); ++I) {
      bool Adopted = Verdicts[I].ok();
      KnownHints[Fresh[I]->Key] = Adopted;
      if (Adopted) {
        AdoptedForeign.insert(Fresh[I]->Key);
        ROPT_METRIC_INC("fleet.hints_adopted");
      } else {
        Out.Report.Rejections.push_back(HintRejection{
            Fresh[I]->Key, search::evalKindName(Verdicts[I].Kind)});
        ROPT_METRIC_INC("fleet.hints_rejected");
      }
    }
  }
  for (const Hint *H : Foreign) {
    if (KnownHints[H->Key])
      ++Out.HintsAdopted;
    else
      ++Out.HintsRejected;
  }

  // --- Warm-started local search: own best first, then the adopted
  // hints in served order (seedPopulation dedups).
  std::vector<search::Genome> Seeds;
  if (Best)
    Seeds.push_back(Best->G);
  for (const Hint *H : Foreign)
    if (KnownHints[H->Key])
      Seeds.push_back(H->G);
  uint64_t RoundSeed =
      Config.Seed ^
      (0x6a5e + 0x9e3779b97f4a7c15ull * (static_cast<uint64_t>(Round) + 1));
  search::GeneticSearch GA(Config.Search.GA, RoundSeed, *Engine, nullptr);
  GA.seedPopulation(std::move(Seeds));
  std::optional<search::Scored> RoundBest =
      GA.run(AndroidCycles, O3Cycles);

  if (RoundBest && RoundBest->E.ok()) {
    bool Better =
        !Best || RoundBest->E.MedianCycles < Best->E.MedianCycles ||
        (RoundBest->E.MedianCycles == Best->E.MedianCycles &&
         RoundBest->E.CodeSize < Best->E.CodeSize);
    if (Better) {
      Best = *RoundBest;
      BestIsForeign = Best->Source == search::GenomeSource::Seeded &&
                      AdoptedForeign.count(Best->G.name()) > 0;
    }
  }

  // --- Package the round report: the device's best-so-far, plus the
  // round's own discovery when it differs (leaderboard diversity).
  if (Best) {
    Out.Report.Best.push_back(reportFor(*Best));
    OwnReported.insert(Best->G.name());
    if (RoundBest && RoundBest->E.ok() &&
        RoundBest->G.name() != Best->G.name()) {
      Out.Report.Best.push_back(reportFor(*RoundBest));
      OwnReported.insert(RoundBest->G.name());
    }
    Out.BestSpeedup = speedupOf(Best->E);
    Out.BestGenome = Best->G.name();
    Out.BestSource = Best->Source;
    Out.BestFromHint = BestIsForeign;
  }
  Out.Evaluations = Engine->counters().total() - EvalsBefore;
  return Out;
}

const search::EngineCounters &Device::counters() const {
  return Engine->counters();
}

const search::EngineCacheStats &Device::cacheStats() const {
  return Engine->cacheStats();
}

const search::EngineRacingStats &Device::racingStats() const {
  return Engine->racingStats();
}
