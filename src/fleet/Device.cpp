//===- fleet/Device.cpp - One simulated fleet member ----------------------===//

#include "fleet/Device.h"

#include "lir/Backend.h"
#include "support/Metrics.h"
#include "support/Statistics.h"

#include <algorithm>

using namespace ropt;
using namespace ropt::fleet;

DeviceProfile DeviceProfile::derive(uint64_t FleetSeed, int Id,
                                    double CostJitter, double NoiseJitter,
                                    int64_t SessionSpread) {
  DeviceProfile P;
  P.Id = Id;
  P.ClassId = Id;
  Rng R(FleetSeed ^ (0x9e3779b97f4a7c15ull *
                     (static_cast<uint64_t>(Id) + 1)));
  P.Seed = R.next();
  if (CostJitter > 0.0)
    P.CostScale = 1.0 + R.uniform(-CostJitter, CostJitter);
  if (NoiseJitter > 0.0)
    P.NoiseScale = 1.0 + R.uniform(-NoiseJitter, NoiseJitter);
  if (SessionSpread > 0)
    P.SessionShift = R.range(-SessionSpread, SessionSpread);
  return P;
}

DeviceProfile DeviceProfile::deriveClassed(uint64_t FleetSeed, int Id,
                                           int Classes, double CostJitter,
                                           double NoiseJitter,
                                           int64_t SessionSpread) {
  if (Classes <= 0)
    return derive(FleetSeed, Id, CostJitter, NoiseJitter, SessionSpread);
  int ClassId = Id % Classes;
  // Hardware/user axes from the class stream: all members of a class are
  // the same phone model in the same hands.
  DeviceProfile P =
      derive(FleetSeed, ClassId, CostJitter, NoiseJitter, SessionSpread);
  P.Id = Id;
  P.ClassId = ClassId;
  // Search seed from the device stream: class members explore differently.
  Rng R(FleetSeed ^ (0x9e3779b97f4a7c15ull *
                     (static_cast<uint64_t>(Id) + 1)));
  P.Seed = R.next();
  return P;
}

std::vector<double> fleet::profileVector(const DeviceProfile &P) {
  std::vector<double> V;
  V.reserve(ProfileVectorDims);
  for (int I = 0; I != 7; ++I)
    V.push_back(P.CostScale); // One slot per scaled kernel-cost event.
  V.push_back(P.NoiseScale);  // OfflineSigma scale.
  V.push_back(P.NoiseScale);  // OnlineSigma scale.
  V.push_back(static_cast<double>(P.SessionShift));
  return V;
}

DeviceClassState::DeviceClassState(const std::string &AppName,
                                   const core::PipelineConfig &Base,
                                   const DeviceProfile &ClassProfile)
    : App(workloads::buildByName(AppName)), Config(Base),
      Prof(ClassProfile) {
  Config.Seed = Prof.Seed;
  // The event loop's lanes provide cross-class parallelism; a nested
  // single-job engine runs inline on the loop's worker (a multi-thread
  // nested pool would deadlock parallelFor).
  Config.Search.Jobs = 1;
  // Device GAs log through fleet.jsonl, not the evaluation stream.
  Config.Provenance = nullptr;

  // Hardware heterogeneity: scale every per-event kernel cost (a uniformly
  // slower/faster SoC) and the measurement-noise floor.
  os::KernelCostModel &K = Config.Capture.KernelCosts;
  K.ForkBaseUs *= Prof.CostScale;
  K.ForkPerPageUs *= Prof.CostScale;
  K.MapsParsePerMappingUs *= Prof.CostScale;
  K.ProtectCallUs *= Prof.CostScale;
  K.ProtectPerPageUs *= Prof.CostScale;
  K.PageFaultUs *= Prof.CostScale;
  K.CowCopyUs *= Prof.CostScale;
  Config.Measure.Noise.OfflineSigma *= Prof.NoiseScale;
  Config.Measure.Noise.OnlineSigma *= Prof.NoiseScale;

  // User heterogeneity: this class's owners exercise a different session
  // input (only meaningful for apps with a real online parameter range).
  if (Prof.SessionShift != 0 && App.MinParam < App.MaxParam)
    App.DefaultParam = std::clamp(App.DefaultParam + Prof.SessionShift,
                                  App.MinParam, App.MaxParam);
}

bool DeviceClassState::setup() {
  core::IterativeCompiler Pipeline(Config);
  core::IterativeCompiler::ProfiledApp Profiled = Pipeline.profileApp(App);
  if (!Profiled.Region) {
    Failure = "no replayable hot region";
    return false;
  }
  Region = *Profiled.Region;

  // Fleet steps inherit the observability loop's allocation: when the
  // coordinator runs analysis-guided, each class derives its own
  // criticality scale and bottleneck mask from its own profile, and every
  // member step's GA (step() reads Config.Search.GA) searches under them.
  if (Config.Search.AnalysisGuided) {
    analysis::AppAnalysis Analysis =
        analysis::analyzeApp(*App.File, Profiled.Profile, Profiled.RA);
    if (const analysis::RegionReport *R = Analysis.byRoot(Region.Root)) {
      Config.Search.GA = core::scaledGaConfig(Config.Search.GA,
                                              R->BudgetScale);
      if (R->Slack > 0)
        Config.Search.GA.Genomes.DisabledPassMask |=
            analysis::prunedPassMask(R->Label);
    }
  }

  Captures = Pipeline.captureRegionMulti(
      *Profiled.Instance, Region,
      std::max(1, Config.Capture.CapturesPerRegion));
  if (Captures.empty()) {
    Failure = "capture failed";
    return false;
  }

  Baselines =
      std::make_unique<core::RegionEvaluator>(App, Region, Captures, Config);
  search::EngineOptions Opts;
  Opts.Jobs = 1; // See the constructor: never nest a multi-thread pool.
  Opts.Memoize = Config.Search.Memoize;
  Opts.Racing = Config.Search.Racing;
  Opts.MinReplays = Config.Search.MinReplaysPerEvaluation;
  Opts.MaxReplays = Config.Search.MaxReplaysPerEvaluation;
  Opts.RacingAlpha = Config.Search.GA.SignificanceAlpha;
  Engine = std::make_unique<search::EvaluationEngine>(
      [this]() {
        return std::make_unique<core::RegionEvaluator>(App, Region,
                                                       Captures, Config);
      },
      Opts, Config.Seed);

  search::Evaluation Android = Baselines->evaluateAndroid();
  if (!Android.ok()) {
    Failure = "android baseline replay failed";
    return false;
  }
  AndroidCycles = Android.MedianCycles;
  search::Evaluation O3 = Baselines->evaluatePipeline(lir::o3Pipeline());
  O3Cycles = O3.ok() ? O3.MedianCycles : AndroidCycles;
  return true;
}

const search::EngineCounters &DeviceClassState::counters() const {
  return Engine->counters();
}

const search::EngineCacheStats &DeviceClassState::cacheStats() const {
  return Engine->cacheStats();
}

const search::EngineRacingStats &DeviceClassState::racingStats() const {
  return Engine->racingStats();
}

search::ReplayBackendStats DeviceClassState::replayBackendStats() const {
  search::ReplayBackendStats R = Engine->replayBackendStats();
  if (Baselines)
    R += Baselines->replayStats();
  return R;
}

Device::Device(std::shared_ptr<DeviceClassState> Class,
               const DeviceProfile &Prof, const StepCosts &Costs)
    : Class(std::move(Class)), Prof(Prof), Costs(Costs) {}

double Device::speedupOf(const search::Evaluation &E) const {
  return E.MedianCycles > 0.0 ? Class->AndroidCycles / E.MedianCycles : 0.0;
}

GenomeReport Device::reportFor(const search::Scored &S, VirtualTime Now,
                               int StepIndex) {
  GenomeReport R;
  R.G = S.G;
  R.Key = S.G.name();
  R.BinaryHash = S.E.BinaryHash;
  R.CodeSize = S.E.CodeSize;
  for (double Cycles : S.E.Samples)
    if (Cycles > 0.0)
      R.SpeedupSamples.push_back(Class->AndroidCycles / Cycles);
  R.SpeedupMedian =
      R.SpeedupSamples.empty() ? speedupOf(S.E) : median(R.SpeedupSamples);
  R.Source = S.Source;
  // Chain bookkeeping: a genome that entered as an adopted hint keeps
  // the chain it arrived on; anything else reported here for the first
  // time is a local discovery and mints a fresh chain at this step's
  // virtual instant. Re-reports in later steps keep the original mint.
  auto It = GenomeProv.find(R.Key);
  if (It == GenomeProv.end())
    It = GenomeProv
             .emplace(R.Key,
                      Provenance{mintProvenanceId(Prof.Id, StepIndex, R.Key),
                                 Prof.Id, StepIndex, Now})
             .first;
  R.Prov = It->second;
  return R;
}

StepResult Device::step(VirtualTime Now, int StepIndex,
                        const std::vector<Hint> &Hints) {
  StepResult Res;
  DeviceRound &Out = Res.Round;
  search::EvaluationEngine &Engine = *Class->Engine;
  Out.Report.Device = Prof.Id;
  Out.Report.Round = StepIndex;
  Out.Report.DeviceClass = Prof.ClassId;
  int EvalsBefore = Engine.counters().total();
  search::EngineCacheStats CacheBefore = Engine.cacheStats();
  ROPT_METRIC_INC("fleet.device_rounds");

  // --- Re-verify foreign hints before adoption (the safety contract):
  // compile + replay against *this class's* verification map, through
  // the engine so repeats are cache hits. Hints echoing our own reports
  // are not foreign and skip the bookkeeping.
  std::vector<const Hint *> Foreign;
  std::vector<const Hint *> Fresh;
  for (const Hint &H : Hints) {
    if (OwnReported.count(H.Key))
      continue;
    Foreign.push_back(&H);
    if (!KnownHints.count(H.Key))
      Fresh.push_back(&H);
  }
  Out.HintsReceived = static_cast<int>(Foreign.size());
  if (!Fresh.empty()) {
    std::vector<search::Genome> ToVerify;
    ToVerify.reserve(Fresh.size());
    for (const Hint *H : Fresh)
      ToVerify.push_back(H->G);
    std::vector<search::Evaluation> Verdicts =
        Engine.evaluateBatch(ToVerify);
    for (size_t I = 0; I != Fresh.size(); ++I) {
      bool Adopted = Verdicts[I].ok();
      KnownHints[Fresh[I]->Key] = Adopted;
      if (Adopted) {
        AdoptedForeign.insert(Fresh[I]->Key);
        // The adopted genome rides the foreign chain from here on —
        // reportFor() must not mint a local one for it.
        GenomeProv[Fresh[I]->Key] = Fresh[I]->Prov;
        Out.AdoptedProvenance.push_back(Fresh[I]->Prov.Id);
        ROPT_METRIC_INC("fleet.hints_adopted");
      } else {
        Out.Report.Rejections.push_back(
            HintRejection{Fresh[I]->Key,
                          search::evalKindName(Verdicts[I].Kind),
                          Fresh[I]->Prov.Id});
        Out.RejectedProvenance.push_back(Fresh[I]->Prov.Id);
        ROPT_METRIC_INC("fleet.hints_rejected");
      }
    }
  }
  for (const Hint *H : Foreign) {
    if (KnownHints[H->Key])
      ++Out.HintsAdopted;
    else
      ++Out.HintsRejected;
  }

  // --- Warm-started local search: own best first, then the adopted
  // hints in delivered order (seedPopulation dedups). The step seed is
  // the *device* seed salted by the step index, so class members sharing
  // an engine still explore distinct trajectories.
  std::vector<search::SeedGenome> Seeds;
  if (Best) {
    auto It = GenomeProv.find(Best->G.name());
    Seeds.push_back(search::SeedGenome{
        Best->G, It == GenomeProv.end() ? 0 : It->second.Id});
  }
  for (const Hint *H : Foreign)
    if (KnownHints[H->Key])
      Seeds.push_back(search::SeedGenome{H->G, H->Prov.Id});
  uint64_t StepSeed =
      Prof.Seed ^ (0x6a5e + 0x9e3779b97f4a7c15ull *
                              (static_cast<uint64_t>(StepIndex) + 1));
  search::GeneticSearch GA(Class->Config.Search.GA, StepSeed, Engine,
                           nullptr);
  GA.seedPopulation(std::move(Seeds));
  std::optional<search::Scored> StepBest =
      GA.run(Class->AndroidCycles, Class->O3Cycles);

  if (StepBest && StepBest->E.ok()) {
    bool Better =
        !Best || StepBest->E.MedianCycles < Best->E.MedianCycles ||
        (StepBest->E.MedianCycles == Best->E.MedianCycles &&
         StepBest->E.CodeSize < Best->E.CodeSize);
    if (Better) {
      Best = *StepBest;
      BestIsForeign = Best->Source == search::GenomeSource::Seeded &&
                      AdoptedForeign.count(Best->G.name()) > 0;
    }
  }

  // --- Package the round report: the device's best-so-far, plus the
  // step's own discovery when it differs (leaderboard diversity).
  if (Best) {
    Out.Report.Best.push_back(reportFor(*Best, Now, StepIndex));
    OwnReported.insert(Best->G.name());
    if (StepBest && StepBest->E.ok() &&
        StepBest->G.name() != Best->G.name()) {
      Out.Report.Best.push_back(reportFor(*StepBest, Now, StepIndex));
      OwnReported.insert(StepBest->G.name());
    }
    Out.BestSpeedup = speedupOf(Best->E);
    Out.BestGenome = Best->G.name();
    Out.BestSource = Best->Source;
    Out.BestFromHint = BestIsForeign;
    Out.BestProv = GenomeProv[Best->G.name()]; // reportFor minted above.
  }
  Out.Evaluations = Engine.counters().total() - EvalsBefore;

  // --- Virtual duration: what the step cost *this* device. Fresh
  // compiles dominate; cache hits (often warmed by class siblings) are
  // near-free, which is exactly why per-device wall-clock shrinks as the
  // class fills up.
  search::EngineCacheStats CacheAfter = Engine.cacheStats();
  uint64_t Misses = CacheAfter.Misses - CacheBefore.Misses;
  uint64_t Hits = CacheAfter.hits() - CacheBefore.hits();
  double Ticks = static_cast<double>(Costs.BaseTicks + Costs.MissTicks * Misses +
                                     Costs.HitTicks * Hits) *
                 Prof.CostScale;
  Res.Duration = std::max<VirtualTime>(1, static_cast<VirtualTime>(Ticks));
  return Res;
}
