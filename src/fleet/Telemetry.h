//===- fleet/Telemetry.h - Provenance chains + mergeable sketches -*- C++ -*-===//
//
// Part of ReplayOpt (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fleet-wide telemetry (DESIGN.md §15), in two halves:
///
///  * **Hint provenance chains.** Every genome a device reports carries a
///    `Provenance` minted at the discovering device's evaluation (device,
///    step, virtual time, 64-bit id). The server's leaderboard keeps the
///    first reporter's provenance, hints carry it back out, and adopting
///    devices thread it through `GeneticSearch::seedPopulation` — so one
///    chain records a genome's whole fleet journey: discovery, first
///    server merge, every hint delivery (with virtual-time latency),
///    adoptions, re-verification rejections, and whether it won the run.
///
///  * **Mergeable per-class sketches.** Fixed-bucket histograms (speedup,
///    step duration, hint latency) accumulated per device and merged
///    associatively upward: device -> class -> cell -> fleet. Fixed
///    bounds make the merge a plain bucket-wise sum, so the fleet total
///    is a pure function of the observations regardless of merge
///    grouping — the property `ropt-report validate` checks.
///
/// Everything the report layer reads or writes (`Provenance`,
/// `TelemetrySketch`, `ProvenanceChain`, `FleetTelemetry`) is defined
/// inline, following the `TransportStats` precedent, so `ropt_report`
/// can persist and parse telemetry without linking `ropt_fleet`. Only
/// `TelemetryHub` — the coordinator-side accumulator — lives in
/// Telemetry.cpp.
///
//===----------------------------------------------------------------------===//

#ifndef ROPT_FLEET_TELEMETRY_H
#define ROPT_FLEET_TELEMETRY_H

#include "analysis/FleetTrace.h"
#include "fleet/EventLoop.h"
#include "support/Json.h"
#include "support/Metrics.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <map>
#include <string>
#include <vector>

namespace ropt {
namespace fleet {

/// Where a genome came from: minted once at the discovering device's
/// evaluation and carried verbatim through server merge, hint delivery,
/// re-verification and GA seeding. Id 0 means "no provenance" (pre-fleet
/// code paths); Device -1 marks server-injected genomes (warm starts,
/// safety tests) whose discovery time is unknown.
struct Provenance {
  uint64_t Id = 0;
  int Device = -1;
  int Step = 0;
  VirtualTime Time = 0;
};

/// Deterministic chain id: FNV-1a over the canonical genome name mixed
/// with the discovering (device, step). Two devices independently
/// discovering the same genome mint distinct chains.
inline uint64_t mintProvenanceId(int Device, int Step,
                                 const std::string &Key) {
  uint64_t H = 1469598103934665603ull;
  auto Mix = [&H](uint64_t V) {
    H ^= V;
    H *= 1099511628211ull;
  };
  for (char C : Key)
    Mix(static_cast<unsigned char>(C));
  Mix(static_cast<uint64_t>(Device + 2) * 0x9e3779b97f4a7c15ull);
  Mix(static_cast<uint64_t>(Step + 1));
  return H ? H : 1; // 0 stays the "no provenance" sentinel.
}

/// "0x%016llx" spelling shared by every telemetry artifact.
inline std::string provenanceHex(uint64_t Id) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "0x%016llx",
                static_cast<unsigned long long>(Id));
  return Buf;
}

/// A fixed-bucket mergeable histogram. The bucket bounds are a pure
/// function of the Kind, so any two sketches of the same kind merge by
/// bucket-wise addition — associative and commutative on the counts,
/// which is what lets per-device sketches roll up to class, cell and
/// fleet totals in any grouping.
class TelemetrySketch {
public:
  enum class Kind {
    Speedup,     ///< Per-step best speedup (x over Android baseline).
    StepTicks,   ///< Virtual step duration in ticks.
    HintLatency, ///< Discovery -> hint-arrival latency in ticks.
  };

  static std::vector<double> boundsFor(Kind K) {
    switch (K) {
    case Kind::Speedup:
      return {0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0, 2.5, 3.0, 4.0};
    case Kind::StepTicks:
      return {8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096};
    case Kind::HintLatency:
      return {2, 4, 8, 16, 32, 64, 128, 256, 512, 1024};
    }
    return {};
  }

  explicit TelemetrySketch(Kind K)
      : Bounds(boundsFor(K)), Counts(Bounds.size() + 1, 0) {}

  void observe(double V) {
    size_t I = 0;
    while (I < Bounds.size() && V > Bounds[I])
      ++I;
    ++Counts[I];
    Min = Count == 0 ? V : std::min(Min, V);
    Max = Count == 0 ? V : std::max(Max, V);
    ++Count;
    Sum += V;
  }

  TelemetrySketch &operator+=(const TelemetrySketch &O) {
    assert(Bounds == O.Bounds && "merging sketches of different kinds");
    for (size_t I = 0; I < Counts.size(); ++I)
      Counts[I] += O.Counts[I];
    if (O.Count) {
      Min = Count ? std::min(Min, O.Min) : O.Min;
      Max = Count ? std::max(Max, O.Max) : O.Max;
      Count += O.Count;
      Sum += O.Sum;
    }
    return *this;
  }

  uint64_t count() const { return Count; }
  double sum() const { return Sum; }
  double min() const { return Min; }
  double max() const { return Max; }
  const std::vector<uint64_t> &counts() const { return Counts; }

  /// View as a support::Histogram snapshot (for quantile()).
  Histogram::Snapshot snapshot() const {
    Histogram::Snapshot S;
    S.Bounds = Bounds;
    S.Counts = Counts;
    S.Count = Count;
    S.Sum = Sum;
    S.Min = Min;
    S.Max = Max;
    return S;
  }

  /// `{"bounds":[...],"counts":[...],"count":N,"sum":S,"min":m,"max":M}`.
  std::string json() const {
    json::Builder B;
    json::Builder Bo(/*Array=*/true);
    for (double Bd : Bounds)
      Bo.element(Bd);
    B.fieldRaw("bounds", std::move(Bo).str());
    json::Builder Co(/*Array=*/true);
    for (uint64_t C : Counts)
      Co.element(C);
    B.fieldRaw("counts", std::move(Co).str());
    B.field("count", Count)
        .field("sum", Sum)
        .field("min", Min)
        .field("max", Max);
    return std::move(B).str();
  }

private:
  std::vector<double> Bounds;
  std::vector<uint64_t> Counts;
  uint64_t Count = 0;
  double Sum = 0.0;
  double Min = 0.0;
  double Max = 0.0;
};

/// Rebuilds a histogram snapshot from a sketch's JSON rendering (the
/// report-reader half of TelemetrySketch::json()).
inline Histogram::Snapshot
sketchSnapshot(const json::Value &V) {
  Histogram::Snapshot S;
  if (const json::Value *Bo = V.find("bounds"))
    for (const json::Value &E : Bo->elements())
      S.Bounds.push_back(E.asNumber());
  if (const json::Value *Co = V.find("counts"))
    for (const json::Value &E : Co->elements())
      S.Counts.push_back(static_cast<uint64_t>(E.asNumber()));
  S.Count = static_cast<uint64_t>(V.number("count"));
  S.Sum = V.number("sum");
  S.Min = V.number("min");
  S.Max = V.number("max");
  return S;
}

/// One genome's fleet journey, keyed by its provenance id.
struct ProvenanceChain {
  uint64_t Id = 0;
  std::string Key;               ///< Canonical genome name.
  int Device = -1;               ///< Discovering device (-1 = injected).
  int Step = 0;                  ///< Discovery step on that device.
  VirtualTime DiscoveryTime = 0; ///< Virtual time of discovery.
  VirtualTime FirstMergeTime = 0; ///< First server merge (0 = never).
  uint64_t Arrivals = 0;          ///< Hint deliveries carrying the chain.
  uint64_t LatencyTicksTotal = 0; ///< Sum of arrival - discovery ticks.
  uint64_t Adoptions = 0;         ///< Foreign devices that verified + seeded.
  uint64_t Rejections = 0;        ///< Re-verification rejections.
  int FirstAdoptDevice = -1;
  VirtualTime FirstAdoptTime = 0;
  bool Won = false; ///< Ended the run as the fleet-best genome.
  /// The chain was restored from a persistent store: its discovery
  /// instant is on a *prior run's* virtual clock, so this run's
  /// merge/adoption times are incomparable with it (and validators must
  /// not apply same-clock causality checks).
  bool Restored = false;

  std::string json() const {
    json::Builder B;
    B.field("id", provenanceHex(Id))
        .field("key", Key)
        .field("device", Device)
        .field("step", Step)
        .field("discovery_time", DiscoveryTime)
        .field("first_merge_time", FirstMergeTime)
        .field("arrivals", Arrivals)
        .field("latency_ticks_total", LatencyTicksTotal)
        .field("adoptions", Adoptions)
        .field("rejections", Rejections)
        .field("first_adopt_device", FirstAdoptDevice)
        .field("first_adopt_time", FirstAdoptTime)
        .field("won", Won)
        .field("restored", Restored);
    return std::move(B).str();
  }
};

/// The three canonical sketches, bundled for each aggregation level.
struct SketchSet {
  TelemetrySketch Speedup{TelemetrySketch::Kind::Speedup};
  TelemetrySketch StepTicks{TelemetrySketch::Kind::StepTicks};
  TelemetrySketch HintLatency{TelemetrySketch::Kind::HintLatency};

  SketchSet &operator+=(const SketchSet &O) {
    Speedup += O.Speedup;
    StepTicks += O.StepTicks;
    HintLatency += O.HintLatency;
    return *this;
  }

  std::string json() const {
    json::Builder B;
    B.fieldRaw("speedup", Speedup.json())
        .fieldRaw("step_ticks", StepTicks.json())
        .fieldRaw("hint_latency", HintLatency.json());
    return std::move(B).str();
  }
};

/// Class-level merge of its member devices' sketches.
struct ClassTelemetry {
  int ClassId = 0;
  int Devices = 0;          ///< Devices assigned to the class.
  uint64_t Quarantines = 0; ///< Hint rejections issued by members.
  SketchSet Sketches;

  std::string json() const {
    json::Builder B;
    B.field("class", ClassId)
        .field("devices", Devices)
        .field("quarantines", Quarantines)
        .fieldRaw("speedup", Sketches.Speedup.json())
        .fieldRaw("step_ticks", Sketches.StepTicks.json())
        .fieldRaw("hint_latency", Sketches.HintLatency.json());
    return std::move(B).str();
  }
};

/// One coordinator cell's telemetry: per-class sketches, their cell-level
/// merge, and every provenance chain, in discovery order.
struct FleetTelemetry {
  std::string App;
  int Devices = 0;
  std::vector<ClassTelemetry> Classes; ///< Class-id order.
  SketchSet Total;                     ///< Merge of Classes, in order.
  std::vector<ProvenanceChain> Chains; ///< (DiscoveryTime, Id) order.
  uint64_t DroppedEvents = 0;          ///< Trace events the cap dropped.

  std::string json() const {
    json::Builder B;
    B.field("app", App).field("devices", Devices);
    json::Builder Cl(/*Array=*/true);
    for (const ClassTelemetry &C : Classes)
      Cl.elementRaw(C.json());
    B.fieldRaw("classes", std::move(Cl).str());
    B.fieldRaw("total", Total.json());
    json::Builder Ch(/*Array=*/true);
    for (const ProvenanceChain &C : Chains)
      Ch.elementRaw(C.json());
    B.fieldRaw("chains", std::move(Ch).str());
    B.field("dropped_events", DroppedEvents);
    return std::move(B).str();
  }
};

/// The coordinator-side accumulator: owns per-device bounded trace-event
/// buffers, per-class sketches, and the chain table for one cell. Every
/// method is called from serial contexts only (pre-run seeding and event
/// loop commits), so no locking — determinism falls out of commit order.
class TelemetryHub {
public:
  /// \p EventsPerDevice bounds each device's (and the server track's)
  /// trace-event buffer; the oldest events drop first, counted by the
  /// `fleet.telemetry_dropped` metric and FleetTelemetry::DroppedEvents.
  TelemetryHub(std::string App, int Devices, int NumClasses,
               size_t EventsPerDevice);

  /// Declares a device's class before any of its events arrive.
  void setDeviceClass(int Device, int ClassId);

  /// A churn joiner's first step got scheduled at \p At.
  void onJoin(int Device, VirtualTime At);
  /// A device died at \p At (its in-flight step was discarded).
  void onLeave(int Device, VirtualTime At);
  /// A message (round report or hint set) left \p Device at \p Send and
  /// arrives at \p Arrive.
  void onDelivery(bool HintChannel, int Device, VirtualTime Send,
                  VirtualTime Arrive);
  /// The server merged \p Device's round report at \p At: chains named in
  /// it record their first merge time.
  void onMerge(int Device, VirtualTime At);
  /// A report entry with provenance \p P (genome \p Key) reached the
  /// server at \p At.
  void onGenomeMerged(const Provenance &P, const std::string &Key,
                      VirtualTime At);
  /// One hint carrying \p P arrived at a live \p Device at \p At:
  /// observes the discovery->arrival latency into the receiving class's
  /// sketch and the chain.
  void onHintArrival(int Device, const Provenance &P, const std::string &Key,
                     VirtualTime At);
  /// \p Device verified and seeded the chain \p ProvId at step start
  /// \p At.
  void onAdoption(int Device, uint64_t ProvId, VirtualTime At);
  /// \p Device's re-verification rejected the chain \p ProvId.
  void onRejection(int Device, uint64_t ProvId);
  /// One finished device step: span + speedup/duration sketches.
  void onStep(int Device, int StepIndex, VirtualTime Start, VirtualTime End,
              double BestSpeedup);

  /// Flags the chain that produced the run's best genome.
  void markWinner(uint64_t ProvId);

  /// Pre-registers \p P as a chain restored from a persistent store:
  /// its discovery time is a prior run's clock, so hint-latency
  /// observations and same-clock causality checks must not apply. Call
  /// before the loop runs (serial seeding context).
  void markRestored(const Provenance &P, const std::string &Key);

  /// The merged cell telemetry (per-class -> total, chains sorted by
  /// discovery time then id).
  FleetTelemetry telemetry() const;

  /// All surviving trace events in `(Time, Seq)` order.
  std::vector<analysis::FleetTraceEvent> traceEvents() const;

private:
  void push(int Device, analysis::FleetTraceEvent E);
  ProvenanceChain &chainFor(const Provenance &P, const std::string &Key);

  std::string App;
  int Devices = 0;
  int NumClasses = 1;
  size_t EventsPerDevice = 0;
  uint64_t NextSeq = 0;
  uint64_t NextFlowId = 1;
  uint64_t Dropped = 0;
  std::vector<int> DeviceClass;
  /// Buffer 0 is the server track; buffer 1+d is device d.
  std::vector<std::deque<analysis::FleetTraceEvent>> Buffers;
  std::vector<ClassTelemetry> Classes;
  std::map<uint64_t, ProvenanceChain> Chains;
};

} // namespace fleet
} // namespace ropt

#endif // ROPT_FLEET_TELEMETRY_H
