//===- fleet/Transport.h - Injectable device<->server messaging -*- C++ -*-===//
//
// Part of ReplayOpt (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The message layer between fleet devices and the aggregation server.
/// Real deployments talk over flaky mobile networks, so the simulated
/// transport injects seeded drop, latency and reordering — but the fleet
/// protocol must stay *result-deterministic* under any of it (DESIGN.md
/// §12). Two properties make that hold:
///
///  - A transport's verdict for one delivery attempt is a pure function
///    of the attempt's identity (app, round, device, direction, attempt
///    number) and the transport seed — never of wall-clock time or call
///    order. Replaying the same protocol replays the same packet fates.
///
///  - Devices send through sendWithRetry(): capped-backoff retries until
///    delivery or a generous attempt cap. Loss therefore costs simulated
///    ticks and retry counters, not payloads — a lossy run computes the
///    same genomes, leaderboard and hints as the lossless run.
///
//===----------------------------------------------------------------------===//

#ifndef ROPT_FLEET_TRANSPORT_H
#define ROPT_FLEET_TRANSPORT_H

#include <cstdint>
#include <string>

namespace ropt {
namespace fleet {

/// Which way a fleet message travels (half of an attempt's identity).
enum class Channel : uint64_t {
  Hints = 1,  ///< Server -> device: the round's top-k hint set.
  Report = 2, ///< Device -> server: round results + hint rejections.
};

/// Identity of one delivery attempt. Transports must derive their verdict
/// purely from this (plus their own seed) so packet fates are replayable.
struct MessageKey {
  uint64_t App = 0; ///< appKey() of the application name.
  Channel Dir = Channel::Report;
  int Round = 0;
  int Device = 0;
  int Attempt = 0;

  /// Mixes the fields into one 64-bit stream seed.
  uint64_t mix() const;
};

/// Stable 64-bit key for an application name (FNV-1a).
uint64_t appKey(const std::string &Name);

/// One attempt's fate.
struct Delivery {
  bool Delivered = true;
  uint64_t LatencyTicks = 1; ///< Simulated one-way latency.
  /// The packet was overtaken in flight. Log-only: the coordinator's
  /// round barrier serializes merge commits, so reordering never changes
  /// results — which is the point the injection exists to demonstrate.
  bool Reordered = false;
};

class Transport {
public:
  virtual ~Transport() = default;

  /// Decides the fate of one delivery attempt.
  virtual Delivery attempt(const MessageKey &Key) = 0;
};

/// The ideal network: every attempt lands with unit latency.
class PerfectTransport : public Transport {
public:
  Delivery attempt(const MessageKey &) override { return Delivery{}; }
};

/// Degradation knobs for the simulated network.
struct TransportOptions {
  double DropProb = 0.0;    ///< Per-attempt loss probability.
  double ReorderProb = 0.0; ///< Per-delivery overtaking probability.
  uint64_t MinLatencyTicks = 1;
  uint64_t MaxLatencyTicks = 4;
};

/// Seeded lossy transport: drop/latency/reorder drawn from a stream
/// keyed on (seed, attempt identity), independent of call order.
class SimTransport : public Transport {
public:
  SimTransport(TransportOptions Opt, uint64_t Seed)
      : Opt(Opt), Seed(Seed) {}

  Delivery attempt(const MessageKey &Key) override;

private:
  TransportOptions Opt;
  uint64_t Seed;
};

/// Device-side retry policy: capped exponential backoff. The default cap
/// of 64 attempts makes delivery effectively certain at any plausible
/// drop rate (P(fail) = DropProb^64), which is what lets the coordinator
/// promise loss-invariant results.
struct RetryPolicy {
  int MaxAttempts = 64;
  uint64_t BackoffBaseTicks = 1; ///< Wait before attempt n: base << (n-1).
  uint64_t BackoffCapTicks = 16;
};

/// What one sendWithRetry() cost. Only the counters vary with network
/// quality; whether the payload arrived is (by design) almost always yes.
struct SendOutcome {
  bool Delivered = false;
  int Attempts = 0;
  uint64_t Drops = 0;
  uint64_t Ticks = 0; ///< Simulated latency plus backoff waits.
  bool Reordered = false;
};

/// Pushes one message through \p T, retrying dropped attempts with capped
/// exponential backoff until delivery or Policy.MaxAttempts.
SendOutcome sendWithRetry(Transport &T, MessageKey Key,
                          const RetryPolicy &Policy);

} // namespace fleet
} // namespace ropt

#endif // ROPT_FLEET_TRANSPORT_H
