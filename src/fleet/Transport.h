//===- fleet/Transport.h - Injectable device<->server messaging -*- C++ -*-===//
//
// Part of ReplayOpt (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The message layer between fleet devices and the aggregation server.
/// Real deployments talk over flaky mobile networks, so the simulated
/// transport injects seeded drop, latency and reordering. Since the
/// event-loop redesign (DESIGN.md §14) messages travel in *virtual time*:
/// a send is planned up front into an arrival delay the event queue
/// consumes, and latency, retransmits and reordering genuinely move the
/// arrival — which changes when (and in what order) hints and reports
/// land, and therefore which hints seed which search. The results stay
/// deterministic, not loss-invariant, because of one property:
///
///  - A transport's verdict for one delivery attempt is a pure function
///    of the attempt's identity (app, round, device, direction, attempt
///    number) and the transport seed — never of wall-clock time or call
///    order. Replaying the same protocol replays the same packet fates,
///    so a seeded run is bit-identical across --jobs values and reruns.
///
//===----------------------------------------------------------------------===//

#ifndef ROPT_FLEET_TRANSPORT_H
#define ROPT_FLEET_TRANSPORT_H

#include "support/Json.h"

#include <cstdint>
#include <string>

namespace ropt {
namespace fleet {

/// Which way a fleet message travels (half of an attempt's identity).
enum class Channel : uint64_t {
  Hints = 1,  ///< Server -> device: the round's top-k hint set.
  Report = 2, ///< Device -> server: round results + hint rejections.
};

/// Identity of one delivery attempt. Transports must derive their verdict
/// purely from this (plus their own seed) so packet fates are replayable.
struct MessageKey {
  uint64_t App = 0; ///< appKey() of the application name.
  Channel Dir = Channel::Report;
  int Round = 0;
  int Device = 0;
  int Attempt = 0;

  /// Mixes the fields into one 64-bit stream seed.
  uint64_t mix() const;
};

/// Stable 64-bit key for an application name (FNV-1a).
uint64_t appKey(const std::string &Name);

/// One attempt's fate, in virtual time.
struct Delivery {
  bool Delivered = true;
  uint64_t LatencyTicks = 1; ///< Simulated one-way latency.
  /// The packet was overtaken in flight: it arrives ReorderTicks later
  /// than its nominal latency, so a message sent after it can land
  /// first. Since the event loop commits arrivals in virtual-time order,
  /// reordering now *changes results* — deterministically — instead of
  /// being a log-only counter the round barrier used to hide.
  bool Reordered = false;
  uint64_t ReorderTicks = 0; ///< Extra in-flight delay when reordered.
};

class Transport {
public:
  virtual ~Transport() = default;

  /// Decides the fate of one delivery attempt.
  virtual Delivery attempt(const MessageKey &Key) = 0;
};

/// The ideal network: every attempt lands with unit latency.
class PerfectTransport : public Transport {
public:
  Delivery attempt(const MessageKey &) override { return Delivery{}; }
};

/// Degradation knobs for the simulated network.
struct TransportOptions {
  double DropProb = 0.0;    ///< Per-attempt loss probability.
  double ReorderProb = 0.0; ///< Per-delivery overtaking probability.
  uint64_t MinLatencyTicks = 1;
  uint64_t MaxLatencyTicks = 4;
};

/// Seeded lossy transport: drop/latency/reorder drawn from a stream
/// keyed on (seed, attempt identity), independent of call order. A
/// reordered delivery draws its overtaking penalty from the same stream
/// (1..2*MaxLatencyTicks extra in-flight ticks).
class SimTransport : public Transport {
public:
  SimTransport(TransportOptions Opt, uint64_t Seed)
      : Opt(Opt), Seed(Seed) {}

  Delivery attempt(const MessageKey &Key) override;

private:
  TransportOptions Opt;
  uint64_t Seed;
};

/// Sender-side retry policy: capped exponential backoff between
/// retransmits. The default cap of 64 attempts makes delivery effectively
/// certain at any plausible drop rate (P(fail) = DropProb^64); what loss
/// costs is virtual *time* — every dropped attempt adds its backoff wait
/// to the message's arrival delay, shifting when the payload lands.
struct RetryPolicy {
  int MaxAttempts = 64;
  uint64_t BackoffBaseTicks = 1; ///< Wait before attempt n: base << (n-1).
  uint64_t BackoffCapTicks = 16;
};

/// What one planned send looks like to the event queue: whether the
/// payload ever lands and, if so, after how many virtual ticks. Drops and
/// reordering are folded into DelayTicks, so the *content* consequences
/// of a bad network (late hints, overtaken reports) play out in the
/// simulation instead of being retried away behind a barrier.
struct SendOutcome {
  bool Delivered = false;
  int Attempts = 0;
  uint64_t Drops = 0;
  /// Send-to-arrival virtual delay: failed-attempt backoffs, the landing
  /// attempt's latency, and any reorder penalty. Meaningless when
  /// !Delivered (the message is simply gone).
  uint64_t DelayTicks = 0;
  bool Reordered = false; ///< The landing attempt drew the reorder fate.
  /// The reorder's share of DelayTicks — what arrival would have gained
  /// had the landing attempt not been overtaken. Lets the coordinator
  /// decide whether the reorder *mattered* (crossed a step boundary).
  uint64_t ReorderTicks = 0;
};

/// Plans one message's journey through \p T: walks the attempt sequence
/// (pure per-attempt verdicts) until an attempt lands or Policy
/// .MaxAttempts is exhausted, accumulating backoff and latency into the
/// arrival delay. Nothing blocks — the caller schedules the arrival at
/// now() + DelayTicks.
SendOutcome planDelivery(Transport &T, MessageKey Key,
                         const RetryPolicy &Policy);

/// Transport accounting rolled up across sends — one struct instead of
/// the six hand-summed counters it replaced, shared by FleetResult, the
/// manifest's fleet section and `ropt-report summarize`. Methods are
/// inline so the report layer can use it without linking the fleet
/// library (the dependency runs fleet -> report, not the reverse).
struct TransportStats {
  uint64_t Attempts = 0;
  uint64_t Drops = 0;
  uint64_t Ticks = 0;    ///< Virtual in-flight + backoff ticks.
  uint64_t Failed = 0;   ///< Sends whose retry budget ran out.
  uint64_t Reorders = 0; ///< Deliveries that drew the reorder fate.
  /// Reorders that actually changed arrival order at a destination — a
  /// later-sent message landed first. This is the measured form of the
  /// claim the round barrier used to assert ("reordering never changes
  /// results"): under the event loop it can, and this counts when it did.
  uint64_t ReordersEffective = 0;

  TransportStats &operator+=(const TransportStats &O) {
    Attempts += O.Attempts;
    Drops += O.Drops;
    Ticks += O.Ticks;
    Failed += O.Failed;
    Reorders += O.Reorders;
    ReordersEffective += O.ReordersEffective;
    return *this;
  }

  /// Folds one planned send (everything but ReordersEffective, which
  /// only a destination's arrival log can decide).
  void count(const SendOutcome &S) {
    Attempts += static_cast<uint64_t>(S.Attempts);
    Drops += S.Drops;
    Ticks += S.DelayTicks;
    if (!S.Delivered)
      ++Failed;
    if (S.Reordered)
      ++Reorders;
  }

  /// The one JSON emitter (field names are the schema): appends
  /// attempts/drops/ticks/failed/reorders/reorders_effective to \p B.
  void emitJson(json::Builder &B) const {
    B.field("transport_attempts", Attempts)
        .field("transport_drops", Drops)
        .field("transport_ticks", Ticks)
        .field("deliveries_failed", Failed)
        .field("reorders", Reorders)
        .field("reorders_effective", ReordersEffective);
  }
};

} // namespace fleet
} // namespace ropt

#endif // ROPT_FLEET_TRANSPORT_H
