//===- fleet/Coordinator.cpp - Deterministic fleet rounds -----------------===//

#include "fleet/Coordinator.h"

#include "report/RunReport.h"
#include "support/Format.h"
#include "support/Metrics.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"

#include <algorithm>

using namespace ropt;
using namespace ropt::fleet;

std::string FleetResult::digest() const {
  std::string D = format(
      "app=%s devices=%d rounds=%d best=%.17g@%d genome=%s fromhint=%d\n",
      AppName.c_str(), Devices, Rounds, BestSpeedup, BestDevice,
      BestGenome.c_str(), BestFromHint ? 1 : 0);
  for (const FleetRoundLog &L : Log) {
    const DeviceRound &O = L.Outcome;
    D += format("r%d d%d best=%.17g src=%s fromhint=%d genome=%s recv=%d "
                "adopt=%d rej=%d evals=%d\n",
                L.Round, L.Device, O.BestSpeedup,
                search::genomeSourceName(O.BestSource),
                O.BestFromHint ? 1 : 0, O.BestGenome.c_str(),
                O.HintsReceived, O.HintsAdopted, O.HintsRejected,
                O.Evaluations);
    for (const HintRejection &Rej : O.Report.Rejections)
      D += format("  reject %s verdict=%s\n", Rej.Key.c_str(),
                  Rej.Verdict.c_str());
  }
  for (const Server::LeaderEntry &E : Leaderboard)
    D += format("lb %s speedup=%.17g reports=%d devices=%d q=%d "
                "verdict=%s hash=%016llx size=%llu\n",
                E.Key.c_str(), E.Speedup, E.Reports,
                static_cast<int>(E.Devices.size()), E.Quarantined ? 1 : 0,
                E.RejectVerdict.c_str(),
                static_cast<unsigned long long>(E.BinaryHash),
                static_cast<unsigned long long>(E.CodeSize));
  return D;
}

FleetResult Coordinator::run(const std::string &AppName, Server &Srv,
                             Transport &Net, report::RunReport *Report) {
  ROPT_TRACE_SPAN("fleet.run");
  FleetResult Out;
  Out.AppName = AppName;
  int N = std::max(1, Config.Devices);
  Out.Devices = N;
  Out.Rounds = std::max(0, Config.Rounds);

  std::vector<std::unique_ptr<Device>> Devices;
  Devices.reserve(static_cast<size_t>(N));
  for (int I = 0; I != N; ++I)
    Devices.push_back(std::make_unique<Device>(
        AppName, Base,
        DeviceProfile::derive(Config.Seed, I, Config.CostJitter,
                              Config.NoiseJitter, Config.SessionSpread)));

  ThreadPool Pool(static_cast<size_t>(std::max(0, Config.Jobs)));

  // Device setup (profile + capture + baselines) is embarrassingly
  // parallel: devices share nothing, not even the dex file.
  {
    ROPT_TRACE_SPAN("fleet.setup");
    std::vector<char> SetupOk(static_cast<size_t>(N), 0);
    Pool.parallelFor(static_cast<size_t>(N), [&](size_t I, size_t) {
      SetupOk[I] = Devices[I]->setup() ? 1 : 0;
    });
    for (int I = 0; I != N; ++I)
      if (!SetupOk[static_cast<size_t>(I)]) {
        Out.FailureReason = format(
            "device %d: %s", I,
            Devices[static_cast<size_t>(I)]->failureReason().c_str());
        return Out;
      }
  }

  uint64_t AppId = appKey(AppName);
  std::vector<DeviceRound> FinalRound(static_cast<size_t>(N));
  auto AddSend = [&Out](const SendOutcome &S) {
    Out.TransportAttempts += static_cast<uint64_t>(S.Attempts);
    Out.TransportDrops += S.Drops;
    Out.TransportTicks += S.Ticks;
  };

  for (int R = 0; R != Out.Rounds; ++R) {
    ROPT_TRACE_SPAN_V("fleet.round", R);
    ROPT_METRIC_INC("fleet.rounds");

    // 1. Serial: snapshot the hint set and deliver it per device. A
    // failed delivery (retry cap exhausted — essentially impossible at
    // sane drop rates) means that device searches cold this round.
    std::vector<Hint> Hints = Srv.hints(AppName);
    std::vector<std::vector<Hint>> Served(static_cast<size_t>(N));
    std::vector<SendOutcome> HintSends(static_cast<size_t>(N));
    for (int I = 0; I != N; ++I) {
      MessageKey Key{AppId, Channel::Hints, R, I, 0};
      SendOutcome &S = HintSends[static_cast<size_t>(I)];
      S = sendWithRetry(Net, Key, Config.Retry);
      if (S.Delivered)
        Served[static_cast<size_t>(I)] = Hints;
      else
        ++Out.DeliveriesFailed;
      Out.HintsPublished += Served[static_cast<size_t>(I)].size();
    }

    // 2. Parallel: the device rounds. Each device is self-contained and
    // writes only its own slot, so scheduling cannot leak into results.
    std::vector<DeviceRound> Rounds(static_cast<size_t>(N));
    Pool.parallelFor(static_cast<size_t>(N), [&](size_t I, size_t) {
      Rounds[I] = Devices[I]->runRound(R, Served[I]);
    });

    // 3. Serial, in device-id order: deliver reports and commit merges.
    // This is the fleet-scale §9 contract — leaderboard state never
    // depends on which device's thread finished first.
    for (int I = 0; I != N; ++I) {
      DeviceRound &DR = Rounds[static_cast<size_t>(I)];
      MessageKey Key{AppId, Channel::Report, R, I, 0};
      SendOutcome S = sendWithRetry(Net, Key, Config.Retry);
      if (S.Delivered)
        Srv.merge(AppName, DR.Report);
      else
        ++Out.DeliveriesFailed;

      Out.HintsAdopted += static_cast<uint64_t>(DR.HintsAdopted);
      Out.HintsRejected += static_cast<uint64_t>(DR.HintsRejected);
      AddSend(HintSends[static_cast<size_t>(I)]);
      AddSend(S);

      if (Report) {
        report::FleetRoundRecord Rec;
        Rec.App = AppName;
        Rec.FleetDevices = N;
        Rec.Round = R;
        Rec.Device = I;
        Rec.BestSpeedup = DR.BestSpeedup;
        Rec.BestGenome = DR.BestGenome;
        Rec.BestSource = search::genomeSourceName(DR.BestSource);
        Rec.BestFromHint = DR.BestFromHint;
        Rec.HintsReceived = DR.HintsReceived;
        Rec.HintsAdopted = DR.HintsAdopted;
        Rec.HintsRejected = DR.HintsRejected;
        Rec.Evaluations = DR.Evaluations;
        Rec.TransportAttempts =
            HintSends[static_cast<size_t>(I)].Attempts + S.Attempts;
        Rec.TransportDrops =
            HintSends[static_cast<size_t>(I)].Drops + S.Drops;
        Rec.TransportTicks =
            HintSends[static_cast<size_t>(I)].Ticks + S.Ticks;
        Rec.Delivered = S.Delivered;
        Report->onFleetRound(Rec);
      }

      FinalRound[static_cast<size_t>(I)] = DR;
      Out.Log.push_back(FleetRoundLog{R, I, std::move(DR),
                                      HintSends[static_cast<size_t>(I)],
                                      S});
    }
  }

  ROPT_METRIC_ADD("fleet.transport_attempts", Out.TransportAttempts);
  ROPT_METRIC_ADD("fleet.transport_drops", Out.TransportDrops);

  // Fleet-wide best: max speedup over each device's own baseline.
  for (int I = 0; I != N; ++I) {
    const Device &D = *Devices[static_cast<size_t>(I)];
    Out.Counters += D.counters();
    Out.Cache.GenomeHits += D.cacheStats().GenomeHits;
    Out.Cache.BinaryHits += D.cacheStats().BinaryHits;
    Out.Cache.Misses += D.cacheStats().Misses;
    Out.Racing.ReplaysSpent += D.racingStats().ReplaysSpent;
    Out.Racing.FixedBudget += D.racingStats().FixedBudget;
    Out.Racing.EarlyStops += D.racingStats().EarlyStops;
    Out.Racing.Escalations += D.racingStats().Escalations;
    Out.Racing.TopUps += D.racingStats().TopUps;
    if (!D.best() || !D.best()->E.ok())
      continue;
    double Speedup = D.androidMedian() / D.best()->E.MedianCycles;
    if (Speedup > Out.BestSpeedup) {
      Out.BestSpeedup = Speedup;
      Out.BestGenome = D.best()->G.name();
      Out.BestDevice = I;
      Out.BestFromHint = FinalRound[static_cast<size_t>(I)].BestFromHint;
    }
  }
  if (const std::vector<Server::LeaderEntry> *L = Srv.leaderboard(AppName))
    Out.Leaderboard = *L;

  Out.Succeeded = Out.BestSpeedup > 0.0;
  if (!Out.Succeeded)
    Out.FailureReason = "no device produced a valid genome";
  return Out;
}
