//===- fleet/Coordinator.cpp - Event-driven fleet simulation --------------===//

#include "fleet/Coordinator.h"

#include "report/RunReport.h"
#include "store/KMeans.h"
#include "support/Format.h"
#include "support/Metrics.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>

using namespace ropt;
using namespace ropt::fleet;

FleetOptions FleetOptions::paperDefaults() {
  FleetOptions O;
  // The deployment-realistic mobile network of the paper's install-base
  // model: noticeable loss and reordering over a few ticks of latency.
  O.Net.DropProb = 0.15;
  O.Net.ReorderProb = 0.10;
  return O;
}

std::string FleetResult::digest() const {
  std::string D = format(
      "app=%s devices=%d rounds=%d vtime=%llu best=%.17g@%d genome=%s "
      "fromhint=%d\n",
      AppName.c_str(), Devices, Rounds,
      static_cast<unsigned long long>(VirtualDuration), BestSpeedup,
      BestDevice, BestGenome.c_str(), BestFromHint ? 1 : 0);
  for (const FleetStepLog &L : Log) {
    const DeviceRound &O = L.Outcome;
    D += format("t=%llu s%d d%d drop=%d best=%.17g src=%s fromhint=%d "
                "genome=%s prov=%016llx disc=d%d@%llu recv=%d adopt=%d "
                "rej=%d evals=%d\n",
                static_cast<unsigned long long>(L.Time), L.Step, L.Device,
                L.Dropped ? 1 : 0, O.BestSpeedup,
                search::genomeSourceName(O.BestSource),
                O.BestFromHint ? 1 : 0, O.BestGenome.c_str(),
                static_cast<unsigned long long>(O.BestProv.Id),
                O.BestProv.Device,
                static_cast<unsigned long long>(O.BestProv.Time),
                O.HintsReceived, O.HintsAdopted, O.HintsRejected,
                O.Evaluations);
    for (const HintRejection &Rej : O.Report.Rejections)
      D += format("  reject %s verdict=%s prov=%016llx\n", Rej.Key.c_str(),
                  Rej.Verdict.c_str(),
                  static_cast<unsigned long long>(Rej.ProvenanceId));
  }
  for (const Server::LeaderEntry &E : Leaderboard) {
    std::string Classes;
    for (int C : E.Classes)
      Classes += (Classes.empty() ? "" : ",") + std::to_string(C);
    D += format("lb %s speedup=%.17g reports=%d devices=%d classes=%s q=%d "
                "exp=%d verdict=%s hash=%016llx size=%llu prov=%016llx "
                "disc=d%d@%llu\n",
                E.Key.c_str(), E.Speedup, E.Reports,
                static_cast<int>(E.Devices.size()), Classes.c_str(),
                E.Quarantined ? 1 : 0, E.Expired ? 1 : 0,
                E.RejectVerdict.c_str(),
                static_cast<unsigned long long>(E.BinaryHash),
                static_cast<unsigned long long>(E.CodeSize),
                static_cast<unsigned long long>(E.Prov.Id), E.Prov.Device,
                static_cast<unsigned long long>(E.Prov.Time));
  }
  if (!ClassOf.empty()) {
    D += "kmeans assign=";
    for (size_t I = 0; I != ClassOf.size(); ++I)
      D += (I ? "," : "") + std::to_string(ClassOf[I]);
    D += format(" warm=%llu\n",
                static_cast<unsigned long long>(WarmStartHintCount));
  }
  return D;
}

namespace {

/// Per-device actor state the event handlers thread through the loop.
/// Everything here is mutated only from commits or from the device's own
/// (lane-serialized) step computes, so no locking is needed.
struct DeviceState {
  std::unique_ptr<Device> Dev;
  DeviceProfile Prof;
  int StepsDone = 0;
  bool Left = false;          ///< Died at a step past LeaveTick.
  VirtualTime LeaveTick = 0;  ///< 0 = never leaves.
  bool Joiner = false;
  /// Hints delivered since the device last started a step; the next
  /// step's compute drains it.
  std::vector<Hint> Mailbox;
  /// The in-flight step: written by the StepExec compute, consumed by
  /// the StepDone commit.
  StepResult Pending;
  /// Effective-reorder detection on the hint channel: hint pushes to
  /// this device get monotone send sequences; an arrival below the max
  /// already-arrived sequence was genuinely overtaken.
  uint64_t NextHintSendSeq = 0;
  uint64_t MaxArrivedHintSeq = 0;
  bool AnyHintArrived = false;
  /// Start tick of the device's most recently scheduled step — the
  /// boundary a reordered hint can miss.
  VirtualTime NextStepAt = 0;
  /// The newest step report that actually reached the server — the
  /// fleet best is a max over *delivered* reports, so a device whose
  /// last words were lost contributes its previous delivered state.
  DeviceRound LastMerged;
  int LastMergedStep = -1;
};

} // namespace

FleetResult Coordinator::run(const std::string &AppName, Server &Srv,
                             Transport &Net, report::RunReport *Report) {
  ROPT_TRACE_SPAN("fleet.run");
  FleetResult Out;
  Out.AppName = AppName;
  int N = std::max(1, Opt.Devices);
  int Steps = std::max(0, Opt.Rounds);
  Out.Rounds = Steps;

  int JoinCount = static_cast<int>(
      Opt.Population.JoinFraction * static_cast<double>(N));
  int Total = N + JoinCount;
  Out.Devices = Total;
  Out.DevicesJoined = JoinCount;
  int Classes = Opt.ProfileClasses <= 0 ? Total
                                        : std::min(Opt.ProfileClasses, Total);

  // --- Build the class pipelines and the device actors on top of them.
  // Two class models: the historical modulo quantization (class members
  // *are* the class hardware), and seeded k-means over the continuous
  // profile vectors (devices keep their own axes; the class pipeline is
  // the cluster centroid's hardware). Both run in this serial context,
  // so the clustering — like everything else — is --jobs-independent.
  bool UseKMeans = Opt.KMeansClasses && Opt.ProfileClasses > 0 &&
                   Classes < Total;
  std::vector<std::shared_ptr<DeviceClassState>> Class(
      static_cast<size_t>(Classes));
  std::vector<DeviceState> States(static_cast<size_t>(Total));
  if (UseKMeans) {
    std::vector<DeviceProfile> Profs;
    std::vector<std::vector<double>> Points;
    for (int I = 0; I != Total; ++I) {
      Profs.push_back(DeviceProfile::derive(Opt.Seed, I, Opt.CostJitter,
                                            Opt.NoiseJitter,
                                            Opt.SessionSpread));
      Points.push_back(profileVector(Profs.back()));
    }
    store::KMeansResult KM = store::kmeans(Points, Classes, Opt.Seed);
    Classes = static_cast<int>(KM.Centroids.size());
    for (int C = 0; C != Classes; ++C) {
      // The class pipeline lives at the cluster centroid: representative
      // hardware axes, class-stream seed (same stream as the modulo
      // model, so class configs stay comparable across modes).
      DeviceProfile CP = DeviceProfile::derive(Opt.Seed, C, 0, 0, 0);
      CP.ClassId = C;
      const std::vector<double> &Cen = KM.Centroids[static_cast<size_t>(C)];
      CP.CostScale = Cen[0];
      CP.NoiseScale = Cen[7];
      CP.SessionShift = static_cast<int64_t>(std::llround(Cen[9]));
      Class[static_cast<size_t>(C)] =
          std::make_shared<DeviceClassState>(AppName, Base, CP);
    }
    for (int I = 0; I != Total; ++I) {
      DeviceState &DS = States[static_cast<size_t>(I)];
      DS.Prof = Profs[static_cast<size_t>(I)];
      DS.Prof.ClassId = KM.Assignment[static_cast<size_t>(I)];
      DS.Dev = std::make_unique<Device>(
          Class[static_cast<size_t>(DS.Prof.ClassId)], DS.Prof, Opt.Costs);
      DS.Joiner = I >= N;
    }
    Out.ClassOf = std::move(KM.Assignment);
    Out.ClassCentroids = std::move(KM.Centroids);
  } else {
    for (int C = 0; C != Classes; ++C)
      Class[static_cast<size_t>(C)] = std::make_shared<DeviceClassState>(
          AppName, Base,
          DeviceProfile::derive(Opt.Seed, C, Opt.CostJitter, Opt.NoiseJitter,
                                Opt.SessionSpread));
    for (int I = 0; I != Total; ++I) {
      DeviceState &DS = States[static_cast<size_t>(I)];
      DS.Prof = DeviceProfile::deriveClassed(Opt.Seed, I, Opt.ProfileClasses,
                                             Opt.CostJitter, Opt.NoiseJitter,
                                             Opt.SessionSpread);
      DS.Dev = std::make_unique<Device>(
          Class[static_cast<size_t>(DS.Prof.ClassId % Classes)], DS.Prof,
          Opt.Costs);
      DS.Joiner = I >= N;
    }
  }
  // Class-local hint serving only makes sense when classes are genuine
  // profile clusters; the modulo model keeps the global ranking (one
  // class per device would otherwise kill crowd-sourcing outright).
  bool ClassHints = UseKMeans;

  ThreadPool Pool(static_cast<size_t>(std::max(0, Opt.Jobs)));

  // Class setup (profile + capture + baselines) is embarrassingly
  // parallel: classes share nothing, not even the dex file.
  {
    ROPT_TRACE_SPAN("fleet.setup");
    std::vector<char> SetupOk(static_cast<size_t>(Classes), 0);
    Pool.parallelFor(static_cast<size_t>(Classes), [&](size_t I, size_t) {
      SetupOk[I] = Class[I]->setup() ? 1 : 0;
    });
    for (int C = 0; C != Classes; ++C)
      if (!SetupOk[static_cast<size_t>(C)]) {
        Out.FailureReason = format(
            "class %d: %s", C,
            Class[static_cast<size_t>(C)]->failureReason().c_str());
        return Out;
      }
  }

  uint64_t AppId = appKey(AppName);
  EventLoop Loop(Pool);
  VirtualTime Idle = std::max<VirtualTime>(1, Opt.IdleTicks);
  VirtualTime Grid = std::max<VirtualTime>(1, Opt.StepGridTicks);

  // Telemetry: per-class sketches, provenance chains and the bounded
  // per-device trace buffers. All hub calls below happen in commits (or
  // in the serial seeding loop), so the accumulated state is a pure
  // function of the event schedule — byte-identical at any --jobs.
  TelemetryHub Hub(AppName, Total, Classes, Opt.TelemetryEventsPerDevice);
  for (int I = 0; I != Total; ++I)
    Hub.setDeviceClass(I, States[static_cast<size_t>(I)].Prof.ClassId %
                              Classes);
  // Chains restored from a persistent store carry a *prior run's*
  // discovery clock: register them up front so telemetry never compares
  // their timestamps against this run's, and validators can skip
  // same-clock causality checks.
  if (const std::vector<Server::LeaderEntry> *Board = Srv.leaderboard(AppName))
    for (const Server::LeaderEntry &E : *Board)
      if (E.Restored)
        Hub.markRestored(E.Prov, E.Key);

  // --- Event handlers. Scheduling only happens from serial contexts
  // (here before run(), and inside commits), so Seq assignment — and the
  // whole simulation — is deterministic at any --jobs.
  std::function<void(EventLoop &, int, VirtualTime)> StartStep;

  // HintArrive: the server's hint push lands in the device mailbox. A
  // reorder was *effective* when it changed which hints seed which
  // search: either this push was overtaken by a later one (arrives below
  // the max already-landed send sequence), or its reorder delay carried
  // it past the step start it would otherwise have seeded.
  auto HintArrive = [&](int Id, uint64_t SendSeq, uint64_t ReorderTicks,
                        std::vector<Hint> Hints) {
    return [&, Id, SendSeq, ReorderTicks,
            Hints = std::move(Hints)](EventLoop &L) mutable {
      DeviceState &DS = States[static_cast<size_t>(Id)];
      VirtualTime T = L.now();
      bool Effective = DS.AnyHintArrived && SendSeq < DS.MaxArrivedHintSeq;
      if (!Effective && ReorderTicks > 0 && DS.NextStepAt != 0 &&
          T > DS.NextStepAt && T - ReorderTicks <= DS.NextStepAt)
        Effective = true;
      if (Effective) {
        ++Out.Transport.ReordersEffective;
        ROPT_METRIC_INC("fleet.reorders_effective");
      }
      DS.MaxArrivedHintSeq = std::max(DS.MaxArrivedHintSeq, SendSeq);
      DS.AnyHintArrived = true;
      if (DS.Left)
        return; // Dead phones receive nothing.
      for (Hint &H : Hints) {
        // The chain's hint-latency sample: discovery virtual time to
        // this arrival, observed into the *receiving* class's sketch.
        Hub.onHintArrival(Id, H.Prov, H.Key, T);
        DS.Mailbox.push_back(std::move(H));
      }
    };
  };

  // ReportArrive: merge at the server, then push the hint set as it
  // stands *at arrival time* back toward the device.
  auto ReportArrive = [&](int Id, int StepIdx, DeviceRound DR) {
    return [&, Id, StepIdx, DR = std::move(DR)](EventLoop &L) mutable {
      VirtualTime T = L.now();
      Srv.merge(AppName, DR.Report, T);
      Hub.onMerge(Id, T);
      for (const GenomeReport &G : DR.Report.Best)
        Hub.onGenomeMerged(G.Prov, G.Key, T);
      DeviceState &DS = States[static_cast<size_t>(Id)];
      if (StepIdx > DS.LastMergedStep) {
        DS.LastMergedStep = StepIdx;
        DS.LastMerged = std::move(DR);
      }
      if (DS.Left)
        return;
      std::vector<Hint> Hints = Srv.hints(
          AppName, T, ClassHints ? DS.Prof.ClassId % Classes : -1);
      if (Hints.empty())
        return;
      MessageKey Key{AppId, Channel::Hints, StepIdx, Id, 0};
      SendOutcome S = planDelivery(Net, Key, Opt.Retry);
      Out.Transport.count(S);
      if (!S.Delivered)
        return;
      Out.HintsPublished += Hints.size();
      uint64_t SendSeq = DS.NextHintSendSeq++;
      Hub.onDelivery(/*HintChannel=*/true, Id, T, T + S.DelayTicks);
      L.schedule(T + S.DelayTicks, -1, nullptr,
                 HintArrive(Id, SendSeq, S.Reordered ? S.ReorderTicks : 0,
                            std::move(Hints)));
    };
  };

  // StepDone: log the completed step, apply churn, send the report.
  auto FinishStep = [&](EventLoop &L, int Id) {
    DeviceState &DS = States[static_cast<size_t>(Id)];
    VirtualTime T = L.now();
    VirtualTime StepStart = T - DS.Pending.Duration;
    int StepIdx = DS.StepsDone++;
    DeviceRound DR = std::move(DS.Pending.Round);

    FleetStepLog Cell;
    Cell.Time = T;
    Cell.Step = StepIdx;
    Cell.Device = Id;
    Out.HintsAdopted += static_cast<uint64_t>(DR.HintsAdopted);
    Out.HintsRejected += static_cast<uint64_t>(DR.HintsRejected);

    // Telemetry: the step span + sketches, and the chain verdicts of
    // every hint the step verified (adoptions stamp the step's start —
    // the instant the GA actually consumed the seed).
    Hub.onStep(Id, StepIdx, StepStart, T, DR.BestSpeedup);
    for (uint64_t P : DR.AdoptedProvenance)
      Hub.onAdoption(Id, P, StepStart);
    for (uint64_t P : DR.RejectedProvenance)
      Hub.onRejection(Id, P);

    // Churn: a device past its leave tick died while the step ran. The
    // step's results leave with it — nothing is reported, and no further
    // steps are scheduled.
    if (DS.LeaveTick != 0 && T >= DS.LeaveTick) {
      DS.Left = true;
      ++Out.DevicesLeft;
      ROPT_METRIC_INC("fleet.devices_left");
      Cell.Dropped = true;
      Hub.onLeave(Id, T);
    } else {
      MessageKey Key{AppId, Channel::Report, StepIdx, Id, 0};
      SendOutcome S = planDelivery(Net, Key, Opt.Retry);
      Out.Transport.count(S);
      Cell.ReportDelivery = S;
      if (S.Delivered) {
        Hub.onDelivery(/*HintChannel=*/false, Id, T, T + S.DelayTicks);
        L.schedule(T + S.DelayTicks, -1, nullptr,
                   ReportArrive(Id, StepIdx, DR));
      }
      // A lost report costs its retry time, not the device's life: the
      // next step happens regardless (its report re-carries the best).
      if (DS.StepsDone < Steps)
        StartStep(L, Id, T + Idle);
    }

    if (Report) {
      report::FleetRoundRecord Rec;
      Rec.App = AppName;
      Rec.FleetDevices = Total;
      Rec.Round = StepIdx;
      Rec.Device = Id;
      Rec.VirtualTime = T;
      Rec.BestSpeedup = DR.BestSpeedup;
      Rec.BestGenome = DR.BestGenome;
      Rec.BestSource = search::genomeSourceName(DR.BestSource);
      Rec.BestFromHint = DR.BestFromHint;
      Rec.HintsReceived = DR.HintsReceived;
      Rec.HintsAdopted = DR.HintsAdopted;
      Rec.HintsRejected = DR.HintsRejected;
      Rec.Evaluations = DR.Evaluations;
      Rec.DeviceClass = DS.Prof.ClassId % Classes;
      Rec.BestProvenance = DR.BestProv.Id;
      Rec.BestDiscoveryDevice = DR.BestProv.Device;
      Rec.BestDiscoveryTime = DR.BestProv.Time;
      Rec.TransportAttempts = Cell.ReportDelivery.Attempts;
      Rec.TransportDrops = Cell.ReportDelivery.Drops;
      Rec.TransportTicks = Cell.ReportDelivery.DelayTicks;
      Rec.Delivered = Cell.ReportDelivery.Delivered;
      Report->onFleetRound(Rec);
    }

    Cell.Outcome = std::move(DR);
    Out.Log.push_back(std::move(Cell));
  };

  // StepExec: the expensive compute on the class lane. The wall-clock
  // work happens *now*, but the device only finishes at begin + virtual
  // duration — the commit books a StepDone event there, so hints landing
  // while the step "runs" wait in the mailbox for the next one. Starts
  // are aligned up to the grid: devices due within the same grid slot
  // compute in one parallel batch.
  StartStep = [&](EventLoop &L, int Id, VirtualTime At) {
    At = (At + Grid - 1) / Grid * Grid;
    DeviceState &DS = States[static_cast<size_t>(Id)];
    DS.NextStepAt = At;
    L.schedule(
        At, DS.Prof.ClassId % Classes,
        [&States, Id, At]() {
          DeviceState &DS = States[static_cast<size_t>(Id)];
          std::vector<Hint> Hints = std::move(DS.Mailbox);
          DS.Mailbox.clear();
          DS.Pending = DS.Dev->step(At, DS.StepsDone, Hints);
        },
        [&, Id](EventLoop &L2) {
          DeviceState &DS = States[static_cast<size_t>(Id)];
          L2.schedule(L2.now() + DS.Pending.Duration, -1, nullptr,
                      [&FinishStep, Id](EventLoop &L3) {
                        FinishStep(L3, Id);
                      });
        });
  };

  // --- Seed the population: start ticks, churn schedule, joiners.
  if (Steps > 0) {
    for (int I = 0; I != Total; ++I) {
      DeviceState &DS = States[static_cast<size_t>(I)];
      // The cross-run warm start: restored leaderboard hints land in the
      // mailbox before the first step, exactly as if delivered — the
      // device still re-verifies them against its own verification map.
      // Serial context, so the pre-seed is deterministic at any --jobs.
      if (Opt.WarmStartHints) {
        std::vector<Hint> WH = Srv.hints(
            AppName, 0, ClassHints ? DS.Prof.ClassId % Classes : -1);
        Out.WarmStartHintCount += WH.size();
        for (Hint &H : WH)
          DS.Mailbox.push_back(std::move(H));
      }
      Rng R(DS.Prof.Seed ^ 0x57A7u);
      VirtualTime Start;
      if (DS.Joiner) {
        Start = 1 + R.below(std::max<uint64_t>(
                    Opt.Population.HorizonTicks, 1));
        // The joiner's first step lands on the grid — mark the join
        // instant where its track actually lights up.
        Hub.onJoin(I, (Start + Grid - 1) / Grid * Grid);
      } else {
        Start = 1 + R.below(Opt.StartSpreadTicks + 1);
        if (Opt.Population.LeaveFraction > 0.0 &&
            R.chance(Opt.Population.LeaveFraction)) {
          VirtualTime H = std::max<VirtualTime>(Opt.Population.HorizonTicks,
                                                4);
          DS.LeaveTick = H / 4 + R.below(H - H / 4 + 1);
        }
      }
      StartStep(Loop, I, Start);
    }
  }

  {
    ROPT_TRACE_SPAN("fleet.eventloop");
    Loop.run();
  }
  Out.VirtualDuration = Loop.now();

  ROPT_METRIC_ADD("fleet.transport_attempts", Out.Transport.Attempts);
  ROPT_METRIC_ADD("fleet.transport_drops", Out.Transport.Drops);

  // --- Aggregate: engine totals per class, fleet best over delivered
  // reports (a device's own view vs its own baseline).
  for (int C = 0; C != Classes; ++C) {
    const DeviceClassState &CS = *Class[static_cast<size_t>(C)];
    Out.Counters += CS.counters();
    Out.Cache.GenomeHits += CS.cacheStats().GenomeHits;
    Out.Cache.BinaryHits += CS.cacheStats().BinaryHits;
    Out.Cache.Misses += CS.cacheStats().Misses;
    Out.Racing.ReplaysSpent += CS.racingStats().ReplaysSpent;
    Out.Racing.FixedBudget += CS.racingStats().FixedBudget;
    Out.Racing.EarlyStops += CS.racingStats().EarlyStops;
    Out.Racing.Escalations += CS.racingStats().Escalations;
    Out.Racing.TopUps += CS.racingStats().TopUps;
    Out.ReplayBackend += CS.replayBackendStats();
  }
  for (int I = 0; I != Total; ++I) {
    const DeviceState &DS = States[static_cast<size_t>(I)];
    if (DS.LastMergedStep < 0)
      continue;
    if (DS.LastMerged.BestSpeedup > Out.BestSpeedup) {
      Out.BestSpeedup = DS.LastMerged.BestSpeedup;
      Out.BestGenome = DS.LastMerged.BestGenome;
      Out.BestDevice = I;
      Out.BestFromHint = DS.LastMerged.BestFromHint;
      Out.BestProv = DS.LastMerged.BestProv;
    }
  }
  if (const std::vector<Server::LeaderEntry> *L = Srv.leaderboard(AppName))
    Out.Leaderboard = *L;

  // Close the telemetry: crown the winning chain, snapshot the merged
  // sketches (device -> class -> cell) and the surviving trace events.
  if (Out.BestProv.Id != 0)
    Hub.markWinner(Out.BestProv.Id);
  Out.Telemetry = Hub.telemetry();
  Out.TraceEvents = Hub.traceEvents();
  if (Report) {
    Report->onFleetCell(Out.Telemetry);
    Report->onFleetTrace(AppName, Total, Classes, Out.TraceEvents);
  }

  Out.Succeeded = Out.BestSpeedup > 0.0;
  if (!Out.Succeeded)
    Out.FailureReason = "no delivered report carried a valid genome";
  return Out;
}
