//===- fleet/Server.h - Per-app genome leaderboard --------------*- C++ -*-===//
//
// Part of ReplayOpt (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The central aggregation side of the crowd-sourced search (the server
/// role of "Iterative compilation on mobile devices", PAPERS.md): devices
/// report their best genomes after every search round, the server merges
/// the reports into a per-app leaderboard, and the current top-k becomes
/// the "hint" set the next round's devices warm-start from.
///
/// Fitness is reported as *speedup over the reporting device's own stock
/// Android baseline*, not absolute cycles — devices are heterogeneous
/// (perturbed cost models, noise floors, session inputs), so only the
/// normalized figure is comparable across the fleet. Entries are keyed by
/// the reported binary hash with a genome-name fallback, pooled samples
/// are capped and re-ranked by median, and a genome any device rejects
/// against its verification map is quarantined — it never appears in a
/// hint set again. The server is plain deterministic state: merge order
/// is the coordinator's problem (the event loop serializes commits in
/// `(virtual time, seq)` order), and the server's only notion of time is
/// the virtual tick the coordinator passes in — entries age out of the
/// hint set when no report has renewed them for `TtlTicks`.
///
//===----------------------------------------------------------------------===//

#ifndef ROPT_FLEET_SERVER_H
#define ROPT_FLEET_SERVER_H

#include "fleet/EventLoop.h"
#include "fleet/Telemetry.h"
#include "search/GeneticSearch.h"
#include "store/Store.h"

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace ropt {
namespace fleet {

/// One Ok genome a device reports after a round.
struct GenomeReport {
  search::Genome G;
  std::string Key;         ///< Canonical genome name (G.name()).
  uint64_t BinaryHash = 0; ///< Binary identity on the reporting device.
  uint64_t CodeSize = 0;
  double SpeedupMedian = 0.0; ///< Median of SpeedupSamples.
  /// Per-replay speedups vs the device's own Android baseline.
  std::vector<double> SpeedupSamples;
  /// How the device found it (random exploration, adopted hint, ...).
  search::GenomeSource Source = search::GenomeSource::Random;
  /// The provenance chain the genome rides on: minted at the reporting
  /// device's evaluation if it discovered the genome itself, or carried
  /// over from the hint it adopted.
  Provenance Prov;
};

/// A foreign hint the device's own verification map (or compiler) turned
/// down — the fleet-scale miscompile report.
struct HintRejection {
  std::string Key;     ///< Canonical genome name of the rejected hint.
  std::string Verdict; ///< evalKindName() spelling of the failure.
  uint64_t ProvenanceId = 0; ///< Chain the rejected hint carried.
};

/// Everything one device tells the server about one round.
struct RoundReport {
  int Device = 0;
  int Round = 0;
  /// Reporting device's hardware class (-1 = unknown/synthetic). Feeds
  /// the per-class leaderboards: an entry remembers which classes
  /// confirmed it, and class-local hint serving prefers those entries.
  int DeviceClass = -1;
  std::vector<GenomeReport> Best;
  std::vector<HintRejection> Rejections;
};

/// One leaderboard entry served to devices.
struct Hint {
  search::Genome G;
  std::string Key;
  double Speedup = 0.0; ///< Merged (pooled-median) speedup.
  int Reports = 0;      ///< Device reports folded into the entry.
  Provenance Prov;      ///< Discovery provenance (first reporter's).
};

struct ServerOptions {
  int TopK = 4;                 ///< Hint-set size.
  /// Class-local hint serving (hints() with Class >= 0) appends up to
  /// this many best entries *other* classes found on top of the class's
  /// own top-k — the cross-class exploration tail. A slow-SoC class
  /// mostly follows its own winners but still occasionally re-verifies a
  /// fast-SoC discovery on its own hardware.
  int ExplorationTail = 2;
  size_t MaxPooledSamples = 96; ///< Per-entry speedup-sample cap.
  /// Leaderboard entry time-to-live in virtual ticks (0 = entries never
  /// age out). Under churn, a device that left the fleet stops renewing
  /// its entries; once no report has confirmed an entry for TtlTicks it
  /// expires out of the hint set — stale discoveries from dead hardware
  /// do not steer live devices forever. A fresh report revives the entry.
  uint64_t TtlTicks = 0;
};

struct ServerStats {
  uint64_t ReportsMerged = 0;   ///< RoundReports accepted.
  uint64_t GenomesReported = 0; ///< GenomeReports seen (dups included).
  uint64_t Duplicates = 0;      ///< Folded into an existing entry.
  uint64_t Quarantined = 0;     ///< Entries retired by rejection reports.
  uint64_t HintsServed = 0;     ///< Hints handed out across hints() calls.
  uint64_t Expired = 0;         ///< Entries the virtual-time TTL retired.
  uint64_t HintsInjected = 0;   ///< injectHint() calls that merged.
  /// injectHint() calls dropped because the genome is quarantined — a
  /// restored hint a prior night proved unsound never re-enters.
  uint64_t InjectionsDropped = 0;
  uint64_t EntriesRestored = 0; ///< Leaderboard rows loaded from a store.
};

class Server {
public:
  explicit Server(ServerOptions Opt = {}) : Opt(Opt) {}

  /// One leaderboard row.
  struct LeaderEntry {
    search::Genome G;
    std::string Key;
    uint64_t BinaryHash = 0;
    uint64_t CodeSize = 0;
    std::vector<double> Samples; ///< Pooled speedups, capped.
    double Speedup = 0.0;        ///< median(Samples).
    std::set<int> Devices;       ///< Devices that reported it.
    int Reports = 0;
    bool Quarantined = false;
    std::string RejectVerdict;      ///< First rejection verdict, if any.
    VirtualTime LastReportTick = 0; ///< Virtual time of the last report.
    bool Expired = false;           ///< Aged out by ServerOptions::TtlTicks.
    /// Hardware classes whose devices confirmed this entry — the
    /// substrate of class-local hint serving.
    std::set<int> Classes;
    /// The entry was loaded from a persistent store this process (never
    /// persisted itself): its provenance timestamps are a prior run's
    /// virtual clock, so telemetry must treat the chain as cross-epoch.
    bool Restored = false;
    /// The first reporter's provenance — the chain every hint cut from
    /// this entry carries. A later duplicate report never re-attributes
    /// the discovery.
    Provenance Prov;
  };

  /// Folds one device's round report into the app's leaderboard:
  /// statistical merging (pooled speedup samples, median re-rank), dedup
  /// by binary hash / genome name, and quarantine of rejected hints.
  /// \p Now stamps the touched entries for TTL aging (and revives an
  /// expired entry the report re-confirms).
  void merge(const std::string &App, const RoundReport &R,
             VirtualTime Now = 0);

  /// The current top-k hint set for \p App: non-quarantined, non-expired
  /// entries, best merged speedup first (genome name breaks ties, so the
  /// set is stable across runs). When TtlTicks is set, entries whose last
  /// report is older than \p Now - TtlTicks expire here first.
  ///
  /// With \p Class >= 0 the set is class-local: the top-k among entries
  /// some device of that class confirmed, followed by up to
  /// ServerOptions::ExplorationTail best entries only other classes have
  /// seen (the cross-class exploration tail). Class -1 keeps the global
  /// ranking.
  std::vector<Hint> hints(const std::string &App, VirtualTime Now = 0,
                          int Class = -1);

  /// Pre-seeds the leaderboard with an unverified genome, as if a device
  /// of \p Class had reported it at \p Speedup. Entry point for
  /// cross-run hint persistence — and for the safety tests'
  /// deliberately-unsound hints. A genome whose leaderboard entry is
  /// quarantined is dropped (counted in InjectionsDropped and
  /// `fleet.hints_rejected`): restarts never resurrect a proven
  /// miscompile.
  void injectHint(const std::string &App, const search::Genome &G,
                  double Speedup, int Class = -1);

  /// The app's full leaderboard, or null if it never got a report.
  const std::vector<LeaderEntry> *leaderboard(const std::string &App) const;

  /// Every app with a board, in name order.
  std::vector<std::string> apps() const;

  /// Snapshots every board (plus nothing else — seeds and class models
  /// are the caller's) into \p Out.Apps, replacing its contents. The
  /// export is deterministic (map order, entry order preserved) and
  /// import(export(S)) == S board-wise, so a load -> save round trip
  /// through the store is a byte fixed point.
  void exportState(store::StoreState &Out) const;

  /// Replaces the server's boards with the stored ones. Genomes are
  /// parsed back from their canonical strings; an unparseable
  /// non-quarantined entry is skipped with a warning, while an
  /// unparseable *quarantined* entry is kept genome-less — its key alone
  /// must keep blocking injection. Returns the number of restored
  /// entries (also accumulated in EntriesRestored).
  size_t importState(const store::StoreState &S,
                     std::vector<std::string> *Warnings = nullptr);

  const ServerStats &stats() const { return Stats; }

private:
  struct AppBoard {
    std::vector<LeaderEntry> Entries;
    std::map<uint64_t, size_t> ByHash; ///< BinaryHash != 0 -> entry index.
    std::map<std::string, size_t> ByKey; ///< Genome name -> entry index.
  };

  LeaderEntry &entryFor(AppBoard &Board, const GenomeReport &G,
                        bool &Existing);

  ServerOptions Opt;
  std::map<std::string, AppBoard> Boards;
  ServerStats Stats;
};

} // namespace fleet
} // namespace ropt

#endif // ROPT_FLEET_SERVER_H
