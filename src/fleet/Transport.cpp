//===- fleet/Transport.cpp - Injectable device<->server messaging ---------===//

#include "fleet/Transport.h"

#include "support/Random.h"

#include <algorithm>

using namespace ropt;
using namespace ropt::fleet;

uint64_t fleet::appKey(const std::string &Name) {
  uint64_t H = 0xcbf29ce484222325ull; // FNV-1a
  for (char C : Name) {
    H ^= static_cast<unsigned char>(C);
    H *= 0x100000001b3ull;
  }
  return H;
}

uint64_t MessageKey::mix() const {
  // SplitMix-style fold of every identity field; Rng's SplitMix64 seeding
  // then decorrelates nearby keys.
  uint64_t H = App;
  auto Fold = [&H](uint64_t V) {
    H ^= V + 0x9e3779b97f4a7c15ull + (H << 6) + (H >> 2);
  };
  Fold(static_cast<uint64_t>(Dir));
  Fold(static_cast<uint64_t>(Round) + 1);
  Fold(static_cast<uint64_t>(Device) + 1);
  Fold(static_cast<uint64_t>(Attempt) + 1);
  return H;
}

Delivery SimTransport::attempt(const MessageKey &Key) {
  // One private stream per attempt identity: the verdict cannot depend on
  // how many other messages were sent before this one.
  Rng R(Seed ^ Key.mix());
  Delivery D;
  D.Delivered = !R.chance(Opt.DropProb);
  uint64_t Lo = Opt.MinLatencyTicks;
  uint64_t Hi = std::max(Opt.MaxLatencyTicks, Lo);
  D.LatencyTicks = Lo + (Hi > Lo ? R.below(Hi - Lo + 1) : 0);
  D.Reordered = D.Delivered && R.chance(Opt.ReorderProb);
  if (D.Reordered)
    D.ReorderTicks = 1 + R.below(std::max<uint64_t>(2 * Hi, 1));
  return D;
}

SendOutcome fleet::planDelivery(Transport &T, MessageKey Key,
                                const RetryPolicy &Policy) {
  SendOutcome Out;
  for (int A = 0; A < Policy.MaxAttempts; ++A) {
    Key.Attempt = A;
    Delivery D = T.attempt(Key);
    ++Out.Attempts;
    if (D.Delivered) {
      Out.Delivered = true;
      Out.Reordered = D.Reordered;
      Out.ReorderTicks = D.ReorderTicks;
      Out.DelayTicks += D.LatencyTicks + D.ReorderTicks;
      return Out;
    }
    // A drop costs the sender a timeout: the attempt's latency (the time
    // it takes to conclude nothing came back) plus the capped backoff
    // before the retransmit. All of it lands in the arrival delay.
    ++Out.Drops;
    Out.DelayTicks += D.LatencyTicks;
    uint64_t Backoff = Policy.BackoffBaseTicks
                       << std::min<uint64_t>(static_cast<uint64_t>(A), 16);
    Out.DelayTicks += std::min(Backoff, Policy.BackoffCapTicks);
  }
  return Out;
}
