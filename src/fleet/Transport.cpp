//===- fleet/Transport.cpp - Injectable device<->server messaging ---------===//

#include "fleet/Transport.h"

#include "support/Random.h"

#include <algorithm>

using namespace ropt;
using namespace ropt::fleet;

uint64_t fleet::appKey(const std::string &Name) {
  uint64_t H = 0xcbf29ce484222325ull; // FNV-1a
  for (char C : Name) {
    H ^= static_cast<unsigned char>(C);
    H *= 0x100000001b3ull;
  }
  return H;
}

uint64_t MessageKey::mix() const {
  // SplitMix-style fold of every identity field; Rng's SplitMix64 seeding
  // then decorrelates nearby keys.
  uint64_t H = App;
  auto Fold = [&H](uint64_t V) {
    H ^= V + 0x9e3779b97f4a7c15ull + (H << 6) + (H >> 2);
  };
  Fold(static_cast<uint64_t>(Dir));
  Fold(static_cast<uint64_t>(Round) + 1);
  Fold(static_cast<uint64_t>(Device) + 1);
  Fold(static_cast<uint64_t>(Attempt) + 1);
  return H;
}

Delivery SimTransport::attempt(const MessageKey &Key) {
  // One private stream per attempt identity: the verdict cannot depend on
  // how many other messages were sent before this one.
  Rng R(Seed ^ Key.mix());
  Delivery D;
  D.Delivered = !R.chance(Opt.DropProb);
  uint64_t Lo = Opt.MinLatencyTicks;
  uint64_t Hi = std::max(Opt.MaxLatencyTicks, Lo);
  D.LatencyTicks = Lo + (Hi > Lo ? R.below(Hi - Lo + 1) : 0);
  D.Reordered = D.Delivered && R.chance(Opt.ReorderProb);
  return D;
}

SendOutcome fleet::sendWithRetry(Transport &T, MessageKey Key,
                                 const RetryPolicy &Policy) {
  SendOutcome Out;
  for (int A = 0; A < Policy.MaxAttempts; ++A) {
    Key.Attempt = A;
    Delivery D = T.attempt(Key);
    ++Out.Attempts;
    Out.Ticks += D.LatencyTicks;
    if (D.Delivered) {
      Out.Delivered = true;
      Out.Reordered = Out.Reordered || D.Reordered;
      return Out;
    }
    ++Out.Drops;
    uint64_t Backoff = Policy.BackoffBaseTicks
                       << std::min<uint64_t>(static_cast<uint64_t>(A), 16);
    Out.Ticks += std::min(Backoff, Policy.BackoffCapTicks);
  }
  return Out;
}
