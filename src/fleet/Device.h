//===- fleet/Device.h - One simulated fleet member --------------*- C++ -*-===//
//
// Part of ReplayOpt (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One device of the simulated population: a capture/replay/search
/// pipeline instance living on perturbed hardware. Heterogeneity comes in
/// three axes, all derived deterministically from the fleet seed: a
/// scaled os::KernelCostModel (slow vs fast kernels), a scaled
/// measurement-noise floor (quiet vs thermally-throttled phones), and a
/// shifted session parameter (different users exercise different inputs,
/// the paper's §5.4 concern).
///
/// Since the event-loop redesign (DESIGN.md §14) the pipeline state is
/// split in two. A DeviceClassState is one *hardware/user class* — the
/// app copy, captured region, baselines and memoized evaluation engine
/// for one point in the heterogeneity space. A Device is one *member*: a
/// private search seed, best-so-far and hint bookkeeping on top of its
/// class's pipeline. A real install base of 10k phones spans a few dozen
/// SoC/OS/input classes, not 10k unique pipelines (the per-cluster
/// population treatment in the marnaed exemplar); sharing the class
/// engine is also what makes the simulation scale — class members hit
/// each other's memoized evaluations, so per-device wall-clock *falls*
/// as the population grows. `ProfileClasses = 0` keeps one class per
/// device, the fully-continuous population of the old round-based fleet.
///
/// Devices are actors on the fleet EventLoop: `step()` runs one search
/// round at a virtual instant and returns, with the round report, the
/// *virtual duration* the step took on this device — derived from the
/// evaluation work actually done (cache misses are compiles+replays,
/// hits are table lookups) and the device's hardware cost scale. The
/// coordinator turns that duration into the step-completion event, so a
/// slow device genuinely reports later than a fast one.
///
/// The safety contract (DESIGN.md §12) is unchanged: every foreign hint
/// is compiled and replayed against the device's own verification map
/// before it may seed the local GA. A hint that miscompiles here —
/// whatever it did on the device that reported it — is rejected, counted
/// in `fleet.hints_rejected`, and reported back so the server
/// quarantines the genome fleet-wide.
///
//===----------------------------------------------------------------------===//

#ifndef ROPT_FLEET_DEVICE_H
#define ROPT_FLEET_DEVICE_H

#include "core/IterativeCompiler.h"
#include "fleet/EventLoop.h"
#include "fleet/Server.h"
#include "workloads/Workloads.h"

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace ropt {
namespace fleet {

/// A device's identity in the population.
struct DeviceProfile {
  int Id = 0;
  int ClassId = 0;          ///< Hardware/user class (shares a pipeline).
  uint64_t Seed = 1;        ///< Drives all device-local randomness.
  double CostScale = 1.0;   ///< Kernel cost-model scale (capture overhead).
  double NoiseScale = 1.0;  ///< Measurement-noise sigma scale.
  int64_t SessionShift = 0; ///< Added to the app's default session param.

  /// Derives member \p Id of the population seeded by \p FleetSeed.
  /// \p CostJitter / \p NoiseJitter bound the uniform scale perturbation
  /// (e.g. 0.25 -> scales in [0.75, 1.25]); \p SessionSpread bounds the
  /// absolute session-parameter shift. Zeros give a homogeneous fleet.
  /// ClassId = Id (one class per device).
  static DeviceProfile derive(uint64_t FleetSeed, int Id, double CostJitter,
                              double NoiseJitter, int64_t SessionSpread);

  /// The classed variant: quantizes the population into \p Classes
  /// hardware/user classes (ClassId = Id % Classes). The hardware axes
  /// (cost, noise, session) are drawn from the *class* stream — every
  /// member of a class is the same phone model in the same hands — while
  /// Seed stays the *device* stream, so class members still explore
  /// different search trajectories. \p Classes <= 0 falls back to
  /// derive() (one class per device).
  static DeviceProfile deriveClassed(uint64_t FleetSeed, int Id, int Classes,
                                     double CostJitter, double NoiseJitter,
                                     int64_t SessionSpread);
};

/// A device's cost-model profile as a clustering feature vector
/// (DESIGN.md §17): [0..6] the seven kernel-cost scales (fork base/page,
/// maps parse, protect call/page, page fault, CoW copy — all equal to
/// CostScale today, kept per-event so the store format survives
/// per-event scaling), [7..8] the offline/online noise-sigma scales,
/// [9] the session-parameter shift. store::kmeans over these vectors is
/// what groups an install base into hardware/user classes.
inline constexpr int ProfileVectorDims = 10;
std::vector<double> profileVector(const DeviceProfile &P);

/// Virtual-cost model of one search step, in event-loop ticks. A step's
/// duration is (Base + Misses*Miss + Hits*Hit) * CostScale: a cache miss
/// pays a compile plus replays, a hit pays a lookup, and the whole step
/// scales with the device's hardware speed. The defaults make one fresh
/// evaluation ~3x the transport latency ceiling, so a round's search
/// dominates its messaging — the paper's regime.
struct StepCosts {
  uint64_t BaseTicks = 40; ///< Fixed per-step overhead (GA bookkeeping).
  uint64_t MissTicks = 12; ///< Per evaluation paid with a fresh compile.
  uint64_t HitTicks = 1;   ///< Per evaluation answered from the cache.
};

/// What one device did in one step (the unit the old fleet called a
/// "round"; under the event loop steps self-schedule, so devices are
/// usually at different step indices at the same virtual instant).
struct DeviceRound {
  RoundReport Report; ///< What goes to the server (best + rejections).
  int HintsReceived = 0;
  int HintsAdopted = 0;  ///< Verified Ok locally, seeded into the GA.
  int HintsRejected = 0; ///< Failed local verification; reported back.
  int Evaluations = 0;   ///< Engine answers this step (cache hits incl.).
  double BestSpeedup = 0.0; ///< Device best-so-far vs own Android median.
  std::string BestGenome;
  search::GenomeSource BestSource = search::GenomeSource::Random;
  bool BestFromHint = false; ///< Best-so-far originated as a foreign hint.
  /// Provenance of the best-so-far genome: the chain minted when this
  /// device discovered it, or the foreign chain the adopted hint carried.
  Provenance BestProv;
  /// Chains verified this step, split by verdict (adopted chains were
  /// seeded into the GA; rejected ones were reported for quarantine).
  std::vector<uint64_t> AdoptedProvenance;
  std::vector<uint64_t> RejectedProvenance;
};

/// A completed step: the round report plus how long the step took in
/// virtual time (the coordinator schedules the completion event at
/// begin + Duration).
struct StepResult {
  DeviceRound Round;
  VirtualTime Duration = 1;
};

/// The shared pipeline of one hardware/user class: app copy, captured
/// region, baselines, and the memoized evaluation engine every class
/// member searches through. Built and set up once per class; afterwards
/// only touched from Device::step, which the event loop serializes
/// per class (one lane per class), so the engine never sees two
/// concurrent members.
class DeviceClassState {
public:
  /// \p Base is the fleet-wide pipeline configuration; the class applies
  /// its profile on top (seed, cost/noise scaling, session shift) and
  /// forces the evaluation engine to a single job — parallelism belongs
  /// to the event loop's lanes, and a nested single-thread engine runs
  /// inline on the loop's worker.
  DeviceClassState(const std::string &AppName,
                   const core::PipelineConfig &Base,
                   const DeviceProfile &ClassProfile);

  /// Phases 1-3 plus baselines, once per class: profile, capture the hot
  /// region, measure stock Android and -O3, build the evaluation engine.
  /// Returns false (see failureReason()) when the app yields no
  /// replayable region on this class's hardware.
  bool setup();

  const std::string &failureReason() const { return Failure; }
  const DeviceProfile &profile() const { return Prof; }
  double androidMedian() const { return AndroidCycles; }
  double o3Median() const { return O3Cycles; }
  /// Engine statistics accumulated over every member step so far.
  const search::EngineCounters &counters() const;
  const search::EngineCacheStats &cacheStats() const;
  const search::EngineRacingStats &racingStats() const;
  /// Fork-server session accounting over the class engine's backends plus
  /// the class's serial baselines evaluator.
  search::ReplayBackendStats replayBackendStats() const;

private:
  friend class Device;

  workloads::Application App; ///< Private copy: no cross-class sharing.
  core::PipelineConfig Config;
  DeviceProfile Prof; ///< The class's hardware/user point (Id = ClassId).
  std::string Failure;

  // Pipeline state frozen by setup(); Captures must not move afterwards
  // (the engine's backends hold references into it).
  profiler::HotRegion Region;
  std::vector<core::CapturedRegion> Captures;
  std::unique_ptr<core::RegionEvaluator> Baselines;
  std::unique_ptr<search::EvaluationEngine> Engine;
  double AndroidCycles = 0.0;
  double O3Cycles = 0.0;
};

/// One fleet member: per-device search state on top of a shared class
/// pipeline.
class Device {
public:
  /// \p Class must outlive the device and must already be set up.
  Device(std::shared_ptr<DeviceClassState> Class, const DeviceProfile &Prof,
         const StepCosts &Costs);

  /// One resumable search step at virtual instant \p Now: re-verify the
  /// hints delivered since the last step, warm-start the GA from the
  /// survivors plus the device's own best, search, and package the round
  /// report plus the step's virtual duration. \p StepIndex salts the
  /// step's search seed (the old round number's only surviving role).
  StepResult step(VirtualTime Now, int StepIndex,
                  const std::vector<Hint> &Hints);

  const DeviceProfile &profile() const { return Prof; }
  double androidMedian() const { return Class->androidMedian(); }
  const std::optional<search::Scored> &best() const { return Best; }
  const DeviceClassState &classState() const { return *Class; }

private:
  /// Speedup of \p E over this device's class Android baseline.
  double speedupOf(const search::Evaluation &E) const;
  /// Packages \p S for the server, minting a provenance chain at
  /// (\p Now, \p StepIndex) if this device is the genome's discoverer
  /// (an adopted hint keeps the chain it arrived on).
  GenomeReport reportFor(const search::Scored &S, VirtualTime Now,
                         int StepIndex);

  std::shared_ptr<DeviceClassState> Class;
  DeviceProfile Prof;
  StepCosts Costs;

  std::optional<search::Scored> Best; ///< Best-so-far across steps.
  bool BestIsForeign = false;
  /// Hints already verified (either way) — received again, they are
  /// neither re-verified nor re-counted.
  std::map<std::string, bool> KnownHints; ///< Key -> adopted?
  std::set<std::string> AdoptedForeign;   ///< Keys of adopted hints.
  /// Genomes this device reported to the server; echoed back as hints,
  /// they are not foreign and skip the verification bookkeeping.
  std::set<std::string> OwnReported;
  /// Canonical name -> the provenance chain the genome rides on here:
  /// foreign chains enter at hint adoption, local chains are minted the
  /// first time the genome is reported.
  std::map<std::string, Provenance> GenomeProv;
};

} // namespace fleet
} // namespace ropt

#endif // ROPT_FLEET_DEVICE_H
