//===- fleet/Device.h - One simulated fleet member --------------*- C++ -*-===//
//
// Part of ReplayOpt (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One device of the simulated population: a full capture/replay/search
/// pipeline instance living on perturbed hardware. Heterogeneity comes in
/// three axes, all derived deterministically from (fleet seed, device id):
/// a scaled os::KernelCostModel (slow vs fast kernels), a scaled
/// measurement-noise floor (quiet vs thermally-throttled phones), and a
/// shifted session parameter (different users exercise different inputs,
/// the paper's §5.4 concern). The device profiles and captures its *own*
/// region, measures its *own* Android baseline, and reports fitness as
/// speedup over that baseline — the only figure comparable across the
/// fleet.
///
/// The safety contract (DESIGN.md §12): every foreign hint is compiled
/// and replayed against the device's own verification map before it may
/// seed the local GA. A hint that miscompiles here — whatever it did on
/// the device that reported it — is rejected, counted in
/// `fleet.hints_rejected`, and reported back so the server quarantines
/// the genome fleet-wide.
///
//===----------------------------------------------------------------------===//

#ifndef ROPT_FLEET_DEVICE_H
#define ROPT_FLEET_DEVICE_H

#include "core/IterativeCompiler.h"
#include "fleet/Server.h"
#include "workloads/Workloads.h"

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace ropt {
namespace fleet {

/// A device's identity in the population.
struct DeviceProfile {
  int Id = 0;
  uint64_t Seed = 1;        ///< Drives all device-local randomness.
  double CostScale = 1.0;   ///< Kernel cost-model scale (capture overhead).
  double NoiseScale = 1.0;  ///< Measurement-noise sigma scale.
  int64_t SessionShift = 0; ///< Added to the app's default session param.

  /// Derives member \p Id of the population seeded by \p FleetSeed.
  /// \p CostJitter / \p NoiseJitter bound the uniform scale perturbation
  /// (e.g. 0.25 -> scales in [0.75, 1.25]); \p SessionSpread bounds the
  /// absolute session-parameter shift. Zeros give a homogeneous fleet.
  static DeviceProfile derive(uint64_t FleetSeed, int Id, double CostJitter,
                              double NoiseJitter, int64_t SessionSpread);
};

/// What one device did in one round.
struct DeviceRound {
  RoundReport Report; ///< What goes to the server (best + rejections).
  int HintsReceived = 0;
  int HintsAdopted = 0;  ///< Verified Ok locally, seeded into the GA.
  int HintsRejected = 0; ///< Failed local verification; reported back.
  int Evaluations = 0;   ///< Engine answers this round (cache hits incl.).
  double BestSpeedup = 0.0; ///< Device best-so-far vs own Android median.
  std::string BestGenome;
  search::GenomeSource BestSource = search::GenomeSource::Random;
  bool BestFromHint = false; ///< Best-so-far originated as a foreign hint.
};

class Device {
public:
  /// \p Base is the fleet-wide pipeline configuration; the device applies
  /// its profile on top (seed, cost/noise scaling, session shift) and
  /// forces the evaluation engine to a single job — cross-device
  /// parallelism belongs to the coordinator's pool, and a nested
  /// single-thread engine runs inline on the coordinator's worker.
  Device(const std::string &AppName, const core::PipelineConfig &Base,
         const DeviceProfile &Profile);

  /// Phases 1-3 plus baselines, once per device: profile, capture the hot
  /// region, measure stock Android and -O3, build the evaluation engine.
  /// Returns false (see failureReason()) when the app yields no
  /// replayable region on this device.
  bool setup();

  const std::string &failureReason() const { return Failure; }

  /// One crowd round: re-verify the served hints, warm-start the GA from
  /// the survivors plus the device's own best, search, and package the
  /// round report.
  DeviceRound runRound(int Round, const std::vector<Hint> &Hints);

  const DeviceProfile &profile() const { return Prof; }
  double androidMedian() const { return AndroidCycles; }
  const std::optional<search::Scored> &best() const { return Best; }
  /// Engine statistics accumulated over every round so far.
  const search::EngineCounters &counters() const;
  const search::EngineCacheStats &cacheStats() const;
  const search::EngineRacingStats &racingStats() const;

private:
  /// Speedup of \p E over this device's Android baseline.
  double speedupOf(const search::Evaluation &E) const;
  GenomeReport reportFor(const search::Scored &S) const;

  workloads::Application App; ///< Private copy: no cross-device sharing.
  core::PipelineConfig Config;
  DeviceProfile Prof;
  std::string Failure;

  // Pipeline state frozen by setup(); Captures must not move afterwards
  // (the engine's backends hold references into it).
  profiler::HotRegion Region;
  std::vector<core::CapturedRegion> Captures;
  std::unique_ptr<core::RegionEvaluator> Baselines;
  std::unique_ptr<search::EvaluationEngine> Engine;
  double AndroidCycles = 0.0;
  double O3Cycles = 0.0;

  std::optional<search::Scored> Best; ///< Best-so-far across rounds.
  bool BestIsForeign = false;
  /// Hints already verified (either way) — received again, they are
  /// neither re-verified nor re-counted.
  std::map<std::string, bool> KnownHints; ///< Key -> adopted?
  std::set<std::string> AdoptedForeign;   ///< Keys of adopted hints.
  /// Genomes this device reported to the server; echoed back as hints,
  /// they are not foreign and skip the verification bookkeeping.
  std::set<std::string> OwnReported;
};

} // namespace fleet
} // namespace ropt

#endif // ROPT_FLEET_DEVICE_H
