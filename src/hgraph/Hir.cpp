//===- hgraph/Hir.cpp - HGraph: block-structured compiler IR ---------------===//

#include "hgraph/Hir.h"

#include "support/Format.h"

#include <cassert>

using namespace ropt;
using namespace ropt::hgraph;
using vm::MInsn;
using vm::MNoReg;
using vm::MOpcode;
using vm::MRegIdx;

std::vector<uint32_t> Terminator::successors() const {
  switch (K) {
  case Kind::Goto:
    return {Taken};
  case Kind::Cond:
  case Kind::Guard:
    return {Taken, Fall};
  case Kind::Ret:
  case Kind::RetVoid:
    return {};
  }
  return {};
}

void HGraph::computePreds() {
  for (HBlock &B : Blocks)
    B.Preds.clear();
  for (uint32_t Id = 0; Id != Blocks.size(); ++Id)
    for (uint32_t Succ : Blocks[Id].Term.successors())
      Blocks[Succ].Preds.push_back(Id);
}

std::vector<uint32_t> HGraph::reversePostOrder() const {
  std::vector<uint8_t> State(Blocks.size(), 0); // 0 unseen, 1 open, 2 done
  std::vector<uint32_t> PostOrder;
  PostOrder.reserve(Blocks.size());
  // Iterative DFS with an explicit stack of (block, next-successor).
  std::vector<std::pair<uint32_t, size_t>> Stack;
  Stack.emplace_back(0, 0);
  State[0] = 1;
  while (!Stack.empty()) {
    auto &[Block, NextSucc] = Stack.back();
    std::vector<uint32_t> Succs = Blocks[Block].Term.successors();
    if (NextSucc < Succs.size()) {
      uint32_t S = Succs[NextSucc++];
      if (State[S] == 0) {
        State[S] = 1;
        Stack.emplace_back(S, 0);
      }
      continue;
    }
    State[Block] = 2;
    PostOrder.push_back(Block);
    Stack.pop_back();
  }
  return std::vector<uint32_t>(PostOrder.rbegin(), PostOrder.rend());
}

size_t HGraph::instructionCount() const {
  size_t Count = 0;
  for (const HBlock &B : Blocks)
    Count += B.Insns.size();
  return Count;
}

bool HGraph::verify(std::string &Error) const {
  Error.clear();
  if (Blocks.empty()) {
    Error = "graph has no blocks";
    return false;
  }
  auto RegOk = [this](MRegIdx R) { return R == MNoReg || R < NumRegs; };
  for (uint32_t Id = 0; Id != Blocks.size(); ++Id) {
    const HBlock &B = Blocks[Id];
    for (const MInsn &I : B.Insns) {
      if (vm::isMBranch(I.Op) || I.Op == MOpcode::MRet ||
          I.Op == MOpcode::MRetVoid || I.Op == MOpcode::MGuardClass) {
        Error = format("block %u: control-flow opcode %s inside body", Id,
                       vm::mopcodeName(I.Op));
        return false;
      }
      if (!RegOk(I.A) || !RegOk(I.B) || !RegOk(I.C)) {
        Error = format("block %u: register out of range in %s", Id,
                       vm::mopcodeName(I.Op));
        return false;
      }
      for (unsigned N = 0; N != I.ArgCount; ++N)
        if (!RegOk(I.Args[N])) {
          Error = format("block %u: call argument out of range", Id);
          return false;
        }
    }
    for (uint32_t Succ : B.Term.successors())
      if (Succ >= Blocks.size()) {
        Error = format("block %u: successor %u out of range", Id, Succ);
        return false;
      }
    if (B.Term.K == Terminator::Kind::Cond && !vm::isMCondBranch(B.Term.CondOp)) {
      Error = format("block %u: Cond terminator with non-branch opcode", Id);
      return false;
    }
    if ((B.Term.K == Terminator::Kind::Cond ||
         B.Term.K == Terminator::Kind::Guard || B.Term.K == Terminator::Kind::Ret) &&
        !RegOk(B.Term.B)) {
      Error = format("block %u: terminator register out of range", Id);
      return false;
    }
  }
  return true;
}

std::string hgraph::dump(const HGraph &G) {
  std::string Out =
      format("hgraph %s (regs=%u params=%u)\n", G.Name.c_str(),
             unsigned(G.NumRegs), unsigned(G.ParamCount));
  for (uint32_t Id = 0; Id != G.Blocks.size(); ++Id) {
    const HBlock &B = G.Blocks[Id];
    Out += format("bb%u:\n", Id);
    for (const MInsn &I : B.Insns) {
      Out += format("  %s", vm::mopcodeName(I.Op));
      if (I.A != MNoReg)
        Out += format(" r%u", unsigned(I.A));
      if (I.B != MNoReg)
        Out += format(", r%u", unsigned(I.B));
      if (I.C != MNoReg)
        Out += format(", r%u", unsigned(I.C));
      if (I.Op == MOpcode::MMovImmI)
        Out += format(", #%lld", static_cast<long long>(I.ImmI));
      if (I.Op == MOpcode::MMovImmF)
        Out += format(", #%g", I.ImmF);
      Out += "\n";
    }
    const Terminator &T = B.Term;
    switch (T.K) {
    case Terminator::Kind::Goto:
      Out += format("  goto bb%u\n", T.Taken);
      break;
    case Terminator::Kind::Cond:
      Out += format("  %s r%u%s -> bb%u else bb%u\n",
                    vm::mopcodeName(T.CondOp), unsigned(T.B),
                    T.C == MNoReg ? ""
                                  : format(", r%u", unsigned(T.C)).c_str(),
                    T.Taken, T.Fall);
      break;
    case Terminator::Kind::Guard:
      Out += format("  guard-class r%u == class%u ? bb%u : bb%u\n",
                    unsigned(T.B), T.GuardClass, T.Fall, T.Taken);
      break;
    case Terminator::Kind::Ret:
      Out += format("  ret r%u\n", unsigned(T.B));
      break;
    case Terminator::Kind::RetVoid:
      Out += "  ret-void\n";
      break;
    }
  }
  return Out;
}
