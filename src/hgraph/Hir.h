//===- hgraph/Hir.h - HGraph: block-structured compiler IR ------*- C++ -*-===//
//
// Part of ReplayOpt (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Our analogue of ART's HGraph: a control-flow graph over machine-level
/// operations with *explicit* runtime checks (null/bounds/div), GC
/// safepoints, and guards. Built from bytecode by buildHGraph(); consumed
/// by the conservative Android pass pipeline, by the Android code
/// generator, and by the LLVM backend's HGraph-to-LIR translation
/// (Section 3.5).
///
/// Blocks hold straight-line vm::MInsn sequences (no branches inside); all
/// control flow lives in the block terminator, which references successor
/// *block ids* until code generation linearizes everything.
///
//===----------------------------------------------------------------------===//

#ifndef ROPT_HGRAPH_HIR_H
#define ROPT_HGRAPH_HIR_H

#include "dex/DexFile.h"
#include "vm/Machine.h"

#include <string>
#include <vector>

namespace ropt {
namespace hgraph {

/// How a block ends.
struct Terminator {
  enum class Kind {
    Goto,    ///< Unconditional jump to Taken.
    Cond,    ///< CondOp over (B, C); true -> Taken, false -> Fall.
    Guard,   ///< Class guard on B against GuardClass; mismatch -> Taken
             ///< (slow path), match -> Fall.
    Ret,     ///< Return register B.
    RetVoid,
  };

  Kind K = Kind::RetVoid;
  vm::MOpcode CondOp = vm::MOpcode::MNop; ///< One of the MIf* opcodes.
  vm::MRegIdx B = vm::MNoReg;
  vm::MRegIdx C = vm::MNoReg;
  vm::BranchHint Hint = vm::BranchHint::None;
  uint32_t Taken = 0;
  uint32_t Fall = 0;
  uint32_t GuardClass = 0;

  /// Successor block ids in evaluation order.
  std::vector<uint32_t> successors() const;
};

/// One basic block.
struct HBlock {
  std::vector<vm::MInsn> Insns; ///< Straight-line body (no control flow).
  Terminator Term;
  std::vector<uint32_t> Preds; ///< Filled by HGraph::computePreds().
  uint32_t StartPc = 0; ///< Bytecode pc this block started at (build info).
};

/// A function in HGraph form.
class HGraph {
public:
  dex::MethodId Method = dex::InvalidId;
  std::string Name;
  uint16_t NumRegs = 0;
  uint16_t ParamCount = 0;
  bool ReturnsValue = false;
  std::vector<HBlock> Blocks; ///< Block 0 is the entry.

  /// Allocates a fresh virtual register.
  vm::MRegIdx newReg() { return NumRegs++; }

  /// Recomputes every block's predecessor list.
  void computePreds();

  /// Reverse-post-order over reachable blocks, starting at the entry.
  std::vector<uint32_t> reversePostOrder() const;

  /// Structural sanity check: successor ids in range, terminator operands
  /// in range, no branch opcodes inside block bodies. Returns true and
  /// leaves \p Error empty when well formed.
  bool verify(std::string &Error) const;

  /// Total instruction count (bodies only).
  size_t instructionCount() const;
};

/// Renders a debug listing.
std::string dump(const HGraph &G);

} // namespace hgraph
} // namespace ropt

#endif // ROPT_HGRAPH_HIR_H
