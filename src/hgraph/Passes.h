//===- hgraph/Passes.h - The conservative Android pass set ------*- C++ -*-===//
//
// Part of ReplayOpt (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The safe, always-beneficial optimizations of the stock Android compiler
/// (Section 2: "designed to be safe rather than highly optimizing"). Every
/// pass here is *block-local* and conservative by design; the aggressive
/// global machinery lives in the LLVM-like backend. Each pass returns true
/// when it changed the graph.
///
//===----------------------------------------------------------------------===//

#ifndef ROPT_HGRAPH_PASSES_H
#define ROPT_HGRAPH_PASSES_H

#include "hgraph/Hir.h"

namespace ropt {
namespace hgraph {

/// Folds ALU operations whose operands are known constants within a block;
/// converts always-taken/never-taken conditional terminators into gotos.
bool constantFolding(HGraph &G);

/// Algebraic identities: x+0, x*1, x*0, x*2^k -> shift, x-x, x^x, ...
bool instructionSimplifier(HGraph &G);

/// Replaces uses of registers that are block-local copies of another
/// register.
bool copyPropagation(HGraph &G);

/// Block-local value numbering over pure operations.
bool localValueNumbering(HGraph &G);

/// Removes pure instructions whose result is overwritten later in the same
/// block without an intervening read (safe without global liveness).
bool localDeadCodeElimination(HGraph &G);

/// Removes MCheckNull on registers already known non-null in the block
/// (previous identical check, or defined by an allocation).
bool nullCheckElimination(HGraph &G);

/// Removes MCheckBounds over an (array, index) register pair already
/// checked in the block with neither register redefined since.
bool boundsCheckElimination(HGraph &G);

/// Forwards stored values to subsequent loads of the same object register
/// and slot within a block (invalidated by calls and unrelated stores).
bool loadStoreElimination(HGraph &G);

/// Inlines tiny single-block static callees (<= 8 instructions, no calls).
/// The conservative inliner of the stock pipeline.
bool inlineTrivialCalls(HGraph &G, const dex::DexFile &File);

/// Runs the full stock pipeline to fixpoint (bounded iterations), matching
/// the Android compiler's behaviour of applying only guaranteed-safe
/// optimizations. Returns the number of pass applications that changed the
/// graph.
unsigned runAndroidPipeline(HGraph &G, const dex::DexFile &File);

} // namespace hgraph
} // namespace ropt

#endif // ROPT_HGRAPH_PASSES_H
