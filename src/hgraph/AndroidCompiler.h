//===- hgraph/AndroidCompiler.h - The stock compiler driver -----*- C++ -*-===//
//
// Part of ReplayOpt (PLDI 2021 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The out-of-the-box compiler: buildHGraph -> conservative pass pipeline
/// -> code generation. This is the baseline every speedup in the paper is
/// measured against.
///
//===----------------------------------------------------------------------===//

#ifndef ROPT_HGRAPH_ANDROID_COMPILER_H
#define ROPT_HGRAPH_ANDROID_COMPILER_H

#include "dex/DexFile.h"
#include "vm/Machine.h"

#include <memory>
#include <vector>

namespace ropt {
namespace hgraph {

/// Compiles one method with the stock pipeline. Returns nullptr for
/// methods the Android compiler cannot process (natives, methods flagged
/// MF_Uncompilable — the paper's "pathological cases").
std::shared_ptr<vm::MachineFunction>
compileMethodAndroid(const dex::DexFile &File, dex::MethodId Method);

/// Compiles every given method, installing results into \p Cache
/// (uncompilable methods are skipped and stay interpreted).
void compileAllAndroid(const dex::DexFile &File,
                       const std::vector<dex::MethodId> &Methods,
                       vm::CodeCache &Cache);

} // namespace hgraph
} // namespace ropt

#endif // ROPT_HGRAPH_ANDROID_COMPILER_H
